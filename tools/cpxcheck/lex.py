"""C++ tokenizer for cpxcheck (docs/static_analysis.md).

A real lexer instead of the regex stripper in tools/lint_cpx.py: comments,
string/char literals (including raw strings with arbitrary delimiters and
encoding prefixes), digit separators, and preprocessor lines are consumed
as units, so downstream phases see a clean token stream with exact line
numbers. This is the layer that makes scope- and statement-level analysis
possible at all — the per-line regex rules desynchronize on exactly the
constructs handled here.
"""

from __future__ import annotations

from dataclasses import dataclass

# Token kinds.
ID = "id"        # identifiers and keywords
NUM = "num"      # numeric literals (incl. digit separators)
STR = "str"      # string literal (text is the *uninterpreted* contents)
CHR = "chr"      # character literal
PUNCT = "punct"  # operators and punctuation (multi-char ops kept whole)

_PUNCT3 = ("<<=", ">>=", "...", "->*", "<=>")
_PUNCT2 = ("::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
           "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=")

_RAW_PREFIXES = ("R", "u8R", "uR", "UR", "LR")
_STR_PREFIXES = ("u8", "u", "U", "L")


@dataclass(frozen=True)
class Tok:
    kind: str
    text: str
    line: int

    def __repr__(self) -> str:  # compact for debugging
        return f"{self.kind}:{self.text}@{self.line}"


class LexError(ValueError):
    pass


def _is_id_start(c: str) -> bool:
    return c.isalpha() or c == "_"


def _is_id_char(c: str) -> bool:
    return c.isalnum() or c == "_"


def tokenize(text: str) -> list[Tok]:
    """Tokenizes C++ source. Preprocessor lines are skipped entirely
    (honouring backslash continuations); comments are dropped."""
    toks: list[Tok] = []
    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        nxt = text[i + 1] if i + 1 < n else ""
        # Comments.
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    line += 1
                i += 1
            i = min(i + 2, n)
            continue
        # Preprocessor directive: skip the logical line.
        if c == "#" and (not toks or _line_start(text, i)):
            while i < n:
                if text[i] == "\\" and i + 1 < n and text[i + 1] == "\n":
                    line += 1
                    i += 2
                    continue
                if text[i] == "\n":
                    break
                # A comment may hide the continuation; handle block
                # comments spanning lines inside directives.
                if text[i] == "/" and i + 1 < n and text[i + 1] == "*":
                    i += 2
                    while i + 1 < n and not (text[i] == "*"
                                             and text[i + 1] == "/"):
                        if text[i] == "\n":
                            line += 1
                        i += 1
                    i = min(i + 2, n)
                    continue
                i += 1
            continue
        # Identifier / keyword — and possibly a literal prefix.
        if _is_id_start(c):
            j = i
            while j < n and _is_id_char(text[j]):
                j += 1
            word = text[i:j]
            follower = text[j] if j < n else ""
            if follower == '"' and word in _RAW_PREFIXES:
                i, line = _raw_string(text, j, line, toks)
                continue
            if follower == '"' and word in _STR_PREFIXES:
                i, line = _quoted(text, j, '"', line, toks, STR)
                continue
            if follower == "'" and word in _STR_PREFIXES:
                i, line = _quoted(text, j, "'", line, toks, CHR)
                continue
            toks.append(Tok(ID, word, line))
            i = j
            continue
        # Numeric literal (digit separators, hex, exponents, suffixes).
        if c.isdigit() or (c == "." and nxt.isdigit()):
            j = i
            while j < n and (_is_id_char(text[j]) or text[j] in ".'" or
                             (text[j] in "+-" and text[j - 1] in "eEpP")):
                j += 1
            toks.append(Tok(NUM, text[i:j], line))
            i = j
            continue
        if c == '"':
            i, line = _quoted(text, i, '"', line, toks, STR)
            continue
        if c == "'":
            i, line = _quoted(text, i, "'", line, toks, CHR)
            continue
        # Punctuation, longest-match first.
        three = text[i:i + 3]
        two = text[i:i + 2]
        if three in _PUNCT3:
            toks.append(Tok(PUNCT, three, line))
            i += 3
        elif two in _PUNCT2:
            toks.append(Tok(PUNCT, two, line))
            i += 2
        else:
            toks.append(Tok(PUNCT, c, line))
            i += 1
    return toks


def _line_start(text: str, i: int) -> bool:
    j = i - 1
    while j >= 0 and text[j] in " \t":
        j -= 1
    return j < 0 or text[j] == "\n"


def _quoted(text: str, i: int, quote: str, line: int, toks: list[Tok],
            kind: str) -> tuple[int, int]:
    """Consumes a (possibly prefixed) quoted literal starting at the quote
    character `text[i]`."""
    start_line = line
    j = i + 1
    n = len(text)
    while j < n and text[j] != quote:
        if text[j] == "\\" and j + 1 < n:
            if text[j + 1] == "\n":
                line += 1
            j += 2
            continue
        if text[j] == "\n":
            # Unterminated literal (or a stray quote in odd code): bail at
            # end of line rather than swallowing the rest of the file.
            toks.append(Tok(kind, text[i + 1:j], start_line))
            return j, line
        j += 1
    toks.append(Tok(kind, text[i + 1:j], start_line))
    return min(j + 1, n), line


def _raw_string(text: str, i: int, line: int,
                toks: list[Tok]) -> tuple[int, int]:
    """Consumes a raw string literal whose opening quote is at text[i]:
    R"delim( ... )delim". No escapes apply inside."""
    n = len(text)
    start_line = line
    j = i + 1
    while j < n and text[j] not in "(\n":
        j += 1
    if j >= n or text[j] != "(":
        # Malformed; treat as an ordinary string to stay robust.
        return _quoted(text, i, '"', line, toks)
    delim = text[i + 1:j]
    closer = ")" + delim + '"'
    end = text.find(closer, j + 1)
    if end == -1:
        end = n
    contents = text[j + 1:end]
    line += contents.count("\n")
    toks.append(Tok(STR, contents, start_line))
    return min(end + len(closer), n), line
