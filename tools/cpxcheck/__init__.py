"""cpxcheck: AST-grounded static analysis for the CPX repo.

See docs/static_analysis.md. Run as `python3 tools/cpxcheck`.
"""

__version__ = "1.0"
