"""cpxcheck rules (docs/static_analysis.md).

Each rule consumes the model.py facts produced by either frontend. These
are the semantic upgrades of the tools/lint_cpx.py regex rules: members
come from real class definitions instead of a `name_` naming convention,
split-phase windows are tracked path-sensitively through the statement
tree, deterministic-kernel checks resolve receiver types, and solve-alloc
follows the call graph out of the solve entry points instead of stopping
at a fixed file list.

Suppression: the same `// cpx-lint: allow(<rule>)` markers as lint_cpx.py
(same line or the line above). Each cpxcheck rule also honours the legacy
lint rule name it subsumes (e.g. `allow(alloc)` silences `solve-alloc`),
so existing annotated code keeps its meaning. Project-wide exceptions go
in tools/cpxcheck/baseline.txt with a justification.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import lex
from model import (CallSite, ClassInfo, FileFacts, Finding, FunctionInfo,
                   S_BLOCK, S_IF, S_LOOP, S_RETURN, S_SIMPLE, S_SWITCH,
                   S_THROW, S_TRY, Stmt, walk_stmts)

ALLOW_RE = re.compile(
    r"//\s*cpx-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

# Rule names the allow() marker may legally reference: the regex linter's
# rules plus cpxcheck's. `allow-audit` rejects anything else.
LINT_CPX_RULES = frozenset({
    "naked-new", "alloc", "reduce", "deterministic-kernels",
    "metrics-registry", "raw-comm", "ckpt", "split-phase",
})


@dataclass(frozen=True)
class RuleInfo:
    name: str
    summary: str
    aliases: frozenset  # allow() names that silence this rule


RULES = (
    RuleInfo(
        "ckpt-registry",
        "Registered checkpoint classes define serialize/restore, "
        "implementers are registered, and every non-static data member "
        "(enumerated from the class definition, not a naming convention) "
        "is threaded through BOTH bodies or carries allow(ckpt).",
        frozenset({"ckpt-registry", "ckpt"})),
    RuleInfo(
        "split-phase",
        "Every exchange window — ExchangePlan begin()/finish() and "
        "Cluster exchange_begin()/exchange_finish() — must close on every "
        "control path (early returns, throws, diverging branches, loop "
        "bodies), with no ghost-slot reads inside the window.",
        frozenset({"split-phase"})),
    RuleInfo(
        "deterministic-kernels",
        "No ambient randomness or wall-clock reads outside their sanctioned "
        "homes, and no iteration over unordered containers — resolved "
        "through declared types, not identifier spelling.",
        frozenset({"deterministic-kernels"})),
    RuleInfo(
        "solve-alloc",
        "No allocating expressions (container growth, new, make_unique, "
        "malloc) in any function reachable from the solve-path entry "
        "points (amg::pcg, AmgHierarchy::solve/cycle) via the call graph.",
        frozenset({"solve-alloc", "alloc", "naked-new"})),
    RuleInfo(
        "simd-tier",
        "Horizontal SIMD reductions in kernel code go through the "
        "fixed-lane tree helpers (tree_reduce/tree_combine, exact tier); "
        "direct hsum() calls are relaxed-tier — lane-order rounding "
        "changes with the simd width — and need allow(simd-tier).",
        frozenset({"simd-tier"})),
    RuleInfo(
        "allow-audit",
        "Every `cpx-lint: allow(<rule>)` marker names a rule that exists "
        "(in lint_cpx.py or cpxcheck); unknown names are dead suppressions "
        "that silently enforce nothing.",
        frozenset({"allow-audit"})),
)

KNOWN_ALLOW_NAMES = LINT_CPX_RULES | {r.name for r in RULES} \
    | frozenset().union(*(r.aliases for r in RULES))

GROWTH_CALLS = frozenset({
    "push_back", "emplace_back", "emplace", "resize", "reserve",
    "assign", "insert", "append",
})
ALLOC_CALLS = frozenset({"make_unique", "make_shared", "malloc", "calloc",
                         "realloc"})

RANDOM_IDENTS = frozenset({
    "random_device", "mt19937", "mt19937_64", "minstd_rand",
    "minstd_rand0", "default_random_engine", "knuth_b", "ranlux24",
    "ranlux48",
})
CLOCK_IDENTS = frozenset({"system_clock", "high_resolution_clock"})

SOLVE_ENTRY_SUFFIXES = ("amg::pcg", "AmgHierarchy::solve",
                        "AmgHierarchy::cycle")
RNG_HOME = "src/support/rng.hpp"


@dataclass
class Project:
    files: list[FileFacts] = field(default_factory=list)

    def allows(self, facts: FileFacts, line: int) -> set:
        out: set = set()
        for j in (line, line - 1):
            m = ALLOW_RE.search(facts.line_text(j))
            if m:
                out.update(s.strip() for s in m.group(1).split(","))
        return out

    def allowed(self, facts: FileFacts, line: int, rule: RuleInfo) -> bool:
        return bool(self.allows(facts, line) & rule.aliases)


def rule_by_name(name: str) -> RuleInfo:
    for r in RULES:
        if r.name == name:
            return r
    raise KeyError(name)


def run_rules(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    findings += check_ckpt_registry(project)
    findings += check_split_phase(project)
    findings += check_deterministic(project)
    findings += check_solve_alloc(project)
    findings += check_simd_tier(project)
    findings += check_allow_audit(project)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


# ---------------------------------------------------------------------------
# ckpt-registry
# ---------------------------------------------------------------------------

_CKPT_ENTRY_RE = re.compile(r'"((?:\w+::)*\w+)"')


def check_ckpt_registry(project: Project) -> list[Finding]:
    rule = rule_by_name("ckpt-registry")
    registry = next((f for f in project.files
                     if f.path.endswith("ckpt/registry.hpp")
                     or f.path.endswith("registry.hpp")
                     and "kCheckpointedClasses" in "\n".join(f.lines)), None)
    if registry is None:
        return []
    text = "\n".join(registry.lines)
    m = re.search(r"kCheckpointedClasses\[\]\s*=\s*\{(.*?)\}", text,
                  re.DOTALL)
    entries = _CKPT_ENTRY_RE.findall(m.group(1)) if m else []
    registered = {e.split("::")[-1]: e for e in entries}

    findings: list[Finding] = []

    # Index: short class name -> [(facts, ClassInfo)], and the
    # serialize/restore definitions per short class name.
    classes: dict = {}
    ser: dict = {}
    res: dict = {}
    impl_site: dict = {}
    for facts in project.files:
        for cls in facts.classes:
            classes.setdefault(cls.name, []).append((facts, cls))
        for fn in facts.functions:
            if fn.name == "serialize" and "ckpt::Writer" in fn.param_text:
                ser.setdefault(fn.class_name, []).append(fn)
                impl_site.setdefault(fn.class_name, (facts, fn.line))
            if fn.name == "restore" and "ckpt::Reader" in fn.param_text:
                res.setdefault(fn.class_name, []).append(fn)
                impl_site.setdefault(fn.class_name, (facts, fn.line))

    for short, (facts, line) in sorted(impl_site.items()):
        if short and short not in registered:
            findings.append(Finding(
                rule.name, facts.path, line,
                f"{short} implements a serialize(ckpt::Writer&)/"
                f"restore(ckpt::Reader&) pair but is not listed in "
                f"{registry.path}"))

    for short in sorted(registered):
        full = registered[short]
        if short not in ser or short not in res:
            findings.append(Finding(
                rule.name, registry.path, 1,
                f"registered class {full} defines no "
                f"serialize/restore pair"))
            continue
        located = _locate_class(classes.get(short, []), full)
        if located is None:
            findings.append(Finding(
                rule.name, registry.path, 1,
                f"cannot find the class definition of registered class "
                f"{full}"))
            continue
        facts, cls = located
        handled_ser = set().union(*(fn.body_idents for fn in ser[short]))
        handled_res = set().union(*(fn.body_idents for fn in res[short]))
        for fld in cls.fields:
            if fld.is_static:
                continue
            if project.allowed(facts, fld.line, rule):
                continue
            missing = [what for what, idents in
                       (("serialize", handled_ser), ("restore", handled_res))
                       if fld.name not in idents]
            if missing:
                findings.append(Finding(
                    rule.name, facts.path, fld.line,
                    f"member `{fld.name}` of checkpointed class {full} is "
                    f"not handled in its {' or '.join(missing)} body; "
                    f"snapshot it or mark it `allow(ckpt)` as rebuilt "
                    f"state"))
    return findings


def _locate_class(candidates, full_qualname):
    """Prefers the candidate whose qualname matches the registry entry."""
    best = None
    for facts, cls in candidates:
        if cls.qualname.endswith(full_qualname):
            return facts, cls
        if best is None and cls.fields:
            best = (facts, cls)
    return best


# ---------------------------------------------------------------------------
# split-phase
# ---------------------------------------------------------------------------

def check_split_phase(project: Project) -> list[Finding]:
    rule = rule_by_name("split-phase")
    findings: list[Finding] = []
    for facts in project.files:
        plan_rules = not facts.path.startswith("src/comm/")
        cluster_rules = facts.path != "src/sim/cluster.cpp" \
            and not facts.path.endswith("/cluster.cpp")
        if not plan_rules and not cluster_rules:
            continue
        for fn in facts.functions:
            ctx = _SplitPhaseCtx(project, facts, fn, rule,
                                 plan_rules, cluster_rules, findings)
            out = ctx.eval_stmts(fn.body, {})
            for key, line in sorted(out.items()):
                findings.append(Finding(
                    rule.name, facts.path, line,
                    f"`{_window_label(key)}` has no matching "
                    f"{_closer_label(key)} before the end of "
                    f"`{fn.qualname}`"))
    return findings


def _window_label(key: str) -> str:
    kind, name = key.split(":", 1)
    if kind == "plan":
        return f"{name}.begin(...)"
    return f"{name} = ...exchange_begin(...)"


def _closer_label(key: str) -> str:
    return "finish()" if key.startswith("plan:") else "exchange_finish()"


class _SplitPhaseCtx:
    def __init__(self, project, facts, fn, rule, plan_rules, cluster_rules,
                 findings) -> None:
        self.project = project
        self.facts = facts
        self.fn = fn
        self.rule = rule
        self.plan_rules = plan_rules
        self.cluster_rules = cluster_rules
        self.findings = findings

    def _allowed(self, line: int) -> bool:
        return self.project.allowed(self.facts, line, self.rule)

    def _receiver_is_plan(self, name: str):
        """True / False / None(unknown) for `name` being an ExchangePlan."""
        ty = _receiver_type(self.project, self.facts, self.fn, name)
        if ty is None:
            return None
        return "ExchangePlan" in ty

    def eval_stmts(self, stmts: list[Stmt], state: dict) -> dict:
        for s in stmts:
            state = self.eval_stmt(s, state)
        return state

    def eval_stmt(self, s: Stmt, state: dict) -> dict:
        if s.kind == S_SIMPLE:
            return self._scan_tokens(s.tokens, dict(state))
        if s.kind in (S_RETURN, S_THROW):
            state = self._scan_tokens(s.tokens, dict(state))
            if s.kind == S_RETURN:
                # Returning an exchange handle transfers window ownership
                # to the caller (the sim::begin_exchange wrapper pattern):
                # the window is the return value, not a leak.
                returned = {t.text for t in s.tokens if t.kind == lex.ID}
                for key in [k for k in state if k.startswith("win:")
                            and k[4:] in returned]:
                    state.pop(key)
            if state and not self._allowed(s.line):
                names = ", ".join(_window_label(k) for k in sorted(state))
                what = "return" if s.kind == S_RETURN else "throw"
                self.findings.append(Finding(
                    self.rule.name, self.facts.path, s.line,
                    f"`{what}` leaves the open exchange window of "
                    f"{names}; every control path must close a begun "
                    f"exchange"))
            return state
        if s.kind == S_BLOCK:
            return self.eval_stmts(s.children, state)
        if s.kind == S_IF:
            entry = self._scan_tokens(s.tokens, dict(state))
            then_out = self.eval_stmts(s.children, dict(entry))
            else_out = self.eval_stmts(s.else_children, dict(entry))
            if set(then_out) != set(else_out) and not self._allowed(s.line):
                diverged = sorted(set(then_out) ^ set(else_out))
                names = ", ".join(_window_label(k) for k in diverged)
                self.findings.append(Finding(
                    self.rule.name, self.facts.path, s.line,
                    f"exchange window of {names} is open on one branch of "
                    f"this `if` but not the other; both paths must leave "
                    f"the window in the same state"))
            return {k: v for k, v in then_out.items() if k in else_out}
        if s.kind in (S_LOOP, S_SWITCH):
            entry = self._scan_tokens(
                list(s.tokens) + list(s.range_tokens), dict(state))
            self._check_ghost(s.range_tokens, entry)
            body_out = self.eval_stmts(s.children, dict(entry))
            if set(body_out) != set(entry) and not self._allowed(s.line):
                diverged = sorted(set(body_out) ^ set(entry))
                names = ", ".join(_window_label(k) for k in diverged)
                kind = "loop" if s.kind == S_LOOP else "switch"
                self.findings.append(Finding(
                    self.rule.name, self.facts.path, s.line,
                    f"exchange window of {names} is opened or closed "
                    f"inside this `{kind}` body without balancing; the "
                    f"window state must match at entry and exit"))
            return entry
        if s.kind == S_TRY:
            body_out = self.eval_stmts(s.children, dict(state))
            for handler in s.else_children:
                self.eval_stmt(handler, dict(state))
            return body_out
        return state

    def _scan_tokens(self, toks, state: dict) -> dict:
        n = len(toks)
        # A window both opened and closed inside one statement (e.g.
        # `finish(begin(...))`) is balanced: scan sequentially.
        for k, t in enumerate(toks):
            if t.kind != lex.ID:
                continue
            nxt = toks[k + 1].text if k + 1 < n else ""
            prev = toks[k - 1].text if k > 0 else ""
            if self.plan_rules and nxt == "(" and prev in (".", "->"):
                recv = toks[k - 2].text if k >= 2 \
                    and toks[k - 2].kind == lex.ID else ""
                if t.text == "begin" and recv:
                    has_args = k + 2 < n and toks[k + 2].text != ")"
                    is_plan = self._receiver_is_plan(recv)
                    if is_plan or (is_plan is None and has_args):
                        if not self._allowed(t.line):
                            state["plan:" + recv] = t.line
                elif t.text == "finish" and recv:
                    state.pop("plan:" + recv, None)
            if self.cluster_rules and nxt == "(" \
                    and t.text == "exchange_begin":
                if any(x.text == "exchange_finish" for x in toks[:k]):
                    continue  # closed earlier in this statement? unusual
                if any(x.text == "exchange_finish" for x in toks[k:]):
                    continue  # balanced within the statement
                var = ""
                for m in range(k - 1, 0, -1):
                    if toks[m].text == "=" and toks[m - 1].kind == lex.ID:
                        var = toks[m - 1].text
                        break
                if not self._allowed(t.line):
                    state["win:" + (var or "?")] = t.line
            if self.cluster_rules and nxt == "(" \
                    and t.text == "exchange_finish":
                args = _call_arg_idents(toks, k + 1)
                closed = [key for key in state
                          if key.startswith("win:") and key[4:] in args]
                if closed:
                    for key in closed:
                        state.pop(key)
                else:
                    wins = [key for key in state if key.startswith("win:")]
                    if len(wins) == 1:
                        state.pop(wins[0])
            if t.text.startswith("ghost") and not self._allowed(t.line):
                plans = sorted(k for k in state if k.startswith("plan:"))
                if plans:
                    names = ", ".join(_window_label(k) for k in plans)
                    self.findings.append(Finding(
                        self.rule.name, self.facts.path, t.line,
                        f"`{t.text}` read inside the begin()/finish() "
                        f"window of {names}; slots the plan fills are not "
                        f"valid until finish()"))
        return state

    def _check_ghost(self, toks, state: dict) -> None:
        self._scan_tokens([t for t in toks if t.kind == lex.ID
                           and t.text.startswith("ghost")], state)


def _call_arg_idents(toks, open_idx: int) -> set:
    """Identifier tokens inside the () group opening at open_idx."""
    out = set()
    depth = 0
    for t in toks[open_idx:]:
        if t.text in "([{":
            depth += 1
        elif t.text in ")]}":
            depth -= 1
            if depth == 0:
                break
        elif t.kind == lex.ID:
            out.add(t.text)
    return out


def _receiver_type(project: Project, facts: FileFacts, fn: FunctionInfo,
                   name: str):
    """Declared type text for `name` in fn's scope, or None if unknown."""
    for v in fn.local_vars:
        if v.name == name:
            return v.type_text
    cls_name = fn.class_name
    if cls_name:
        for f in project.files:
            for cls in f.classes:
                if cls.name == cls_name:
                    for fld in cls.fields:
                        if fld.name == name:
                            return fld.type_text
    m = re.search(r"([\w:<>,&*\s]+?)[&*\s]+" + re.escape(name) + r"\b",
                  fn.param_text)
    if m:
        return m.group(1)
    return None


# ---------------------------------------------------------------------------
# deterministic-kernels
# ---------------------------------------------------------------------------

def check_deterministic(project: Project) -> list[Finding]:
    rule = rule_by_name("deterministic-kernels")
    findings: list[Finding] = []
    for facts in project.files:
        if facts.path == RNG_HOME or facts.path.endswith("support/rng.hpp"):
            continue
        unordered = _unordered_names(project, facts)
        for fn in facts.functions:
            local_unordered = unordered | {
                v.name for v in fn.local_vars if "unordered_" in v.type_text}
            for s in walk_stmts(fn.body):
                _det_scan(project, facts, rule, s, local_unordered,
                          findings)
    return findings


def _unordered_names(project: Project, facts: FileFacts) -> set:
    names = set()
    for cls in facts.classes:
        for fld in cls.fields:
            if "unordered_" in fld.type_text:
                names.add(fld.name)
    # Fields of classes defined in headers this file includes (same repo):
    # resolved coarsely by short include suffix match.
    for inc in facts.includes:
        for other in project.files:
            if other.path.endswith(inc):
                for cls in other.classes:
                    for fld in cls.fields:
                        if "unordered_" in fld.type_text:
                            names.add(fld.name)
    return names


def _det_scan(project, facts, rule, s: Stmt, unordered: set,
              findings: list) -> None:
    toks = list(s.tokens) + list(s.range_tokens)
    n = len(toks)
    for k, t in enumerate(toks):
        if t.kind != lex.ID:
            continue
        if project.allowed(facts, t.line, rule):
            continue
        nxt = toks[k + 1].text if k + 1 < n else ""
        prev = toks[k - 1].text if k > 0 else ""
        if t.text in ("rand", "srand") and nxt == "(" \
                and prev not in (".", "->"):
            findings.append(Finding(
                rule.name, facts.path, t.line,
                f"{t.text}(); kernels must be reproducible — seed through "
                f"support/rng.hpp"))
        elif t.text in RANDOM_IDENTS:
            findings.append(Finding(
                rule.name, facts.path, t.line,
                f"std::{t.text}; kernels must be reproducible — seed "
                f"through support/rng.hpp"))
        elif t.text in CLOCK_IDENTS:
            findings.append(Finding(
                rule.name, facts.path, t.line,
                f"{t.text}; wall-clock reads are nondeterministic — use "
                f"steady_clock inside support/ or pass time in"))
        elif t.text == "time" and nxt == "(" and k + 2 < n \
                and toks[k + 2].text in ("NULL", "nullptr", "0"):
            findings.append(Finding(
                rule.name, facts.path, t.line,
                "time(NULL); kernels must be reproducible"))
        elif t.text in ("begin", "cbegin") and nxt == "(" \
                and prev in (".", "->") and k >= 2 \
                and toks[k - 2].kind == lex.ID \
                and toks[k - 2].text in unordered \
                and (k + 2 >= n or toks[k + 2].text == ")"):
            findings.append(Finding(
                rule.name, facts.path, t.line,
                f"iteration over unordered container `{toks[k - 2].text}`; "
                f"order is not deterministic"))
    # Range-for over an unordered container.
    if s.range_tokens:
        for t in s.range_tokens:
            if t.kind == lex.ID and t.text in unordered \
                    and not project.allowed(facts, t.line, rule):
                findings.append(Finding(
                    rule.name, facts.path, t.line,
                    f"iteration over unordered container `{t.text}`; "
                    f"order is not deterministic"))


# ---------------------------------------------------------------------------
# solve-alloc
# ---------------------------------------------------------------------------

def check_solve_alloc(project: Project) -> list[Finding]:
    rule = rule_by_name("solve-alloc")
    by_name: dict = {}
    by_qual: dict = {}
    fn_facts: dict = {}
    for facts in project.files:
        for fn in facts.functions:
            by_name.setdefault(fn.name, []).append(fn)
            by_qual[fn.qualname] = fn
            fn_facts[id(fn)] = facts

    entries = [fn for fn in by_qual.values()
               if any(fn.qualname.endswith(sfx)
                      for sfx in SOLVE_ENTRY_SUFFIXES)]
    findings: list[Finding] = []
    visited: dict = {}  # qualname -> entry description (for messages)

    stack = [(fn, fn.qualname.split("::")[-1]) for fn in entries]
    for fn, _ in stack:
        visited[fn.qualname] = fn.qualname.split("::")[-1]
    while stack:
        fn, entry = stack.pop()
        for call in fn.calls:
            if call.in_debug_gate:
                continue
            callee = _resolve_call(project, fn_facts[id(fn)], fn, call,
                                   by_name)
            if callee is None or callee.qualname in visited:
                continue
            visited[callee.qualname] = entry
            stack.append((callee, entry))

    for qual, entry in visited.items():
        fn = by_qual[qual]
        facts = fn_facts[id(fn)]
        for call in fn.calls:
            if call.in_debug_gate:
                continue
            flagged = (call.name in GROWTH_CALLS and call.receiver) \
                or call.name in ALLOC_CALLS
            if not flagged:
                continue
            if project.allowed(facts, call.line, rule):
                continue
            findings.append(Finding(
                rule.name, facts.path, call.line,
                f"allocating call `{call.name}` in `{fn.qualname}`, which "
                f"is reachable from solve entry `{entry}`; the solve path "
                f"is allocation-free by contract "
                f"(tests/solver_alloc_test.cpp)"))
        for s in walk_stmts(fn.body):
            for k, t in enumerate(s.tokens):
                if t.kind == lex.ID and t.text == "new" \
                        and (k == 0 or s.tokens[k - 1].text
                             not in (".", "->", "::")) \
                        and not project.allowed(facts, t.line, rule):
                    findings.append(Finding(
                        rule.name, facts.path, t.line,
                        f"`new` expression in `{fn.qualname}`, which is "
                        f"reachable from solve entry `{entry}`; the solve "
                        f"path is allocation-free by contract"))
    return findings


def _resolve_call(project, facts, fn, call: CallSite, by_name):
    """The unique FunctionInfo a call resolves to, or None. Conservative:
    unresolvable or ambiguous calls are not traversed (flagging inside the
    caller still happens regardless)."""
    candidates = by_name.get(call.name, [])
    if not candidates:
        return None
    if call.receiver and call.receiver != "<expr>":
        ty = _receiver_type(project, facts, fn, call.receiver)
        if ty is not None:
            typed = [c for c in candidates
                     if c.class_name and c.class_name in ty]
            if len(typed) == 1:
                return typed[0]
            return None
        # Unknown receiver type: traverse only an unambiguous method.
        methods = [c for c in candidates if c.class_name]
        return methods[0] if len(methods) == 1 else None
    if call.qualifier:
        qualed = [c for c in candidates if call.qualifier in c.qualname]
        return qualed[0] if len(qualed) == 1 else None
    # Free call: prefer free functions; also allow a unique same-class
    # method (implicit this).
    free = [c for c in candidates if not c.class_name]
    if len(free) == 1:
        return free[0]
    same_cls = [c for c in candidates
                if c.class_name and c.class_name == fn.class_name]
    if len(same_cls) == 1:
        return same_cls[0]
    return None


# ---------------------------------------------------------------------------
# simd-tier
# ---------------------------------------------------------------------------

def check_simd_tier(project: Project) -> list[Finding]:
    """hsum() is the relaxed determinism tier: it sums lanes in order, so
    its rounding depends on the active simd width. Kernel code must reduce
    through tree_reduce/tree_combine (fixed kReduceLanes virtual lanes,
    width-invariant tree) — see docs/parallelism.md. Direct hsum() call
    sites outside the helper's home (support/simd.hpp) need an explicit
    allow(simd-tier) marker."""
    rule = rule_by_name("simd-tier")
    findings: list[Finding] = []
    for facts in project.files:
        if facts.path.endswith("support/simd.hpp"):
            continue
        for fn in facts.functions:
            for s in walk_stmts(fn.body):
                toks = list(s.tokens) + list(s.range_tokens)
                n = len(toks)
                for k, t in enumerate(toks):
                    if t.kind != lex.ID or t.text != "hsum":
                        continue
                    nxt = toks[k + 1].text if k + 1 < n else ""
                    if nxt != "(":
                        continue
                    if project.allowed(facts, t.line, rule):
                        continue
                    findings.append(Finding(
                        rule.name, facts.path, t.line,
                        "hsum() is a relaxed-tier lane-order reduction "
                        "whose rounding changes with the simd width; use "
                        "tree_reduce/tree_combine for bit-stable results "
                        "or mark the site allow(simd-tier)"))
    return findings


# ---------------------------------------------------------------------------
# allow-audit
# ---------------------------------------------------------------------------

def check_allow_audit(project: Project) -> list[Finding]:
    rule = rule_by_name("allow-audit")
    findings: list[Finding] = []
    for facts in project.files:
        for idx, line in enumerate(facts.lines):
            m = ALLOW_RE.search(line)
            if not m:
                continue
            line_no = idx + 1
            if project.allowed(facts, line_no, rule):
                continue
            for name in (s.strip() for s in m.group(1).split(",")):
                if name not in KNOWN_ALLOW_NAMES:
                    findings.append(Finding(
                        rule.name, facts.path, line_no,
                        f"`allow({name})` names an unknown rule; known "
                        f"rules: "
                        f"{', '.join(sorted(KNOWN_ALLOW_NAMES))}"))
    return findings
