"""cpxcheck command-line interface (docs/static_analysis.md).

    python3 tools/cpxcheck                     # analyse src/
    python3 tools/cpxcheck --list [--json]     # rule inventory
    python3 tools/cpxcheck path... --engine lite --baseline none

Engines: `clang` (libclang via clang.cindex, driven by
compile_commands.json from -p/--compile-commands), `lite` (pure-Python
outline parser, zero dependencies), `auto` (clang when importable, lite
otherwise). Both produce the same facts model; rules run unchanged.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import baseline as baseline_mod
import lite
import rules
from model import FileFacts

REPO = Path(__file__).resolve().parent.parent.parent
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.txt"


def _collect_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for root in paths:
        root = root if root.is_absolute() else (Path.cwd() / root)
        root = root.resolve()
        if root.is_dir():
            files.extend(sorted(root.rglob("*.hpp")))
            files.extend(sorted(root.rglob("*.cpp")))
        elif root.is_file():
            files.append(root)
        else:
            print(f"cpxcheck: no such path: {root}", file=sys.stderr)
            raise SystemExit(2)
    return sorted(set(files))


def _rel(path: Path) -> str:
    try:
        return path.resolve().relative_to(REPO).as_posix()
    except ValueError:
        return path.resolve().as_posix()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="cpxcheck", description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories (default: src/)")
    parser.add_argument("--engine", choices=("auto", "clang", "lite"),
                        default="auto")
    parser.add_argument("-p", "--compile-commands", type=Path, default=None,
                        metavar="BUILD_DIR",
                        help="build directory holding compile_commands.json"
                             " (clang engine)")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                        help="baseline file, or `none` to disable")
    parser.add_argument("--list", action="store_true",
                        help="print the rule inventory and exit")
    parser.add_argument("--json", action="store_true",
                        help="with --list: machine-readable output")
    args = parser.parse_args(argv)

    if args.list:
        if args.json:
            print(json.dumps(
                [{"name": r.name, "summary": r.summary,
                  "aliases": sorted(r.aliases), "tool": "cpxcheck"}
                 for r in rules.RULES], indent=2))
        else:
            for r in rules.RULES:
                print(f"{r.name:22} {r.summary}")
        return 0

    engine = args.engine
    clangfe = None
    if engine in ("auto", "clang"):
        import clangfe as _clangfe
        if _clangfe.available():
            clangfe = _clangfe
            engine = "clang"
        elif args.engine == "clang":
            print("cpxcheck: --engine clang requested but clang.cindex / "
                  "libclang is not available", file=sys.stderr)
            return 2
        else:
            engine = "lite"

    files = _collect_files(args.paths or [REPO / "src"])
    compile_args = {}
    if clangfe is not None:
        compile_args = clangfe.load_compile_args(args.compile_commands)

    project = rules.Project()
    for path in files:
        text = path.read_text(encoding="utf-8")
        rel = _rel(path)
        if clangfe is not None:
            facts = clangfe.parse_file(rel, text, REPO, compile_args)
        else:
            facts = lite.parse_file(rel, text)
        project.files.append(facts)

    findings = rules.run_rules(project)

    if args.baseline != "none":
        bl_path = Path(args.baseline)
        if bl_path.is_file():
            entries, errors = baseline_mod.load(bl_path)
            findings = baseline_mod.apply(findings, entries, bl_path) \
                + errors
            findings.sort(key=lambda f: (f.path, f.line, f.rule))

    if findings:
        for f in findings:
            print(f.render())
        print(f"\ncpxcheck: {len(findings)} finding(s) "
              f"({engine} engine, {len(files)} files)", file=sys.stderr)
        return 1
    print(f"cpxcheck: {len(files)} files clean ({engine} engine)")
    return 0
