"""libclang frontend for cpxcheck (docs/static_analysis.md).

Lowers translation units into the model.py facts through clang.cindex,
when available: real type resolution, macro-expanded declarations, exact
qualified names. Availability is gated — environments without libclang
(or without the python bindings) fall back to lite.py per file, and the
rules run unchanged on either engine's facts.

Driven by compile_commands.json when a build directory is provided
(CMAKE_EXPORT_COMPILE_COMMANDS is ON in the top-level CMakeLists.txt), so
headers resolve exactly as the real build sees them.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path

import lex
import lite
from model import (CallSite, ClassInfo, FieldInfo, FileFacts, FunctionInfo,
                   S_BLOCK, S_IF, S_LOOP, S_RETURN, S_SIMPLE, S_SWITCH,
                   S_THROW, S_TRY, Stmt, VarDecl)


def available() -> bool:
    try:
        import clang.cindex  # noqa: F401
    except Exception:
        return False
    try:
        _index()
        return True
    except Exception:
        return False


_INDEX = None


def _index():
    global _INDEX
    if _INDEX is None:
        from clang import cindex
        lib = os.environ.get("CPXCHECK_LIBCLANG")
        if lib and not cindex.Config.loaded:
            if Path(lib).is_dir():
                cindex.Config.set_library_path(lib)
            else:
                cindex.Config.set_library_file(lib)
        _INDEX = cindex.Index.create()
    return _INDEX


def load_compile_args(build_dir: Path | None) -> dict[str, list[str]]:
    """file (resolved) -> compiler args from compile_commands.json."""
    if build_dir is None:
        return {}
    cc = build_dir / "compile_commands.json"
    if not cc.is_file():
        return {}
    out: dict[str, list[str]] = {}
    for entry in json.loads(cc.read_text(encoding="utf-8")):
        args = entry.get("arguments")
        if not args:
            args = entry.get("command", "").split()
        # Drop the compiler itself, the input file and output options.
        cleaned: list[str] = []
        skip = False
        for a in args[1:]:
            if skip:
                skip = False
                continue
            if a in ("-o", "-c"):
                skip = a == "-o"
                continue
            if a.endswith((".cpp", ".cc", ".o")):
                continue
            cleaned.append(a)
        key = str((Path(entry.get("directory", "."))
                   / entry["file"]).resolve())
        out[key] = cleaned
    return out


def parse_file(path: str, text: str, repo: Path,
               compile_args: dict[str, list[str]]) -> FileFacts:
    """Parses with libclang; falls back to lite.py on any failure."""
    try:
        return _parse_clang(path, text, repo, compile_args)
    except Exception:
        return lite.parse_file(path, text)


def _parse_clang(path: str, text: str, repo: Path,
                 compile_args: dict[str, list[str]]) -> FileFacts:
    from clang import cindex

    abs_path = str((repo / path).resolve())
    args = compile_args.get(abs_path)
    if args is None:
        args = ["-std=c++20", "-I" + str(repo / "src")]
        # Headers parse as C++ too.
        if path.endswith((".hpp", ".h")):
            args = ["-x", "c++"] + args
    tu = _index().parse(abs_path, args=args,
                        unsaved_files=[(abs_path, text)],
                        options=0)
    facts = FileFacts(path=path, engine="clang",
                      includes=[i.include.name for i in tu.get_includes()
                                if i.depth == 1],
                      lines=text.splitlines())
    _walk_cursor(tu.cursor, facts, abs_path, [])
    return facts


def _qualname(cursor) -> str:
    parts = []
    c = cursor
    while c is not None and c.spelling:
        from clang import cindex
        if c.kind == cindex.CursorKind.TRANSLATION_UNIT:
            break
        parts.insert(0, c.spelling)
        c = c.semantic_parent
    return "::".join(parts)


def _walk_cursor(cursor, facts: FileFacts, abs_path: str,
                 class_stack: list) -> None:
    from clang import cindex
    K = cindex.CursorKind
    for child in cursor.get_children():
        loc_file = child.location.file
        if loc_file is None or str(loc_file) != abs_path:
            continue
        if child.kind in (K.NAMESPACE, K.LINKAGE_SPEC,
                          K.UNEXPOSED_DECL):
            _walk_cursor(child, facts, abs_path, class_stack)
        elif child.kind in (K.CLASS_DECL, K.STRUCT_DECL, K.UNION_DECL,
                            K.CLASS_TEMPLATE):
            if not child.is_definition():
                continue
            info = ClassInfo(name=child.spelling,
                             qualname=_qualname(child),
                             line=child.location.line)
            facts.classes.append(info)
            for member in child.get_children():
                if member.kind == K.FIELD_DECL:
                    info.fields.append(FieldInfo(
                        name=member.spelling,
                        type_text=member.type.spelling,
                        line=member.location.line,
                        is_static=False))
                elif member.kind == K.VAR_DECL:
                    info.fields.append(FieldInfo(
                        name=member.spelling,
                        type_text=member.type.spelling,
                        line=member.location.line,
                        is_static=True))
                elif member.kind in (K.CXX_METHOD, K.CONSTRUCTOR,
                                     K.DESTRUCTOR, K.FUNCTION_TEMPLATE):
                    info.method_names.add(member.spelling)
            _walk_cursor(child, facts, abs_path, class_stack + [info])
        elif child.kind in (K.CXX_METHOD, K.FUNCTION_DECL, K.CONSTRUCTOR,
                            K.DESTRUCTOR, K.FUNCTION_TEMPLATE):
            if not child.is_definition():
                continue
            fn = FunctionInfo(
                name=child.spelling,
                qualname=_qualname(child),
                line=child.location.line,
                param_text=", ".join(
                    f"{a.type.spelling} {a.spelling}"
                    for a in child.get_arguments()))
            _lower_body(child, fn)
            facts.functions.append(fn)
        else:
            _walk_cursor(child, facts, abs_path, class_stack)


def _lower_body(cursor, fn: FunctionInfo) -> None:
    from clang import cindex
    K = cindex.CursorKind
    body = next((c for c in cursor.get_children()
                 if c.kind == K.COMPOUND_STMT), None)
    if body is None:
        return
    fn.body = _lower_stmts(body, fn, in_debug_gate=False)
    for tok in body.get_tokens():
        if tok.kind == cindex.TokenKind.IDENTIFIER:
            fn.body_idents.add(tok.spelling)


_DEBUG_GATE_RE = re.compile(
    r"\bcheck\s*::\s*(?:deep|paranoid)|\bCPX_DCHECK_ENABLED\b")


def _lower_stmts(cursor, fn: FunctionInfo, in_debug_gate: bool) -> list[Stmt]:
    from clang import cindex
    K = cindex.CursorKind
    out: list[Stmt] = []
    for child in cursor.get_children():
        line = child.location.line
        kindmap = {
            K.IF_STMT: S_IF,
            K.FOR_STMT: S_LOOP,
            K.CXX_FOR_RANGE_STMT: S_LOOP,
            K.WHILE_STMT: S_LOOP,
            K.DO_STMT: S_LOOP,
            K.SWITCH_STMT: S_SWITCH,
            K.CXX_TRY_STMT: S_TRY,
            K.RETURN_STMT: S_RETURN,
            K.COMPOUND_STMT: S_BLOCK,
        }
        if child.kind == K.DECL_STMT:
            s = Stmt(S_SIMPLE, line, tokens=_cursor_tokens(child))
            for d in child.get_children():
                if d.kind == K.VAR_DECL:
                    fn.local_vars.append(VarDecl(
                        name=d.spelling, type_text=d.type.spelling,
                        line=d.location.line))
            _collect_calls(child, fn, in_debug_gate)
            out.append(s)
            continue
        kind = kindmap.get(child.kind)
        if kind is None:
            if child.kind == K.CXX_THROW_EXPR or (
                    child.kind == K.UNEXPOSED_EXPR and
                    "throw" in [t.spelling
                                for t in list(child.get_tokens())[:1]]):
                s = Stmt(S_THROW, line, tokens=_cursor_tokens(child))
                _collect_calls(child, fn, in_debug_gate)
                out.append(s)
            else:
                s = Stmt(S_SIMPLE, line, tokens=_cursor_tokens(child))
                _collect_calls(child, fn, in_debug_gate)
                out.append(s)
            continue
        children = list(child.get_children())
        if kind == S_IF:
            cond = children[0] if children else None
            cond_toks = _cursor_tokens(cond) if cond is not None else []
            gated = in_debug_gate or bool(_DEBUG_GATE_RE.search(
                " ".join(t.text for t in cond_toks)))
            node = Stmt(S_IF, line, tokens=cond_toks)
            if cond is not None:
                _collect_calls(cond, fn, in_debug_gate)
            if len(children) >= 2:
                node.children = _wrap(children[1], fn, gated)
            if len(children) >= 3:
                node.else_children = _wrap(children[2], fn, in_debug_gate)
            out.append(node)
            continue
        if kind == S_LOOP:
            node = Stmt(S_LOOP, line)
            if child.kind == K.CXX_FOR_RANGE_STMT and len(children) >= 2:
                node.decl_tokens = _cursor_tokens(children[0])
                node.range_tokens = _cursor_tokens(children[-2]) \
                    if len(children) >= 2 else []
            body_cursor = children[-1] if children else None
            for c in children[:-1]:
                _collect_calls(c, fn, in_debug_gate)
                node.tokens.extend(_cursor_tokens(c))
            if body_cursor is not None:
                node.children = _wrap(body_cursor, fn, in_debug_gate)
            out.append(node)
            continue
        if kind == S_SWITCH:
            node = Stmt(S_SWITCH, line)
            for c in children[:-1]:
                _collect_calls(c, fn, in_debug_gate)
                node.tokens.extend(_cursor_tokens(c))
            if children:
                node.children = _wrap(children[-1], fn, in_debug_gate)
            out.append(node)
            continue
        if kind == S_TRY:
            node = Stmt(S_TRY, line)
            if children:
                node.children = _wrap(children[0], fn, in_debug_gate)
            for handler in children[1:]:
                node.else_children.extend(
                    _wrap(handler, fn, in_debug_gate))
            out.append(node)
            continue
        if kind == S_RETURN:
            s = Stmt(S_RETURN, line, tokens=_cursor_tokens(child))
            _collect_calls(child, fn, in_debug_gate)
            out.append(s)
            continue
        if kind == S_BLOCK:
            out.append(Stmt(S_BLOCK, line,
                            children=_lower_stmts(child, fn,
                                                  in_debug_gate)))
    return out


def _wrap(cursor, fn: FunctionInfo, gated: bool) -> list[Stmt]:
    from clang import cindex
    if cursor.kind == cindex.CursorKind.COMPOUND_STMT:
        return [Stmt(S_BLOCK, cursor.location.line,
                     children=_lower_stmts(cursor, fn, gated))]
    return _lower_stmts(_single(cursor), fn, gated)


class _single:
    """Adapter: presents one cursor as an iterable-of-children parent."""

    def __init__(self, cursor) -> None:
        self.cursor = cursor

    def get_children(self):
        return iter((self.cursor,))


def _cursor_tokens(cursor) -> list:
    from clang import cindex
    toks = []
    kindmap = {
        cindex.TokenKind.IDENTIFIER: lex.ID,
        cindex.TokenKind.KEYWORD: lex.ID,
        cindex.TokenKind.LITERAL: lex.NUM,
        cindex.TokenKind.PUNCTUATION: lex.PUNCT,
    }
    for t in cursor.get_tokens():
        kind = kindmap.get(t.kind)
        if kind is None:
            continue
        toks.append(lex.Tok(kind, t.spelling, t.location.line))
    return toks


def _collect_calls(cursor, fn: FunctionInfo, gated: bool) -> None:
    from clang import cindex
    K = cindex.CursorKind
    def visit(c):
        if c.kind in (K.CALL_EXPR,):
            ref = c.referenced
            name = c.spelling or (ref.spelling if ref is not None else "")
            qualifier = ""
            receiver = ""
            if ref is not None:
                q = _qualname(ref)
                if "::" in q:
                    qualifier = q.rsplit("::", 1)[0]
            if name:
                fn.calls.append(CallSite(
                    name=name, qualifier=qualifier, receiver=receiver,
                    line=c.location.line, in_debug_gate=gated))
        for sub in c.get_children():
            visit(sub)
    visit(cursor)
