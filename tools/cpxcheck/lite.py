"""Pure-Python frontend for cpxcheck (docs/static_analysis.md).

Lowers a C++ translation unit into the model.py facts without libclang:
a declaration-scope outline parser (namespaces, classes, fields, function
definitions with qualified names) plus a statement-tree parser for function
bodies (blocks, if/else, loops, try/catch, return/throw) and extraction of
call sites, local variable declarations and body identifiers.

It is NOT a C++ parser — templates, overload resolution and macro expansion
are approximated — but it resolves the facts the rules need (which class a
field belongs to, which statements a call sits under, what type a receiver
was declared with) far beyond what per-line regexes can, and it produces
the same model as the libclang frontend, so the rule suite and its fixture
tests run in environments without clang installed.
"""

from __future__ import annotations

import re

import lex
from lex import Tok
from model import (CallSite, ClassInfo, FieldInfo, FileFacts, FunctionInfo,
                   S_BLOCK, S_IF, S_LOOP, S_RETURN, S_SIMPLE, S_SWITCH,
                   S_THROW, S_TRY, Stmt, VarDecl)

_INCLUDE_RE = re.compile(r'^\s*#\s*include\s*[<"]([^>"]+)[>"]', re.MULTILINE)
_MACRO_NAME_RE = re.compile(r"^[A-Z][A-Z0-9_]*$")

_CONTROL_KEYWORDS = frozenset({
    "if", "while", "for", "switch", "return", "sizeof", "alignof",
    "catch", "throw", "new", "delete", "case", "default", "do", "else",
    "static_assert", "decltype", "noexcept", "alignas", "typeid",
})

_DECL_SPECIFIERS = frozenset({
    "static", "constexpr", "const", "inline", "mutable", "virtual",
    "explicit", "friend", "typedef", "using", "extern", "thread_local",
    "volatile", "register", "consteval", "constinit",
})

_DEBUG_GATE_RE = re.compile(
    r"\bcheck\s*::\s*(?:deep|paranoid)|\bCPX_DCHECK_ENABLED\b")


def parse_file(path: str, text: str) -> FileFacts:
    toks = lex.tokenize(text)
    facts = FileFacts(path=path, engine="lite",
                      includes=_INCLUDE_RE.findall(text),
                      lines=text.splitlines())
    match = _match_brackets(toks)
    _Scope(toks, match, facts).walk(0, len(toks), [], None)
    return facts


def _match_brackets(toks: list[Tok]) -> dict[int, int]:
    """open-index -> close-index for (), [], {} (best effort on imbalance)."""
    match: dict[int, int] = {}
    stacks: dict[str, list[int]] = {"(": [], "[": [], "{": []}
    closers = {")": "(", "]": "[", "}": "{"}
    for i, t in enumerate(toks):
        if t.kind != lex.PUNCT:
            continue
        if t.text in stacks:
            stacks[t.text].append(i)
        elif t.text in closers:
            stack = stacks[closers[t.text]]
            if stack:
                match[stack.pop()] = i
    for stack in stacks.values():
        for i in stack:
            match[i] = len(toks)  # unclosed: runs to EOF
    return match


def _flatten(toks: list[Tok]) -> str:
    out: list[str] = []
    for t in toks:
        if t.kind == lex.STR:
            out.append('"' + t.text + '"')
        elif out and (out[-1][-1:].isalnum() or out[-1][-1:] == "_") and (
                t.text[:1].isalnum() or t.text[:1] == "_"):
            out.append(" " + t.text)
        else:
            out.append(t.text)
    return "".join(out)


class _Scope:
    """Walks declaration scopes (global / namespace / class bodies)."""

    def __init__(self, toks: list[Tok], match: dict[int, int],
                 facts: FileFacts) -> None:
        self.toks = toks
        self.match = match
        self.facts = facts

    # -- declaration-scope walk ------------------------------------------

    def walk(self, lo: int, hi: int, ns: list[str],
             cls: ClassInfo | None) -> None:
        i = lo
        while i < hi:
            i = self._declaration(i, hi, ns, cls)

    def _declaration(self, i: int, hi: int, ns: list[str],
                     cls: ClassInfo | None) -> int:
        toks, match = self.toks, self.match
        # Skip empty declarations and access specifiers.
        while i < hi:
            t = toks[i]
            if t.text == ";":
                i += 1
            elif (t.text in ("public", "private", "protected")
                  and i + 1 < hi and toks[i + 1].text == ":"):
                i += 2
            else:
                break
        if i >= hi:
            return hi

        head: list[Tok] = []
        saw_eq = False          # top-level `=` → initializer follows
        params: list[Tok] | None = None   # parameter-list group contents
        params_open = -1
        in_init = False         # inside a constructor init list
        j = i
        while j < hi:
            t = toks[j]
            if t.text == "template" and j + 1 < hi and toks[j + 1].text == "<":
                close = self._angle_close(j + 1, hi)
                head.append(t)
                j = close + 1
                continue
            if t.text in "([":
                close = match.get(j, hi)
                if (t.text == "(" and params is None and not saw_eq
                        and head and head[-1].kind == lex.ID
                        and head[-1].text != "operator"
                        and head[-1].text not in _CONTROL_KEYWORDS
                        and not _MACRO_NAME_RE.match(head[-1].text)
                        or t.text == "(" and params is None and not saw_eq
                        and len(head) >= 2 and head[-1].text in
                        ("=", "(", ")", "[", "]", "<", ">", "+", "-", "*",
                         "/", "%", "!", "&", "|", "^", "~")
                        and head[-2].text == "operator"):
                    params = toks[j + 1:close]
                    params_open = j
                head.extend(toks[j:min(close + 1, hi)])
                j = close + 1
                continue
            if t.text == "=":
                # `operator=` is part of a declarator name, not an
                # initializer; so is `= default` / `= delete` after params.
                if not (head and head[-1].text == "operator"):
                    saw_eq = True
                head.append(t)
                j += 1
                continue
            if (t.text == ":" and params is not None and not saw_eq
                    and j + 1 < hi and toks[j + 1].text != ":"
                    and (j == 0 or toks[j - 1].text != ":")):
                in_init = True
                head.append(t)
                j += 1
                continue
            if t.text == ";":
                self._classify_no_body(head, params, ns, cls)
                return j + 1
            if t.text == "{":
                close = match.get(j, hi)
                if saw_eq or (in_init and self._init_continues(close, hi)):
                    # Initializer brace (or an init-list item's braces):
                    # part of the declaration, keep scanning.
                    head.extend(toks[j:min(close + 1, hi)])
                    j = close + 1
                    continue
                if (params is None and not in_init and head
                        and head[-1].kind == lex.ID
                        and not any(x.text in ("namespace", "class",
                                               "struct", "union", "enum",
                                               "extern")
                                    for x in head)):
                    # Brace initializer on a member/variable without `=`:
                    # `std::atomic<int> job_next_{0};` — part of the
                    # declaration, keep scanning toward the `;`.
                    head.extend(toks[j:min(close + 1, hi)])
                    j = close + 1
                    continue
                return self._classify_body(head, params, params_open, j,
                                           close, ns, cls, hi)
            if t.text == "}":
                return j + 1  # scope closer reached mid-declaration
            head.append(t)
            j += 1
        return hi

    def _init_continues(self, close: int, hi: int) -> bool:
        """After an init-list item's {…}, a `,` means more items follow."""
        return close + 1 < hi and self.toks[close + 1].text == ","

    def _angle_close(self, open_idx: int, hi: int) -> int:
        depth = 0
        for j in range(open_idx, hi):
            t = self.toks[j].text
            if t == "<":
                depth += 1
            elif t == ">":
                depth -= 1
                if depth == 0:
                    return j
            elif t == ">>":
                depth -= 2
                if depth <= 0:
                    return j
            elif t in (";", "{"):
                break
        return open_idx  # not a template header after all

    # -- classification ---------------------------------------------------

    def _classify_no_body(self, head: list[Tok], params: list[Tok] | None,
                          ns: list[str], cls: ClassInfo | None) -> None:
        if not head or cls is None:
            return
        first = head[0].text
        if first in ("using", "typedef", "friend", "template", "enum",
                     "class", "struct", "union"):
            return
        if params is not None:
            # Method declaration (incl. `= default` / `= delete`).
            name = self._name_before_params(head)
            if name:
                cls.method_names.add(name)
            return
        self._record_fields(head, cls)

    def _classify_body(self, head: list[Tok], params: list[Tok] | None,
                       params_open: int, body_open: int, body_close: int,
                       ns: list[str], cls: ClassInfo | None,
                       hi: int) -> int:
        toks = self.toks
        inner_lo, inner_hi = body_open + 1, min(body_close, hi)
        kw = next((t.text for t in head
                   if t.text in ("namespace", "class", "struct", "union",
                                 "enum", "extern")), "")
        first = head[0].text if head else ""
        if first == "namespace":
            parts = [t.text for t in head[1:] if t.kind == lex.ID]
            self.walk(inner_lo, inner_hi, ns + parts, None)
            return body_close + 1
        if first == "extern" and len(head) >= 2 and head[1].kind == lex.STR:
            self.walk(inner_lo, inner_hi, ns, cls)
            return body_close + 1
        if first == "enum" or kw == "enum":
            return self._skip_trailer(body_close + 1, hi)
        if kw in ("class", "struct", "union") and params is None or (
                kw in ("class", "struct", "union")
                and first in ("class", "struct", "union", "template")):
            name = self._class_name(head)
            qual = "::".join(ns + ([cls.name] if cls else []) + [name])
            info = ClassInfo(name=name, qualname=qual,
                             line=head[0].line if head else toks[body_open].line)
            self.facts.classes.append(info)
            self.walk(inner_lo, inner_hi, ns + ([cls.name] if cls else []),
                      info)
            return self._skip_trailer(body_close + 1, hi)
        if params is not None:
            self._record_function(head, params, inner_lo, inner_hi, ns, cls)
            return body_close + 1
        # Unrecognised braced declaration: treat as opaque.
        return self._skip_trailer(body_close + 1, hi)

    def _skip_trailer(self, i: int, hi: int) -> int:
        """Consumes a `} name_, other_;` trailer after a type body — but
        only when a `;` genuinely follows; otherwise stays put."""
        j = i
        while j < hi and (self.toks[j].kind == lex.ID
                          or self.toks[j].text in (",", "*", "&")):
            j += 1
        if j < hi and self.toks[j].text == ";":
            return j + 1
        return i

    def _class_name(self, head: list[Tok]) -> str:
        # Name = last identifier before a base-clause `:` (or end of head),
        # skipping attribute-macro calls like CPX_CAPABILITY("mutex").
        end = len(head)
        depth = 0
        for k, t in enumerate(head):
            if t.text in "([":
                depth += 1
            elif t.text in ")]":
                depth -= 1
            elif (t.text == ":" and depth == 0 and k > 0
                  and head[k - 1].text != ":"
                  and (k + 1 >= len(head) or head[k + 1].text != ":")):
                end = k
                break
        for k in range(end - 1, -1, -1):
            t = head[k]
            if t.kind == lex.ID and t.text not in ("final", "class",
                                                   "struct", "union"):
                if _MACRO_NAME_RE.match(t.text) and k + 1 < end \
                        and head[k + 1].text == "(":
                    continue
                return t.text
        return "<anon>"

    def _name_before_params(self, head: list[Tok]) -> str:
        """The declarator name: identifier chain right before the parameter
        list. Strips trailing attribute-macro calls first."""
        k = len(head) - 1
        # Drop trailing qualifier tokens and macro groups after the params.
        while k >= 0:
            t = head[k]
            if t.text == ")":
                depth = 0
                while k >= 0:
                    if head[k].text == ")":
                        depth += 1
                    elif head[k].text == "(":
                        depth -= 1
                        if depth == 0:
                            break
                    k -= 1
                k -= 1
                # The identifier before this group is the candidate name —
                # unless it is a SHOUTING macro (annotation), in which case
                # keep walking left.
                if k >= 0 and head[k].kind == lex.ID \
                        and _MACRO_NAME_RE.match(head[k].text):
                    k -= 1
                    continue
                break
            if t.kind == lex.ID and not _MACRO_NAME_RE.match(t.text) \
                    and t.text not in ("const", "noexcept", "override",
                                       "final", "mutable"):
                break
            k -= 1
        if k < 0:
            return ""
        t = head[k]
        if t.kind == lex.ID:
            if k >= 1 and head[k - 1].text == "operator":
                return "operator " + t.text  # operator new etc.
            return t.text
        if t.kind == lex.PUNCT and k >= 1 and head[k - 1].text == "operator":
            return "operator" + t.text
        return ""

    def _qualname_before_params(self, head: list[Tok]) -> list[str]:
        """['Cluster', 'exchange_finish'] for `void Cluster::exchange_finish(`.
        Walks back from the parameter group over `ident(::ident)*`."""
        # Locate the parameter group: first top-level '(' whose preceding
        # identifier is the declarator name (mirror of head collection).
        idx = None
        depth = 0
        for k, t in enumerate(head):
            if t.text in "([":
                if t.text == "(" and depth == 0 and k > 0:
                    prev = head[k - 1]
                    if (prev.kind == lex.ID
                            and prev.text not in _CONTROL_KEYWORDS
                            and not _MACRO_NAME_RE.match(prev.text)) or (
                            prev.kind == lex.PUNCT and k >= 2
                            and head[k - 2].text == "operator"):
                        idx = k
                        break
                depth += 1
            elif t.text in ")]":
                depth -= 1
        if idx is None:
            return []
        k = idx - 1
        if head[k].kind == lex.PUNCT and head[k - 1].text == "operator":
            name = "operator" + head[k].text
            k -= 2
        else:
            name = head[k].text
            k -= 1
            if k >= 0 and head[k].text == "operator":
                name = "operator " + name
                k -= 1
            elif k >= 0 and head[k].text == "~":
                name = "~" + name
                k -= 1
        parts = [name]
        while k >= 1 and head[k].text == "::" and head[k - 1].kind == lex.ID:
            parts.insert(0, head[k - 1].text)
            k -= 2
        return parts

    # -- fields -----------------------------------------------------------

    def _record_fields(self, head: list[Tok], cls: ClassInfo) -> None:
        if not head:
            return
        is_static = any(t.text in ("static", "constexpr") for t in head)
        first = head[0].text
        if first in _DECL_SPECIFIERS and first in ("using", "typedef",
                                                   "friend", "extern"):
            return
        # Declarator part: everything before a top-level `=` or the first
        # initializer brace group.
        decl: list[Tok] = []
        depth = 0
        for t in head:
            if t.text in "([{":
                depth += 1
            elif t.text in ")]}":
                depth -= 1
            if t.text == "=" and depth == 0:
                break
            if t.text == "{" and depth == 1:
                break
            decl.append(t)
        # Strip trailing annotation-macro groups: `name CPX_GUARDED_BY(m)`.
        while (len(decl) >= 3 and decl[-1].text == ")"):
            d = 0
            k = len(decl) - 1
            while k >= 0:
                if decl[k].text == ")":
                    d += 1
                elif decl[k].text == "(":
                    d -= 1
                    if d == 0:
                        break
                k -= 1
            if k >= 1 and decl[k - 1].kind == lex.ID \
                    and _MACRO_NAME_RE.match(decl[k - 1].text):
                decl = decl[:k - 1]
                continue
            break
        # Strip trailing array extents `name[3]`.
        while len(decl) >= 2 and decl[-1].text == "]":
            d = 0
            k = len(decl) - 1
            while k >= 0:
                if decl[k].text == "]":
                    d += 1
                elif decl[k].text == "[":
                    d -= 1
                    if d == 0:
                        break
                k -= 1
            decl = decl[:k]
        # Bitfield `int x : 3` — cut at top-level ':'.
        for k, t in enumerate(decl):
            if t.text == ":" and (k == 0 or decl[k - 1].text != ":") \
                    and (k + 1 >= len(decl) or decl[k + 1].text != ":"):
                decl = decl[:k]
                break
        if not decl or decl[-1].kind != lex.ID:
            return
        name_tok = decl[-1]
        if name_tok.text in _DECL_SPECIFIERS or \
                name_tok.text in _CONTROL_KEYWORDS:
            return
        type_text = _flatten(decl[:-1])
        if not type_text:
            return
        cls.fields.append(FieldInfo(name=name_tok.text, type_text=type_text,
                                    line=name_tok.line, is_static=is_static))

    # -- functions --------------------------------------------------------

    def _record_function(self, head: list[Tok], params: list[Tok],
                         body_lo: int, body_hi: int, ns: list[str],
                         cls: ClassInfo | None) -> None:
        rel = self._qualname_before_params(head)
        if not rel:
            return
        outer = ns + ([cls.name] if cls else [])
        qual = "::".join(outer + rel)
        fn = FunctionInfo(name=rel[-1], qualname=qual,
                          line=head[0].line if head else 0,
                          param_text=_flatten(params))
        if cls is not None:
            cls.method_names.add(rel[-1])
        body = _BodyParser(self.toks, self.match).parse(body_lo, body_hi)
        fn.body = body
        _extract_body_facts(fn, self.toks, body_lo, body_hi, body)
        self.facts.functions.append(fn)


# -- statement tree -------------------------------------------------------

class _BodyParser:
    def __init__(self, toks: list[Tok], match: dict[int, int]) -> None:
        self.toks = toks
        self.match = match

    def parse(self, lo: int, hi: int) -> list[Stmt]:
        stmts: list[Stmt] = []
        i = lo
        while i < hi:
            s, i = self._statement(i, hi)
            if s is not None:
                stmts.append(s)
        return stmts

    def _statement(self, i: int, hi: int) -> tuple[Stmt | None, int]:
        toks, match = self.toks, self.match
        t = toks[i]
        if t.text == ";":
            return None, i + 1
        if t.text == "{":
            close = min(match.get(i, hi), hi)
            return (Stmt(S_BLOCK, t.line,
                         children=self.parse(i + 1, close)), close + 1)
        if t.text == "if":
            j = i + 1
            if j < hi and toks[j].text == "constexpr":
                j += 1
            cond, j = self._group(j, hi)
            then, j = self._statement(j, hi)
            node = Stmt(S_IF, t.line, tokens=cond,
                        children=[then] if then else [])
            if j < hi and toks[j].text == "else":
                els, j = self._statement(j + 1, hi)
                node.else_children = [els] if els else []
            return node, j
        if t.text in ("while", "switch"):
            cond, j = self._group(i + 1, hi)
            body, j = self._statement(j, hi)
            kind = S_LOOP if t.text == "while" else S_SWITCH
            return Stmt(kind, t.line, tokens=cond,
                        children=[body] if body else []), j
        if t.text == "for":
            open_idx = i + 1
            close = min(match.get(open_idx, hi), hi) \
                if open_idx < hi and toks[open_idx].text == "(" else open_idx
            header = toks[open_idx + 1:close]
            node = Stmt(S_LOOP, t.line, tokens=header)
            colon = self._range_colon(header)
            if colon is not None:
                node.decl_tokens = header[:colon]
                node.range_tokens = header[colon + 1:]
            body, j = self._statement(close + 1, hi)
            if body:
                node.children = [body]
            return node, j
        if t.text == "do":
            body, j = self._statement(i + 1, hi)
            node = Stmt(S_LOOP, t.line, children=[body] if body else [])
            if j < hi and toks[j].text == "while":
                cond, j = self._group(j + 1, hi)
                node.tokens = cond
                if j < hi and toks[j].text == ";":
                    j += 1
            return node, j
        if t.text == "try":
            body, j = self._statement(i + 1, hi)
            node = Stmt(S_TRY, t.line, children=[body] if body else [])
            while j < hi and toks[j].text == "catch":
                _, j = self._group(j + 1, hi)
                handler, j = self._statement(j, hi)
                if handler:
                    node.else_children.append(handler)
            return node, j
        if t.text in ("case", "default"):
            j = i
            while j < hi and toks[j].text != ":":
                j += 1
            return None, j + 1
        if t.text in ("return", "throw"):
            expr, j = self._simple_tokens(i + 1, hi)
            kind = S_RETURN if t.text == "return" else S_THROW
            return Stmt(kind, t.line, tokens=expr), j
        if t.text == "}":
            return None, i + 1  # stray closer; tolerate
        expr, j = self._simple_tokens(i, hi)
        line = t.line
        return Stmt(S_SIMPLE, line, tokens=expr), j

    def _group(self, i: int, hi: int) -> tuple[list[Tok], int]:
        """The contents of a `( ... )` group starting at i (if present)."""
        if i < hi and self.toks[i].text == "(":
            close = min(self.match.get(i, hi), hi)
            return self.toks[i + 1:close], close + 1
        return [], i

    def _simple_tokens(self, i: int, hi: int) -> tuple[list[Tok], int]:
        """Tokens up to the top-level `;` (consuming nested groups — lambda
        bodies and brace initialisers stay inside the statement)."""
        out: list[Tok] = []
        j = i
        while j < hi:
            t = self.toks[j]
            if t.text == ";":
                return out, j + 1
            if t.text in "([{":
                close = min(self.match.get(j, hi), hi)
                out.extend(self.toks[j:close + 1])
                j = close + 1
                continue
            if t.text == "}":
                return out, j  # scope end without `;` (e.g. last expr)
            out.append(t)
            j += 1
        return out, hi

    @staticmethod
    def _range_colon(header: list[Tok]) -> int | None:
        depth = 0
        for k, t in enumerate(header):
            if t.text in "([{<":
                depth += 1 if t.text != "<" else 0
            elif t.text in ")]}":
                depth -= 1
            elif t.text == ";":
                return None  # classic three-clause for
            elif t.text == ":" and depth == 0:
                if (k > 0 and header[k - 1].text == ":") or \
                        (k + 1 < len(header) and header[k + 1].text == ":"):
                    continue  # `::`
                return k
        return None


# -- body fact extraction -------------------------------------------------

def _extract_body_facts(fn: FunctionInfo, toks: list[Tok], lo: int, hi: int,
                        body: list[Stmt]) -> None:
    for t in toks[lo:hi]:
        if t.kind == lex.ID:
            fn.body_idents.add(t.text)
    _walk_for_facts(fn, body, in_debug_gate=False)


def _walk_for_facts(fn: FunctionInfo, stmts: list[Stmt],
                    in_debug_gate: bool) -> None:
    for s in stmts:
        toks = list(s.tokens) + list(s.range_tokens) + list(s.decl_tokens)
        _scan_calls(fn, toks, in_debug_gate)
        if s.kind == S_SIMPLE:
            _scan_local_decl(fn, s.tokens)
        if s.kind == S_LOOP and s.decl_tokens:
            _scan_local_decl(fn, s.decl_tokens + [Tok(lex.PUNCT, ";", s.line)])
        gated = in_debug_gate or (
            s.kind == S_IF and _DEBUG_GATE_RE.search(_flatten(s.tokens))
            is not None)
        _walk_for_facts(fn, s.children, gated)
        _walk_for_facts(fn, s.else_children, in_debug_gate)


def _scan_calls(fn: FunctionInfo, toks: list[Tok], gated: bool) -> None:
    for k, t in enumerate(toks):
        if t.kind != lex.ID or t.text in _CONTROL_KEYWORDS:
            continue
        if k + 1 >= len(toks) or toks[k + 1].text != "(":
            continue
        receiver = ""
        qualifier = ""
        if k >= 1 and toks[k - 1].text in (".", "->"):
            prev = toks[k - 2] if k >= 2 else None
            if prev is not None and prev.kind == lex.ID:
                receiver = prev.text
            else:
                receiver = "<expr>"
        elif k >= 1 and toks[k - 1].text == "::":
            parts = []
            m = k - 1
            while m >= 1 and toks[m].text == "::" \
                    and toks[m - 1].kind == lex.ID:
                parts.insert(0, toks[m - 1].text)
                m -= 2
            qualifier = "::".join(parts)
        fn.calls.append(CallSite(name=t.text, qualifier=qualifier,
                                 receiver=receiver, line=t.line,
                                 in_debug_gate=gated))


def _scan_local_decl(fn: FunctionInfo, toks: list[Tok]) -> None:
    """Best-effort local variable declaration: `<type tokens> name (init)?`.
    Used only for receiver-type resolution, so precision matters more than
    recall; obvious non-declarations are skipped."""
    if not toks or toks[0].kind != lex.ID:
        return
    if toks[0].text in _CONTROL_KEYWORDS or toks[0].text == "delete":
        return
    # Find the declared name: the last identifier before `=`, `{`, `(` or
    # end, provided at least one type token precedes it.
    depth = 0
    angle = 0
    name_idx = None
    for k, t in enumerate(toks):
        if t.text in "([":
            depth += 1
        elif t.text in ")]":
            depth -= 1
        elif t.text == "<" and k > 0 and (toks[k - 1].kind == lex.ID
                                          or toks[k - 1].text == ">"):
            angle += 1
        elif t.text == ">" and angle:
            angle -= 1
        elif t.text == ">>" and angle:
            angle = max(0, angle - 2)
        if depth or angle:
            continue
        if t.text in ("=", "{"):
            break
        if t.kind == lex.ID and k > 0:
            prev = toks[k - 1]
            if prev.kind == lex.ID or prev.text in ("&", "*", ">", "::"):
                if prev.text == "::":
                    continue  # qualified name continues
                name_idx = k
    if name_idx is None or name_idx == 0:
        return
    nxt = toks[name_idx + 1].text if name_idx + 1 < len(toks) else ";"
    if nxt not in ("=", "{", "(", ";", ",", ":"):
        return
    name = toks[name_idx].text
    type_toks = toks[:name_idx]
    type_text = _flatten(type_toks)
    if type_text in ("auto", "const auto", "auto&", "const auto&"):
        # Record the initialiser text instead — lets `auto m = make_map()`
        # style declarations still resolve container-ness textually.
        type_text = "auto:" + _flatten(toks[name_idx + 1:])
    fn.local_vars.append(VarDecl(name=name, type_text=type_text,
                                 line=toks[name_idx].line))
