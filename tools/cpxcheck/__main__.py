"""Entry point: `python3 tools/cpxcheck [args]`.

Running the directory puts it on sys.path[0], so the sibling modules
import as top-level names; make that robust when invoked oddly."""

import sys
from pathlib import Path

_HERE = str(Path(__file__).resolve().parent)
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)

from cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
