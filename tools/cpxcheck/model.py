"""Shared facts model for cpxcheck (docs/static_analysis.md).

Both frontends — the libclang one (clangfe.py) and the pure-Python outline
parser (lite.py) — lower a translation unit into the structures below.
Rules (rules.py) consume ONLY this model, so a rule written once runs under
either engine and the fixture tests exercise it without libclang installed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from lex import Tok

# Statement kinds in the (deliberately small) statement tree. The tree is
# not a full AST: expressions stay as token slices, but control flow —
# blocks, branches, loops, try/catch, returns and throws — is explicit,
# which is what the path-sensitive rules (split-phase) need.
S_SIMPLE = "simple"   # expression/declaration statement; tokens attached
S_BLOCK = "block"     # { ... }
S_IF = "if"           # cond tokens + then/else children
S_LOOP = "loop"       # for/while/do body (range-for carries range tokens)
S_SWITCH = "switch"   # treated as one opaque body block
S_TRY = "try"         # body + handlers
S_RETURN = "return"   # return ...;
S_THROW = "throw"     # throw ...;


@dataclass
class Stmt:
    kind: str
    line: int
    tokens: list[Tok] = field(default_factory=list)   # head/expression toks
    children: list["Stmt"] = field(default_factory=list)
    else_children: list["Stmt"] = field(default_factory=list)  # if/try only
    range_tokens: list[Tok] = field(default_factory=list)      # range-for
    decl_tokens: list[Tok] = field(default_factory=list)       # range-for var


@dataclass
class CallSite:
    name: str          # terminal callee name, e.g. "resize"
    qualifier: str     # "::"-joined prefix if written qualified, else ""
    receiver: str      # receiver identifier for x.f()/x->f(), "" for free,
                       # "<expr>" when the receiver is a compound expression
    line: int
    in_debug_gate: bool = False  # lexically inside `if (check::deep()...)`
                                 # or similar debug-tier-gated block


@dataclass
class VarDecl:
    name: str
    type_text: str     # flattened declared type, e.g. "std::unordered_map"
    line: int


@dataclass
class FieldInfo:
    name: str
    type_text: str
    line: int
    is_static: bool = False   # static / constexpr members are not
                              # per-instance state for ckpt purposes


@dataclass
class ClassInfo:
    name: str                 # short name, e.g. "Cluster"
    qualname: str             # e.g. "cpx::sim::Cluster"
    line: int
    fields: list[FieldInfo] = field(default_factory=list)
    # Methods *declared* in the class body (names only; definitions appear
    # in FunctionInfo whether in-class or out-of-line).
    method_names: set[str] = field(default_factory=set)


@dataclass
class FunctionInfo:
    name: str                 # terminal name, e.g. "serialize"
    qualname: str             # e.g. "cpx::sim::Cluster::serialize"
    line: int
    param_text: str           # flattened parameter list text
    body: list[Stmt] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    local_vars: list[VarDecl] = field(default_factory=list)
    body_idents: set[str] = field(default_factory=set)  # every identifier
                                                        # in the body

    @property
    def class_name(self) -> str:
        parts = self.qualname.split("::")
        return parts[-2] if len(parts) >= 2 else ""


@dataclass
class FileFacts:
    path: str                 # repo-relative, forward slashes
    engine: str               # "lite" or "clang"
    classes: list[ClassInfo] = field(default_factory=list)
    functions: list[FunctionInfo] = field(default_factory=list)
    includes: list[str] = field(default_factory=list)   # raw include targets
    # Raw source lines (1-based access via line_text) for inline-allow
    # handling and message context.
    lines: list[str] = field(default_factory=list)

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""


@dataclass(frozen=True)
class Finding:
    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def walk_stmts(stmts: list[Stmt]):
    """Yields every statement in the tree, depth-first."""
    for s in stmts:
        yield s
        yield from walk_stmts(s.children)
        yield from walk_stmts(s.else_children)
