"""Baseline / suppression file for cpxcheck (docs/static_analysis.md).

Format — one entry per line, pipe-separated, `#` comments allowed:

    rule|path|key|justification

An entry suppresses findings of `rule` in `path` whose message contains
`key` (use a distinctive fragment: a member name, a callee). The
justification is mandatory — an entry without one is itself an error, and
so is an entry that no longer matches anything (stale baselines are how
suppressed bug classes creep back in).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from model import Finding


@dataclass
class Entry:
    rule: str
    path: str
    key: str
    justification: str
    line_no: int
    hits: int = 0

    def matches(self, f: Finding) -> bool:
        return (f.rule == self.rule and f.path == self.path
                and (self.key == "*" or self.key in f.message))


def load(path: Path) -> tuple[list[Entry], list[Finding]]:
    entries: list[Entry] = []
    errors: list[Finding] = []
    rel = str(path)
    for idx, raw in enumerate(path.read_text(encoding="utf-8").splitlines()):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = [p.strip() for p in line.split("|")]
        if len(parts) != 4 or not all(parts):
            errors.append(Finding(
                "baseline", rel, idx + 1,
                "malformed baseline entry; expected "
                "`rule|path|key|justification` with all fields non-empty"))
            continue
        entries.append(Entry(parts[0], parts[1], parts[2], parts[3],
                             idx + 1))
    return entries, errors


def apply(findings: list[Finding], entries: list[Entry],
          baseline_path: Path) -> list[Finding]:
    """Filters baselined findings; appends errors for unused entries."""
    kept: list[Finding] = []
    for f in findings:
        entry = next((e for e in entries if e.matches(f)), None)
        if entry is None:
            kept.append(f)
        else:
            entry.hits += 1
    rel = str(baseline_path)
    for e in entries:
        if e.hits == 0:
            kept.append(Finding(
                "baseline", rel, e.line_no,
                f"unused baseline entry `{e.rule}|{e.path}|{e.key}`; the "
                f"finding it suppressed is gone — delete the entry"))
    return kept
