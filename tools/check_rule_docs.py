#!/usr/bin/env python3
"""Doc-drift gate for the static-analysis rule inventories
(docs/static_analysis.md).

Collects the machine-readable rule lists from both tools
(`lint_cpx.py --list --json`, `cpxcheck --list --json`) and cross-checks
them against docs/static_analysis.md in both directions:

  * every rule a tool enforces must be documented (as `` `name` `` inside
    a rule-table row or heading), and
  * every rule name the doc claims must exist in a tool.

Rule names are recognised in the doc as backticked tokens following the
`rule:` marker, i.e. lines containing `rule:` followed by `` `name` ``.
Run from anywhere; exits non-zero on drift. Registered as a ctest (label
`lint`) and run in the lint CI job.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOC = REPO / "docs" / "static_analysis.md"

DOC_RULE_RE = re.compile(r"rule:\s*`([a-z][a-z0-9-]*)`")


def tool_rules() -> dict[str, str]:
    rules: dict[str, str] = {}
    for cmd in ([sys.executable, str(REPO / "tools" / "lint_cpx.py"),
                 "--list", "--json"],
                [sys.executable, str(REPO / "tools" / "cpxcheck"),
                 "--list", "--json"]):
        proc = subprocess.run(cmd, cwd=REPO, capture_output=True, text=True)
        if proc.returncode != 0:
            print(f"check_rule_docs: {' '.join(cmd)} failed:\n{proc.stderr}",
                  file=sys.stderr)
            raise SystemExit(2)
        for entry in json.loads(proc.stdout):
            rules[entry["name"]] = entry["tool"]
    return rules


def main() -> int:
    if not DOC.is_file():
        print(f"check_rule_docs: {DOC} missing", file=sys.stderr)
        return 1
    documented = set(DOC_RULE_RE.findall(DOC.read_text(encoding="utf-8")))
    enforced = tool_rules()

    errors = []
    for name in sorted(set(enforced) - documented):
        errors.append(
            f"rule `{name}` ({enforced[name]}) is enforced but not "
            f"documented in docs/static_analysis.md — add a `rule: "
            f"\\`{name}\\`` entry")
    for name in sorted(documented - set(enforced)):
        errors.append(
            f"rule `{name}` is documented in docs/static_analysis.md but "
            f"no tool enforces it — stale doc entry")

    if errors:
        for e in errors:
            print(f"check_rule_docs: {e}")
        return 1
    print(f"check_rule_docs: {len(enforced)} rules documented and "
          f"enforced, no drift")
    return 0


if __name__ == "__main__":
    sys.exit(main())
