#!/usr/bin/env python3
"""CPX custom lint (docs/static_analysis.md).

Machine-enforces repo rules that clang-tidy and compiler warnings cannot
express. Zero third-party dependencies; run from the repo root:

    python3 tools/lint_cpx.py            # lint src/
    python3 tools/lint_cpx.py --list     # show the rules

Rules
-----
naked-new            No naked `new`/`delete` in src/ — ownership goes through
                     containers or (rarely) smart pointers.
alloc                No allocating container growth (push_back/resize/...)
                     inside the solve-path kernels (amg/pcg.cpp,
                     amg/smoothers.cpp, support/blas1.cpp). The solve path is
                     allocation-free by contract
                     (tests/solver_alloc_test.cpp); workspaces amortise
                     allocation at setup and carry an explicit allow.
reduce               Parallel floating-point reductions route through
                     support/blas1 (or the parallel runtime itself) so that
                     the deterministic chunk-order combine is the only
                     summation policy in the repo.
deterministic-kernels  No rand()/srand()/std::random_device/system_clock or
                     time(NULL) in src/ (seeded support/rng.hpp is the only
                     randomness source), and no iteration over unordered
                     containers (iteration order varies across libstdc++
                     versions and ASLR runs; use std::map, sort afterwards,
                     or carry an allow with a reason).
metrics-registry     Every region/counter name passed to CPX_METRICS_SCOPE,
                     CPX_METRICS_SCOPE_COMM or metrics::counter_add in src/
                     must be listed in src/support/metric_names.hpp, and
                     every listed name must still be used somewhere.
raw-comm             No raw neighbour-copy loops outside src/comm/: indexing
                     a per-rank state array (`ranks_[...]`/`parts_[...]`)
                     with a neighbour expression (r +/- 1, `to`, `partner`,
                     `neighbor`) is how the pre-comm-layer code moved bytes
                     between ranks by hand. Rank-to-rank data movement goes
                     through comm::Communicator / ExchangePlan
                     (docs/communication.md).
ckpt                 Every class listed in src/ckpt/registry.hpp
                     (kCheckpointedClasses) must define a
                     serialize(ckpt::Writer&) / restore(ckpt::Reader&) pair,
                     every class defining such a pair must be registered, and
                     every `name_` data member of a registered class must be
                     mentioned in BOTH bodies — or carry an explicit
                     `allow(ckpt)` marking it as rebuilt-not-saved (scratch,
                     cached plans, derived structure). Catches fields added
                     to checkpointed state without being threaded through
                     the snapshot (docs/checkpoint.md).
split-phase          Every ExchangePlan::begin(...) call outside src/comm/
                     must reach a matching finish() on all control paths in
                     the same scope: no `return`/`throw` and no ghost-slot
                     access (any `ghost*` identifier) between the two — the
                     window is a data race on slots the plan fills. A call
                     of the form `x.begin(args...)` (non-empty argument
                     list, which container begin() never has) is treated as
                     a split-phase begin.

Suppression
-----------
Append `// cpx-lint: allow(<rule>)` to the offending line, or place it on
the line directly above, with a comment explaining why the exception is
sound. Allows are per-line, never per-file.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

# Machine-readable rule inventory (`--list --json`). tools/check_rule_docs.py
# cross-checks these names against docs/static_analysis.md, so renaming a
# rule without updating the docs fails CI.
RULES_INFO = (
    ("naked-new", "no naked new/delete in src/"),
    ("alloc", "no allocating container growth in the solve-path kernels"),
    ("reduce", "parallel reductions route through support/blas1"),
    ("deterministic-kernels",
     "no ambient randomness/wall-clock or unordered iteration"),
    ("metrics-registry",
     "metric names cross-checked against src/support/metric_names.hpp"),
    ("raw-comm", "no raw neighbour-copy loops outside src/comm/"),
    ("ckpt", "checkpoint registry cross-checked against serialize/restore"),
    ("split-phase", "ExchangePlan begin()/finish() windows close on every "
                    "path, no ghost reads inside"),
)

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
REGISTRY = SRC / "support" / "metric_names.hpp"
CKPT_REGISTRY = SRC / "ckpt" / "registry.hpp"

# Solve-path kernels that must not grow containers (rule `alloc`).
ALLOC_FREE_FILES = {
    "src/amg/pcg.cpp",
    "src/amg/smoothers.cpp",
    "src/support/blas1.cpp",
}

# The only homes of raw parallel_reduce calls (rule `reduce`).
REDUCE_ALLOWED_FILES = {
    "src/support/blas1.cpp",
    "src/support/parallel.hpp",
    "src/support/parallel.cpp",
}

GROWTH_CALLS = (
    "push_back",
    "emplace_back",
    "emplace",
    "resize",
    "reserve",
    "assign",
    "insert",
    "append",
)

ALLOW_RE = re.compile(r"//\s*cpx-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

NAKED_NEW_RE = re.compile(r"\bnew\b\s*(?:\(|\[|[A-Za-z_:])")
NAKED_DELETE_RE = re.compile(r"\bdelete\b\s*(?:\[\s*\]\s*)?[A-Za-z_(*]")
GROWTH_RE = re.compile(
    r"[.>]\s*(?:" + "|".join(GROWTH_CALLS) + r")\s*\("
)
REDUCE_RE = re.compile(r"\bparallel_reduce\s*[(<]")
NONDET_RES = (
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bsystem_clock\b"), "system_clock"),
    (re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"), "time(NULL)"),
)
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s+(\w+)"
)
RAW_COMM_RE = re.compile(
    r"\b(?:ranks_|parts_)\s*\["
    r"[^\]]*(?:\+|-|\bneighbor\w*\b|\bpartner\b|\bto\b)[^\]]*\]"
)
SPLIT_BEGIN_RE = re.compile(r"\b(\w+)\s*(?:\.|->)\s*begin\s*\(\s*[^\s)]")
SPLIT_FINISH_RE = re.compile(r"\b(\w+)\s*(?:\.|->)\s*finish\s*\(")
SPLIT_LEAVE_RE = re.compile(r"^\s*(?:return\b|throw\b)", re.MULTILINE)
SPLIT_SCOPE_END_RE = re.compile(r"^\}", re.MULTILINE)
SPLIT_GHOST_RE = re.compile(r"\bghost\w*")
CKPT_ENTRY_RE = re.compile(r'"((?:\w+::)*\w+)"')
CKPT_SER_DEF_RE = re.compile(r"\b(\w+)::serialize\s*\(\s*ckpt::Writer\b")
CKPT_RES_DEF_RE = re.compile(r"\b(\w+)::restore\s*\(\s*ckpt::Reader\b")
# A member-variable declaration line: lower-case identifier with the
# trailing-underscore convention, optionally default-initialised, ending
# the declaration. Lines containing '(' (function decls, inline bodies)
# are excluded before this is applied.
CKPT_MEMBER_RE = re.compile(r"\b([a-z]\w*_)\s*(?:=[^;{]*)?[;{]")
METRIC_USE_RE = re.compile(
    r"(?:CPX_METRICS_SCOPE(?:_COMM)?|counter_add)\s*\(\s*\"([^\"]+)\"",
    re.DOTALL,
)
METRIC_DEF_RE = re.compile(r"=\s*\"([^\"]+)\"\s*;")


_RAW_PREFIX_RE = re.compile(r"(?:u8|[uUL])?R$")


def _raw_string_prefix(text: str, i: int) -> int:
    """If text[i] == '\"' opens a raw string literal, returns the index of
    its encoding prefix (`R`, `u8R`, `LR`, ...); otherwise -1. The prefix
    must not be the tail of a longer identifier (`FACTOR"..."`)."""
    m = _RAW_PREFIX_RE.search(text, max(0, i - 3), i)
    if not m:
        return -1
    j = m.start()
    if j > 0 and (text[j - 1].isalnum() or text[j - 1] == "_"):
        return -1
    return j


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure.

    Raw strings (`R"delim( ... )delim"`, with any encoding prefix) are
    blanked as a unit: no escape processing applies inside them, and their
    contents may span lines and contain unbalanced quotes — the naive
    quote scanner would desynchronize on them and misread the rest of the
    file as string/code inverted."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == '"' and _raw_string_prefix(text, i) >= 0:
            # out already holds the prefix characters; drop them so the
            # blanked literal leaves no identifier fragment behind.
            prefix_len = i - _raw_string_prefix(text, i)
            del out[len(out) - prefix_len:]
            j = i + 1
            while j < n and text[j] not in "(\n":
                j += 1
            if j >= n or text[j] != "(":
                i = j  # malformed raw literal; skip the opener
                continue
            closer = ")" + text[i + 1:j] + '"'
            end = text.find(closer, j + 1)
            if end == -1:
                end = n
            out.append("\n" * text.count("\n", i, end))
            out.append("  ")
            i = min(end + len(closer), n)
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            i += 2
        elif c == "'" and out and (out[-1].isalnum() or out[-1] == "_"):
            # Digit separator (10'000) or the tail of a char literal already
            # consumed — not a quote opener.
            out.append(c)
            i += 1
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                if i < n and text[i] == "\n":
                    out.append("\n")  # keep line numbers aligned
                i += 1
            i += 1
            out.append("  ")  # keep offsets roughly stable, drop content
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Linter:
    def __init__(self) -> None:
        self.findings: list[str] = []

    def report(self, path: Path, line_no: int, rule: str, msg: str) -> None:
        rel = path.relative_to(REPO)
        self.findings.append(f"{rel}:{line_no}: [{rule}] {msg}")

    @staticmethod
    def allows(raw_lines: list[str], idx: int) -> set[str]:
        """Rules allowed on line `idx` (same line or the line above)."""
        allowed: set[str] = set()
        for j in (idx, idx - 1):
            if 0 <= j < len(raw_lines):
                m = ALLOW_RE.search(raw_lines[j])
                if m:
                    allowed.update(
                        r.strip() for r in m.group(1).split(",")
                    )
        return allowed

    def lint_file(self, path: Path) -> None:
        raw = path.read_text(encoding="utf-8")
        raw_lines = raw.splitlines()
        code = strip_comments_and_strings(raw)
        code_lines = code.splitlines()
        rel = path.relative_to(REPO).as_posix()

        unordered_vars = set(UNORDERED_DECL_RE.findall(code))
        range_for_res = [
            (re.compile(r"for\s*\([^;)]*:\s*" + re.escape(v) + r"\s*\)"), v)
            for v in unordered_vars
        ]

        for idx, line in enumerate(code_lines):
            line_no = idx + 1
            allowed = self.allows(raw_lines, idx)

            if "naked-new" not in allowed:
                if NAKED_NEW_RE.search(line):
                    self.report(path, line_no, "naked-new",
                                "naked `new`; use a container or make_unique")
                if NAKED_DELETE_RE.search(line):
                    self.report(path, line_no, "naked-new",
                                "naked `delete`; ownership must be scoped")

            if rel in ALLOC_FREE_FILES and "alloc" not in allowed:
                m = GROWTH_RE.search(line)
                if m:
                    self.report(
                        path, line_no, "alloc",
                        f"container growth ({m.group(0).strip()[:-1].strip('.>( ')}) "
                        "in an allocation-free solve-path kernel")

            if (rel not in REDUCE_ALLOWED_FILES
                    and "reduce" not in allowed
                    and REDUCE_RE.search(line)):
                self.report(
                    path, line_no, "reduce",
                    "raw parallel_reduce outside support/blas1; use the "
                    "blas1 wrappers so reductions share one combine order")

            if (not rel.startswith("src/comm/")
                    and "raw-comm" not in allowed
                    and RAW_COMM_RE.search(line)):
                self.report(
                    path, line_no, "raw-comm",
                    "neighbour-indexed rank state access; move rank-to-rank "
                    "bytes through comm::Communicator/ExchangePlan "
                    "(src/comm/, docs/communication.md)")

            if "deterministic-kernels" not in allowed:
                for pattern, what in NONDET_RES:
                    if pattern.search(line):
                        self.report(
                            path, line_no, "deterministic-kernels",
                            f"{what}; kernels must be reproducible — seed "
                            "through support/rng.hpp")
                for pattern, var in range_for_res:
                    if pattern.search(line):
                        self.report(
                            path, line_no, "deterministic-kernels",
                            f"iteration over unordered container `{var}`; "
                            "order is not deterministic")

        self.lint_split_phase(path, rel, code, raw_lines)

    def lint_split_phase(self, path: Path, rel: str, code: str,
                         raw_lines: list[str]) -> None:
        """Pairs ExchangePlan begin()/finish() and polices the window."""
        if rel.startswith("src/comm/"):
            return  # the implementation itself
        events = [(m.start(), "begin", m.group(1))
                  for m in SPLIT_BEGIN_RE.finditer(code)]
        if not events:
            return
        events += [(m.start(), "finish", m.group(1))
                   for m in SPLIT_FINISH_RE.finditer(code)]
        events += [(m.start(), "leave", m.group(0).strip())
                   for m in SPLIT_LEAVE_RE.finditer(code)]
        events += [(m.start(), "scope_end", "")
                   for m in SPLIT_SCOPE_END_RE.finditer(code)]
        events += [(m.start(), "ghost", m.group(0))
                   for m in SPLIT_GHOST_RE.finditer(code)]
        events.sort()

        open_plans: dict[str, int] = {}  # name -> begin line
        for pos, kind, what in events:
            line_no = code.count("\n", 0, pos) + 1
            allowed = self.allows(raw_lines, line_no - 1)
            if kind == "begin":
                if "split-phase" not in allowed:
                    open_plans[what] = line_no
            elif kind == "finish":
                open_plans.pop(what, None)
            elif not open_plans:
                continue
            elif "split-phase" in allowed:
                continue
            elif kind == "leave":
                names = ", ".join(sorted(open_plans))
                self.report(
                    path, line_no, "split-phase",
                    f"`{what}` leaves the begin()/finish() window of "
                    f"`{names}`; every control path must finish a begun "
                    "exchange")
            elif kind == "ghost":
                names = ", ".join(sorted(open_plans))
                self.report(
                    path, line_no, "split-phase",
                    f"`{what}` read inside the begin()/finish() window of "
                    f"`{names}`; slots the plan fills are not valid until "
                    "finish()")
            else:  # scope_end
                for name, begin_line in sorted(open_plans.items()):
                    self.report(
                        path, begin_line, "split-phase",
                        f"`{name}.begin(...)` has no matching finish() "
                        "before the end of its scope")
                open_plans.clear()

    def lint_ckpt_registry(self, files: list[Path]) -> None:
        """Cross-checks src/ckpt/registry.hpp against the code.

        Three obligations: registered classes implement the snapshot pair,
        implementers are registered, and every `name_` member of a
        registered class is threaded through BOTH serialize and restore
        (or carries `allow(ckpt)` as deliberately rebuilt).
        """
        if not CKPT_REGISTRY.is_file():
            self.findings.append(
                "src/ckpt/registry.hpp: [ckpt] registry header missing")
            return
        reg_match = re.search(
            r"kCheckpointedClasses\[\]\s*=\s*\{(.*?)\}",
            CKPT_REGISTRY.read_text(encoding="utf-8"), re.DOTALL)
        entries = CKPT_ENTRY_RE.findall(reg_match.group(1)) if reg_match else []
        registered = {e.split("::")[-1]: e for e in entries}

        # Index serialize/restore bodies by class name (all overloads of a
        # class concatenated: a member may be handled by any of them).
        ser_bodies: dict[str, str] = {}
        res_bodies: dict[str, str] = {}
        def_sites: dict[str, Path] = {}
        stripped: dict[Path, str] = {}
        for path in files:
            code = strip_comments_and_strings(
                path.read_text(encoding="utf-8"))
            stripped[path] = code
            for pattern, bodies in ((CKPT_SER_DEF_RE, ser_bodies),
                                    (CKPT_RES_DEF_RE, res_bodies)):
                for m in pattern.finditer(code):
                    open_idx = code.find("{", m.end())
                    semi = code.find(";", m.end())
                    if open_idx == -1 or (0 <= semi < open_idx):
                        continue  # declaration, not a definition
                    body = self.braced_body(code, open_idx)
                    cls = m.group(1)
                    bodies[cls] = bodies.get(cls, "") + "\n" + body
                    def_sites.setdefault(cls, path)

        for cls, path in sorted(def_sites.items()):
            if cls not in registered:
                self.report(
                    path, 1, "ckpt",
                    f"{cls} implements serialize(ckpt::Writer&)/"
                    "restore(ckpt::Reader&) but is not listed in "
                    "src/ckpt/registry.hpp")

        for cls_short in sorted(registered):
            cls_full = registered[cls_short]
            if cls_short not in ser_bodies or cls_short not in res_bodies:
                self.findings.append(
                    f"src/ckpt/registry.hpp: [ckpt] registered class "
                    f"{cls_full} defines no serialize/restore pair in src/")
                continue
            located = self.locate_class(files, stripped, cls_short)
            if located is None:
                self.findings.append(
                    f"src/ckpt/registry.hpp: [ckpt] cannot find the class "
                    f"definition of registered class {cls_full}")
                continue
            header, body_start_line, body = located
            raw_lines = header.read_text(encoding="utf-8").splitlines()
            depth = 1
            for offset, line in enumerate(body.splitlines()):
                line_no = body_start_line + offset
                if depth == 1 and "(" not in line:
                    m = CKPT_MEMBER_RE.search(line)
                    if m and "ckpt" not in self.allows(raw_lines,
                                                       line_no - 1):
                        member = m.group(1)
                        word = re.compile(r"\b" + re.escape(member) + r"\b")
                        missing = [
                            what for what, bodies in
                            (("serialize", ser_bodies),
                             ("restore", res_bodies))
                            if not word.search(bodies[cls_short])
                        ]
                        if missing:
                            self.report(
                                header, line_no, "ckpt",
                                f"member `{member}` of checkpointed class "
                                f"{cls_full} is not handled in its "
                                f"{' or '.join(missing)} body; snapshot it "
                                "or mark it `allow(ckpt)` as rebuilt state")
                depth += line.count("{") - line.count("}")

    @staticmethod
    def braced_body(code: str, open_idx: int) -> str:
        """The text between code[open_idx] == '{' and its matching '}'."""
        depth = 0
        for i in range(open_idx, len(code)):
            if code[i] == "{":
                depth += 1
            elif code[i] == "}":
                depth -= 1
                if depth == 0:
                    return code[open_idx + 1:i]
        return code[open_idx + 1:]

    def locate_class(self, files: list[Path], stripped: dict[Path, str],
                     cls: str):
        """Finds `class <cls> { ... }`; returns (path, first body line, body)."""
        decl = re.compile(r"\bclass\s+" + re.escape(cls) + r"\b[^;{]*\{")
        for path in files:
            if path.suffix != ".hpp":
                continue
            code = stripped[path]
            m = decl.search(code)
            if not m:
                continue
            open_idx = m.end() - 1
            body = self.braced_body(code, open_idx)
            body_start_line = code.count("\n", 0, open_idx) + 2
            return path, body_start_line, body
        return None

    def lint_metrics_registry(self, files: list[Path]) -> None:
        if not REGISTRY.is_file():
            self.findings.append(
                "src/support/metric_names.hpp: [metrics-registry] "
                "registry header missing")
            return
        registered = set(METRIC_DEF_RE.findall(REGISTRY.read_text()))
        used: dict[str, tuple[Path, int]] = {}
        for path in files:
            if path == REGISTRY:
                continue
            text = path.read_text(encoding="utf-8")
            for m in METRIC_USE_RE.finditer(text):
                line_no = text.count("\n", 0, m.start()) + 1
                used.setdefault(m.group(1), (path, line_no))
        for name, (path, line_no) in sorted(used.items()):
            if name not in registered:
                self.report(
                    path, line_no, "metrics-registry",
                    f'metric name "{name}" not listed in '
                    "src/support/metric_names.hpp")
        for name in sorted(registered - set(used)):
            self.findings.append(
                f"src/support/metric_names.hpp: [metrics-registry] "
                f'registered name "{name}" is no longer used in src/')


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint (default: src/)")
    parser.add_argument("--list", action="store_true",
                        help="print the rule list and exit")
    parser.add_argument("--json", action="store_true",
                        help="with --list: machine-readable rule inventory")
    args = parser.parse_args()

    if args.list:
        if args.json:
            print(json.dumps(
                [{"name": name, "summary": summary, "tool": "lint_cpx"}
                 for name, summary in RULES_INFO], indent=2))
        else:
            print(__doc__)
        return 0

    roots = args.paths or [SRC]
    files: list[Path] = []
    for root in roots:
        root = root.resolve()
        if root.is_dir():
            files.extend(sorted(root.rglob("*.hpp")))
            files.extend(sorted(root.rglob("*.cpp")))
        elif root.is_file():
            files.append(root)
        else:
            print(f"lint_cpx: no such path: {root}", file=sys.stderr)
            return 2

    linter = Linter()
    for path in sorted(set(files)):
        linter.lint_file(path)
    # The registry cross-references are defined over src/ as a whole; they
    # only make sense when src files are in scope (linting a fixture or a
    # lone file elsewhere should not drag in repo-wide obligations).
    src_files = [f for f in sorted(set(files)) if SRC in f.parents
                 or f.parent == SRC]
    if src_files:
        linter.lint_metrics_registry(src_files)
        linter.lint_ckpt_registry(src_files)

    if linter.findings:
        for f in linter.findings:
            print(f)
        print(f"\nlint_cpx: {len(linter.findings)} finding(s)",
              file=sys.stderr)
        return 1
    print(f"lint_cpx: {len(set(files))} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
