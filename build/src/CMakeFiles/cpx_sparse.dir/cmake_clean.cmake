file(REMOVE_RECURSE
  "CMakeFiles/cpx_sparse.dir/sparse/csr.cpp.o"
  "CMakeFiles/cpx_sparse.dir/sparse/csr.cpp.o.d"
  "CMakeFiles/cpx_sparse.dir/sparse/generators.cpp.o"
  "CMakeFiles/cpx_sparse.dir/sparse/generators.cpp.o.d"
  "CMakeFiles/cpx_sparse.dir/sparse/identity_prefix.cpp.o"
  "CMakeFiles/cpx_sparse.dir/sparse/identity_prefix.cpp.o.d"
  "CMakeFiles/cpx_sparse.dir/sparse/renumber.cpp.o"
  "CMakeFiles/cpx_sparse.dir/sparse/renumber.cpp.o.d"
  "libcpx_sparse.a"
  "libcpx_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpx_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
