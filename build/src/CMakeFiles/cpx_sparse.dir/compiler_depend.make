# Empty compiler generated dependencies file for cpx_sparse.
# This may be replaced when dependencies are built.
