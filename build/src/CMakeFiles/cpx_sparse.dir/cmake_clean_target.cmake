file(REMOVE_RECURSE
  "libcpx_sparse.a"
)
