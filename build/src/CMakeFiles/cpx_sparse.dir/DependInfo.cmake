
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/csr.cpp" "src/CMakeFiles/cpx_sparse.dir/sparse/csr.cpp.o" "gcc" "src/CMakeFiles/cpx_sparse.dir/sparse/csr.cpp.o.d"
  "/root/repo/src/sparse/generators.cpp" "src/CMakeFiles/cpx_sparse.dir/sparse/generators.cpp.o" "gcc" "src/CMakeFiles/cpx_sparse.dir/sparse/generators.cpp.o.d"
  "/root/repo/src/sparse/identity_prefix.cpp" "src/CMakeFiles/cpx_sparse.dir/sparse/identity_prefix.cpp.o" "gcc" "src/CMakeFiles/cpx_sparse.dir/sparse/identity_prefix.cpp.o.d"
  "/root/repo/src/sparse/renumber.cpp" "src/CMakeFiles/cpx_sparse.dir/sparse/renumber.cpp.o" "gcc" "src/CMakeFiles/cpx_sparse.dir/sparse/renumber.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cpx_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
