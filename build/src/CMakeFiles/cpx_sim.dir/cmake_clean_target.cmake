file(REMOVE_RECURSE
  "libcpx_sim.a"
)
