# Empty dependencies file for cpx_sim.
# This may be replaced when dependencies are built.
