file(REMOVE_RECURSE
  "CMakeFiles/cpx_sim.dir/sim/app.cpp.o"
  "CMakeFiles/cpx_sim.dir/sim/app.cpp.o.d"
  "CMakeFiles/cpx_sim.dir/sim/cluster.cpp.o"
  "CMakeFiles/cpx_sim.dir/sim/cluster.cpp.o.d"
  "CMakeFiles/cpx_sim.dir/sim/machine.cpp.o"
  "CMakeFiles/cpx_sim.dir/sim/machine.cpp.o.d"
  "CMakeFiles/cpx_sim.dir/sim/profile.cpp.o"
  "CMakeFiles/cpx_sim.dir/sim/profile.cpp.o.d"
  "CMakeFiles/cpx_sim.dir/sim/trace.cpp.o"
  "CMakeFiles/cpx_sim.dir/sim/trace.cpp.o.d"
  "libcpx_sim.a"
  "libcpx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
