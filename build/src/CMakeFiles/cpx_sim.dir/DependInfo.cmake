
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/app.cpp" "src/CMakeFiles/cpx_sim.dir/sim/app.cpp.o" "gcc" "src/CMakeFiles/cpx_sim.dir/sim/app.cpp.o.d"
  "/root/repo/src/sim/cluster.cpp" "src/CMakeFiles/cpx_sim.dir/sim/cluster.cpp.o" "gcc" "src/CMakeFiles/cpx_sim.dir/sim/cluster.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/CMakeFiles/cpx_sim.dir/sim/machine.cpp.o" "gcc" "src/CMakeFiles/cpx_sim.dir/sim/machine.cpp.o.d"
  "/root/repo/src/sim/profile.cpp" "src/CMakeFiles/cpx_sim.dir/sim/profile.cpp.o" "gcc" "src/CMakeFiles/cpx_sim.dir/sim/profile.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/cpx_sim.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/cpx_sim.dir/sim/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cpx_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
