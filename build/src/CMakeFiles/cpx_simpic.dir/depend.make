# Empty dependencies file for cpx_simpic.
# This may be replaced when dependencies are built.
