file(REMOVE_RECURSE
  "libcpx_simpic.a"
)
