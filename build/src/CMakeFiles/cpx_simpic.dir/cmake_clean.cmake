file(REMOVE_RECURSE
  "CMakeFiles/cpx_simpic.dir/simpic/distributed.cpp.o"
  "CMakeFiles/cpx_simpic.dir/simpic/distributed.cpp.o.d"
  "CMakeFiles/cpx_simpic.dir/simpic/instance.cpp.o"
  "CMakeFiles/cpx_simpic.dir/simpic/instance.cpp.o.d"
  "CMakeFiles/cpx_simpic.dir/simpic/pic.cpp.o"
  "CMakeFiles/cpx_simpic.dir/simpic/pic.cpp.o.d"
  "CMakeFiles/cpx_simpic.dir/simpic/stc.cpp.o"
  "CMakeFiles/cpx_simpic.dir/simpic/stc.cpp.o.d"
  "libcpx_simpic.a"
  "libcpx_simpic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpx_simpic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
