# Empty dependencies file for cpx_support.
# This may be replaced when dependencies are built.
