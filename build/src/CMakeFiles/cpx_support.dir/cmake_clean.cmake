file(REMOVE_RECURSE
  "CMakeFiles/cpx_support.dir/support/check.cpp.o"
  "CMakeFiles/cpx_support.dir/support/check.cpp.o.d"
  "CMakeFiles/cpx_support.dir/support/log.cpp.o"
  "CMakeFiles/cpx_support.dir/support/log.cpp.o.d"
  "CMakeFiles/cpx_support.dir/support/lsq.cpp.o"
  "CMakeFiles/cpx_support.dir/support/lsq.cpp.o.d"
  "CMakeFiles/cpx_support.dir/support/options.cpp.o"
  "CMakeFiles/cpx_support.dir/support/options.cpp.o.d"
  "CMakeFiles/cpx_support.dir/support/stats.cpp.o"
  "CMakeFiles/cpx_support.dir/support/stats.cpp.o.d"
  "CMakeFiles/cpx_support.dir/support/table.cpp.o"
  "CMakeFiles/cpx_support.dir/support/table.cpp.o.d"
  "libcpx_support.a"
  "libcpx_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpx_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
