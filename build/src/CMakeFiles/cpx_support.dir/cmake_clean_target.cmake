file(REMOVE_RECURSE
  "libcpx_support.a"
)
