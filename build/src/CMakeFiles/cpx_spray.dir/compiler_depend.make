# Empty compiler generated dependencies file for cpx_spray.
# This may be replaced when dependencies are built.
