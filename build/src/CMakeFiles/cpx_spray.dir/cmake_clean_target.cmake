file(REMOVE_RECURSE
  "libcpx_spray.a"
)
