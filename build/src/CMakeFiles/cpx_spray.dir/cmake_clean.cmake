file(REMOVE_RECURSE
  "CMakeFiles/cpx_spray.dir/spray/cloud.cpp.o"
  "CMakeFiles/cpx_spray.dir/spray/cloud.cpp.o.d"
  "CMakeFiles/cpx_spray.dir/spray/instance.cpp.o"
  "CMakeFiles/cpx_spray.dir/spray/instance.cpp.o.d"
  "libcpx_spray.a"
  "libcpx_spray.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpx_spray.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
