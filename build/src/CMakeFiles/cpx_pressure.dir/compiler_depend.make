# Empty compiler generated dependencies file for cpx_pressure.
# This may be replaced when dependencies are built.
