file(REMOVE_RECURSE
  "libcpx_pressure.a"
)
