file(REMOVE_RECURSE
  "CMakeFiles/cpx_pressure.dir/pressure/projection.cpp.o"
  "CMakeFiles/cpx_pressure.dir/pressure/projection.cpp.o.d"
  "CMakeFiles/cpx_pressure.dir/pressure/surrogate.cpp.o"
  "CMakeFiles/cpx_pressure.dir/pressure/surrogate.cpp.o.d"
  "libcpx_pressure.a"
  "libcpx_pressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpx_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
