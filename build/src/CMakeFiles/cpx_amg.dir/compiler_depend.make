# Empty compiler generated dependencies file for cpx_amg.
# This may be replaced when dependencies are built.
