file(REMOVE_RECURSE
  "CMakeFiles/cpx_amg.dir/amg/aggregation.cpp.o"
  "CMakeFiles/cpx_amg.dir/amg/aggregation.cpp.o.d"
  "CMakeFiles/cpx_amg.dir/amg/hierarchy.cpp.o"
  "CMakeFiles/cpx_amg.dir/amg/hierarchy.cpp.o.d"
  "CMakeFiles/cpx_amg.dir/amg/pcg.cpp.o"
  "CMakeFiles/cpx_amg.dir/amg/pcg.cpp.o.d"
  "CMakeFiles/cpx_amg.dir/amg/smoothers.cpp.o"
  "CMakeFiles/cpx_amg.dir/amg/smoothers.cpp.o.d"
  "libcpx_amg.a"
  "libcpx_amg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpx_amg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
