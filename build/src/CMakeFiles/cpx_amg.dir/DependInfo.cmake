
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/amg/aggregation.cpp" "src/CMakeFiles/cpx_amg.dir/amg/aggregation.cpp.o" "gcc" "src/CMakeFiles/cpx_amg.dir/amg/aggregation.cpp.o.d"
  "/root/repo/src/amg/hierarchy.cpp" "src/CMakeFiles/cpx_amg.dir/amg/hierarchy.cpp.o" "gcc" "src/CMakeFiles/cpx_amg.dir/amg/hierarchy.cpp.o.d"
  "/root/repo/src/amg/pcg.cpp" "src/CMakeFiles/cpx_amg.dir/amg/pcg.cpp.o" "gcc" "src/CMakeFiles/cpx_amg.dir/amg/pcg.cpp.o.d"
  "/root/repo/src/amg/smoothers.cpp" "src/CMakeFiles/cpx_amg.dir/amg/smoothers.cpp.o" "gcc" "src/CMakeFiles/cpx_amg.dir/amg/smoothers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cpx_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cpx_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
