file(REMOVE_RECURSE
  "libcpx_amg.a"
)
