file(REMOVE_RECURSE
  "CMakeFiles/cpx_workflow.dir/workflow/case_io.cpp.o"
  "CMakeFiles/cpx_workflow.dir/workflow/case_io.cpp.o.d"
  "CMakeFiles/cpx_workflow.dir/workflow/coupled.cpp.o"
  "CMakeFiles/cpx_workflow.dir/workflow/coupled.cpp.o.d"
  "CMakeFiles/cpx_workflow.dir/workflow/engine_case.cpp.o"
  "CMakeFiles/cpx_workflow.dir/workflow/engine_case.cpp.o.d"
  "CMakeFiles/cpx_workflow.dir/workflow/models.cpp.o"
  "CMakeFiles/cpx_workflow.dir/workflow/models.cpp.o.d"
  "libcpx_workflow.a"
  "libcpx_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpx_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
