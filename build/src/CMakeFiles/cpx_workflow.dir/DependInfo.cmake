
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workflow/case_io.cpp" "src/CMakeFiles/cpx_workflow.dir/workflow/case_io.cpp.o" "gcc" "src/CMakeFiles/cpx_workflow.dir/workflow/case_io.cpp.o.d"
  "/root/repo/src/workflow/coupled.cpp" "src/CMakeFiles/cpx_workflow.dir/workflow/coupled.cpp.o" "gcc" "src/CMakeFiles/cpx_workflow.dir/workflow/coupled.cpp.o.d"
  "/root/repo/src/workflow/engine_case.cpp" "src/CMakeFiles/cpx_workflow.dir/workflow/engine_case.cpp.o" "gcc" "src/CMakeFiles/cpx_workflow.dir/workflow/engine_case.cpp.o.d"
  "/root/repo/src/workflow/models.cpp" "src/CMakeFiles/cpx_workflow.dir/workflow/models.cpp.o" "gcc" "src/CMakeFiles/cpx_workflow.dir/workflow/models.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cpx_cpx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cpx_mgcfd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cpx_simpic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cpx_pressure.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cpx_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cpx_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cpx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cpx_support.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cpx_spray.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cpx_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cpx_amg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cpx_sparse.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
