# Empty dependencies file for cpx_workflow.
# This may be replaced when dependencies are built.
