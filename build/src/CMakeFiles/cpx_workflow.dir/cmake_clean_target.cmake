file(REMOVE_RECURSE
  "libcpx_workflow.a"
)
