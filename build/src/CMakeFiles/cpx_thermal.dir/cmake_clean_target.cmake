file(REMOVE_RECURSE
  "libcpx_thermal.a"
)
