file(REMOVE_RECURSE
  "CMakeFiles/cpx_thermal.dir/thermal/instance.cpp.o"
  "CMakeFiles/cpx_thermal.dir/thermal/instance.cpp.o.d"
  "CMakeFiles/cpx_thermal.dir/thermal/solver.cpp.o"
  "CMakeFiles/cpx_thermal.dir/thermal/solver.cpp.o.d"
  "libcpx_thermal.a"
  "libcpx_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpx_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
