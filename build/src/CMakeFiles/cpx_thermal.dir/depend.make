# Empty dependencies file for cpx_thermal.
# This may be replaced when dependencies are built.
