
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mgcfd/distributed.cpp" "src/CMakeFiles/cpx_mgcfd.dir/mgcfd/distributed.cpp.o" "gcc" "src/CMakeFiles/cpx_mgcfd.dir/mgcfd/distributed.cpp.o.d"
  "/root/repo/src/mgcfd/euler.cpp" "src/CMakeFiles/cpx_mgcfd.dir/mgcfd/euler.cpp.o" "gcc" "src/CMakeFiles/cpx_mgcfd.dir/mgcfd/euler.cpp.o.d"
  "/root/repo/src/mgcfd/instance.cpp" "src/CMakeFiles/cpx_mgcfd.dir/mgcfd/instance.cpp.o" "gcc" "src/CMakeFiles/cpx_mgcfd.dir/mgcfd/instance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cpx_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cpx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cpx_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
