file(REMOVE_RECURSE
  "CMakeFiles/cpx_mgcfd.dir/mgcfd/distributed.cpp.o"
  "CMakeFiles/cpx_mgcfd.dir/mgcfd/distributed.cpp.o.d"
  "CMakeFiles/cpx_mgcfd.dir/mgcfd/euler.cpp.o"
  "CMakeFiles/cpx_mgcfd.dir/mgcfd/euler.cpp.o.d"
  "CMakeFiles/cpx_mgcfd.dir/mgcfd/instance.cpp.o"
  "CMakeFiles/cpx_mgcfd.dir/mgcfd/instance.cpp.o.d"
  "libcpx_mgcfd.a"
  "libcpx_mgcfd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpx_mgcfd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
