# Empty compiler generated dependencies file for cpx_mgcfd.
# This may be replaced when dependencies are built.
