file(REMOVE_RECURSE
  "libcpx_mgcfd.a"
)
