
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpx/field_coupler.cpp" "src/CMakeFiles/cpx_cpx.dir/cpx/field_coupler.cpp.o" "gcc" "src/CMakeFiles/cpx_cpx.dir/cpx/field_coupler.cpp.o.d"
  "/root/repo/src/cpx/interpolation.cpp" "src/CMakeFiles/cpx_cpx.dir/cpx/interpolation.cpp.o" "gcc" "src/CMakeFiles/cpx_cpx.dir/cpx/interpolation.cpp.o.d"
  "/root/repo/src/cpx/search.cpp" "src/CMakeFiles/cpx_cpx.dir/cpx/search.cpp.o" "gcc" "src/CMakeFiles/cpx_cpx.dir/cpx/search.cpp.o.d"
  "/root/repo/src/cpx/unit.cpp" "src/CMakeFiles/cpx_cpx.dir/cpx/unit.cpp.o" "gcc" "src/CMakeFiles/cpx_cpx.dir/cpx/unit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cpx_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cpx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cpx_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
