# Empty compiler generated dependencies file for cpx_cpx.
# This may be replaced when dependencies are built.
