file(REMOVE_RECURSE
  "CMakeFiles/cpx_cpx.dir/cpx/field_coupler.cpp.o"
  "CMakeFiles/cpx_cpx.dir/cpx/field_coupler.cpp.o.d"
  "CMakeFiles/cpx_cpx.dir/cpx/interpolation.cpp.o"
  "CMakeFiles/cpx_cpx.dir/cpx/interpolation.cpp.o.d"
  "CMakeFiles/cpx_cpx.dir/cpx/search.cpp.o"
  "CMakeFiles/cpx_cpx.dir/cpx/search.cpp.o.d"
  "CMakeFiles/cpx_cpx.dir/cpx/unit.cpp.o"
  "CMakeFiles/cpx_cpx.dir/cpx/unit.cpp.o.d"
  "libcpx_cpx.a"
  "libcpx_cpx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpx_cpx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
