file(REMOVE_RECURSE
  "libcpx_cpx.a"
)
