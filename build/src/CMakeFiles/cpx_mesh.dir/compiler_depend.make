# Empty compiler generated dependencies file for cpx_mesh.
# This may be replaced when dependencies are built.
