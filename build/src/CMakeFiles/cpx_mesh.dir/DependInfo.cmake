
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/coarsen.cpp" "src/CMakeFiles/cpx_mesh.dir/mesh/coarsen.cpp.o" "gcc" "src/CMakeFiles/cpx_mesh.dir/mesh/coarsen.cpp.o.d"
  "/root/repo/src/mesh/mesh.cpp" "src/CMakeFiles/cpx_mesh.dir/mesh/mesh.cpp.o" "gcc" "src/CMakeFiles/cpx_mesh.dir/mesh/mesh.cpp.o.d"
  "/root/repo/src/mesh/partition.cpp" "src/CMakeFiles/cpx_mesh.dir/mesh/partition.cpp.o" "gcc" "src/CMakeFiles/cpx_mesh.dir/mesh/partition.cpp.o.d"
  "/root/repo/src/mesh/stats.cpp" "src/CMakeFiles/cpx_mesh.dir/mesh/stats.cpp.o" "gcc" "src/CMakeFiles/cpx_mesh.dir/mesh/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cpx_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
