file(REMOVE_RECURSE
  "libcpx_mesh.a"
)
