file(REMOVE_RECURSE
  "CMakeFiles/cpx_mesh.dir/mesh/coarsen.cpp.o"
  "CMakeFiles/cpx_mesh.dir/mesh/coarsen.cpp.o.d"
  "CMakeFiles/cpx_mesh.dir/mesh/mesh.cpp.o"
  "CMakeFiles/cpx_mesh.dir/mesh/mesh.cpp.o.d"
  "CMakeFiles/cpx_mesh.dir/mesh/partition.cpp.o"
  "CMakeFiles/cpx_mesh.dir/mesh/partition.cpp.o.d"
  "CMakeFiles/cpx_mesh.dir/mesh/stats.cpp.o"
  "CMakeFiles/cpx_mesh.dir/mesh/stats.cpp.o.d"
  "libcpx_mesh.a"
  "libcpx_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpx_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
