
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perfmodel/allocator.cpp" "src/CMakeFiles/cpx_perfmodel.dir/perfmodel/allocator.cpp.o" "gcc" "src/CMakeFiles/cpx_perfmodel.dir/perfmodel/allocator.cpp.o.d"
  "/root/repo/src/perfmodel/curve.cpp" "src/CMakeFiles/cpx_perfmodel.dir/perfmodel/curve.cpp.o" "gcc" "src/CMakeFiles/cpx_perfmodel.dir/perfmodel/curve.cpp.o.d"
  "/root/repo/src/perfmodel/persistence.cpp" "src/CMakeFiles/cpx_perfmodel.dir/perfmodel/persistence.cpp.o" "gcc" "src/CMakeFiles/cpx_perfmodel.dir/perfmodel/persistence.cpp.o.d"
  "/root/repo/src/perfmodel/sweep.cpp" "src/CMakeFiles/cpx_perfmodel.dir/perfmodel/sweep.cpp.o" "gcc" "src/CMakeFiles/cpx_perfmodel.dir/perfmodel/sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cpx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cpx_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
