# Empty dependencies file for cpx_perfmodel.
# This may be replaced when dependencies are built.
