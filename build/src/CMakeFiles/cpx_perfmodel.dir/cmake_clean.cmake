file(REMOVE_RECURSE
  "CMakeFiles/cpx_perfmodel.dir/perfmodel/allocator.cpp.o"
  "CMakeFiles/cpx_perfmodel.dir/perfmodel/allocator.cpp.o.d"
  "CMakeFiles/cpx_perfmodel.dir/perfmodel/curve.cpp.o"
  "CMakeFiles/cpx_perfmodel.dir/perfmodel/curve.cpp.o.d"
  "CMakeFiles/cpx_perfmodel.dir/perfmodel/persistence.cpp.o"
  "CMakeFiles/cpx_perfmodel.dir/perfmodel/persistence.cpp.o.d"
  "CMakeFiles/cpx_perfmodel.dir/perfmodel/sweep.cpp.o"
  "CMakeFiles/cpx_perfmodel.dir/perfmodel/sweep.cpp.o.d"
  "libcpx_perfmodel.a"
  "libcpx_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpx_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
