file(REMOVE_RECURSE
  "libcpx_perfmodel.a"
)
