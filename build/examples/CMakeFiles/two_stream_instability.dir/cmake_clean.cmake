file(REMOVE_RECURSE
  "CMakeFiles/two_stream_instability.dir/two_stream_instability.cpp.o"
  "CMakeFiles/two_stream_instability.dir/two_stream_instability.cpp.o.d"
  "two_stream_instability"
  "two_stream_instability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_stream_instability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
