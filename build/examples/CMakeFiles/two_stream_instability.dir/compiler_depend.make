# Empty compiler generated dependencies file for two_stream_instability.
# This may be replaced when dependencies are built.
