# Empty dependencies file for combustor_scaling_study.
# This may be replaced when dependencies are built.
