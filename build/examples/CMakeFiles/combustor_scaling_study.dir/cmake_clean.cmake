file(REMOVE_RECURSE
  "CMakeFiles/combustor_scaling_study.dir/combustor_scaling_study.cpp.o"
  "CMakeFiles/combustor_scaling_study.dir/combustor_scaling_study.cpp.o.d"
  "combustor_scaling_study"
  "combustor_scaling_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/combustor_scaling_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
