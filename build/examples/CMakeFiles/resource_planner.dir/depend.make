# Empty dependencies file for resource_planner.
# This may be replaced when dependencies are built.
