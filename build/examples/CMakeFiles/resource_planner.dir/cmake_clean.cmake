file(REMOVE_RECURSE
  "CMakeFiles/resource_planner.dir/resource_planner.cpp.o"
  "CMakeFiles/resource_planner.dir/resource_planner.cpp.o.d"
  "resource_planner"
  "resource_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
