# Empty compiler generated dependencies file for engine_simulation.
# This may be replaced when dependencies are built.
