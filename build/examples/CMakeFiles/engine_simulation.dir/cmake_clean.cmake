file(REMOVE_RECURSE
  "CMakeFiles/engine_simulation.dir/engine_simulation.cpp.o"
  "CMakeFiles/engine_simulation.dir/engine_simulation.cpp.o.d"
  "engine_simulation"
  "engine_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
