file(REMOVE_RECURSE
  "CMakeFiles/coupled_rows_demo.dir/coupled_rows_demo.cpp.o"
  "CMakeFiles/coupled_rows_demo.dir/coupled_rows_demo.cpp.o.d"
  "coupled_rows_demo"
  "coupled_rows_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coupled_rows_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
