# Empty dependencies file for coupled_rows_demo.
# This may be replaced when dependencies are built.
