# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/mesh_test[1]_include.cmake")
include("/root/repo/build/tests/sparse_test[1]_include.cmake")
include("/root/repo/build/tests/amg_test[1]_include.cmake")
include("/root/repo/build/tests/mgcfd_test[1]_include.cmake")
include("/root/repo/build/tests/simpic_test[1]_include.cmake")
include("/root/repo/build/tests/spray_test[1]_include.cmake")
include("/root/repo/build/tests/pressure_test[1]_include.cmake")
include("/root/repo/build/tests/coupler_test[1]_include.cmake")
include("/root/repo/build/tests/thermal_test[1]_include.cmake")
include("/root/repo/build/tests/perfmodel_test[1]_include.cmake")
include("/root/repo/build/tests/workflow_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
