file(REMOVE_RECURSE
  "CMakeFiles/pressure_test.dir/pressure_test.cpp.o"
  "CMakeFiles/pressure_test.dir/pressure_test.cpp.o.d"
  "pressure_test"
  "pressure_test.pdb"
  "pressure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pressure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
