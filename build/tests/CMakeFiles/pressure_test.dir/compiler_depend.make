# Empty compiler generated dependencies file for pressure_test.
# This may be replaced when dependencies are built.
