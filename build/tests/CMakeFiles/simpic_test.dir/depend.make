# Empty dependencies file for simpic_test.
# This may be replaced when dependencies are built.
