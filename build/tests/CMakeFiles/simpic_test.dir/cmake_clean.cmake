file(REMOVE_RECURSE
  "CMakeFiles/simpic_test.dir/simpic_test.cpp.o"
  "CMakeFiles/simpic_test.dir/simpic_test.cpp.o.d"
  "simpic_test"
  "simpic_test.pdb"
  "simpic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simpic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
