file(REMOVE_RECURSE
  "CMakeFiles/spray_test.dir/spray_test.cpp.o"
  "CMakeFiles/spray_test.dir/spray_test.cpp.o.d"
  "spray_test"
  "spray_test.pdb"
  "spray_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spray_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
