# Empty compiler generated dependencies file for spray_test.
# This may be replaced when dependencies are built.
