# Empty dependencies file for amg_test.
# This may be replaced when dependencies are built.
