file(REMOVE_RECURSE
  "CMakeFiles/amg_test.dir/amg_test.cpp.o"
  "CMakeFiles/amg_test.dir/amg_test.cpp.o.d"
  "amg_test"
  "amg_test.pdb"
  "amg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
