# Empty dependencies file for coupler_test.
# This may be replaced when dependencies are built.
