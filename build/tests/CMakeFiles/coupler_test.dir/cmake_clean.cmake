file(REMOVE_RECURSE
  "CMakeFiles/coupler_test.dir/coupler_test.cpp.o"
  "CMakeFiles/coupler_test.dir/coupler_test.cpp.o.d"
  "coupler_test"
  "coupler_test.pdb"
  "coupler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coupler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
