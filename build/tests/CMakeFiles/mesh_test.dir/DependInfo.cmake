
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mesh_test.cpp" "tests/CMakeFiles/mesh_test.dir/mesh_test.cpp.o" "gcc" "tests/CMakeFiles/mesh_test.dir/mesh_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cpx_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cpx_mgcfd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cpx_simpic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cpx_pressure.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cpx_spray.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cpx_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cpx_amg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cpx_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cpx_cpx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cpx_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cpx_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cpx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cpx_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
