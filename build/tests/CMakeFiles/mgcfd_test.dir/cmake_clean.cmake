file(REMOVE_RECURSE
  "CMakeFiles/mgcfd_test.dir/mgcfd_test.cpp.o"
  "CMakeFiles/mgcfd_test.dir/mgcfd_test.cpp.o.d"
  "mgcfd_test"
  "mgcfd_test.pdb"
  "mgcfd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mgcfd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
