# Empty dependencies file for mgcfd_test.
# This may be replaced when dependencies are built.
