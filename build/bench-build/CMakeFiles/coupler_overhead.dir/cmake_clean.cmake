file(REMOVE_RECURSE
  "../bench/coupler_overhead"
  "../bench/coupler_overhead.pdb"
  "CMakeFiles/coupler_overhead.dir/coupler_overhead.cpp.o"
  "CMakeFiles/coupler_overhead.dir/coupler_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coupler_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
