# Empty dependencies file for coupler_overhead.
# This may be replaced when dependencies are built.
