file(REMOVE_RECURSE
  "../bench/spray_strategies"
  "../bench/spray_strategies.pdb"
  "CMakeFiles/spray_strategies.dir/spray_strategies.cpp.o"
  "CMakeFiles/spray_strategies.dir/spray_strategies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spray_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
