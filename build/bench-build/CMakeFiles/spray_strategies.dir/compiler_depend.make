# Empty compiler generated dependencies file for spray_strategies.
# This may be replaced when dependencies are built.
