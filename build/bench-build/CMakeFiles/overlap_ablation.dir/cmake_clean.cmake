file(REMOVE_RECURSE
  "../bench/overlap_ablation"
  "../bench/overlap_ablation.pdb"
  "CMakeFiles/overlap_ablation.dir/overlap_ablation.cpp.o"
  "CMakeFiles/overlap_ablation.dir/overlap_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlap_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
