# Empty compiler generated dependencies file for overlap_ablation.
# This may be replaced when dependencies are built.
