# Empty dependencies file for fig3_stc_configs.
# This may be replaced when dependencies are built.
