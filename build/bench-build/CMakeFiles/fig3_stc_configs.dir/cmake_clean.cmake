file(REMOVE_RECURSE
  "../bench/fig3_stc_configs"
  "../bench/fig3_stc_configs.pdb"
  "CMakeFiles/fig3_stc_configs.dir/fig3_stc_configs.cpp.o"
  "CMakeFiles/fig3_stc_configs.dir/fig3_stc_configs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_stc_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
