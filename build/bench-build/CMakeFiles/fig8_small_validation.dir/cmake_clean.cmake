file(REMOVE_RECURSE
  "../bench/fig8_small_validation"
  "../bench/fig8_small_validation.pdb"
  "CMakeFiles/fig8_small_validation.dir/fig8_small_validation.cpp.o"
  "CMakeFiles/fig8_small_validation.dir/fig8_small_validation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_small_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
