file(REMOVE_RECURSE
  "../bench/amg_kernels"
  "../bench/amg_kernels.pdb"
  "CMakeFiles/amg_kernels.dir/amg_kernels.cpp.o"
  "CMakeFiles/amg_kernels.dir/amg_kernels.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amg_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
