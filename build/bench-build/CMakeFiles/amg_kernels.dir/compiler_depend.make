# Empty compiler generated dependencies file for amg_kernels.
# This may be replaced when dependencies are built.
