# Empty compiler generated dependencies file for predecessor_comparison.
# This may be replaced when dependencies are built.
