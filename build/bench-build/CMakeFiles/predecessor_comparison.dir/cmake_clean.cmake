file(REMOVE_RECURSE
  "../bench/predecessor_comparison"
  "../bench/predecessor_comparison.pdb"
  "CMakeFiles/predecessor_comparison.dir/predecessor_comparison.cpp.o"
  "CMakeFiles/predecessor_comparison.dir/predecessor_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predecessor_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
