# Empty dependencies file for fig9_large_validation.
# This may be replaced when dependencies are built.
