file(REMOVE_RECURSE
  "../bench/fig9_large_validation"
  "../bench/fig9_large_validation.pdb"
  "CMakeFiles/fig9_large_validation.dir/fig9_large_validation.cpp.o"
  "CMakeFiles/fig9_large_validation.dir/fig9_large_validation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_large_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
