file(REMOVE_RECURSE
  "../bench/hybrid_ablation"
  "../bench/hybrid_ablation.pdb"
  "CMakeFiles/hybrid_ablation.dir/hybrid_ablation.cpp.o"
  "CMakeFiles/hybrid_ablation.dir/hybrid_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
