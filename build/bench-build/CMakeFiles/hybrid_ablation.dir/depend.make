# Empty dependencies file for hybrid_ablation.
# This may be replaced when dependencies are built.
