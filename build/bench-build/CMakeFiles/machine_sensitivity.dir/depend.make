# Empty dependencies file for machine_sensitivity.
# This may be replaced when dependencies are built.
