file(REMOVE_RECURSE
  "../bench/machine_sensitivity"
  "../bench/machine_sensitivity.pdb"
  "CMakeFiles/machine_sensitivity.dir/machine_sensitivity.cpp.o"
  "CMakeFiles/machine_sensitivity.dir/machine_sensitivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
