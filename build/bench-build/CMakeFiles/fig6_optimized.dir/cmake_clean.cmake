file(REMOVE_RECURSE
  "../bench/fig6_optimized"
  "../bench/fig6_optimized.pdb"
  "CMakeFiles/fig6_optimized.dir/fig6_optimized.cpp.o"
  "CMakeFiles/fig6_optimized.dir/fig6_optimized.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_optimized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
