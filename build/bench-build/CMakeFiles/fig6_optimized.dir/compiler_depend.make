# Empty compiler generated dependencies file for fig6_optimized.
# This may be replaced when dependencies are built.
