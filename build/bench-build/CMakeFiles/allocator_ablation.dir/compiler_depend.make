# Empty compiler generated dependencies file for allocator_ablation.
# This may be replaced when dependencies are built.
