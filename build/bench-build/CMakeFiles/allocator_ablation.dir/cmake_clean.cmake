file(REMOVE_RECURSE
  "../bench/allocator_ablation"
  "../bench/allocator_ablation.pdb"
  "CMakeFiles/allocator_ablation.dir/allocator_ablation.cpp.o"
  "CMakeFiles/allocator_ablation.dir/allocator_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allocator_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
