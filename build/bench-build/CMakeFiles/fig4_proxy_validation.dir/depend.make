# Empty dependencies file for fig4_proxy_validation.
# This may be replaced when dependencies are built.
