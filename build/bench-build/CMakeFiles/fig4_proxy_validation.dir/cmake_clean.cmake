file(REMOVE_RECURSE
  "../bench/fig4_proxy_validation"
  "../bench/fig4_proxy_validation.pdb"
  "CMakeFiles/fig4_proxy_validation.dir/fig4_proxy_validation.cpp.o"
  "CMakeFiles/fig4_proxy_validation.dir/fig4_proxy_validation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_proxy_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
