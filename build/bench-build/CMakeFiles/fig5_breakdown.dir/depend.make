# Empty dependencies file for fig5_breakdown.
# This may be replaced when dependencies are built.
