file(REMOVE_RECURSE
  "../bench/fig5_breakdown"
  "../bench/fig5_breakdown.pdb"
  "CMakeFiles/fig5_breakdown.dir/fig5_breakdown.cpp.o"
  "CMakeFiles/fig5_breakdown.dir/fig5_breakdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
