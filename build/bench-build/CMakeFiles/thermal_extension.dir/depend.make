# Empty dependencies file for thermal_extension.
# This may be replaced when dependencies are built.
