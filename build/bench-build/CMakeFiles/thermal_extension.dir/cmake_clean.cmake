file(REMOVE_RECURSE
  "../bench/thermal_extension"
  "../bench/thermal_extension.pdb"
  "CMakeFiles/thermal_extension.dir/thermal_extension.cpp.o"
  "CMakeFiles/thermal_extension.dir/thermal_extension.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
