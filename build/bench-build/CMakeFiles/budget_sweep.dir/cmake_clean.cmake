file(REMOVE_RECURSE
  "../bench/budget_sweep"
  "../bench/budget_sweep.pdb"
  "CMakeFiles/budget_sweep.dir/budget_sweep.cpp.o"
  "CMakeFiles/budget_sweep.dir/budget_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/budget_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
