// Tests for the CPX coupler: k-d tree vs brute-force search equivalence
// and complexity, inverse-distance interpolation properties, sliding-plane
// rotation, and the coupler-unit performance model on the virtual cluster.

#include <gtest/gtest.h>

#include <cmath>

#include "cpx/field_coupler.hpp"
#include "cpx/interpolation.hpp"
#include "cpx/search.hpp"
#include "cpx/unit.hpp"
#include "mgcfd/distributed.hpp"
#include "mgcfd/instance.hpp"
#include "sim/cluster.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace cpx::coupler {
namespace {

std::vector<mesh::Vec3> random_points(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<mesh::Vec3> pts(n);
  for (auto& p : pts) {
    p = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0),
         rng.uniform(-1.0, 1.0)};
  }
  return pts;
}

class KdTreeVsBrute : public ::testing::TestWithParam<int> {};

TEST_P(KdTreeVsBrute, SameNearestNeighbour) {
  const auto pts = random_points(static_cast<std::size_t>(GetParam()), 17);
  const KdTree tree(pts);
  Rng rng(99);
  for (int q = 0; q < 200; ++q) {
    const mesh::Vec3 query{rng.uniform(-1.2, 1.2), rng.uniform(-1.2, 1.2),
                           rng.uniform(-1.2, 1.2)};
    const std::int64_t brute = nearest_brute(pts, query);
    const std::int64_t fast = tree.nearest(query);
    // Indices may differ only on exact ties; distances must match.
    EXPECT_NEAR(distance_squared(pts[static_cast<std::size_t>(fast)], query),
                distance_squared(pts[static_cast<std::size_t>(brute)], query),
                1e-15);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KdTreeVsBrute,
                         ::testing::Values(1, 2, 10, 100, 5000));

TEST(KdTree, VisitsLogarithmicallyFewNodes) {
  const auto pts = random_points(100'000, 3);
  const KdTree tree(pts);
  Rng rng(5);
  std::int64_t total_visited = 0;
  const int queries = 100;
  for (int q = 0; q < queries; ++q) {
    tree.nearest({rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0),
                  rng.uniform(-1.0, 1.0)});
    total_visited += tree.last_visited();
  }
  // Expected ~log2(1e5) * small constant, certainly far below n.
  EXPECT_LT(total_visited / queries, 2000);
}

TEST(KdTree, ExactHitFindsItself) {
  const auto pts = random_points(1000, 7);
  const KdTree tree(pts);
  for (std::size_t i = 0; i < pts.size(); i += 97) {
    EXPECT_EQ(tree.nearest(pts[i]), static_cast<std::int64_t>(i));
  }
}

TEST(Idw, WeightsArePartitionOfUnity) {
  const auto donors = random_points(500, 21);
  const auto targets = random_points(50, 22);
  const auto stencils = build_idw_stencils(donors, targets, 4);
  ASSERT_EQ(stencils.size(), targets.size());
  for (const Stencil& s : stencils) {
    EXPECT_EQ(s.donors.size(), 4u);
    double sum = 0.0;
    for (double w : s.weights) {
      EXPECT_GE(w, 0.0);
      sum += w;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Idw, ReproducesConstantFieldExactly) {
  const auto donors = random_points(300, 31);
  const auto targets = random_points(40, 32);
  const auto stencils = build_idw_stencils(donors, targets, 4);
  const std::vector<double> field(donors.size(), 3.25);
  std::vector<double> out(targets.size());
  apply_stencils(stencils, field, out);
  for (double v : out) {
    EXPECT_NEAR(v, 3.25, 1e-12);
  }
}

TEST(Idw, ExactHitInjectsDonorValue) {
  const auto donors = random_points(100, 41);
  const std::vector<mesh::Vec3> targets = {donors[7]};
  const auto stencils = build_idw_stencils(donors, targets, 4);
  std::vector<double> field(donors.size(), 0.0);
  field[7] = 42.0;
  std::vector<double> out(1);
  apply_stencils(stencils, field, out);
  EXPECT_DOUBLE_EQ(out[0], 42.0);
}

TEST(Idw, SmoothFieldInterpolatedAccurately) {
  // Dense donors, linear field: IDW should be close (not exact).
  const auto donors = random_points(20'000, 51);
  const auto targets = random_points(20, 52);
  const auto stencils = build_idw_stencils(donors, targets, 4);
  std::vector<double> field(donors.size());
  for (std::size_t i = 0; i < donors.size(); ++i) {
    field[i] = 2.0 * donors[i].x - donors[i].y + 0.5 * donors[i].z;
  }
  std::vector<double> out(targets.size());
  apply_stencils(stencils, field, out);
  for (std::size_t t = 0; t < targets.size(); ++t) {
    const double expected =
        2.0 * targets[t].x - targets[t].y + 0.5 * targets[t].z;
    EXPECT_NEAR(out[t], expected, 0.08);
  }
}

TEST(Idw, ConservativeTransferPreservesTotals) {
  const auto donors = random_points(200, 91);
  const auto targets = random_points(350, 92);
  const auto consistent = build_idw_stencils(donors, targets, 4);
  const auto conservative =
      make_conservative(consistent, donors.size());

  Rng rng(93);
  std::vector<double> field(donors.size());
  double donor_sum = 0.0;
  for (double& v : field) {
    v = rng.uniform(0.0, 2.0);
  }
  // Only donors actually reached by some stencil can be conserved.
  std::vector<bool> reached(donors.size(), false);
  for (const Stencil& s : conservative) {
    for (std::int64_t d : s.donors) {
      reached[static_cast<std::size_t>(d)] = true;
    }
  }
  for (std::size_t d = 0; d < donors.size(); ++d) {
    if (reached[d]) {
      donor_sum += field[d];
    }
  }
  std::vector<double> out(targets.size());
  apply_stencils(conservative, field, out);
  double target_sum = 0.0;
  for (double v : out) {
    target_sum += v;
  }
  EXPECT_NEAR(target_sum, donor_sum, 1e-9 * donor_sum);

  // The consistent stencils, by contrast, preserve constants but not sums.
  std::vector<double> ones(donors.size(), 1.0);
  apply_stencils(consistent, ones, out);
  for (double v : out) {
    EXPECT_NEAR(v, 1.0, 1e-12);
  }
}

TEST(RotateZ, PreservesRadiusAndZ) {
  const auto pts = random_points(100, 61);
  const auto rotated = rotate_z(pts, 0.3);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const double r0 = std::hypot(pts[i].x, pts[i].y);
    const double r1 = std::hypot(rotated[i].x, rotated[i].y);
    EXPECT_NEAR(r0, r1, 1e-12);
    EXPECT_DOUBLE_EQ(pts[i].z, rotated[i].z);
  }
}

TEST(RotateZ, FullTurnIsIdentity) {
  const auto pts = random_points(20, 62);
  const auto rotated = rotate_z(pts, 2.0 * 3.14159265358979323846);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_NEAR(pts[i].x, rotated[i].x, 1e-9);
    EXPECT_NEAR(pts[i].y, rotated[i].y, 1e-9);
  }
}

// --- Functional field coupling ---

TEST(FieldCoupler, ExtractsInterfaceBand) {
  const mesh::UnstructuredMesh m =
      mesh::make_annulus_mesh(6, 24, 10, 1.0, 2.0, 60.0, 1.0);
  // One axial layer of cells sits near z = 0.05 (dz = 0.1).
  const auto cells = extract_plane_cells(m, 0.05, 0.035);
  EXPECT_EQ(static_cast<int>(cells.size()), 6 * 24);
  for (mesh::CellId c : cells) {
    EXPECT_LT(std::abs(m.centroids()[static_cast<std::size_t>(c)].z - 0.05),
              0.05);
  }
}

TEST(FieldCoupler, TransfersConstantExactly) {
  const auto donors = random_points(400, 71);
  const auto targets = random_points(60, 72);
  FieldCoupler fc(donors, targets, InterfaceKind::kSteadyState);
  const std::vector<double> field(donors.size(), 7.5);
  std::vector<double> out(targets.size());
  fc.transfer(field, out);
  for (double v : out) {
    EXPECT_NEAR(v, 7.5, 1e-12);
  }
}

TEST(FieldCoupler, SteadyMapsOnceSlidingRemapsWhenMoved) {
  const auto donors = random_points(200, 73);
  const auto targets = random_points(50, 74);
  std::vector<double> field(donors.size(), 1.0);
  std::vector<double> out(targets.size());

  FieldCoupler steady(donors, targets, InterfaceKind::kSteadyState);
  steady.transfer(field, out);
  steady.transfer(field, out);
  steady.transfer(field, out);
  EXPECT_EQ(steady.remap_count(), 1);

  FieldCoupler sliding(donors, targets, InterfaceKind::kSlidingPlane);
  sliding.transfer(field, out);
  sliding.advance_rotation(0.01);
  sliding.transfer(field, out);
  sliding.advance_rotation(0.01);
  sliding.transfer(field, out);
  EXPECT_EQ(sliding.remap_count(), 3);
  // No motion between transfers: no remap.
  sliding.transfer(field, out);
  EXPECT_EQ(sliding.remap_count(), 3);
}

TEST(FieldCoupler, RotationallySymmetricFieldIsRotationInvariant) {
  // Donor field depending only on radius: transferring before and after a
  // donor-side rotation must give the same target values.
  const mesh::UnstructuredMesh donor_mesh =
      mesh::make_annulus_mesh(16, 96, 1, 1.0, 2.0, 360.0, 0.1);
  const mesh::UnstructuredMesh target_mesh =
      mesh::make_annulus_mesh(12, 72, 1, 1.0, 2.0, 360.0, 0.1, 77);
  const auto donors = donor_mesh.centroids();
  const auto targets = target_mesh.centroids();
  std::vector<double> field(donors.size());
  for (std::size_t i = 0; i < donors.size(); ++i) {
    field[i] = std::hypot(donors[i].x, donors[i].y);  // radius
  }
  FieldCoupler fc(donors, targets, InterfaceKind::kSlidingPlane);
  std::vector<double> before(targets.size());
  fc.transfer(field, before);
  fc.advance_rotation(0.37);
  std::vector<double> after(targets.size());
  fc.transfer(field, after);
  for (std::size_t t = 0; t < targets.size(); ++t) {
    // Tolerance ~ the radial donor spacing: the rotated stencil samples
    // different donors, so values agree to interpolation accuracy.
    EXPECT_NEAR(before[t], after[t], 0.04) << "target " << t;
  }
}

TEST(FieldCoupler, SmoothFieldAccuracyAcrossMeshes) {
  // Transfer a smooth azimuthal field between two differently refined
  // annulus interfaces and check pointwise accuracy.
  const mesh::UnstructuredMesh donor_mesh =
      mesh::make_annulus_mesh(10, 96, 1, 1.0, 2.0, 360.0, 0.05);
  const mesh::UnstructuredMesh target_mesh =
      mesh::make_annulus_mesh(7, 64, 1, 1.0, 2.0, 360.0, 0.05, 5);
  const auto donors = donor_mesh.centroids();
  const auto targets = target_mesh.centroids();
  std::vector<double> field(donors.size());
  for (std::size_t i = 0; i < donors.size(); ++i) {
    field[i] = std::atan2(donors[i].y, donors[i].x);
  }
  FieldCoupler fc(donors, targets, InterfaceKind::kSteadyState);
  std::vector<double> out(targets.size());
  fc.transfer(field, out);
  int checked = 0;
  for (std::size_t t = 0; t < targets.size(); ++t) {
    const double expected = std::atan2(targets[t].y, targets[t].x);
    // Skip the branch cut of atan2.
    if (std::abs(expected) > 2.8) {
      continue;
    }
    EXPECT_NEAR(out[t], expected, 0.1) << "target " << t;
    ++checked;
  }
  EXPECT_GT(checked, 300);
}

TEST(FieldCoupler, RejectsBadUsage) {
  const auto donors = random_points(10, 81);
  const auto targets = random_points(10, 82);
  FieldCoupler steady(donors, targets, InterfaceKind::kSteadyState);
  EXPECT_THROW(steady.advance_rotation(0.1), CheckError);
  std::vector<double> small(3);
  std::vector<double> out(targets.size());
  EXPECT_THROW(steady.transfer(small, out), CheckError);
}

TEST(FieldCoupler, EndToEndCoupledRowsTransferPhysics) {
  // Integration: two real distributed Euler rows coupled through the
  // field coupler. Uniform flow must stay uniform (exact constant
  // transfer + free-stream fixed point); a density pulse at the upstream
  // exit must appear at the downstream inlet after transfer.
  const mesh::UnstructuredMesh row =
      mesh::make_annulus_mesh(5, 16, 8, 1.0, 2.0, 30.0, 1.0);
  const double dz = 1.0 / 8.0;
  mgcfd::EulerOptions euler;
  euler.mg_levels = 1;
  euler.cfl = 0.4;
  mgcfd::DistributedSolver upstream(row, 3, euler);
  mgcfd::DistributedSolver downstream(row, 3, euler);
  const mgcfd::State inf = mgcfd::freestream(0.4, 1.0, 1.0, {0, 0, 1});
  upstream.set_uniform(inf);
  downstream.set_uniform(inf);

  const auto exit_cells = extract_plane_cells(row, 1.0 - dz / 2, dz / 2.5);
  const auto inlet_cells = extract_plane_cells(row, dz / 2, dz / 2.5);
  ASSERT_FALSE(exit_cells.empty());
  auto targets = gather_centroids(row, inlet_cells);
  for (auto& p : targets) {
    p.z += 1.0 - dz;
  }
  FieldCoupler fc(gather_centroids(row, exit_cells), targets,
                  InterfaceKind::kSteadyState);

  const auto couple_once = [&]() {
    const auto u = upstream.gather_solution();
    std::vector<double> donor(exit_cells.size());
    std::vector<double> target(inlet_cells.size());
    std::vector<mgcfd::State> states(inlet_cells.size());
    for (int k = 0; k < 5; ++k) {
      for (std::size_t i = 0; i < exit_cells.size(); ++i) {
        donor[i] = u[static_cast<std::size_t>(exit_cells[i])]
                    [static_cast<std::size_t>(k)];
      }
      fc.transfer(donor, target);
      for (std::size_t i = 0; i < inlet_cells.size(); ++i) {
        states[i][static_cast<std::size_t>(k)] = target[i];
      }
    }
    for (std::size_t i = 0; i < inlet_cells.size(); ++i) {
      downstream.set_cell(inlet_cells[i], states[i]);
    }
  };

  // Phase 1: uniform flow stays uniform under coupling.
  for (int s = 0; s < 5; ++s) {
    upstream.step();
    downstream.step();
    couple_once();
  }
  for (const mgcfd::State& u : downstream.gather_solution()) {
    for (int k = 0; k < 5; ++k) {
      EXPECT_NEAR(u[static_cast<std::size_t>(k)],
                  inf[static_cast<std::size_t>(k)], 1e-9);
    }
  }

  // Phase 2: a pulse at the upstream exit crosses the interface.
  for (mesh::CellId c : exit_cells) {
    mgcfd::State bumped = inf;
    bumped[0] *= 1.05;
    bumped[4] *= 1.05;
    upstream.set_cell(c, bumped);
  }
  upstream.step();
  downstream.step();
  couple_once();
  double inlet_rho = 0.0;
  const auto d = downstream.gather_solution();
  for (mesh::CellId c : inlet_cells) {
    inlet_rho += d[static_cast<std::size_t>(c)][0];
  }
  inlet_rho /= static_cast<double>(inlet_cells.size());
  EXPECT_GT(inlet_rho, 1.02 * inf[0]);
}

// --- Coupler unit on the virtual cluster ---

struct UnitFixture {
  sim::Cluster cluster{sim::MachineModel::archer2(), 300};
  mgcfd::Instance a{"a", 8'000'000, {0, 128}};
  mgcfd::Instance b{"b", 8'000'000, {128, 256}};
};

TEST(CouplerUnit, ExchangeAdvancesClocksOnBothSides) {
  UnitFixture f;
  UnitConfig cfg;
  cfg.interface_cells = 50'000;
  CouplerUnit cu("cu_test", cfg, {256, 300}, f.a, f.b);
  cu.exchange(f.cluster);
  EXPECT_GT(f.cluster.clock(0), 0.0);    // side A boundary
  EXPECT_GT(f.cluster.clock(128), 0.0);  // side B boundary
  EXPECT_GT(f.cluster.clock(256), 0.0);  // CU rank
}

TEST(CouplerUnit, SlidingRemapsEveryExchangeSteadyOnlyOnce) {
  UnitFixture fs;
  UnitConfig sliding;
  sliding.kind = InterfaceKind::kSlidingPlane;
  sliding.interface_cells = 200'000;
  CouplerUnit cu_s("cu_s", sliding, {256, 300}, fs.a, fs.b);
  cu_s.exchange(fs.cluster);
  const double t1 = fs.cluster.max_clock({256, 300});
  cu_s.exchange(fs.cluster);
  const double sliding_second = fs.cluster.max_clock({256, 300}) - t1;

  UnitFixture ft;
  UnitConfig steady = sliding;
  steady.kind = InterfaceKind::kSteadyState;
  CouplerUnit cu_t("cu_t", steady, {256, 300}, ft.a, ft.b);
  cu_t.exchange(ft.cluster);
  const double u1 = ft.cluster.max_clock({256, 300});
  cu_t.exchange(ft.cluster);
  const double steady_second = ft.cluster.max_clock({256, 300}) - u1;

  // After the first exchange the steady interface skips the mapping.
  EXPECT_LT(steady_second, 0.8 * sliding_second);
}

TEST(CouplerUnit, TreeSearchBeatsBruteForce) {
  UnitFixture f;
  UnitConfig tree;
  tree.interface_cells = 500'000;
  tree.tree_search = true;
  UnitConfig brute = tree;
  brute.tree_search = false;
  CouplerUnit cu_tree("cu_tree", tree, {256, 300}, f.a, f.b);
  CouplerUnit cu_brute("cu_brute", brute, {256, 300}, f.a, f.b);
  const double t_tree = cu_tree.mapping_seconds(f.cluster);
  const double t_brute = cu_brute.mapping_seconds(f.cluster);
  EXPECT_GT(t_brute / t_tree, 100.0);
}

TEST(CouplerUnit, MoreCuRanksCutMappingTime) {
  UnitFixture f;
  UnitConfig cfg;
  cfg.interface_cells = 500'000;
  CouplerUnit small("cu1", cfg, {256, 260}, f.a, f.b);
  CouplerUnit large("cu2", cfg, {256, 300}, f.a, f.b);
  EXPECT_GT(small.mapping_seconds(f.cluster),
            5.0 * large.mapping_seconds(f.cluster));
}

TEST(CouplerUnit, ResetRestoresMappingLatch) {
  UnitFixture f;
  UnitConfig steady;
  steady.kind = InterfaceKind::kSteadyState;
  steady.interface_cells = 200'000;
  CouplerUnit cu("cu", steady, {256, 300}, f.a, f.b);
  cu.exchange(f.cluster);
  const double t1 = f.cluster.max_clock({256, 300});
  cu.reset();
  cu.exchange(f.cluster);
  // Second exchange remaps again after reset, costing as much compute.
  const double second = f.cluster.max_clock({256, 300}) - t1;
  EXPECT_GT(second, 0.5 * t1);
}

}  // namespace
}  // namespace cpx::coupler
