#!/usr/bin/env python3
"""Fixture tests for the static-analysis tools (docs/static_analysis.md).

Runs cpxcheck (lite engine, no baseline) over tests/lint_fixtures/cpxcheck
and tools/lint_cpx.py over tests/lint_fixtures/lint_cpx, and asserts the
EXACT `path:line:rule` finding set recorded in expected_cpxcheck.txt /
expected_lint_cpx.txt: trigger fixtures must fire on their marked lines,
clean fixtures must stay silent. Also unit-tests the raw-string handling
in both tools' lexing layers and the `--list --json` rule inventories.

Registered as a ctest (label `lint`); runs standalone too:

    python3 tests/lint_fixtures/run_fixtures.py
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parent.parent

FINDING_RE = re.compile(r"^(.+?):(\d+): \[([a-z-]+)\]")

failures: list[str] = []


def fail(msg: str) -> None:
    failures.append(msg)
    print(f"FAIL: {msg}")


def ok(msg: str) -> None:
    print(f"  ok: {msg}")


def run(cmd: list[str]) -> tuple[int, str]:
    proc = subprocess.run(cmd, cwd=REPO, capture_output=True, text=True)
    return proc.returncode, proc.stdout


def findings_of(output: str) -> set[str]:
    out = set()
    for line in output.splitlines():
        m = FINDING_RE.match(line)
        if m:
            path = Path(m.group(1)).as_posix()
            out.add(f"{path}:{m.group(2)}:{m.group(3)}")
    return out


def check_findings(name: str, cmd: list[str], expected_file: Path) -> None:
    code, output = run(cmd)
    got = findings_of(output)
    expected = {line.strip()
                for line in expected_file.read_text().splitlines()
                if line.strip()}
    missing = expected - got
    extra = got - expected
    for f in sorted(missing):
        fail(f"{name}: expected finding not reported: {f}")
    for f in sorted(extra):
        fail(f"{name}: unexpected finding: {f}")
    if expected and code == 0:
        fail(f"{name}: exit code 0 despite expected findings")
    if not missing and not extra:
        ok(f"{name}: {len(expected)} finding(s) match exactly")


def check_raw_strings_lint_cpx() -> None:
    sys.path.insert(0, str(REPO / "tools"))
    import lint_cpx
    src = ('auto s = R"(line one "quote\n'
           'ghost_x plan.begin(a); new int;)" ; x.begin(y);\n'
           'auto t = u8R"d(second "raw)d"; int n = 10\'000;\n'
           "char c = 'x'; auto u = LR\"(third)\";\n")
    out = lint_cpx.strip_comments_and_strings(src)
    if out.count("\n") != src.count("\n"):
        fail("lint_cpx stripper: raw string broke line structure")
    elif any(s in out for s in ("ghost_x", "plan.begin", "new int",
                                "quote", "second", "third")):
        fail("lint_cpx stripper: raw-string contents leaked into code")
    elif "x.begin(y)" not in out:
        fail("lint_cpx stripper: code after a raw string was eaten")
    elif "10'000" not in out:
        fail("lint_cpx stripper: digit separator mangled")
    else:
        ok("lint_cpx stripper handles raw strings")
    # Identifier tails must not be misread as encoding prefixes.
    out2 = lint_cpx.strip_comments_and_strings('f(FACTOR"(not raw)");\n')
    if "not raw" in out2:
        fail("lint_cpx stripper: FACTOR\"...\" misread as raw string")
    else:
        ok("lint_cpx stripper: no false raw-string prefixes")


def check_raw_strings_cpxcheck() -> None:
    sys.path.insert(0, str(REPO / "tools" / "cpxcheck"))
    import lex
    toks = lex.tokenize('auto s = R"d(a )nope" b\nc)d"; int z = 1;\n')
    strs = [t for t in toks if t.kind == lex.STR]
    ids = [t.text for t in toks if t.kind == lex.ID]
    if len(strs) != 1 or ')nope" b\nc' not in strs[0].text:
        fail("cpxcheck lexer: raw-string contents wrong")
    elif "z" not in ids or "b" in ids:
        fail("cpxcheck lexer: raw string desynchronised the token stream")
    elif toks[-2].text != "1":
        fail("cpxcheck lexer: trailing tokens wrong after raw string")
    else:
        z = next(t for t in toks if t.text == "z")
        if z.line != 2:
            fail("cpxcheck lexer: line numbers wrong after raw string")
        else:
            ok("cpxcheck lexer handles raw strings")


def check_inventories() -> None:
    for name, cmd in (
            ("lint_cpx", [sys.executable, "tools/lint_cpx.py",
                          "--list", "--json"]),
            ("cpxcheck", [sys.executable, "tools/cpxcheck",
                          "--list", "--json"])):
        code, output = run(cmd)
        try:
            rules = json.loads(output)
        except json.JSONDecodeError:
            fail(f"{name} --list --json: not valid JSON")
            continue
        if code != 0 or not rules or not all(
                r.get("name") and r.get("summary") for r in rules):
            fail(f"{name} --list --json: empty or incomplete inventory")
        else:
            ok(f"{name} --list --json: {len(rules)} rules")


def main() -> int:
    check_findings(
        "cpxcheck fixtures",
        [sys.executable, "tools/cpxcheck", "tests/lint_fixtures/cpxcheck",
         "--engine", "lite", "--baseline", "none"],
        HERE / "expected_cpxcheck.txt")
    check_findings(
        "lint_cpx fixtures",
        [sys.executable, "tools/lint_cpx.py", "tests/lint_fixtures/lint_cpx"],
        HERE / "expected_lint_cpx.txt")
    check_raw_strings_lint_cpx()
    check_raw_strings_cpxcheck()
    check_inventories()
    if failures:
        print(f"\nrun_fixtures: {len(failures)} failure(s)")
        return 1
    print("\nrun_fixtures: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
