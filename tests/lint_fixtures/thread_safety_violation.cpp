// Negative control for the clang -Wthread-safety CI job
// (docs/static_analysis.md). This file is NEVER part of the build: CI
// compiles it with `clang++ -fsyntax-only -Wthread-safety
// -Werror=thread-safety` and REQUIRES the compile to fail. If it ever
// compiles cleanly, the annotation layer has gone inert (macros compiled
// away under clang, wrapper types losing their capability attributes, the
// warning flag dropped) and every CPX_GUARDED_BY in src/ is decoration.

#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace cpx::fixture {

class Account {
 public:
  // VIOLATION 1: writes a guarded field without holding its mutex.
  void deposit_unlocked(int amount) { balance_ += amount; }

  // VIOLATION 2: acquires the two mutexes against the declared
  // CPX_ACQUIRED_AFTER order.
  void audit_wrong_order() {
    support::MutexLock audit(audit_mutex_);
    support::MutexLock state(state_mutex_);
    balance_ = checked_;
  }

  // VIOLATION 3: requires-clause ignored by a caller holding nothing.
  void adjust_locked(int amount) CPX_REQUIRES(state_mutex_) {
    balance_ += amount;
  }
  void adjust_without_lock(int amount) { adjust_locked(amount); }

 private:
  support::Mutex state_mutex_;
  support::Mutex audit_mutex_ CPX_ACQUIRED_AFTER(state_mutex_);
  int balance_ CPX_GUARDED_BY(state_mutex_) = 0;
  int checked_ CPX_GUARDED_BY(audit_mutex_) = 0;
};

}  // namespace cpx::fixture
