// lint_cpx fixture — raw-string literal handling in the comment/string
// stripper. The literal below contains an unbalanced quote, a fake plan
// window, ghost reads, rand( and a naked new: with the pre-fix stripper
// the quote flipped string/code sense for the rest of the file, so the
// literal's contents leaked into the lint and the REAL findings after it
// landed on wrong lines (or vanished). The expected findings assert both
// that nothing inside the literal is reported and that the two genuine
// naked-new findings carry exact line numbers.

namespace fix {

const char* kTemplate = R"tmpl(
  An "unbalanced quote, then: plan.begin(x); return;
  ghost_cells[i] = rand();
  auto* leak = new double[10];
)tmpl";

const char* kPlain = u8R"(second raw string, "another quote)";

int* make() {
  return new int(7);  // EXPECT naked-new (line 21)
}

void unmake(int* p) {
  delete p;  // EXPECT naked-new (line 25)
}

}  // namespace fix
