// cpxcheck fixture — ckpt-registry rule: out-of-line serialize/restore
// bodies. `ok_` is threaded through both; `missing_` through neither.

#include "state.hpp"

namespace fix {

void Saved::serialize(ckpt::Writer& w) const {
  w.write(ok_);
}

void Saved::restore(ckpt::Reader& r) {
  r.read(ok_);
}

}  // namespace fix
