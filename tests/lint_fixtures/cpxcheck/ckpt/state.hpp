#pragma once
// cpxcheck fixture — ckpt-registry rule: member enumeration comes from the
// class definition (any member, any naming style, brace or equals init,
// annotation macros), not from a `name_` regex.

#include <vector>

namespace fix {

class Saved {
 public:
  void serialize(ckpt::Writer& w) const;
  void restore(ckpt::Reader& r);

 private:
  double ok_ = 0.0;
  double missing_ = 0.0;  // EXPECT ckpt-registry: not in either body
  std::vector<double> scratch_;  // cpx-lint: allow(ckpt) — sized on first use, rebuilt after restore
  static constexpr int kVersion = 3;  // static: not per-instance state
};

// Implements the pair but is not registered: EXPECT ckpt-registry here.
class Unregistered {
 public:
  void serialize(ckpt::Writer& w) const { w.write(x_); }
  void restore(ckpt::Reader& r) { r.read(x_); }

 private:
  double x_ = 0.0;
};

}  // namespace fix
