#pragma once
// cpxcheck fixture — ckpt-registry rule: a miniature checkpoint registry.
// `fix::Absent` is registered but implements nothing (EXPECT a finding at
// line 1 of this file); `fix::Saved` exists but drops a member.

namespace fix::ckpt {

inline constexpr const char* kCheckpointedClasses[] = {
    "fix::Saved",
    "fix::Absent",
};

}  // namespace fix::ckpt
