// cpxcheck fixture — split-phase rule, CLEAN cases. Zero findings.

#include "comm/exchange_plan.hpp"

namespace fix {

// Well-formed window with compute inside it.
double balanced(comm::Communicator& comm, double acc) {
  comm::ExchangePlan plan;
  plan.begin(comm, nullptr);
  acc += 1.0;  // interior work, no ghost reads
  plan.finish(comm, nullptr);
  return acc;
}

// Container begin() with arguments is NOT a window: the receiver's
// declared type resolves to a non-plan class (the regex heuristic in
// tools/lint_cpx.py has to rely on argument count here).
int container_begin(std::vector<int>& v) {
  auto it = v.begin();
  std::advance(it, 1);
  return *it;
}

// Returning the handle transfers window ownership to the caller (the
// sim::begin_exchange wrapper pattern): not a leak.
int handle_escapes(sim::Cluster& cluster, std::vector<Message>& msgs) {
  const int handle = cluster.exchange_begin(msgs, 0);
  return handle;
}

// Begin and finish balanced inside every iteration of a loop.
void balanced_loop(sim::Cluster& cluster, std::vector<Message>& msgs) {
  for (int i = 0; i < 4; ++i) {
    const int h = cluster.exchange_begin(msgs, 0);
    cluster.exchange_finish(h);
  }
}

}  // namespace fix
