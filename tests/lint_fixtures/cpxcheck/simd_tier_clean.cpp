// cpxcheck fixture — simd-tier rule, CLEAN cases.

#include "support/simd.hpp"

namespace fix {

namespace simd = cpx::support::simd;

// The fixed-lane tree helpers are the exact determinism tier: partial
// sums land in kReduceLanes virtual lanes regardless of the simd width,
// then combine in a fixed tree. Bitwise stable at any width.
double dot_exact(const double* a, const double* b, long n) {
  return simd::tree_reduce(0, n, [&](long i) { return a[i] * b[i]; });
}

double combine_exact(const double (&lanes)[simd::kReduceLanes]) {
  return simd::tree_combine(lanes);
}

// A timing probe genuinely outside the determinism contract may keep the
// cheap lane-order sum with an explicit marker.
double probe_sum(const simd::pack<4>& acc) {
  return simd::hsum(acc);  // cpx-lint: allow(simd-tier)
}

}  // namespace fix
