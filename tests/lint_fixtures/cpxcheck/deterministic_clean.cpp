// cpxcheck fixture — deterministic-kernels rule, CLEAN cases.

#include <map>
#include <unordered_map>

#include "support/rng.hpp"

namespace fix {

struct Table {
  std::map<int, double> weights;                  // ordered: fine
  std::unordered_map<int, double> lookup_cache;   // lookups only: fine
};

// Iterating an ordered map is deterministic.
double sum_weights(const Table& t) {
  double s = 0.0;
  for (const auto& kv : t.weights) {
    s += kv.second;
  }
  return s;
}

// Point lookups into an unordered container never observe its order.
double lookup(const Table& t, int key) {
  const auto it = t.lookup_cache.find(key);
  return it == t.lookup_cache.end() ? 0.0 : it->second;
}

// Seeded repo Rng is the sanctioned randomness source.
double jitter() {
  cpx::Rng rng(42);
  return rng.uniform(0.0, 1.0);
}

}  // namespace fix
