// cpxcheck fixture — solve-alloc rule, CLEAN cases.

#include <vector>

namespace fix::amg {

struct Scratch {
  std::vector<double> buf;
};

// Warm-sizing at setup carries an explicit, audited allow.
void size_scratch(Scratch& s, int n) {
  s.buf.resize(static_cast<std::size_t>(n));  // cpx-lint: allow(alloc) — setup-time sizing, amortised before the solve
}

// Debug-tier-gated work is off the production solve path.
void validate(Scratch& s) {
  std::vector<double> copy;
  copy.assign(s.buf.begin(), s.buf.end());
}

double pcg(Scratch& s) {
  double acc = 0.0;
  for (double v : s.buf) {
    acc += v;
  }
  if (check::deep()) {
    validate(s);  // gated: not traversed
  }
  return acc;
}

// Not reachable from any solve entry: allocation is fine here.
void assemble(Scratch& s) {
  s.buf.push_back(1.0);
}

}  // namespace fix::amg
