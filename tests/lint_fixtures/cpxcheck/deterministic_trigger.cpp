// cpxcheck fixture — deterministic-kernels rule, TRIGGER cases.

#include <random>
#include <unordered_map>

namespace fix {

struct Table {
  std::unordered_map<int, double> weights;
};

// Range-for over an unordered member: iteration order is not stable.
double sum_weights(const Table& t) {
  double s = 0.0;
  for (const auto& kv : t.weights) {  // EXPECT deterministic-kernels
    s += kv.second;
  }
  return s;
}

// Manual iterator walk over an unordered local.
double sum_local() {
  std::unordered_map<int, double> m;
  double s = 0.0;
  for (auto it = m.begin(); it != m.end(); ++it) {  // EXPECT (begin call)
    s += it->second;
  }
  return s;
}

// Ambient randomness outside support/rng.hpp.
double jitter() {
  std::mt19937 gen(42);  // EXPECT deterministic-kernels
  return 0.0;
}

// Wall-clock read.
long stamp() {
  return time(nullptr);  // EXPECT deterministic-kernels
}

}  // namespace fix
