// cpxcheck fixture — allow-audit rule, CLEAN case: allows naming real
// rules (from either tool) pass the audit.

#include <vector>

namespace fix {

void warm(std::vector<double>& v, int n) {
  v.reserve(static_cast<std::size_t>(n));  // cpx-lint: allow(alloc)
}

}  // namespace fix
