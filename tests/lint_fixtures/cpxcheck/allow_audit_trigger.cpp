// cpxcheck fixture — allow-audit rule, TRIGGER case. A suppression that
// names a rule which does not exist enforces nothing, silently.

namespace fix {

int racy_read(const int* p) {
  // cpx-lint: allow(mt-unsafe)
  return *p;  // the allow above names an unknown rule: EXPECT allow-audit
}

}  // namespace fix
