// cpxcheck fixture — split-phase rule, TRIGGER cases.
// Never compiled; consumed by tests/lint_fixtures/run_fixtures.py, which
// asserts the exact file:line:rule findings below.

#include "comm/exchange_plan.hpp"

namespace fix {

// Early return inside an open plan window (finding at the return).
double early_return(comm::Communicator& comm, bool err) {
  comm::ExchangePlan plan;
  plan.begin(comm, nullptr);
  if (err) {
    return -1.0;  // EXPECT split-phase: leaves the open window
  }
  plan.finish(comm, nullptr);
  return 0.0;
}

// Ghost-slot read inside the window (finding at the read).
double ghost_read(comm::Communicator& comm, const double* ghost_vals) {
  comm::ExchangePlan plan;
  plan.begin(comm, nullptr);
  const double v = ghost_vals[0];  // EXPECT split-phase: ghost read
  plan.finish(comm, nullptr);
  return v;
}

// Cluster window handle that is never finished (finding at the begin).
void leaked_handle(sim::Cluster& cluster, std::vector<Message>& msgs) {
  const int h = cluster.exchange_begin(msgs, 0);  // EXPECT split-phase
  (void)h;
}

// Window finished on only one branch (finding at the if).
void one_branch(comm::Communicator& comm, bool flip) {
  comm::ExchangePlan plan;
  plan.begin(comm, nullptr);
  if (flip) {  // EXPECT split-phase: branch divergence
    plan.finish(comm, nullptr);
  }
}

}  // namespace fix
