// cpxcheck fixture — simd-tier rule, TRIGGER cases.

#include "support/simd.hpp"

namespace fix {

namespace simd = cpx::support::simd;

// Direct hsum() of a pack accumulator: lane-order rounding depends on
// the active simd width, so the result is relaxed-tier.
double dot_relaxed(const double* a, const double* b, long n) {
  simd::pack<4> acc = simd::pack<4>::broadcast(0.0);
  for (long i = 0; i + 4 <= n; i += 4) {
    acc = simd::fma(simd::pack<4>::load(a + i), simd::pack<4>::load(b + i),
                    acc);
  }
  return simd::hsum(acc);  // EXPECT simd-tier
}

// Qualified spelling is the same relaxed reduction.
double norm_relaxed(const simd::pack<8>& acc) {
  return cpx::support::simd::hsum(acc);  // EXPECT simd-tier
}

}  // namespace fix
