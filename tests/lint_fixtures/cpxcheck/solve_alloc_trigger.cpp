// cpxcheck fixture — solve-alloc rule, TRIGGER cases. The rule follows
// the call graph out of the solve entry points, so the allocation below
// is flagged even though it sits two calls away from pcg() in a function
// a per-file rule would never look at.

#include <vector>

namespace fix::amg {

struct Scratch {
  std::vector<double> buf;
};

void deep_helper(Scratch& s) {
  s.buf.push_back(0.0);  // EXPECT solve-alloc (reachable from pcg)
}

void helper(Scratch& s) {
  deep_helper(s);
}

double pcg(Scratch& s) {
  helper(s);
  double* raw = new double[4];  // EXPECT solve-alloc (`new` in entry)
  delete[] raw;
  return 0.0;
}

}  // namespace fix::amg
