// Tests for meshes, partitioning, halos, coarsening, and the analytic
// partition-statistics model (including its validation against measured
// RCB partitions — the property the paper-scale runs depend on).

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "mesh/coarsen.hpp"
#include "mesh/mesh.hpp"
#include "mesh/partition.hpp"
#include "mesh/stats.hpp"
#include "support/check.hpp"

namespace cpx::mesh {
namespace {

TEST(Mesh, BoxMeshCountsAndDegrees) {
  const UnstructuredMesh m = make_box_mesh(4, 3, 2);
  EXPECT_EQ(m.num_cells(), 24);
  // Edge count of a structured box: 3*n - boundary deficits.
  EXPECT_EQ(m.num_edges(), (4 - 1) * 3 * 2 + 4 * (3 - 1) * 2 + 4 * 3 * (2 - 1));
  // Interior cell of a big box has degree 6.
  const UnstructuredMesh big = make_box_mesh(5, 5, 5);
  bool found_degree6 = false;
  for (CellId c = 0; c < big.num_cells(); ++c) {
    if (big.degree(c) == 6) {
      found_degree6 = true;
      break;
    }
  }
  EXPECT_TRUE(found_degree6);
}

TEST(Mesh, JitterIsDeterministic) {
  const UnstructuredMesh a = make_box_mesh(3, 3, 3, 99);
  const UnstructuredMesh b = make_box_mesh(3, 3, 3, 99);
  for (std::size_t i = 0; i < a.centroids().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.centroids()[i].x, b.centroids()[i].x);
  }
  const UnstructuredMesh c = make_box_mesh(3, 3, 3, 100);
  EXPECT_NE(a.centroids()[0].x, c.centroids()[0].x);
}

TEST(Mesh, AnnulusMeshGeometry) {
  const UnstructuredMesh m =
      make_annulus_mesh(8, 16, 4, 1.0, 2.0, 30.0, 0.5);
  EXPECT_EQ(m.num_cells(), 8 * 16 * 4);
  for (const Vec3& p : m.centroids()) {
    const double r = std::sqrt(p.x * p.x + p.y * p.y);
    EXPECT_GT(r, 0.9);
    EXPECT_LT(r, 2.1);
  }
  m.validate();
}

TEST(Mesh, FullWheelAnnulusHasPeriodicEdges) {
  const UnstructuredMesh wedge =
      make_annulus_mesh(4, 16, 2, 1.0, 2.0, 90.0, 0.5);
  const UnstructuredMesh wheel =
      make_annulus_mesh(4, 16, 2, 1.0, 2.0, 360.0, 0.5);
  // Same cell counts, but the wheel closes the azimuthal direction.
  EXPECT_EQ(wedge.num_cells(), wheel.num_cells());
  EXPECT_GT(wheel.num_edges(), wedge.num_edges());
}

TEST(Mesh, BoxDimsForHitsTarget) {
  const auto d = box_dims_for(1'000'000);
  const std::int64_t cells =
      static_cast<std::int64_t>(d[0]) * d[1] * d[2];
  EXPECT_GT(cells, 800'000);
  EXPECT_LT(cells, 1'250'000);
}

TEST(Partition, RcbBalancesCells) {
  const UnstructuredMesh m = make_box_mesh(20, 20, 20);
  for (int parts : {2, 3, 7, 16}) {
    const Partitioning p = partition_rcb(m, parts);
    std::int64_t mn = m.num_cells();
    std::int64_t mx = 0;
    for (int i = 0; i < parts; ++i) {
      const std::int64_t c = p.owned_count(i);
      mn = std::min(mn, c);
      mx = std::max(mx, c);
    }
    EXPECT_GT(mn, 0);
    // RCB with proportional splits is near-perfectly balanced.
    EXPECT_LE(static_cast<double>(mx) / static_cast<double>(mn), 1.05)
        << "parts=" << parts;
  }
}

TEST(Partition, EveryCellAssigned) {
  const UnstructuredMesh m = make_box_mesh(10, 10, 10);
  const Partitioning p = partition_rcb(m, 8);
  for (int part : p.part_of) {
    EXPECT_GE(part, 0);
    EXPECT_LT(part, 8);
  }
}

TEST(Partition, LocalMeshesCoverAllEdges) {
  const UnstructuredMesh m = make_box_mesh(12, 12, 12);
  const Partitioning p = partition_rcb(m, 8);
  const auto locals = extract_local_meshes(m, p);
  ASSERT_EQ(locals.size(), 8u);
  std::int64_t owned_total = 0;
  std::int64_t interior_edges = 0;
  std::int64_t cut_edges = 0;
  for (const LocalMesh& lm : locals) {
    owned_total += lm.num_owned();
    for (const auto& e : lm.edges) {
      const bool a_ghost = e.a >= lm.num_owned();
      const bool b_ghost = e.b >= lm.num_owned();
      EXPECT_FALSE(a_ghost && b_ghost);
      if (a_ghost || b_ghost) {
        ++cut_edges;
      } else {
        ++interior_edges;
      }
    }
  }
  EXPECT_EQ(owned_total, m.num_cells());
  // Each cut edge appears in exactly two parts.
  EXPECT_EQ(interior_edges + cut_edges / 2, m.num_edges());
  EXPECT_EQ(cut_edges % 2, 0);
}

TEST(Partition, SendListsMatchRecvCounts) {
  const UnstructuredMesh m = make_box_mesh(10, 10, 10);
  const Partitioning p = partition_rcb(m, 6);
  const auto locals = extract_local_meshes(m, p);
  const auto send_count_to = [&](int from_part, int to_part) -> std::int64_t {
    for (const auto& s : locals[static_cast<std::size_t>(from_part)].sends) {
      if (s.neighbor == to_part) {
        return static_cast<std::int64_t>(s.cells.size());
      }
    }
    ADD_FAILURE() << "no send list from " << from_part << " to " << to_part;
    return -1;
  };
  for (const LocalMesh& lm : locals) {
    ASSERT_EQ(lm.sends.size(), lm.recvs.size());
    for (const auto& rc : lm.recvs) {
      // My ghost count from a neighbour == that neighbour's send list to me.
      EXPECT_EQ(rc.count, send_count_to(rc.neighbor, lm.part));
    }
    // Ghost total matches sum of recv counts.
    std::int64_t recv_total = 0;
    for (const auto& rc : lm.recvs) {
      recv_total += rc.count;
    }
    EXPECT_EQ(recv_total, lm.num_ghosts());
  }
}

TEST(Partition, HaloShrinksRelativeToOwnedAsPartsGrow) {
  const UnstructuredMesh m = make_box_mesh(24, 24, 24);
  const HaloSummary h8 = summarize_halos(m, partition_rcb(m, 8));
  const HaloSummary h64 = summarize_halos(m, partition_rcb(m, 64));
  // Surface-to-volume: owned shrinks by 8x, halo only by ~4x.
  EXPECT_LT(h64.mean_owned, h8.mean_owned / 7.0);
  EXPECT_GT(h64.mean_halo, h8.mean_halo / 5.0);
}

TEST(PartitionStats, AnalyticMatchesMeasuredWithin35Percent) {
  // The analytic surface model must track real RCB partitions well enough
  // to drive the performance model at unmeasurable scales.
  const UnstructuredMesh m = make_box_mesh(32, 32, 32);
  for (int parts : {8, 16, 64}) {
    const PartitionStats measured =
        PartitionStats::measure(m, partition_rcb(m, parts));
    const PartitionStats analytic =
        PartitionStats::analytic(m.num_cells(), parts);
    EXPECT_NEAR(analytic.owned_mean, measured.owned_mean,
                0.01 * measured.owned_mean);
    EXPECT_NEAR(analytic.halo_mean, measured.halo_mean,
                0.35 * measured.halo_mean)
        << "parts=" << parts;
  }
}

TEST(PartitionStats, SinglePartHasNoHalo) {
  const PartitionStats s = PartitionStats::analytic(1'000'000, 1);
  EXPECT_EQ(s.halo_mean, 0.0);
  EXPECT_EQ(s.neighbors_mean, 0.0);
}

TEST(PartitionStats, HaloCappedByRemoteCells) {
  // Tiny mesh, many parts: halo cannot exceed what exists.
  const PartitionStats s = PartitionStats::analytic(100, 50);
  EXPECT_LE(s.halo_mean, 98.0);
}

TEST(Coarsen, PairwiseRoughlyHalves) {
  const UnstructuredMesh m = make_box_mesh(10, 10, 10);
  const Coarsening c = coarsen_pairwise(m);
  EXPECT_LT(c.num_coarse(), m.num_cells() * 6 / 10);
  EXPECT_GE(c.num_coarse(), m.num_cells() / 2);
  // Every fine cell maps to a valid aggregate.
  for (CellId agg : c.coarse_of) {
    EXPECT_GE(agg, 0);
    EXPECT_LT(agg, c.num_coarse());
  }
}

TEST(Coarsen, VolumeIsConserved) {
  const UnstructuredMesh m = make_annulus_mesh(6, 12, 4, 1.0, 2.0, 45.0, 1.0);
  const Coarsening c = coarsen_pairwise(m);
  const double fine_vol =
      std::accumulate(m.volumes().begin(), m.volumes().end(), 0.0);
  const double coarse_vol = std::accumulate(c.coarse.volumes().begin(),
                                            c.coarse.volumes().end(), 0.0);
  EXPECT_NEAR(fine_vol, coarse_vol, 1e-9 * fine_vol);
}

TEST(Coarsen, HierarchyShrinksMonotonically) {
  const UnstructuredMesh m = make_box_mesh(12, 12, 12);
  const Hierarchy h = build_hierarchy(m, 5);
  ASSERT_GE(h.num_levels(), 4);
  for (int l = 1; l < h.num_levels(); ++l) {
    EXPECT_LT(h.meshes[static_cast<std::size_t>(l)].num_cells(),
              h.meshes[static_cast<std::size_t>(l - 1)].num_cells());
  }
}

TEST(Mesh, RejectsInvalidConstruction) {
  std::vector<Vec3> pts = {{0, 0, 0}, {1, 0, 0}};
  std::vector<double> vols = {1.0, 1.0};
  std::vector<Edge> bad_edge = {{0, 5, 1.0, {1, 0, 0}}};
  EXPECT_THROW(UnstructuredMesh(pts, vols, bad_edge), CheckError);
  std::vector<Edge> self_edge = {{1, 1, 1.0, {1, 0, 0}}};
  EXPECT_THROW(UnstructuredMesh(pts, vols, self_edge), CheckError);
  std::vector<double> bad_vols = {1.0, -1.0};
  EXPECT_THROW(UnstructuredMesh(pts, bad_vols, {}), CheckError);
}

TEST(Partition, RejectsMorePartsThanCells) {
  const UnstructuredMesh m = make_box_mesh(2, 2, 1);
  EXPECT_THROW(partition_rcb(m, 10), CheckError);
}

}  // namespace
}  // namespace cpx::mesh
