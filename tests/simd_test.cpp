// Bitwise-determinism matrix for the SIMD kernel layer (docs/parallelism.md,
// "Determinism tiers"): every vectorized kernel must produce IDENTICAL bits
// at every simd width {1, 2, 4, 8} x thread count {1, 4, 16} combination,
// because reductions go through the fixed-lane tree (simd::tree_reduce /
// tree_combine) and elementwise work is IEEE-elementwise. Width 1 with one
// thread is the reference — i.e. the CPX_SIMD=off serial build's answer.
//
// Also proves the vectorized solve path stays allocation-free: this file
// replaces global operator new/delete with counting versions (so it must
// remain a standalone test binary, like tests/solver_alloc_test.cpp), and
// the aligned overloads ARE counted — aligned_vector storage cannot hide
// heap traffic from the audit.

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "amg/hierarchy.hpp"
#include "amg/pcg.hpp"
#include "amg/smoothers.hpp"
#include "cpx/interpolation.hpp"
#include "simpic/pic.hpp"
#include "sparse/csr.hpp"
#include "sparse/generators.hpp"
#include "support/aligned.hpp"
#include "support/blas1.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/simd.hpp"

namespace {

std::atomic<std::size_t> g_allocation_count{0};

void* counted_alloc(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, rounded ? rounded : align)) {
    return p;
  }
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace cpx {
namespace {

namespace simd = support::simd;

constexpr int kWidths[] = {1, 2, 4, 8};
constexpr int kThreadCounts[] = {1, 4, 16};

/// Restores the simd width and thread count a test changed.
struct ExecutionConfigGuard {
  int width = simd::active_width();
  int threads = support::max_threads();
  ~ExecutionConfigGuard() {
    simd::set_width(width);
    support::set_max_threads(threads);
  }
};

support::aligned_vector<double> random_vector(std::size_t n,
                                              std::uint64_t seed) {
  Rng rng(seed);
  support::aligned_vector<double> v(n);
  for (double& x : v) {
    x = rng.uniform(-1.0, 1.0);
  }
  return v;
}

bool bitwise_equal(const std::vector<double>& a,
                   const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a[i]) !=
        std::bit_cast<std::uint64_t>(b[i])) {
      return false;
    }
  }
  return true;
}

/// Runs `fn` (which returns every output of one kernel invocation,
/// flattened into one vector) at every width x thread combination and
/// asserts each run is bit-identical to the width-1 single-thread
/// reference — the serial CPX_SIMD=off answer.
void expect_bitwise_invariant(const std::string& kernel,
                              const std::function<std::vector<double>()>& fn) {
  ExecutionConfigGuard guard;
  simd::set_width(1);
  support::set_max_threads(1);
  const std::vector<double> reference = fn();
  ASSERT_FALSE(reference.empty()) << kernel;
  for (const int width : kWidths) {
    for (const int threads : kThreadCounts) {
      simd::set_width(width);
      support::set_max_threads(threads);
      const std::vector<double> run = fn();
      EXPECT_TRUE(bitwise_equal(reference, run))
          << kernel << " diverges from the serial reference at width "
          << width << ", " << threads << " threads";
    }
  }
}

// ---------------------------------------------------------------------------
// pack<W> primitives
// ---------------------------------------------------------------------------

template <int W>
void pack_roundtrip() {
  double src[W], dst[W];
  for (int j = 0; j < W; ++j) {
    src[j] = 1.0 + j;
    dst[j] = -1.0;
  }
  simd::pack<W>::load(src).store(dst);
  for (int j = 0; j < W; ++j) {
    EXPECT_EQ(dst[j], src[j]);
  }
}

TEST(SimdPack, LoadStoreRoundTripsAtEveryWidth) {
  pack_roundtrip<1>();
  pack_roundtrip<2>();
  pack_roundtrip<4>();
  pack_roundtrip<8>();
}

TEST(SimdPack, PartialLoadZeroFillsAndPartialStoreLeavesTail) {
  const double src[4] = {1.0, 2.0, 3.0, 4.0};
  const auto p = simd::pack<4>::load_partial(src, 3);
  EXPECT_EQ(p[0], 1.0);
  EXPECT_EQ(p[2], 3.0);
  EXPECT_EQ(p[3], 0.0);  // masked lane

  double dst[4] = {-1.0, -1.0, -1.0, -1.0};
  p.store_partial(dst, 2);
  EXPECT_EQ(dst[0], 1.0);
  EXPECT_EQ(dst[1], 2.0);
  EXPECT_EQ(dst[2], -1.0);  // untouched past n
  EXPECT_EQ(dst[3], -1.0);
}

TEST(SimdPack, GatherReadsThroughIndices) {
  const double base[6] = {10.0, 11.0, 12.0, 13.0, 14.0, 15.0};
  const std::int32_t idx[4] = {5, 0, 3, 3};
  const auto p = simd::pack<4>::gather(base, idx);
  EXPECT_EQ(p[0], 15.0);
  EXPECT_EQ(p[1], 10.0);
  EXPECT_EQ(p[2], 13.0);
  EXPECT_EQ(p[3], 13.0);
}

TEST(SimdPack, ArithmeticAbsAndFmaMatchScalarBits) {
  const double a[4] = {1.5, -2.25, 3.0, -0.5};
  const double b[4] = {0.25, 4.0, -1.125, 8.0};
  const double c[4] = {-1.0, 0.5, 2.0, -3.5};
  const auto pa = simd::pack<4>::load(a);
  const auto pb = simd::pack<4>::load(b);
  const auto pc = simd::pack<4>::load(c);
  const auto sum = pa + pb;
  const auto prod = pa * pb;
  const auto quot = pa / pb;
  const auto mabs = simd::abs(pc);
  const auto fused = simd::fma(pa, pb, pc);
  for (int j = 0; j < 4; ++j) {
    EXPECT_EQ(sum[j], a[j] + b[j]);
    EXPECT_EQ(prod[j], a[j] * b[j]);
    EXPECT_EQ(quot[j], a[j] / b[j]);
    EXPECT_EQ(mabs[j], std::abs(c[j]));
    // fma() is mul-then-add by contract (no contraction), so its bits are
    // exactly those of the two-operation scalar expression.
    EXPECT_EQ(fused[j], a[j] * b[j] + c[j]);
  }
}

TEST(SimdTree, CombineUsesTheOneFixedTree) {
  const double l[simd::kReduceLanes] = {0.1, 0.2, 0.3, 0.4,
                                        0.5, 0.6, 0.7, 0.8};
  const double expected =
      ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(simd::tree_combine(l)),
            std::bit_cast<std::uint64_t>(expected));
}

TEST(SimdTree, TreeReduceIsWidthInvariantIncludingTails) {
  // 37 elements: full kReduceLanes blocks plus a 5-element tail, so every
  // width exercises both the pack loop and the scalar tail path.
  const auto data = random_vector(37, 99);
  const auto reduce_at = [&](auto width_tag) {
    constexpr int kW = decltype(width_tag)::value;
    return simd::tree_reduce<kW>(
        0, static_cast<std::int64_t>(data.size()),
        [&](std::int64_t i) {
          return simd::pack<kW>::load(data.data() + i);
        },
        [&](std::int64_t i) { return data[static_cast<std::size_t>(i)]; });
  };
  const double ref = reduce_at(std::integral_constant<int, 1>{});
  EXPECT_EQ(std::bit_cast<std::uint64_t>(ref),
            std::bit_cast<std::uint64_t>(
                reduce_at(std::integral_constant<int, 2>{})));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(ref),
            std::bit_cast<std::uint64_t>(
                reduce_at(std::integral_constant<int, 4>{})));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(ref),
            std::bit_cast<std::uint64_t>(
                reduce_at(std::integral_constant<int, 8>{})));
}

// ---------------------------------------------------------------------------
// Bitwise width x thread matrix, one case per vectorized kernel family
// ---------------------------------------------------------------------------

TEST(SimdMatrix, Blas1ReductionsAreBitwiseInvariant) {
  // 1027 = 128 * 8 + 3: chunk-size multiples plus a ragged tail.
  const auto a = random_vector(1027, 1);
  const auto b = random_vector(1027, 2);
  expect_bitwise_invariant("blas1/sum", [&] {
    return std::vector<double>{support::blas1::sum(a)};
  });
  expect_bitwise_invariant("blas1/dot", [&] {
    return std::vector<double>{support::blas1::dot(a, b)};
  });
  expect_bitwise_invariant("blas1/norm2_squared", [&] {
    return std::vector<double>{support::blas1::norm2_squared(a)};
  });
  expect_bitwise_invariant("blas1/dot_diff", [&] {
    const auto z = random_vector(1027, 3);
    return std::vector<double>{support::blas1::dot_diff(z, a, b)};
  });
}

TEST(SimdMatrix, Blas1FusedAxpyNormIsBitwiseInvariant) {
  const auto p = random_vector(1027, 4);
  const auto ap = random_vector(1027, 5);
  expect_bitwise_invariant("blas1/axpy2_norm2", [&] {
    auto x = random_vector(1027, 6);
    auto r = random_vector(1027, 7);
    const double nrm = support::blas1::axpy2_norm2(0.37, p, ap, x, r);
    std::vector<double> out(x.begin(), x.end());
    out.insert(out.end(), r.begin(), r.end());
    out.push_back(nrm);
    return out;
  });
}

TEST(SimdMatrix, SpmvIsBitwiseInvariantOnShortAndLongRows) {
  // 7-point rows stay below kReduceLanes (historical serial-chain path);
  // random_spd(..., 16) rows exceed it (gather + tree path).
  const sparse::CsrMatrix narrow = sparse::laplacian_3d(12, 12, 12);
  const sparse::CsrMatrix wide = sparse::random_spd(512, 16, 13);
  for (const sparse::CsrMatrix* m : {&narrow, &wide}) {
    const auto x = random_vector(static_cast<std::size_t>(m->cols()), 8);
    expect_bitwise_invariant("sparse/spmv", [&] {
      support::aligned_vector<double> y(
          static_cast<std::size_t>(m->rows()), 0.0);
      sparse::spmv(*m, x, y);
      return std::vector<double>(y.begin(), y.end());
    });
  }
}

TEST(SimdMatrix, SmoothersAreBitwiseInvariant) {
  const sparse::CsrMatrix a = sparse::random_spd(512, 16, 17);
  const auto n = static_cast<std::size_t>(a.rows());
  const auto b = random_vector(n, 9);
  for (const amg::SmootherKind kind :
       {amg::SmootherKind::kJacobi, amg::SmootherKind::kL1Jacobi}) {
    amg::SmootherOptions sopts;
    sopts.kind = kind;
    expect_bitwise_invariant("amg/smooth", [&] {
      support::aligned_vector<double> x(n, 0.0);
      support::aligned_vector<double> scratch(n, 0.0);
      amg::smooth(a, x, b, sopts, scratch);
      amg::smooth(a, x, b, sopts, scratch);  // second sweep from warm x
      return std::vector<double>(x.begin(), x.end());
    });
  }
}

TEST(SimdMatrix, SimpicPushAndDepositAreBitwiseInvariant) {
  expect_bitwise_invariant("simpic/push+deposit", [&] {
    simpic::PicOptions popts;
    popts.cells = 64;
    popts.boundary = simpic::Boundary::kPeriodic;
    simpic::Pic pic(popts);  // counter-based RNG: identical initial state
    pic.load_uniform(16, 0.1, 0.05);
    pic.deposit();
    pic.solve_field();
    pic.push();
    pic.deposit();  // re-deposit after the push: covers both kernels
    std::vector<double> out(pic.positions().begin(), pic.positions().end());
    out.insert(out.end(), pic.velocities().begin(), pic.velocities().end());
    out.insert(out.end(), pic.rho().begin(), pic.rho().end());
    return out;
  });
}

TEST(SimdMatrix, CouplerIdwInterpolationIsBitwiseInvariant) {
  Rng rng(23);
  std::vector<mesh::Vec3> donors(257);
  std::vector<mesh::Vec3> targets(311);
  for (auto& p : donors) {
    p = {rng.uniform(), rng.uniform(), rng.uniform()};
  }
  for (auto& p : targets) {
    p = {rng.uniform(), rng.uniform(), rng.uniform()};
  }
  // k = 12 >= kReduceLanes: the stencil-apply reduction takes the tree
  // path, not the short-stencil serial chain.
  const auto stencils = coupler::build_idw_stencils(donors, targets, 12);
  const auto donor_field = random_vector(donors.size(), 10);
  expect_bitwise_invariant("coupler/interpolate", [&] {
    support::aligned_vector<double> target_field(targets.size(), 0.0);
    coupler::apply_stencils(stencils, donor_field, target_field);
    return std::vector<double>(target_field.begin(), target_field.end());
  });
}

// ---------------------------------------------------------------------------
// Allocation-free vectorized solve
// ---------------------------------------------------------------------------

TEST(SimdAlloc, VectorizedSteadyStateSolveAllocatesNothing) {
  ExecutionConfigGuard guard;
  simd::set_width(simd::kMaxWidth);
  support::set_max_threads(4);

  const sparse::CsrMatrix a = sparse::laplacian_3d(12, 12, 12);
  const auto n = static_cast<std::size_t>(a.rows());
  const auto b = random_vector(n, 11);
  support::aligned_vector<double> x(n, 0.0);

  amg::AmgOptions opt;
  amg::AmgHierarchy hierarchy(a, opt);
  const amg::Preconditioner precond =
      amg::make_amg_preconditioner(hierarchy);
  amg::PcgWorkspace workspace;

  // Warm-up sizes every aligned workspace at full width.
  amg::PcgResult warm = amg::pcg(a, x, b, 1e-8, 50, precond, workspace);
  ASSERT_TRUE(warm.converged);

  std::fill(x.begin(), x.end(), 0.0);
  const std::size_t before =
      g_allocation_count.load(std::memory_order_relaxed);
  amg::PcgResult res = amg::pcg(a, x, b, 1e-8, 50, precond, workspace);
  const std::size_t allocs =
      g_allocation_count.load(std::memory_order_relaxed) - before;
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(allocs, 0u)
      << "steady-state vectorized PCG made " << allocs
      << " heap allocations (aligned overloads are counted too)";
}

}  // namespace
}  // namespace cpx
