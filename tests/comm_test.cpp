// Tests for the unified message-passing transport layer (src/comm/,
// docs/communication.md): tag matching and delivery-order determinism at
// any CPX_THREADS, ExchangePlan round-trip identity and steady-state
// allocation freedom, the deterministic allreduce against a serial
// reference, validate_plan rejecting corrupted plans, and bitwise
// cross-subsystem regressions (the distributed MG-CFD and SIMPIC solvers
// must produce identical results at every thread count now that their
// communication routes through the comm layer). Registered with the
// `tsan` and `comm` ctest labels.

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/exchange_plan.hpp"
#include "mesh/mesh.hpp"
#include "mgcfd/distributed.hpp"
#include "sim/cluster.hpp"
#include "sim/machine.hpp"
#include "simpic/distributed.hpp"
#include "support/check.hpp"
#include "support/parallel.hpp"

namespace cpx {
namespace {

constexpr int kThreadCounts[] = {1, 4, 16};

bool bitwise_equal(const std::vector<double>& a,
                   const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// Runs fn at every thread count in kThreadCounts and checks the returned
/// vector<double> is bitwise identical each time.
template <typename Fn>
void expect_bitwise_across_thread_counts(Fn fn) {
  support::set_max_threads(kThreadCounts[0]);
  const std::vector<double> reference = fn();
  for (std::size_t i = 1; i < std::size(kThreadCounts); ++i) {
    support::set_max_threads(kThreadCounts[i]);
    const std::vector<double> other = fn();
    EXPECT_TRUE(bitwise_equal(reference, other))
        << "result differs at CPX_THREADS=" << kThreadCounts[i];
  }
  support::set_max_threads(1);
}

TEST(Communicator, PointToPointMatchesByTag) {
  auto comm = comm::Communicator::world(2);
  const double a = 1.5;
  const double b = -2.5;
  comm.isend_value(0, 1, /*tag=*/7, a);
  comm.isend_value(0, 1, /*tag=*/9, b);
  double got_b = 0.0;
  double got_a = 0.0;
  // Receives posted in the opposite order of the sends: matching is by
  // (src, dst, tag), not arrival order.
  comm.irecv_value(1, 0, /*tag=*/9, &got_b);
  comm.irecv_value(1, 0, /*tag=*/7, &got_a);
  comm.wait_all();
  EXPECT_EQ(got_a, a);
  EXPECT_EQ(got_b, b);
  EXPECT_EQ(comm.stats().messages, 2);
  EXPECT_EQ(comm.stats().bytes, 2 * static_cast<std::int64_t>(sizeof(double)));
}

TEST(Communicator, SameTripleMatchesFifo) {
  auto comm = comm::Communicator::world(2);
  comm.isend_value(0, 1, 0, 10.0);
  comm.isend_value(0, 1, 0, 20.0);
  double first = 0.0;
  double second = 0.0;
  comm.irecv_value(1, 0, 0, &first);
  comm.irecv_value(1, 0, 0, &second);
  comm.wait_all();
  EXPECT_EQ(first, 10.0);
  EXPECT_EQ(second, 20.0);
}

TEST(Communicator, UnmatchedOperationsThrow) {
  {
    auto comm = comm::Communicator::world(2);
    comm.isend_value(0, 1, 0, 1.0);
    EXPECT_THROW(comm.wait_all(), CheckError);  // send never received
  }
  {
    auto comm = comm::Communicator::world(2);
    double out = 0.0;
    comm.irecv_value(1, 0, 0, &out);
    EXPECT_THROW(comm.wait_all(), CheckError);  // recv never satisfied
  }
  {
    auto comm = comm::Communicator::world(2);
    float small = 0.0F;
    comm.isend_value(0, 1, 0, 1.0);  // 8 bytes
    comm.irecv_value(1, 0, 0, &small);
    EXPECT_THROW(comm.wait_all(), CheckError);  // size mismatch
  }
}

TEST(Communicator, DeliverVisitsSourcesAscendingFifoPerSource) {
  auto comm = comm::Communicator::world(4);
  // Posted out of source order, two messages from rank 2.
  comm.isend_value(2, 3, 0, 21.0);
  comm.isend_value(0, 3, 0, 1.0);
  comm.isend_value(2, 3, 0, 22.0);
  comm.isend_value(1, 3, 0, 11.0);
  std::vector<double> seen;
  std::vector<int> sources;
  comm.deliver(3, 0, [&](comm::Rank src, std::span<const std::byte> payload) {
    ASSERT_EQ(payload.size(), sizeof(double));
    double v = 0.0;
    std::memcpy(&v, payload.data(), sizeof(double));
    seen.push_back(v);
    sources.push_back(src);
  });
  EXPECT_EQ(seen, (std::vector<double>{1.0, 11.0, 21.0, 22.0}));
  EXPECT_EQ(sources, (std::vector<int>{0, 1, 2, 2}));
}

TEST(Communicator, DeliveryOrderBitwiseAcrossThreadCounts) {
  // The transport is single-threaded by contract, but it runs inside
  // solvers that change CPX_THREADS: the observable delivery sequence
  // must not depend on it.
  expect_bitwise_across_thread_counts([] {
    auto comm = comm::Communicator::world(3);
    std::vector<double> order;
    for (int s = 0; s < 3; ++s) {
      for (int d = 0; d < 3; ++d) {
        if (s != d) {
          comm.isend_value(s, d, 1, static_cast<double>(10 * s + d));
        }
      }
    }
    for (int d = 0; d < 3; ++d) {
      comm.deliver(d, 1, [&](comm::Rank, std::span<const std::byte> p) {
        double v = 0.0;
        std::memcpy(&v, p.data(), sizeof(double));
        order.push_back(v);
      });
    }
    return order;
  });
}

TEST(Communicator, AllreduceSumMatchesSerialAndIsBitwiseStable) {
  std::vector<double> contributions;
  for (int r = 0; r < 37; ++r) {
    contributions.push_back(1.0 / (1.0 + r) - 0.01 * r);
  }
  double serial = 0.0;
  for (double c : contributions) {
    serial += c;
  }
  expect_bitwise_across_thread_counts([&] {
    auto comm = comm::Communicator::world(
        static_cast<int>(contributions.size()));
    return std::vector<double>{comm.allreduce_sum(contributions)};
  });
  support::set_max_threads(1);
  auto comm =
      comm::Communicator::world(static_cast<int>(contributions.size()));
  // The reduction uses the fixed-lane tree order of docs/parallelism.md
  // (not a left-to-right fold), so it agrees with the serial chain only up
  // to reassociation rounding — the bitwise contract above is what the
  // collective guarantees.
  EXPECT_NEAR(comm.allreduce_sum(contributions), serial,
              1e-14 * std::abs(serial));
}

TEST(Communicator, SplitCarvesDeterministicSubgroups) {
  auto world = comm::Communicator::world(6, "w");
  const std::array<int, 6> colors = {1, 0, 1, 0, 1, 2};
  const auto groups = world.split(colors);
  ASSERT_EQ(groups.size(), 3U);
  EXPECT_EQ(groups[0].size(), 2);  // color 0: ranks 1, 3
  EXPECT_EQ(groups[1].size(), 3);  // color 1: ranks 0, 2, 4
  EXPECT_EQ(groups[2].size(), 1);  // color 2: rank 5
  EXPECT_EQ(groups[0].global_rank(0), 1);
  EXPECT_EQ(groups[0].global_rank(1), 3);
  EXPECT_EQ(groups[1].global_rank(2), 4);
  EXPECT_EQ(groups[2].global_rank(0), 5);
}

TEST(Communicator, SplitFractionGivesLeadingWorkerGroup) {
  auto world = comm::Communicator::world(8);
  const auto groups = world.split_fraction(0.25);
  ASSERT_EQ(groups.size(), 2U);
  EXPECT_EQ(groups[0].size(), 2);
  EXPECT_EQ(groups[1].size(), 6);
  EXPECT_EQ(groups[0].global_rank(1), 1);
  EXPECT_EQ(groups[1].global_rank(0), 2);
  // A fraction covering everything leaves no second group.
  EXPECT_EQ(world.split_fraction(1.0).size(), 1U);
}

comm::ExchangePlan ring_plan(int ranks, std::int64_t slots_per_rank) {
  // Ring: each rank sends its first owned slot to the right neighbour's
  // last slot (the "ghost").
  comm::ExchangePlan plan;
  for (int r = 0; r + 1 < ranks; ++r) {
    plan.add_channel(r, r + 1, {0},
                     {static_cast<std::int32_t>(slots_per_rank - 1)});
  }
  return plan;
}

TEST(ExchangePlan, RoundTripDeliversExactSlotValues) {
  constexpr int kRanks = 4;
  constexpr std::int64_t kSlots = 3;
  auto comm = comm::Communicator::world(kRanks);
  auto plan = ring_plan(kRanks, kSlots);
  plan.finalize(sizeof(double));
  EXPECT_EQ(plan.bytes_per_exchange(), (kRanks - 1) * sizeof(double));

  std::vector<std::vector<double>> data(kRanks,
                                        std::vector<double>(kSlots, 0.0));
  for (int r = 0; r < kRanks; ++r) {
    data[static_cast<std::size_t>(r)][0] = 100.0 + r;
  }
  plan.execute(comm, [&](comm::Rank r) {
    return std::as_writable_bytes(
        std::span<double>(data[static_cast<std::size_t>(r)]));
  });
  for (int r = 0; r + 1 < kRanks; ++r) {
    EXPECT_EQ(data[static_cast<std::size_t>(r + 1)][kSlots - 1], 100.0 + r);
  }
  EXPECT_EQ(comm.transfers().size(), static_cast<std::size_t>(kRanks - 1));
}

TEST(ExchangePlan, SteadyStateExchangeStopsGrowingThePool) {
  constexpr int kRanks = 8;
  auto comm = comm::Communicator::world(kRanks);
  auto plan = ring_plan(kRanks, 4);
  plan.finalize(sizeof(double));
  std::vector<std::vector<double>> data(kRanks, std::vector<double>(4, 1.0));
  const auto rank_data = [&](comm::Rank r) {
    return std::as_writable_bytes(
        std::span<double>(data[static_cast<std::size_t>(r)]));
  };
  plan.execute(comm, rank_data);  // warm-up populates the buffer pool
  comm.clear_transfers();
  const std::size_t warm_pool = comm.pool_size();
  for (int step = 0; step < 16; ++step) {
    plan.execute(comm, rank_data);
    comm.clear_transfers();
  }
  EXPECT_EQ(comm.pool_size(), warm_pool);
}

TEST(ValidatePlan, AcceptsTheRingAndRejectsCorruptions) {
  constexpr std::int64_t kSlots = 3;
  const std::vector<std::int64_t> extents(4, kSlots);
  const std::vector<std::int64_t> required_begin(4, kSlots - 1);
  const comm::PlanShape shape{extents, extents, required_begin};
  // required_begin marks slot kSlots-1 as ghost on every rank; the last
  // rank's ghost has no feeder, so use a shape without the requirement
  // for the accept case.
  const comm::PlanShape loose{extents, extents, {}};

  auto good = ring_plan(4, kSlots);
  good.finalize(sizeof(double));
  EXPECT_NO_THROW(comm::validate_plan(good, loose));

  {  // out-of-range destination rank
    auto plan = ring_plan(4, kSlots);
    plan.add_channel(3, 4, {0}, {2});
    plan.finalize(sizeof(double));
    EXPECT_THROW(comm::validate_plan(plan, loose), CheckError);
  }
  {  // send index beyond the source extent
    auto plan = ring_plan(4, kSlots);
    plan.add_channel(3, 0, {static_cast<std::int32_t>(kSlots)}, {2});
    plan.finalize(sizeof(double));
    EXPECT_THROW(comm::validate_plan(plan, loose), CheckError);
  }
  {  // duplicate directed channel
    auto plan = ring_plan(4, kSlots);
    plan.add_channel(0, 1, {1}, {2});
    plan.finalize(sizeof(double));
    EXPECT_THROW(comm::validate_plan(plan, loose), CheckError);
  }
  {  // ghost slot fed twice violates exactly-once coverage
    auto plan = ring_plan(4, kSlots);
    plan.add_channel(2, 1, {0}, {static_cast<std::int32_t>(kSlots - 1)});
    plan.finalize(sizeof(double));
    EXPECT_THROW(comm::validate_plan(plan, shape), CheckError);
  }
}

TEST(SplitPhase, RoundTripMatchesExecuteAndCopiesSourcesEagerly) {
  constexpr int kRanks = 4;
  constexpr std::int64_t kSlots = 3;
  auto make_data = [] {
    std::vector<std::vector<double>> data(
        kRanks, std::vector<double>(kSlots, 0.0));
    for (int r = 0; r < kRanks; ++r) {
      data[static_cast<std::size_t>(r)][0] = 100.0 + r;
    }
    return data;
  };

  auto sync_comm = comm::Communicator::world(kRanks);
  auto sync_plan = ring_plan(kRanks, kSlots);
  sync_plan.finalize(sizeof(double));
  auto sync_data = make_data();
  sync_plan.execute(sync_comm, [&](comm::Rank r) {
    return std::as_writable_bytes(
        std::span<double>(sync_data[static_cast<std::size_t>(r)]));
  });

  auto comm = comm::Communicator::world(kRanks);
  auto plan = ring_plan(kRanks, kSlots);
  plan.finalize(sizeof(double));
  auto data = make_data();
  const auto rank_data = [&](comm::Rank r) {
    return std::as_writable_bytes(
        std::span<double>(data[static_cast<std::size_t>(r)]));
  };
  EXPECT_FALSE(plan.in_flight());
  plan.begin(comm, rank_data);
  EXPECT_TRUE(plan.in_flight());
  EXPECT_TRUE(plan.test());
  // isend copied the payload at begin(): clobbering the source slots
  // inside the window must not change what the neighbours receive.
  for (int r = 0; r < kRanks; ++r) {
    data[static_cast<std::size_t>(r)][0] = -1.0;
  }
  plan.finish(comm, rank_data);
  EXPECT_FALSE(plan.in_flight());
  for (int r = 0; r + 1 < kRanks; ++r) {
    EXPECT_EQ(data[static_cast<std::size_t>(r + 1)][kSlots - 1],
              sync_data[static_cast<std::size_t>(r + 1)][kSlots - 1]);
    EXPECT_EQ(data[static_cast<std::size_t>(r + 1)][kSlots - 1], 100.0 + r);
  }
}

TEST(SplitPhase, MisuseThrowsCheckError) {
  auto comm = comm::Communicator::world(3);
  auto plan = ring_plan(3, 2);
  plan.finalize(sizeof(double));
  std::vector<std::vector<double>> data(3, std::vector<double>(2, 0.0));
  const auto rank_data = [&](comm::Rank r) {
    return std::as_writable_bytes(
        std::span<double>(data[static_cast<std::size_t>(r)]));
  };
  EXPECT_THROW(plan.finish(comm, rank_data), CheckError);  // idle finish
  EXPECT_THROW(plan.test(), CheckError);                   // idle test
  plan.begin(comm, rank_data);
  EXPECT_THROW(plan.begin(comm, rank_data), CheckError);   // double begin
  EXPECT_THROW(plan.execute(comm, rank_data), CheckError); // execute in window
  plan.finish(comm, rank_data);
  EXPECT_THROW(plan.finish(comm, rank_data), CheckError);  // double finish
}

TEST(SplitPhase, InterleavedPlansFinishInAnyOrder) {
  // Two plans over one communicator with distinct tags, finished in the
  // reverse order they were begun.
  constexpr int kRanks = 3;
  constexpr std::int64_t kSlots = 2;
  auto comm = comm::Communicator::world(kRanks);
  auto plan_a = ring_plan(kRanks, kSlots);
  plan_a.finalize(sizeof(double));
  auto plan_b = ring_plan(kRanks, kSlots);
  plan_b.finalize(sizeof(double));

  std::vector<std::vector<double>> data_a(kRanks,
                                          std::vector<double>(kSlots, 0.0));
  std::vector<std::vector<double>> data_b(kRanks,
                                          std::vector<double>(kSlots, 0.0));
  for (int r = 0; r < kRanks; ++r) {
    data_a[static_cast<std::size_t>(r)][0] = 10.0 + r;
    data_b[static_cast<std::size_t>(r)][0] = 20.0 + r;
  }
  const auto rank_a = [&](comm::Rank r) {
    return std::as_writable_bytes(
        std::span<double>(data_a[static_cast<std::size_t>(r)]));
  };
  const auto rank_b = [&](comm::Rank r) {
    return std::as_writable_bytes(
        std::span<double>(data_b[static_cast<std::size_t>(r)]));
  };
  plan_a.begin(comm, rank_a, /*tag=*/1);
  plan_b.begin(comm, rank_b, /*tag=*/2);
  plan_b.finish(comm, rank_b);
  plan_a.finish(comm, rank_a);
  for (int r = 0; r + 1 < kRanks; ++r) {
    EXPECT_EQ(data_a[static_cast<std::size_t>(r + 1)][kSlots - 1], 10.0 + r);
    EXPECT_EQ(data_b[static_cast<std::size_t>(r + 1)][kSlots - 1], 20.0 + r);
  }
}

TEST(ValidateSplit, AcceptsCleanPartitionAndRejectsViolations) {
  // Two ranks, 3 owned cells each plus one ghost slot (index 3) fed by the
  // neighbour; cell 2 reads the ghost, cells 0-1 read owned neighbours.
  comm::ExchangePlan plan;
  plan.add_channel(0, 1, {0}, {3});
  plan.add_channel(1, 0, {0}, {3});
  plan.finalize(sizeof(double));
  const std::vector<std::int32_t> interior = {0, 1};
  const std::vector<std::int32_t> boundary = {2};
  const std::vector<std::int32_t> offsets = {0, 1, 3, 5};
  const std::vector<std::int32_t> stencil = {1, 0, 2, 1, 3};
  EXPECT_NO_THROW(comm::validate_split(
      plan, {0, 3, interior, boundary, offsets, stencil}));

  {  // interior cell whose stencil reaches the ghost slot
    const std::vector<std::int32_t> bad_interior = {0, 1, 2};
    const std::vector<std::int32_t> none = {};
    EXPECT_THROW(comm::validate_split(
                     plan, {0, 3, bad_interior, none, offsets, stencil}),
                 CheckError);
  }
  {  // a cell listed in both sets
    const std::vector<std::int32_t> both = {1, 2};
    EXPECT_THROW(comm::validate_split(
                     plan, {0, 3, interior, both, offsets, stencil}),
                 CheckError);
  }
  {  // a cell covered by neither set
    const std::vector<std::int32_t> short_interior = {0};
    EXPECT_THROW(comm::validate_split(
                     plan, {0, 3, short_interior, boundary, offsets,
                            stencil}),
                 CheckError);
  }
  {  // boundary cell reading a ghost slot no channel fills
    const std::vector<std::int32_t> far_stencil = {1, 0, 2, 1, 4};
    EXPECT_THROW(comm::validate_split(
                     plan, {0, 3, interior, boundary, offsets, far_stencil}),
                 CheckError);
  }
}

TEST(SplitPhase, ClusterFinishWithoutBeginThrows) {
  sim::Cluster cluster(sim::MachineModel::archer2(), 4);
  EXPECT_THROW(cluster.exchange_finish(0), CheckError);
  const std::vector<sim::Message> msgs = {{0, 1, 1024}};
  const int h = cluster.exchange_begin(msgs, cluster.region("t"));
  cluster.exchange_finish(h);
  EXPECT_THROW(cluster.exchange_finish(h), CheckError);
}

TEST(SplitPhase, ClusterBeginFinishWithEmptyWindowMatchesExchange) {
  const auto machine = sim::MachineModel::archer2();
  std::vector<sim::Message> msgs;
  for (int r = 0; r < 8; ++r) {
    msgs.push_back({r, (r + 1) % 8, 4096});
  }
  sim::Cluster sync(machine, 8);
  sync.exchange(msgs, sync.region("x"));
  sim::Cluster split(machine, 8);
  const int h = split.exchange_begin(msgs, split.region("x"));
  split.exchange_finish(h);
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(split.clock(r), sync.clock(r));
    EXPECT_EQ(split.comm_hidden_seconds(r), 0.0);
    EXPECT_EQ(sync.comm_hidden_seconds(r), 0.0);
  }
}

TEST(SplitPhase, ComputeInWindowHidesCommHonestly) {
  // One message 0 -> 1; receiver computes inside the window. The hidden
  // channel must equal the synchronous wait minus the real wait, and the
  // receiver's clock must never beat the synchronous schedule by more
  // than the compute it genuinely issued.
  const auto machine = sim::MachineModel::archer2();
  const std::vector<sim::Message> msgs = {{0, 1, 1 << 20}};

  sim::Cluster sync(machine, 2);
  const auto region_s = sync.region("x");
  sync.exchange(msgs, region_s);
  const double sync_clock = sync.clock(1);

  sim::Cluster split(machine, 2);
  const auto region_p = split.region("x");
  const int h = split.exchange_begin(msgs, region_p);
  split.compute_seconds(1, 1.0e-4, region_p);
  split.exchange_finish(h);
  const double hidden = split.comm_hidden_seconds(1);
  EXPECT_GT(hidden, 0.0);
  // Overlapped receiver time = sync time + compute - hidden.
  EXPECT_NEAR(split.clock(1), sync_clock + 1.0e-4 - hidden, 1e-12);
  // The model never credits more hiding than the window had compute.
  EXPECT_LE(hidden, 1.0e-4 + 1e-12);
}

TEST(CommRegression, DistributedMgcfdBitwiseAcrossThreadCounts) {
  const mesh::UnstructuredMesh m = mesh::make_box_mesh(6, 6, 6);
  expect_bitwise_across_thread_counts([&m] {
    mgcfd::EulerOptions opt;
    mgcfd::DistributedSolver dist(m, 4, opt);
    dist.set_cell(0, {1.2, 0.1, 0.0, 0.0, 2.8});
    dist.run(5);
    std::vector<double> flat;
    for (const mgcfd::State& s : dist.gather_solution()) {
      flat.insert(flat.end(), s.begin(), s.end());
    }
    return flat;
  });
}

TEST(CommRegression, DistributedPicBitwiseAcrossThreadCounts) {
  expect_bitwise_across_thread_counts([] {
    simpic::PicOptions opt;
    opt.cells = 64;
    opt.boundary = simpic::Boundary::kAbsorbing;
    opt.dt = 0.1;
    simpic::DistributedPic dist(opt, 4);
    dist.load_uniform(10, 0.3, 0.05);
    dist.run(10);
    std::vector<double> flat = dist.gather_phi();
    const std::vector<double> rho = dist.gather_rho();
    const std::vector<double> pos = dist.gather_positions();
    flat.insert(flat.end(), rho.begin(), rho.end());
    flat.insert(flat.end(), pos.begin(), pos.end());
    return flat;
  });
}

TEST(CommRegression, OverlappedMgcfdBitwiseMatchesSynchronous) {
  const mesh::UnstructuredMesh m = mesh::make_box_mesh(6, 6, 6);
  const auto machine = sim::MachineModel::archer2();
  // Overlapped solve, repeated at every thread count, must match the
  // synchronous solve bitwise — the interior/boundary split changes only
  // when work happens, never what it computes.
  expect_bitwise_across_thread_counts([&] {
    mgcfd::EulerOptions opt;

    mgcfd::DistributedSolver sync(m, 4, opt);
    sim::Cluster sync_cluster(machine, 4);
    sync.attach_cluster(&sync_cluster);
    sync.set_cell(0, {1.2, 0.1, 0.0, 0.0, 2.8});
    sync.run(5);

    mgcfd::DistributedSolver over(m, 4, opt);
    sim::Cluster over_cluster(machine, 4);
    over.attach_cluster(&over_cluster);
    over.set_overlap(true);
    over.set_cell(0, {1.2, 0.1, 0.0, 0.0, 2.8});
    over.run(5);

    std::vector<double> sync_flat;
    for (const mgcfd::State& s : sync.gather_solution()) {
      sync_flat.insert(sync_flat.end(), s.begin(), s.end());
    }
    std::vector<double> over_flat;
    for (const mgcfd::State& s : over.gather_solution()) {
      over_flat.insert(over_flat.end(), s.begin(), s.end());
    }
    EXPECT_TRUE(bitwise_equal(sync_flat, over_flat));

    // The synchronous path hides nothing; the overlapped path only hides
    // (never invents) time: hidden >= 0 and the overlapped schedule is
    // never slower than the synchronous one.
    const sim::RankRange ranks{0, 4};
    EXPECT_EQ(sync_cluster.comm_hidden_seconds(ranks), 0.0);
    EXPECT_GE(over_cluster.comm_hidden_seconds(ranks), 0.0);
    EXPECT_LE(over_cluster.max_clock(), sync_cluster.max_clock() + 1e-12);
    return over_flat;
  });
}

TEST(CommRegression, OverlappedPicBitwiseMatchesSynchronous) {
  const auto machine = sim::MachineModel::archer2();
  expect_bitwise_across_thread_counts([&] {
    simpic::PicOptions opt;
    opt.cells = 64;
    opt.boundary = simpic::Boundary::kAbsorbing;
    opt.dt = 0.1;

    auto run_one = [&](bool overlap) {
      simpic::DistributedPic dist(opt, 4);
      sim::Cluster cluster(machine, 4);
      dist.attach_cluster(&cluster);
      dist.set_overlap(overlap);
      dist.load_uniform(10, 0.3, 0.05);
      dist.run(10);
      std::vector<double> flat = dist.gather_phi();
      const std::vector<double> rho = dist.gather_rho();
      const std::vector<double> pos = dist.gather_positions();
      flat.insert(flat.end(), rho.begin(), rho.end());
      flat.insert(flat.end(), pos.begin(), pos.end());
      return flat;
    };
    const std::vector<double> sync_flat = run_one(false);
    std::vector<double> over_flat = run_one(true);
    EXPECT_TRUE(bitwise_equal(sync_flat, over_flat));
    return over_flat;
  });
}

}  // namespace
}  // namespace cpx
