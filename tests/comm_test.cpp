// Tests for the unified message-passing transport layer (src/comm/,
// docs/communication.md): tag matching and delivery-order determinism at
// any CPX_THREADS, ExchangePlan round-trip identity and steady-state
// allocation freedom, the deterministic allreduce against a serial
// reference, validate_plan rejecting corrupted plans, and bitwise
// cross-subsystem regressions (the distributed MG-CFD and SIMPIC solvers
// must produce identical results at every thread count now that their
// communication routes through the comm layer). Registered with the
// `tsan` and `comm` ctest labels.

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/exchange_plan.hpp"
#include "mesh/mesh.hpp"
#include "mgcfd/distributed.hpp"
#include "simpic/distributed.hpp"
#include "support/check.hpp"
#include "support/parallel.hpp"

namespace cpx {
namespace {

constexpr int kThreadCounts[] = {1, 4, 16};

bool bitwise_equal(const std::vector<double>& a,
                   const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// Runs fn at every thread count in kThreadCounts and checks the returned
/// vector<double> is bitwise identical each time.
template <typename Fn>
void expect_bitwise_across_thread_counts(Fn fn) {
  support::set_max_threads(kThreadCounts[0]);
  const std::vector<double> reference = fn();
  for (std::size_t i = 1; i < std::size(kThreadCounts); ++i) {
    support::set_max_threads(kThreadCounts[i]);
    const std::vector<double> other = fn();
    EXPECT_TRUE(bitwise_equal(reference, other))
        << "result differs at CPX_THREADS=" << kThreadCounts[i];
  }
  support::set_max_threads(1);
}

TEST(Communicator, PointToPointMatchesByTag) {
  auto comm = comm::Communicator::world(2);
  const double a = 1.5;
  const double b = -2.5;
  comm.isend_value(0, 1, /*tag=*/7, a);
  comm.isend_value(0, 1, /*tag=*/9, b);
  double got_b = 0.0;
  double got_a = 0.0;
  // Receives posted in the opposite order of the sends: matching is by
  // (src, dst, tag), not arrival order.
  comm.irecv_value(1, 0, /*tag=*/9, &got_b);
  comm.irecv_value(1, 0, /*tag=*/7, &got_a);
  comm.wait_all();
  EXPECT_EQ(got_a, a);
  EXPECT_EQ(got_b, b);
  EXPECT_EQ(comm.stats().messages, 2);
  EXPECT_EQ(comm.stats().bytes, 2 * static_cast<std::int64_t>(sizeof(double)));
}

TEST(Communicator, SameTripleMatchesFifo) {
  auto comm = comm::Communicator::world(2);
  comm.isend_value(0, 1, 0, 10.0);
  comm.isend_value(0, 1, 0, 20.0);
  double first = 0.0;
  double second = 0.0;
  comm.irecv_value(1, 0, 0, &first);
  comm.irecv_value(1, 0, 0, &second);
  comm.wait_all();
  EXPECT_EQ(first, 10.0);
  EXPECT_EQ(second, 20.0);
}

TEST(Communicator, UnmatchedOperationsThrow) {
  {
    auto comm = comm::Communicator::world(2);
    comm.isend_value(0, 1, 0, 1.0);
    EXPECT_THROW(comm.wait_all(), CheckError);  // send never received
  }
  {
    auto comm = comm::Communicator::world(2);
    double out = 0.0;
    comm.irecv_value(1, 0, 0, &out);
    EXPECT_THROW(comm.wait_all(), CheckError);  // recv never satisfied
  }
  {
    auto comm = comm::Communicator::world(2);
    float small = 0.0F;
    comm.isend_value(0, 1, 0, 1.0);  // 8 bytes
    comm.irecv_value(1, 0, 0, &small);
    EXPECT_THROW(comm.wait_all(), CheckError);  // size mismatch
  }
}

TEST(Communicator, DeliverVisitsSourcesAscendingFifoPerSource) {
  auto comm = comm::Communicator::world(4);
  // Posted out of source order, two messages from rank 2.
  comm.isend_value(2, 3, 0, 21.0);
  comm.isend_value(0, 3, 0, 1.0);
  comm.isend_value(2, 3, 0, 22.0);
  comm.isend_value(1, 3, 0, 11.0);
  std::vector<double> seen;
  std::vector<int> sources;
  comm.deliver(3, 0, [&](comm::Rank src, std::span<const std::byte> payload) {
    ASSERT_EQ(payload.size(), sizeof(double));
    double v = 0.0;
    std::memcpy(&v, payload.data(), sizeof(double));
    seen.push_back(v);
    sources.push_back(src);
  });
  EXPECT_EQ(seen, (std::vector<double>{1.0, 11.0, 21.0, 22.0}));
  EXPECT_EQ(sources, (std::vector<int>{0, 1, 2, 2}));
}

TEST(Communicator, DeliveryOrderBitwiseAcrossThreadCounts) {
  // The transport is single-threaded by contract, but it runs inside
  // solvers that change CPX_THREADS: the observable delivery sequence
  // must not depend on it.
  expect_bitwise_across_thread_counts([] {
    auto comm = comm::Communicator::world(3);
    std::vector<double> order;
    for (int s = 0; s < 3; ++s) {
      for (int d = 0; d < 3; ++d) {
        if (s != d) {
          comm.isend_value(s, d, 1, static_cast<double>(10 * s + d));
        }
      }
    }
    for (int d = 0; d < 3; ++d) {
      comm.deliver(d, 1, [&](comm::Rank, std::span<const std::byte> p) {
        double v = 0.0;
        std::memcpy(&v, p.data(), sizeof(double));
        order.push_back(v);
      });
    }
    return order;
  });
}

TEST(Communicator, AllreduceSumMatchesSerialAndIsBitwiseStable) {
  std::vector<double> contributions;
  for (int r = 0; r < 37; ++r) {
    contributions.push_back(1.0 / (1.0 + r) - 0.01 * r);
  }
  double serial = 0.0;
  for (double c : contributions) {
    serial += c;
  }
  expect_bitwise_across_thread_counts([&] {
    auto comm = comm::Communicator::world(
        static_cast<int>(contributions.size()));
    return std::vector<double>{comm.allreduce_sum(contributions)};
  });
  support::set_max_threads(1);
  auto comm =
      comm::Communicator::world(static_cast<int>(contributions.size()));
  EXPECT_EQ(comm.allreduce_sum(contributions), serial);
}

TEST(Communicator, SplitCarvesDeterministicSubgroups) {
  auto world = comm::Communicator::world(6, "w");
  const std::array<int, 6> colors = {1, 0, 1, 0, 1, 2};
  const auto groups = world.split(colors);
  ASSERT_EQ(groups.size(), 3U);
  EXPECT_EQ(groups[0].size(), 2);  // color 0: ranks 1, 3
  EXPECT_EQ(groups[1].size(), 3);  // color 1: ranks 0, 2, 4
  EXPECT_EQ(groups[2].size(), 1);  // color 2: rank 5
  EXPECT_EQ(groups[0].global_rank(0), 1);
  EXPECT_EQ(groups[0].global_rank(1), 3);
  EXPECT_EQ(groups[1].global_rank(2), 4);
  EXPECT_EQ(groups[2].global_rank(0), 5);
}

TEST(Communicator, SplitFractionGivesLeadingWorkerGroup) {
  auto world = comm::Communicator::world(8);
  const auto groups = world.split_fraction(0.25);
  ASSERT_EQ(groups.size(), 2U);
  EXPECT_EQ(groups[0].size(), 2);
  EXPECT_EQ(groups[1].size(), 6);
  EXPECT_EQ(groups[0].global_rank(1), 1);
  EXPECT_EQ(groups[1].global_rank(0), 2);
  // A fraction covering everything leaves no second group.
  EXPECT_EQ(world.split_fraction(1.0).size(), 1U);
}

comm::ExchangePlan ring_plan(int ranks, std::int64_t slots_per_rank) {
  // Ring: each rank sends its first owned slot to the right neighbour's
  // last slot (the "ghost").
  comm::ExchangePlan plan;
  for (int r = 0; r + 1 < ranks; ++r) {
    plan.add_channel(r, r + 1, {0},
                     {static_cast<std::int32_t>(slots_per_rank - 1)});
  }
  return plan;
}

TEST(ExchangePlan, RoundTripDeliversExactSlotValues) {
  constexpr int kRanks = 4;
  constexpr std::int64_t kSlots = 3;
  auto comm = comm::Communicator::world(kRanks);
  auto plan = ring_plan(kRanks, kSlots);
  plan.finalize(sizeof(double));
  EXPECT_EQ(plan.bytes_per_exchange(), (kRanks - 1) * sizeof(double));

  std::vector<std::vector<double>> data(kRanks,
                                        std::vector<double>(kSlots, 0.0));
  for (int r = 0; r < kRanks; ++r) {
    data[static_cast<std::size_t>(r)][0] = 100.0 + r;
  }
  plan.execute(comm, [&](comm::Rank r) {
    return std::as_writable_bytes(
        std::span<double>(data[static_cast<std::size_t>(r)]));
  });
  for (int r = 0; r + 1 < kRanks; ++r) {
    EXPECT_EQ(data[static_cast<std::size_t>(r + 1)][kSlots - 1], 100.0 + r);
  }
  EXPECT_EQ(comm.transfers().size(), static_cast<std::size_t>(kRanks - 1));
}

TEST(ExchangePlan, SteadyStateExchangeStopsGrowingThePool) {
  constexpr int kRanks = 8;
  auto comm = comm::Communicator::world(kRanks);
  auto plan = ring_plan(kRanks, 4);
  plan.finalize(sizeof(double));
  std::vector<std::vector<double>> data(kRanks, std::vector<double>(4, 1.0));
  const auto rank_data = [&](comm::Rank r) {
    return std::as_writable_bytes(
        std::span<double>(data[static_cast<std::size_t>(r)]));
  };
  plan.execute(comm, rank_data);  // warm-up populates the buffer pool
  comm.clear_transfers();
  const std::size_t warm_pool = comm.pool_size();
  for (int step = 0; step < 16; ++step) {
    plan.execute(comm, rank_data);
    comm.clear_transfers();
  }
  EXPECT_EQ(comm.pool_size(), warm_pool);
}

TEST(ValidatePlan, AcceptsTheRingAndRejectsCorruptions) {
  constexpr std::int64_t kSlots = 3;
  const std::vector<std::int64_t> extents(4, kSlots);
  const std::vector<std::int64_t> required_begin(4, kSlots - 1);
  const comm::PlanShape shape{extents, extents, required_begin};
  // required_begin marks slot kSlots-1 as ghost on every rank; the last
  // rank's ghost has no feeder, so use a shape without the requirement
  // for the accept case.
  const comm::PlanShape loose{extents, extents, {}};

  auto good = ring_plan(4, kSlots);
  good.finalize(sizeof(double));
  EXPECT_NO_THROW(comm::validate_plan(good, loose));

  {  // out-of-range destination rank
    auto plan = ring_plan(4, kSlots);
    plan.add_channel(3, 4, {0}, {2});
    plan.finalize(sizeof(double));
    EXPECT_THROW(comm::validate_plan(plan, loose), CheckError);
  }
  {  // send index beyond the source extent
    auto plan = ring_plan(4, kSlots);
    plan.add_channel(3, 0, {static_cast<std::int32_t>(kSlots)}, {2});
    plan.finalize(sizeof(double));
    EXPECT_THROW(comm::validate_plan(plan, loose), CheckError);
  }
  {  // duplicate directed channel
    auto plan = ring_plan(4, kSlots);
    plan.add_channel(0, 1, {1}, {2});
    plan.finalize(sizeof(double));
    EXPECT_THROW(comm::validate_plan(plan, loose), CheckError);
  }
  {  // ghost slot fed twice violates exactly-once coverage
    auto plan = ring_plan(4, kSlots);
    plan.add_channel(2, 1, {0}, {static_cast<std::int32_t>(kSlots - 1)});
    plan.finalize(sizeof(double));
    EXPECT_THROW(comm::validate_plan(plan, shape), CheckError);
  }
}

TEST(CommRegression, DistributedMgcfdBitwiseAcrossThreadCounts) {
  const mesh::UnstructuredMesh m = mesh::make_box_mesh(6, 6, 6);
  expect_bitwise_across_thread_counts([&m] {
    mgcfd::EulerOptions opt;
    mgcfd::DistributedSolver dist(m, 4, opt);
    dist.set_cell(0, {1.2, 0.1, 0.0, 0.0, 2.8});
    dist.run(5);
    std::vector<double> flat;
    for (const mgcfd::State& s : dist.gather_solution()) {
      flat.insert(flat.end(), s.begin(), s.end());
    }
    return flat;
  });
}

TEST(CommRegression, DistributedPicBitwiseAcrossThreadCounts) {
  expect_bitwise_across_thread_counts([] {
    simpic::PicOptions opt;
    opt.cells = 64;
    opt.boundary = simpic::Boundary::kAbsorbing;
    opt.dt = 0.1;
    simpic::DistributedPic dist(opt, 4);
    dist.load_uniform(10, 0.3, 0.05);
    dist.run(10);
    std::vector<double> flat = dist.gather_phi();
    const std::vector<double> rho = dist.gather_rho();
    const std::vector<double> pos = dist.gather_positions();
    flat.insert(flat.end(), rho.begin(), rho.end());
    flat.insert(flat.end(), pos.begin(), pos.end());
    return flat;
  });
}

}  // namespace
}  // namespace cpx
