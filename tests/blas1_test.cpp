// Tests for the deterministic parallel BLAS-1 layer (support/blas1) and
// the other fused/planned solve-path kernels added with it: results must
// be correct against serial references AND bitwise identical across
// CPX_THREADS in {1, 4, 16} — the chunk decomposition, not the thread
// count, fixes every summation order (docs/parallelism.md). Registered
// with the `tsan` ctest label so a CPX_SANITIZE=thread build race-checks
// these kernels.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/generators.hpp"
#include "support/blas1.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace cpx {
namespace {

constexpr int kThreadCounts[] = {1, 4, 16};

template <typename AllocA, typename AllocB>
bool bitwise_equal(const std::vector<double, AllocA>& a,
                   const std::vector<double, AllocB>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) {
    x = rng.uniform(-1.0, 1.0);
  }
  return v;
}

/// Runs fn at every thread count in kThreadCounts and checks that the
/// returned vector<double> is bitwise identical each time.
template <typename Fn>
void expect_bitwise_across_thread_counts(Fn fn) {
  support::set_max_threads(kThreadCounts[0]);
  const auto reference = fn();
  for (std::size_t i = 1; i < std::size(kThreadCounts); ++i) {
    support::set_max_threads(kThreadCounts[i]);
    const auto other = fn();
    EXPECT_TRUE(bitwise_equal(reference, other))
        << "result differs at CPX_THREADS=" << kThreadCounts[i];
  }
  support::set_max_threads(1);
}

TEST(Blas1, DotMatchesSerialReference) {
  // Size straddles several reduction chunks (grain 4096).
  const auto a = random_vector(20000, 1);
  const auto b = random_vector(20000, 2);
  double expected = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    expected += a[i] * b[i];
  }
  EXPECT_NEAR(support::blas1::dot(a, b), expected,
              1e-12 * std::abs(expected) + 1e-14);
}

TEST(Blas1, NormsMatchDot) {
  const auto a = random_vector(10000, 3);
  const double n2 = support::blas1::norm2_squared(a);
  EXPECT_DOUBLE_EQ(n2, support::blas1::dot(a, a));
  EXPECT_DOUBLE_EQ(support::blas1::norm2(a), std::sqrt(n2));
}

TEST(Blas1, Axpy2UpdatesBothVectors) {
  const std::size_t n = 9000;
  const auto p = random_vector(n, 4);
  const auto ap = random_vector(n, 5);
  auto x = random_vector(n, 6);
  auto r = random_vector(n, 7);
  const auto x0 = x;
  const auto r0 = r;
  const double alpha = 0.37;
  support::blas1::axpy2(alpha, p, ap, x, r);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(x[i], x0[i] + alpha * p[i]);
    EXPECT_DOUBLE_EQ(r[i], r0[i] - alpha * ap[i]);
  }
}

TEST(Blas1, Axpy2Norm2MatchesUnfusedSequence) {
  const std::size_t n = 9000;
  const auto p = random_vector(n, 8);
  const auto ap = random_vector(n, 9);
  auto x1 = random_vector(n, 10);
  auto r1 = random_vector(n, 11);
  auto x2 = x1;
  auto r2 = r1;
  const double alpha = -0.21;
  const double fused = support::blas1::axpy2_norm2(alpha, p, ap, x1, r1);
  support::blas1::axpy2(alpha, p, ap, x2, r2);
  EXPECT_TRUE(bitwise_equal(x1, x2));
  EXPECT_TRUE(bitwise_equal(r1, r2));
  // Same chunk grain, same per-chunk order: the fused norm is bitwise the
  // separate norm of the updated residual.
  EXPECT_EQ(fused, support::blas1::norm2_squared(r1));
}

TEST(Blas1, DotDiffMatchesReference) {
  const std::size_t n = 6000;
  const auto z = random_vector(n, 12);
  const auto a = random_vector(n, 13);
  const auto b = random_vector(n, 14);
  double expected = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    expected += z[i] * (a[i] - b[i]);
  }
  EXPECT_NEAR(support::blas1::dot_diff(z, a, b), expected,
              1e-12 * std::abs(expected) + 1e-14);
}

TEST(Blas1, XpbyMatchesReference) {
  const std::size_t n = 6000;
  const auto x = random_vector(n, 15);
  auto y = random_vector(n, 16);
  const auto y0 = y;
  const double beta = 0.64;
  support::blas1::xpby(x, beta, y);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(y[i], x[i] + beta * y0[i]);
  }
}

TEST(Blas1, ReductionsBitwiseAcrossThreadCounts) {
  const auto a = random_vector(50000, 17);
  const auto b = random_vector(50000, 18);
  expect_bitwise_across_thread_counts([&] {
    return std::vector<double>{
        support::blas1::dot(a, b), support::blas1::norm2_squared(a),
        support::blas1::dot_diff(a, b, a), support::blas1::norm2(b)};
  });
}

TEST(Blas1, FusedUpdatesBitwiseAcrossThreadCounts) {
  const auto p = random_vector(30000, 19);
  const auto ap = random_vector(30000, 20);
  const auto x0 = random_vector(30000, 21);
  const auto r0 = random_vector(30000, 22);
  expect_bitwise_across_thread_counts([&] {
    auto x = x0;
    auto r = r0;
    const double nrm = support::blas1::axpy2_norm2(0.43, p, ap, x, r);
    support::blas1::xpby(p, 0.3, x);
    x.push_back(nrm);  // fold the scalar into the compared vector
    x.insert(x.end(), r.begin(), r.end());
    return x;
  });
}

TEST(FusedResidual, MatchesSpmvThenSubtract) {
  const auto a = sparse::laplacian_2d(60, 60);
  const auto x = random_vector(static_cast<std::size_t>(a.rows()), 23);
  const auto b = random_vector(static_cast<std::size_t>(a.rows()), 24);
  std::vector<double> r1(x.size());
  std::vector<double> r2(x.size());
  sparse::spmv(a, x, r2);
  for (std::size_t i = 0; i < r2.size(); ++i) {
    r2[i] = b[i] - r2[i];
  }
  const double n2 = sparse::spmv_residual_norm2(a, x, b, r1);
  EXPECT_TRUE(bitwise_equal(r1, r2));
  // The fused reduction chunks by matrix row (the spmv grain), not by the
  // BLAS-1 element grain, so its summation order differs from a separate
  // norm pass: deterministic (see BitwiseAcrossThreadCounts below) but not
  // bitwise equal across the two kernels.
  EXPECT_NEAR(n2, support::blas1::norm2_squared(r1), 1e-12 * n2);

  std::vector<double> r3(x.size());
  sparse::spmv_residual(a, x, b, r3);
  EXPECT_TRUE(bitwise_equal(r3, r2));
}

TEST(FusedResidual, BitwiseAcrossThreadCounts) {
  const auto a = sparse::random_spd(5000, 9, 25);
  const auto x = random_vector(5000, 26);
  const auto b = random_vector(5000, 27);
  expect_bitwise_across_thread_counts([&] {
    std::vector<double> r(x.size());
    const double n2 = sparse::spmv_residual_norm2(a, x, b, r);
    r.push_back(n2);
    return r;
  });
}

TEST(SpgemmNumeric, BitwiseAcrossThreadCounts) {
  const auto a = sparse::laplacian_2d(48, 48);
  const auto b = sparse::random_spd(a.cols(), 5, 28);
  const sparse::SpgemmPlan plan(a, b);
  expect_bitwise_across_thread_counts(
      [&] { return plan.numeric(a, b).values(); });
}

TEST(SpgemmNumeric, MatchesSpaBitwise) {
  const auto a = sparse::random_spd(800, 7, 29);
  const auto b = sparse::random_spd(800, 7, 30);
  const auto c_spa = sparse::spgemm_spa(a, b);
  const sparse::SpgemmPlan plan(a, b);
  const auto c_plan = plan.numeric(a, b);
  EXPECT_EQ(c_plan.row_offsets(), c_spa.row_offsets());
  EXPECT_EQ(c_plan.col_indices(), c_spa.col_indices());
  EXPECT_TRUE(bitwise_equal(c_plan.values(), c_spa.values()));
}

}  // namespace
}  // namespace cpx
