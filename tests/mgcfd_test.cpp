// Tests for the MG-CFD proxy: real Euler finite-volume numerics (free-
// stream preservation, conservation, positivity, multigrid convergence)
// and the performance instance (measured-vs-analytic agreement, scaling
// shape on the virtual cluster).

#include <gtest/gtest.h>

#include <cmath>

#include "mesh/partition.hpp"
#include "mgcfd/distributed.hpp"
#include "mgcfd/euler.hpp"
#include "mgcfd/instance.hpp"
#include "perfmodel/sweep.hpp"
#include "sim/cluster.hpp"
#include "support/check.hpp"

namespace cpx::mgcfd {
namespace {

TEST(Euler, PressureAndSoundSpeed) {
  const State u = freestream(0.5, 1.0, 1.0);
  EXPECT_NEAR(pressure(u), 1.0, 1e-12);
  EXPECT_NEAR(sound_speed(u), std::sqrt(1.4), 1e-12);
}

TEST(Euler, FreestreamIsExactFixedPoint) {
  // Rusanov flux of two identical states along any normal cancels in the
  // residual: a uniform flow must not change at all.
  const mesh::UnstructuredMesh m = mesh::make_box_mesh(6, 6, 6);
  EulerOptions opt;
  opt.mg_levels = 1;
  EulerSolver solver(m, opt);
  const State inf = freestream(0.5);
  solver.set_uniform(inf);
  const double res = solver.run(5);
  EXPECT_LT(res, 1e-12);
  for (const State& u : solver.solution()) {
    for (int k = 0; k < 5; ++k) {
      EXPECT_NEAR(u[k], inf[k], 1e-12);
    }
  }
}

TEST(Euler, MassIsConservedOnPeriodicMesh) {
  // The flux form is antisymmetric per edge, so on a boundary-free
  // (periodic) mesh total mass is conserved to round-off.
  const mesh::UnstructuredMesh m =
      mesh::make_box_mesh(5, 5, 5, 42, /*periodic=*/true);
  EulerOptions opt;
  opt.mg_levels = 1;
  opt.cfl = 0.3;
  opt.local_time_stepping = false;  // conservation needs a global dt
  EulerSolver solver(m, opt);
  solver.set_uniform(freestream(0.3));
  // Perturb a few cells.
  auto& u = solver.mutable_solution();
  u[10][0] *= 1.05;
  u[40][4] *= 1.02;
  const double mass0 = solver.total_mass();
  solver.run(20);
  EXPECT_NEAR(solver.total_mass(), mass0, 1e-9 * mass0);
}

TEST(Euler, PerturbationDecaysTowardsUniform) {
  const mesh::UnstructuredMesh m = mesh::make_box_mesh(6, 6, 6);
  EulerOptions opt;
  opt.mg_levels = 1;
  opt.cfl = 0.4;
  EulerSolver solver(m, opt);
  solver.set_uniform(freestream(0.4));
  auto& u = solver.mutable_solution();
  for (std::size_t c = 0; c < u.size(); c += 7) {
    u[c][0] *= 1.03;  // density bumps
  }
  std::vector<State> res(u.size());
  solver.compute_residual(0, res);
  double norm0 = 0.0;
  for (const State& r : res) {
    for (double v : r) {
      norm0 += v * v;
    }
  }
  const double final_res = solver.run(200);
  EXPECT_LT(final_res * final_res, 0.25 * norm0);
}

TEST(Euler, DensityStaysPositive) {
  const mesh::UnstructuredMesh m = mesh::make_box_mesh(5, 5, 5);
  EulerOptions opt;
  opt.mg_levels = 2;
  opt.cfl = 0.8;
  EulerSolver solver(m, opt);
  solver.set_uniform(freestream(0.8));
  auto& u = solver.mutable_solution();
  u[0][0] = 0.1;  // strong density dip
  solver.run(50);
  for (const State& s : solver.solution()) {
    EXPECT_GT(s[0], 0.0);
    EXPECT_GT(pressure(s), 0.0);
  }
}

TEST(Euler, MultigridConvergesFasterPerSweepBudget) {
  // A V-cycle does ~1.875x the fine-sweep work of a plain step but damps
  // long-wavelength error far better; compare residual at equal cycles.
  const mesh::UnstructuredMesh m = mesh::make_box_mesh(12, 12, 4);
  EulerOptions single;
  single.mg_levels = 1;
  EulerOptions multi;
  multi.mg_levels = 3;
  EulerSolver s1(m, single);
  EulerSolver s3(m, multi);
  const State inf = freestream(0.4);
  s1.set_uniform(inf);
  s3.set_uniform(inf);
  // Long-wavelength density perturbation (hard for a single grid).
  for (EulerSolver* s : {&s1, &s3}) {
    auto& u = s->mutable_solution();
    for (std::int64_t c = 0; c < m.num_cells(); ++c) {
      const double x = m.centroids()[static_cast<std::size_t>(c)].x;
      u[static_cast<std::size_t>(c)][0] =
          inf[0] * (1.0 + 0.05 * std::sin(x / 12.0 * 3.14159));
    }
  }
  const double r1 = s1.run(30);
  const double r3 = s3.run(30);
  EXPECT_LT(r3, r1);
}

TEST(Instance, AnalyticMatchesMeasuredModeAtSmallScale) {
  // Build the same nominal problem both ways and compare per-step virtual
  // time: the analytic partition statistics must track a real RCB
  // partitioning within a modest tolerance.
  const mesh::UnstructuredMesh m = mesh::make_box_mesh(40, 40, 25);
  const int p = 16;
  const mesh::Partitioning part = mesh::partition_rcb(m, p);

  sim::Cluster c1(sim::MachineModel::archer2(), p);
  Instance measured("measured", m, part, {0, p});
  measured.step(c1);
  const double t_measured = c1.max_clock();

  sim::Cluster c2(sim::MachineModel::archer2(), p);
  Instance analytic("analytic", m.num_cells(), {0, p});
  analytic.step(c2);
  const double t_analytic = c2.max_clock();

  EXPECT_NEAR(t_analytic, t_measured, 0.2 * t_measured);
}

TEST(Instance, StepTimeScalesDownWithRanks) {
  auto machine = sim::MachineModel::archer2();
  const std::vector<int> cores = {100, 400, 1600};
  const auto pts = perfmodel::measure_scaling(
      [](sim::RankRange r) {
        return std::make_unique<Instance>("m", 24'000'000, r);
      },
      machine, cores, 2);
  EXPECT_GT(pts[0].seconds, pts[1].seconds);
  EXPECT_GT(pts[1].seconds, pts[2].seconds);
  // Strong scaling is good but not perfect at this size.
  const double pe = (pts[0].seconds * 100.0) / (pts[2].seconds * 1600.0);
  EXPECT_GT(pe, 0.55);
  EXPECT_LT(pe, 1.01);
}

TEST(Instance, LargerMeshTakesProportionallyLonger) {
  auto machine = sim::MachineModel::archer2();
  sim::Cluster ca(machine, 200);
  sim::Cluster cb(machine, 200);
  Instance small("s", 24'000'000, {0, 200});
  Instance large("l", 150'000'000, {0, 200});
  small.step(ca);
  large.step(cb);
  const double ratio = cb.max_clock() / ca.max_clock();
  EXPECT_GT(ratio, 4.0);
  EXPECT_LT(ratio, 8.0);  // 150/24 = 6.25 plus surface effects
}

TEST(Instance, ProfileSplitsComputeAndComm) {
  sim::Cluster c(sim::MachineModel::archer2(), 64);
  Instance inst("row", 8'000'000, {0, 64});
  inst.step(c);
  const sim::RegionId flux = c.profile().find_region("row/flux");
  const sim::RegionId halo = c.profile().find_region("row/halo");
  ASSERT_GE(flux, 0);
  ASSERT_GE(halo, 0);
  EXPECT_GT(c.profile().mean_over_ranks(flux, 0, 64).compute, 0.0);
  EXPECT_GT(c.profile().mean_over_ranks(halo, 0, 64).comm, 0.0);
}

TEST(Euler, Rk3StableWhereForwardEulerIsNot) {
  // SSP-RK3's stability region covers CFL numbers where the single-stage
  // scheme diverges: after the same number of steps from a perturbed
  // state, RK3's residual keeps shrinking while forward Euler's grows.
  const mesh::UnstructuredMesh m = mesh::make_box_mesh(8, 8, 8);
  const auto run_with = [&](TimeIntegration integration) {
    EulerOptions opt;
    opt.mg_levels = 1;
    opt.cfl = 3.0;  // beyond forward Euler's stability limit, inside RK3's
    opt.integration = integration;
    EulerSolver solver(m, opt);
    solver.set_uniform(freestream(0.5));
    auto& u = solver.mutable_solution();
    for (std::size_t c = 0; c < u.size(); c += 5) {
      u[c][0] *= 1.02;
    }
    const double first = solver.run(1);
    const double last = solver.run(60);
    return last / first;
  };
  EXPECT_LT(run_with(TimeIntegration::kSsprk3), 0.5);
  const double fe = run_with(TimeIntegration::kForwardEuler);
  EXPECT_FALSE(fe < 1.0);  // diverged: grows or becomes NaN
}

TEST(Euler, Rk3PreservesFreestreamExactly) {
  const mesh::UnstructuredMesh m = mesh::make_box_mesh(5, 5, 5);
  EulerOptions opt;
  opt.mg_levels = 1;
  opt.integration = TimeIntegration::kSsprk3;
  EulerSolver solver(m, opt);
  const State inf = freestream(0.4);
  solver.set_uniform(inf);
  solver.run(5);
  for (const State& u : solver.solution()) {
    for (int k = 0; k < 5; ++k) {
      EXPECT_NEAR(u[k], inf[k], 1e-12);
    }
  }
}

class DistributedVsSequential : public ::testing::TestWithParam<int> {};

TEST_P(DistributedVsSequential, SameSolutionAsSequential) {
  // The partitioned solver with real halo exchange must reproduce the
  // sequential solver's solution (up to floating-point reassociation of
  // the edge sums).
  const int parts = GetParam();
  const mesh::UnstructuredMesh m = mesh::make_box_mesh(8, 8, 8);
  EulerOptions opt;
  opt.mg_levels = 1;
  opt.cfl = 0.5;

  EulerSolver seq(m, opt);
  DistributedSolver dist(m, parts, opt);
  const State inf = freestream(0.4);
  seq.set_uniform(inf);
  dist.set_uniform(inf);
  // Same perturbation on both.
  State bump = inf;
  bump[0] *= 1.05;
  seq.mutable_solution()[100] = bump;
  dist.set_cell(100, bump);

  seq.run(15);
  dist.run(15);
  const auto got = dist.gather_solution();
  const auto& want = seq.solution();
  double max_diff = 0.0;
  for (std::size_t c = 0; c < want.size(); ++c) {
    for (int k = 0; k < 5; ++k) {
      max_diff = std::max(max_diff, std::abs(got[c][k] - want[c][k]));
    }
  }
  EXPECT_LT(max_diff, 1e-10) << "parts=" << parts;
}

INSTANTIATE_TEST_SUITE_P(PartCounts, DistributedVsSequential,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(Distributed, HaloBytesMatchCutSurface) {
  const mesh::UnstructuredMesh m = mesh::make_box_mesh(10, 10, 10);
  EulerOptions opt;
  DistributedSolver dist(m, 4, opt);
  dist.set_uniform(freestream(0.3));
  // Halo traffic equals the total send-list size times the state size,
  // reported through the shared comm/bytes accounting (the plan knows the
  // per-step payload; the communicator counts what actually moved).
  EXPECT_GT(dist.halo_bytes_per_exchange(), 0u);
  EXPECT_EQ(dist.halo_bytes_per_exchange() % sizeof(State), 0u);
  const std::int64_t before = dist.comm_stats().bytes;
  dist.step();
  const std::int64_t moved = dist.comm_stats().bytes - before;
  // One step = one halo exchange plus the 8-byte-per-rank allreduce.
  EXPECT_EQ(moved, static_cast<std::int64_t>(dist.halo_bytes_per_exchange()) +
                       4 * static_cast<std::int64_t>(sizeof(double)));
  // A single part exchanges no halo payload (only its allreduce entry).
  DistributedSolver solo(m, 1, opt);
  solo.set_uniform(freestream(0.3));
  solo.step();
  EXPECT_EQ(solo.halo_bytes_per_exchange(), 0u);
  EXPECT_EQ(solo.comm_stats().bytes,
            static_cast<std::int64_t>(sizeof(double)));
}

TEST(Distributed, CoSimulationChargesTheCluster) {
  const mesh::UnstructuredMesh m = mesh::make_box_mesh(10, 10, 10);
  EulerOptions opt;
  DistributedSolver dist(m, 4, opt);
  dist.set_uniform(freestream(0.3));
  sim::Cluster cluster(sim::MachineModel::archer2(), 4);
  dist.attach_cluster(&cluster);
  dist.run(3);
  EXPECT_GT(cluster.max_clock(), 0.0);
  const sim::RegionId halo = cluster.profile().find_region("dist_mgcfd/halo");
  ASSERT_GE(halo, 0);
  EXPECT_GT(cluster.profile().mean_over_ranks(halo, 0, 4).comm, 0.0);
}

TEST(Distributed, FreestreamFixedPointSurvivesPartitioning) {
  const mesh::UnstructuredMesh m = mesh::make_box_mesh(6, 6, 6);
  EulerOptions opt;
  DistributedSolver dist(m, 5, opt);
  const State inf = freestream(0.6);
  dist.set_uniform(inf);
  const double res = dist.run(5);
  EXPECT_LT(res, 1e-12);
}

TEST(Instance, RejectsBadConstruction) {
  EXPECT_THROW(Instance("x", 10, {0, 100}), CheckError);
  EXPECT_THROW(Instance("x", 1000, {0, 0}), CheckError);
}

}  // namespace
}  // namespace cpx::mgcfd
