// Tests for the AMG module: smoother convergence, aggregation invariants,
// hierarchy setup across all interpolation/smoother/cycle variants, and
// AMG-preconditioned CG beating plain CG — the numerical backbone of the
// pressure-solver surrogate.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "amg/aggregation.hpp"
#include "amg/hierarchy.hpp"
#include "amg/pcg.hpp"
#include "amg/smoothers.hpp"
#include "sparse/generators.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace cpx::amg {
namespace {

double residual_norm(const sparse::CsrMatrix& a, std::span<const double> x,
                     std::span<const double> b) {
  std::vector<double> r(x.size());
  residual(a, x, b, r);
  double s = 0.0;
  for (double v : r) {
    s += v * v;
  }
  return std::sqrt(s);
}

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) {
    x = rng.uniform(-1.0, 1.0);
  }
  return v;
}

class SmootherConvergence
    : public ::testing::TestWithParam<SmootherKind> {};

TEST_P(SmootherConvergence, ReducesResidualMonotonically) {
  const sparse::CsrMatrix a = sparse::laplacian_2d(12, 12);
  const auto n = static_cast<std::size_t>(a.rows());
  const std::vector<double> b = random_vector(n, 1);
  std::vector<double> x(n, 0.0);
  std::vector<double> scratch(n);
  SmootherOptions opt;
  opt.kind = GetParam();
  double prev = residual_norm(a, x, b);
  for (int sweep = 0; sweep < 20; ++sweep) {
    smooth(a, x, b, opt, scratch);
    const double now = residual_norm(a, x, b);
    EXPECT_LE(now, prev * 1.0001) << "sweep " << sweep;
    prev = now;
  }
  EXPECT_LT(prev, 0.7 * residual_norm(a, std::vector<double>(n, 0.0), b));
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SmootherConvergence,
                         ::testing::Values(SmootherKind::kJacobi,
                                           SmootherKind::kGaussSeidel,
                                           SmootherKind::kHybridGs,
                                           SmootherKind::kL1Jacobi));

TEST(Smoother, GaussSeidelBeatsJacobiPerSweep) {
  const sparse::CsrMatrix a = sparse::laplacian_2d(16, 16);
  const auto n = static_cast<std::size_t>(a.rows());
  const std::vector<double> b = random_vector(n, 2);
  std::vector<double> xj(n, 0.0);
  std::vector<double> xg(n, 0.0);
  std::vector<double> scratch(n);
  SmootherOptions jac{SmootherKind::kJacobi, 0.7, 8};
  SmootherOptions gs{SmootherKind::kGaussSeidel, 0.7, 8};
  for (int s = 0; s < 10; ++s) {
    smooth(a, xj, b, jac, scratch);
    smooth(a, xg, b, gs, scratch);
  }
  EXPECT_LT(residual_norm(a, xg, b), residual_norm(a, xj, b));
}

TEST(Smoother, HybridGsBetweenJacobiAndGs) {
  // With one block Hybrid GS *is* GS; with n blocks it approaches Jacobi.
  const sparse::CsrMatrix a = sparse::laplacian_1d(64);
  const auto n = static_cast<std::size_t>(a.rows());
  const std::vector<double> b = random_vector(n, 3);
  std::vector<double> x_gs(n, 0.0);
  std::vector<double> x_hyb1(n, 0.0);
  std::vector<double> scratch(n);
  SmootherOptions gs{SmootherKind::kGaussSeidel, 1.0, 1};
  SmootherOptions hyb1{SmootherKind::kHybridGs, 1.0, 1};
  smooth(a, x_gs, b, gs, scratch);
  smooth(a, x_hyb1, b, hyb1, scratch);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x_gs[i], x_hyb1[i], 1e-14);
  }
}

TEST(Aggregation, StrengthGraphDropsWeakAndDiagonal) {
  // Anisotropic 2-point stencil: strong in x (-1), weak in y (-0.01).
  std::vector<sparse::Triplet> t;
  const auto id = [](std::int64_t i, std::int64_t j) { return j * 4 + i; };
  for (std::int64_t j = 0; j < 4; ++j) {
    for (std::int64_t i = 0; i < 4; ++i) {
      const std::int64_t c = id(i, j);
      t.push_back({c, c, 2.02});
      if (i > 0) {
        t.push_back({c, id(i - 1, j), -1.0});
      }
      if (i + 1 < 4) {
        t.push_back({c, id(i + 1, j), -1.0});
      }
      if (j > 0) {
        t.push_back({c, id(i, j - 1), -0.01});
      }
      if (j + 1 < 4) {
        t.push_back({c, id(i, j + 1), -0.01});
      }
    }
  }
  const sparse::CsrMatrix a = sparse::csr_from_triplets(16, 16, t);
  const sparse::CsrMatrix s = strength_graph(a, 0.25);
  for (std::int64_t r = 0; r < 16; ++r) {
    EXPECT_DOUBLE_EQ(s.at(r, r), 0.0);  // no diagonal
  }
  // Strong x-connections kept, weak y-connections dropped.
  EXPECT_NE(s.at(id(1, 0), id(0, 0)), 0.0);
  EXPECT_EQ(s.at(id(0, 1), id(0, 0)), 0.0);
}

TEST(Aggregation, EveryNodeAssignedExactlyOnce) {
  const sparse::CsrMatrix a = sparse::laplacian_3d(6, 6, 6);
  const Aggregation agg = aggregate_greedy(strength_graph(a, 0.08));
  EXPECT_GT(agg.num_aggregates, 0);
  EXPECT_LT(agg.num_aggregates, a.rows());
  for (std::int32_t g : agg.aggregate_of) {
    EXPECT_GE(g, 0);
    EXPECT_LT(g, agg.num_aggregates);
  }
}

TEST(Aggregation, TentativeProlongatorPartitionsUnity) {
  const sparse::CsrMatrix a = sparse::laplacian_2d(10, 10);
  const Aggregation agg = aggregate_greedy(strength_graph(a, 0.08));
  const sparse::CsrMatrix p = tentative_prolongator(agg, a.rows());
  // Each row has exactly one unit entry.
  for (std::int64_t r = 0; r < p.rows(); ++r) {
    ASSERT_EQ(p.row_cols(r).size(), 1u);
    EXPECT_DOUBLE_EQ(p.row_values(r)[0], 1.0);
  }
}

TEST(Aggregation, ExtendedInterpolationIsDenserThanSmoothed) {
  const sparse::CsrMatrix a = sparse::laplacian_2d(12, 12);
  const Aggregation agg = aggregate_greedy(strength_graph(a, 0.08));
  const auto tentative =
      build_interpolation(a, agg, InterpKind::kTentative);
  const auto smoothed = build_interpolation(a, agg, InterpKind::kSmoothed);
  const auto extended = build_interpolation(a, agg, InterpKind::kExtended);
  EXPECT_GT(smoothed.nnz(), tentative.nnz());
  EXPECT_GT(extended.nnz(), smoothed.nnz());
}

using HierarchyParams = std::tuple<InterpKind, SmootherKind, CycleKind>;

class HierarchyVariants : public ::testing::TestWithParam<HierarchyParams> {};

TEST_P(HierarchyVariants, SolvesPoissonProblem) {
  const auto [interp, smoother, cycle] = GetParam();
  const sparse::CsrMatrix a = sparse::laplacian_2d(20, 20);
  AmgOptions opt;
  opt.interp = interp;
  opt.smoother.kind = smoother;
  opt.cycle = cycle;
  opt.coarse_size = 16;
  AmgHierarchy h(a, opt);
  EXPECT_GE(h.num_levels(), 2);

  const auto n = static_cast<std::size_t>(a.rows());
  const std::vector<double> b = random_vector(n, 5);
  std::vector<double> x(n, 0.0);
  // Budget sized for the slowest variant (tentative interpolation with
  // Jacobi smoothing); the better variants converge in a handful of cycles.
  const int cycles = h.solve(x, b, 1e-8, 200);
  EXPECT_LE(cycles, 200) << "did not converge";
  EXPECT_LT(residual_norm(a, x, b), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, HierarchyVariants,
    ::testing::Combine(::testing::Values(InterpKind::kTentative,
                                         InterpKind::kSmoothed,
                                         InterpKind::kExtended),
                       ::testing::Values(SmootherKind::kJacobi,
                                         SmootherKind::kHybridGs,
                                         SmootherKind::kGaussSeidel),
                       ::testing::Values(CycleKind::kV, CycleKind::kW,
                                         CycleKind::kK)));

TEST(Hierarchy, WCycleConvergesAtLeastAsFastAsVCycle) {
  const sparse::CsrMatrix a = sparse::laplacian_2d(40, 40);
  AmgOptions v;
  v.cycle = CycleKind::kV;
  AmgOptions w;
  w.cycle = CycleKind::kW;
  AmgHierarchy hv(a, v);
  AmgHierarchy hw(a, w);
  const auto n = static_cast<std::size_t>(a.rows());
  const std::vector<double> b = random_vector(n, 21);
  std::vector<double> xv(n, 0.0);
  std::vector<double> xw(n, 0.0);
  const int cv = hv.solve(xv, b, 1e-8, 100);
  const int cw = hw.solve(xw, b, 1e-8, 100);
  EXPECT_LE(cw, cv);
}

TEST(Hierarchy, SpgemmChoiceDoesNotChangeResult) {
  const sparse::CsrMatrix a = sparse::laplacian_3d(8, 8, 8);
  AmgOptions two;
  two.spgemm = SpgemmKind::kTwoPass;
  AmgOptions spa;
  spa.spgemm = SpgemmKind::kSpa;
  AmgHierarchy h_two(a, two);
  AmgHierarchy h_spa(a, spa);
  ASSERT_EQ(h_two.num_levels(), h_spa.num_levels());
  for (int l = 0; l < h_two.num_levels(); ++l) {
    EXPECT_NEAR(
        sparse::frobenius_distance(h_two.level(l).a, h_spa.level(l).a), 0.0,
        1e-10);
  }
}

TEST(Hierarchy, OperatorComplexityIsModest) {
  const sparse::CsrMatrix a = sparse::laplacian_3d(10, 10, 10);
  AmgOptions opt;
  opt.interp = InterpKind::kSmoothed;
  AmgHierarchy h(a, opt);
  EXPECT_GT(h.operator_complexity(), 1.0);
  EXPECT_LT(h.operator_complexity(), 3.5);
}

TEST(Hierarchy, SmoothedConvergesFasterThanTentative) {
  const sparse::CsrMatrix a = sparse::laplacian_2d(30, 30);
  AmgOptions tent;
  tent.interp = InterpKind::kTentative;
  AmgOptions smoothed;
  smoothed.interp = InterpKind::kSmoothed;
  AmgHierarchy ht(a, tent);
  AmgHierarchy hs(a, smoothed);
  const auto n = static_cast<std::size_t>(a.rows());
  const std::vector<double> b = random_vector(n, 6);
  std::vector<double> xt(n, 0.0);
  std::vector<double> xs(n, 0.0);
  const int ct = ht.solve(xt, b, 1e-8, 100);
  const int cs = hs.solve(xs, b, 1e-8, 100);
  EXPECT_LT(cs, ct);
}

TEST(Aggregation, TruncationPreservesRowSumsAndSparsifies) {
  const sparse::CsrMatrix a = sparse::laplacian_2d(14, 14);
  const Aggregation agg = aggregate_greedy(strength_graph(a, 0.08));
  const sparse::CsrMatrix p =
      build_interpolation(a, agg, InterpKind::kExtended);
  const sparse::CsrMatrix pt = truncate_prolongator(p, 0.15);
  EXPECT_LT(pt.nnz(), p.nnz());
  for (std::int64_t r = 0; r < p.rows(); ++r) {
    double before = 0.0;
    for (double v : p.row_values(r)) {
      before += v;
    }
    double after = 0.0;
    for (double v : pt.row_values(r)) {
      after += v;
    }
    EXPECT_NEAR(before, after, 1e-12) << "row " << r;
  }
  // threshold 0 is the identity.
  EXPECT_NEAR(sparse::frobenius_distance(truncate_prolongator(p, 0.0), p),
              0.0, 1e-15);
}

TEST(Hierarchy, TruncationCutsOperatorComplexity) {
  const sparse::CsrMatrix a = sparse::laplacian_3d(12, 12, 12);
  AmgOptions dense_opt;
  dense_opt.interp = InterpKind::kExtended;
  AmgOptions trunc_opt = dense_opt;
  trunc_opt.interp_truncation = 0.4;
  AmgHierarchy h_dense(a, dense_opt);
  AmgHierarchy h_trunc(a, trunc_opt);
  // Aggressive truncation cuts the stored hierarchy substantially (the
  // cost is a few extra cycles, checked below).
  EXPECT_LT(h_trunc.operator_complexity(),
            0.7 * h_dense.operator_complexity());

  // And the truncated hierarchy still solves the problem.
  const auto n = static_cast<std::size_t>(a.rows());
  const std::vector<double> b = random_vector(n, 31);
  std::vector<double> x(n, 0.0);
  const int cycles = h_trunc.solve(x, b, 1e-8, 100);
  EXPECT_LE(cycles, 100);
}

/// Multiplies each diagonal entry by (1 + amplitude·u), u ∈ [0, 1): same
/// structure, still SPD (the diagonal only grows).
sparse::CsrMatrix perturb_diagonal(const sparse::CsrMatrix& a,
                                   double amplitude, std::uint64_t seed) {
  sparse::CsrMatrix out = a;
  Rng rng(seed);
  auto& vals = out.mutable_values();
  const auto& offsets = out.row_offsets();
  const auto& cols = out.col_indices();
  for (std::int64_t r = 0; r < out.rows(); ++r) {
    for (std::int64_t k = offsets[static_cast<std::size_t>(r)];
         k < offsets[static_cast<std::size_t>(r) + 1]; ++k) {
      if (cols[static_cast<std::size_t>(k)] == r) {
        vals[static_cast<std::size_t>(k)] *= 1.0 + amplitude * rng.uniform();
      }
    }
  }
  return out;
}

class ResetValuesVariants : public ::testing::TestWithParam<InterpKind> {};

TEST_P(ResetValuesVariants, IdenticalValuesMatchFreshBuildExactly) {
  const sparse::CsrMatrix a = sparse::laplacian_2d(24, 24);
  AmgOptions opt;
  opt.interp = GetParam();
  AmgHierarchy reused(a, opt);
  reused.reset_values(a);  // no-op numerically: same values
  const AmgHierarchy fresh(a, opt);

  ASSERT_EQ(reused.num_levels(), fresh.num_levels());
  for (int l = 0; l < reused.num_levels(); ++l) {
    // Element-wise == (not memcmp) so a ±0.0 sign difference, which
    // compares equal and is numerically irrelevant, does not fail.
    EXPECT_EQ(reused.level(l).a.values(), fresh.level(l).a.values())
        << "level " << l << " operator";
    EXPECT_EQ(reused.level(l).p.values(), fresh.level(l).p.values())
        << "level " << l << " prolongator";
    EXPECT_EQ(reused.level(l).r.values(), fresh.level(l).r.values())
        << "level " << l << " restriction";
  }

  // And the solves agree exactly, coarse direct solve included.
  const auto n = static_cast<std::size_t>(a.rows());
  const std::vector<double> b = random_vector(n, 41);
  std::vector<double> x1(n, 0.0);
  std::vector<double> x2(n, 0.0);
  AmgHierarchy fresh_mut(a, opt);
  EXPECT_EQ(reused.solve(x1, b, 1e-10, 50),
            fresh_mut.solve(x2, b, 1e-10, 50));
  EXPECT_EQ(x1, x2);
}

INSTANTIATE_TEST_SUITE_P(AllInterps, ResetValuesVariants,
                         ::testing::Values(InterpKind::kTentative,
                                           InterpKind::kSmoothed,
                                           InterpKind::kExtended));

TEST(Hierarchy, ResetValuesConvergesOnPerturbedMatrix) {
  const sparse::CsrMatrix a = sparse::laplacian_3d(10, 10, 10);
  AmgOptions opt;
  AmgHierarchy h(a, opt);

  const sparse::CsrMatrix a2 = perturb_diagonal(a, 0.3, 42);
  h.reset_values(a2);

  const auto n = static_cast<std::size_t>(a2.rows());
  const std::vector<double> b = random_vector(n, 43);
  std::vector<double> x(n, 0.0);
  const int cycles = h.solve(x, b, 1e-8, 100);
  EXPECT_LE(cycles, 100) << "did not converge after reset_values";
  EXPECT_LT(residual_norm(a2, x, b), 1e-6);

  // Same aggregation, same values: the refreshed Galerkin operators must
  // equal a fresh build only up to the (possibly different) aggregation a
  // fresh strength graph would pick — so check the level-0 operator, which
  // is a straight value copy, exactly.
  EXPECT_EQ(h.level(0).a.values(), a2.values());
}

TEST(Hierarchy, ResetValuesWithTruncationKeepsFrozenProlongator) {
  const sparse::CsrMatrix a = sparse::laplacian_3d(8, 8, 8);
  AmgOptions opt;
  opt.interp = InterpKind::kExtended;
  opt.interp_truncation = 0.2;
  AmgHierarchy h(a, opt);
  std::vector<support::aligned_vector<double>> p_before;
  for (int l = 0; l + 1 < h.num_levels(); ++l) {
    p_before.push_back(h.level(l + 1).p.values());
  }

  const sparse::CsrMatrix a2 = perturb_diagonal(a, 0.25, 44);
  h.reset_values(a2);
  // Truncated P sparsity is value-dependent, so re-setup keeps P frozen.
  for (int l = 0; l + 1 < h.num_levels(); ++l) {
    EXPECT_EQ(h.level(l + 1).p.values(), p_before[static_cast<std::size_t>(l)])
        << "transition " << l;
  }

  const auto n = static_cast<std::size_t>(a2.rows());
  const std::vector<double> b = random_vector(n, 45);
  std::vector<double> x(n, 0.0);
  const int cycles = h.solve(x, b, 1e-8, 100);
  EXPECT_LE(cycles, 100);
  EXPECT_LT(residual_norm(a2, x, b), 1e-6);
}

TEST(Hierarchy, ResetValuesRejectsDifferentStructure) {
  const sparse::CsrMatrix a = sparse::laplacian_2d(12, 12);
  AmgOptions opt;
  AmgHierarchy h(a, opt);
  const sparse::CsrMatrix wrong = sparse::laplacian_2d(13, 13);
  EXPECT_THROW(h.reset_values(wrong), CheckError);
}

TEST(Pcg, UnpreconditionedSolvesSmallSystem) {
  const sparse::CsrMatrix a = sparse::laplacian_1d(50);
  const auto n = static_cast<std::size_t>(a.rows());
  const std::vector<double> b(n, 1.0);
  std::vector<double> x(n, 0.0);
  const PcgResult res = pcg(a, x, b, 1e-10, 200);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(residual_norm(a, x, b), 1e-7);
}

TEST(Pcg, AmgPreconditionerCutsIterations) {
  const sparse::CsrMatrix a = sparse::laplacian_2d(32, 32);
  const auto n = static_cast<std::size_t>(a.rows());
  const std::vector<double> b = random_vector(n, 9);

  std::vector<double> x_plain(n, 0.0);
  const PcgResult plain = pcg(a, x_plain, b, 1e-8, 2000);
  ASSERT_TRUE(plain.converged);

  AmgOptions opt;
  AmgHierarchy h(a, opt);
  std::vector<double> x_amg(n, 0.0);
  const PcgResult amg =
      pcg(a, x_amg, b, 1e-8, 2000, make_amg_preconditioner(h));
  ASSERT_TRUE(amg.converged);
  EXPECT_LT(amg.iterations, plain.iterations / 3)
      << "AMG should dramatically cut CG iterations";
}

TEST(Pcg, JacobiPreconditionerHelpsScaledSystem) {
  // Badly scaled diagonal: Jacobi normalises it.
  std::vector<sparse::Triplet> t;
  for (std::int64_t i = 0; i < 100; ++i) {
    t.push_back({i, i, i % 2 == 0 ? 1.0 : 1000.0});
    if (i > 0) {
      t.push_back({i, i - 1, -0.1});
      t.push_back({i - 1, i, -0.1});
    }
  }
  const sparse::CsrMatrix a = sparse::csr_from_triplets(100, 100, t);
  const std::vector<double> b(100, 1.0);
  std::vector<double> x0(100, 0.0);
  std::vector<double> x1(100, 0.0);
  const PcgResult plain = pcg(a, x0, b, 1e-10, 500);
  const PcgResult jac =
      pcg(a, x1, b, 1e-10, 500, make_jacobi_preconditioner(a));
  EXPECT_TRUE(jac.converged);
  EXPECT_LE(jac.iterations, plain.iterations);
}

TEST(Pcg, ZeroRhsReturnsImmediately) {
  const sparse::CsrMatrix a = sparse::laplacian_1d(10);
  std::vector<double> x(10, 0.0);
  const std::vector<double> b(10, 0.0);
  const PcgResult res = pcg(a, x, b, 1e-10, 10);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0);
}

}  // namespace
}  // namespace cpx::amg
