// Tests of the tiered invariant-checking layer (docs/static_analysis.md):
// level parsing and gating, and — for every deep validator — both
// directions: the seed fixture passes and a deliberately corrupted
// structure is rejected with CheckError.

#include <gtest/gtest.h>

#include <vector>

#include "amg/hierarchy.hpp"
#include "cpx/interpolation.hpp"
#include "mesh/mesh.hpp"
#include "mesh/partition.hpp"
#include "perfmodel/allocator.hpp"
#include "simpic/pic.hpp"
#include "sparse/csr.hpp"
#include "sparse/generators.hpp"
#include "support/check.hpp"

namespace cpx {
namespace {

/// Forces a checking tier for one test and restores the previous one.
class ScopedLevel {
 public:
  explicit ScopedLevel(check::Level l) : previous_(check::level()) {
    check::set_level(l);
  }
  ~ScopedLevel() { check::set_level(previous_); }

 private:
  check::Level previous_;
};

// --- Tier machinery ---

TEST(CheckLevel, ParsesNamesAndNumbers) {
  using check::Level;
  EXPECT_EQ(check::parse_level("off", Level::kAssert), Level::kOff);
  EXPECT_EQ(check::parse_level("none", Level::kAssert), Level::kOff);
  EXPECT_EQ(check::parse_level("0", Level::kAssert), Level::kOff);
  EXPECT_EQ(check::parse_level("assert", Level::kOff), Level::kAssert);
  EXPECT_EQ(check::parse_level("1", Level::kOff), Level::kAssert);
  EXPECT_EQ(check::parse_level("debug", Level::kOff), Level::kDebug);
  EXPECT_EQ(check::parse_level("2", Level::kOff), Level::kDebug);
  EXPECT_EQ(check::parse_level("paranoid", Level::kOff), Level::kParanoid);
  EXPECT_EQ(check::parse_level("3", Level::kOff), Level::kParanoid);
  // Unknown or missing text falls back.
  EXPECT_EQ(check::parse_level("verbose", Level::kAssert), Level::kAssert);
  EXPECT_EQ(check::parse_level(nullptr, Level::kDebug), Level::kDebug);
}

TEST(CheckLevel, GatesAreCumulative) {
  ScopedLevel guard(check::Level::kAssert);
  EXPECT_FALSE(check::deep());
  EXPECT_FALSE(check::paranoid());
  check::set_level(check::Level::kDebug);
  EXPECT_TRUE(check::deep());
  EXPECT_FALSE(check::paranoid());
  check::set_level(check::Level::kParanoid);
  EXPECT_TRUE(check::deep());
  EXPECT_TRUE(check::paranoid());
}

TEST(CheckMacros, AlwaysOnTierFiresAtEveryLevel) {
  ScopedLevel guard(check::Level::kOff);
  EXPECT_THROW(CPX_CHECK(1 == 2), CheckError);
  EXPECT_THROW(CPX_CHECK_MSG(false, "context " << 42), CheckError);
  EXPECT_THROW(CPX_REQUIRE(false, "bad argument"), CheckError);
  EXPECT_NO_THROW(CPX_CHECK(1 == 1));
}

TEST(CheckMacros, CheckErrorCarriesLocationAndMessage) {
  try {
    CPX_CHECK_MSG(2 + 2 == 5, "arithmetic is safe, value=" << 4);
    FAIL() << "CPX_CHECK_MSG did not throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos) << what;
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("value=4"), std::string::npos) << what;
  }
}

// --- CSR structure validator ---

TEST(CsrValidator, AcceptsWellFormedMatrix) {
  const sparse::CsrMatrix a = sparse::laplacian_2d(8, 8);
  EXPECT_NO_THROW(a.validate());
}

TEST(CsrValidator, RejectsUnsortedColumns) {
  ScopedLevel guard(check::Level::kAssert);  // admit the corrupt structure
  const sparse::CsrMatrix bad(2, 3, {0, 2, 3}, {2, 0, 1},
                              {1.0, 2.0, 3.0}, sparse::Trusted{});
  EXPECT_THROW(bad.validate(), CheckError);
}

TEST(CsrValidator, RejectsColumnOutOfRange) {
  ScopedLevel guard(check::Level::kAssert);
  const sparse::CsrMatrix bad(2, 2, {0, 1, 2}, {0, 5}, {1.0, 1.0},
                              sparse::Trusted{});
  EXPECT_THROW(bad.validate(), CheckError);
}

TEST(CsrValidator, TrustedTagAuditsWhenDeep) {
  ScopedLevel guard(check::Level::kDebug);
  // The same corrupt structure is now caught at construction: the Trusted
  // tag skips only the O(nnz) audit that the deep tier re-enables.
  EXPECT_THROW(sparse::CsrMatrix(2, 3, {0, 2, 3}, {2, 0, 1},
                                 {1.0, 2.0, 3.0}, sparse::Trusted{}),
               CheckError);
}

// --- AMG hierarchy validator ---

TEST(AmgValidator, AcceptsFreshAndResetHierarchy) {
  const sparse::CsrMatrix a = sparse::laplacian_2d(12, 12);
  amg::AmgHierarchy h(a, amg::AmgOptions{});
  EXPECT_NO_THROW(h.validate());
  sparse::CsrMatrix scaled = a;
  for (double& v : scaled.mutable_values()) {
    v *= 2.0;
  }
  h.reset_values(scaled);
  EXPECT_NO_THROW(h.validate());
}

// --- Mesh partition validators ---

TEST(PartitionValidator, AcceptsRcbPartitioning) {
  const mesh::UnstructuredMesh box = mesh::make_box_mesh(6, 6, 6);
  const mesh::Partitioning parts = mesh::partition_rcb(box, 4);
  EXPECT_NO_THROW(mesh::validate_partitioning(box, parts));
  const std::vector<mesh::LocalMesh> locals =
      mesh::extract_local_meshes(box, parts);
  EXPECT_NO_THROW(mesh::validate_local_meshes(box, parts, locals));
}

TEST(PartitionValidator, RejectsPartIdOutOfRange) {
  const mesh::UnstructuredMesh box = mesh::make_box_mesh(4, 4, 4);
  mesh::Partitioning parts = mesh::partition_rcb(box, 2);
  parts.part_of.front() = 7;
  EXPECT_THROW(mesh::validate_partitioning(box, parts), CheckError);
}

TEST(PartitionValidator, RejectsOrphanedCell) {
  const mesh::UnstructuredMesh box = mesh::make_box_mesh(4, 4, 4);
  mesh::Partitioning parts = mesh::partition_rcb(box, 2);
  std::vector<mesh::LocalMesh> locals =
      mesh::extract_local_meshes(box, parts);
  // Reassigning a cell after extraction orphans it: no local mesh owns the
  // cell its (edited) partition says it belongs to.
  parts.part_of.front() = 1 - parts.part_of.front();
  EXPECT_THROW(mesh::validate_local_meshes(box, parts, locals), CheckError);
}

TEST(PartitionValidator, RejectsBrokenHaloSymmetry) {
  const mesh::UnstructuredMesh box = mesh::make_box_mesh(4, 4, 4);
  const mesh::Partitioning parts = mesh::partition_rcb(box, 2);
  std::vector<mesh::LocalMesh> locals =
      mesh::extract_local_meshes(box, parts);
  ASSERT_FALSE(locals[0].sends.empty());
  ASSERT_FALSE(locals[0].sends[0].cells.empty());
  // Dropping one entry from a send list breaks the ghost/send pairing.
  locals[0].sends[0].cells.pop_back();
  EXPECT_THROW(mesh::validate_local_meshes(box, parts, locals), CheckError);
}

// --- Coupler stencil validator ---

TEST(StencilValidator, AcceptsIdwStencils) {
  const mesh::UnstructuredMesh donor = mesh::make_box_mesh(5, 5, 2);
  const mesh::UnstructuredMesh target = mesh::make_box_mesh(4, 4, 2, 7);
  const std::vector<coupler::Stencil> stencils =
      coupler::build_idw_stencils(donor.centroids(), target.centroids(), 4);
  EXPECT_NO_THROW(
      coupler::validate_stencils(stencils, donor.centroids().size()));
}

TEST(StencilValidator, RejectsWeightsNotSummingToOne) {
  coupler::Stencil s;
  s.donors = {0, 1};
  s.weights = {0.45, 0.45};  // sums to 0.9: constants are not preserved
  EXPECT_THROW(
      coupler::validate_stencils(std::vector<coupler::Stencil>{s}, 2),
      CheckError);
  // The same stencil is legal for conservative transfer, where weights are
  // rescaled per donor instead of per target.
  EXPECT_NO_THROW(coupler::validate_stencils(
      std::vector<coupler::Stencil>{s}, 2, /*partition_of_unity=*/false));
}

TEST(StencilValidator, RejectsDonorOutOfRange) {
  coupler::Stencil s;
  s.donors = {3};
  s.weights = {1.0};
  EXPECT_THROW(
      coupler::validate_stencils(std::vector<coupler::Stencil>{s}, 2),
      CheckError);
}

// --- SIMPIC validators ---

TEST(PicValidator, AcceptsLoadedPlasmaAfterSteps) {
  simpic::PicOptions opt;
  opt.cells = 32;
  simpic::Pic pic(opt);
  pic.load_uniform(10, 0.0, 0.01);
  pic.run(3);
  EXPECT_NO_THROW(pic.validate());
}

TEST(PicValidator, RejectsEscapedParticle) {
  const std::vector<double> positions = {0.1, 0.5, 1.25};  // domain is [0,1]
  EXPECT_THROW(simpic::validate_particles(positions, 1.0), CheckError);
  const std::vector<double> ok = {0.1, 0.5, 1.0};
  EXPECT_NO_THROW(simpic::validate_particles(ok, 1.0));
}

TEST(PicValidator, ChargeConservationCatchesLostCharge) {
  simpic::PicOptions opt;
  opt.cells = 16;
  simpic::Pic pic(opt);
  pic.load_uniform(8);
  pic.deposit();
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < pic.rho().size(); ++i) {
    total += (pic.rho()[i] - 1.0) * (opt.length / 16.0);
  }
  // The true deposit balances; claiming extra particle charge must throw.
  EXPECT_NO_THROW(simpic::validate_charge_conservation(
      pic.rho(), 1.0, opt.length / 16.0, opt.boundary, total));
  EXPECT_THROW(simpic::validate_charge_conservation(
                   pic.rho(), 1.0, opt.length / 16.0, opt.boundary,
                   total - 0.5),
               CheckError);
}

// --- Perfmodel allocation validator ---

perfmodel::InstanceModel scaling_model(const std::string& name, double a) {
  std::vector<perfmodel::ScalingPoint> pts;
  for (double p = 16; p <= 50000; p *= 2) {
    pts.push_back({p, a / p + 1e-6});
  }
  perfmodel::InstanceModel m;
  m.name = name;
  m.curve = perfmodel::ScalingCurve::fit(pts);
  return m;
}

TEST(AllocationValidator, AcceptsGreedyResult) {
  const std::vector<perfmodel::InstanceModel> apps = {
      scaling_model("cfd", 1000.0), scaling_model("combustion", 500.0)};
  const std::vector<perfmodel::InstanceModel> cus = {
      scaling_model("cu", 50.0)};
  const perfmodel::Allocation alloc =
      perfmodel::distribute_ranks(apps, cus, 600);
  EXPECT_NO_THROW(perfmodel::validate_allocation(alloc, apps, cus, 600));
}

TEST(AllocationValidator, RejectsInfeasibleRanks) {
  const std::vector<perfmodel::InstanceModel> apps = {
      scaling_model("cfd", 1000.0)};
  perfmodel::Allocation alloc = perfmodel::distribute_ranks(apps, {}, 100);
  perfmodel::Allocation below_min = alloc;
  below_min.app_ranks[0] = 0;  // below min_ranks
  EXPECT_THROW(perfmodel::validate_allocation(below_min, apps, {}, 100),
               CheckError);
  perfmodel::Allocation over_budget = alloc;
  over_budget.app_ranks[0] = 200;  // exceeds the budget
  EXPECT_THROW(perfmodel::validate_allocation(over_budget, apps, {}, 100),
               CheckError);
  perfmodel::Allocation wrong_time = alloc;
  wrong_time.predicted_runtime += 1.0;
  EXPECT_THROW(perfmodel::validate_allocation(wrong_time, apps, {}, 100),
               CheckError);
}

}  // namespace
}  // namespace cpx
