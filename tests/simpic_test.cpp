// Tests for the SIMPIC proxy: real 1-D electrostatic PIC physics (charge
// conservation, Poisson accuracy, plasma oscillation, boundary handling)
// plus the STC configurations and the performance instance (pipeline
// serial term, particles-per-cell as the scalability knob).

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "perfmodel/sweep.hpp"
#include "sim/cluster.hpp"
#include "simpic/distributed.hpp"
#include "simpic/instance.hpp"
#include "simpic/pic.hpp"
#include "simpic/stc.hpp"
#include "support/check.hpp"

namespace cpx::simpic {
namespace {

TEST(Pic, DepositConservesCharge) {
  PicOptions opt;
  opt.cells = 64;
  opt.boundary = Boundary::kAbsorbing;
  Pic pic(opt);
  pic.load_uniform(20);
  pic.deposit();
  // CIC weighting is a partition of unity, so the node sum of deposited
  // electron density times dx equals the total particle charge exactly.
  const auto& rho = pic.rho();
  const double dx = opt.length / static_cast<double>(opt.cells);
  double deposited = 0.0;
  for (double r : rho) {
    deposited += (r - 1.0) * dx;  // subtract the ion background
  }
  EXPECT_NEAR(deposited, -opt.length, 1e-12);
}

TEST(Pic, UniformPlasmaIsQuasiNeutral) {
  PicOptions opt;
  opt.cells = 128;
  Pic pic(opt);
  pic.load_uniform(50);
  pic.deposit();
  // Interior nodes: electron density ~1 cancels the background.
  const auto& rho = pic.rho();
  for (std::size_t i = 2; i + 2 < rho.size(); ++i) {
    EXPECT_NEAR(rho[i], 0.0, 0.05) << "node " << i;
  }
}

TEST(Pic, PoissonSolverMatchesAnalyticSolution) {
  // -phi'' = rho with rho = pi^2 sin(pi x), phi(0)=phi(1)=0
  //  ->  phi = sin(pi x).
  const int n = 257;
  const double dx = 1.0 / (n - 1);
  std::vector<double> rho(n);
  constexpr double kPi = 3.14159265358979323846;
  for (int i = 0; i < n; ++i) {
    rho[static_cast<std::size_t>(i)] =
        kPi * kPi * std::sin(kPi * i * dx);
  }
  const auto phi = Pic::solve_poisson_dirichlet(rho, dx);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(phi[static_cast<std::size_t>(i)], std::sin(kPi * i * dx),
                5e-4)
        << "node " << i;
  }
}

TEST(Pic, PoissonSecondOrderConvergence) {
  constexpr double kPi = 3.14159265358979323846;
  auto max_error = [&](int n) {
    const double dx = 1.0 / (n - 1);
    std::vector<double> rho(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      rho[static_cast<std::size_t>(i)] =
          kPi * kPi * std::sin(kPi * i * dx);
    }
    const auto phi = Pic::solve_poisson_dirichlet(rho, dx);
    double err = 0.0;
    for (int i = 0; i < n; ++i) {
      err = std::max(err, std::abs(phi[static_cast<std::size_t>(i)] -
                                   std::sin(kPi * i * dx)));
    }
    return err;
  };
  const double e1 = max_error(65);
  const double e2 = max_error(129);
  // Halving dx should cut the error ~4x.
  EXPECT_GT(e1 / e2, 3.0);
  EXPECT_LT(e1 / e2, 5.0);
}

TEST(Pic, PlasmaOscillationFrequency) {
  // A cold uniform plasma with a small sinusoidal displacement oscillates
  // at the plasma frequency (omega_p = 1 in normalised units): after one
  // full period T = 2*pi the field energy returns to (near) its starting
  // value, having passed through ~zero twice.
  PicOptions opt;
  opt.cells = 128;
  opt.dt = 0.02;
  Pic pic(opt);
  pic.load_uniform(40, 0.0, 0.01);

  constexpr double kTwoPi = 6.28318530717958647692;
  const int steps_per_period = static_cast<int>(kTwoPi / opt.dt);
  pic.step();
  const double e0 = pic.diagnostics().field_energy;
  ASSERT_GT(e0, 0.0);

  double min_e = e0;
  for (int s = 0; s < steps_per_period; ++s) {
    pic.step();
    min_e = std::min(min_e, pic.diagnostics().field_energy);
  }
  const double e1 = pic.diagnostics().field_energy;
  // Passed through a field-energy null (particles crossing equilibrium)...
  EXPECT_LT(min_e, 0.2 * e0);
  // ...and returned to the same amplitude within leapfrog accuracy.
  EXPECT_NEAR(e1, e0, 0.25 * e0);
}

TEST(Pic, TotalEnergyApproximatelyConserved) {
  PicOptions opt;
  opt.cells = 64;
  opt.dt = 0.02;
  Pic pic(opt);
  pic.load_uniform(40, 0.0, 0.02);
  pic.step();
  const auto d0 = pic.diagnostics();
  const double total0 = d0.kinetic_energy + d0.field_energy;
  pic.run(300);
  const auto d1 = pic.diagnostics();
  const double total1 = d1.kinetic_energy + d1.field_energy;
  EXPECT_NEAR(total1, total0, 0.1 * total0);
}

TEST(Pic, TwoStreamInstabilityGrowsAndSaturates) {
  // Two cold counter-streaming beams with k*v0 < omega_p are unstable:
  // the field energy must grow by orders of magnitude from the seed and
  // total energy stay conserved through saturation.
  PicOptions opt;
  opt.cells = 128;
  opt.dt = 0.1;
  opt.boundary = Boundary::kPeriodic;
  Pic pic(opt);
  const std::int64_t per_beam = opt.cells * 20;
  const double weight =
      -opt.length / (2.0 * static_cast<double>(per_beam));
  constexpr double kTwoPi = 6.28318530717958647692;
  for (std::int64_t i = 0; i < per_beam; ++i) {
    const double x0 =
        (static_cast<double>(i) + 0.5) / static_cast<double>(per_beam);
    const double seed = 1e-3 / kTwoPi * std::sin(kTwoPi * x0);
    pic.add_particle(std::fmod(x0 + seed + 1.0, 1.0), 0.08, weight);
    pic.add_particle(x0, -0.08, weight);
  }
  pic.set_background(1.0);

  pic.step();
  const auto d0 = pic.diagnostics();
  const double total0 = d0.field_energy + d0.kinetic_energy;
  ASSERT_GT(d0.field_energy, 0.0);

  double peak_field = d0.field_energy;
  for (int s = 0; s < 300; ++s) {
    pic.step();
    peak_field = std::max(peak_field, pic.diagnostics().field_energy);
  }
  EXPECT_GT(peak_field, 1000.0 * d0.field_energy);
  const auto d1 = pic.diagnostics();
  EXPECT_NEAR(d1.field_energy + d1.kinetic_energy, total0, 0.02 * total0);
}

TEST(Pic, AbsorbingWallsLoseParticles) {
  PicOptions opt;
  opt.cells = 32;
  opt.boundary = Boundary::kAbsorbing;
  opt.dt = 0.05;
  Pic pic(opt);
  pic.load_uniform(10, /*v_thermal=*/2.0);
  const auto before = pic.num_particles();
  pic.run(100);
  EXPECT_LT(pic.num_particles(), before);
}

TEST(Pic, PeriodicBoundaryKeepsParticles) {
  PicOptions opt;
  opt.cells = 32;
  opt.boundary = Boundary::kPeriodic;
  opt.dt = 0.05;
  Pic pic(opt);
  pic.load_uniform(10, 2.0);
  const auto before = pic.num_particles();
  pic.run(100);
  EXPECT_EQ(pic.num_particles(), before);
  for (double x : pic.positions()) {
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, opt.length);
  }
}

TEST(Stc, ConfigsMatchPaperTable) {
  // Fig 3 of the paper plus the Optimized-STC of §IV-C.
  const StcConfig c28 = base_stc_28m();
  EXPECT_EQ(c28.cells, 512'000);
  EXPECT_DOUBLE_EQ(c28.particles_per_cell, 100.0);
  EXPECT_EQ(c28.timesteps, 50'000);
  EXPECT_EQ(c28.proxy_mesh_cells, 28'000'000);

  const StcConfig c84 = base_stc_84m();
  EXPECT_DOUBLE_EQ(c84.particles_per_cell, 300.0);
  const StcConfig c380 = base_stc_380m();
  EXPECT_DOUBLE_EQ(c380.particles_per_cell, 1800.0);

  const StcConfig opt = optimized_stc();
  EXPECT_EQ(opt.cells, 1'180'000);
  EXPECT_DOUBLE_EQ(opt.particles_per_cell, 60'000.0);
  EXPECT_EQ(opt.timesteps, 450);

  EXPECT_EQ(all_stc_configs().size(), 4u);
}

TEST(Instance, PipelineGrowsLinearlyWithRanks) {
  auto machine = sim::MachineModel::archer2();
  sim::Cluster c1(machine, 1000);
  sim::Cluster c2(machine, 2000);
  Instance a("a", base_stc_28m(), {0, 1000});
  Instance b("b", base_stc_28m(), {0, 2000});
  const double p1 = a.pipeline_seconds(c1);
  const double p2 = b.pipeline_seconds(c2);
  EXPECT_GT(p2, 1.8 * p1);
  EXPECT_LT(p2, 2.2 * p1);
}

TEST(Instance, ParticlesPerCellMovesTheCrossover) {
  // The paper's central proxy mechanism: more particles per cell means
  // more perfectly-parallel work relative to the serial field-solve
  // pipeline, so parallel efficiency is retained to higher core counts.
  auto machine = sim::MachineModel::archer2();
  const std::vector<int> cores = {500, 8000};
  const auto pe_at_8000 = [&](const StcConfig& cfg) {
    const auto pts = perfmodel::measure_scaling(
        [&cfg](sim::RankRange r) {
          return std::make_unique<Instance>("s", cfg, r);
        },
        machine, cores, 2);
    return (pts[0].seconds * 500.0) / (pts[1].seconds * 8000.0);
  };
  const double pe_100 = pe_at_8000(base_stc_28m());
  const double pe_1800 = pe_at_8000(base_stc_380m());
  EXPECT_LT(pe_100, 0.5);   // 100 ppc has collapsed by 8000 cores
  EXPECT_GT(pe_1800, 0.6);  // 1800 ppc still scales
}

TEST(Instance, StepWeightScalesBothComputeAndPipeline) {
  auto machine = sim::MachineModel::archer2();
  sim::Cluster c1(machine, 512);
  sim::Cluster c2(machine, 512);
  Instance w1("w1", base_stc_28m(), {0, 512}, WorkModel{}, 1.0);
  Instance w25("w25", base_stc_28m(), {0, 512}, WorkModel{}, 25.0);
  w1.step(c1);
  w25.step(c2);
  EXPECT_NEAR(c2.max_clock() / c1.max_clock(), 25.0, 1.0);
}

TEST(Instance, BaseCrossoverNearPaperValue) {
  // Base-STC-28M must lose 50% parallel efficiency near 3000 cores —
  // where the paper's production pressure solver does (Fig 4b).
  auto machine = sim::MachineModel::archer2();
  const std::vector<int> cores = {128, 3000};
  const auto pts = perfmodel::measure_scaling(
      [](sim::RankRange r) {
        return std::make_unique<Instance>("s", base_stc_28m(), r);
      },
      machine, cores, 2);
  const double pe = (pts[0].seconds * 128.0) / (pts[1].seconds * 3000.0);
  EXPECT_GT(pe, 0.35);
  EXPECT_LT(pe, 0.6);
}

class DistributedPicVsSequential : public ::testing::TestWithParam<int> {};

TEST_P(DistributedPicVsSequential, FieldsMatchSequentialSolver) {
  // The rank-decomposed PIC with the pipelined Thomas solve must agree
  // with the sequential solver: same initial particles (identical RNG
  // stream), same deposition, same field solve continued across rank
  // boundaries.
  const int parts = GetParam();
  PicOptions opt;
  opt.cells = 96;
  opt.boundary = Boundary::kAbsorbing;
  opt.dt = 0.02;
  Pic seq(opt);
  DistributedPic dist(opt, parts);
  seq.load_uniform(12, 0.0, 0.05);
  dist.load_uniform(12, 0.0, 0.05);
  ASSERT_EQ(seq.num_particles(), dist.num_particles());

  // After one step the fields must match to round-off (the only
  // difference is the summation order of the deposition).
  seq.step();
  dist.step();
  for (std::size_t i = 0; i < seq.rho().size(); ++i) {
    EXPECT_NEAR(dist.gather_rho()[i], seq.rho()[i], 1e-13) << "node " << i;
    EXPECT_NEAR(dist.gather_phi()[i], seq.phi()[i], 1e-13) << "node " << i;
    EXPECT_NEAR(dist.gather_efield()[i], seq.efield()[i], 1e-12)
        << "node " << i;
  }

  // Runs stay bitwise identical until the first particle migrates (the
  // receiving rank appends it, changing the deposition summation order);
  // after that, round-off differences are amplified by sheet crossings.
  // Over a longer run the physics — particle count, charge, energies —
  // must still agree closely.
  seq.run(40);
  dist.run(40);
  const auto d_seq = seq.diagnostics();
  const auto d_dist = dist.diagnostics();
  EXPECT_EQ(d_seq.num_particles, d_dist.num_particles);
  EXPECT_NEAR(d_seq.total_charge, d_dist.total_charge, 1e-12);
  EXPECT_NEAR(d_seq.kinetic_energy, d_dist.kinetic_energy,
              0.02 * d_seq.kinetic_energy + 1e-12);
  EXPECT_NEAR(d_seq.field_energy, d_dist.field_energy,
              0.05 * d_seq.field_energy + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(PartCounts, DistributedPicVsSequential,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(DistributedPic, ParticlesMatchSequentialAsMultiset) {
  PicOptions opt;
  opt.cells = 64;
  opt.boundary = Boundary::kAbsorbing;
  opt.dt = 0.02;
  Pic seq(opt);
  DistributedPic dist(opt, 4);
  seq.load_uniform(8, 0.0, 0.03);
  dist.load_uniform(8, 0.0, 0.03);
  // Bitwise agreement holds while no particle has migrated between ranks
  // (migration reorders the receiver's particle array); this cold, gently
  // perturbed setup stays migration-free for these steps.
  seq.run(5);
  dist.run(5);
  auto a = seq.positions();
  auto b = dist.gather_positions();
  ASSERT_EQ(a.size(), b.size());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]);
  }
}

TEST(DistributedPic, MigrationHappensAndIsCounted) {
  PicOptions opt;
  opt.cells = 64;
  opt.boundary = Boundary::kAbsorbing;
  opt.dt = 0.05;
  DistributedPic dist(opt, 8);
  dist.load_uniform(10, /*v_thermal=*/1.5);
  std::int64_t total_migrations = 0;
  for (int s = 0; s < 10; ++s) {
    dist.step();
    total_migrations += dist.last_migrations();
  }
  EXPECT_GT(total_migrations, 0);
}

TEST(DistributedPic, CoSimulationShowsPipelineInProfile) {
  PicOptions opt;
  opt.cells = 64;
  opt.boundary = Boundary::kAbsorbing;
  DistributedPic dist(opt, 8);
  dist.load_uniform(10);
  sim::Cluster cluster(sim::MachineModel::archer2(), 8);
  dist.attach_cluster(&cluster);
  dist.run(3);
  const sim::RegionId field = cluster.profile().find_region("dist_simpic/field");
  ASSERT_GE(field, 0);
  // Every rank spends comm time in the field pipeline.
  EXPECT_GT(cluster.profile().mean_over_ranks(field, 0, 8).comm, 0.0);
}

TEST(DistributedPic, RejectsPeriodicBoundary) {
  PicOptions opt;
  opt.cells = 32;
  opt.boundary = Boundary::kPeriodic;
  EXPECT_THROW(DistributedPic(opt, 4), CheckError);
}

TEST(Instance, RejectsBadConstruction) {
  EXPECT_THROW(Instance("x", base_stc_28m(), {0, 0}), CheckError);
  StcConfig tiny = base_stc_28m();
  tiny.cells = 10;
  EXPECT_THROW(Instance("x", tiny, {0, 100}), CheckError);
  EXPECT_THROW(
      Instance("x", base_stc_28m(), {0, 10}, WorkModel{}, -1.0),
      CheckError);
}

}  // namespace
}  // namespace cpx::simpic
