// Property-based tests: randomized sweeps asserting invariants that must
// hold for *any* input — the virtual cluster's accounting identities, the
// allocator's feasibility and optimality properties, the analytic
// partition model's bounds, and conservation laws of the physics kernels.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "mesh/mesh.hpp"
#include "mesh/partition.hpp"
#include "mesh/stats.hpp"
#include "perfmodel/allocator.hpp"
#include "perfmodel/persistence.hpp"
#include "sim/cluster.hpp"
#include "simpic/pic.hpp"
#include "support/options.hpp"
#include "workflow/case_io.hpp"
#include "support/rng.hpp"

namespace cpx {
namespace {

// --- Virtual cluster accounting identities -------------------------------

class ClusterAccounting : public ::testing::TestWithParam<int> {};

TEST_P(ClusterAccounting, ClockEqualsProfiledTimePerRank) {
  // Invariant: every clock advance is attributed to exactly one region,
  // so for each rank, clock == sum over regions of (compute + comm).
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int p = 8 + static_cast<int>(rng.uniform_index(120));
  sim::Cluster cluster(sim::MachineModel::archer2(), p);
  const sim::RegionId regions[3] = {cluster.region("a"), cluster.region("b"),
                                    cluster.region("c")};

  for (int op = 0; op < 300; ++op) {
    const auto choice = rng.uniform_index(5);
    const sim::RegionId region = regions[rng.uniform_index(3)];
    const auto rank = static_cast<sim::Rank>(
        rng.uniform_index(static_cast<std::uint64_t>(p)));
    switch (choice) {
      case 0:
        cluster.compute_seconds(rank, rng.uniform(0.0, 0.01), region);
        break;
      case 1: {
        const auto dst = static_cast<sim::Rank>(
            rng.uniform_index(static_cast<std::uint64_t>(p)));
        if (dst != rank) {
          cluster.send(rank, dst, rng.uniform_index(1 << 16), region);
        }
        break;
      }
      case 2:
        cluster.allreduce({0, p}, 8, region);
        break;
      case 3: {
        std::vector<sim::Message> msgs;
        for (int m = 0; m < 5; ++m) {
          const auto src = static_cast<sim::Rank>(
              rng.uniform_index(static_cast<std::uint64_t>(p)));
          const auto dst = static_cast<sim::Rank>(
              rng.uniform_index(static_cast<std::uint64_t>(p)));
          if (src != dst) {
            msgs.push_back({src, dst, rng.uniform_index(1 << 14)});
          }
        }
        if (!msgs.empty()) {
          cluster.exchange(msgs, region);
        }
        break;
      }
      default:
        cluster.comm_delay(rank, rng.uniform(0.0, 0.001), region);
        break;
    }
  }

  for (sim::Rank r = 0; r < p; ++r) {
    const sim::RegionTimes total = cluster.profile().rank_total(r);
    EXPECT_NEAR(cluster.clock(r), total.total(), 1e-9)
        << "rank " << r << " of " << p;
  }
}

TEST_P(ClusterAccounting, ClocksNeverDecrease) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const int p = 4 + static_cast<int>(rng.uniform_index(60));
  sim::Cluster cluster(sim::MachineModel::archer2(), p);
  const sim::RegionId region = cluster.region("r");
  std::vector<double> previous(static_cast<std::size_t>(p), 0.0);
  for (int op = 0; op < 200; ++op) {
    const auto rank = static_cast<sim::Rank>(
        rng.uniform_index(static_cast<std::uint64_t>(p)));
    if (rng.uniform() < 0.5) {
      cluster.compute_seconds(rank, rng.uniform(0.0, 0.01), region);
    } else {
      cluster.allreduce({0, p}, 8, region);
    }
    for (sim::Rank r = 0; r < p; ++r) {
      EXPECT_GE(cluster.clock(r),
                previous[static_cast<std::size_t>(r)] - 1e-15);
      previous[static_cast<std::size_t>(r)] = cluster.clock(r);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterAccounting,
                         ::testing::Range(1, 11));

// --- Allocator feasibility and quality ----------------------------------

class AllocatorProperties : public ::testing::TestWithParam<int> {};

perfmodel::InstanceModel random_model(Rng& rng, const std::string& name) {
  std::vector<perfmodel::ScalingPoint> pts;
  const double a = rng.uniform(10.0, 5000.0);
  const double b = rng.uniform(0.0, 0.01);
  const double d = rng.uniform() < 0.3 ? rng.uniform(0.0, 1e-4) : 0.0;
  for (double p = 16; p <= 60000; p *= 2) {
    pts.push_back({p, a / p + b + d * p});
  }
  perfmodel::InstanceModel m;
  m.name = name;
  m.curve = perfmodel::ScalingCurve::fit(pts);
  m.scale = rng.uniform(1.0, 50.0);
  m.min_ranks = 1 + static_cast<int>(rng.uniform_index(50));
  return m;
}

TEST_P(AllocatorProperties, FeasibleBalancedAndBeatsEqualSplit) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  const int n_apps = 2 + static_cast<int>(rng.uniform_index(10));
  std::vector<perfmodel::InstanceModel> apps;
  for (int i = 0; i < n_apps; ++i) {
    apps.push_back(random_model(rng, "app" + std::to_string(i)));
  }
  const int budget =
      n_apps * 60 + static_cast<int>(rng.uniform_index(20000));
  const perfmodel::Allocation alloc =
      perfmodel::distribute_ranks(apps, {}, budget);

  // Feasibility: within budget and per-instance bounds.
  int used = 0;
  for (int i = 0; i < n_apps; ++i) {
    EXPECT_GE(alloc.app_ranks[static_cast<std::size_t>(i)],
              apps[static_cast<std::size_t>(i)].min_ranks);
    EXPECT_LE(alloc.app_ranks[static_cast<std::size_t>(i)],
              apps[static_cast<std::size_t>(i)].max_ranks);
    used += alloc.app_ranks[static_cast<std::size_t>(i)];
  }
  EXPECT_LE(used, budget);

  // Reported runtime is the actual max over instances.
  double worst = 0.0;
  for (int i = 0; i < n_apps; ++i) {
    worst = std::max(worst,
                     apps[static_cast<std::size_t>(i)].time(
                         alloc.app_ranks[static_cast<std::size_t>(i)]));
  }
  EXPECT_NEAR(alloc.app_time, worst, 1e-9 * worst);

  // Quality: greedy never loses to the equal split (both respecting the
  // same minima).
  std::vector<int> equal(static_cast<std::size_t>(n_apps), budget / n_apps);
  double equal_worst = 0.0;
  for (int i = 0; i < n_apps; ++i) {
    const auto& m = apps[static_cast<std::size_t>(i)];
    const int r = std::clamp(equal[static_cast<std::size_t>(i)],
                             m.min_ranks, m.max_ranks);
    equal_worst = std::max(equal_worst, m.time(r));
  }
  EXPECT_LE(alloc.app_time, equal_worst * (1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorProperties,
                         ::testing::Range(1, 21));

// --- Analytic partition model bounds -------------------------------------

class PartitionModelBounds
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PartitionModelBounds, AnalyticTracksMeasuredHalo) {
  const auto [side, parts] = GetParam();
  const mesh::UnstructuredMesh m = mesh::make_box_mesh(side, side, side);
  const mesh::PartitionStats measured =
      mesh::PartitionStats::measure(m, mesh::partition_rcb(m, parts));
  const mesh::PartitionStats analytic =
      mesh::PartitionStats::analytic(m.num_cells(), parts);
  EXPECT_NEAR(analytic.owned_mean, measured.owned_mean,
              0.01 * measured.owned_mean);
  EXPECT_NEAR(analytic.halo_mean, measured.halo_mean,
              0.4 * measured.halo_mean)
      << "side=" << side << " parts=" << parts;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PartitionModelBounds,
    ::testing::Combine(::testing::Values(16, 24, 32),
                       ::testing::Values(4, 8, 27, 64)));

// --- Physics conservation under random configurations --------------------

class PicConservation : public ::testing::TestWithParam<int> {};

TEST_P(PicConservation, ChargeAndCountInvariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131);
  simpic::PicOptions opt;
  opt.cells = 32 << rng.uniform_index(3);        // 32/64/128
  opt.dt = rng.uniform(0.005, 0.05);
  opt.boundary = simpic::Boundary::kPeriodic;
  opt.seed = static_cast<std::uint64_t>(GetParam());
  simpic::Pic pic(opt);
  const int ppc = 5 + static_cast<int>(rng.uniform_index(30));
  pic.load_uniform(ppc, rng.uniform(0.0, 0.5), rng.uniform(0.0, 0.05));
  const auto n0 = pic.num_particles();
  pic.run(30);
  // Periodic walls: particle count conserved exactly; total deposited
  // charge equals the (constant) total particle charge.
  EXPECT_EQ(pic.num_particles(), n0);
  pic.deposit();
  const double dx = opt.length / static_cast<double>(opt.cells);
  double deposited = 0.0;
  for (std::size_t i = 0; i + 1 < pic.rho().size(); ++i) {
    deposited += (pic.rho()[i] - 1.0) * dx;
  }
  EXPECT_NEAR(deposited, -opt.length, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PicConservation, ::testing::Range(1, 9));

// --- Case-file parser robustness -----------------------------------------

class CaseIoFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CaseIoFuzz, RandomInputNeverCrashes) {
  // Random token soup must either parse or throw CheckError — never crash
  // or loop.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761ULL);
  const char* words[] = {"instance", "coupler",  "mgcfd",   "simpic",
                         "thermal",  "sliding",  "steady",  "name",
                         "cells=10", "cells=x",  "iters=2", "every=0",
                         "stc=base-28m", "a",    "b",       "=",
                         "#",        "cells=99999999"};
  std::string text;
  const int lines = 1 + static_cast<int>(rng.uniform_index(12));
  for (int l = 0; l < lines; ++l) {
    const int tokens = static_cast<int>(rng.uniform_index(6));
    for (int t = 0; t < tokens; ++t) {
      text += words[rng.uniform_index(std::size(words))];
      text += ' ';
    }
    text += '\n';
  }
  std::istringstream in(text);
  try {
    const workflow::EngineCase ec = workflow::load_engine_case(in);
    EXPECT_FALSE(ec.instances.empty());  // success implies a valid case
  } catch (const CheckError&) {
    // Expected for most random inputs.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CaseIoFuzz, ::testing::Range(1, 41));

// --- Options parser robustness -------------------------------------------

class OptionsFuzz : public ::testing::TestWithParam<int> {};

TEST_P(OptionsFuzz, NumericAccessorsThrowOrReturnTheTrueValue) {
  // Invariant: for arbitrary argv soup, parse() and the numeric accessors
  // either throw CheckError or return a value that an independent strict
  // re-parse of the raw string confirms — never a silently wrong number.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6364136223846793005ULL);
  const char* keys[] = {"n", "iters", "rate"};
  const char* values[] = {"12",  "-3",   "0007", "3.5",  "1e3",
                          "",    "x",    "12x",  "nan",  "inf",
                          "99999999999999999999999", "1e999", "-9.5e-2"};
  std::vector<std::string> storage;
  storage.emplace_back("prog");
  const int nargs = static_cast<int>(rng.uniform_index(8));
  for (int i = 0; i < nargs; ++i) {
    const auto pick = rng.uniform_index(4);
    if (pick == 0) {
      storage.emplace_back(values[rng.uniform_index(std::size(values))]);
    } else if (pick == 1) {
      storage.emplace_back(std::string("--") +
                           keys[rng.uniform_index(std::size(keys))]);
    } else {
      storage.emplace_back(std::string("--") +
                           keys[rng.uniform_index(std::size(keys))] + "=" +
                           values[rng.uniform_index(std::size(values))]);
    }
  }
  std::vector<const char*> argv;
  for (const std::string& s : storage) {
    argv.push_back(s.c_str());
  }

  Options opts;
  try {
    opts = Options::parse(static_cast<int>(argv.size()), argv.data());
  } catch (const CheckError&) {
    return;  // rejecting the argv outright is always acceptable
  }

  for (const char* key : keys) {
    if (!opts.has(key)) {
      // Absent keys must yield the fallback exactly.
      EXPECT_EQ(opts.get_int(key, -7), -7);
      EXPECT_EQ(opts.get_double(key, 2.5), 2.5);
      continue;
    }
    const std::string raw = opts.get_string(key, "");
    try {
      const long long v = opts.get_int(key, -7);
      std::size_t used = 0;
      const long long check = std::stoll(raw, &used);
      EXPECT_EQ(used, raw.size()) << "accepted partially-numeric '" << raw
                                  << "'";
      EXPECT_EQ(v, check) << "wrong value for '" << raw << "'";
    } catch (const CheckError&) {
      // Rejection is fine; silent corruption is what we are hunting.
    }
    try {
      const double v = opts.get_double(key, 2.5);
      std::size_t used = 0;
      const double check = std::stod(raw, &used);
      EXPECT_EQ(used, raw.size()) << "accepted partially-numeric '" << raw
                                  << "'";
      EXPECT_TRUE(v == check || (std::isnan(v) && std::isnan(check)))
          << "wrong value for '" << raw << "'";
    } catch (const CheckError&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptionsFuzz, ::testing::Range(1, 41));

// --- Model-file loader robustness ----------------------------------------

class ModelFileFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ModelFileFuzz, RandomModelFilesLoadCleanlyOrThrowCheckError) {
  // Invariant: arbitrary token soup fed to load_models() either throws
  // CheckError, or yields a ModelSet whose every model satisfies the
  // documented bounds and which round-trips byte-identically.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2862933555777941757ULL);
  const char* tokens[] = {"app",      "cu",       "mgcfd",    "simpic",
                          "scale=2",  "scale=",   "scale=1x", "scale=-3",
                          "scale=1e999", "min=1", "min=0",    "min=2.5",
                          "max=4",    "max=2",    "a=1.5",    "b=0.01",
                          "c=0",      "d=1e-6",   "extra",    "#"};
  std::string text = "# cpx-perfmodel v1\n";
  const int lines = static_cast<int>(rng.uniform_index(8));
  for (int l = 0; l < lines; ++l) {
    const int count = static_cast<int>(rng.uniform_index(11));
    for (int t = 0; t < count; ++t) {
      text += tokens[rng.uniform_index(std::size(tokens))];
      text += ' ';
    }
    text += '\n';
  }

  std::istringstream in(text);
  perfmodel::ModelSet models;
  try {
    models = perfmodel::load_models(in);
  } catch (const CheckError&) {
    return;  // expected for most random inputs
  }

  for (const auto* group : {&models.apps, &models.cus}) {
    for (const perfmodel::InstanceModel& m : *group) {
      EXPECT_FALSE(m.name.empty());
      EXPECT_GT(m.scale, 0.0);
      EXPECT_GE(m.min_ranks, 1);
      EXPECT_LE(m.min_ranks, m.max_ranks);
    }
  }

  // Anything the loader accepts must survive a save/load/save round trip.
  std::ostringstream first;
  perfmodel::save_models(first, models);
  std::istringstream again(first.str());
  const perfmodel::ModelSet reloaded = perfmodel::load_models(again);
  std::ostringstream second;
  perfmodel::save_models(second, reloaded);
  EXPECT_EQ(first.str(), second.str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelFileFuzz, ::testing::Range(1, 41));

}  // namespace
}  // namespace cpx
