// Checkpoint/restart tests (docs/checkpoint.md): the cpx-ckpt-v1 format
// round-trips byte-identically, corruption and version drift are rejected
// with CheckError, counter-based RNG streams resume exactly, per-subsystem
// sections satisfy write -> read -> write byte equality, and a coupled run
// that is killed mid-step by an injected rank failure and restored from
// the last snapshot finishes bitwise-equal to the uninterrupted run — at
// CPX_THREADS 1, 4, and 16.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "sim/cluster.hpp"
#include "sim/machine.hpp"
#include "simpic/distributed.hpp"
#include "simpic/pic.hpp"
#include "spray/cloud.hpp"
#include "support/check.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "workflow/case_io.hpp"
#include "workflow/coupled.hpp"
#include "workflow/engine_case.hpp"

namespace cpx {
namespace {

std::vector<std::byte> to_vec(std::span<const std::byte> s) {
  return {s.begin(), s.end()};
}

/// Full-snapshot bytes of one serializable object.
template <typename T>
std::vector<std::byte> snapshot_of(const T& obj) {
  ckpt::Writer w;
  w.begin();
  obj.serialize(w);
  w.finish();
  return to_vec(w.bytes());
}

/// Restores `obj` from a snapshot produced by snapshot_of().
template <typename T>
void restore_from(T& obj, const std::vector<std::byte>& bytes) {
  ckpt::Reader r(bytes);
  obj.restore(r);
}

// --- Format layer ---

TEST(CkptFormat, TypedValuesRoundTrip) {
  ckpt::Writer w;
  w.begin();
  w.begin_section("typed");
  w.put_u8(0xab);
  w.put_u32(0xdeadbeefu);
  w.put_u64(0x0123456789abcdefULL);
  w.put_i64(-42);
  w.put_f64(-0.125);
  w.put_str("hello ckpt");
  const std::vector<double> f = {1.0, -2.5, 3.25};
  const std::vector<std::int64_t> i = {-7, 0, 9};
  w.put_f64_span(f);
  w.put_i64_span(i);
  w.end_section();
  w.finish();

  ckpt::Reader r(w.bytes());
  EXPECT_EQ(r.num_sections(), 1u);
  EXPECT_TRUE(r.has_section("typed"));
  r.open_section("typed");
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_EQ(r.get_f64(), -0.125);
  EXPECT_EQ(r.get_str(), "hello ckpt");
  std::vector<double> f2;
  std::vector<std::int64_t> i2;
  r.get_f64_vec(f2);
  r.get_i64_vec(i2);
  EXPECT_EQ(f2, f);
  EXPECT_EQ(i2, i);
  r.end_section();
}

std::vector<std::byte> one_section_snapshot() {
  ckpt::Writer w;
  w.begin();
  w.begin_section("blob");  // 4-char name: payload starts at offset 32
  for (int k = 0; k < 16; ++k) {
    w.put_f64(static_cast<double>(k));
  }
  w.end_section();
  w.finish();
  return to_vec(w.bytes());
}

TEST(CkptFormat, RejectsBadMagic) {
  std::vector<std::byte> bytes = one_section_snapshot();
  bytes[0] ^= std::byte{0xff};
  EXPECT_THROW(ckpt::Reader r(bytes), CheckError);
}

TEST(CkptFormat, RejectsVersionMismatch) {
  std::vector<std::byte> bytes = one_section_snapshot();
  // Version u32 sits right after the 8-byte magic, little-endian.
  bytes[8] = std::byte{ckpt::kFormatVersion + 1};
  EXPECT_THROW(ckpt::Reader r(bytes), CheckError);
}

TEST(CkptFormat, RejectsFlippedPayloadByte) {
  std::vector<std::byte> bytes = one_section_snapshot();
  // header(16) + name_len(4) + "blob"(4) + payload_len(8) = payload at 32.
  bytes[40] ^= std::byte{0x01};
  ckpt::Reader r(bytes);  // indexing does not touch payloads
  EXPECT_THROW(r.open_section("blob"), CheckError);
}

TEST(CkptFormat, RejectsTruncatedStream) {
  std::vector<std::byte> bytes = one_section_snapshot();
  bytes.resize(bytes.size() - 3);
  EXPECT_THROW(ckpt::Reader r(bytes), CheckError);
}

TEST(CkptFormat, WriteFileReadFileRoundTrips) {
  const std::vector<std::byte> bytes = one_section_snapshot();
  const std::string path = ::testing::TempDir() + "cpx_ckpt_format.ckpt";
  ckpt::Writer w;
  w.begin();
  w.begin_section("blob");
  for (int k = 0; k < 16; ++k) {
    w.put_f64(static_cast<double>(k));
  }
  w.end_section();
  w.finish();
  w.write_file(path);

  std::vector<std::byte> loaded;
  ckpt::read_file(path, loaded);
  EXPECT_EQ(loaded, bytes);
  EXPECT_THROW(ckpt::read_file(path + ".missing", loaded), CheckError);
}

// --- Counter-based RNG ---

TEST(CkptRng, StateRoundTripResumesTheStream) {
  CounterRng a(0xfeedULL);
  (void)a.uniform();
  (void)a.normal();  // two draws
  (void)a.uniform_index(17);
  EXPECT_EQ(a.counter(), 4u);

  CounterRng b;
  b.restore_state(a.seed(), a.counter());
  for (int k = 0; k < 64; ++k) {
    EXPECT_EQ(a(), b());
    EXPECT_EQ(a.uniform(), b.uniform());
  }
  EXPECT_EQ(a.counter(), b.counter());
}

// --- Per-subsystem sections: write -> read -> write byte equality ---

TEST(CkptSections, SprayCloudRoundTripsByteIdentically) {
  spray::CloudOptions opts;
  opts.num_particles = 2000;
  opts.num_ranks = 8;
  opts.seed = 7;
  spray::Cloud a(opts);
  for (int s = 0; s < 5; ++s) {
    a.step();
  }
  const auto bytes = snapshot_of(a);

  spray::Cloud b(opts);
  restore_from(b, bytes);
  EXPECT_EQ(snapshot_of(b), bytes);

  // The restored cloud continues the run bitwise-identically.
  a.step();
  b.step();
  EXPECT_EQ(a.positions(), b.positions());
  EXPECT_EQ(a.rng_counter(), b.rng_counter());
}

TEST(CkptSections, SprayCloudRestoreRejectsDifferentOptions) {
  spray::CloudOptions opts;
  opts.num_particles = 1000;
  spray::Cloud a(opts);
  const auto bytes = snapshot_of(a);

  spray::CloudOptions other = opts;
  other.num_ranks = opts.num_ranks + 1;
  spray::Cloud b(other);
  EXPECT_THROW(restore_from(b, bytes), CheckError);
}

TEST(CkptSections, PicRoundTripsByteIdentically) {
  simpic::PicOptions opts;
  opts.cells = 48;
  opts.seed = 42;
  simpic::Pic a(opts);
  a.load_uniform(12, 0.05, 0.01);
  a.run(3);
  const auto bytes = snapshot_of(a);

  simpic::Pic b(opts);
  restore_from(b, bytes);
  EXPECT_EQ(snapshot_of(b), bytes);

  a.step();
  b.step();
  EXPECT_EQ(a.positions(), b.positions());
  EXPECT_EQ(a.velocities(), b.velocities());
  EXPECT_EQ(a.efield(), b.efield());
}

TEST(CkptSections, DistributedPicRoundTripsByteIdentically) {
  simpic::PicOptions opts;
  opts.cells = 64;
  opts.seed = 42;
  opts.boundary = simpic::Boundary::kAbsorbing;
  simpic::DistributedPic a(opts, 4);
  a.load_uniform(10, 0.05, 0.01);
  for (int s = 0; s < 3; ++s) {
    a.step();
  }
  const auto bytes = snapshot_of(a);

  simpic::DistributedPic b(opts, 4);
  restore_from(b, bytes);
  EXPECT_EQ(snapshot_of(b), bytes);

  a.step();
  b.step();
  EXPECT_EQ(snapshot_of(a), snapshot_of(b));
}

TEST(CkptSections, ClusterAndProfileRoundTripByteIdentically) {
  const auto machine = sim::MachineModel::archer2();
  sim::Cluster a(machine, 8);
  const auto rgn = a.region("work");
  const auto rgn2 = a.region("exchange");
  for (sim::Rank r = 0; r < 8; ++r) {
    a.compute_seconds(r, 0.5 + static_cast<double>(r), rgn);
  }
  a.send(0, 5, 4096, rgn2);
  a.allreduce({0, 8}, 64, rgn2);
  a.begin_step(3);
  const auto bytes = snapshot_of(a);

  sim::Cluster b(machine, 8);
  restore_from(b, bytes);
  EXPECT_EQ(snapshot_of(b), bytes);
  EXPECT_EQ(b.clock(5), a.clock(5));
  EXPECT_EQ(b.current_step(), 3);
  EXPECT_EQ(b.comm_bytes({0, 8}), a.comm_bytes({0, 8}));
}

// --- Fault injection ---

TEST(CkptFault, InjectedFailureKillsTheArmedRankAtItsStep) {
  const auto machine = sim::MachineModel::archer2();
  sim::Cluster c(machine, 4);
  const auto rgn = c.region("step");
  c.inject_failure(2, 3);
  EXPECT_TRUE(c.failure_armed());

  c.begin_step(2);  // before the armed step: everything runs
  EXPECT_NO_THROW(c.compute_seconds(2, 0.1, rgn));

  c.begin_step(3);  // the armed step: rank 2 dies, others are fine
  EXPECT_NO_THROW(c.compute_seconds(1, 0.1, rgn));
  try {
    c.compute_seconds(2, 0.1, rgn);
    FAIL() << "expected RankFailure";
  } catch (const sim::RankFailure& e) {
    EXPECT_EQ(e.rank(), 2);
    EXPECT_EQ(e.step(), 3);
  }
  EXPECT_THROW(c.send(2, 0, 64, rgn), sim::RankFailure);

  c.clear_failure();
  EXPECT_FALSE(c.failure_armed());
  EXPECT_NO_THROW(c.compute_seconds(2, 0.1, rgn));
}

TEST(CkptFault, ResetClocksZeroesTimingButKeepsRegions) {
  const auto machine = sim::MachineModel::archer2();
  sim::Cluster c(machine, 4);
  const auto rgn = c.region("warm");
  c.compute_seconds(0, 1.0, rgn);
  c.send(0, 1, 1 << 20, rgn);
  ASSERT_GT(c.max_clock(), 0.0);
  ASSERT_GT(c.comm_bytes({0, 4}), 0u);

  c.reset_clocks();
  EXPECT_EQ(c.max_clock(), 0.0);
  EXPECT_EQ(c.comm_bytes({0, 4}), 0u);
  EXPECT_EQ(c.comm_messages({0, 4}), 0);
  EXPECT_EQ(c.comm_hidden_seconds({0, 4}), 0.0);
  // The profile is deliberately kept (see measure_step_seconds callers);
  // the region table survives either way.
  EXPECT_EQ(c.region("warm"), rgn);
}

// --- Strict case-file parsing (workflow::case_io) ---

TEST(CkptCaseIo, RejectsTrailingJunkInNumericFields) {
  std::istringstream in("instance mgcfd a cells=2400000x\n");
  EXPECT_THROW(workflow::load_engine_case(in), CheckError);
}

TEST(CkptCaseIo, RejectsEmptyNumericFields) {
  // A case file truncated mid-token leaves "cells=" with no digits.
  std::istringstream in("instance mgcfd a cells=\n");
  EXPECT_THROW(workflow::load_engine_case(in), CheckError);
}

TEST(CkptCaseIo, RejectsOverflowingNumericFields) {
  std::istringstream in(
      "instance mgcfd a cells=99999999999999999999999999\n");
  EXPECT_THROW(workflow::load_engine_case(in), CheckError);
}

TEST(CkptCaseIo, RejectsJunkStepCounts) {
  std::istringstream in(
      "pressure_steps_per_density_step 2x\ninstance mgcfd a cells=1000\n");
  EXPECT_THROW(workflow::load_engine_case(in), CheckError);
}

TEST(CkptCaseIo, StillParsesWellFormedNumbers) {
  std::istringstream in("instance mgcfd a cells=2400000 iters=10\n");
  const workflow::EngineCase ec = workflow::load_engine_case(in);
  ASSERT_EQ(ec.instances.size(), 1u);
  EXPECT_EQ(ec.instances[0].mesh_cells, 2'400'000);
  EXPECT_EQ(ec.instances[0].iterations_per_density_step, 10);
}

// --- Coupled simulation: kill, restore, resume byte-identically ---

workflow::RankAssignment small_case_assignment() {
  workflow::RankAssignment ra;
  ra.app_ranks = {300, 4000, 300};
  ra.cu_ranks = {16, 8, 8};
  return ra;
}

TEST(CkptCoupled, RestoreRejectsSnapshotFromDifferentSetup) {
  const workflow::EngineCase c = workflow::small_validation_case();
  const auto machine = sim::MachineModel::archer2();
  workflow::CoupledSimulation a(c, machine, small_case_assignment());
  a.run(2);
  const std::vector<std::byte> bytes = to_vec(a.checkpoint_bytes());

  workflow::RankAssignment other = small_case_assignment();
  other.cu_ranks.back() += 4;
  workflow::CoupledSimulation b(c, machine, other);
  EXPECT_THROW(b.restore(std::span<const std::byte>(bytes)), CheckError);
}

TEST(CkptCoupled, CadenceSnapshotsAreRestorable) {
  const workflow::EngineCase c = workflow::small_validation_case();
  const auto machine = sim::MachineModel::archer2();
  const std::string path = ::testing::TempDir() + "cpx_cadence.ckpt";

  workflow::CoupledSimulation sim(c, machine, small_case_assignment());
  sim.set_checkpoint_cadence(2, path);
  ASSERT_EQ(sim.checkpoint_cadence(), 2);
  sim.run(4);  // snapshots after steps 2 and 4; the file holds step 4

  workflow::CoupledSimulation fresh(c, machine, small_case_assignment());
  fresh.restore(path);
  EXPECT_EQ(fresh.density_steps_run(), 4);

  sim.run(2);
  fresh.run(2);
  EXPECT_EQ(to_vec(sim.checkpoint_bytes()), to_vec(fresh.checkpoint_bytes()));
}

TEST(CkptCoupled, KilledRunRestoredFromSnapshotFinishesByteIdentically) {
  const workflow::EngineCase c = workflow::small_validation_case();
  const auto machine = sim::MachineModel::archer2();

  // The paper's restart contract, exercised at each supported thread
  // count: the snapshot format (and the state it captures) must be
  // CPX_THREADS-independent, so the reference bytes must also agree
  // across thread counts.
  constexpr int kThreadCounts[] = {1, 4, 16};
  std::vector<std::byte> baseline;
  for (const int threads : kThreadCounts) {
    support::set_max_threads(threads);

    // Uninterrupted reference: 6 density steps.
    workflow::CoupledSimulation ref(c, machine, small_case_assignment());
    ref.run(6);
    const std::vector<std::byte> ref_bytes = to_vec(ref.checkpoint_bytes());

    // Victim: snapshot after step 3, then a rank dies at step 4.
    workflow::CoupledSimulation victim(c, machine,
                                       small_case_assignment());
    victim.run(3);
    const std::vector<std::byte> mid = to_vec(victim.checkpoint_bytes());
    victim.cluster().inject_failure(1, 4);
    EXPECT_THROW(victim.run(3), sim::RankFailure);

    // Recovery: a fresh simulation restores the snapshot and runs to the
    // end; its final snapshot must be bitwise-equal to the reference.
    workflow::CoupledSimulation resumed(c, machine,
                                        small_case_assignment());
    resumed.restore(std::span<const std::byte>(mid));
    EXPECT_EQ(resumed.density_steps_run(), 3);
    resumed.run(3);
    EXPECT_EQ(to_vec(resumed.checkpoint_bytes()), ref_bytes)
        << "restored run diverged at CPX_THREADS=" << threads;
    EXPECT_EQ(resumed.runtime(), ref.runtime());

    if (baseline.empty()) {
      baseline = ref_bytes;
    } else {
      EXPECT_EQ(ref_bytes, baseline)
          << "snapshot differs between CPX_THREADS=1 and CPX_THREADS="
          << threads;
    }
  }
  support::set_max_threads(1);
}

}  // namespace
}  // namespace cpx
