// Tests for the host observability layer (support/metrics): region
// hierarchy, thread-merged determinism, counters, exporters, and the
// disabled-path no-op guarantee.

#include "support/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "amg/hierarchy.hpp"
#include "cpx/field_coupler.hpp"
#include "cpx/search.hpp"
#include "json_parse.hpp"
#include "simpic/pic.hpp"
#include "sparse/csr.hpp"
#include "sparse/generators.hpp"
#include "support/check.hpp"
#include "support/options.hpp"
#include "support/parallel.hpp"

namespace cpx::support::metrics {
namespace {

/// Every test starts and ends with the layer off and empty: the registry
/// is process-global, so leftover state would leak between tests.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    set_trace_events(false);
    reset();
  }
  void TearDown() override {
    set_enabled(false);
    set_trace_events(false);
    reset();
  }
};

std::set<std::string> region_paths() {
  std::set<std::string> paths;
  for (const RegionSnapshot& r : snapshot().regions) {
    paths.insert(r.path);
  }
  return paths;
}

TEST_F(MetricsTest, DisabledRecordsNothing) {
  ASSERT_FALSE(enabled());
  {
    CPX_METRICS_SCOPE("test/ignored");
    counter_add("test/ignored_counter", 7);
  }
  const Snapshot snap = snapshot();
  EXPECT_TRUE(snap.regions.empty());
  EXPECT_TRUE(snap.counters.empty());
}

TEST_F(MetricsTest, NestedScopesBuildSemicolonPaths) {
  set_enabled(true);
  {
    CPX_METRICS_SCOPE("test/outer");
    {
      CPX_METRICS_SCOPE("test/inner");
    }
    {
      CPX_METRICS_SCOPE_COMM("test/inner_comm");
    }
  }
  const Snapshot snap = snapshot();
  const RegionSnapshot* outer = snap.find("test/outer");
  const RegionSnapshot* inner = snap.find("test/outer;test/inner");
  const RegionSnapshot* comm = snap.find("test/outer;test/inner_comm");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(comm, nullptr);
  EXPECT_EQ(outer->calls, 1);
  EXPECT_EQ(inner->calls, 1);
  EXPECT_EQ(outer->kind, RegionKind::kCompute);
  EXPECT_EQ(comm->kind, RegionKind::kComm);
  // Time is monotone along the nesting: the outer scope contains both
  // inner scopes.
  EXPECT_GE(outer->seconds, inner->seconds);
  // No bare "test/inner" region may exist: '/' in names never nests.
  EXPECT_EQ(snap.find("test/inner"), nullptr);
}

TEST_F(MetricsTest, RegionSetIsThreadCountIndependent) {
  const sparse::CsrMatrix a = sparse::laplacian_2d(20, 20);
  std::vector<double> x(static_cast<std::size_t>(a.rows()), 1.0);
  std::vector<double> y(x.size(), 0.0);

  const int saved = max_threads();
  set_max_threads(1);
  set_enabled(true);
  sparse::spmv(a, x, y);
  const std::set<std::string> serial_paths = region_paths();
  set_enabled(false);
  reset();

  set_max_threads(4);
  set_enabled(true);
  sparse::spmv(a, x, y);
  const std::set<std::string> pooled_paths = region_paths();
  set_enabled(false);
  set_max_threads(saved);

  EXPECT_EQ(serial_paths, pooled_paths);
  EXPECT_TRUE(pooled_paths.count("sparse/spmv"));
}

TEST_F(MetricsTest, CountersSumExactlyAcrossPoolThreads) {
  const int saved = max_threads();
  set_max_threads(4);
  set_enabled(true);
  constexpr std::int64_t kN = 10'000;
  parallel_for(0, kN, 64, [](std::int64_t lo, std::int64_t hi) {
    counter_add("test/elements", hi - lo);
  });
  set_max_threads(saved);  // workers retire; their samples must survive
  const Snapshot snap = snapshot();
  EXPECT_EQ(snap.counter("test/elements"), kN);
  // The pooled run also accounts its own queue/exec overhead.
  EXPECT_GT(snap.counter("pool/tasks"), 0);
}

TEST_F(MetricsTest, JsonReportParsesAndCoversAllModules) {
  set_enabled(true);

  // sparse + amg: spmv and one AMG solve.
  const sparse::CsrMatrix a = sparse::laplacian_2d(24, 24);
  const auto n = static_cast<std::size_t>(a.rows());
  std::vector<double> x(n, 0.0);
  std::vector<double> b(n, 1.0);
  std::vector<double> y(n, 0.0);
  sparse::spmv(a, x, y);
  amg::AmgHierarchy hierarchy(a, {});
  hierarchy.solve(x, b, 1e-8, 20);

  // coupler: donor search + one (comm-tagged) exchange.
  std::vector<mesh::Vec3> pts;
  for (int i = 0; i < 64; ++i) {
    pts.push_back({0.1 * i, 0.2 * i, 0.0});
  }
  const coupler::KdTree tree(pts);
  tree.nearest_batch(pts);
  coupler::FieldCoupler fc(pts, pts, coupler::InterfaceKind::kSteadyState,
                           2);
  std::vector<double> field(pts.size(), 1.0);
  std::vector<double> out(pts.size(), 0.0);
  fc.transfer(field, out);

  // simpic: a couple of PIC steps.
  simpic::PicOptions pic_opts;
  pic_opts.cells = 32;
  simpic::Pic pic(pic_opts);
  pic.load_uniform(8, 0.05, 0.01);
  pic.run(2);

  std::ostringstream os;
  write_json(os);
  set_enabled(false);

  const testing::JsonValue doc = testing::parse_json(os.str());
  ASSERT_TRUE(doc.is_object());
  const testing::JsonValue* schema = doc.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->str, "cpx-metrics-v1");

  const testing::JsonValue* regions = doc.find("regions");
  ASSERT_NE(regions, nullptr);
  ASSERT_TRUE(regions->is_array());
  double sparse_s = -1.0, amg_s = -1.0, coupler_s = -1.0, simpic_s = -1.0;
  bool saw_comm = false;
  for (const testing::JsonValue& r : regions->items) {
    const std::string& path = r.find("path")->str;
    const double seconds = r.find("seconds")->number;
    EXPECT_GE(seconds, 0.0);
    EXPECT_GE(r.find("calls")->number, 1.0);
    const std::string& kind = r.find("kind")->str;
    EXPECT_TRUE(kind == "compute" || kind == "comm");
    if (path.find("sparse/") != std::string::npos) {
      sparse_s = std::max(sparse_s, seconds);
    }
    if (path.find("amg/") != std::string::npos) {
      amg_s = std::max(amg_s, seconds);
    }
    if (path.find("coupler/") != std::string::npos) {
      coupler_s = std::max(coupler_s, seconds);
    }
    if (path.find("simpic/") != std::string::npos) {
      simpic_s = std::max(simpic_s, seconds);
    }
    if (kind == "comm") {
      saw_comm = true;
      EXPECT_NE(path.find("coupler/exchange"), std::string::npos);
    }
  }
  EXPECT_GE(sparse_s, 0.0) << "no sparse region in JSON report";
  EXPECT_GE(amg_s, 0.0) << "no amg region in JSON report";
  EXPECT_GE(coupler_s, 0.0) << "no coupler region in JSON report";
  EXPECT_GE(simpic_s, 0.0) << "no simpic region in JSON report";
  EXPECT_TRUE(saw_comm) << "no comm-kind region in JSON report";

  const testing::JsonValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_TRUE(counters->is_array());
  bool saw_cycles = false;
  bool saw_particles = false;
  for (const testing::JsonValue& c : counters->items) {
    if (c.find("name")->str == "amg/solve_cycles") {
      saw_cycles = c.find("value")->number >= 1.0;
    }
    if (c.find("name")->str == "simpic/particles_pushed") {
      saw_particles = c.find("value")->number >= 1.0;
    }
  }
  EXPECT_TRUE(saw_cycles);
  EXPECT_TRUE(saw_particles);
}

TEST_F(MetricsTest, ChromeTraceParsesAndEscapesNames) {
  set_enabled(true);
  set_trace_events(true);
  const std::string weird = "test/we\"ird\\name\n";
  {
    ScopedTimer outer(weird);
    CPX_METRICS_SCOPE("test/child");
  }
  std::ostringstream os;
  write_chrome_trace(os);

  const testing::JsonValue doc = testing::parse_json(os.str());
  ASSERT_TRUE(doc.is_array());
  bool saw_dropped_meta = false;
  bool saw_weird = false;
  bool saw_child = false;
  for (const testing::JsonValue& e : doc.items) {
    const testing::JsonValue* name = e.find("name");
    ASSERT_NE(name, nullptr);
    if (name->str == "cpx_metrics_dropped") {
      saw_dropped_meta = true;
      EXPECT_EQ(e.find("args")->find("dropped")->number, 0.0);
    }
    if (name->str == weird) {
      saw_weird = true;  // parser round-trips the escaped name exactly
    }
    if (name->str == weird + ";test/child") {
      saw_child = true;
      EXPECT_GE(e.find("dur")->number, 0.0);
    }
  }
  EXPECT_TRUE(saw_dropped_meta);
  EXPECT_TRUE(saw_weird);
  EXPECT_TRUE(saw_child);
}

TEST_F(MetricsTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST_F(MetricsTest, ResetClearsEverything) {
  set_enabled(true);
  {
    CPX_METRICS_SCOPE("test/r");
    counter_add("test/rc", 3);
  }
  ASSERT_FALSE(snapshot().regions.empty());
  reset();
  const Snapshot snap = snapshot();
  EXPECT_TRUE(snap.regions.empty());
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_EQ(snap.trace_events, 0);
}

TEST_F(MetricsTest, ConfigureAppliesMetricsFlag) {
  const char* argv[] = {"prog", "--metrics=/tmp/cpx_metrics_test.json"};
  const Options opts = Options::parse(2, argv);
  EXPECT_TRUE(configure(opts));
  EXPECT_TRUE(enabled());
  EXPECT_EQ(output_path(), "/tmp/cpx_metrics_test.json");
}

TEST_F(MetricsTest, ConfigureRejectsEmptyMetricsPath) {
  const char* argv[] = {"prog", "--metrics="};
  const Options opts = Options::parse(2, argv);
  EXPECT_THROW(configure(opts), CheckError);
}

TEST_F(MetricsTest, SnapshotHelpersMatchAndSum) {
  set_enabled(true);
  {
    CPX_METRICS_SCOPE("test/a");
  }
  {
    CPX_METRICS_SCOPE("test/a");
    CPX_METRICS_SCOPE("test/b");
  }
  const Snapshot snap = snapshot();
  EXPECT_EQ(snap.find("test/a")->calls, 2);
  const double total = snap.seconds_matching("test/");
  EXPECT_GE(total, snap.find("test/a")->seconds);
  EXPECT_EQ(snap.counter("test/never_set"), 0);
}

}  // namespace
}  // namespace cpx::support::metrics
