// Tests for the thermal-casing substrate (§VI extension): physical
// properties of the implicit conduction solver (energy conservation,
// maximum principle, equilibration, steady states with Dirichlet walls and
// sources) and the performance instance's scaling behaviour.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "mesh/mesh.hpp"
#include "perfmodel/sweep.hpp"
#include "sim/cluster.hpp"
#include "support/check.hpp"
#include "thermal/instance.hpp"
#include "thermal/solver.hpp"

namespace cpx::thermal {
namespace {

TEST(ThermalSolver, UniformTemperatureIsSteady) {
  const mesh::UnstructuredMesh m = mesh::make_box_mesh(6, 6, 6);
  ThermalSolver solver(m, {});
  solver.set_uniform(300.0);
  solver.run(10);
  for (double t : solver.temperature()) {
    EXPECT_NEAR(t, 300.0, 1e-8);
  }
}

TEST(ThermalSolver, EnergyConservedWithoutSourcesOrWalls) {
  // Pure conduction with no Dirichlet cells: implicit Euler conserves
  // total thermal energy exactly (row sums of K are zero).
  const mesh::UnstructuredMesh m = mesh::make_box_mesh(5, 5, 5);
  ThermalSolver solver(m, {});
  solver.set_uniform(100.0);
  solver.set_cell(31, 500.0);  // hot spot
  const double e0 = solver.total_energy();
  solver.run(20);
  EXPECT_NEAR(solver.total_energy(), e0, 1e-6 * e0);
}

TEST(ThermalSolver, MaximumPrinciple) {
  const mesh::UnstructuredMesh m = mesh::make_box_mesh(5, 5, 5);
  ThermalSolver solver(m, {});
  solver.set_uniform(100.0);
  solver.set_cell(10, 900.0);
  solver.set_cell(60, 10.0);
  solver.run(30);
  for (double t : solver.temperature()) {
    EXPECT_GE(t, 10.0 - 1e-9);
    EXPECT_LE(t, 900.0 + 1e-9);
  }
}

TEST(ThermalSolver, HotSpotEquilibrates) {
  const mesh::UnstructuredMesh m = mesh::make_box_mesh(6, 6, 6);
  ThermalOptions opt;
  opt.dt = 1.0;
  ThermalSolver solver(m, opt);
  solver.set_uniform(0.0);
  solver.set_cell(0, 216.0);
  solver.run(400);
  // All energy spreads evenly: mean = 216/216 = 1 per unit-volume cell.
  for (double t : solver.temperature()) {
    EXPECT_NEAR(t, 1.0, 0.05);
  }
}

TEST(ThermalSolver, DirichletWallDrivesSteadyGradient) {
  // 1-D rod: x=0 wall hot, x=end wall cold -> linear steady profile.
  const mesh::UnstructuredMesh m = mesh::make_box_mesh(20, 1, 1);
  ThermalOptions opt;
  opt.dt = 10.0;
  ThermalSolver solver(m, opt);
  solver.set_uniform(0.0);
  solver.set_cell(0, 100.0);
  solver.fix_cell(0);
  solver.set_cell(19, 0.0);
  solver.fix_cell(19);
  const int steps = solver.solve_steady(1e-8, 500);
  EXPECT_LE(steps, 500);
  const auto& t = solver.temperature();
  // Linear in cell index between the pinned ends.
  for (int i = 1; i < 19; ++i) {
    const double expected = 100.0 * (19.0 - i) / 19.0;
    EXPECT_NEAR(t[static_cast<std::size_t>(i)], expected, 1.5)
        << "cell " << i;
  }
  // Monotone decreasing along the rod.
  for (int i = 0; i < 19; ++i) {
    EXPECT_GE(t[static_cast<std::size_t>(i)],
              t[static_cast<std::size_t>(i) + 1] - 1e-9);
  }
}

TEST(ThermalSolver, SourceBalancesSinkAtSteadyState) {
  const mesh::UnstructuredMesh m = mesh::make_box_mesh(8, 8, 1);
  ThermalOptions opt;
  opt.dt = 5.0;
  ThermalSolver solver(m, opt);
  solver.set_uniform(0.0);
  solver.fix_cell(0);  // heat sink at T = 0
  solver.set_source(63, 2.0);
  const int steps = solver.solve_steady(1e-9, 1000);
  EXPECT_LE(steps, 1000);
  // With a source and a sink, the source cell is the hottest.
  const auto& t = solver.temperature();
  const double hottest = *std::max_element(t.begin(), t.end());
  EXPECT_DOUBLE_EQ(hottest, t[63]);
  EXPECT_GT(hottest, 0.0);
}

TEST(ThermalSolver, StepReportsCgIterations) {
  const mesh::UnstructuredMesh m = mesh::make_box_mesh(8, 8, 8);
  ThermalSolver solver(m, {});
  solver.set_uniform(1.0);
  solver.set_cell(100, 10.0);
  const int iters = solver.step();
  EXPECT_GE(iters, 1);
  EXPECT_LT(iters, 100);  // AMG-preconditioned CG converges fast
}

TEST(ThermalInstance, ScalesWellAtModerateCoreCounts) {
  const auto machine = sim::MachineModel::archer2();
  const std::vector<int> cores = {100, 400, 1600};
  const auto pts = perfmodel::measure_scaling(
      [](sim::RankRange r) {
        return std::make_unique<Instance>("casing", 40'000'000, r);
      },
      machine, cores, 2);
  const double pe = (pts[0].seconds * 100.0) / (pts[2].seconds * 1600.0);
  EXPECT_GT(pe, 0.5);
  EXPECT_LE(pe, 1.01);
}

TEST(ThermalInstance, CollectivesDegradeScalingEventually) {
  const auto machine = sim::MachineModel::archer2();
  const std::vector<int> cores = {100, 12800};
  const auto pts = perfmodel::measure_scaling(
      [](sim::RankRange r) {
        return std::make_unique<Instance>("casing", 40'000'000, r);
      },
      machine, cores, 2);
  const double pe = (pts[0].seconds * 100.0) / (pts[1].seconds * 12800.0);
  EXPECT_LT(pe, 0.75);  // per-iteration allreduces bite at high p
}

TEST(ThermalInstance, ProfileHasSpmvAndDotRegions) {
  sim::Cluster cluster(sim::MachineModel::archer2(), 64);
  Instance inst("casing", 10'000'000, {0, 64});
  inst.step(cluster);
  EXPECT_GE(cluster.profile().find_region("casing/spmv"), 0);
  EXPECT_GE(cluster.profile().find_region("casing/dot"), 0);
  EXPECT_GT(cluster.max_clock(), 0.0);
}

TEST(ThermalSolver, RejectsBadInputs) {
  const mesh::UnstructuredMesh m = mesh::make_box_mesh(3, 3, 3);
  ThermalOptions bad;
  bad.dt = 0.0;
  EXPECT_THROW(ThermalSolver(m, bad), CheckError);
  ThermalSolver ok(m, {});
  EXPECT_THROW(ok.set_cell(999, 1.0), CheckError);
  EXPECT_THROW(ok.fix_cell(-1), CheckError);
}

}  // namespace
}  // namespace cpx::thermal
