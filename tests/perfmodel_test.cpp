// Tests for the empirical performance model: curve fitting (including the
// serial p-term that drives SIMPIC's optimum), benchmark sweeps, and
// Algorithm 1's greedy rank distribution.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>

#include "json_parse.hpp"

#include "mgcfd/instance.hpp"
#include "perfmodel/allocator.hpp"
#include "perfmodel/curve.hpp"
#include "perfmodel/persistence.hpp"
#include "perfmodel/roofline.hpp"
#include "perfmodel/sweep.hpp"
#include "simpic/instance.hpp"
#include "simpic/stc.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace cpx::perfmodel {
namespace {

std::vector<ScalingPoint> synthetic_points(double a, double b, double c,
                                           double d) {
  std::vector<ScalingPoint> pts;
  for (double p = 64; p <= 40000; p *= 1.7) {
    pts.push_back({p, a / p + b + c * std::log2(p) + d * p});
  }
  return pts;
}

TEST(ScalingCurve, RecoversAllFourTerms) {
  const auto pts = synthetic_points(5000.0, 0.02, 0.005, 3e-5);
  const ScalingCurve curve = ScalingCurve::fit(pts);
  EXPECT_LT(curve.max_fit_error(), 1e-6);
  EXPECT_NEAR(curve.coefficients()[0], 5000.0, 1.0);
  EXPECT_NEAR(curve.coefficients()[3], 3e-5, 1e-8);
}

TEST(ScalingCurve, PureParallelWork) {
  const auto pts = synthetic_points(1000.0, 0.0, 0.0, 0.0);
  const ScalingCurve curve = ScalingCurve::fit(pts);
  EXPECT_LT(curve.max_fit_error(), 1e-8);
  EXPECT_NEAR(curve.time_at(12345.0), 1000.0 / 12345.0, 1e-7);
}

TEST(ScalingCurve, SerialTermCreatesOptimum) {
  // a/p + d*p has a minimum at sqrt(a/d); the fitted curve must reproduce
  // it so Alg 1 stops allocating there (SIMPIC's behaviour).
  const double a = 10000.0;
  const double d = 7e-5;
  const auto pts = synthetic_points(a, 0.0, 0.0, d);
  const ScalingCurve curve = ScalingCurve::fit(pts);
  const double p_star = std::sqrt(a / d);
  EXPECT_LT(curve.time_at(p_star), curve.time_at(p_star / 3.0));
  EXPECT_LT(curve.time_at(p_star), curve.time_at(p_star * 3.0));
}

TEST(ScalingCurve, CoefficientsNeverNegative) {
  // Noisy decreasing data must not produce a curve that dips negative.
  std::vector<ScalingPoint> pts;
  Rng rng(4);
  for (double p = 100; p < 10000; p *= 2) {
    pts.push_back({p, (500.0 / p) * rng.uniform(0.9, 1.1)});
  }
  const ScalingCurve curve = ScalingCurve::fit(pts);
  for (double coef : curve.coefficients()) {
    EXPECT_GE(coef, 0.0);
  }
  for (double p = 50; p < 1e6; p *= 3) {
    EXPECT_GT(curve.time_at(p), 0.0);
  }
}

TEST(ScalingCurve, EfficiencyAtBaseIsOne) {
  const auto pts = synthetic_points(2000.0, 0.1, 0.0, 0.0);
  const ScalingCurve curve = ScalingCurve::fit(pts);
  EXPECT_NEAR(curve.efficiency_at(100.0, 100.0), 1.0, 1e-12);
  EXPECT_LT(curve.efficiency_at(10000.0, 100.0), 1.0);
}

TEST(ScalingCurve, RejectsBadInput) {
  std::vector<ScalingPoint> one = {{100.0, 1.0}};
  EXPECT_THROW(ScalingCurve::fit(one), CheckError);
  std::vector<ScalingPoint> bad = {{100.0, 1.0}, {200.0, -1.0}};
  EXPECT_THROW(ScalingCurve::fit(bad), CheckError);
}

TEST(Sweep, MeasuresMgcfdScaling) {
  const std::vector<int> cores = {128, 512, 2048};
  const auto pts = measure_scaling(
      [](sim::RankRange r) {
        return std::make_unique<mgcfd::Instance>("m", 24'000'000, r);
      },
      sim::MachineModel::archer2(), cores, 2);
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_GT(pts[0].seconds, pts[2].seconds);
  const ScalingCurve curve = ScalingCurve::fit(pts);
  EXPECT_LT(curve.max_fit_error(), 0.1);
}

TEST(Sweep, FitPredictsHeldOutPoint) {
  const std::vector<int> cores = {100, 200, 400, 800, 1600, 3200};
  const auto factory = [](sim::RankRange r) -> std::unique_ptr<sim::App> {
    return std::make_unique<simpic::Instance>("s", simpic::base_stc_84m(),
                                              r);
  };
  const auto machine = sim::MachineModel::archer2();
  const ScalingCurve curve = fit_scaling(factory, machine, cores, 2);
  // Held-out measurement at 1131 cores.
  const std::vector<int> held = {1131};
  const auto pt = measure_scaling(factory, machine, held, 2);
  EXPECT_NEAR(curve.time_at(1131.0), pt[0].seconds, 0.1 * pt[0].seconds);
}

TEST(ScalingCurve, LoocvNearZeroOnExactData) {
  const auto pts = synthetic_points(3000.0, 0.05, 0.0, 2e-5);
  EXPECT_LT(loocv_relative_error(pts), 1e-6);
}

TEST(ScalingCurve, LoocvDetectsModelMismatch) {
  // Data outside the curve family (a p^0.5 term) must show up as held-out
  // error even though the in-sample fit may look acceptable.
  std::vector<ScalingPoint> pts;
  for (double p = 64; p <= 40000; p *= 2.1) {
    pts.push_back({p, 2000.0 / p + 0.01 * std::sqrt(p)});
  }
  EXPECT_GT(loocv_relative_error(pts), 0.01);
  EXPECT_THROW(
      loocv_relative_error(std::vector<ScalingPoint>{{1, 1}, {2, 1}}),
      CheckError);
}

// --- Algorithm 1 ---

InstanceModel flat_model(const std::string& name, double a, double d = 0.0,
                         int min_ranks = 1) {
  std::vector<ScalingPoint> pts;
  for (double p = 16; p <= 50000; p *= 2) {
    pts.push_back({p, a / p + d * p + 1e-6});
  }
  InstanceModel m;
  m.name = name;
  m.curve = ScalingCurve::fit(pts);
  m.min_ranks = min_ranks;
  return m;
}

TEST(Allocator, BalancesTwoEqualApps) {
  std::vector<InstanceModel> apps = {flat_model("a", 1000.0),
                                     flat_model("b", 1000.0)};
  const Allocation alloc = distribute_ranks(apps, {}, 1000);
  EXPECT_NEAR(alloc.app_ranks[0], alloc.app_ranks[1], 1);
  EXPECT_EQ(alloc.app_ranks[0] + alloc.app_ranks[1], 1000);
}

TEST(Allocator, GivesMoreToBiggerApp) {
  std::vector<InstanceModel> apps = {flat_model("small", 100.0),
                                     flat_model("big", 900.0)};
  const Allocation alloc = distribute_ranks(apps, {}, 1000);
  // Perfect-scaling apps balance when ranks are proportional to work.
  EXPECT_NEAR(alloc.app_ranks[1], 900, 20);
  EXPECT_NEAR(alloc.app_time, apps[0].time(alloc.app_ranks[0]), 1.0);
}

TEST(Allocator, ScaleMultipliesRuntime) {
  InstanceModel base = flat_model("x", 100.0);
  InstanceModel scaled = base;
  scaled.scale = 30.0;  // 24M mesh, 250 steps vs 8M base, 25 steps
  EXPECT_NEAR(scaled.time(100) / base.time(100), 30.0, 1e-9);
}

TEST(Allocator, StopsAtSerialOptimum) {
  // An app with a strong serial term must not be fed past its optimum.
  std::vector<InstanceModel> apps = {flat_model("pipeline", 10000.0, 1e-4)};
  const Allocation alloc = distribute_ranks(apps, {}, 50000);
  const double p_star = std::sqrt(10000.0 / 1e-4);  // = 10000
  EXPECT_NEAR(alloc.app_ranks[0], p_star, 0.15 * p_star);
}

TEST(Allocator, RespectsMinimaAndCaps) {
  InstanceModel capped = flat_model("capped", 1000.0);
  capped.max_ranks = 50;
  InstanceModel floored = flat_model("floored", 1.0);
  floored.min_ranks = 100;
  std::vector<InstanceModel> apps = {capped, floored};
  const Allocation alloc = distribute_ranks(apps, {}, 1000);
  EXPECT_LE(alloc.app_ranks[0], 50);
  EXPECT_GE(alloc.app_ranks[1], 100);
}

TEST(Allocator, PredictedRuntimeIsMaxAppPlusMaxCu) {
  std::vector<InstanceModel> apps = {flat_model("a", 500.0),
                                     flat_model("b", 100.0)};
  std::vector<InstanceModel> cus = {flat_model("cu", 10.0)};
  const Allocation alloc = distribute_ranks(apps, cus, 600);
  EXPECT_NEAR(alloc.predicted_runtime, alloc.app_time + alloc.cu_time,
              1e-12);
  EXPECT_GT(alloc.app_time, alloc.cu_time);
}

TEST(Allocator, CouplerGetsRanksWhenItDominates) {
  std::vector<InstanceModel> apps = {flat_model("app", 10.0)};
  std::vector<InstanceModel> cus = {flat_model("fat_cu", 1000.0)};
  const Allocation alloc = distribute_ranks(apps, cus, 500);
  EXPECT_GT(alloc.cu_ranks[0], alloc.app_ranks[0]);
}

TEST(Allocator, ThrowsWhenBudgetBelowMinima) {
  InstanceModel m = flat_model("m", 10.0);
  m.min_ranks = 100;
  std::vector<InstanceModel> apps = {m, m};
  EXPECT_THROW(distribute_ranks(apps, {}, 150), CheckError);
}

TEST(Persistence, RoundTripsModels) {
  ModelSet models;
  InstanceModel app = flat_model("mgcfd_24m", 123.456, 7.8e-5, 100);
  app.scale = 2.5e4;
  app.max_ranks = 12345;
  models.apps.push_back(app);
  InstanceModel cu = flat_model("cu_a_b", 0.125);
  models.cus.push_back(cu);

  std::ostringstream out;
  save_models(out, models);
  std::istringstream in(out.str());
  const ModelSet loaded = load_models(in);

  ASSERT_EQ(loaded.apps.size(), 1u);
  ASSERT_EQ(loaded.cus.size(), 1u);
  EXPECT_EQ(loaded.apps[0].name, "mgcfd_24m");
  EXPECT_EQ(loaded.apps[0].min_ranks, 100);
  EXPECT_EQ(loaded.apps[0].max_ranks, 12345);
  EXPECT_DOUBLE_EQ(loaded.apps[0].scale, 2.5e4);
  // The curve evaluates identically everywhere we care about.
  for (double p : {1.0, 64.0, 1000.0, 40000.0}) {
    EXPECT_DOUBLE_EQ(loaded.apps[0].curve.time_at(p),
                     models.apps[0].curve.time_at(p))
        << "p=" << p;
    EXPECT_DOUBLE_EQ(loaded.cus[0].curve.time_at(p),
                     models.cus[0].curve.time_at(p));
  }
}

TEST(Persistence, RejectsMalformedFiles) {
  const char* bad[] = {
      "app x scale=1 min=1 max=2 a=1 b=0 c=0",       // missing header + d
      "# cpx-perfmodel v1\nbogus x",                 // bad tag
      "# cpx-perfmodel v1\napp x scale=oops min=1 max=2 a=1 b=0 c=0 d=0",
      "",                                             // no header
  };
  for (const char* text : bad) {
    std::istringstream in(text);
    EXPECT_THROW(load_models(in), CheckError) << text;
  }
}

TEST(Persistence, SaveLoadSaveIsByteIdentical) {
  // Full round-trip stability: what save emits, load reconstructs exactly,
  // and a second save reproduces byte for byte.
  ModelSet models;
  InstanceModel app = flat_model("mgcfd_150m", 321.5, 3.2e-5, 16);
  app.scale = 1.75e3;
  app.max_ranks = 4096;
  models.apps.push_back(app);
  models.cus.push_back(flat_model("cu_row1_row2", 0.5));

  std::ostringstream first;
  save_models(first, models);
  std::istringstream in(first.str());
  const ModelSet loaded = load_models(in);
  std::ostringstream second;
  save_models(second, loaded);
  EXPECT_EQ(first.str(), second.str());
}

TEST(Persistence, SaveRejectsNamesThatWouldNotRoundTrip) {
  // The format is whitespace-delimited: a name with whitespace (or none at
  // all) saves "fine" and then fails to load. Refuse at save time.
  for (const char* name : {"", "two words", "tab\tname", "new\nline"}) {
    ModelSet models;
    InstanceModel m = flat_model("ok", 1.0);
    m.name = name;
    models.apps.push_back(m);
    std::ostringstream out;
    EXPECT_THROW(save_models(out, models), CheckError) << "name='" << name
                                                       << "'";
  }
}

TEST(Persistence, RejectsInvalidFieldValues) {
  const char* bad[] = {
      // min > max.
      "# cpx-perfmodel v1\napp x scale=1 min=5 max=2 a=1 b=0 c=0 d=0",
      // Non-positive scale.
      "# cpx-perfmodel v1\napp x scale=0 min=1 max=2 a=1 b=0 c=0 d=0",
      "# cpx-perfmodel v1\napp x scale=-3 min=1 max=2 a=1 b=0 c=0 d=0",
      // Rank bounds must be positive integers.
      "# cpx-perfmodel v1\napp x scale=1 min=0 max=2 a=1 b=0 c=0 d=0",
      "# cpx-perfmodel v1\napp x scale=1 min=-4 max=2 a=1 b=0 c=0 d=0",
      "# cpx-perfmodel v1\napp x scale=1 min=1.5 max=2 a=1 b=0 c=0 d=0",
      "# cpx-perfmodel v1\napp x scale=1 min=1 max=2.5 a=1 b=0 c=0 d=0",
      // Trailing junk inside and after the numbers.
      "# cpx-perfmodel v1\napp x scale=1x min=1 max=2 a=1 b=0 c=0 d=0",
      "# cpx-perfmodel v1\napp x scale=1 min=1 max=2 a=1 b=0 c=0 d=0 extra",
      // Non-finite values.
      "# cpx-perfmodel v1\napp x scale=inf min=1 max=2 a=1 b=0 c=0 d=0",
      "# cpx-perfmodel v1\napp x scale=nan min=1 max=2 a=1 b=0 c=0 d=0",
      "# cpx-perfmodel v1\napp x scale=1e999 min=1 max=2 a=1 b=0 c=0 d=0",
      // Empty value.
      "# cpx-perfmodel v1\napp x scale= min=1 max=2 a=1 b=0 c=0 d=0",
  };
  for (const char* text : bad) {
    std::istringstream in(text);
    EXPECT_THROW(load_models(in), CheckError) << text;
  }
}

TEST(Persistence, FromCoefficientsRejectsNegatives) {
  EXPECT_THROW(ScalingCurve::from_coefficients({1.0, -0.5, 0.0, 0.0}),
               CheckError);
  EXPECT_THROW(ScalingCurve::from_coefficients({1.0, 2.0}), CheckError);
}

TEST(Allocator, MakeComputesSizeAndIterScale) {
  // The paper's example: 24M mesh / 250 steps vs the 8M / 25-step base
  // case gives a 30x initial runtime.
  const InstanceModel m = InstanceModel::make(
      "mgcfd24", flat_model("base", 10.0).curve, 8e6, 25.0, 24e6, 250.0);
  EXPECT_NEAR(m.scale, 30.0, 1e-12);
}

// --- Roofline accounting ---

TEST(Roofline, RidgeAndAttainableFollowTheModel) {
  const RooflineMachine m{40.0, 20.0};  // ridge at 2 flop/byte
  EXPECT_NEAR(m.ridge_intensity(), 2.0, 1e-15);
  EXPECT_NEAR(m.attainable_gflops(0.5), 10.0, 1e-12);  // bandwidth slope
  EXPECT_NEAR(m.attainable_gflops(8.0), 40.0, 1e-12);  // compute ceiling
}

TEST(Roofline, ClassifyDerivesCoordinates) {
  const RooflineMachine m{40.0, 20.0};
  // 2e9 flops over 16e9 bytes in 1 s: I = 0.125, memory-bound, achieving
  // 2 GFLOP/s of an attainable 2.5.
  const KernelSample s{"spmv", 2'000'000'000, 16'000'000'000, 1.0};
  const RooflinePoint p = classify(s, m);
  EXPECT_EQ(p.name, "spmv");
  EXPECT_NEAR(p.intensity, 0.125, 1e-15);
  EXPECT_NEAR(p.gflops, 2.0, 1e-12);
  EXPECT_NEAR(p.gbs, 16.0, 1e-12);
  EXPECT_NEAR(p.ceiling_gflops, 2.5, 1e-12);
  EXPECT_NEAR(p.fraction_of_roof, 0.8, 1e-12);
  EXPECT_TRUE(p.memory_bound);
}

TEST(Roofline, ClassifyZeroWorkYieldsZeroesNotNans) {
  const RooflineMachine m{40.0, 20.0};
  const RooflinePoint p = classify(KernelSample{"empty", 0, 0, 0.0}, m);
  EXPECT_EQ(p.intensity, 0.0);
  EXPECT_EQ(p.gflops, 0.0);
  EXPECT_EQ(p.gbs, 0.0);
  EXPECT_EQ(p.fraction_of_roof, 0.0);
}

TEST(Roofline, PredictedSecondsIsTheSlowerCeiling) {
  const RooflineMachine m{40.0, 20.0};
  // Memory-bound: 20 GB at 20 GB/s = 1 s, flops would take 0.025 s.
  EXPECT_NEAR(roofline_seconds(1'000'000'000, 20'000'000'000, m), 1.0,
              1e-12);
  // Compute-bound: 80 Gflop at 40 GFLOP/s = 2 s.
  EXPECT_NEAR(roofline_seconds(80'000'000'000, 1'000'000'000, m), 2.0,
              1e-12);
  EXPECT_THROW(roofline_seconds(1, 1, RooflineMachine{}), CheckError);
}

TEST(Roofline, JsonDocumentIsValidAndCarriesEveryKernel) {
  const RooflineMachine m{40.0, 20.0};
  const std::vector<KernelSample> samples = {
      {"blas1/dot", 2000, 16000, 1e-6},
      {"sparse/spmv", 9000, 90000, 2e-6},
  };
  std::ostringstream os;
  write_roofline_json(os, m, samples);
  const testing::JsonValue doc = testing::parse_json(os.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("schema")->str, "cpx-roofline-v1");
  const testing::JsonValue* machine = doc.find("machine");
  ASSERT_NE(machine, nullptr);
  EXPECT_NEAR(machine->find("peak_gflops")->number, 40.0, 1e-12);
  EXPECT_NEAR(machine->find("ridge_intensity")->number, 2.0, 1e-12);
  const testing::JsonValue* kernels = doc.find("kernels");
  ASSERT_NE(kernels, nullptr);
  ASSERT_EQ(kernels->items.size(), 2u);
  const testing::JsonValue& dot = kernels->items[0];
  EXPECT_EQ(dot.find("name")->str, "blas1/dot");
  EXPECT_NEAR(dot.find("intensity")->number, 0.125, 1e-12);
  EXPECT_NEAR(dot.find("gflops")->number, 2.0, 1e-9);
  EXPECT_TRUE(dot.find("memory_bound")->boolean);
}

}  // namespace
}  // namespace cpx::perfmodel
