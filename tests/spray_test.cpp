// Tests for the spray module: injector-profile sampling, load statistics
// under the three strategies of §IV-A, migration accounting, and the
// analytic hot-block model used by the pressure surrogate.

#include <gtest/gtest.h>

#include <numeric>

#include "sim/cluster.hpp"
#include "spray/cloud.hpp"
#include "spray/instance.hpp"
#include "support/check.hpp"

namespace cpx::spray {
namespace {

CloudOptions default_options() {
  CloudOptions o;
  o.num_particles = 50'000;
  o.num_ranks = 16;
  o.injector_length = 0.08;
  return o;
}

TEST(Cloud, ParticlesConcentrateNearInjector) {
  Cloud cloud(default_options());
  const auto counts = cloud.spatial_counts();
  // First block (injector) holds far more than the last.
  EXPECT_GT(counts.front(), 20 * std::max<std::int64_t>(counts.back(), 1));
  // All particles accounted for.
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::int64_t{0}),
            cloud.num_particles());
}

TEST(Cloud, SpatialImbalanceIsSevere) {
  Cloud cloud(default_options());
  const LoadStats s = cloud.load_stats(Strategy::kSpatial);
  EXPECT_GT(s.imbalance, 5.0);
}

TEST(Cloud, BalancedStrategyIsFlat) {
  Cloud cloud(default_options());
  const LoadStats s = cloud.load_stats(Strategy::kBalanced);
  EXPECT_NEAR(s.imbalance, 1.0, 1e-3);
  EXPECT_EQ(s.total, cloud.num_particles());
}

TEST(Cloud, AsyncTaskUsesDedicatedWorkers) {
  Cloud cloud(default_options());
  const auto counts = cloud.counts(Strategy::kAsyncTask, 4);
  // Work on the 4 spray ranks, none on the solver ranks.
  for (int r = 0; r < 4; ++r) {
    EXPECT_GT(counts[static_cast<std::size_t>(r)], 0);
  }
  for (int r = 4; r < 16; ++r) {
    EXPECT_EQ(counts[static_cast<std::size_t>(r)], 0);
  }
  const LoadStats s = cloud.load_stats(Strategy::kAsyncTask, 4);
  EXPECT_NEAR(s.imbalance, 1.0, 1e-2);
}

TEST(Cloud, StepKeepsPopulationSteady) {
  CloudOptions o = default_options();
  Cloud cloud(o);
  const auto n0 = cloud.num_particles();
  for (int s = 0; s < 50; ++s) {
    cloud.step();
  }
  EXPECT_EQ(cloud.num_particles(), n0);  // evaporation replaced by injection
}

TEST(Cloud, StepReportsMigrations) {
  Cloud cloud(default_options());
  cloud.step();
  EXPECT_GT(cloud.last_migrations(), 0);
  EXPECT_LT(cloud.last_migrations(), cloud.num_particles());
}

TEST(Cloud, DeterministicFromSeed) {
  Cloud a(default_options());
  Cloud b(default_options());
  a.step();
  b.step();
  EXPECT_EQ(a.spatial_counts(), b.spatial_counts());
}

TEST(HotBlock, MatchesSampledDistribution) {
  // The analytic hot-block fraction must agree with the sampled cloud.
  CloudOptions o = default_options();
  o.num_particles = 200'000;
  Cloud cloud(o);
  const auto counts = cloud.spatial_counts();
  const double sampled = static_cast<double>(counts.front()) /
                         static_cast<double>(cloud.num_particles());
  const double analytic = hot_block_fraction(o.injector_length, o.num_ranks);
  EXPECT_NEAR(analytic, sampled, 0.05 * analytic + 0.005);
}

TEST(HotBlock, ShrinksWithMoreRanksButStaysAboveMean) {
  const double f16 = hot_block_fraction(0.08, 16);
  const double f256 = hot_block_fraction(0.08, 256);
  EXPECT_GT(f16, f256);
  // Hot block always holds more than the 1/p mean share.
  EXPECT_GT(f256, 1.0 / 256.0);
  // Single rank holds everything.
  EXPECT_DOUBLE_EQ(hot_block_fraction(0.08, 1), 1.0);
}

TEST(HotBlock, TighterInjectorIsHotter) {
  EXPECT_GT(hot_block_fraction(0.01, 64), hot_block_fraction(0.2, 64));
}

TEST(Instance, BalancedCollectiveGrowsWithRanks) {
  // The mechanism of §IV-A: the balanced strategy's all-to-all makes its
  // per-step cost *increase* with rank count once latency dominates.
  const auto step_time = [](spray::Strategy strategy, int ranks) {
    sim::Cluster cluster(sim::MachineModel::archer2(), ranks);
    InstanceConfig cfg;
    cfg.strategy = strategy;
    Instance inst("s", cfg, {0, ranks});
    inst.step(cluster);
    const double t0 = cluster.max_clock();
    inst.step(cluster);
    return cluster.max_clock() - t0;
  };
  EXPECT_GT(step_time(Strategy::kBalanced, 16384),
            2.0 * step_time(Strategy::kBalanced, 1024));
  // The async strategy keeps scaling down instead.
  EXPECT_LT(step_time(Strategy::kAsyncTask, 16384),
            step_time(Strategy::kAsyncTask, 1024));
}

TEST(Instance, SpatialIsHotRankBound) {
  sim::Cluster cluster(sim::MachineModel::archer2(), 512);
  InstanceConfig cfg;
  cfg.strategy = Strategy::kSpatial;
  Instance inst("s", cfg, {0, 512});
  inst.step(cluster);
  // The injector rank's busy time dominates the instance's step.
  const sim::RegionId push = cluster.profile().find_region("s/push");
  ASSERT_GE(push, 0);
  const auto hot = cluster.profile().rank_region(0, push);
  const auto cold = cluster.profile().rank_region(256, push);
  EXPECT_GT(hot.compute, 5.0 * cold.compute);
}

TEST(Instance, AsyncOnlyLoadsTheSprayRanks) {
  sim::Cluster cluster(sim::MachineModel::archer2(), 400);
  InstanceConfig cfg;
  cfg.strategy = Strategy::kAsyncTask;
  cfg.spray_rank_fraction = 0.25;
  Instance inst("s", cfg, {0, 400});
  inst.step(cluster);
  const sim::RegionId push = cluster.profile().find_region("s/push");
  ASSERT_GE(push, 0);
  EXPECT_GT(cluster.profile().rank_region(50, push).compute, 0.0);
  EXPECT_EQ(cluster.profile().rank_region(399, push).compute, 0.0);
}

TEST(Cloud, RejectsBadOptions) {
  CloudOptions o = default_options();
  o.injector_length = 0.0;
  EXPECT_THROW(Cloud{o}, CheckError);
  CloudOptions o2 = default_options();
  o2.num_ranks = 0;
  EXPECT_THROW(Cloud{o2}, CheckError);
  Cloud ok(default_options());
  EXPECT_THROW(ok.counts(Strategy::kAsyncTask, 0), CheckError);
}

}  // namespace
}  // namespace cpx::spray
