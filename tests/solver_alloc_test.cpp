// Allocation-count regression for the allocation-free solve path: after a
// warm-up solve sizes every workspace (PcgWorkspace, AMG per-level scratch,
// SpgemmPlan lane accumulators, coarse Cholesky buffers), steady-state
// PCG iterations, multigrid cycles, and numeric re-setup must perform ZERO
// heap allocations. Enforced by replacing global operator new/delete with
// counting versions — any vector growth or hidden temporary inside the hot
// loops shows up as a nonzero delta.
//
// This file must stay a standalone test binary: the global operator
// new/delete replacement below applies to the whole process.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

#include "amg/hierarchy.hpp"
#include "amg/pcg.hpp"
#include "comm/communicator.hpp"
#include "comm/exchange_plan.hpp"
#include "sim/cluster.hpp"
#include "sim/machine.hpp"
#include "sparse/generators.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace {

std::atomic<std::size_t> g_allocation_count{0};

void* counted_alloc(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, rounded ? rounded : align)) {
    return p;
  }
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace cpx::amg {
namespace {

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) {
    x = rng.uniform(-1.0, 1.0);
  }
  return v;
}

/// Allocations performed by fn().
template <typename Fn>
std::size_t allocations_during(Fn&& fn) {
  const std::size_t before =
      g_allocation_count.load(std::memory_order_relaxed);
  fn();
  return g_allocation_count.load(std::memory_order_relaxed) - before;
}

TEST(SolverAllocations, SteadyStatePcgAndCycleAllocateNothing) {
  const sparse::CsrMatrix a = sparse::laplacian_3d(12, 12, 12);
  const auto n = static_cast<std::size_t>(a.rows());
  const std::vector<double> b = random_vector(n, 1);
  std::vector<double> x(n, 0.0);

  AmgOptions opt;
  AmgHierarchy hierarchy(a, opt);
  const Preconditioner precond = make_amg_preconditioner(hierarchy);
  PcgWorkspace workspace;

  // Warm-up: sizes the PCG workspace and any lazily-sized solver scratch.
  PcgResult warm = pcg(a, x, b, 1e-8, 50, precond, workspace);
  ASSERT_TRUE(warm.converged);

  // Steady state: the same solve again must not touch the heap.
  std::fill(x.begin(), x.end(), 0.0);
  PcgResult res;
  const std::size_t pcg_allocs = allocations_during(
      [&] { res = pcg(a, x, b, 1e-8, 50, precond, workspace); });
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(pcg_allocs, 0u)
      << "steady-state PCG made " << pcg_allocs << " heap allocations";

  // A bare multigrid cycle on the pre-sized hierarchy is allocation-free
  // too (V, plus the W/K scratch paths are covered by their own sizing).
  const std::size_t cycle_allocs =
      allocations_during([&] { hierarchy.cycle(x, b); });
  EXPECT_EQ(cycle_allocs, 0u)
      << "steady-state cycle made " << cycle_allocs << " heap allocations";
}

TEST(SolverAllocations, SteadyStateResetValuesAllocatesNothing) {
  const sparse::CsrMatrix a = sparse::laplacian_3d(10, 10, 10);
  AmgOptions opt;
  AmgHierarchy hierarchy(a, opt);

  // First re-setup warms the SpGEMM plan lane accumulators and the dense
  // Cholesky staging buffers; after that, re-setup is allocation-free.
  hierarchy.reset_values(a);
  const std::size_t resetup_allocs =
      allocations_during([&] { hierarchy.reset_values(a); });
  EXPECT_EQ(resetup_allocs, 0u)
      << "steady-state reset_values made " << resetup_allocs
      << " heap allocations";
}

TEST(SolverAllocations, WAndKCyclesAllocateNothingAfterSetup) {
  const sparse::CsrMatrix a = sparse::laplacian_2d(32, 32);
  const auto n = static_cast<std::size_t>(a.rows());
  const std::vector<double> b = random_vector(n, 2);
  std::vector<double> x(n, 0.0);

  for (const CycleKind kind : {CycleKind::kW, CycleKind::kK}) {
    AmgOptions opt;
    opt.cycle = kind;
    AmgHierarchy hierarchy(a, opt);
    hierarchy.cycle(x, b);  // warm-up (scratch is pre-sized, but be safe)
    const std::size_t allocs =
        allocations_during([&] { hierarchy.cycle(x, b); });
    EXPECT_EQ(allocs, 0u) << "cycle kind "
                          << (kind == CycleKind::kW ? "W" : "K") << " made "
                          << allocs << " heap allocations";
  }
}

TEST(SolverAllocations, WarmSplitPhaseExchangeAllocatesNothing) {
  constexpr int kRanks = 8;
  constexpr std::int32_t kSlots = 6;
  auto comm = cpx::comm::Communicator::world(kRanks);
  cpx::comm::ExchangePlan plan;
  for (int r = 0; r < kRanks; ++r) {
    // Bidirectional ring: two channels per rank pair.
    const int next = (r + 1) % kRanks;
    plan.add_channel(r, next, {0, 1}, {kSlots - 2, kSlots - 1});
    plan.add_channel(next, r, {2, 3}, {kSlots - 4, kSlots - 3});
  }
  plan.finalize(sizeof(double));
  std::vector<std::vector<double>> data(
      kRanks, std::vector<double>(kSlots, 1.0));
  const auto rank_data = [&](cpx::comm::Rank r) {
    return std::as_writable_bytes(
        std::span<double>(data[static_cast<std::size_t>(r)]));
  };

  // Warm-up: sizes the plan staging buffers, the communicator's buffer
  // pool, and the transfer log's capacity.
  plan.execute(comm, rank_data);
  comm.clear_transfers();
  plan.begin(comm, rank_data);
  plan.finish(comm, rank_data);
  comm.clear_transfers();

  const std::size_t allocs = allocations_during([&] {
    for (int i = 0; i < 16; ++i) {
      plan.begin(comm, rank_data);
      plan.finish(comm, rank_data);
      comm.clear_transfers();
    }
  });
  EXPECT_EQ(allocs, 0u)
      << "warm split-phase exchange made " << allocs << " heap allocations";
}

TEST(SolverAllocations, WarmClusterOverlapWindowAllocatesNothing) {
  cpx::sim::Cluster cluster(cpx::sim::MachineModel::archer2(), 16);
  const auto region = cluster.region("overlap");
  std::vector<cpx::sim::Message> msgs;
  for (int r = 0; r < 16; ++r) {
    msgs.push_back({r, (r + 5) % 16, 4096});
  }

  // Warm-up: sizes the pending-exchange slot and its message storage.
  cluster.exchange_finish(cluster.exchange_begin(msgs, region));

  const std::size_t allocs = allocations_during([&] {
    for (int i = 0; i < 16; ++i) {
      const int h = cluster.exchange_begin(msgs, region);
      cluster.compute_seconds(0, 1e-6, region);
      cluster.exchange_finish(h);
      cluster.send_overlapped(0, 1, 64, cluster.clock(1), region);
    }
  });
  EXPECT_EQ(allocs, 0u)
      << "warm overlap window made " << allocs << " heap allocations";
}

// Regression for a gap the call-graph-aware analyzer (tools/cpxcheck rule
// `solve-alloc`) found and the per-file lint could not: parallel_reduce
// heap-allocated a fresh partials vector on every call once a range
// exceeded its 512-chunk stack buffer, i.e. every BLAS-1 reduction on a
// long-enough vector allocated on the solve path. The partials buffer is
// now persistent per-thread scratch: after one warm call, wide reductions
// are allocation-free.
TEST(SolverAllocations, WideParallelReduceAllocatesNothingWhenWarm) {
  constexpr std::int64_t kN = 1 << 20;
  constexpr std::int64_t kGrain = 256;  // ~4096 chunks >> 512 stack slots
  std::vector<double> v(static_cast<std::size_t>(kN), 0.5);

  const auto sum_chunks = [&](std::int64_t lo, std::int64_t hi) {
    double s = 0.0;
    for (std::int64_t i = lo; i < hi; ++i) {
      s += v[static_cast<std::size_t>(i)];
    }
    return s;
  };

  // Warm-up sizes the thread-local partials scratch.
  const double warm =
      support::parallel_reduce(0, kN, kGrain, 0.0, sum_chunks);
  EXPECT_DOUBLE_EQ(warm, 0.5 * static_cast<double>(kN));

  double total = 0.0;
  const std::size_t allocs = allocations_during([&] {
    for (int rep = 0; rep < 4; ++rep) {
      total = support::parallel_reduce(0, kN, kGrain, 0.0, sum_chunks);
    }
  });
  EXPECT_DOUBLE_EQ(total, 0.5 * static_cast<double>(kN));
  EXPECT_EQ(allocs, 0u)
      << "warm wide parallel_reduce made " << allocs << " heap allocations";
}

}  // namespace
}  // namespace cpx::amg
