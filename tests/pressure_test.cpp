// Tests for the pressure-solver surrogate: the Fig 5a profile anchors
// (component fractions and compute/comm splits at 2048 cores), the Fig 5b
// per-component parallel-efficiency ordering, mesh-size scaling, and the
// §IV optimisation effects.

#include <gtest/gtest.h>

#include <string>

#include "mesh/mesh.hpp"
#include "pressure/projection.hpp"
#include "pressure/surrogate.hpp"
#include "support/rng.hpp"
#include "sim/cluster.hpp"
#include "support/check.hpp"

namespace cpx::pressure {
namespace {

double total_of(const std::vector<ComponentTimes>& comps) {
  double t = 0.0;
  for (const auto& c : comps) {
    t += c.total();
  }
  return t;
}

const ComponentTimes& find(const std::vector<ComponentTimes>& comps,
                           const std::string& name) {
  for (const auto& c : comps) {
    if (c.name == name) {
      return c;
    }
  }
  throw CheckError("component not found: " + name);
}

TEST(Surrogate, Fig5aFractionsAt2048Cores) {
  Instance inst("p", Config::base_28m(), {0, 2048});
  const auto comps = inst.predict_components();
  const double total = total_of(comps);

  // Pressure field: 46% of runtime (25% compute / 21% MPI) in the paper.
  const auto& pf = find(comps, "pressure_field");
  EXPECT_NEAR(pf.total() / total, 0.46, 0.04);
  EXPECT_NEAR(pf.compute / total, 0.25, 0.04);
  EXPECT_NEAR(pf.comm / total, 0.21, 0.04);

  // Spray: next most time-consuming, ~96% of its own time in comm.
  const auto& spray = find(comps, "spray");
  EXPECT_GT(spray.total() / total, 0.15);
  EXPECT_GT(spray.comm / spray.total(), 0.9);

  // Velocity/scalars/turbulence "scale well" and are smaller.
  EXPECT_LT(find(comps, "momentum").total(), pf.total());
  EXPECT_LT(find(comps, "scalars").total(),
            find(comps, "momentum").total());
}

TEST(Surrogate, Fig5bComponentEfficiencyOrdering) {
  const auto pe = [](const std::string& comp, int cores) {
    Instance base("p", Config::base_28m(), {0, 128});
    Instance scaled("p", Config::base_28m(), {0, cores});
    const double t0 = find(base.predict_components(), comp).total();
    const double t1 = find(scaled.predict_components(), comp).total();
    return (t0 * 128.0) / (t1 * cores);
  };
  // Spray drops below 50% PE at just 256 cores (2 ARCHER2 nodes).
  EXPECT_LT(pe("spray", 256), 0.55);
  // Pressure field degrades but much more slowly (~60% at 2048).
  EXPECT_NEAR(pe("pressure_field", 2048), 0.60, 0.08);
  // Momentum and scalars scale well.
  EXPECT_GT(pe("momentum", 2048), 0.85);
  EXPECT_GT(pe("scalars", 2048), 0.8);
  // Ordering: spray worst, pressure field next, the rest best.
  EXPECT_LT(pe("spray", 2048), pe("pressure_field", 2048));
  EXPECT_LT(pe("pressure_field", 2048), pe("momentum", 2048));
}

TEST(Surrogate, OverallEfficiencyDropsBelowHalfNear3000) {
  const auto overall_pe = [](int cores) {
    Instance base("p", Config::base_28m(), {0, 128});
    Instance scaled("p", Config::base_28m(), {0, cores});
    const double t0 = total_of(base.predict_components());
    const double t1 = total_of(scaled.predict_components());
    return (t0 * 128.0) / (t1 * cores);
  };
  EXPECT_GT(overall_pe(1024), 0.65);
  EXPECT_LT(overall_pe(3000), 0.5);
  EXPECT_GT(overall_pe(3000), 0.3);
}

TEST(Surrogate, StepChargesPredictedTimesToCluster) {
  sim::Cluster cluster(sim::MachineModel::archer2(), 512);
  Instance inst("p", Config::base_28m(), {0, 512});
  inst.step(cluster);
  const double predicted = total_of(inst.predict_components());
  // The cluster's max clock includes the final allreduce; the analytic
  // prediction should match within a few percent.
  EXPECT_NEAR(cluster.max_clock(), predicted, 0.05 * predicted);
}

TEST(Surrogate, ComputeScalesWithMeshCells) {
  Instance small("s", Config::base_28m(), {0, 1024});
  Instance large("l", Config::base_84m(), {0, 1024});
  const double ratio = total_of(large.predict_components()) /
                       total_of(small.predict_components());
  EXPECT_GT(ratio, 2.3);
  EXPECT_LT(ratio, 3.2);  // 84/28 = 3 minus sublinear comm terms
}

TEST(Surrogate, OptimizedSprayScalesPerfectly) {
  Config cfg = Config::base_28m();
  cfg.optimized_spray = true;
  Instance a("a", cfg, {0, 128});
  Instance b("b", cfg, {0, 2048});
  const double t0 = find(a.predict_components(), "spray").total();
  const double t1 = find(b.predict_components(), "spray").total();
  EXPECT_NEAR((t0 * 128.0) / (t1 * 2048.0), 1.0, 1e-6);
}

TEST(Surrogate, PressureFieldSpeedupAppliesFiveFold) {
  Instance base("b", Config::base_28m(), {0, 1024});
  Instance opt("o", Config::optimized(28'000'000), {0, 1024});
  const double pf_base =
      find(base.predict_components(), "pressure_field").total();
  const double pf_opt =
      find(opt.predict_components(), "pressure_field").total();
  EXPECT_GT(pf_base / pf_opt, 4.5);
}

TEST(Surrogate, OptimizedSolverScalesMuchFurther) {
  // Fig 6a: after both optimisations the solver should keep high PE well
  // past the base solver's collapse point.
  const auto pe = [](const Config& cfg, int cores) {
    Instance base("p", cfg, {0, 128});
    Instance scaled("p", cfg, {0, cores});
    return (total_of(base.predict_components()) * 128.0) /
           (total_of(scaled.predict_components()) * cores);
  };
  EXPECT_LT(pe(Config::base_28m(), 4096), 0.45);
  EXPECT_GT(pe(Config::optimized(28'000'000), 4096), 0.7);
}

TEST(Surrogate, RejectsBadConfig) {
  EXPECT_THROW(Instance("x", Config::base_28m(), {0, 0}), CheckError);
  Config bad = Config::base_28m();
  bad.pressure_field_speedup = 0.5;
  EXPECT_THROW(Instance("x", bad, {0, 16}), CheckError);
}

TEST(Projection, RemovesDivergenceFromRandomField) {
  // The functional pressure solve: random face fluxes become discretely
  // divergence-free after one projection (to the CG tolerance).
  const mesh::UnstructuredMesh m =
      mesh::make_box_mesh(8, 8, 8, 42, /*periodic=*/true);
  ProjectionSolver solver(m);
  Rng rng(99);
  for (double& f : solver.face_flux()) {
    f = rng.uniform(-1.0, 1.0);
  }
  const double div0 = solver.max_divergence();
  ASSERT_GT(div0, 0.1);
  const int iters = solver.project();
  EXPECT_GT(iters, 0);
  EXPECT_LT(solver.max_divergence(), 1e-7 * div0);
}

TEST(Projection, DivergenceFreeFieldIsUntouched) {
  // A circulation (constant flux around a periodic ring) has zero
  // divergence; projection must leave it alone.
  const mesh::UnstructuredMesh m =
      mesh::make_box_mesh(6, 6, 6, 42, /*periodic=*/true);
  ProjectionSolver solver(m);
  // Flux only along x-direction edges, constant: divergence cancels on the
  // periodic torus.
  const auto& edges = m.edges();
  for (std::size_t f = 0; f < edges.size(); ++f) {
    solver.face_flux()[f] = edges[f].normal.x > 0.5 ? 0.7 : 0.0;
  }
  ASSERT_LT(solver.max_divergence(), 1e-12);
  const auto before = solver.face_flux();
  solver.project();
  for (std::size_t f = 0; f < before.size(); ++f) {
    EXPECT_NEAR(solver.face_flux()[f], before[f], 1e-9);
  }
}

TEST(Projection, ProjectionIsIdempotent) {
  const mesh::UnstructuredMesh m = mesh::make_box_mesh(6, 6, 6);
  ProjectionSolver solver(m);
  Rng rng(7);
  for (double& f : solver.face_flux()) {
    f = rng.uniform(-1.0, 1.0);
  }
  solver.project();
  const auto once = solver.face_flux();
  solver.project();
  for (std::size_t f = 0; f < once.size(); ++f) {
    EXPECT_NEAR(solver.face_flux()[f], once[f], 1e-8);
  }
}

TEST(Projection, AmgKeepsIterationCountLow) {
  // The reason the production solver wraps CG in AMG: iteration counts
  // stay modest as the mesh grows.
  const mesh::UnstructuredMesh m = mesh::make_box_mesh(14, 14, 14);
  ProjectionSolver solver(m);
  Rng rng(3);
  for (double& f : solver.face_flux()) {
    f = rng.uniform(-1.0, 1.0);
  }
  const int iters = solver.project();
  EXPECT_LT(iters, 40);
}

TEST(ComponentModels, TableIsWellFormed) {
  const auto& models = component_models();
  ASSERT_EQ(models.size(), 4u);
  for (const auto& m : models) {
    EXPECT_GT(m.compute_per_cell, 0.0);
    EXPECT_GE(m.surface_coeff, 0.0);
    EXPECT_GE(m.floor_seconds, 0.0);
  }
  EXPECT_EQ(models.back().name, "pressure_field");
}

}  // namespace
}  // namespace cpx::pressure
