// Tests for the virtual cluster: machine model costs, clock propagation
// through messages and collectives, profiling accounting, and emergent
// behaviours the mini-apps rely on (pipeline serialisation, strong-scaling
// shapes responding to machine parameters).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include <sstream>

#include "json_parse.hpp"
#include "sim/cluster.hpp"
#include "sim/machine.hpp"
#include "sim/trace.hpp"
#include "support/check.hpp"

namespace cpx::sim {
namespace {

TEST(MachineModel, ComputeRoofline) {
  MachineModel m = MachineModel::archer2();
  // Pure flops: time ~ flops / rate.
  Work flops_only{3.0e9, 0.0, 1.0};
  EXPECT_NEAR(m.compute_time(flops_only), 1.0 + m.kernel_overhead, 1e-9);
  // Pure memory: bandwidth share assumes a fully packed node (1/128).
  Work mem_only{0.0, 350.0e9, 1.0};
  EXPECT_NEAR(m.compute_time(mem_only), 128.0 + m.kernel_overhead, 1e-6);
  // A flop-heavy kernel is compute-bound, not memory-bound.
  Work mixed{3.0e9, 1.0e6, 1.0};
  EXPECT_NEAR(m.compute_time(mixed), 1.0 + m.kernel_overhead, 1e-9);
}

TEST(MachineModel, CollectiveScalesLogarithmically) {
  MachineModel m = MachineModel::archer2();
  const double t128 = m.allreduce_time(128, 1, 8);
  const double t16k = m.allreduce_time(16384, 128, 8);
  EXPECT_GT(t16k, t128);
  // log2(16384)=14 rounds vs log2(128)=7 rounds, inter-node rounds cost
  // more; the ratio must stay well below linear scaling.
  EXPECT_LT(t16k / t128, 16.0);
}

TEST(MachineModel, AllreduceSingleRankIsFree) {
  MachineModel m = MachineModel::archer2();
  EXPECT_EQ(m.allreduce_time(1, 1, 1024), 0.0);
}

TEST(Cluster, PlacementBlocksByNode) {
  Cluster c(MachineModel::archer2(), 300);
  EXPECT_EQ(c.num_nodes(), 3);
  EXPECT_EQ(c.node_of(0), 0);
  EXPECT_EQ(c.node_of(127), 0);
  EXPECT_EQ(c.node_of(128), 1);
  EXPECT_EQ(c.ranks_on_node(0), 128);
  EXPECT_EQ(c.ranks_on_node(2), 44);
}

TEST(Cluster, ComputeAdvancesClockAndProfile) {
  Cluster c(MachineModel::archer2(), 4);
  const RegionId flux = c.region("flux");
  c.compute_seconds(0, 1.5, flux);
  EXPECT_DOUBLE_EQ(c.clock(0), 1.5);
  EXPECT_DOUBLE_EQ(c.clock(1), 0.0);
  EXPECT_DOUBLE_EQ(c.profile().rank_region(0, flux).compute, 1.5);
  EXPECT_DOUBLE_EQ(c.profile().rank_region(0, flux).comm, 0.0);
}

TEST(Cluster, MessageRaisesReceiverClock) {
  Cluster c(MachineModel::archer2(), 2);
  const RegionId halo = c.region("halo");
  c.compute_seconds(0, 1.0, halo);
  c.send(0, 1, 8 * 1024, halo);
  // Receiver cannot be earlier than the sender's clock plus wire time.
  EXPECT_GT(c.clock(1), 1.0);
  // The receiver's jump is accounted as communication.
  EXPECT_GT(c.profile().rank_region(1, halo).comm, 0.9);
}

TEST(Cluster, LateReceiverDoesNotWait) {
  Cluster c(MachineModel::archer2(), 2);
  const RegionId halo = c.region("halo");
  c.compute_seconds(1, 10.0, halo);  // receiver is far ahead
  c.send(0, 1, 1024, halo);
  // Arrival is in the receiver's past; only the message overhead is paid.
  EXPECT_NEAR(c.clock(1), 10.0 + c.machine().msg_overhead, 1e-12);
}

TEST(Cluster, ExchangeIsBulkSynchronousPerMessage) {
  Cluster c(MachineModel::archer2(), 4);
  const RegionId halo = c.region("halo");
  std::vector<Message> msgs = {{0, 1, 4096}, {1, 0, 4096}, {2, 3, 4096}};
  c.exchange(msgs, halo);
  for (Rank r = 0; r < 4; ++r) {
    EXPECT_GT(c.clock(r), 0.0);
  }
}

TEST(Cluster, ChainedSendsSerialiseIntoPipeline) {
  // The mechanism behind SIMPIC's tridiagonal field solve: a chain of
  // dependent sends costs O(p * latency).
  MachineModel m = MachineModel::archer2();
  const int p = 256;
  Cluster c(m, p);
  const RegionId fields = c.region("fields");
  for (Rank r = 0; r + 1 < p; ++r) {
    c.send(r, r + 1, 64, fields);
  }
  const double t = c.clock(p - 1);
  // At least (p-1) hops of minimum latency.
  EXPECT_GT(t, (p - 1) * m.lat_intra);
  // And it grows linearly: doubling the chain roughly doubles the time.
  Cluster c2(m, 2 * p);
  const RegionId fields2 = c2.region("fields");
  for (Rank r = 0; r + 1 < 2 * p; ++r) {
    c2.send(r, r + 1, 64, fields2);
  }
  EXPECT_GT(c2.clock(2 * p - 1), 1.7 * t);
}

TEST(Cluster, AllreduceSynchronisesGroup) {
  Cluster c(MachineModel::archer2(), 8);
  const RegionId red = c.region("reduce");
  c.compute_seconds(3, 2.0, red);  // one laggard
  c.allreduce({0, 8}, 8, red);
  const double t = c.clock(0);
  for (Rank r = 0; r < 8; ++r) {
    EXPECT_DOUBLE_EQ(c.clock(r), t);
  }
  EXPECT_GT(t, 2.0);  // laggard dominates
}

TEST(Cluster, BarrierAndBroadcast) {
  Cluster c(MachineModel::archer2(), 16);
  const RegionId r0 = c.region("sync");
  c.barrier({0, 16}, r0);
  const double after_barrier = c.clock(0);
  EXPECT_GT(after_barrier, 0.0);
  c.broadcast({0, 16}, 0, 1 << 20, r0);
  EXPECT_GT(c.clock(15), after_barrier);
}

TEST(Cluster, WaitUntilChargesCommTime) {
  Cluster c(MachineModel::archer2(), 2);
  const RegionId w = c.region("wait");
  c.wait_until({0, 2}, 5.0, w);
  EXPECT_DOUBLE_EQ(c.clock(0), 5.0);
  EXPECT_DOUBLE_EQ(c.profile().rank_region(1, w).comm, 5.0);
}

TEST(Cluster, ResetClearsState) {
  Cluster c(MachineModel::archer2(), 2);
  const RegionId r0 = c.region("x");
  c.compute_seconds(0, 1.0, r0);
  c.reset();
  EXPECT_DOUBLE_EQ(c.clock(0), 0.0);
  EXPECT_DOUBLE_EQ(c.profile().rank_region(0, r0).compute, 0.0);
  // Region ids survive a reset.
  EXPECT_EQ(c.region("x"), r0);
}

TEST(Cluster, InterNodeCostsMoreThanIntraNode) {
  MachineModel m = MachineModel::archer2();
  Cluster c(m, 256);
  const RegionId h = c.region("halo");
  c.send(0, 1, 1 << 16, h);  // same node
  const double intra = c.clock(1);
  Cluster c2(m, 256);
  const RegionId h2 = c2.region("halo");
  c2.send(0, 200, 1 << 16, h2);
  EXPECT_GT(c2.clock(200), intra);
}

TEST(Cluster, InjectionContentionSlowsWideExchanges) {
  // 64 simultaneous inter-node senders from one node share the NIC.
  MachineModel m = MachineModel::archer2();
  Cluster narrow(m, 256);
  const RegionId h1 = narrow.region("halo");
  std::vector<Message> one = {{0, 128, 1 << 20}};
  narrow.exchange(one, h1);
  const double t_single = narrow.clock(128);

  Cluster wide(m, 256);
  const RegionId h2 = wide.region("halo");
  std::vector<Message> many;
  for (int i = 0; i < 64; ++i) {
    many.push_back({i, 128 + i, 1 << 20});
  }
  wide.exchange(many, h2);
  const double t_contended = wide.clock(128 + 63);
  EXPECT_GT(t_contended, 2.0 * t_single);
}

TEST(Cluster, SlowNetworkMakesExchangeSlower) {
  std::vector<Message> msgs = {{0, 129, 1 << 18}};
  Cluster fast(MachineModel::archer2(), 256);
  Cluster slow(MachineModel::slow_network(), 256);
  const RegionId hf = fast.region("h");
  const RegionId hs = slow.region("h");
  fast.exchange(msgs, hf);
  slow.exchange(msgs, hs);
  EXPECT_GT(slow.clock(129), 2.0 * fast.clock(129));
}

TEST(Profile, MeanAndMaxOverRanks) {
  Profile p(4);
  const RegionId r0 = p.region("a");
  p.add_compute(0, r0, 1.0);
  p.add_compute(1, r0, 3.0);
  p.add_comm(1, r0, 1.0);
  EXPECT_DOUBLE_EQ(p.mean_over_ranks(r0, 0, 4).compute, 1.0);
  EXPECT_DOUBLE_EQ(p.max_over_ranks(r0, 0, 4).total(), 4.0);
}

TEST(Profile, RegionInterningIsIdempotent) {
  Profile p(1);
  EXPECT_EQ(p.region("x"), p.region("x"));
  EXPECT_NE(p.region("x"), p.region("y"));
  EXPECT_EQ(p.find_region("nope"), -1);
}

TEST(Trace, DisabledByDefault) {
  Cluster c(MachineModel::archer2(), 2);
  EXPECT_FALSE(c.tracing_enabled());
  const RegionId r0 = c.region("x");
  c.compute_seconds(0, 1.0, r0);  // must not crash without a trace
}

TEST(Trace, RecordsComputeAndCommIntervals) {
  Cluster c(MachineModel::archer2(), 2);
  c.enable_tracing();
  const RegionId r0 = c.region("kernel");
  const RegionId r1 = c.region("halo");
  c.compute_seconds(0, 1.0, r0);
  c.send(0, 1, 1024, r1);
  ASSERT_TRUE(c.tracing_enabled());
  const auto& events = c.trace()->events();
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events[0].kind, TraceKind::kCompute);
  EXPECT_DOUBLE_EQ(events[0].start, 0.0);
  EXPECT_DOUBLE_EQ(events[0].end, 1.0);
  bool saw_comm = false;
  for (const TraceEvent& e : events) {
    EXPECT_LE(e.start, e.end);
    saw_comm = saw_comm || e.kind == TraceKind::kComm;
  }
  EXPECT_TRUE(saw_comm);
}

TEST(Trace, CapsEventCountAndCountsDrops) {
  Cluster c(MachineModel::archer2(), 1);
  c.enable_tracing(/*max_events=*/3);
  const RegionId r0 = c.region("k");
  for (int i = 0; i < 10; ++i) {
    c.compute_seconds(0, 0.1, r0);
  }
  EXPECT_EQ(c.trace()->events().size(), 3u);
  EXPECT_EQ(c.trace()->dropped(), 7u);
}

TEST(Trace, ChromeExportIsWellFormedJson) {
  Cluster c(MachineModel::archer2(), 2);
  c.enable_tracing();
  const RegionId r0 = c.region("kernel");
  c.compute_seconds(0, 0.5, r0);
  c.send(0, 1, 64, r0);
  std::ostringstream oss;
  write_chrome_trace(oss, c);
  const std::string json = oss.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"kernel\""), std::string::npos);
  // Balanced braces (each event is a flat object).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Trace, ChromeExportEscapesRegionNames) {
  // Region names are user-provided; quotes, backslashes, and control
  // characters must be escaped or the whole trace file is invalid JSON.
  Cluster c(MachineModel::archer2(), 1);
  c.enable_tracing();
  const std::string weird = "ker\"nel\\one\ttwo";
  c.compute_seconds(0, 0.5, c.region(weird));
  std::ostringstream oss;
  write_chrome_trace(oss, c);
  const testing::JsonValue doc = testing::parse_json(oss.str());
  ASSERT_TRUE(doc.is_array());
  bool saw_weird = false;
  for (const testing::JsonValue& e : doc.items) {
    const testing::JsonValue* name = e.find("name");
    ASSERT_NE(name, nullptr);
    saw_weird = saw_weird || name->str == weird;  // round-trips exactly
  }
  EXPECT_TRUE(saw_weird);
}

TEST(Trace, ChromeExportReportsDroppedEvents) {
  // The bounded Trace store silently truncates the timeline; the export
  // must carry the dropped count so downstream tooling can detect it.
  Cluster c(MachineModel::archer2(), 1);
  c.enable_tracing(/*max_events=*/2);
  const RegionId r0 = c.region("k");
  for (int i = 0; i < 7; ++i) {
    c.compute_seconds(0, 0.1, r0);
  }
  std::ostringstream oss;
  write_chrome_trace(oss, c);
  const testing::JsonValue doc = testing::parse_json(oss.str());
  ASSERT_TRUE(doc.is_array());
  bool saw_meta = false;
  for (const testing::JsonValue& e : doc.items) {
    if (e.find("name")->str == "cpx_trace_dropped") {
      saw_meta = true;
      EXPECT_EQ(e.find("ph")->str, "M");
      EXPECT_EQ(e.find("args")->find("dropped")->number, 5.0);
    }
  }
  EXPECT_TRUE(saw_meta);
}

TEST(Trace, ResetClearsEventsButKeepsTracing) {
  Cluster c(MachineModel::archer2(), 1);
  c.enable_tracing();
  c.compute_seconds(0, 1.0, c.region("k"));
  c.reset();
  EXPECT_TRUE(c.tracing_enabled());
  EXPECT_TRUE(c.trace()->events().empty());
}

TEST(Trace, ExportRequiresTracing) {
  Cluster c(MachineModel::archer2(), 1);
  std::ostringstream oss;
  EXPECT_THROW(write_chrome_trace(oss, c), CheckError);
}

TEST(Work, OperatorsAccumulateAndScale) {
  Work a{10.0, 20.0, 1.0};
  Work b{5.0, 2.0, 1.0};
  const Work sum = a + b;
  EXPECT_DOUBLE_EQ(sum.flops, 15.0);
  EXPECT_DOUBLE_EQ(sum.bytes, 22.0);
  EXPECT_DOUBLE_EQ(sum.launches, 2.0);
  const Work scaled = 3.0 * a;
  EXPECT_DOUBLE_EQ(scaled.flops, 30.0);
  EXPECT_DOUBLE_EQ(scaled.launches, 3.0);
}

TEST(Cluster, GatherSynchronisesAndCosts) {
  Cluster c(MachineModel::archer2(), 256);
  const RegionId g = c.region("gather");
  c.compute_seconds(7, 0.5, g);
  c.gather({0, 256}, 0, 1024, g);
  const double done = c.clock(0);
  EXPECT_GT(done, 0.5);  // root waited for the laggard plus payload
  for (Rank r = 0; r < 256; ++r) {
    EXPECT_DOUBLE_EQ(c.clock(r), done);
  }
}

TEST(Cluster, MinClockTracksTheLaggard) {
  Cluster c(MachineModel::archer2(), 4);
  const RegionId r0 = c.region("x");
  c.compute_seconds(0, 5.0, r0);
  c.compute_seconds(1, 1.0, r0);
  EXPECT_DOUBLE_EQ(c.min_clock({0, 2}), 1.0);
  EXPECT_DOUBLE_EQ(c.max_clock({0, 2}), 5.0);
  EXPECT_DOUBLE_EQ(c.min_clock({2, 4}), 0.0);
}

TEST(Cluster, BroadcastRejectsRootOutsideRange) {
  Cluster c(MachineModel::archer2(), 8);
  const RegionId r0 = c.region("b");
  EXPECT_THROW(c.broadcast({0, 4}, 6, 128, r0), CheckError);
  EXPECT_THROW(c.gather({0, 4}, 6, 128, r0), CheckError);
}

TEST(MachineModel, BroadcastCostGrowsWithPayload) {
  MachineModel m = MachineModel::archer2();
  EXPECT_GT(m.broadcast_time(256, 2, 1 << 20),
            m.broadcast_time(256, 2, 1 << 10));
  EXPECT_EQ(m.broadcast_time(1, 1, 1 << 20), 0.0);
}

TEST(Cluster, AlltoallCostGrowsLinearlyInRanks) {
  MachineModel m = MachineModel::archer2();
  EXPECT_GT(m.alltoall_time(8192, 64, 64),
            3.0 * m.alltoall_time(2048, 16, 64));
  EXPECT_EQ(m.alltoall_time(1, 1, 64), 0.0);

  Cluster c(m, 64);
  const RegionId r0 = c.region("a2a");
  c.alltoall({0, 64}, 128, r0);
  const double t = c.clock(0);
  EXPECT_GT(t, 0.0);
  for (Rank r = 0; r < 64; ++r) {
    EXPECT_DOUBLE_EQ(c.clock(r), t);  // collective synchronises
  }
}

TEST(Cluster, RejectsBadRanges) {
  Cluster c(MachineModel::archer2(), 4);
  const RegionId r0 = c.region("r");
  EXPECT_THROW(c.allreduce({0, 9}, 8, r0), CheckError);
  EXPECT_THROW(c.max_clock({2, 2}), CheckError);
}

}  // namespace
}  // namespace cpx::sim
