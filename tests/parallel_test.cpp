// Tests for the shared thread-pool execution layer (support/parallel) and
// the determinism contract of every threaded kernel: outputs must be
// bitwise identical at CPX_THREADS=1 and CPX_THREADS=4 because the chunk
// decomposition — not the thread count — fixes every summation order
// (docs/parallelism.md). Registered with the `tsan` ctest label so a
// CPX_SANITIZE=thread build race-checks all of these kernels.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <vector>

#include "amg/smoothers.hpp"
#include "cpx/interpolation.hpp"
#include "cpx/search.hpp"
#include "simpic/pic.hpp"
#include "sparse/csr.hpp"
#include "sparse/generators.hpp"
#include "support/check.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace cpx {
namespace {

template <typename AllocA, typename AllocB>
bool bitwise_equal(const std::vector<double, AllocA>& a,
                   const std::vector<double, AllocB>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// Runs fn at 1 and at 4 threads and returns both results.
template <typename Fn>
auto at_both_thread_counts(Fn fn) {
  support::set_max_threads(1);
  auto serial = fn();
  support::set_max_threads(4);
  auto threaded = fn();
  support::set_max_threads(1);
  return std::make_pair(std::move(serial), std::move(threaded));
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  support::set_max_threads(4);
  std::vector<std::atomic<int>> hits(1000);
  support::parallel_for(0, 1000, 7, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      ++hits[static_cast<std::size_t>(i)];
    }
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
  support::set_max_threads(1);
}

TEST(ParallelFor, EmptyAndSingleElementRanges) {
  support::set_max_threads(4);
  int calls = 0;
  support::parallel_for(5, 5, 16, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  support::parallel_for(5, 6, 16, [&](std::int64_t i0, std::int64_t i1) {
    EXPECT_EQ(i0, 5);
    EXPECT_EQ(i1, 6);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
  support::set_max_threads(1);
}

TEST(ParallelFor, PropagatesExceptions) {
  support::set_max_threads(4);
  EXPECT_THROW(
      support::parallel_for(0, 100, 10,
                            [&](std::int64_t i0, std::int64_t) {
                              CPX_CHECK_MSG(i0 != 50, "boom at " << i0);
                            }),
      CheckError);
  support::set_max_threads(1);
}

TEST(ParallelChunks, DecompositionIndependentOfThreadCount) {
  EXPECT_EQ(support::num_chunks(0, 100, 7), 15);
  EXPECT_EQ(support::num_chunks(0, 0, 7), 0);
  EXPECT_EQ(support::num_chunks(3, 3, 1), 0);
  EXPECT_EQ(support::num_chunks(0, 100, 0), 100);  // grain clamped to 1
  const auto [lo, hi] = support::chunk_bounds(0, 100, 7, 14);
  EXPECT_EQ(lo, 98);
  EXPECT_EQ(hi, 100);
  // The lane never exceeds the configured width.
  support::set_max_threads(3);
  support::parallel_chunks(0, 64, 4,
                           [&](std::int64_t, std::int64_t, std::int64_t,
                               int lane) {
                             EXPECT_GE(lane, 0);
                             EXPECT_LT(lane, 3);
                           });
  support::set_max_threads(1);
}

TEST(ParallelReduce, BitwiseDeterministicAcrossThreadCounts) {
  std::vector<double> v(10001);
  Rng rng(99);
  for (double& x : v) {
    x = rng.uniform(-1.0, 1.0);
  }
  const auto sum = [&] {
    return support::parallel_reduce(
        0, static_cast<std::int64_t>(v.size()), 128, 0.25,
        [&](std::int64_t i0, std::int64_t i1) {
          double s = 0.0;
          for (std::int64_t i = i0; i < i1; ++i) {
            s += v[static_cast<std::size_t>(i)];
          }
          return s;
        });
  };
  const auto [serial, threaded] = at_both_thread_counts([&] { return sum(); });
  EXPECT_EQ(serial, threaded);  // exact: same chunk combination order
}

TEST(ParallelConfig, ParseThreadCount) {
  EXPECT_EQ(support::parse_thread_count("4"), 4);
  EXPECT_EQ(support::parse_thread_count("1"), 1);
  EXPECT_EQ(support::parse_thread_count("0"), 0);
  EXPECT_EQ(support::parse_thread_count("-2"), 0);
  EXPECT_EQ(support::parse_thread_count("abc"), 0);
  EXPECT_EQ(support::parse_thread_count("4x"), 0);
  EXPECT_EQ(support::parse_thread_count(""), 0);
  EXPECT_EQ(support::parse_thread_count(nullptr), 0);
}

TEST(ParallelConfig, SetMaxThreadsRoundTrips) {
  support::set_max_threads(3);
  EXPECT_EQ(support::max_threads(), 3);
  support::set_max_threads(1);
  EXPECT_EQ(support::max_threads(), 1);
  EXPECT_THROW(support::set_max_threads(0), CheckError);
}

// --- Kernel determinism: 1 thread vs 4 threads, bitwise ---

TEST(KernelDeterminism, Spmv) {
  const sparse::CsrMatrix a = sparse::random_spd(20000, 9, 42);
  std::vector<double> x(static_cast<std::size_t>(a.cols()));
  Rng rng(7);
  for (double& v : x) {
    v = rng.uniform(-1.0, 1.0);
  }
  const auto run = [&] {
    std::vector<double> y(static_cast<std::size_t>(a.rows()), 0.0);
    sparse::spmv(a, x, y);
    return y;
  };
  const auto [serial, threaded] = at_both_thread_counts(run);
  EXPECT_TRUE(bitwise_equal(serial, threaded));
}

TEST(KernelDeterminism, SpmvAdd) {
  const sparse::CsrMatrix a = sparse::random_spd(20000, 9, 43);
  std::vector<double> x(static_cast<std::size_t>(a.cols()));
  std::vector<double> y0(static_cast<std::size_t>(a.rows()));
  Rng rng(8);
  for (double& v : x) {
    v = rng.uniform(-1.0, 1.0);
  }
  for (double& v : y0) {
    v = rng.uniform(-1.0, 1.0);
  }
  const auto run = [&] {
    std::vector<double> y = y0;
    sparse::spmv_add(a, x, y, 0.5);
    return y;
  };
  const auto [serial, threaded] = at_both_thread_counts(run);
  EXPECT_TRUE(bitwise_equal(serial, threaded));
}

TEST(KernelDeterminism, Residual) {
  const sparse::CsrMatrix a = sparse::laplacian_2d(120, 120);
  std::vector<double> x(static_cast<std::size_t>(a.rows()));
  std::vector<double> b(static_cast<std::size_t>(a.rows()));
  Rng rng(9);
  for (double& v : x) {
    v = rng.uniform(-1.0, 1.0);
  }
  for (double& v : b) {
    v = rng.uniform(-1.0, 1.0);
  }
  const auto run = [&] {
    std::vector<double> r(x.size(), 0.0);
    amg::residual(a, x, b, r);
    return r;
  };
  const auto [serial, threaded] = at_both_thread_counts(run);
  EXPECT_TRUE(bitwise_equal(serial, threaded));
}

class SmootherDeterminism
    : public ::testing::TestWithParam<amg::SmootherKind> {};

TEST_P(SmootherDeterminism, ThreeSweepsBitwiseIdentical) {
  const sparse::CsrMatrix a = sparse::laplacian_2d(90, 90);
  const auto n = static_cast<std::size_t>(a.rows());
  std::vector<double> b(n);
  Rng rng(11);
  for (double& v : b) {
    v = rng.uniform(-1.0, 1.0);
  }
  amg::SmootherOptions opts;
  opts.kind = GetParam();
  opts.hybrid_blocks = 8;
  const auto run = [&] {
    std::vector<double> x(n, 0.0);
    std::vector<double> scratch(n, 0.0);
    for (int sweep = 0; sweep < 3; ++sweep) {
      amg::smooth(a, x, b, opts, scratch);
    }
    return x;
  };
  const auto [serial, threaded] = at_both_thread_counts(run);
  EXPECT_TRUE(bitwise_equal(serial, threaded));
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SmootherDeterminism,
                         ::testing::Values(amg::SmootherKind::kJacobi,
                                           amg::SmootherKind::kL1Jacobi,
                                           amg::SmootherKind::kGaussSeidel,
                                           amg::SmootherKind::kHybridGs));

void expect_same_matrix(const sparse::CsrMatrix& a,
                        const sparse::CsrMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  EXPECT_EQ(a.row_offsets(), b.row_offsets());
  EXPECT_EQ(a.col_indices(), b.col_indices());
  EXPECT_TRUE(bitwise_equal(a.values(), b.values()));
}

TEST(KernelDeterminism, SpgemmTwopass) {
  const sparse::CsrMatrix a = sparse::laplacian_2d(60, 60);
  const auto [serial, threaded] =
      at_both_thread_counts([&] { return sparse::spgemm_twopass(a, a); });
  expect_same_matrix(serial, threaded);
}

TEST(KernelDeterminism, SpgemmSpa) {
  const sparse::CsrMatrix a = sparse::laplacian_2d(60, 60);
  const auto [serial, threaded] =
      at_both_thread_counts([&] { return sparse::spgemm_spa(a, a); });
  expect_same_matrix(serial, threaded);
  // The two SpGEMM algorithms also still agree with each other.
  support::set_max_threads(4);
  const sparse::CsrMatrix two = sparse::spgemm_twopass(a, a);
  EXPECT_LT(sparse::frobenius_distance(serial, two), 1e-12);
  support::set_max_threads(1);
}

TEST(KernelDeterminism, GalerkinProduct) {
  const sparse::CsrMatrix a = sparse::laplacian_2d(50, 50);
  const sparse::CsrMatrix p = sparse::random_spd(a.rows(), 4, 77);
  const sparse::CsrMatrix r = sparse::transpose(p);
  const auto [serial, threaded] = at_both_thread_counts(
      [&] { return sparse::galerkin_product(r, a, p); });
  expect_same_matrix(serial, threaded);
}

TEST(KernelDeterminism, KdTreeBatchQueries) {
  Rng rng(21);
  std::vector<mesh::Vec3> pts(5000);
  for (auto& p : pts) {
    p = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0),
         rng.uniform(-1.0, 1.0)};
  }
  std::vector<mesh::Vec3> queries(2000);
  for (auto& q : queries) {
    q = {rng.uniform(-1.2, 1.2), rng.uniform(-1.2, 1.2),
         rng.uniform(-1.2, 1.2)};
  }
  const coupler::KdTree tree(pts);
  const auto [serial, threaded] =
      at_both_thread_counts([&] { return tree.nearest_batch(queries); });
  EXPECT_EQ(serial, threaded);
  // The batch agrees with the one-at-a-time query path.
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(serial[i], tree.nearest(queries[i])) << "query " << i;
  }
}

TEST(KernelDeterminism, IdwStencilsAndTransfer) {
  Rng rng(22);
  std::vector<mesh::Vec3> donors(3000);
  for (auto& p : donors) {
    p = {rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0), 0.0};
  }
  std::vector<mesh::Vec3> targets(1500);
  for (auto& p : targets) {
    p = {rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0), 0.0};
  }
  std::vector<double> field(donors.size());
  for (double& v : field) {
    v = rng.uniform(-1.0, 1.0);
  }
  for (const int k : {1, 4}) {
    const auto run = [&] {
      const auto stencils = coupler::build_idw_stencils(donors, targets, k);
      std::vector<double> out(targets.size(), 0.0);
      coupler::apply_stencils(stencils, field, out);
      std::vector<std::vector<std::int64_t>> donor_ids;
      std::vector<std::vector<double>> weights;
      for (const auto& s : stencils) {
        donor_ids.push_back(s.donors);
        weights.push_back(s.weights);
      }
      return std::make_tuple(std::move(donor_ids), std::move(weights),
                             std::move(out));
    };
    const auto [serial, threaded] = at_both_thread_counts(run);
    EXPECT_EQ(std::get<0>(serial), std::get<0>(threaded)) << "k=" << k;
    ASSERT_EQ(std::get<1>(serial).size(), std::get<1>(threaded).size());
    for (std::size_t i = 0; i < std::get<1>(serial).size(); ++i) {
      EXPECT_TRUE(bitwise_equal(std::get<1>(serial)[i],
                                std::get<1>(threaded)[i]))
          << "k=" << k << " stencil " << i;
    }
    EXPECT_TRUE(bitwise_equal(std::get<2>(serial), std::get<2>(threaded)))
        << "k=" << k;
  }
}

class PicDeterminism : public ::testing::TestWithParam<simpic::Boundary> {};

TEST_P(PicDeterminism, FiveStepsBitwiseIdentical) {
  // 12800 particles > one 8192-particle grain, so the multi-chunk deposit
  // reduction and the parallel push + compaction are both exercised.
  simpic::PicOptions opt;
  opt.cells = 64;
  opt.boundary = GetParam();
  const auto run = [&] {
    simpic::Pic pic(opt);
    pic.load_uniform(200, 0.1, 0.05);
    pic.run(5);
    return std::make_tuple(pic.positions(), pic.velocities(), pic.rho());
  };
  const auto [serial, threaded] = at_both_thread_counts(run);
  EXPECT_TRUE(bitwise_equal(std::get<0>(serial), std::get<0>(threaded)));
  EXPECT_TRUE(bitwise_equal(std::get<1>(serial), std::get<1>(threaded)));
  EXPECT_TRUE(bitwise_equal(std::get<2>(serial), std::get<2>(threaded)));
  EXPECT_GT(std::get<0>(serial).size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Boundaries, PicDeterminism,
                         ::testing::Values(simpic::Boundary::kPeriodic,
                                           simpic::Boundary::kAbsorbing));

}  // namespace
}  // namespace cpx
