#pragma once
// Minimal strict JSON parser for test assertions (metrics/trace output
// must be *valid* JSON, not merely JSON-looking). Recursive descent over
// the full grammar; throws std::runtime_error on any malformed input,
// including trailing garbage. Test-only — not a library API.

#include <cctype>
#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace cpx::testing {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;                 ///< kArray
  std::map<std::string, JsonValue> members;     ///< kObject

  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const {
    if (kind != Kind::kObject) {
      return nullptr;
    }
    const auto it = members.find(key);
    return it == members.end() ? nullptr : &it->second;
  }
};

namespace json_detail {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON value");
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json_parse: " + why + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char ch) {
    if (peek() != ch) {
      fail(std::string("expected '") + ch + "', got '" + peek() + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    const char ch = peek();
    if (ch == '{') {
      return parse_object();
    }
    if (ch == '[') {
      return parse_array();
    }
    if (ch == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.str = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = false;
      return v;
    }
    if (consume_literal("null")) {
      return JsonValue{};
    }
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members[key] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char ch = text_[pos_++];
      if (ch == '"') {
        return out;
      }
      if (static_cast<unsigned char>(ch) < 0x20) {
        fail("unescaped control character in string");
      }
      if (ch != '\\') {
        out += ch;
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("unterminated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // Tests only need the BMP-as-bytes behaviour for control chars;
          // encode <= 0x7f directly and anything else as UTF-8.
          if (code <= 0x7f) {
            out += static_cast<char>(code);
          } else if (code <= 0x7ff) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      fail("bad number");
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    std::size_t used = 0;
    const std::string token = text_.substr(start, pos_ - start);
    try {
      v.number = std::stod(token, &used);
    } catch (const std::exception&) {
      fail("bad number '" + token + "'");
    }
    if (used != token.size()) {
      fail("bad number '" + token + "'");
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace json_detail

/// Parses `text` as one JSON document; throws std::runtime_error on any
/// syntax error or trailing content.
inline JsonValue parse_json(const std::string& text) {
  return json_detail::Parser(text).parse();
}

}  // namespace cpx::testing
