// Tests for CSR matrices and the SpGEMM/renumbering kernels of the §IV-B
// optimisation study, including the property that optimised and baseline
// variants produce identical results.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/generators.hpp"
#include "sparse/identity_prefix.hpp"
#include "sparse/renumber.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace cpx::sparse {
namespace {

TEST(Csr, FromTripletsSortsAndSumsDuplicates) {
  const std::vector<Triplet> t = {
      {1, 2, 1.0}, {0, 0, 2.0}, {1, 2, 0.5}, {1, 0, -1.0}};
  const CsrMatrix m = csr_from_triplets(2, 3, t);
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 1.5);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 0.0);
  m.validate();
}

TEST(Csr, RejectsOutOfRangeTriplets) {
  const std::vector<Triplet> t = {{0, 9, 1.0}};
  EXPECT_THROW(csr_from_triplets(2, 3, t), CheckError);
}

TEST(Csr, AtBinarySearchesTheRow) {
  // Row 0 spans first and last columns; row 1 is sparse in the middle;
  // row 2 is empty.
  const std::vector<Triplet> t = {
      {0, 0, 1.0}, {0, 3, 2.0}, {0, 7, 3.0}, {1, 2, -4.0}, {1, 5, 5.0}};
  const CsrMatrix m = csr_from_triplets(3, 8, t);
  // Hits, including the first and last stored column of a row.
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 3), 2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 7), 3.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), -4.0);
  EXPECT_DOUBLE_EQ(m.at(1, 5), 5.0);
  // Misses: before the first entry, between entries, after the last entry,
  // and anywhere in an empty row.
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.at(0, 4), 0.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.at(1, 6), 0.0);
  EXPECT_DOUBLE_EQ(m.at(1, 7), 0.0);
  EXPECT_DOUBLE_EQ(m.at(2, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.at(2, 7), 0.0);
}

TEST(Csr, IdentityActsAsIdentity) {
  const CsrMatrix i = CsrMatrix::identity(5);
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y(5);
  spmv(i, x, y);
  EXPECT_EQ(x, y);
}

TEST(Spmv, MatchesDense) {
  const CsrMatrix a = laplacian_1d(4);
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> y(4);
  spmv(a, x, y);
  // Tridiagonal [ -1 2 -1 ]: y0 = 2*1-2 = 0, y1 = -1+4-3 = 0, ...
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[2], 0.0);
  EXPECT_DOUBLE_EQ(y[3], 5.0);
}

TEST(Spmv, AddAccumulates) {
  const CsrMatrix a = CsrMatrix::identity(3);
  const std::vector<double> x = {1.0, 1.0, 1.0};
  std::vector<double> y = {10.0, 20.0, 30.0};
  spmv_add(a, x, y, 2.0);
  EXPECT_DOUBLE_EQ(y[0], 21.0);
  EXPECT_DOUBLE_EQ(y[2], 61.0);
}

TEST(Transpose, InvolutionAndShape) {
  const CsrMatrix a = random_spd(50, 4, 7);
  const CsrMatrix at = transpose(a);
  EXPECT_EQ(at.rows(), a.cols());
  const CsrMatrix att = transpose(at);
  EXPECT_NEAR(frobenius_distance(a, att), 0.0, 1e-14);
}

TEST(Transpose, SymmetricMatrixIsFixed) {
  const CsrMatrix a = laplacian_2d(6, 5);
  EXPECT_NEAR(frobenius_distance(a, transpose(a)), 0.0, 1e-14);
}

class SpgemmEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(SpgemmEquivalence, SpaMatchesTwoPass) {
  const int n = GetParam();
  const CsrMatrix a = random_spd(n, 3, static_cast<std::uint64_t>(n));
  const CsrMatrix b = random_spd(n, 4, static_cast<std::uint64_t>(n) + 1);
  const CsrMatrix ref = spgemm_twopass(a, b);
  const CsrMatrix opt = spgemm_spa(a, b);
  EXPECT_EQ(ref.nnz(), opt.nnz());
  EXPECT_NEAR(frobenius_distance(ref, opt), 0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpgemmEquivalence,
                         ::testing::Values(1, 5, 32, 100, 333));

TEST(Spgemm, MultiplyByIdentityIsNoOp) {
  const CsrMatrix a = laplacian_2d(5, 5);
  const CsrMatrix i = CsrMatrix::identity(a.cols());
  EXPECT_NEAR(frobenius_distance(spgemm_spa(a, i), a), 0.0, 1e-14);
  EXPECT_NEAR(frobenius_distance(spgemm_twopass(i, a), a), 0.0, 1e-14);
}

TEST(Spgemm, KnownSmallProduct) {
  // A = [[1,2],[0,3]], B = [[4,0],[5,6]] -> AB = [[14,12],[15,18]].
  const std::vector<Triplet> ta = {{0, 0, 1}, {0, 1, 2}, {1, 1, 3}};
  const std::vector<Triplet> tb = {{0, 0, 4}, {1, 0, 5}, {1, 1, 6}};
  const CsrMatrix ab =
      spgemm_spa(csr_from_triplets(2, 2, ta), csr_from_triplets(2, 2, tb));
  EXPECT_DOUBLE_EQ(ab.at(0, 0), 14.0);
  EXPECT_DOUBLE_EQ(ab.at(0, 1), 12.0);
  EXPECT_DOUBLE_EQ(ab.at(1, 0), 15.0);
  EXPECT_DOUBLE_EQ(ab.at(1, 1), 18.0);
}

TEST(Spgemm, DimensionMismatchThrows) {
  const CsrMatrix a = laplacian_1d(4);
  const CsrMatrix b = laplacian_1d(5);
  EXPECT_THROW(spgemm_spa(a, b), CheckError);
}

TEST(Transpose, PermutationRefreshesValuesInPlace) {
  const CsrMatrix a = random_spd(120, 5, 11);
  CsrMatrix at = transpose(a);
  const auto perm = transpose_permutation(a, at);

  // New values over the same structure: numeric-only refresh must equal a
  // full transpose of the modified matrix.
  CsrMatrix a2 = a;
  for (double& v : a2.mutable_values()) {
    v *= 1.5;
  }
  transpose_numeric(a2, perm, at);
  const CsrMatrix reference = transpose(a2);
  EXPECT_TRUE(same_structure(at, reference));
  EXPECT_EQ(at.values(), reference.values());
}

TEST(Transpose, ParallelMatchesSerialOnTallMatrix) {
  // Enough rows to engage the chunked two-phase path regardless of the
  // thread count; rectangular so row/col confusion would be caught.
  std::vector<Triplet> t;
  Rng rng(13);
  for (std::int64_t r = 0; r < 9000; ++r) {
    for (int k = 0; k < 3; ++k) {
      t.push_back({r, static_cast<std::int64_t>(rng.uniform_index(40)),
                   rng.uniform(-1.0, 1.0)});
    }
  }
  const CsrMatrix a = csr_from_triplets(9000, 40, t);
  const CsrMatrix at = transpose(a);
  at.validate();
  EXPECT_EQ(at.rows(), 40);
  EXPECT_EQ(at.cols(), 9000);
  const CsrMatrix att = transpose(at);
  EXPECT_TRUE(same_structure(att, a));
  EXPECT_EQ(att.values(), a.values());
}

TEST(SameStructure, DetectsValueAndStructureDifferences) {
  const CsrMatrix a = laplacian_2d(6, 6);
  CsrMatrix b = a;
  for (double& v : b.mutable_values()) {
    v += 1.0;
  }
  EXPECT_TRUE(same_structure(a, b));  // values may differ
  EXPECT_TRUE(same_structure(a, a));
  EXPECT_FALSE(same_structure(a, laplacian_2d(6, 5)));
  EXPECT_FALSE(same_structure(a, CsrMatrix::identity(a.rows())));
}

TEST(SpgemmPlan, SymbolicMatchesProductStructure) {
  const CsrMatrix a = random_spd(200, 4, 17);
  const CsrMatrix b = random_spd(200, 5, 18);
  const CsrMatrix ref = spgemm_spa(a, b);
  const SpgemmPlan plan(a, b);
  EXPECT_EQ(plan.rows(), ref.rows());
  EXPECT_EQ(plan.cols(), ref.cols());
  EXPECT_EQ(plan.nnz(), ref.nnz());
  const CsrMatrix c = plan.numeric(a, b);
  EXPECT_TRUE(same_structure(c, ref));
  EXPECT_EQ(c.values(), ref.values());
}

TEST(SpgemmPlan, AdoptedStructureReproducesProduct) {
  const CsrMatrix a = random_spd(150, 4, 19);
  const CsrMatrix b = random_spd(150, 4, 20);
  const CsrMatrix ref = spgemm_spa(a, b);
  const SpgemmPlan plan(a, b, ref);  // adopt, no symbolic pass
  EXPECT_EQ(plan.nnz(), ref.nnz());
  EXPECT_GT(plan.flops(), 0);

  // numeric_into over new values with the same structure.
  CsrMatrix a2 = a;
  for (double& v : a2.mutable_values()) {
    v *= -0.5;
  }
  CsrMatrix c = ref;
  plan.numeric_into(a2, b, c);
  const CsrMatrix expected = spgemm_spa(a2, b);
  EXPECT_TRUE(same_structure(c, expected));
  EXPECT_EQ(c.values(), expected.values());
}

TEST(SpgemmPlan, RejectsMismatchedInputs) {
  const CsrMatrix a = laplacian_1d(10);
  const CsrMatrix b = laplacian_1d(10);
  const SpgemmPlan plan(a, b);
  const CsrMatrix wrong = laplacian_1d(9);
  EXPECT_THROW(plan.numeric(wrong, b), CheckError);
  EXPECT_THROW(SpgemmPlan{}.numeric(a, b), CheckError);
}

TEST(Galerkin, TripleProductShape) {
  const CsrMatrix a = laplacian_2d(8, 8);
  // Piecewise-constant P aggregating pairs of columns.
  std::vector<Triplet> pt;
  for (std::int64_t i = 0; i < 64; ++i) {
    pt.push_back({i, i / 2, 1.0});
  }
  const CsrMatrix p = csr_from_triplets(64, 32, pt);
  const CsrMatrix r = transpose(p);
  const CsrMatrix coarse = galerkin_product(r, a, p);
  EXPECT_EQ(coarse.rows(), 32);
  EXPECT_EQ(coarse.cols(), 32);
  // Galerkin preserves symmetry.
  EXPECT_NEAR(frobenius_distance(coarse, transpose(coarse)), 0.0, 1e-12);
}

TEST(Generators, Laplacian3dRowSums) {
  const CsrMatrix a = laplacian_3d(4, 4, 4);
  // Interior rows sum to zero; boundary rows are positive.
  double min_sum = 1e9;
  double max_sum = -1e9;
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    double s = 0.0;
    for (double v : a.row_values(r)) {
      s += v;
    }
    min_sum = std::min(min_sum, s);
    max_sum = std::max(max_sum, s);
  }
  EXPECT_GE(min_sum, -1e-12);
  EXPECT_GT(max_sum, 0.0);
}

TEST(Generators, RandomSpdIsDiagonallyDominant) {
  const CsrMatrix a = random_spd(200, 5, 3);
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    double diag = 0.0;
    double off = 0.0;
    const auto cols = a.row_cols(r);
    const auto vals = a.row_values(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      if (cols[i] == r) {
        diag = vals[i];
      } else {
        off += std::abs(vals[i]);
      }
    }
    EXPECT_GT(diag, off) << "row " << r;
  }
}

class RenumberEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RenumberEquivalence, HashMergeMatchesSort) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<std::int64_t> ids;
  for (int i = 0; i < 5000; ++i) {
    ids.push_back(static_cast<std::int64_t>(rng.uniform_index(1200)) * 7 + 3);
  }
  const Renumbering a = renumber_sort(ids);
  const Renumbering b = renumber_hash_merge(ids, GetParam());
  EXPECT_EQ(a.locals_to_global, b.locals_to_global);
  EXPECT_EQ(a.renumbered, b.renumbered);
  // Round trip: renumbered entries map back to the original ids.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(a.locals_to_global[static_cast<std::size_t>(a.renumbered[i])],
              ids[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Chunks, RenumberEquivalence,
                         ::testing::Values(1, 2, 4, 7, 16));

TEST(IdentityPrefix, DetectsPrefixAndAppliesEquivalently) {
  // Interpolation with the first 5 coarse points injected directly.
  std::vector<Triplet> t;
  for (std::int64_t i = 0; i < 5; ++i) {
    t.push_back({i, i, 1.0});
  }
  for (std::int64_t i = 5; i < 12; ++i) {
    t.push_back({i, i % 5, 0.5});
    t.push_back({i, (i + 1) % 5, 0.5});
  }
  const CsrMatrix p = csr_from_triplets(12, 5, t);
  const IdentityPrefixMatrix ip = IdentityPrefixMatrix::from_csr(p);
  EXPECT_EQ(ip.identity_rows(), 5);
  EXPECT_EQ(ip.stored_nnz(), p.nnz() - 5);

  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> y_plain(12);
  std::vector<double> y_fast(12);
  spmv(p, x, y_plain);
  ip.apply(x, y_fast);
  for (std::size_t i = 0; i < y_plain.size(); ++i) {
    EXPECT_DOUBLE_EQ(y_plain[i], y_fast[i]);
  }
  EXPECT_NEAR(frobenius_distance(ip.to_csr(), p), 0.0, 1e-14);
}

TEST(IdentityPrefix, NoPrefixDegeneratesToPlainCsr) {
  const CsrMatrix a = laplacian_1d(6);  // diagonal is 2.0, not a unit row
  const IdentityPrefixMatrix ip = IdentityPrefixMatrix::from_csr(a);
  EXPECT_EQ(ip.identity_rows(), 0);
  EXPECT_EQ(ip.stored_nnz(), a.nnz());
  const std::vector<double> x = {1, 2, 3, 4, 5, 6};
  std::vector<double> y(6);
  ip.apply(x, y);
  std::vector<double> want(6);
  spmv(a, x, want);
  EXPECT_EQ(y, want);
}

TEST(IdentityPrefix, WholeIdentityMatrix) {
  const CsrMatrix i = CsrMatrix::identity(7);
  const IdentityPrefixMatrix ip = IdentityPrefixMatrix::from_csr(i);
  EXPECT_EQ(ip.identity_rows(), 7);
  EXPECT_EQ(ip.stored_nnz(), 0);
  const std::vector<double> x = {1, 2, 3, 4, 5, 6, 7};
  std::vector<double> y(7);
  ip.apply(x, y);
  EXPECT_EQ(std::vector<double>(x.begin(), x.end()), y);
}

TEST(IdentityPrefix, RejectsInconsistentShapes) {
  EXPECT_THROW(
      IdentityPrefixMatrix(10, 5, CsrMatrix::identity(5)),
      CheckError);
}

TEST(Renumber, EmptyInput) {
  const Renumbering r = renumber_sort({});
  EXPECT_TRUE(r.locals_to_global.empty());
  EXPECT_TRUE(r.renumbered.empty());
  const Renumbering h = renumber_hash_merge({}, 4);
  EXPECT_TRUE(h.locals_to_global.empty());
}

}  // namespace
}  // namespace cpx::sparse
