// Integration tests for the coupled workflow: engine-case construction,
// model building, Alg 1 end-to-end, coupled execution, and the system-
// level properties the paper's evaluation rests on (bottleneck pacing,
// small coupling overhead, per-instance prediction accuracy).

#include <gtest/gtest.h>

#include <numeric>

#include "perfmodel/allocator.hpp"
#include "support/check.hpp"
#include "support/stats.hpp"
#include <sstream>

#include "workflow/case_io.hpp"
#include "workflow/coupled.hpp"
#include "workflow/engine_case.hpp"
#include "workflow/models.hpp"

namespace cpx::workflow {
namespace {

/// Reduced sweep grids so the integration tests stay fast.
ModelOptions fast_options() {
  ModelOptions o;
  o.app_sweep = {100, 250, 640, 1600, 4000, 10000, 25000};
  o.cu_sweep = {2, 8, 32, 128};
  o.bench_steps = 1;
  return o;
}

TEST(EngineCase, HpcCombustorHptMatchesPaperStructure) {
  const EngineCase c = hpc_combustor_hpt(false);
  ASSERT_EQ(c.instances.size(), 16u);  // Fig 9b: 16 instances
  EXPECT_EQ(c.instances[0].mesh_cells, 8'000'000);
  for (int i = 1; i <= 11; ++i) {
    EXPECT_EQ(c.instances[static_cast<std::size_t>(i)].mesh_cells,
              24'000'000);
  }
  EXPECT_EQ(c.instances[12].mesh_cells, 150'000'000);
  EXPECT_EQ(c.instances[13].kind, AppKind::kSimpic);
  EXPECT_EQ(c.instances[15].mesh_cells, 300'000'000);
  // 1.25Bn effective cells.
  EXPECT_NEAR(static_cast<double>(c.total_cells()), 1.25e9, 0.05e9);

  // 13 sliding planes + 2 steady interfaces.
  int sliding = 0;
  int steady = 0;
  for (const CouplerSpec& cu : c.couplers) {
    if (cu.kind == coupler::InterfaceKind::kSlidingPlane) {
      ++sliding;
      EXPECT_EQ(cu.exchange_every, 1);
    } else {
      ++steady;
      EXPECT_EQ(cu.exchange_every, 20);
    }
  }
  EXPECT_EQ(sliding, 13);
  EXPECT_EQ(steady, 2);
}

TEST(EngineCase, InterfaceSizesFollowPaperFractions) {
  const EngineCase c = hpc_combustor_hpt(false);
  for (const CouplerSpec& cu : c.couplers) {
    const std::int64_t smaller =
        std::min(c.instances[static_cast<std::size_t>(cu.instance_a)]
                     .mesh_cells,
                 c.instances[static_cast<std::size_t>(cu.instance_b)]
                     .mesh_cells);
    const double fraction = static_cast<double>(cu.interface_cells) /
                            static_cast<double>(smaller);
    if (cu.kind == coupler::InterfaceKind::kSlidingPlane) {
      EXPECT_NEAR(fraction, kSlidingInterfaceFraction, 1e-6);
    } else {
      EXPECT_NEAR(fraction, kSteadyInterfaceFraction, 1e-6);
    }
  }
}

TEST(EngineCase, OptimizedSwapsTheStc) {
  const EngineCase base = hpc_combustor_hpt(false);
  const EngineCase opt = hpc_combustor_hpt(true);
  EXPECT_EQ(base.instances[13].stc.name, "Base-STC-380M");
  EXPECT_EQ(opt.instances[13].stc.name, "Optimized-STC");
}

TEST(EngineCase, SmallValidationCase) {
  const EngineCase c = small_validation_case();
  ASSERT_EQ(c.instances.size(), 3u);
  EXPECT_EQ(c.instances[1].kind, AppKind::kSimpic);
  EXPECT_EQ(c.instances[1].stc.proxy_mesh_cells, 28'000'000);
  EXPECT_EQ(c.couplers.size(), 3u);
}

TEST(CaseIo, ParsesAMinimalCase) {
  std::istringstream in(R"(
# a two-row compressor with a combustor proxy
name Tiny test engine
pressure_steps_per_density_step 2

instance mgcfd rotor cells=24000000 iters=10
instance simpic combustor stc=base-28m
coupler sliding rotor combustor every=1 cells=12345
)");
  const EngineCase ec = load_engine_case(in);
  EXPECT_EQ(ec.name, "Tiny test engine");
  ASSERT_EQ(ec.instances.size(), 2u);
  EXPECT_EQ(ec.instances[0].kind, AppKind::kMgcfd);
  EXPECT_EQ(ec.instances[0].iterations_per_density_step, 10);
  EXPECT_EQ(ec.instances[1].stc.proxy_mesh_cells, 28'000'000);
  ASSERT_EQ(ec.couplers.size(), 1u);
  EXPECT_EQ(ec.couplers[0].interface_cells, 12345);
}

TEST(CaseIo, DefaultsInterfaceSizesFromFractions) {
  std::istringstream in(R"(
instance mgcfd a cells=100000000
instance mgcfd b cells=200000000
coupler sliding a b
coupler steady a b
)");
  const EngineCase ec = load_engine_case(in);
  EXPECT_EQ(ec.couplers[0].interface_cells,
            static_cast<std::int64_t>(100e6 * kSlidingInterfaceFraction));
  EXPECT_EQ(ec.couplers[1].interface_cells,
            static_cast<std::int64_t>(100e6 * kSteadyInterfaceFraction));
  EXPECT_EQ(ec.couplers[0].exchange_every, 1);
  EXPECT_EQ(ec.couplers[1].exchange_every, 20);
}

TEST(CaseIo, RoundTripsTheEngineCase) {
  const EngineCase original = hpc_combustor_hpt_with_casing(true);
  std::ostringstream out;
  save_engine_case(out, original);
  std::istringstream in(out.str());
  const EngineCase loaded = load_engine_case(in);
  ASSERT_EQ(loaded.instances.size(), original.instances.size());
  ASSERT_EQ(loaded.couplers.size(), original.couplers.size());
  for (std::size_t i = 0; i < original.instances.size(); ++i) {
    EXPECT_EQ(loaded.instances[i].name, original.instances[i].name);
    EXPECT_EQ(loaded.instances[i].kind, original.instances[i].kind);
    EXPECT_EQ(loaded.instances[i].mesh_cells,
              original.instances[i].mesh_cells);
  }
  for (std::size_t i = 0; i < original.couplers.size(); ++i) {
    EXPECT_EQ(loaded.couplers[i].kind, original.couplers[i].kind);
    EXPECT_EQ(loaded.couplers[i].interface_cells,
              original.couplers[i].interface_cells);
    EXPECT_EQ(loaded.couplers[i].exchange_every,
              original.couplers[i].exchange_every);
  }
}

TEST(CaseIo, RejectsMalformedInput) {
  const char* bad_cases[] = {
      "instance mgcfd a",                        // missing cells
      "instance warp a cells=10",                // unknown kind
      "instance simpic s stc=base-999m",         // unknown stc
      "instance mgcfd a cells=10\ncoupler sliding a b",  // unknown ref
      "bogus directive",
      "",                                        // no instances
      "instance mgcfd a cells=xyz",              // bad integer
      "instance mgcfd a cells=10\ninstance mgcfd a cells=10",  // duplicate
  };
  for (const char* text : bad_cases) {
    std::istringstream in(text);
    EXPECT_THROW(load_engine_case(in), CheckError) << text;
  }
}

TEST(Models, CurvesFitTheirOwnSweeps) {
  const EngineCase c = small_validation_case();
  const CaseModels models =
      build_case_models(c, sim::MachineModel::archer2(), fast_options());
  ASSERT_EQ(models.apps.size(), 3u);
  ASSERT_EQ(models.cus.size(), 3u);
  for (const auto& m : models.apps) {
    EXPECT_LT(m.curve.max_fit_error(), 0.15) << m.name;
  }
}

TEST(Models, SimpicCanUseManyMoreRanksThanItsCells) {
  const EngineCase c = hpc_combustor_hpt(false);
  const CaseModels models =
      build_case_models(c, sim::MachineModel::archer2(), fast_options());
  // 512k 1-D cells must allow >> 512000/2000 ranks.
  EXPECT_GT(models.apps[13].max_ranks, 10'000);
}

TEST(Coupled, RunsAtTheBottlenecksPace) {
  // The coupled runtime must track the slowest instance closely (the
  // paper found the overall-vs-SIMPIC difference to be ~5%).
  const EngineCase c = small_validation_case();
  RankAssignment ra;
  ra.app_ranks = {300, 4000, 300};
  ra.cu_ranks = {16, 8, 8};
  CoupledSimulation sim(c, sim::MachineModel::archer2(), ra);
  sim.run(10);
  double slowest = 0.0;
  for (int i = 0; i < 3; ++i) {
    slowest = std::max(slowest, sim.standalone_runtime(i, 10));
  }
  EXPECT_GE(sim.runtime(), 0.99 * slowest);
  EXPECT_LT(sim.runtime(), 1.2 * slowest);
}

TEST(Coupled, CouplingOverheadIsSmall) {
  const EngineCase c = small_validation_case();
  RankAssignment ra;
  ra.app_ranks = {300, 4000, 300};
  ra.cu_ranks = {32, 16, 16};
  CoupledSimulation with(c, sim::MachineModel::archer2(), ra);
  with.run(20);
  CoupledSimulation without(c, sim::MachineModel::archer2(), ra);
  without.set_coupling_enabled(false);
  without.run(20);
  const double overhead =
      (with.runtime() - without.runtime()) / with.runtime();
  EXPECT_GE(overhead, 0.0);
  EXPECT_LT(overhead, 0.05);
}

TEST(Coupled, InstanceRuntimesAreOrdered) {
  const EngineCase c = small_validation_case();
  RankAssignment ra;
  ra.app_ranks = {200, 1000, 200};
  ra.cu_ranks = {8, 4, 4};
  CoupledSimulation sim(c, sim::MachineModel::archer2(), ra);
  sim.run(5);
  for (int i = 0; i < 3; ++i) {
    EXPECT_GT(sim.instance_runtime(i), 0.0);
    EXPECT_LE(sim.instance_runtime(i), sim.runtime() + 1e-12);
  }
}

TEST(Coupled, RejectsMismatchedAssignment) {
  const EngineCase c = small_validation_case();
  RankAssignment ra;
  ra.app_ranks = {100, 100};  // missing one instance
  ra.cu_ranks = {4, 4, 4};
  EXPECT_THROW(CoupledSimulation(c, sim::MachineModel::archer2(), ra),
               CheckError);
}

TEST(EndToEnd, SmallCasePredictionsWithinPaperTolerance) {
  // Fig 8: model the small case, allocate 5000 cores, run coupled, and
  // check per-instance prediction error stays below the paper's reported
  // 18% worst case.
  const EngineCase c = small_validation_case();
  const auto machine = sim::MachineModel::archer2();
  const CaseModels models = build_case_models(c, machine, fast_options());
  const perfmodel::Allocation alloc =
      perfmodel::distribute_ranks(models.apps, models.cus, 5000);

  RankAssignment ra{alloc.app_ranks, alloc.cu_ranks};
  CoupledSimulation sim(c, machine, ra);
  const int steps = 10;
  sim.run(steps);
  const double step_fraction =
      static_cast<double>(steps) / 1000.0;  // models assume 1000 steps
  for (std::size_t i = 0; i < models.apps.size(); ++i) {
    const double measured =
        sim.standalone_runtime(static_cast<int>(i), steps) / step_fraction;
    const double predicted = models.apps[i].time(alloc.app_ranks[i]);
    EXPECT_LT(percent_error(predicted, measured), 18.0)
        << models.apps[i].name;
  }
}

TEST(Coupled, RuntimeIsLinearInSteps) {
  // The shortened-run methodology (run 50 steps, scale to 1000) relies on
  // the coupled workload being steady and periodic.
  const EngineCase c = small_validation_case();
  RankAssignment ra;
  ra.app_ranks = {200, 1000, 200};
  ra.cu_ranks = {8, 4, 4};
  CoupledSimulation sim(c, sim::MachineModel::archer2(), ra);
  sim.run(20);
  const double t20 = sim.runtime();
  sim.run(20);  // cumulative: now 40 steps
  const double t40 = sim.runtime();
  EXPECT_NEAR(t40, 2.0 * t20, 0.02 * t40);
}

TEST(EndToEnd, OptimizedBeatsBaseAtScale) {
  // The headline claim: with the optimised pressure solver the coupled
  // simulation speeds up by roughly 4-6x at 40,000 cores.
  const auto machine = sim::MachineModel::archer2();
  double runtimes[2];
  for (const bool optimized : {false, true}) {
    const EngineCase c = hpc_combustor_hpt(optimized);
    const CaseModels models = build_case_models(c, machine, fast_options());
    const perfmodel::Allocation alloc =
        perfmodel::distribute_ranks(models.apps, models.cus, 40000);
    RankAssignment ra{alloc.app_ranks, alloc.cu_ranks};
    CoupledSimulation sim(c, machine, ra);
    sim.run(10);
    runtimes[optimized ? 1 : 0] = sim.runtime();
  }
  const double speedup = runtimes[0] / runtimes[1];
  EXPECT_GT(speedup, 3.5);
  EXPECT_LT(speedup, 8.0);
}

}  // namespace
}  // namespace cpx::workflow
