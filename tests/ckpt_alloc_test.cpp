// Allocation-count regression for the checkpoint hot path: the ckpt::Writer
// staging buffer is reused across snapshots (begin() clears but keeps
// capacity), so once a first snapshot has sized it, re-serialising state of
// the same shape must perform ZERO heap allocations. Enforced by replacing
// global operator new/delete with counting versions, exactly like
// tests/solver_alloc_test.cpp.
//
// This file must stay a standalone test binary: the global operator
// new/delete replacement below applies to the whole process.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "sim/cluster.hpp"
#include "sim/machine.hpp"

namespace {

std::atomic<std::size_t> g_allocation_count{0};

void* counted_alloc(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, rounded ? rounded : align)) {
    return p;
  }
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace cpx::ckpt {
namespace {

/// Allocations performed by fn().
template <typename Fn>
std::size_t allocations_during(Fn&& fn) {
  const std::size_t before =
      g_allocation_count.load(std::memory_order_relaxed);
  fn();
  return g_allocation_count.load(std::memory_order_relaxed) - before;
}

TEST(CkptAllocations, WarmWriterReuseAllocatesNothing) {
  Writer w;
  const std::vector<double> field(4096, 1.5);
  const std::vector<std::int64_t> ids(512, 7);
  const auto emit = [&] {
    w.begin();
    w.begin_section("sim/cluster");
    w.put_u32(16);
    w.put_f64_span(field);
    w.put_i64_span(ids);
    w.end_section();
    w.begin_section("spray/cloud");
    w.put_u64(123);
    w.put_f64_span(field);
    w.put_str("a-section-name-too-long-for-sso");
    w.end_section();
    w.finish();
  };

  emit();  // warm-up: sizes the staging buffer once
  const std::size_t warm_size = w.bytes().size();
  const std::size_t allocs = allocations_during([&] {
    for (int i = 0; i < 8; ++i) {
      emit();
    }
  });
  EXPECT_EQ(allocs, 0u)
      << "warm snapshot writes made " << allocs << " heap allocations";
  EXPECT_EQ(w.bytes().size(), warm_size);
}

TEST(CkptAllocations, WarmClusterSnapshotAllocatesNothing) {
  cpx::sim::Cluster cluster(cpx::sim::MachineModel::archer2(), 32);
  const auto rgn = cluster.region("warm");
  for (cpx::sim::Rank r = 0; r < 32; ++r) {
    cluster.compute_seconds(r, 0.25, rgn);
  }
  cluster.send(0, 17, 4096, rgn);

  Writer w;
  const auto emit = [&] {
    w.begin();
    cluster.serialize(w);
    w.finish();
  };
  emit();  // warm-up
  const std::size_t allocs = allocations_during([&] {
    for (int i = 0; i < 8; ++i) {
      emit();
    }
  });
  EXPECT_EQ(allocs, 0u) << "warm cluster snapshot made " << allocs
                        << " heap allocations";
}

}  // namespace
}  // namespace cpx::ckpt
