// Unit tests for the support module: checks, RNG, statistics, least
// squares, tables, and option parsing.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "support/check.hpp"
#include "support/log.hpp"
#include "support/lsq.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace cpx {
namespace {

TEST(Check, ThrowsWithMessage) {
  EXPECT_THROW(CPX_CHECK(1 == 2), CheckError);
  try {
    CPX_CHECK_MSG(false, "context " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

TEST(Check, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(CPX_CHECK(2 + 2 == 4));
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a() == b() ? 1 : 0;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.uniform();
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sq / kN, 1.0, 0.05);
}

TEST(Rng, HashMixIsStable) {
  EXPECT_EQ(hash_mix(1, 2, 3), hash_mix(1, 2, 3));
  EXPECT_NE(hash_mix(1, 2, 3), hash_mix(1, 3, 2));
}

TEST(Stats, Summary) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, EmptySummary) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, Errors) {
  EXPECT_DOUBLE_EQ(percent_error(110.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(percent_error(90.0, 100.0), 10.0);
  EXPECT_THROW(relative_error(1.0, 0.0), CheckError);
}

TEST(Stats, ParallelEfficiencyAndSpeedup) {
  // Perfect scaling: T halves when cores double.
  EXPECT_DOUBLE_EQ(parallel_efficiency(10.0, 100.0, 5.0, 200.0), 1.0);
  // Half efficiency: same time with twice the cores.
  EXPECT_DOUBLE_EQ(parallel_efficiency(10.0, 100.0, 10.0, 200.0), 0.5);
  EXPECT_DOUBLE_EQ(speedup(10.0, 2.5), 4.0);
}

TEST(Stats, Interp1) {
  const std::vector<double> xs = {0.0, 1.0, 2.0};
  const std::vector<double> ys = {0.0, 10.0, 40.0};
  EXPECT_DOUBLE_EQ(interp1(xs, ys, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(interp1(xs, ys, 1.5), 25.0);
  EXPECT_DOUBLE_EQ(interp1(xs, ys, -1.0), 0.0);   // clamped
  EXPECT_DOUBLE_EQ(interp1(xs, ys, 9.0), 40.0);   // clamped
}

TEST(Stats, RSquaredPerfectFit) {
  const std::vector<double> obs = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r_squared(obs, obs), 1.0);
}

TEST(Stats, GeometricMean) {
  const std::vector<double> v = {1.0, 4.0, 16.0};
  EXPECT_NEAR(geometric_mean(v), 4.0, 1e-12);
}

TEST(Lsq, RecoversPolynomial) {
  // y = 3 - 2x + 0.5x^2, exactly representable.
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 20; ++i) {
    const double x = 0.3 * i;
    xs.push_back(x);
    ys.push_back(3.0 - 2.0 * x + 0.5 * x * x);
  }
  const auto c = fit_polynomial(xs, ys, 2);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_NEAR(c[0], 3.0, 1e-6);
  EXPECT_NEAR(c[1], -2.0, 1e-6);
  EXPECT_NEAR(c[2], 0.5, 1e-6);
  EXPECT_NEAR(eval_polynomial(c, 2.0), 3.0 - 4.0 + 2.0, 1e-6);
}

TEST(Lsq, RecoversRuntimeModel) {
  // The performance-model curve family: T(p) = a/p + b + c*log2(p).
  const double a = 100.0;
  const double b = 0.5;
  const double c = 0.01;
  std::vector<double> xs;
  std::vector<double> ys;
  for (double p = 1; p <= 4096; p *= 2) {
    xs.push_back(p);
    ys.push_back(a / p + b + c * std::log2(p));
  }
  const std::vector<BasisFn> basis = {
      [](double p) { return 1.0 / p; },
      [](double) { return 1.0; },
      [](double p) { return std::log2(p); },
  };
  const auto coefs = fit_basis(xs, ys, basis);
  EXPECT_NEAR(coefs[0], a, 1e-6);
  EXPECT_NEAR(coefs[1], b, 1e-6);
  EXPECT_NEAR(coefs[2], c, 1e-8);
}

TEST(Lsq, WeightedFitPrefersWeightedPoints) {
  // Two inconsistent clusters; heavy weights on the second.
  const std::vector<double> xs = {1.0, 1.0, 1.0, 1.0};
  const std::vector<double> ys = {0.0, 0.0, 10.0, 10.0};
  const std::vector<BasisFn> basis = {[](double) { return 1.0; }};
  const std::vector<double> w = {1.0, 1.0, 99.0, 99.0};
  const auto c = fit_basis(xs, ys, basis, w);
  EXPECT_GT(c[0], 9.0);
}

TEST(Lsq, ThrowsOnUnderdetermined) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {1.0};
  EXPECT_THROW(solve_normal_equations(a, 1, 2, b), CheckError);
}

TEST(Table, AlignsAndCounts) {
  Table t({"name", "cores", "time"});
  t.add_row({std::string("mgcfd"), 128LL, 1.5});
  t.add_row({std::string("simpic"), 4096LL, 0.25});
  EXPECT_EQ(t.num_rows(), 2u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("mgcfd"), std::string::npos);
  EXPECT_NE(s.find("4096"), std::string::npos);
}

TEST(Table, CsvQuotesCommas) {
  Table t({"a"});
  t.add_row({std::string("x,y")});
  std::ostringstream oss;
  t.print_csv(oss);
  EXPECT_NE(oss.str().find("\"x,y\""), std::string::npos);
}

TEST(Table, RejectsBadRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only one")}), CheckError);
}

TEST(Log, LevelRoundTrips) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
  // Emitting below the threshold must be a no-op (and not crash).
  CPX_LOG_DEBUG("suppressed " << 42);
  set_log_level(before);
}

TEST(Log, MacroEvaluatesStreamLazily) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  const auto count = [&]() {
    ++evaluations;
    return 1;
  };
  CPX_LOG_ERROR("never " << count());
  EXPECT_EQ(evaluations, 0);  // stream body skipped below threshold
  set_log_level(before);
}

TEST(Table, PrecisionControlsDoubleFormatting) {
  Table t({"v"});
  t.set_precision(2);
  t.add_row({3.14159});
  EXPECT_NE(t.to_string().find("3.1"), std::string::npos);
  EXPECT_EQ(t.to_string().find("3.14159"), std::string::npos);
  EXPECT_THROW(t.set_precision(0), CheckError);
}

TEST(Options, HelpTextListsDescribedKeys) {
  Options o;
  o.describe("cores", "the core budget");
  o.describe("steps", "how many steps");
  const std::string help = o.help_text("prog");
  EXPECT_NE(help.find("--cores"), std::string::npos);
  EXPECT_NE(help.find("how many steps"), std::string::npos);
  EXPECT_NE(help.find("usage: prog"), std::string::npos);
}

TEST(Options, ParsesForms) {
  const char* argv[] = {"prog", "--cores=100", "--mesh=8000000",
                        "--verbose", "pos"};
  const Options o = Options::parse(5, argv);
  EXPECT_EQ(o.get_int("cores", 0), 100);
  EXPECT_EQ(o.get_int("mesh", 0), 8000000);
  EXPECT_TRUE(o.get_bool("verbose", false));
  ASSERT_EQ(o.positionals().size(), 1u);
  EXPECT_EQ(o.positionals()[0], "pos");
  EXPECT_EQ(o.get_double("absent", 2.5), 2.5);
}

TEST(Options, RejectsBadNumbers) {
  const char* argv[] = {"prog", "--cores=abc"};
  const Options o = Options::parse(2, argv);
  EXPECT_THROW(o.get_int("cores", 0), CheckError);
}

TEST(Options, RejectsEmptyNumericValues) {
  // "--iters=" parses as the key "iters" with an empty value; numeric
  // accessors must reject it instead of silently returning 0.
  const char* argv[] = {"prog", "--iters=", "--rate="};
  const Options o = Options::parse(3, argv);
  EXPECT_THROW(o.get_int("iters", 7), CheckError);
  EXPECT_THROW(o.get_double("rate", 7.0), CheckError);
  // The key is still present, and the empty string is a valid string value.
  EXPECT_TRUE(o.has("iters"));
  EXPECT_EQ(o.get_string("iters", "fallback"), "");
}

TEST(Options, RejectsIntegerOverflow) {
  const char* argv[] = {"prog", "--cells=99999999999999999999",
                        "--neg=-99999999999999999999"};
  const Options o = Options::parse(3, argv);
  EXPECT_THROW(o.get_int("cells", 0), CheckError);
  EXPECT_THROW(o.get_int("neg", 0), CheckError);
}

TEST(Options, RejectsDoubleOverflowAcceptsUnderflow) {
  const char* argv[] = {"prog", "--big=1e999", "--neg-big=-1e999",
                        "--tiny=1e-999"};
  const Options o = Options::parse(4, argv);
  EXPECT_THROW(o.get_double("big", 0.0), CheckError);
  EXPECT_THROW(o.get_double("neg-big", 0.0), CheckError);
  // Underflow rounds towards zero; that is a usable value, not an error.
  const double tiny = o.get_double("tiny", 1.0);
  EXPECT_GE(tiny, 0.0);
  EXPECT_LT(tiny, 1e-300);
}

TEST(Options, RejectsTrailingJunkAfterNumbers) {
  const char* argv[] = {"prog", "--n=12x", "--f=3.5q"};
  const Options o = Options::parse(3, argv);
  EXPECT_THROW(o.get_int("n", 0), CheckError);
  EXPECT_THROW(o.get_double("f", 0.0), CheckError);
}

}  // namespace
}  // namespace cpx
