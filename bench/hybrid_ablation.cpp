// Hybrid MPI+OpenMP ablation (§IV-A: "spatial partitioning is most
// commonly used, often with hybrid MPI+OpenMP to take advantage of shared
// memory space").
//
// Hybrid execution is modelled exactly within the machine model: t threads
// per rank means 1/t as many ranks on the same cores, each rank holding
// t-fold work and computing at ~t-fold rate (with an imperfect-threading
// efficiency). For SIMPIC this is a *structural* win: the field-solve
// pipeline is O(ranks), so 8 threads/rank cuts the serial term 8x at the
// same core count — which is why hybrid is attractive for codes with
// serialised components, independent of any cache effects.

#include <cmath>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "sim/cluster.hpp"
#include "simpic/instance.hpp"
#include "simpic/stc.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

namespace {

using namespace cpx;

/// Machine as seen by a hybrid run with t threads per rank: same nodes and
/// network, 1/t ranks per node, per-rank compute rate scaled by the
/// threaded speedup t * eff^log2(t).
sim::MachineModel hybrid_machine(int threads, double thread_efficiency) {
  sim::MachineModel m = sim::MachineModel::archer2();
  const double speedup =
      threads * std::pow(thread_efficiency,
                         std::log2(static_cast<double>(threads)));
  m.cores_per_node /= threads;
  m.flop_rate *= speedup;
  // The node's memory bandwidth is now shared by fewer, fatter ranks.
  // (node_mem_bw / cores_per_node grows by t automatically.)
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  cpx::Options opts = cpx::Options::parse(argc, argv);
  opts.describe("metrics", "write host-metrics JSON to this path");
  if (opts.get_bool("help", false)) {
    std::cout << opts.help_text("hybrid_ablation");
    return 0;
  }
  cpx::bench::MetricsGuard metrics_guard(opts);

  const int total_cores = 8192;
  const double thread_efficiency = 0.95;  // per-doubling OpenMP efficiency

  print_banner(std::cout,
               "Hybrid MPI+OpenMP ablation — SIMPIC Base-STC-380M on " +
                   std::to_string(total_cores) + " cores");
  Table table({"threads/rank", "MPI ranks", "step time (s)",
               "pipeline share %", "vs pure MPI"});
  table.set_precision(4);
  double pure_mpi = 0.0;
  for (int threads : {1, 2, 4, 8, 16, 32}) {
    const int ranks = total_cores / threads;
    const sim::MachineModel machine =
        hybrid_machine(threads, thread_efficiency);
    sim::Cluster cluster(machine, ranks);
    // The global problem is fixed; with 1/t as many ranks each rank owns
    // t-fold particles automatically, and the machine's t-fold per-rank
    // rate divides it back out up to the imperfect-threading loss. The
    // pipeline, however, has only (ranks - 1) hops — the structural win.
    simpic::Instance inst("simpic", simpic::base_stc_380m(), {0, ranks});
    inst.step(cluster);
    const double t0 = cluster.max_clock();
    inst.step(cluster);
    const double step = cluster.max_clock() - t0;
    const double pipeline = inst.pipeline_seconds(cluster);
    if (threads == 1) {
      pure_mpi = step;
    }
    table.add_row({static_cast<long long>(threads),
                   static_cast<long long>(ranks), step,
                   100.0 * pipeline / step, pure_mpi / step});
  }
  table.print(std::cout);
  std::cout
      << "(The serialised field-solve pipeline scales with the rank count, "
         "so threads trade a little imperfect-OpenMP compute for a "
         "linearly shorter serial term — hybrid wins once the pipeline "
         "dominates. The same argument applies to the production spray's "
         "serialised exchange.)\n";
  return 0;
}
