// Roofline sweep of the SIMD kernel layer (docs/observability.md).
//
// Measures machine ceilings with micro-kernels (a multi-accumulator
// multiply-add loop for compute, a large-array triad for bandwidth), then
// times every flop/byte-counted kernel single-threaded at the build's
// native simd width and again at width 1 (the CPX_SIMD=off behaviour).
// Work sizes default to cache-resident vectors so the kernels express
// instruction throughput rather than DRAM limits, which is where the
// pack-vs-scalar contrast lives. Emits the `cpx-roofline-v1` JSON with
// per-kernel arithmetic intensity, achieved GFLOP/s and GB/s, and the
// measured speedup over the scalar build.
//
//   ./roofline [--n=16384] [--reps=400] [--out=roofline.json]

#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <vector>

#include "amg/smoothers.hpp"
#include "bench_common.hpp"
#include "cpx/interpolation.hpp"
#include "perfmodel/roofline.hpp"
#include "simpic/pic.hpp"
#include "sparse/csr.hpp"
#include "sparse/generators.hpp"
#include "support/aligned.hpp"
#include "support/blas1.hpp"
#include "support/metric_names.hpp"
#include "support/options.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/simd.hpp"

namespace {

using cpx::support::aligned_vector;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

aligned_vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  cpx::Rng rng(seed);
  aligned_vector<double> v(n);
  for (double& x : v) {
    x = rng.uniform(-1.0, 1.0);
  }
  return v;
}

/// Compute ceiling: independent multiply-add chains over simd::pack
/// accumulators at the build's widest width — the best sustained flop
/// rate this build's codegen reaches for the same pack type the kernels
/// use (no -march flags, so this is the portable-baseline ceiling).
double measure_peak_gflops() {
  namespace simd = cpx::support::simd;
  using Pack = simd::pack<simd::kMaxWidth>;
  constexpr int kAcc = 4;  // 4 x 8 lanes stays within the register file
  constexpr std::int64_t kIters = 2'000'000;
  Pack acc[kAcc];
  for (int i = 0; i < kAcc; ++i) {
    acc[i] = Pack::broadcast(1.0 + 1e-9 * i);
  }
  const Pack m = Pack::broadcast(1.0 + 1e-12);
  const Pack a = Pack::broadcast(1e-12);
  const auto t0 = Clock::now();
  for (std::int64_t it = 0; it < kIters; ++it) {
    for (int i = 0; i < kAcc; ++i) {
      acc[i] = simd::fma(acc[i], m, a);
    }
  }
  const double elapsed = seconds_since(t0);
  double sink = 0.0;
  for (int i = 0; i < kAcc; ++i) {
    sink += simd::hsum(acc[i]);
  }
  // 2 flops (mul + add) per lane per accumulator per iteration; the sink
  // keeps the loop from being optimised away.
  const double flops = 2.0 * simd::kMaxWidth * kAcc *
                       static_cast<double>(kIters);
  return sink != 0.0 ? flops / elapsed * 1e-9 : 0.0;
}

/// Bandwidth ceiling: triad a[i] = b[i] + s*c[i] over arrays far larger
/// than the last-level cache; counts 3 streamed doubles per element.
double measure_peak_gbs() {
  const std::size_t n = 1 << 23;  // 3 x 64 MiB
  aligned_vector<double> a(n, 0.0);
  const aligned_vector<double> b = random_vector(n, 11);
  const aligned_vector<double> c = random_vector(n, 12);
  const double s = 1.000000001;
  constexpr int kReps = 6;
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = b[i] + s * c[i];
    }
    const double elapsed = seconds_since(t0);
    const double bytes = 3.0 * static_cast<double>(n) * sizeof(double);
    best = std::max(best, bytes / elapsed * 1e-9);
  }
  return a[n / 2] != 0.0 || a[0] == a[0] ? best : 0.0;
}

/// Times `fn` run `reps` times at the given simd width and reads the
/// flop/byte counter deltas the kernels record.
struct Measurement {
  std::int64_t flops = 0;
  std::int64_t bytes = 0;
  double seconds = 0.0;
};

template <typename Fn>
Measurement measure(int width, int reps, const char* flop_counter,
                    const char* byte_counter, Fn&& fn) {
  namespace metrics = cpx::support::metrics;
  cpx::support::simd::set_width(width);
  fn();  // warm up caches and lazily-sized scratch
  const auto before = metrics::snapshot();
  const auto t0 = Clock::now();
  for (int r = 0; r < reps; ++r) {
    fn();
  }
  Measurement m;
  m.seconds = seconds_since(t0) / reps;
  const auto after = metrics::snapshot();
  m.flops = (after.counter(flop_counter) - before.counter(flop_counter)) /
            reps;
  m.bytes = (after.counter(byte_counter) - before.counter(byte_counter)) /
            reps;
  return m;
}

template <typename Fn>
cpx::perfmodel::KernelSample sample_kernel(const std::string& name,
                                           int native_width, int reps,
                                           const char* flop_counter,
                                           const char* byte_counter,
                                           Fn&& fn) {
  const Measurement vec =
      measure(native_width, reps, flop_counter, byte_counter, fn);
  const Measurement scalar =
      measure(1, reps, flop_counter, byte_counter, fn);
  cpx::perfmodel::KernelSample s;
  s.name = name;
  s.flops = vec.flops;
  s.bytes = vec.bytes;
  s.seconds = vec.seconds;
  s.scalar_seconds = scalar.seconds;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cpx;
  namespace simd = support::simd;

  Options opts = Options::parse(argc, argv);
  opts.describe("n", "blas1 vector length (default 16384, cache-resident)");
  opts.describe("reps", "timed repetitions per kernel (default 400)");
  opts.describe("out", "roofline JSON path (default roofline.json)");
  if (opts.get_bool("help", false)) {
    std::cout << opts.help_text("roofline");
    return 0;
  }
  const auto n = static_cast<std::size_t>(opts.get_int("n", 16384));
  const int reps = static_cast<int>(opts.get_int("reps", 400));
  const std::string out_path = opts.get_string("out", "roofline.json");

  // Single-core, counters on: the roofline is a per-core instrument, and
  // the flop/byte counters feed the sample directly.
  support::set_max_threads(1);
  support::metrics::set_enabled(true);
  const int native = simd::default_width();

  perfmodel::RooflineMachine machine;
  machine.peak_gflops = measure_peak_gflops();
  machine.peak_gbs = measure_peak_gbs();
  std::cout << "machine: " << machine.peak_gflops << " GFLOP/s, "
            << machine.peak_gbs << " GB/s, ridge "
            << machine.ridge_intensity() << " flop/byte\n";

  std::vector<perfmodel::KernelSample> samples;

  // --- blas1 ---
  const aligned_vector<double> a = random_vector(n, 1);
  const aligned_vector<double> b = random_vector(n, 2);
  double sink = 0.0;
  samples.push_back(sample_kernel(
      "blas1/dot", native, reps, support::metric_names::kBlas1Flops,
      support::metric_names::kBlas1Bytes,
      [&] { sink += support::blas1::dot(a, b); }));

  aligned_vector<double> x = random_vector(n, 3);
  aligned_vector<double> r = random_vector(n, 4);
  samples.push_back(sample_kernel(
      "blas1/axpy2_norm2", native, reps, support::metric_names::kBlas1Flops,
      support::metric_names::kBlas1Bytes,
      [&] { sink += support::blas1::axpy2_norm2(1e-6, a, b, x, r); }));

  // --- sparse SpMV (3-D Poisson operator, 7-point rows) ---
  const sparse::CsrMatrix mat = sparse::laplacian_3d(24, 24, 24);
  const aligned_vector<double> mx =
      random_vector(static_cast<std::size_t>(mat.cols()), 5);
  aligned_vector<double> my(static_cast<std::size_t>(mat.rows()), 0.0);
  samples.push_back(sample_kernel(
      "sparse/spmv", native, reps, support::metric_names::kSparseSpmvFlops,
      support::metric_names::kSparseSpmvBytes,
      [&] { sparse::spmv(mat, mx, my); }));

  // --- AMG Jacobi smoother (long rows exercise the gather tree) ---
  const sparse::CsrMatrix spd = sparse::random_spd(8192, 16, 21);
  aligned_vector<double> sx(static_cast<std::size_t>(spd.rows()), 0.0);
  const aligned_vector<double> sb =
      random_vector(static_cast<std::size_t>(spd.rows()), 6);
  aligned_vector<double> scratch(static_cast<std::size_t>(spd.rows()), 0.0);
  amg::SmootherOptions sopts;
  sopts.kind = amg::SmootherKind::kJacobi;
  samples.push_back(sample_kernel(
      "amg/jacobi_smooth", native, reps,
      support::metric_names::kAmgSmoothFlops,
      support::metric_names::kAmgSmoothBytes,
      [&] { amg::smooth(spd, sx, sb, sopts, scratch); }));

  // --- SIMPIC push + deposit ---
  simpic::PicOptions popts;
  popts.cells = 256;
  popts.boundary = simpic::Boundary::kPeriodic;
  simpic::Pic pic(popts);
  pic.load_uniform(64, 0.1, 0.05);  // 16384 particles
  pic.deposit();
  pic.solve_field();
  samples.push_back(sample_kernel(
      "simpic/push", native, reps, support::metric_names::kSimpicPushFlops,
      support::metric_names::kSimpicPushBytes, [&] { pic.push(); }));
  samples.push_back(sample_kernel(
      "simpic/deposit", native, reps,
      support::metric_names::kSimpicDepositFlops,
      support::metric_names::kSimpicDepositBytes, [&] { pic.deposit(); }));

  // --- coupler IDW interpolation (k=12 donors hits the tree path) ---
  Rng prng(31);
  std::vector<mesh::Vec3> donors(4096);
  std::vector<mesh::Vec3> targets(4096);
  for (auto& p : donors) {
    p = {prng.uniform(), prng.uniform(), prng.uniform()};
  }
  for (auto& p : targets) {
    p = {prng.uniform(), prng.uniform(), prng.uniform()};
  }
  const auto stencils = coupler::build_idw_stencils(donors, targets, 12);
  aligned_vector<double> donor_field =
      random_vector(donors.size(), 7);
  aligned_vector<double> target_field(targets.size(), 0.0);
  samples.push_back(sample_kernel(
      "coupler/interpolate", native, reps,
      support::metric_names::kCouplerInterpolateFlops,
      support::metric_names::kCouplerInterpolateBytes,
      [&] { coupler::apply_stencils(stencils, donor_field, target_field); }));

  simd::set_width(native);

  Table table({"kernel", "flop/byte", "GFLOP/s", "GB/s",
                        "% roof", "speedup vs scalar"});
  for (const auto& s : samples) {
    const perfmodel::RooflinePoint p = perfmodel::classify(s, machine);
    table.add_row({s.name, p.intensity, p.gflops, p.gbs,
                   100.0 * p.fraction_of_roof,
                   s.scalar_seconds / s.seconds});
  }
  table.print(std::cout);
  if (sink == 0.0) {
    std::cout << "(degenerate sink)\n";
  }

  std::ofstream out(out_path);
  perfmodel::write_roofline_json(out, machine, samples);
  std::cout << "roofline JSON written to " << out_path << "\n";
  return 0;
}
