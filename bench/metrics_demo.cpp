// Exercises the host observability layer (docs/observability.md) against
// the real threaded kernels of every module the paper profiles: sparse
// SpMV/SpGEMM, the AMG setup + solve, the coupler donor search and field
// exchange, the SIMPIC particle loop, and a short coupled workflow run.
// Metrics are enabled unconditionally, so the emitted JSON always carries
// host region totals for sparse, amg, coupler, and simpic — the
// machine-readable Fig-5-style breakdown of an actual run.
//
//   ./metrics_demo [--n=48] [--queries=20000] [--steps=4]
//                  [--metrics=out.json] [--trace=out_trace.json]

#include <fstream>
#include <iostream>
#include <vector>

#include "amg/hierarchy.hpp"
#include "amg/pcg.hpp"
#include "bench_common.hpp"
#include "cpx/field_coupler.hpp"
#include "cpx/search.hpp"
#include "simpic/pic.hpp"
#include "sparse/csr.hpp"
#include "sparse/generators.hpp"
#include "support/options.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "workflow/coupled.hpp"
#include "workflow/engine_case.hpp"

namespace {

std::vector<cpx::mesh::Vec3> random_points(std::size_t n,
                                           std::uint64_t seed) {
  cpx::Rng rng(seed);
  std::vector<cpx::mesh::Vec3> pts(n);
  for (auto& p : pts) {
    p = {rng.uniform(), rng.uniform(), rng.uniform()};
  }
  return pts;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cpx;

  Options opts = Options::parse(argc, argv);
  opts.describe("n", "3-D Poisson grid edge for SpMV/AMG (default 48)");
  opts.describe("queries", "coupler donor queries (default 20000)");
  opts.describe("steps", "SIMPIC and coupled-workflow steps (default 4)");
  opts.describe("metrics", "JSON report path (default metrics_demo.json)");
  opts.describe("trace", "Chrome trace path for host events (optional)");
  if (opts.get_bool("help", false)) {
    std::cout << opts.help_text("metrics_demo");
    return 0;
  }

  // This bench exists to produce a metrics report, so recording is on even
  // without --metrics / CPX_METRICS (other benches leave it opt-in).
  support::metrics::set_enabled(true);
  const std::string trace_path = opts.get_string("trace", "");
  if (!trace_path.empty()) {
    support::metrics::set_trace_events(true);
  }
  bench::MetricsGuard metrics_guard(opts);

  const auto n = static_cast<int>(opts.get_int("n", 48));
  const auto queries = opts.get_int("queries", 20'000);
  const auto steps = static_cast<int>(opts.get_int("steps", 4));

  // --- sparse + amg: assemble a 3-D Poisson operator, solve with
  // AMG-preconditioned CG (drives spmv, spgemm, smoothers, pcg). ---
  const sparse::CsrMatrix a = sparse::laplacian_3d(n, n, n);
  std::vector<double> x(static_cast<std::size_t>(a.rows()), 0.0);
  std::vector<double> b(static_cast<std::size_t>(a.rows()), 1.0);
  amg::AmgHierarchy hierarchy(a, {});
  const amg::PcgResult pcg_result =
      amg::pcg(a, x, b, 1e-8, 100, amg::make_amg_preconditioner(hierarchy));
  std::cout << "amg-pcg: " << pcg_result.iterations << " iterations, rel "
            << pcg_result.relative_residual << "\n";

  // --- coupler: donor search + sliding-plane field exchange. ---
  const auto donors = random_points(static_cast<std::size_t>(queries), 42);
  const auto targets = random_points(static_cast<std::size_t>(queries), 43);
  const coupler::KdTree tree(donors);
  const auto nearest = tree.nearest_batch(targets);
  coupler::FieldCoupler fc(donors, targets,
                           coupler::InterfaceKind::kSlidingPlane, 4);
  std::vector<double> donor_field(donors.size(), 1.5);
  std::vector<double> target_field(targets.size(), 0.0);
  fc.transfer(donor_field, target_field);
  fc.advance_rotation(0.01);
  fc.transfer(donor_field, target_field);
  std::cout << "coupler: " << nearest.size() << " donor queries, "
            << target_field.front() << " transferred\n";

  // --- simpic: the particle loop (deposit / field solve / push). ---
  simpic::PicOptions pic_opts;
  pic_opts.cells = 256;
  simpic::Pic pic(pic_opts);
  pic.load_uniform(/*per_cell=*/200, /*v_thermal=*/0.05,
                   /*perturbation=*/0.01);
  pic.run(steps);
  std::cout << "simpic: " << pic.num_particles() << " particles after "
            << steps << " steps\n";

  // --- workflow: a short coupled run over the small validation case. ---
  const workflow::EngineCase ec = workflow::small_validation_case();
  workflow::RankAssignment ra;
  ra.app_ranks.assign(ec.instances.size(), 8);
  ra.cu_ranks.assign(ec.couplers.size(), 2);
  workflow::CoupledSimulation sim(ec, sim::MachineModel::archer2(), ra);
  sim.run(steps);
  std::cout << "workflow: coupled runtime " << sim.runtime()
            << " virtual s\n";

  if (!trace_path.empty()) {
    std::ofstream trace_out(trace_path);
    support::metrics::write_chrome_trace(trace_out);
    std::cout << "host Chrome trace written to " << trace_path << "\n";
  }

  // Default report path so a bare run always leaves a JSON artifact.
  if (support::metrics::output_path().empty()) {
    std::ofstream out("metrics_demo.json");
    support::metrics::write_json(out);
    std::cout << "host metrics JSON written to metrics_demo.json\n";
  }
  return 0;
}
