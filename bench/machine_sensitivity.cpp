// Machine-sensitivity ablation: DESIGN.md fixes the machine model once and
// never tunes it per experiment — this bench shows how the paper's
// headline observations respond when the machine changes, i.e. which
// conclusions are machine-robust and which are Slingshot-specific.
//
// For the reference machine, a slow-network variant, and a half-bandwidth
// variant, it reports: where Base-STC-28M loses 50% parallel efficiency
// (paper: ~3000 cores), the SIMPIC-vs-pressure proxy error, and the
// optimised-over-base coupled speedup at 40,000 cores.

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "perfmodel/allocator.hpp"
#include "pressure/surrogate.hpp"
#include "simpic/instance.hpp"
#include "workflow/coupled.hpp"
#include "workflow/engine_case.hpp"
#include "workflow/models.hpp"

namespace {

using namespace cpx;

/// First swept core count where PE vs 128 cores falls below 50%.
long long pe50_crossover(const sim::MachineModel& machine) {
  const std::vector<int> cores = {128,  256,  512,  1024, 2048,
                                  3000, 4096, 6144, 8192};
  const auto pts = perfmodel::measure_scaling(
      [](sim::RankRange r) {
        return std::make_unique<simpic::Instance>(
            "s", simpic::base_stc_28m(), r);
      },
      machine, cores, 2);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const double pe =
        (pts[0].seconds * pts[0].cores) / (pts[i].seconds * pts[i].cores);
    if (pe < 0.5) {
      return static_cast<long long>(pts[i].cores);
    }
  }
  return -1;
}

double proxy_worst_error(const sim::MachineModel& machine) {
  const std::vector<int> cores = {128, 512, 2048, 3000};
  const auto s_simpic = bench::measure_series(
      "simpic",
      [](sim::RankRange r) -> std::unique_ptr<sim::App> {
        return std::make_unique<simpic::Instance>(
            "s", simpic::base_stc_28m(), r);
      },
      machine, cores, 2, 50'000.0);
  const auto s_pressure = bench::measure_series(
      "pressure",
      [](sim::RankRange r) -> std::unique_ptr<sim::App> {
        return std::make_unique<pressure::Instance>(
            "p", pressure::Config::base_28m(), r);
      },
      machine, cores, 2, 10.0);
  double worst = 0.0;
  for (std::size_t i = 0; i < cores.size(); ++i) {
    worst = std::max(
        worst, percent_error(s_simpic.seconds[i], s_pressure.seconds[i]));
  }
  return worst;
}

double coupled_speedup(const sim::MachineModel& machine) {
  double runtimes[2];
  for (const bool optimized : {false, true}) {
    const workflow::EngineCase ec = workflow::hpc_combustor_hpt(optimized);
    const workflow::CaseModels models =
        workflow::build_case_models(ec, machine, {});
    const perfmodel::Allocation alloc =
        perfmodel::distribute_ranks(models.apps, models.cus, 40000);
    workflow::RankAssignment ra{alloc.app_ranks, alloc.cu_ranks};
    workflow::CoupledSimulation sim(ec, machine, ra);
    sim.run(20);
    runtimes[optimized ? 1 : 0] = sim.runtime();
  }
  return runtimes[0] / runtimes[1];
}

}  // namespace

int main() {
  sim::MachineModel half_bw = sim::MachineModel::archer2();
  half_bw.node_mem_bw /= 2.0;
  half_bw.bw_inter /= 2.0;
  half_bw.node_injection_bw /= 2.0;

  struct Variant {
    const char* name;
    sim::MachineModel machine;
  };
  const Variant variants[] = {
      {"ARCHER2 reference", sim::MachineModel::archer2()},
      {"slow network (20x latency, 1/10 bw)",
       sim::MachineModel::slow_network()},
      {"half bandwidth (memory + network)", half_bw},
  };

  print_banner(std::cout,
               "Machine sensitivity — which conclusions survive a machine "
               "change");
  Table table({"machine", "Base-STC 50% PE crossover (cores)",
               "proxy worst error %", "opt/base coupled speedup"});
  table.set_precision(4);
  for (const Variant& v : variants) {
    std::cout << "evaluating: " << v.name << "...\n";
    table.add_row({std::string(v.name), pe50_crossover(v.machine),
                   proxy_worst_error(v.machine), coupled_speedup(v.machine)});
  }
  table.print(std::cout);
  std::cout
      << "(The crossover location shifts with the network — it is a "
         "machine property — while the proxy-match quality and the 4-6x "
         "optimisation speedup band are robust, which is what makes the "
         "mini-app methodology transferable.)\n";
  return 0;
}
