// Coupling-overhead ablation (§V-B): the paper attributes the <0.5%
// coupling overhead to the tree-based search with prefetching adopted by
// the production coupler [31]; the HiPC'21 predecessor's brute-force
// search made coupling a significant bottleneck. This bench measures
//  (1) the coupled HPC-Combustor-HPT runtime with coupling on vs off
//      (isolating the end-to-end overhead), and
//  (2) per-exchange coupler-unit cost with tree vs brute-force search
//      across coupler sizes.

#include <iostream>

#include "cpx/unit.hpp"
#include "mgcfd/instance.hpp"
#include "perfmodel/allocator.hpp"
#include "support/table.hpp"
#include "workflow/coupled.hpp"
#include "workflow/engine_case.hpp"
#include "workflow/models.hpp"

int main() {
  using namespace cpx;
  const auto machine = sim::MachineModel::archer2();

  // --- (1) end-to-end coupling overhead ---
  const workflow::EngineCase ec = workflow::hpc_combustor_hpt(false);
  const workflow::CaseModels models =
      workflow::build_case_models(ec, machine, {});
  const perfmodel::Allocation alloc =
      perfmodel::distribute_ranks(models.apps, models.cus, 40000);
  workflow::RankAssignment ra{alloc.app_ranks, alloc.cu_ranks};

  const int steps = 30;
  workflow::CoupledSimulation coupled(ec, machine, ra);
  coupled.run(steps);
  workflow::CoupledSimulation uncoupled(ec, machine, ra);
  uncoupled.set_coupling_enabled(false);
  uncoupled.run(steps);

  print_banner(std::cout, "Coupling overhead — HPC-Combustor-HPT, "
                          "Base-STC, 40,000 cores");
  const double overhead =
      (coupled.runtime() - uncoupled.runtime()) / coupled.runtime();
  std::cout << "coupled runtime    = " << coupled.runtime() << " s ("
            << steps << " density steps)\n"
            << "uncoupled runtime  = " << uncoupled.runtime() << " s\n"
            << "coupling overhead  = " << 100.0 * overhead
            << "%  (paper model: < 0.5% with the tree search)\n"
            << "model CU share     = "
            << 100.0 * alloc.cu_time / alloc.predicted_runtime << "%\n";

  // --- (2) tree vs brute-force search cost per exchange ---
  print_banner(std::cout,
               "Search ablation — per-exchange CU cost, 630k-cell sliding "
               "interface");
  Table table({"CU ranks", "tree map (ms)", "brute map (ms)", "ratio"});
  sim::Cluster cluster(machine, 1024);
  mgcfd::Instance a("a", 150'000'000, {0, 400});
  mgcfd::Instance b("b", 300'000'000, {400, 800});
  for (int cu_ranks : {8, 16, 32, 64, 128}) {
    coupler::UnitConfig tree;
    tree.interface_cells = 630'000;
    tree.tree_search = true;
    coupler::UnitConfig brute = tree;
    brute.tree_search = false;
    const coupler::CouplerUnit cu_tree("t", tree,
                                       {800, 800 + cu_ranks}, a, b);
    const coupler::CouplerUnit cu_brute("b", brute,
                                        {800, 800 + cu_ranks}, a, b);
    const double t_tree = cu_tree.mapping_seconds(cluster) * 1e3;
    const double t_brute = cu_brute.mapping_seconds(cluster) * 1e3;
    table.add_row({static_cast<long long>(cu_ranks), t_tree, t_brute,
                   t_brute / t_tree});
  }
  table.print(std::cout);
  std::cout << "(The sliding-plane interface is remapped every timestep, "
               "so this cost recurs 1000x per revolution.)\n";
  return 0;
}
