// Thread-scaling ablation for the shared-memory execution layer
// (docs/parallelism.md): sweeps the thread pool over 1..N threads and
// measures the wall-clock of the hot kernels the paper's §IV-B study
// targets — SpMV, Jacobi smoothing, SpGEMM (SPA), and the batched coupler
// donor search — printing speedup / parallel-efficiency series in the
// paper's plot layout. The "cores" column is the thread-pool width.
//
//   ./threads_scaling [--n=100] [--spgemm-n=512] [--queries=100000]
//                     [--reps=3] [--max-threads=N]

#include <chrono>
#include <iostream>
#include <vector>

#include "amg/smoothers.hpp"
#include "bench_common.hpp"
#include "cpx/search.hpp"
#include "sparse/csr.hpp"
#include "sparse/generators.hpp"
#include "support/options.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace {

using cpx::bench::Series;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Best-of-reps wall-clock of fn(), with one untimed warmup call.
template <typename Fn>
double time_best(int reps, Fn&& fn) {
  fn();
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cpx;

  Options opts = Options::parse(argc, argv);
  opts.describe("n", "3-D Poisson grid edge for SpMV/Jacobi (n^3 rows, default 100 = 1M)");
  opts.describe("spgemm-n", "2-D Poisson grid edge for SpGEMM (n^2 rows, default 512)");
  opts.describe("queries", "coupler donor queries (default 100000)");
  opts.describe("reps", "timed repetitions per kernel, best-of (default 3)");
  opts.describe("max-threads", "largest pool width to sweep (default max(4, hw))");
  opts.describe("metrics", "write host-metrics JSON to this path");
  if (opts.get_bool("help", false)) {
    std::cout << opts.help_text("threads_scaling");
    return 0;
  }

  bench::MetricsGuard metrics_guard(opts);  // --metrics=<path> / CPX_METRICS

  const int n = static_cast<int>(opts.get_int("n", 100));
  const int spgemm_n = static_cast<int>(opts.get_int("spgemm-n", 512));
  const auto queries = opts.get_int("queries", 100000);
  const int reps = static_cast<int>(opts.get_int("reps", 3));
  const int hw = support::max_threads();  // CPX_THREADS / hardware width
  const int max_threads = std::max(
      1, static_cast<int>(opts.get_int("max-threads", std::max(4, hw))));

  std::vector<int> widths;
  for (int t = 1; t <= max_threads; t *= 2) {
    widths.push_back(t);
  }
  if (widths.back() != max_threads) {
    widths.push_back(max_threads);
  }

  // --- Problem setup (thread count does not affect any of this) ---
  const sparse::CsrMatrix a3d = sparse::laplacian_3d(n, n, n);
  const auto rows = static_cast<std::size_t>(a3d.rows());
  std::vector<double> x(rows), y(rows, 0.0), b(rows), scratch(rows, 0.0);
  Rng rng(2023);
  for (double& v : x) {
    v = rng.uniform(-1.0, 1.0);
  }
  for (double& v : b) {
    v = rng.uniform(-1.0, 1.0);
  }
  amg::SmootherOptions jacobi;
  jacobi.kind = amg::SmootherKind::kJacobi;

  const sparse::CsrMatrix a2d = sparse::laplacian_2d(spgemm_n, spgemm_n);

  std::vector<mesh::Vec3> donors(200000);
  for (auto& p : donors) {
    p = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0),
         rng.uniform(-1.0, 1.0)};
  }
  std::vector<mesh::Vec3> targets(static_cast<std::size_t>(queries));
  for (auto& p : targets) {
    p = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0),
         rng.uniform(-1.0, 1.0)};
  }
  const coupler::KdTree tree(donors);

  Series spmv_s{"spmv", {}, {}};
  Series jacobi_s{"jacobi", {}, {}};
  Series spgemm_s{"spgemm-spa", {}, {}};
  Series coupler_s{"coupler", {}, {}};

  double checksum = 0.0;  // defeat dead-code elimination
  for (const int t : widths) {
    support::set_max_threads(t);
    const double t_spmv = time_best(reps, [&] { sparse::spmv(a3d, x, y); });
    const double t_jacobi = time_best(reps, [&] {
      std::vector<double> xs = x;
      amg::smooth(a3d, xs, b, jacobi, scratch);
      checksum += xs[0];
    });
    const double t_spgemm =
        time_best(reps, [&] { checksum += sparse::spgemm_spa(a2d, a2d).nnz() > 0 ? 1.0 : 0.0; });
    const double t_coupler = time_best(reps, [&] {
      checksum += static_cast<double>(tree.nearest_batch(targets).back());
    });
    for (Series* s : {&spmv_s, &jacobi_s, &spgemm_s, &coupler_s}) {
      s->cores.push_back(t);
    }
    spmv_s.seconds.push_back(t_spmv);
    jacobi_s.seconds.push_back(t_jacobi);
    spgemm_s.seconds.push_back(t_spgemm);
    coupler_s.seconds.push_back(t_coupler);
    checksum += y[0];
  }
  support::set_max_threads(1);

  std::cout << "hardware/CPX_THREADS width: " << hw << ", sweeping pool width 1.."
            << max_threads << " (wall-clock, best of " << reps << ")\n"
            << "problems: spmv/jacobi " << n << "^3 rows, spgemm " << spgemm_n
            << "^2 rows, coupler " << donors.size() << " donors / "
            << targets.size() << " queries\n";
  cpx::bench::print_scaling_table(
      std::cout, "threaded kernel scaling (column 'cores' = pool threads)",
      {spmv_s, jacobi_s, spgemm_s, coupler_s});
  std::cout << "(checksum " << checksum << ")\n";
  return 0;
}
