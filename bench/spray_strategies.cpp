// Spray load-balancing ablation (§IV-A): particle imbalance and effective
// spray-phase cost under the three strategies — spatial partitioning
// (baseline), collective rebalancing, and the asynchronous task-based
// approach — across rank counts, on a real particle cloud with an
// injector hot-spot.

#include <iostream>

#include "bench_common.hpp"
#include "sim/cluster.hpp"
#include "spray/cloud.hpp"
#include "spray/instance.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace cpx;
  using spray::Strategy;

  Options opts = Options::parse(argc, argv);
  opts.describe("metrics", "write host-metrics JSON to this path");
  if (opts.get_bool("help", false)) {
    std::cout << opts.help_text("spray_strategies");
    return 0;
  }
  bench::MetricsGuard metrics_guard(opts);

  print_banner(std::cout,
               "Spray strategy ablation — particle imbalance (max/mean) "
               "and relative phase cost");
  Table table({"ranks", "spatial imb.", "balanced imb.", "async imb.",
               "spatial cost", "balanced cost", "async cost"});
  table.set_precision(4);

  for (int ranks : {16, 32, 64, 128, 256, 512}) {
    spray::CloudOptions opt;
    opt.num_particles = 400'000;
    opt.num_ranks = ranks;
    opt.injector_length = 0.08;
    spray::Cloud cloud(opt);
    // Let the cloud reach its statistically steady state.
    for (int s = 0; s < 20; ++s) {
      cloud.step();
    }
    const auto spatial = cloud.load_stats(Strategy::kSpatial);
    const auto balanced = cloud.load_stats(Strategy::kBalanced);
    // Async task-based: 1/4 of the ranks are dedicated spray workers (the
    // rest run the flow solver concurrently, overlapping the cost).
    const int spray_workers = std::max(1, ranks / 4);
    const auto async = cloud.load_stats(Strategy::kAsyncTask, spray_workers);

    // Phase cost model: time ~ particles on the most loaded rank (the
    // others wait), normalised by the perfectly balanced share.
    const double ideal = static_cast<double>(cloud.num_particles()) / ranks;
    table.add_row({static_cast<long long>(ranks), spatial.imbalance,
                   balanced.imbalance, async.imbalance,
                   static_cast<double>(spatial.max_rank) / ideal,
                   static_cast<double>(balanced.max_rank) / ideal,
                   static_cast<double>(async.max_rank) / ideal});
  }
  table.print(std::cout);
  std::cout
      << "(Spatial partitioning concentrates the injector region on a few "
         "ranks — the paper's spray phase spends 96% of its time waiting. "
         "Balanced and async task-based strategies remove the imbalance; "
         "the async variant additionally overlaps with the solver, which "
         "is why §IV-C models optimised spray as perfectly scaling.)\n";

  // Timed comparison on the virtual cluster: the same spray workload per
  // step under each strategy (the §IV-A trade-off in virtual seconds).
  print_banner(std::cout,
               "Spray step time on the virtual cluster (7M droplets)");
  Table timed({"ranks", "spatial (ms)", "balanced (ms)", "async (ms)"});
  timed.set_precision(4);
  for (int ranks : {256, 1024, 4096, 16384}) {
    std::vector<Cell> row = {static_cast<long long>(ranks)};
    for (Strategy strategy :
         {Strategy::kSpatial, Strategy::kBalanced, Strategy::kAsyncTask}) {
      sim::Cluster cluster(sim::MachineModel::archer2(), ranks);
      spray::InstanceConfig cfg;
      cfg.strategy = strategy;
      spray::Instance inst("spray", cfg, {0, ranks});
      inst.step(cluster);
      const double t0 = cluster.max_clock();
      inst.step(cluster);
      row.emplace_back((cluster.max_clock() - t0) * 1e3);
    }
    timed.add_row(std::move(row));
  }
  timed.print(std::cout);
  std::cout
      << "(Balanced redistribution wins at small scale, but its "
         "all-to-all grows linearly with ranks and eventually dominates — "
         "the §IV-A observation that collectives 'significantly degrade "
         "performance at high core counts'. The spatial baseline plateaus "
         "on its hot ranks; the async task pool balances without the "
         "collective and wins at scale — the §IV-C choice.)\n";

  // Migration traffic of the spatial strategy over time.
  print_banner(std::cout, "Spatial strategy: migration traffic per step");
  spray::CloudOptions opt;
  opt.num_particles = 400'000;
  opt.num_ranks = 64;
  spray::Cloud cloud(opt);
  Table mig({"step", "migrated particles", "% of population"});
  for (int s = 1; s <= 5; ++s) {
    cloud.step();
    mig.add_row({static_cast<long long>(s),
                 static_cast<long long>(cloud.last_migrations()),
                 100.0 * static_cast<double>(cloud.last_migrations()) /
                     static_cast<double>(cloud.num_particles())});
  }
  mig.print(std::cout);
  return 0;
}
