#pragma once
// Shared helpers for the figure-reproduction benches: standalone scaling
// sweeps of an App factory and speedup / parallel-efficiency series
// formatted like the paper's plots.

#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "perfmodel/sweep.hpp"
#include "sim/cluster.hpp"
#include "support/metrics.hpp"
#include "support/options.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace cpx::bench {

/// Applies --metrics=<path> (and the CPX_METRICS environment default) for
/// a bench run; on scope exit, prints the host-metrics tables and writes
/// the JSON report next to the bench output. Inert when metrics are off.
class MetricsGuard {
 public:
  explicit MetricsGuard(const Options& options)
      : enabled_(support::metrics::configure(options)) {}
  ~MetricsGuard() {
    if (!enabled_) {
      return;
    }
    support::metrics::write_text(std::cout);
    if (support::metrics::write_report()) {
      std::cout << "host metrics JSON written to "
                << support::metrics::output_path() << "\n";
    }
  }
  MetricsGuard(const MetricsGuard&) = delete;
  MetricsGuard& operator=(const MetricsGuard&) = delete;

 private:
  bool enabled_;
};

/// A measured strong-scaling series with derived speedup/PE columns
/// (relative to the first core count).
struct Series {
  std::string name;
  std::vector<double> cores;
  std::vector<double> seconds;

  double speedup_at(std::size_t i) const {
    return seconds.front() / seconds[i];
  }
  double efficiency_at(std::size_t i) const {
    return (seconds.front() * cores.front()) / (seconds[i] * cores[i]);
  }
};

inline Series measure_series(const std::string& name,
                             const perfmodel::AppFactory& factory,
                             const sim::MachineModel& machine,
                             const std::vector<int>& cores, int steps = 2,
                             double seconds_scale = 1.0) {
  Series s;
  s.name = name;
  const auto pts = perfmodel::measure_scaling(factory, machine, cores, steps);
  for (const auto& pt : pts) {
    s.cores.push_back(pt.cores);
    s.seconds.push_back(pt.seconds * seconds_scale);
  }
  return s;
}

/// Prints aligned speedup + parallel-efficiency columns for several series
/// over a common core grid (the layout of the paper's Fig 4/6 plots).
inline void print_scaling_table(std::ostream& os, const std::string& title,
                                const std::vector<Series>& series) {
  print_banner(os, title);
  std::vector<std::string> headers = {"cores"};
  for (const Series& s : series) {
    headers.push_back(s.name + " T(s)");
    headers.push_back(s.name + " speedup");
    headers.push_back(s.name + " PE");
  }
  Table table(headers);
  table.set_precision(4);
  for (std::size_t i = 0; i < series.front().cores.size(); ++i) {
    std::vector<Cell> row = {
        static_cast<long long>(series.front().cores[i])};
    for (const Series& s : series) {
      row.emplace_back(s.seconds[i]);
      row.emplace_back(s.speedup_at(i));
      row.emplace_back(s.efficiency_at(i));
    }
    table.add_row(std::move(row));
  }
  table.print(os);
}

/// Per-core-count relative error between two series (proxy validation).
inline void print_error_summary(std::ostream& os, const Series& measured,
                                const Series& reference) {
  std::vector<double> errors;
  for (std::size_t i = 0; i < measured.seconds.size(); ++i) {
    errors.push_back(
        percent_error(measured.seconds[i], reference.seconds[i]));
  }
  const Summary s = summarize(errors);
  os << measured.name << " vs " << reference.name
     << ": mean error = " << s.mean << "%, worst = " << s.max << "%\n";
}

}  // namespace cpx::bench
