// Reproduces Fig 5: the ARM-MAP-style profile of the pressure solver on
// the 28M-cell case —
//  (a) runtime share of each main function at 2048 cores, split into
//      compute and communication (pressure field 46%: 25% compute /
//      21% MPI; spray next with 96% of its time in communication),
//  (b) parallel efficiency of each function from 128 to 2048 cores
//      (spray < 50% at just 256 cores).

#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "mgcfd/instance.hpp"
#include "pressure/surrogate.hpp"
#include "sim/cluster.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace cpx;

  Options opts = Options::parse(argc, argv);
  opts.describe("metrics", "write host-metrics JSON to this path");
  if (opts.get_bool("help", false)) {
    std::cout << opts.help_text("fig5_breakdown");
    return 0;
  }
  bench::MetricsGuard metrics_guard(opts);

  // --- Fig 5a: function breakdown at 2048 cores ---
  pressure::Instance at2048("p", pressure::Config::base_28m(), {0, 2048});
  const auto comps = at2048.predict_components();
  double total = 0.0;
  for (const auto& c : comps) {
    total += c.total();
  }
  print_banner(std::cout,
               "Fig 5a — pressure solver (28M cells) runtime breakdown at "
               "2048 cores");
  Table share({"function", "% of runtime", "% compute", "% comm",
               "comm share of function"});
  share.set_precision(3);
  for (const auto& c : comps) {
    share.add_row({c.name, 100.0 * c.total() / total,
                   100.0 * c.compute / total, 100.0 * c.comm / total,
                   c.total() > 0.0 ? 100.0 * c.comm / c.total() : 0.0});
  }
  share.print(std::cout);
  std::cout << "(Paper anchors: pressure_field 46% = 25% compute + 21% "
               "MPI; spray ~96% comm.)\n";

  // --- Fig 5b: per-function parallel efficiency, 128 -> 2048 cores ---
  print_banner(std::cout,
               "Fig 5b — per-function parallel efficiency (vs 128 cores)");
  const std::vector<int> cores = {128, 256, 512, 1024, 2048};
  pressure::Instance base("p", pressure::Config::base_28m(), {0, 128});
  std::map<std::string, double> t128;
  double total128 = 0.0;
  for (const auto& c : base.predict_components()) {
    t128[c.name] = c.total();
    total128 += c.total();
  }

  std::vector<std::string> headers = {"cores"};
  for (const auto& c : comps) {
    headers.push_back(c.name);
  }
  headers.push_back("overall");
  Table pe(headers);
  pe.set_precision(3);
  for (int p : cores) {
    pressure::Instance inst("p", pressure::Config::base_28m(), {0, p});
    std::vector<Cell> row = {static_cast<long long>(p)};
    double total_p = 0.0;
    for (const auto& c : inst.predict_components()) {
      row.emplace_back((t128[c.name] * 128.0) / (c.total() * p));
      total_p += c.total();
    }
    row.emplace_back((total128 * 128.0) / (total_p * p));
    pe.add_row(std::move(row));
  }
  pe.print(std::cout);
  std::cout << "(Paper anchors: spray drops below 50% PE at 256 cores; "
               "velocity/scalars scale well.)\n";

  // --- Split-phase overlap visibility at the Fig 5 scale ---
  // Runs the density solver once with the split-phase halo exchange on,
  // so the "comm/overlap_hidden_ns" / "comm/overlap_window_ns" counters
  // land in the --metrics dump next to the breakdown above
  // (docs/communication.md; the full ablation is bench/comm_overlap).
  print_banner(std::cout,
               "Split-phase halo overlap — MG-CFD density row at 2048 "
               "cores");
  Table overlap({"mode", "s/step", "hidden comm s/step"});
  overlap.set_precision(4);
  for (const bool on : {false, true}) {
    sim::Cluster cluster(sim::MachineModel::archer2(), 2048);
    mgcfd::Instance density("density", 150'000'000, {0, 2048});
    density.set_overlap(on);
    // Warm up once, drop the cold-start clocks/traffic, then measure: the
    // hidden-comm average must cover exactly the measured steps (the old
    // "/ 4.0" folded the warm-up step into a 3-step measurement).
    constexpr int kOverlapSteps = 3;
    density.step(cluster);
    cluster.reset_clocks();
    for (int s = 0; s < kOverlapSteps; ++s) {
      density.step(cluster);
    }
    overlap.add_row(
        {on ? "overlapped" : "synchronous",
         cluster.max_clock(density.ranks()) / kOverlapSteps,
         cluster.comm_hidden_seconds(density.ranks()) / kOverlapSteps});
  }
  overlap.print(std::cout);
  return 0;
}
