// Split-phase overlap ablation (docs/communication.md): the same solvers
// with communication/computation overlap off and on, at the paper's core
// counts, on the Fig 6 engine-case density row (150M cells).
//
//  (1) MG-CFD density instance, synchronous vs split-phase halo exchange:
//      per-step runtime, hidden-communication seconds and fraction, and
//      the parallel-efficiency delta from 128 to 2048 cores. Overlap pays
//      off exactly where Fig 6 says the halo does: at scale, where the
//      per-rank surface-to-volume ratio makes the exchange wait visible.
//  (2) perfmodel::fit_overlap_variants — paired fitted scaling curves, so
//      the capacity planner predicts the overlap gain per scenario
//      (docs/CALIBRATION.md) instead of extrapolating it. The modelled PE
//      gain at 2048 cores must be strictly positive.
//  (3) The full coupled HPC-combustor case with
//      CoupledSimulation::set_overlap_enabled off/on — halo, Thomas
//      pipeline, and coupler-gather windows all active at once.

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "mgcfd/instance.hpp"
#include "perfmodel/allocator.hpp"
#include "perfmodel/sweep.hpp"
#include "support/options.hpp"
#include "support/table.hpp"
#include "workflow/coupled.hpp"
#include "workflow/engine_case.hpp"
#include "workflow/models.hpp"

namespace {

using namespace cpx;

constexpr std::int64_t kDensityCells = 150'000'000;  // Fig 6 density row
constexpr int kSteps = 3;

struct ModeResult {
  double step_seconds = 0.0;
  double hidden_seconds = 0.0;   // per step, summed over ranks
  double charged_seconds = 0.0;  // per step comm actually waited/charged
};

ModeResult run_mode(const sim::MachineModel& machine, int cores,
                    bool overlap) {
  sim::Cluster cluster(machine, cores);
  mgcfd::Instance inst("density", kDensityCells, {0, cores});
  inst.set_overlap(overlap);
  // One warm-up step carries the one-off plan/mapping costs; dropping its
  // clocks, traffic, and charged-comm profile before measuring keeps the
  // per-step averages free of cold-start noise (dividing the cumulative
  // counters by kSteps + 1 smeared the warm-up into both modes).
  inst.step(cluster);
  cluster.reset_clocks();
  cluster.profile().reset();
  for (int s = 0; s < kSteps; ++s) {
    inst.step(cluster);
  }
  ModeResult r;
  r.step_seconds = cluster.max_clock(inst.ranks()) / kSteps;
  r.hidden_seconds = cluster.comm_hidden_seconds(inst.ranks()) / kSteps;
  double charged = 0.0;
  for (sim::Rank rank = 0; rank < cores; ++rank) {
    charged += cluster.profile().rank_total(rank).comm;
  }
  r.charged_seconds = charged / kSteps;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts = Options::parse(argc, argv);
  opts.describe("metrics", "write host-metrics JSON to this path");
  if (opts.get_bool("help", false)) {
    std::cout << opts.help_text("comm_overlap");
    return 0;
  }
  bench::MetricsGuard metrics_guard(opts);

  const auto machine = sim::MachineModel::archer2();
  const std::vector<int> cores = {128, 256, 1024, 2048};

  // --- (1) MG-CFD halo overlap ablation ---
  print_banner(std::cout,
               "Split-phase halo exchange — MG-CFD 150M cells, sync vs "
               "overlapped");
  Table ablation({"cores", "sync s/step", "overlap s/step", "speedup %",
                  "hidden s/step", "hidden fraction", "PE sync",
                  "PE overlap", "PE delta"});
  ablation.set_precision(4);
  double sync128 = 0.0;
  double over128 = 0.0;
  for (int p : cores) {
    const ModeResult sync = run_mode(machine, p, false);
    const ModeResult over = run_mode(machine, p, true);
    if (p == cores.front()) {
      sync128 = sync.step_seconds;
      over128 = over.step_seconds;
    }
    const double hidden_frac =
        over.hidden_seconds + over.charged_seconds > 0.0
            ? over.hidden_seconds /
                  (over.hidden_seconds + over.charged_seconds)
            : 0.0;
    const double pe_sync = (sync128 * cores.front()) /
                           (sync.step_seconds * static_cast<double>(p));
    const double pe_over = (over128 * cores.front()) /
                           (over.step_seconds * static_cast<double>(p));
    ablation.add_row(
        {static_cast<long long>(p), sync.step_seconds, over.step_seconds,
         100.0 * (sync.step_seconds - over.step_seconds) / sync.step_seconds,
         over.hidden_seconds, hidden_frac, pe_sync, pe_over,
         pe_over - pe_sync});
  }
  ablation.print(std::cout);
  std::cout << "(hidden fraction = hidden / (hidden + charged) comm "
               "seconds: how much of the synchronous wait the interior "
               "sweep absorbed.)\n";

  // --- (2) Fitted overlap variants for the capacity planner ---
  print_banner(std::cout,
               "perfmodel — paired fitted curves (docs/CALIBRATION.md)");
  const perfmodel::AppFactory factory = [](sim::RankRange ranks) {
    return std::make_unique<mgcfd::Instance>("density", kDensityCells,
                                             ranks);
  };
  const perfmodel::OverlapVariants variants =
      perfmodel::fit_overlap_variants(factory, machine, cores, kSteps);
  Table fitted({"cores", "modelled PE sync", "modelled PE overlap",
                "modelled PE gain"});
  fitted.set_precision(4);
  for (int p : cores) {
    fitted.add_row(
        {static_cast<long long>(p),
         variants.synchronous.efficiency_at(p, cores.front()),
         variants.overlapped.efficiency_at(p, cores.front()),
         variants.efficiency_gain_at(p, cores.front())});
  }
  fitted.print(std::cout);
  const double gain_2048 = variants.efficiency_gain_at(2048, cores.front());
  std::cout << "fitted hidden fraction at " << cores.back()
            << " cores: " << variants.hidden_fraction << "\n"
            << "modelled PE gain at 2048 cores: " << gain_2048
            << (gain_2048 > 0.0 ? "  (strictly positive)" : "  (NOT positive)")
            << "\n";

  // --- (3) Full coupled case, all three window sites active ---
  print_banner(std::cout,
               "Coupled HPC combustor — set_overlap_enabled off vs on");
  const workflow::EngineCase ec = workflow::hpc_combustor_hpt(false);
  const workflow::CaseModels models =
      workflow::build_case_models(ec, machine, {});
  const perfmodel::Allocation alloc =
      perfmodel::distribute_ranks(models.apps, models.cus, 40000);
  const workflow::RankAssignment ra{alloc.app_ranks, alloc.cu_ranks};

  double runtime_off = 0.0;
  double runtime_on = 0.0;
  double hidden_on = 0.0;
  for (const bool overlap : {false, true}) {
    workflow::CoupledSimulation sim(ec, machine, ra);
    sim.set_overlap_enabled(overlap);
    sim.run(20);
    (overlap ? runtime_on : runtime_off) = sim.runtime();
    if (overlap) {
      hidden_on = sim.cluster().comm_hidden_seconds(
          {0, sim.cluster().num_ranks()});
    }
  }
  Table coupled({"mode", "runtime (s, 20 density steps)",
                 "hidden comm (s, all ranks)"});
  coupled.set_precision(4);
  coupled.add_row({"synchronous", runtime_off, 0.0});
  coupled.add_row({"overlapped", runtime_on, hidden_on});
  coupled.print(std::cout);
  std::cout << "coupled runtime delta: "
            << 100.0 * (runtime_off - runtime_on) / runtime_off << " %\n";
  return (gain_2048 > 0.0) ? 0 : 1;
}
