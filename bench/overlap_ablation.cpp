// Overlap-interface ablation (§II-A): "we will therefore explore the
// overhead of using an overlapping approach, where a composite domain is
// created from a larger portion of the interacting meshes."
//
// URANS-LES coupling needs frequent interaction over a *wide* composite
// band to stay stable; the knob is how much of each mesh enters the
// interface. This bench sweeps the density<->pressure interface fraction
// from the paper's 5% steady-state value up to deep overlaps, and, since a
// wider band also permits less frequent exchanges, sweeps the exchange
// cadence at fixed overlap — quantifying the stability-vs-overhead trade
// the paper describes.

#include <iostream>

#include "perfmodel/allocator.hpp"
#include "support/table.hpp"
#include "workflow/coupled.hpp"
#include "workflow/engine_case.hpp"
#include "workflow/models.hpp"

namespace {

using namespace cpx;

double coupled_runtime(const workflow::EngineCase& ec,
                       const sim::MachineModel& machine,
                       const workflow::RankAssignment& ra) {
  // 100 steps so even the slow exchange cadences fire a representative
  // number of times before scaling to the 1000-step revolution.
  workflow::CoupledSimulation sim(ec, machine, ra);
  sim.run(100);
  return sim.runtime() * 10.0;
}

workflow::EngineCase with_overlap(double fraction, int exchange_every) {
  workflow::EngineCase ec = workflow::hpc_combustor_hpt(false);
  for (workflow::CouplerSpec& cu : ec.couplers) {
    if (cu.kind == coupler::InterfaceKind::kSteadyState) {
      const std::int64_t smaller = std::min(
          ec.instances[static_cast<std::size_t>(cu.instance_a)].mesh_cells,
          ec.instances[static_cast<std::size_t>(cu.instance_b)].mesh_cells);
      cu.interface_cells = static_cast<std::int64_t>(
          static_cast<double>(smaller) * fraction);
      cu.exchange_every = exchange_every;
    }
  }
  return ec;
}

}  // namespace

int main() {
  const auto machine = sim::MachineModel::archer2();

  // Fix the allocation at the paper-configuration optimum so the sweep
  // isolates the interface cost.
  const workflow::EngineCase reference = workflow::hpc_combustor_hpt(false);
  const workflow::CaseModels models =
      workflow::build_case_models(reference, machine, {});
  const perfmodel::Allocation alloc =
      perfmodel::distribute_ranks(models.apps, models.cus, 40000);
  const workflow::RankAssignment ra{alloc.app_ranks, alloc.cu_ranks};
  const double baseline = coupled_runtime(reference, machine, ra);

  print_banner(std::cout,
               "Overlap sweep — density<->pressure interface width "
               "(exchange every 20 steps)");
  Table width({"interface fraction", "interface cells (150M side)",
               "runtime (s)", "overhead vs 5% baseline %"});
  width.set_precision(4);
  for (double fraction : {0.05, 0.10, 0.20, 0.40}) {
    const workflow::EngineCase ec = with_overlap(fraction, 20);
    const double t = coupled_runtime(ec, machine, ra);
    width.add_row({fraction,
                   static_cast<long long>(
                       static_cast<double>(150'000'000) * fraction),
                   t, 100.0 * (t - baseline) / baseline});
  }
  width.print(std::cout);

  print_banner(std::cout,
               "Cadence sweep — 20% overlap, varying exchange interval");
  Table cadence({"exchange every (density steps)", "runtime (s)",
                 "overhead vs 5%/20 baseline %"});
  cadence.set_precision(4);
  for (int every : {1, 5, 10, 20, 50}) {
    const workflow::EngineCase ec = with_overlap(0.20, every);
    const double t = coupled_runtime(ec, machine, ra);
    cadence.add_row({static_cast<long long>(every), t,
                     100.0 * (t - baseline) / baseline});
  }
  cadence.print(std::cout);
  std::cout
      << "(Widening the composite band is cheap as long as the cadence "
         "stays at the steady-state interval; exchanging a 20% overlap "
         "every density step — the stability-safe extreme — is where the "
         "overhead becomes visible. That asymmetry is why the paper's "
         "steady treatment of the density-pressure interface matters.)\n";
  return 0;
}
