// §VI extension experiment: "work is ongoing to include FEM solvers for
// thermal coupling of the engine casing, allowing us to run coupled CFD,
// Combustion and Structural simulations."
//
// Adds a thermal engine-casing instance (40M cells, conjugate heat
// transfer with the combustor and first turbine row every 50 density
// steps) to the HPC-Combustor-HPT case, re-runs the planning + coupled
// execution pipeline, and reports what the extra physics costs: ranks
// diverted to the casing and the change in coupled runtime.

#include <iostream>

#include "perfmodel/allocator.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "workflow/coupled.hpp"
#include "workflow/engine_case.hpp"
#include "workflow/models.hpp"

namespace {

using namespace cpx;

struct Run {
  perfmodel::Allocation alloc;
  workflow::CaseModels models;
  double measured = 0.0;
};

Run run_case(const workflow::EngineCase& ec, const sim::MachineModel& m) {
  Run r;
  r.models = workflow::build_case_models(ec, m, {});
  r.alloc = perfmodel::distribute_ranks(r.models.apps, r.models.cus, 40000);
  workflow::RankAssignment ra{r.alloc.app_ranks, r.alloc.cu_ranks};
  workflow::CoupledSimulation sim(ec, m, ra);
  sim.run(50);
  r.measured = sim.runtime() * (1000.0 / 50.0);
  return r;
}

}  // namespace

int main() {
  const auto machine = sim::MachineModel::archer2();
  const workflow::EngineCase plain = workflow::hpc_combustor_hpt(false);
  const workflow::EngineCase cased =
      workflow::hpc_combustor_hpt_with_casing(false);

  std::cout << "running " << plain.name << " and " << cased.name
            << " at 40,000 cores...\n";
  const Run base = run_case(plain, machine);
  const Run with_casing = run_case(cased, machine);

  print_banner(std::cout, "Thermal-casing extension — rank allocation");
  Table table({"instance", "ranks (no casing)", "ranks (with casing)"});
  for (std::size_t i = 0; i < cased.instances.size(); ++i) {
    const bool in_base = i < plain.instances.size();
    table.add_row({cased.instances[i].name,
                   in_base ? Cell{static_cast<long long>(
                                 base.alloc.app_ranks[i])}
                           : Cell{std::string("-")},
                   static_cast<long long>(with_casing.alloc.app_ranks[i])});
  }
  table.print(std::cout);

  print_banner(std::cout, "Thermal-casing extension — runtime impact");
  Table impact({"case", "predicted (s)", "measured (s)"});
  impact.add_row({std::string("HPC-Combustor-HPT"),
                  base.alloc.predicted_runtime, base.measured});
  impact.add_row({std::string("+ thermal casing"),
                  with_casing.alloc.predicted_runtime,
                  with_casing.measured});
  impact.print(std::cout);
  std::cout << "runtime change from adding the casing: "
            << 100.0 * (with_casing.measured - base.measured) / base.measured
            << "%  (the casing's implicit conduction solves are cheap next "
               "to the combustor bottleneck, so well-allocated thermal "
               "coupling is nearly free)\n";
  return 0;
}
