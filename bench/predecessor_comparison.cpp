// HiPC'21 predecessor comparison: the earlier coupled-compressor study
// found the coupling itself a significant bottleneck; this paper reports
// the overhead fell below 0.5% of runtime once the industrial coupler
// adopted a tree-based search with prefetching [31]. This bench runs the
// 13-row compressor case with both couplers and measures the overhead
// each produces — the before/after of that engineering change.

#include <iostream>

#include "perfmodel/allocator.hpp"
#include "support/table.hpp"
#include "workflow/coupled.hpp"
#include "workflow/engine_case.hpp"
#include "workflow/models.hpp"

namespace {

using namespace cpx;

workflow::EngineCase with_search(bool tree) {
  workflow::EngineCase ec = workflow::compressor_case();
  for (workflow::CouplerSpec& cu : ec.couplers) {
    cu.tree_search = tree;
  }
  return ec;
}

}  // namespace

int main() {
  const auto machine = sim::MachineModel::archer2();
  // Plan with the tree-search case (the production configuration) and run
  // both variants under the same allocation: the comparison isolates the
  // coupler implementation.
  const workflow::EngineCase tree_case = with_search(true);
  const workflow::CaseModels models =
      workflow::build_case_models(tree_case, machine, {});
  const perfmodel::Allocation alloc =
      perfmodel::distribute_ranks(models.apps, models.cus, 10000);
  const workflow::RankAssignment ra{alloc.app_ranks, alloc.cu_ranks};

  print_banner(std::cout,
               "Compressor-only case (13 rows, sliding planes every step) "
               "— 10,000 cores");
  Table table({"coupler search", "coupled runtime (s)",
               "coupling overhead %"});
  table.set_precision(4);

  double uncoupled = 0.0;
  {
    workflow::CoupledSimulation sim(tree_case, machine, ra);
    sim.set_coupling_enabled(false);
    sim.run(50);
    uncoupled = sim.runtime() * 20.0;
  }
  for (const bool tree : {true, false}) {
    workflow::CoupledSimulation sim(with_search(tree), machine, ra);
    sim.run(50);
    const double t = sim.runtime() * 20.0;
    table.add_row({std::string(tree ? "k-d tree + prefetch" : "brute force"),
                   t, 100.0 * (t - uncoupled) / t});
  }
  table.print(std::cout);
  std::cout
      << "(With brute-force donor search, every sliding-plane remap scans "
         "the whole interface and coupling dominates the step — the "
         "HiPC'21 bottleneck. The tree search removes it, which is the "
         "prerequisite for the <0.5%-overhead engine runs of this "
         "paper.)\n";
  return 0;
}
