// Setup vs re-setup ablation for the AMG hierarchy (docs/CALIBRATION.md,
// "setup vs re-setup"): on a fixed mesh the pressure operator's sparsity
// never changes between timesteps, so the hierarchy's structural work —
// strength graph, aggregation, interpolation sparsity, SpGEMM symbolics,
// coarse Cholesky layout — can be done once and only the numeric passes
// re-run when the coefficients change. This bench measures, on the
// pressure-style Poisson operator of the Fig 5 solver:
//
//   full   : AmgHierarchy construction from scratch
//   reset  : reset_values() numeric-only re-setup of the same hierarchy
//   solve  : one AMG-preconditioned CG solve with a persistent workspace
//            (the steady-state per-timestep cost the re-setup amortises
//            against)
//
//   ./amg_resetup [--n=48] [--reps=5] [--metrics=out.json]

#include <chrono>
#include <cmath>
#include <iostream>
#include <vector>

#include "amg/hierarchy.hpp"
#include "amg/pcg.hpp"
#include "bench_common.hpp"
#include "sparse/csr.hpp"
#include "sparse/generators.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Best-of-reps wall-clock of fn(), with one untimed warmup call.
template <typename Fn>
double time_best(int reps, Fn&& fn) {
  fn();
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

/// The fixed-mesh coefficient change: same sparsity, jittered values (a
/// positive diagonal perturbation keeps the operator SPD).
cpx::sparse::CsrMatrix perturb_diagonal(const cpx::sparse::CsrMatrix& a,
                                        double amplitude,
                                        std::uint64_t seed) {
  cpx::sparse::CsrMatrix out = a;
  cpx::Rng rng(seed);
  auto& vals = out.mutable_values();
  const auto& offsets = a.row_offsets();
  const auto& cols = a.col_indices();
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    for (std::int64_t k = offsets[static_cast<std::size_t>(r)];
         k < offsets[static_cast<std::size_t>(r) + 1]; ++k) {
      if (cols[static_cast<std::size_t>(k)] == static_cast<std::int32_t>(r)) {
        vals[static_cast<std::size_t>(k)] *=
            1.0 + amplitude * rng.uniform();
      }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cpx;

  Options opts = Options::parse(argc, argv);
  opts.describe("n", "3-D Poisson grid edge (n^3 rows, default 48)");
  opts.describe("reps", "timed repetitions per phase, best-of (default 5)");
  opts.describe("metrics", "write host-metrics JSON to this path");
  if (opts.get_bool("help", false)) {
    std::cout << opts.help_text("amg_resetup");
    return 0;
  }
  bench::MetricsGuard metrics_guard(opts);

  const int n = static_cast<int>(opts.get_int("n", 48));
  const int reps = static_cast<int>(opts.get_int("reps", 5));

  const sparse::CsrMatrix a = sparse::laplacian_3d(n, n, n);
  const sparse::CsrMatrix a2 = perturb_diagonal(a, 0.1, 42);
  std::cout << "pressure-style operator: " << a.rows() << " rows, " << a.nnz()
            << " nnz\n";

  const amg::AmgOptions amg_opts;  // defaults: smoothed interp, V-cycle

  // Full construction, from scratch every repetition.
  const double t_full =
      time_best(reps, [&] { amg::AmgHierarchy h(a, amg_opts); });

  // Numeric-only re-setup of a hierarchy built once, alternating between
  // the two coefficient sets so every call does real work.
  amg::AmgHierarchy hierarchy(a, amg_opts);
  bool flip = false;
  const double t_reset = time_best(reps, [&] {
    hierarchy.reset_values(flip ? a : a2);
    flip = !flip;
  });

  // Steady-state per-timestep solve with persistent preconditioner and CG
  // workspace (warmed by time_best's untimed first call).
  const auto nrows = static_cast<std::size_t>(a.rows());
  std::vector<double> x(nrows, 0.0);
  std::vector<double> b(nrows);
  Rng rng(7);
  for (double& v : b) {
    v = rng.uniform() - 0.5;
  }
  const amg::Preconditioner precond =
      amg::make_amg_preconditioner(hierarchy);
  amg::PcgWorkspace workspace;
  const double t_solve = time_best(reps, [&] {
    std::fill(x.begin(), x.end(), 0.0);
    amg::pcg(hierarchy.level(0).a, x, b, 1e-8, 200, precond, workspace);
  });

  print_banner(std::cout, "AMG setup vs numeric re-setup (fixed sparsity)");
  Table table({"phase", "seconds", "vs full setup"});
  table.set_precision(4);
  table.add_row({"full construction", t_full, 1.0});
  table.add_row({"reset_values", t_reset, t_full / t_reset});
  table.add_row({"pcg solve (steady state)", t_solve, t_full / t_solve});
  table.print(std::cout);

  std::cout << "reset_values speedup over full setup: " << t_full / t_reset
            << "x" << (t_full / t_reset >= 2.0 ? " (>= 2x target)" : "")
            << "\n";
  return 0;
}
