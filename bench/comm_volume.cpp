// Communication-volume report from the unified transport layer
// (docs/communication.md): per-subsystem bytes/messages per step.
//
// Part 1 measures the *real* data planes — the distributed MG-CFD and
// SIMPIC solvers route every rank-to-rank byte through comm::Communicator,
// so their CommStats are the actual payloads moved, not estimates.
//
// Part 2 sweeps the performance instances (density solver, SIMPIC proxy,
// spray) at production rank counts on the ARCHER2 machine model and
// reports measured per-instance volume from the virtual cluster's traffic
// counters — reproducing the paper's Fig 5 observation that the spray
// exchange dominates communication at high core counts (its all-to-all /
// gather volume grows with p while the halo volume per rank shrinks).

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "mesh/mesh.hpp"
#include "mgcfd/distributed.hpp"
#include "mgcfd/instance.hpp"
#include "simpic/distributed.hpp"
#include "simpic/instance.hpp"
#include "spray/instance.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace cpx;

  Options opts = Options::parse(argc, argv);
  opts.describe("metrics", "write host-metrics JSON to this path");
  opts.describe("steps", "steps per measurement (default 5)");
  if (opts.get_bool("help", false)) {
    std::cout << opts.help_text("comm_volume");
    return 0;
  }
  bench::MetricsGuard metrics_guard(opts);
  const int steps = static_cast<int>(opts.get_int("steps", 5));

  // --- Part 1: real data planes (comm-layer CommStats) ---
  print_banner(std::cout,
               "Measured comm volume — real data planes (bytes moved by "
               "the comm layer, per step)");
  Table real({"subsystem", "ranks", "bytes/step", "msgs/step",
              "halo bytes/exchange"});
  const mesh::UnstructuredMesh m = mesh::make_box_mesh(12, 12, 6);
  for (int p : {2, 4, 8}) {
    mgcfd::DistributedSolver dist(m, p, {});
    dist.run(steps);
    const comm::CommStats& s = dist.comm_stats();
    real.add_row({"mgcfd halo+reduce", static_cast<long long>(p),
                  static_cast<long long>(s.bytes / steps),
                  static_cast<long long>(s.messages / steps),
                  static_cast<long long>(dist.halo_bytes_per_exchange())});
  }
  for (int p : {2, 4, 8}) {
    simpic::PicOptions popt;
    popt.cells = 256;
    popt.boundary = simpic::Boundary::kAbsorbing;
    popt.dt = 0.1;
    simpic::DistributedPic pic(popt, p);
    pic.load_uniform(20, 0.3, 0.05);
    pic.run(steps);
    const comm::CommStats& s = pic.comm_stats();
    real.add_row({"simpic merge+pipeline+migrate", static_cast<long long>(p),
                  static_cast<long long>(s.bytes / steps),
                  static_cast<long long>(s.messages / steps),
                  static_cast<long long>(0)});
  }
  real.print(std::cout);

  // --- Part 2: per-instance volume at production rank counts (Fig 5) ---
  print_banner(std::cout,
               "Per-instance comm volume on ARCHER2 (cluster traffic "
               "counters, per step)");
  const sim::MachineModel machine = sim::MachineModel::archer2();
  Table fig5({"cores", "density MB", "simpic MB", "spray MB", "density msgs",
              "simpic msgs", "spray msgs", "spray msg share %"});
  fig5.set_precision(2);
  for (int p : {256, 512, 1024, 2048}) {
    sim::Cluster cluster(machine, p);
    mgcfd::Instance density("density", 28'000'000, {0, p});
    simpic::Instance stc("stc", simpic::base_stc_28m(), {0, p});
    // The collective-heavy redistribution strategy the paper profiles:
    // "collective operations which can significantly degrade performance
    // at high core counts" — its all-to-all posts p*(p-1) messages.
    spray::InstanceConfig scfg;
    scfg.strategy = spray::Strategy::kBalanced;
    spray::Instance spray_inst("spray", scfg, {0, p});

    const auto density_vol =
        perfmodel::measure_comm_volume(density, cluster, steps);
    const auto stc_vol = perfmodel::measure_comm_volume(stc, cluster, steps);
    const auto spray_vol =
        perfmodel::measure_comm_volume(spray_inst, cluster, steps);

    const double mb = 1.0 / (1024.0 * 1024.0);
    const double total_msgs = static_cast<double>(
        density_vol.messages + stc_vol.messages + spray_vol.messages);
    fig5.add_row({static_cast<long long>(p),
                  static_cast<double>(density_vol.bytes) * mb,
                  static_cast<double>(stc_vol.bytes) * mb,
                  static_cast<double>(spray_vol.bytes) * mb,
                  static_cast<long long>(density_vol.messages),
                  static_cast<long long>(stc_vol.messages),
                  static_cast<long long>(spray_vol.messages),
                  total_msgs > 0.0
                      ? 100.0 * static_cast<double>(spray_vol.messages) /
                            total_msgs
                      : 0.0});
  }
  fig5.print(std::cout);
  std::cout << "(Paper anchor, Fig 5: the spray exchange dominates "
               "communication at high core counts — its collective posts "
               "O(p^2) messages while halo traffic grows like O(p).)\n";
  return 0;
}
