// Allocator ablation: what does Algorithm 1 actually buy? Compares the
// greedy marginal-gain distribution against the naive baselines a user
// might otherwise pick — equal ranks per instance, and ranks proportional
// to mesh size — on the 40,000-core HPC-Combustor-HPT case, running the
// coupled mini-app simulation under each allocation.

#include <algorithm>
#include <iostream>
#include <numeric>

#include "perfmodel/allocator.hpp"
#include "support/table.hpp"
#include "workflow/coupled.hpp"
#include "workflow/engine_case.hpp"
#include "workflow/models.hpp"

namespace {

using namespace cpx;

double measured_runtime(const workflow::EngineCase& ec,
                        const sim::MachineModel& machine,
                        const std::vector<int>& app_ranks,
                        const std::vector<int>& cu_ranks) {
  workflow::RankAssignment ra{app_ranks, cu_ranks};
  workflow::CoupledSimulation sim(ec, machine, ra);
  sim.run(20);
  return sim.runtime() * 50.0;  // scale to 1000 density steps
}

/// Distributes `budget` over the instances proportionally to `weights`,
/// respecting per-instance caps.
std::vector<int> proportional(const std::vector<double>& weights,
                              const workflow::CaseModels& models,
                              int budget) {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  std::vector<int> ranks(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    ranks[i] = std::clamp(
        static_cast<int>(weights[i] / total * budget), 1,
        models.apps[i].max_ranks);
  }
  return ranks;
}

}  // namespace

int main() {
  const auto machine = sim::MachineModel::archer2();
  const workflow::EngineCase ec = workflow::hpc_combustor_hpt(false);
  const workflow::CaseModels models =
      workflow::build_case_models(ec, machine, {});

  const int budget = 40000;
  const int n = static_cast<int>(ec.instances.size());
  // Keep the coupler allocation fixed at Alg 1's choice so the comparison
  // isolates the application split.
  const perfmodel::Allocation alg1 =
      perfmodel::distribute_ranks(models.apps, models.cus, budget);
  int cu_total = std::accumulate(alg1.cu_ranks.begin(), alg1.cu_ranks.end(), 0);
  const int app_budget = budget - cu_total;

  // Baseline 1: equal split.
  std::vector<int> equal(static_cast<std::size_t>(n), app_budget / n);
  for (std::size_t i = 0; i < equal.size(); ++i) {
    equal[i] = std::min(equal[i], models.apps[i].max_ranks);
  }

  // Baseline 2: proportional to the represented mesh size (works only
  // because the combustor proxy quotes its full-scale 380M cells).
  std::vector<double> cells;
  // Baseline 3: proportional to the *actual* solver grid (SIMPIC's 1-D
  // grid is 512k cells) — the heuristic a user would apply to the codes
  // as they stand.
  std::vector<double> actual;
  for (const auto& spec : ec.instances) {
    cells.push_back(static_cast<double>(spec.mesh_cells));
    actual.push_back(static_cast<double>(
        spec.kind == workflow::AppKind::kSimpic ? spec.stc.cells
                                                : spec.mesh_cells));
  }
  const std::vector<int> by_cells = proportional(cells, models, app_budget);
  const std::vector<int> by_actual =
      proportional(actual, models, app_budget);

  print_banner(std::cout,
               "Allocator ablation — coupled runtime at 40,000 cores "
               "(Base-STC, 1000 density steps)");
  Table table({"strategy", "SIMPIC ranks", "measured runtime (s)",
               "vs Alg 1"});
  const double t_alg1 =
      measured_runtime(ec, machine, alg1.app_ranks, alg1.cu_ranks);
  const double t_equal = measured_runtime(ec, machine, equal, alg1.cu_ranks);
  const double t_cells =
      measured_runtime(ec, machine, by_cells, alg1.cu_ranks);
  table.add_row({std::string("Alg 1 (greedy marginal gain)"),
                 static_cast<long long>(alg1.app_ranks[13]), t_alg1, 1.0});
  table.add_row({std::string("equal ranks per instance"),
                 static_cast<long long>(equal[13]), t_equal,
                 t_equal / t_alg1});
  table.add_row({std::string("proportional to represented mesh"),
                 static_cast<long long>(by_cells[13]), t_cells,
                 t_cells / t_alg1});
  const double t_actual =
      measured_runtime(ec, machine, by_actual, alg1.cu_ranks);
  table.add_row({std::string("proportional to actual solver grid"),
                 static_cast<long long>(by_actual[13]), t_actual,
                 t_actual / t_alg1});
  table.print(std::cout);
  std::cout
      << "(Equal split and grid-proportional allocation both starve the "
         "combustor proxy, whose cost lives in its particles rather than "
         "its tiny 1-D grid — exactly why the paper needs an empirical "
         "model rather than a size heuristic. Mesh-proportional happens "
         "to work for the Base case but has no way to anticipate the "
         "Optimized-STC's very different balance.)\n";
  return 0;
}
