// Reproduces Fig 9: the full HPC-Combustor-HPT coupled mini-app simulation
// (1.25Bn effective cells, 16 instances) on a 40,000-core budget —
//  (a) per-instance error between the predictive model and the measured
//      (standalone) mini-app runtimes, Base-STC and Optimized-STC,
//  (b) the rank allocation produced by Alg 1 for both configurations,
//  (c) predicted vs measured speedup of the Optimized-STC coupled
//      simulation over the Base-STC one for one engine revolution
//      (1000 density steps; we run 50 and scale, mirroring the paper's
//      0.5-revolution-doubled methodology).

#include <iostream>

#include "perfmodel/allocator.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "workflow/coupled.hpp"
#include "workflow/engine_case.hpp"
#include "workflow/models.hpp"

namespace {

using namespace cpx;

struct CaseResult {
  perfmodel::Allocation alloc;
  workflow::CaseModels models;
  double measured_runtime = 0.0;  ///< coupled, scaled to 1000 steps
  std::vector<double> actual;     ///< standalone per instance (scaled)
  std::vector<double> predicted;
};

CaseResult run_case(const workflow::EngineCase& ec,
                    const sim::MachineModel& machine) {
  CaseResult r;
  r.models = workflow::build_case_models(ec, machine, {});
  r.alloc = perfmodel::distribute_ranks(r.models.apps, r.models.cus, 40000);

  workflow::RankAssignment ra{r.alloc.app_ranks, r.alloc.cu_ranks};
  workflow::CoupledSimulation sim(ec, machine, ra);
  const int steps = 50;
  sim.run(steps);
  const double scale = 1000.0 / steps;
  r.measured_runtime = sim.runtime() * scale;
  for (std::size_t i = 0; i < r.models.apps.size(); ++i) {
    r.actual.push_back(
        sim.standalone_runtime(static_cast<int>(i), steps) * scale);
    r.predicted.push_back(r.models.apps[i].time(r.alloc.app_ranks[i]));
  }
  return r;
}

}  // namespace

int main() {
  const auto machine = sim::MachineModel::archer2();
  const workflow::EngineCase base_case = workflow::hpc_combustor_hpt(false);
  const workflow::EngineCase opt_case = workflow::hpc_combustor_hpt(true);

  std::cout << "building models and running " << base_case.name << " / "
            << opt_case.name << " at 40,000 cores...\n";
  const CaseResult base = run_case(base_case, machine);
  const CaseResult opt = run_case(opt_case, machine);

  // --- Fig 9b: rank allocation table ---
  print_banner(std::cout, "Fig 9b — rank allocation per instance "
                          "(40,000-core budget)");
  Table fig9b({"#", "application", "mesh (M)", "ranks (Base-STC)",
               "ranks (Optimized-STC)"});
  for (std::size_t i = 0; i < base_case.instances.size(); ++i) {
    const auto& spec = base_case.instances[i];
    fig9b.add_row({static_cast<long long>(i + 1),
                   spec.kind == workflow::AppKind::kMgcfd ? "MG-CFD"
                                                          : "SIMPIC",
                   static_cast<double>(spec.mesh_cells) / 1e6,
                   static_cast<long long>(base.alloc.app_ranks[i]),
                   static_cast<long long>(opt.alloc.app_ranks[i])});
  }
  fig9b.print(std::cout);
  std::cout << "(Paper: Base — 24M rows 100, 150M 167, SIMPIC 13428, 300M "
               "338; Optimized — 24M 163, 150M 1218, SIMPIC 32201, 300M "
               "3357.)\n";

  // --- Fig 9a: per-instance percentage error, both configurations ---
  print_banner(std::cout,
               "Fig 9a — model-vs-mini-app error per instance (%)");
  Table fig9a({"instance", "Base-STC err %", "Optimized-STC err %"});
  fig9a.set_precision(3);
  std::vector<double> all_errors;
  for (std::size_t i = 0; i < base.actual.size(); ++i) {
    const double e_base = percent_error(base.predicted[i], base.actual[i]);
    const double e_opt = percent_error(opt.predicted[i], opt.actual[i]);
    all_errors.push_back(e_base);
    all_errors.push_back(e_opt);
    fig9a.add_row({base_case.instances[i].name, e_base, e_opt});
  }
  fig9a.print(std::cout);
  const Summary err = summarize(all_errors);
  std::cout << "worst-case error = " << err.max << "%, mean = " << err.mean
            << "%  (paper: worst 25%, mean 12%)\n";

  // --- Fig 9c: predicted vs measured speedup for one revolution ---
  print_banner(std::cout,
               "Fig 9c — speedup of Optimized-STC over Base-STC "
               "(1 revolution)");
  const double predicted_speedup =
      base.alloc.predicted_runtime / opt.alloc.predicted_runtime;
  const double measured_speedup = base.measured_runtime / opt.measured_runtime;
  Table fig9c({"quantity", "Base-STC", "Optimized-STC", "speedup"});
  fig9c.add_row({std::string("predicted runtime (s)"),
                 base.alloc.predicted_runtime, opt.alloc.predicted_runtime,
                 predicted_speedup});
  fig9c.add_row({std::string("measured runtime (s)"), base.measured_runtime,
                 opt.measured_runtime, measured_speedup});
  fig9c.print(std::cout);
  std::cout << "prediction error: base "
            << percent_error(base.alloc.predicted_runtime,
                             base.measured_runtime)
            << "%, optimized "
            << percent_error(opt.alloc.predicted_runtime,
                             opt.measured_runtime)
            << "%  (paper: both < 25%; predicted ~6x, measured ~4x — a "
               "4x-6x overall band)\n";
  return 0;
}
