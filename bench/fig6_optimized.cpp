// Reproduces Fig 6: the predicted effect of the §IV optimisations —
//  (a) pressure-solver parallel efficiency before and after the particle
//      (spray -> 100% PE) and solver (pressure field 5x) optimisations,
//  (b,c) speedup of the estimated optimised pressure solver vs the
//      Optimized-STC SIMPIC configuration that synthetically matches it
//      (the paper reports a runtime match with error < 7%).

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "pressure/surrogate.hpp"
#include "simpic/instance.hpp"
#include "simpic/stc.hpp"

namespace {

using namespace cpx;

perfmodel::AppFactory pressure_factory(const pressure::Config& cfg) {
  return [cfg](sim::RankRange r) -> std::unique_ptr<sim::App> {
    return std::make_unique<pressure::Instance>("pressure", cfg, r);
  };
}

}  // namespace

int main() {
  const auto machine = cpx::sim::MachineModel::archer2();
  const std::vector<int> cores = {128,  256,  512,  1024, 2048,
                                  4096, 6144, 8192, 10000};

  // --- Fig 6a: predicted PE before and after the optimisations ---
  const auto s_base = cpx::bench::measure_series(
      "base", pressure_factory(cpx::pressure::Config::base_28m()), machine,
      cores, 2, 10.0);
  const auto s_opt = cpx::bench::measure_series(
      "optimized",
      pressure_factory(cpx::pressure::Config::optimized(28'000'000)),
      machine, cores, 2, 10.0);
  cpx::bench::print_scaling_table(
      std::cout,
      "Fig 6a — pressure solver (28M) before/after spray + AMG "
      "optimisations",
      {s_base, s_opt});

  // --- Fig 6b/6c: Optimized-STC matching the optimised pressure solver.
  // The two runs represent the same workload at different step counts, so
  // totals are compared through a fixed equivalence calibrated at a
  // mid-range core count (mirroring how the paper pairs run lengths).
  const auto stc = cpx::simpic::optimized_stc();
  auto s_stc = cpx::bench::measure_series(
      "Optimized-STC",
      [stc](cpx::sim::RankRange r) -> std::unique_ptr<cpx::sim::App> {
        return std::make_unique<cpx::simpic::Instance>("stc", stc, r);
      },
      machine, cores, 2, static_cast<double>(stc.timesteps));
  std::size_t anchor = 0;
  for (std::size_t i = 0; i < s_stc.cores.size(); ++i) {
    if (s_stc.cores[i] == 2048.0) {
      anchor = i;
    }
  }
  const double equivalence =
      s_stc.seconds[anchor] / s_opt.seconds[anchor];
  auto s_opt_scaled = s_opt;
  s_opt_scaled.name = "est. optimized pressure";
  for (double& t : s_opt_scaled.seconds) {
    t *= equivalence;
  }
  cpx::bench::print_scaling_table(
      std::cout,
      "Fig 6b/6c — Optimized-STC vs estimated optimised pressure solver",
      {s_opt_scaled, s_stc});
  cpx::bench::print_error_summary(std::cout, s_stc, s_opt_scaled);
  std::cout << "(Paper: the Optimized-STC predicts the estimated optimised "
               "pressure-solver runtime with error < 7%.)\n";
  return 0;
}
