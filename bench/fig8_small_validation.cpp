// Reproduces Fig 8: the small model-validation case — two MG-CFD Rotor37-
// class instances (150M cells) and one SIMPIC unit (28M-cell pressure
// proxy) on a 5,000-core budget. The empirical model load-balances the
// components (the paper allocated 331 ranks per MG-CFD unit, 4,253 to
// SIMPIC, 63 + 22 to the coupler units) and predicts each component's
// runtime with a maximum error of 18%.

#include <iostream>

#include "perfmodel/allocator.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "workflow/coupled.hpp"
#include "workflow/engine_case.hpp"
#include "workflow/models.hpp"

int main() {
  using namespace cpx;

  const workflow::EngineCase ec = workflow::small_validation_case();
  const auto machine = sim::MachineModel::archer2();

  workflow::ModelOptions options;
  options.app_sweep = {100, 200, 400, 800, 1600, 3200, 5000};
  const workflow::CaseModels models =
      workflow::build_case_models(ec, machine, options);
  const perfmodel::Allocation alloc =
      perfmodel::distribute_ranks(models.apps, models.cus, 5000);

  print_banner(std::cout, "Fig 8b — component meshes and rank allocation "
                          "(5,000-core budget)");
  Table fig8b({"instance", "mesh (M cells)", "ranks"});
  for (std::size_t i = 0; i < ec.instances.size(); ++i) {
    fig8b.add_row(
        {ec.instances[i].name,
         static_cast<double>(ec.instances[i].mesh_cells) / 1e6,
         static_cast<long long>(alloc.app_ranks[i])});
  }
  for (std::size_t i = 0; i < ec.couplers.size(); ++i) {
    fig8b.add_row({ec.couplers[i].name,
                   static_cast<double>(ec.couplers[i].interface_cells) / 1e6,
                   static_cast<long long>(alloc.cu_ranks[i])});
  }
  fig8b.print(std::cout);
  std::cout << "(Paper: 331 ranks per MG-CFD unit, 4,253 to SIMPIC, 63 CU "
               "between the MG-CFD units, 22 CU to SIMPIC couplers.)\n";

  // Run the coupled mini-app simulation and compare predicted vs actual
  // per-component runtimes (Fig 8a). We run 20 density steps and scale to
  // the modelled 1000, like the paper's shortened validation runs.
  workflow::RankAssignment ra{alloc.app_ranks, alloc.cu_ranks};
  workflow::CoupledSimulation sim(ec, machine, ra);
  const int steps = 20;
  sim.run(steps);
  const double scale = static_cast<double>(options.density_steps) / steps;

  print_banner(std::cout,
               "Fig 8a — predicted vs actual component runtimes");
  Table fig8a({"instance", "ranks", "actual (s)", "predicted (s)",
               "error %"});
  double worst = 0.0;
  for (std::size_t i = 0; i < models.apps.size(); ++i) {
    const double actual =
        sim.standalone_runtime(static_cast<int>(i), steps) * scale;
    const double predicted = models.apps[i].time(alloc.app_ranks[i]);
    const double err = percent_error(predicted, actual);
    worst = std::max(worst, err);
    fig8a.add_row({models.apps[i].name,
                   static_cast<long long>(alloc.app_ranks[i]), actual,
                   predicted, err});
  }
  fig8a.print(std::cout);
  std::cout << "worst-case component error = " << worst
            << "%  (paper: maximum error 18%)\n";
  std::cout << "coupled runtime (scaled) = " << sim.runtime() * scale
            << " s; model prediction = " << alloc.predicted_runtime
            << " s\n";
  return 0;
}
