// Reproduces Fig 4:
//  (a) speedup of the pressure solver and SIMPIC on the 28M and 84M cases,
//  (b) their parallel efficiency (the pressure solver drops below 50% at
//      ~3000 cores; SIMPIC tracks it with mean error <9%, worst 22%),
//  (c) speedup of the representative large Base-STC (380M equivalent)
//      from 1,000 to 10,000 cores (PE approaches 50% at 10,000 cores,
//      i.e. a maximum speedup of about 6x over the 1,000-core baseline).

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "pressure/surrogate.hpp"
#include "simpic/instance.hpp"
#include "simpic/stc.hpp"

namespace {

using namespace cpx;

perfmodel::AppFactory simpic_factory(const simpic::StcConfig& cfg) {
  return [cfg](sim::RankRange r) -> std::unique_ptr<sim::App> {
    return std::make_unique<simpic::Instance>("simpic", cfg, r);
  };
}

perfmodel::AppFactory pressure_factory(const pressure::Config& cfg) {
  return [cfg](sim::RankRange r) -> std::unique_ptr<sim::App> {
    return std::make_unique<pressure::Instance>("pressure", cfg, r);
  };
}

}  // namespace

int main() {
  const auto machine = cpx::sim::MachineModel::archer2();
  // The paper's pressure-solver measurements stop near 3000 cores (where
  // parallel efficiency has fallen below 50%); the comparison uses the
  // same range.
  const std::vector<int> cores = {128, 256, 512, 1024, 2048, 3000};

  // Totals are compared on equal footing: STC configs run their configured
  // timesteps, the surrogate runs the paper's 10-step measurement.
  for (const auto& [stc, pcfg] :
       {std::pair{cpx::simpic::base_stc_28m(),
                  cpx::pressure::Config::base_28m()},
        std::pair{cpx::simpic::base_stc_84m(),
                  cpx::pressure::Config::base_84m()}}) {
    const auto s_simpic = cpx::bench::measure_series(
        "SIMPIC", simpic_factory(stc), machine, cores, 2,
        static_cast<double>(stc.timesteps));
    const auto s_pressure = cpx::bench::measure_series(
        "pressure", pressure_factory(pcfg), machine, cores, 2, 10.0);
    cpx::bench::print_scaling_table(
        std::cout,
        "Fig 4a/4b — " + stc.name + " vs pressure solver (" +
            std::to_string(stc.proxy_mesh_cells / 1'000'000) + "M cells)",
        {s_pressure, s_simpic});
    cpx::bench::print_error_summary(std::cout, s_simpic, s_pressure);
  }

  // (c) the large base test case, 1,000 to 10,000 cores.
  const std::vector<int> big_cores = {1000, 2000, 3000, 4000,
                                      6000, 8000, 10000};
  const auto s_big = cpx::bench::measure_series(
      "Base-STC-380M", simpic_factory(cpx::simpic::base_stc_380m()),
      machine, big_cores, 2);
  cpx::bench::print_scaling_table(
      std::cout, "Fig 4c — SIMPIC with the large base test case", {s_big});
  std::cout << "(Paper: parallel efficiency approaches 50% at 10,000 "
               "cores; maximum speedup ~6x over 1,000 cores.)\n";
  return 0;
}
