// Reproduces Fig 3: the table mapping pressure-solver test cases to the
// SIMPIC configurations that replicate their performance behaviour, plus
// the Optimized-STC of §IV-C. Also reports the total-runtime agreement
// between each Base-STC and its pressure-solver surrogate at a reference
// core count (the property the table encodes).

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "pressure/surrogate.hpp"
#include "simpic/instance.hpp"
#include "simpic/stc.hpp"

namespace {

using namespace cpx;

/// SIMPIC STC total runtime (configured timesteps) at `cores`.
double stc_total_runtime(const simpic::StcConfig& cfg, int cores) {
  sim::Cluster cluster(sim::MachineModel::archer2(), cores);
  simpic::Instance inst("stc", cfg, {0, cores});
  inst.step(cluster);  // warm-up excluded: steps are identical
  const double t0 = cluster.max_clock();
  inst.step(cluster);
  return (cluster.max_clock() - t0) * cfg.timesteps;
}

/// Pressure-solver surrogate total runtime (10 timesteps, as the paper's
/// measurements) at `cores`.
double pressure_total_runtime(const pressure::Config& cfg, int cores) {
  sim::Cluster cluster(sim::MachineModel::archer2(), cores);
  pressure::Instance inst("pressure", cfg, {0, cores});
  inst.step(cluster);
  const double t0 = cluster.max_clock();
  inst.step(cluster);
  return (cluster.max_clock() - t0) * 10.0;
}

}  // namespace

int main() {
  using cpx::Table;

  cpx::print_banner(std::cout,
                    "Fig 3 — pressure-solver test cases and their SIMPIC "
                    "proxy configurations");
  Table table({"Pressure mesh", "SIMPIC cells", "particles/cell",
               "timesteps", "total particles"});
  for (const auto& cfg : cpx::simpic::all_stc_configs()) {
    table.add_row({cfg.name + "  (proxy for " +
                       std::to_string(cfg.proxy_mesh_cells / 1'000'000) +
                       "M)",
                   static_cast<long long>(cfg.cells),
                   cfg.particles_per_cell,
                   static_cast<long long>(cfg.timesteps),
                   static_cast<long long>(cfg.total_particles())});
  }
  table.print(std::cout);

  cpx::print_banner(
      std::cout,
      "Proxy fidelity: STC total runtime vs pressure-solver surrogate "
      "(2048 cores)");
  Table fidelity({"config", "STC total (s)", "pressure total (s)",
                  "error %"});
  struct Pair {
    cpx::simpic::StcConfig stc;
    cpx::pressure::Config pressure;
  };
  const Pair pairs[] = {
      {cpx::simpic::base_stc_28m(), cpx::pressure::Config::base_28m()},
      {cpx::simpic::base_stc_84m(), cpx::pressure::Config::base_84m()},
  };
  for (const Pair& pair : pairs) {
    const double t_stc = stc_total_runtime(pair.stc, 2048);
    const double t_pressure = pressure_total_runtime(pair.pressure, 2048);
    fidelity.add_row({pair.stc.name, t_stc, t_pressure,
                      cpx::percent_error(t_stc, t_pressure)});
  }
  fidelity.print(std::cout);
  std::cout << "\n(Paper: SIMPIC predicts the pressure-solver runtime with "
               "mean error < 9%, worst case 22%.)\n";
  return 0;
}
