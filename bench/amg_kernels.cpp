// Kernel-level ablations for the §IV-B pressure-field optimisations, as
// google-benchmark microbenchmarks on the real implementations:
//   * SpGEMM: two-pass baseline vs single-pass SPA (sparse accumulator),
//   * halo-column renumbering: sort+binary-search vs hash-map + merge,
//   * smoothers: Jacobi vs Gauss-Seidel vs Hybrid GS,
//   * AMG cycles: V-cycle vs K-cycle, tentative vs smoothed vs extended
//     interpolation (setup and solve).

#include <benchmark/benchmark.h>

#include <vector>

#include "amg/hierarchy.hpp"
#include "amg/smoothers.hpp"
#include "sparse/csr.hpp"
#include "sparse/generators.hpp"
#include "sparse/identity_prefix.hpp"
#include "sparse/renumber.hpp"
#include "support/rng.hpp"

namespace {

using namespace cpx;

// --- SpGEMM: the Galerkin product A * P on a 3-D Poisson operator ---

sparse::CsrMatrix poisson_for(std::int64_t n_target) {
  const int side = static_cast<int>(std::cbrt(static_cast<double>(n_target)));
  return sparse::laplacian_3d(side, side, side);
}

sparse::CsrMatrix pairwise_p(std::int64_t rows) {
  std::vector<sparse::Triplet> t;
  for (std::int64_t i = 0; i < rows; ++i) {
    t.push_back({i, i / 2, 1.0});
  }
  return sparse::csr_from_triplets(rows, (rows + 1) / 2, t);
}

void BM_SpgemmTwoPass(benchmark::State& state) {
  const sparse::CsrMatrix a = poisson_for(state.range(0));
  const sparse::CsrMatrix p = pairwise_p(a.rows());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::spgemm_twopass(a, p));
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SpgemmTwoPass)->Arg(8'000)->Arg(64'000)->Arg(216'000);

void BM_SpgemmSpa(benchmark::State& state) {
  const sparse::CsrMatrix a = poisson_for(state.range(0));
  const sparse::CsrMatrix p = pairwise_p(a.rows());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::spgemm_spa(a, p));
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SpgemmSpa)->Arg(8'000)->Arg(64'000)->Arg(216'000);

// --- Halo-column renumbering ---

std::vector<std::int64_t> halo_ids(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> ids(n);
  for (auto& id : ids) {
    // Clustered global ids, as halo columns are in practice.
    id = static_cast<std::int64_t>(rng.uniform_index(n / 8 + 1)) * 13;
  }
  return ids;
}

void BM_RenumberSort(benchmark::State& state) {
  const auto ids = halo_ids(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::renumber_sort(ids));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RenumberSort)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void BM_RenumberHashMerge(benchmark::State& state) {
  const auto ids = halo_ids(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::renumber_hash_merge(ids, 8));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RenumberHashMerge)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

// --- Interpolation SpMV: plain CSR vs identity-prefix (section IV-B) ---

sparse::CsrMatrix nested_interpolation(std::int64_t coarse) {
  // Node-nested P: coarse points inject directly (unit prefix), fine
  // points average two coarse neighbours.
  std::vector<sparse::Triplet> t;
  for (std::int64_t i = 0; i < coarse; ++i) {
    t.push_back({i, i, 1.0});
  }
  for (std::int64_t i = 0; i < coarse; ++i) {
    t.push_back({coarse + i, i, 0.5});
    t.push_back({coarse + i, (i + 1) % coarse, 0.5});
  }
  return sparse::csr_from_triplets(2 * coarse, coarse, t);
}

void BM_InterpSpmvPlain(benchmark::State& state) {
  const sparse::CsrMatrix p = nested_interpolation(state.range(0));
  std::vector<double> x(static_cast<std::size_t>(p.cols()), 1.0);
  std::vector<double> y(static_cast<std::size_t>(p.rows()));
  for (auto _ : state) {
    sparse::spmv(p, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * p.nnz());
}
BENCHMARK(BM_InterpSpmvPlain)->Arg(100'000)->Arg(1'000'000);

void BM_InterpSpmvIdentityPrefix(benchmark::State& state) {
  const sparse::IdentityPrefixMatrix p =
      sparse::IdentityPrefixMatrix::from_csr(
          nested_interpolation(state.range(0)));
  std::vector<double> x(static_cast<std::size_t>(p.cols()), 1.0);
  std::vector<double> y(static_cast<std::size_t>(p.rows()));
  for (auto _ : state) {
    p.apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          (p.stored_nnz() + p.identity_rows()));
}
BENCHMARK(BM_InterpSpmvIdentityPrefix)->Arg(100'000)->Arg(1'000'000);

// --- Smoothers (one sweep on a 2-D Poisson problem) ---

template <amg::SmootherKind kKind>
void BM_SmootherSweep(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const sparse::CsrMatrix a = sparse::laplacian_2d(side, side);
  const auto n = static_cast<std::size_t>(a.rows());
  std::vector<double> x(n, 0.0);
  std::vector<double> b(n, 1.0);
  std::vector<double> scratch(n);
  amg::SmootherOptions opt;
  opt.kind = kKind;
  for (auto _ : state) {
    amg::smooth(a, x, b, opt, scratch);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SmootherSweep<amg::SmootherKind::kJacobi>)->Arg(256);
BENCHMARK(BM_SmootherSweep<amg::SmootherKind::kGaussSeidel>)->Arg(256);
BENCHMARK(BM_SmootherSweep<amg::SmootherKind::kHybridGs>)->Arg(256);
BENCHMARK(BM_SmootherSweep<amg::SmootherKind::kL1Jacobi>)->Arg(256);

// --- AMG setup (interpolation variants; SPA vs two-pass Galerkin) ---

void BM_AmgSetup(benchmark::State& state) {
  const sparse::CsrMatrix a = sparse::laplacian_3d(24, 24, 24);
  amg::AmgOptions opt;
  opt.interp = static_cast<amg::InterpKind>(state.range(0));
  opt.spgemm = state.range(1) == 0 ? amg::SpgemmKind::kTwoPass
                                   : amg::SpgemmKind::kSpa;
  for (auto _ : state) {
    amg::AmgHierarchy h(a, opt);
    benchmark::DoNotOptimize(h.num_levels());
  }
}
BENCHMARK(BM_AmgSetup)
    ->ArgsProduct({{0, 1, 2}, {0, 1}})
    ->ArgNames({"interp", "spa"});

// --- AMG solve: V-cycle vs K-cycle to fixed tolerance ---

void BM_AmgSolve(benchmark::State& state) {
  const sparse::CsrMatrix a = sparse::laplacian_2d(96, 96);
  amg::AmgOptions opt;
  opt.cycle = state.range(0) == 0 ? amg::CycleKind::kV : amg::CycleKind::kK;
  amg::AmgHierarchy h(a, opt);
  const auto n = static_cast<std::size_t>(a.rows());
  Rng rng(12);
  std::vector<double> b(n);
  for (double& v : b) {
    v = rng.uniform(-1.0, 1.0);
  }
  std::vector<double> x(n);
  int cycles = 0;
  for (auto _ : state) {
    std::fill(x.begin(), x.end(), 0.0);
    cycles = h.solve(x, b, 1e-8, 100);
    benchmark::DoNotOptimize(x.data());
  }
  state.counters["cycles_to_1e-8"] = cycles;
}
BENCHMARK(BM_AmgSolve)->Arg(0)->Arg(1)->ArgNames({"kcycle"});

}  // namespace

BENCHMARK_MAIN();
