// Design-space sweep: the paper's headline use case is "rapid design space
// and run-time setup exploration" — this bench plans the HPC-Combustor-HPT
// case across core budgets for both pressure-solver variants and prints
// the resulting runtime / speedup / efficiency frontier, i.e. the answer
// to "how many nodes should we book, and is the optimisation worth it at
// our scale?".

#include <iostream>

#include "perfmodel/allocator.hpp"
#include "support/table.hpp"
#include "workflow/engine_case.hpp"
#include "workflow/models.hpp"

int main() {
  using namespace cpx;
  const auto machine = sim::MachineModel::archer2();

  const workflow::EngineCase base_case = workflow::hpc_combustor_hpt(false);
  const workflow::EngineCase opt_case = workflow::hpc_combustor_hpt(true);
  std::cout << "benchmarking components (once per variant)...\n";
  const workflow::CaseModels base_models =
      workflow::build_case_models(base_case, machine, {});
  const workflow::CaseModels opt_models =
      workflow::build_case_models(opt_case, machine, {});

  print_banner(std::cout,
               "Core-budget frontier — predicted 1-revolution runtime");
  Table table({"cores", "Base-STC T (s)", "Base SIMPIC ranks",
               "Optimized T (s)", "Opt SIMPIC ranks", "opt speedup",
               "base unallocated"});
  table.set_precision(4);
  for (int budget : {5000, 10000, 20000, 40000, 80000, 160000}) {
    const perfmodel::Allocation base =
        perfmodel::distribute_ranks(base_models.apps, base_models.cus, budget);
    const perfmodel::Allocation opt =
        perfmodel::distribute_ranks(opt_models.apps, opt_models.cus, budget);
    int base_used = 0;
    for (int r : base.app_ranks) {
      base_used += r;
    }
    for (int r : base.cu_ranks) {
      base_used += r;
    }
    table.add_row({static_cast<long long>(budget), base.predicted_runtime,
                   static_cast<long long>(base.app_ranks[13]),
                   opt.predicted_runtime,
                   static_cast<long long>(opt.app_ranks[13]),
                   base.predicted_runtime / opt.predicted_runtime,
                   static_cast<long long>(budget - base_used)});
  }
  table.print(std::cout);
  std::cout
      << "(The base solver stops absorbing cores at its ~13k-rank pipeline "
         "optimum — beyond that, extra budget is wasted (the unallocated "
         "column). The optimised solver keeps converting cores into "
         "speedup through the sweep, which is why the optimisation's value "
         "*grows* with machine scale: the planning insight the paper's "
         "methodology is built to deliver.)\n";
  return 0;
}
