#pragma once
// Builds the empirical performance model for an engine case (Fig 7's
// pipeline): benchmark each distinct mini-app configuration standalone on
// the virtual cluster across core counts, fit a scaling curve per
// configuration, and scale per instance by its iteration count over the
// modelled run. The resulting InstanceModels feed Alg 1
// (perfmodel::distribute_ranks).

#include <vector>

#include "perfmodel/allocator.hpp"
#include "sim/machine.hpp"
#include "workflow/engine_case.hpp"

namespace cpx::workflow {

struct ModelOptions {
  /// Density steps of the modelled full run (1 revolution = 1000).
  int density_steps = 1000;
  /// Rank floor per application instance (the paper uses 100 at engine
  /// scale) and per coupler unit.
  int app_min_ranks = 100;
  int cu_min_ranks = 1;
  /// Per-step repetitions when benchmarking (virtual time is
  /// deterministic, so few are needed).
  int bench_steps = 2;
  /// Core counts swept per application configuration; capped per instance
  /// so a mesh is never spread thinner than min_cells_per_rank.
  std::vector<int> app_sweep = {100,  160,  250,  400,   640,   1000,
                                1600, 2500, 4000, 6400,  10000, 16000,
                                25000, 40000};
  std::vector<int> cu_sweep = {2, 4, 8, 16, 32, 64, 128, 256};
  /// 3-D meshes are never spread thinner than this.
  std::int64_t min_cells_per_rank = 2000;
  /// SIMPIC's 1-D grid goes much thinner (the real code runs ~40 cells per
  /// rank at the paper's scales); its work lives in the particles.
  std::int64_t min_cells_per_rank_simpic = 16;
};

struct CaseModels {
  std::vector<perfmodel::InstanceModel> apps;  ///< per EngineCase instance
  std::vector<perfmodel::InstanceModel> cus;   ///< per EngineCase coupler
};

/// Benchmarks and fits every component of the case.
CaseModels build_case_models(const EngineCase& engine_case,
                             const sim::MachineModel& machine,
                             const ModelOptions& options = {});

/// Predicted full-run runtime of instance `index` at `cores` ranks, using
/// the fitted models (model time; compare against measured runtimes).
double predicted_instance_runtime(const CaseModels& models, int index,
                                  int cores);

}  // namespace cpx::workflow
