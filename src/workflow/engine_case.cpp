#include "workflow/engine_case.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace cpx::workflow {
namespace {

// Density instances iterate their multigrid solver this many times per
// coupled density step (production density solvers run multiple implicit/
// multigrid iterations per physical timestep). Calibrated once so the
// balanced MG-CFD and SIMPIC instance runtimes reproduce the paper's
// Fig 9b rank allocation.
constexpr int kDensityItersPerStep = 20;

InstanceSpec mgcfd_spec(std::string name, std::int64_t cells) {
  InstanceSpec s;
  s.name = std::move(name);
  s.kind = AppKind::kMgcfd;
  s.mesh_cells = cells;
  s.iterations_per_density_step = kDensityItersPerStep;
  return s;
}

InstanceSpec simpic_spec(std::string name, const simpic::StcConfig& stc) {
  InstanceSpec s;
  s.name = std::move(name);
  s.kind = AppKind::kSimpic;
  s.mesh_cells = stc.proxy_mesh_cells;
  s.stc = stc;
  s.iterations_per_density_step = 1;  // stepped by the pressure schedule
  return s;
}

CouplerSpec coupler_between(const EngineCase& c, int a, int b,
                            coupler::InterfaceKind kind, int exchange_every,
                            double fraction_override = 0.0) {
  CouplerSpec cu;
  cu.instance_a = a;
  cu.instance_b = b;
  cu.kind = kind;
  cu.exchange_every = exchange_every;
  const std::int64_t smaller =
      std::min(c.instances[static_cast<std::size_t>(a)].mesh_cells,
               c.instances[static_cast<std::size_t>(b)].mesh_cells);
  const double fraction =
      fraction_override > 0.0
          ? fraction_override
          : (kind == coupler::InterfaceKind::kSlidingPlane
                 ? kSlidingInterfaceFraction
                 : kSteadyInterfaceFraction);
  cu.interface_cells = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(static_cast<double>(smaller) * fraction));
  cu.name = "cu_" + c.instances[static_cast<std::size_t>(a)].name + "_" +
            c.instances[static_cast<std::size_t>(b)].name;
  return cu;
}

}  // namespace

std::int64_t EngineCase::total_cells() const {
  std::int64_t total = 0;
  for (const InstanceSpec& s : instances) {
    total += s.mesh_cells;
  }
  return total;
}

EngineCase hpc_combustor_hpt(bool optimized) {
  EngineCase c;
  c.name = optimized ? "HPC-Combustor-HPT (Optimized-STC)"
                     : "HPC-Combustor-HPT (Base-STC)";
  c.instances.push_back(mgcfd_spec("mgcfd_8m_row01", 8'000'000));
  for (int row = 2; row <= 12; ++row) {
    c.instances.push_back(mgcfd_spec(
        "mgcfd_24m_row" + std::string(row < 10 ? "0" : "") +
            std::to_string(row),
        24'000'000));
  }
  c.instances.push_back(mgcfd_spec("mgcfd_150m_row13", 150'000'000));
  c.instances.push_back(simpic_spec(
      "simpic_combustor",
      optimized ? simpic::optimized_stc() : simpic::base_stc_380m()));
  c.instances.push_back(mgcfd_spec("mgcfd_150m_row15", 150'000'000));
  c.instances.push_back(mgcfd_spec("mgcfd_300m_row16", 300'000'000));

  // Sliding planes between adjacent density rows (1-2 ... 12-13, 15-16);
  // steady-state interfaces around the combustor (13-14, 14-15).
  for (int i = 0; i + 1 <= 12; ++i) {
    c.couplers.push_back(coupler_between(
        c, i, i + 1, coupler::InterfaceKind::kSlidingPlane, 1));
  }
  c.couplers.push_back(coupler_between(
      c, 12, 13, coupler::InterfaceKind::kSteadyState, 20));
  c.couplers.push_back(coupler_between(
      c, 13, 14, coupler::InterfaceKind::kSteadyState, 20));
  c.couplers.push_back(coupler_between(
      c, 14, 15, coupler::InterfaceKind::kSlidingPlane, 1));
  return c;
}

EngineCase compressor_case() {
  EngineCase c;
  c.name = "Compressor rows (HiPC'21-style)";
  c.instances.push_back(mgcfd_spec("mgcfd_8m_row01", 8'000'000));
  for (int row = 2; row <= 12; ++row) {
    c.instances.push_back(mgcfd_spec(
        "mgcfd_24m_row" + std::string(row < 10 ? "0" : "") +
            std::to_string(row),
        24'000'000));
  }
  c.instances.push_back(mgcfd_spec("mgcfd_150m_row13", 150'000'000));
  for (int i = 0; i + 1 <= 12; ++i) {
    c.couplers.push_back(coupler_between(
        c, i, i + 1, coupler::InterfaceKind::kSlidingPlane, 1));
  }
  return c;
}

EngineCase hpc_combustor_hpt_with_casing(bool optimized,
                                         std::int64_t casing_cells) {
  EngineCase c = hpc_combustor_hpt(optimized);
  c.name += " + thermal casing";
  InstanceSpec casing;
  casing.name = "thermal_casing";
  casing.kind = AppKind::kThermal;
  casing.mesh_cells = casing_cells;
  casing.iterations_per_density_step = 1;
  c.instances.push_back(casing);
  const int casing_index = static_cast<int>(c.instances.size()) - 1;
  // Conjugate heat transfer with the combustor proxy (14 -> index 13) and
  // the first turbine row (15 -> index 14): steady interfaces, slow
  // exchange cadence.
  c.couplers.push_back(coupler_between(
      c, 13, casing_index, coupler::InterfaceKind::kSteadyState, 50,
      kThermalInterfaceFraction));
  c.couplers.push_back(coupler_between(
      c, 14, casing_index, coupler::InterfaceKind::kSteadyState, 50,
      kThermalInterfaceFraction));
  return c;
}

EngineCase small_validation_case(bool optimized) {
  EngineCase c;
  c.name = "Small validation 150M/28M (Fig 8)";
  c.instances.push_back(mgcfd_spec("mgcfd_150m_a", 150'000'000));
  c.instances.push_back(simpic_spec(
      "simpic_28m",
      optimized ? simpic::optimized_stc() : simpic::base_stc_28m()));
  c.instances.push_back(mgcfd_spec("mgcfd_150m_b", 150'000'000));

  c.couplers.push_back(coupler_between(
      c, 0, 2, coupler::InterfaceKind::kSlidingPlane, 1));
  c.couplers.push_back(coupler_between(
      c, 0, 1, coupler::InterfaceKind::kSteadyState, 20));
  c.couplers.push_back(coupler_between(
      c, 1, 2, coupler::InterfaceKind::kSteadyState, 20));
  return c;
}

}  // namespace cpx::workflow
