#include "workflow/models.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <string>

#include "cpx/unit.hpp"
#include "mgcfd/instance.hpp"
#include "perfmodel/sweep.hpp"
#include "simpic/instance.hpp"
#include "thermal/instance.hpp"
#include "support/check.hpp"

namespace cpx::workflow {
namespace {

/// Minimal App used as the two sides of a standalone coupler benchmark.
class NullApp final : public sim::App {
 public:
  NullApp(std::string name, sim::RankRange ranks)
      : name_(std::move(name)), ranks_(ranks) {}
  const std::string& name() const override { return name_; }
  sim::RankRange ranks() const override { return ranks_; }
  void step(sim::Cluster&) override {}

 private:
  std::string name_;
  sim::RankRange ranks_;
};

/// Standalone coupler-unit benchmark: the outer two ranks host dummy side
/// apps, the rest form the CU; one "step" is one coupling exchange.
class CouplerBenchApp final : public sim::App {
 public:
  CouplerBenchApp(const CouplerSpec& spec, sim::RankRange ranks)
      : name_("bench_" + spec.name),
        ranks_(ranks),
        side_a_("side_a", {ranks.begin, ranks.begin + 1}),
        side_b_("side_b", {ranks.end - 1, ranks.end}) {
    CPX_REQUIRE(ranks.size() >= 3,
                "CouplerBenchApp: need >= 3 ranks (2 sides + CU)");
    coupler::UnitConfig config;
    config.kind = spec.kind;
    config.interface_cells = spec.interface_cells;
    config.tree_search = spec.tree_search;
    unit_ = std::make_unique<coupler::CouplerUnit>(
        spec.name, config, sim::RankRange{ranks.begin + 1, ranks.end - 1},
        side_a_, side_b_);
  }

  const std::string& name() const override { return name_; }
  sim::RankRange ranks() const override { return ranks_; }
  void step(sim::Cluster& cluster) override { unit_->exchange(cluster); }

 private:
  std::string name_;
  sim::RankRange ranks_;
  NullApp side_a_;
  NullApp side_b_;
  std::unique_ptr<coupler::CouplerUnit> unit_;
};

perfmodel::AppFactory make_factory(const EngineCase& engine_case,
                                   const InstanceSpec& spec) {
  switch (spec.kind) {
    case AppKind::kMgcfd:
      return [spec](sim::RankRange ranks) -> std::unique_ptr<sim::App> {
        return std::make_unique<mgcfd::Instance>(spec.name, spec.mesh_cells,
                                                 ranks);
      };
    case AppKind::kThermal:
      return [spec](sim::RankRange ranks) -> std::unique_ptr<sim::App> {
        return std::make_unique<thermal::Instance>(spec.name,
                                                   spec.mesh_cells, ranks);
      };
    case AppKind::kSimpic:
      break;
  }
  const double weight = static_cast<double>(spec.stc.timesteps) /
                        engine_case.coupled_pressure_steps_per_run;
  return [spec, weight](sim::RankRange ranks) -> std::unique_ptr<sim::App> {
    return std::make_unique<simpic::Instance>(spec.name, spec.stc, ranks,
                                              simpic::WorkModel{}, weight);
  };
}

/// Steps of this instance over the modelled run (its curve is per step).
double steps_in_run(const EngineCase& engine_case, const InstanceSpec& spec,
                    int density_steps) {
  if (spec.kind == AppKind::kSimpic) {
    return static_cast<double>(density_steps) *
           engine_case.pressure_steps_per_density_step;
  }
  return static_cast<double>(density_steps) *
         spec.iterations_per_density_step;
}

}  // namespace

CaseModels build_case_models(const EngineCase& engine_case,
                             const sim::MachineModel& machine,
                             const ModelOptions& options) {
  CaseModels models;

  // Benchmark each *distinct* configuration once, then share the curve
  // across identical instances (the 11 x 24M compressor rows).
  std::map<std::string, perfmodel::ScalingCurve> curve_cache;

  for (const InstanceSpec& spec : engine_case.instances) {
    const std::int64_t units =
        spec.kind == AppKind::kSimpic ? spec.stc.cells : spec.mesh_cells;
    const std::int64_t min_per_rank = spec.kind == AppKind::kSimpic
                                          ? options.min_cells_per_rank_simpic
                                          : options.min_cells_per_rank;
    const int max_ranks = static_cast<int>(
        std::max<std::int64_t>(1, units / min_per_rank));

    const char* kind_tag = spec.kind == AppKind::kMgcfd    ? "mgcfd_"
                           : spec.kind == AppKind::kSimpic ? "simpic_"
                                                           : "thermal_";
    const std::string key = kind_tag + std::to_string(spec.mesh_cells) +
                            "_" + spec.stc.name;
    auto it = curve_cache.find(key);
    if (it == curve_cache.end()) {
      std::vector<int> sweep;
      for (int cores : options.app_sweep) {
        if (cores <= max_ranks) {
          sweep.push_back(cores);
        }
      }
      // Always keep at least two points so a curve can be fitted.
      while (sweep.size() < 2) {
        sweep.push_back(std::max(1, max_ranks / (sweep.empty() ? 2 : 1)));
      }
      it = curve_cache
               .emplace(key, perfmodel::fit_scaling(
                                 make_factory(engine_case, spec), machine,
                                 sweep, options.bench_steps))
               .first;
    }

    perfmodel::InstanceModel m;
    m.name = spec.name;
    m.curve = it->second;
    m.scale = steps_in_run(engine_case, spec, options.density_steps);
    m.min_ranks = std::min(options.app_min_ranks, max_ranks);
    m.max_ranks = max_ranks;
    models.apps.push_back(std::move(m));
  }

  for (const CouplerSpec& spec : engine_case.couplers) {
    std::vector<int> sweep;
    for (int cores : options.cu_sweep) {
      sweep.push_back(cores + 2);  // two side ranks in the bench app
    }
    const perfmodel::ScalingCurve curve = perfmodel::fit_scaling(
        [&spec](sim::RankRange ranks) -> std::unique_ptr<sim::App> {
          return std::make_unique<CouplerBenchApp>(spec, ranks);
        },
        machine, sweep, options.bench_steps);

    perfmodel::InstanceModel m;
    m.name = spec.name;
    m.curve = curve;
    m.scale = static_cast<double>(options.density_steps) /
              spec.exchange_every;
    m.min_ranks = options.cu_min_ranks;
    m.max_ranks = static_cast<int>(std::max<std::int64_t>(
        2, spec.interface_cells / options.min_cells_per_rank));
    models.cus.push_back(std::move(m));
  }
  return models;
}

double predicted_instance_runtime(const CaseModels& models, int index,
                                  int cores) {
  CPX_REQUIRE(index >= 0 &&
                  static_cast<std::size_t>(index) < models.apps.size(),
              "predicted_instance_runtime: bad index");
  return models.apps[static_cast<std::size_t>(index)].time(cores);
}

}  // namespace cpx::workflow
