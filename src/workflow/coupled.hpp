#pragma once
// The coupled mini-app simulation: instantiates an EngineCase on the
// virtual cluster with a given rank assignment and advances the coupling
// schedule:
//   per density step:
//     * every density instance runs its solver iterations,
//     * sliding-plane CUs exchange (every density step),
//     * the pressure proxy runs pressure_steps_per_density_step steps,
//     * steady-state CUs exchange on their cadence (every 20 steps).
// Because coupler exchanges move real (virtual-time) messages between the
// instances' boundary ranks, the simulation progresses at the pace of the
// slowest component — the load-balancing problem the performance model
// solves.

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "cpx/unit.hpp"
#include "sim/cluster.hpp"
#include "workflow/engine_case.hpp"

namespace cpx::workflow {

struct RankAssignment {
  std::vector<int> app_ranks;  ///< per EngineCase instance
  std::vector<int> cu_ranks;   ///< per EngineCase coupler

  int total() const;
};

class CoupledSimulation {
 public:
  CoupledSimulation(const EngineCase& engine_case,
                    const sim::MachineModel& machine,
                    const RankAssignment& assignment);

  /// Advances the schedule; cumulative (can be called repeatedly).
  void run(int density_steps);

  int density_steps_run() const { return density_steps_run_; }

  /// Total coupled runtime so far (max clock over all ranks).
  double runtime() const;

  /// Coupled runtime of one instance (max clock over its ranks).
  double instance_runtime(int index) const;

  /// Measured traffic injected by one instance's ranks so far (bytes of
  /// halo exchanges, migrations, collectives — real message sizes from
  /// the comm layer, see docs/communication.md).
  std::size_t instance_comm_bytes(int index) const;
  /// Measured traffic injected by one coupler unit's ranks so far (the
  /// scatter legs of its exchanges originate on the CU ranks).
  std::size_t cu_comm_bytes(int index) const;

  /// Disables/enables coupler exchanges. Running the same case once with
  /// and once without coupling isolates the coupling overhead of §V-B:
  ///   overhead = (T_coupled - T_uncoupled) / T_coupled.
  void set_coupling_enabled(bool enabled) { coupling_enabled_ = enabled; }

  /// Enables split-phase communication/computation overlap on every
  /// instance and coupler unit that supports it (docs/communication.md).
  /// The exchanged data is unchanged — only the cluster timing moves, so
  /// on/off runs of the same case isolate the modelled overlap gain.
  void set_overlap_enabled(bool enabled);

  /// Runtime of instance `index` run alone on a fresh cluster with the
  /// same rank count and the same number of density steps (the per-
  /// instance "actual" of Fig 8a / Fig 9a).
  double standalone_runtime(int index, int density_steps) const;

  const EngineCase& engine_case() const { return case_; }
  const RankAssignment& assignment() const { return assignment_; }
  sim::Cluster& cluster() { return *cluster_; }
  sim::App& app(int index);

  // --- Checkpoint/restart (docs/checkpoint.md) ---
  /// Serialises the coupled-run state (case/assignment digest, step
  /// counter, cluster clocks + profile + traffic, CU latches, metrics
  /// counters) into this simulation's persistent snapshot writer and
  /// returns the bytes. The staging buffer is reused, so warm calls
  /// allocate nothing beyond the first snapshot's capacity.
  std::span<const std::byte> checkpoint_bytes();
  /// checkpoint_bytes() + atomic write to `path`.
  void checkpoint(const std::string& path);
  /// Restores a snapshot taken by a simulation constructed from the SAME
  /// case, machine, and assignment (validated via a structural digest —
  /// CheckError on mismatch or corruption). After restore, run() continues
  /// exactly where the checkpointed run left off.
  void restore(std::span<const std::byte> bytes);
  void restore(const std::string& path);

  /// Core section writers/readers used by the wrappers above (and by the
  /// fused snapshots the tests build).
  void serialize(ckpt::Writer& w) const;
  void restore(ckpt::Reader& r);

  /// Writes a snapshot to `path` every `every` density steps during run()
  /// (0 disables). Also configurable via the environment: CPX_CKPT_EVERY
  /// (cadence) and CPX_CKPT_PATH (default "cpx.ckpt") are read at
  /// construction.
  void set_checkpoint_cadence(int every, std::string path);
  int checkpoint_cadence() const { return ckpt_every_; }

  /// Structural digest of the engine case and rank assignment, stored in
  /// every snapshot: restore refuses state from a different setup.
  std::uint64_t case_digest() const;

 private:
  std::unique_ptr<sim::App> make_app(const InstanceSpec& spec,
                                     sim::RankRange ranks) const;
  void step_instance(int index);

  EngineCase case_;       // digest-validated // cpx-lint: allow(ckpt)
  sim::MachineModel machine_;  // construction config // cpx-lint: allow(ckpt)
  RankAssignment assignment_;  // digest-validated // cpx-lint: allow(ckpt)
  std::unique_ptr<sim::Cluster> cluster_;
  // Performance-model instances are stateless between steps (all carried
  // state lives in the cluster clocks), so they are not serialized.
  std::vector<std::unique_ptr<sim::App>> apps_;  // cpx-lint: allow(ckpt)
  std::vector<sim::RankRange> app_ranges_;       // cpx-lint: allow(ckpt)
  std::vector<std::unique_ptr<coupler::CouplerUnit>> cus_;
  std::vector<sim::RankRange> cu_ranges_;        // cpx-lint: allow(ckpt)
  int density_steps_run_ = 0;
  bool coupling_enabled_ = true;

  // Snapshot plumbing (not simulated state).
  ckpt::Writer writer_;    // cpx-lint: allow(ckpt)
  int ckpt_every_ = 0;     // cpx-lint: allow(ckpt)
  std::string ckpt_path_;  // cpx-lint: allow(ckpt)
};

}  // namespace cpx::workflow
