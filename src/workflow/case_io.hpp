#pragma once
// Plain-text engine-case files, so users can define their own coupled
// simulations for the planner without recompiling. Format (one directive
// per line, '#' comments):
//
//   name My Engine Case
//   pressure_steps_per_density_step 2
//   coupled_pressure_steps_per_run 2000
//
//   instance mgcfd   rotor1    cells=24000000 [iters=20]
//   instance simpic  combustor stc=base-380m
//   instance thermal casing    cells=40000000 [iters=1]
//
//   coupler sliding rotor1 combustor [every=1]  [cells=100000]
//   coupler steady  combustor casing [every=20] [cells=500000]
//
// Instance names must be unique; couplers reference them. Coupler `cells`
// defaults to the paper's interface fractions of the smaller side
// (sliding: 0.42%, steady: 5%). SIMPIC `stc` values: base-28m, base-84m,
// base-380m, optimized.

#include <iosfwd>
#include <string>

#include "workflow/engine_case.hpp"

namespace cpx::workflow {

/// Parses a case description; throws CheckError with the offending line
/// number on malformed input.
EngineCase load_engine_case(std::istream& in);
EngineCase load_engine_case_file(const std::string& path);

/// Writes a case in the same format (round-trips through load).
void save_engine_case(std::ostream& out, const EngineCase& engine_case);

}  // namespace cpx::workflow
