#pragma once
// Test-case definitions for the coupled engine simulations.
//
// The full HPC-Combustor-HPT case (Fig 1 / Fig 9b) has 16 instances:
//   #1      MG-CFD   8M    (front compressor row)
//   #2-12   MG-CFD   24M   (compressor rows)
//   #13     MG-CFD   150M  (last compressor row, couples to combustor)
//   #14     SIMPIC   380M-equivalent combustor proxy
//   #15     MG-CFD   150M  (first turbine row)
//   #16     MG-CFD   300M  (turbine row)
// for an effective 1.25Bn cells. Adjacent density instances couple through
// sliding-plane CUs (interface 0.42% of the smaller mesh, exchanged every
// density step); the density<->pressure interfaces are steady-state (5% of
// the mesh, exchanged every 20 density steps); the pressure solver runs
// two steps per density step.
//
// The small validation case (Fig 8) is MG-CFD 150M + SIMPIC 28M-proxy +
// MG-CFD 150M on 5000 cores with a sliding CU between the MG-CFD units
// and steady CUs to SIMPIC.

#include <cstdint>
#include <string>
#include <vector>

#include "cpx/unit.hpp"
#include "simpic/stc.hpp"

namespace cpx::workflow {

enum class AppKind { kMgcfd, kSimpic, kThermal };

struct InstanceSpec {
  std::string name;
  AppKind kind = AppKind::kMgcfd;
  /// MG-CFD: mesh cells. SIMPIC: the represented pressure-solver mesh.
  std::int64_t mesh_cells = 0;
  /// SIMPIC only: the STC configuration used as the proxy.
  simpic::StcConfig stc;
  /// Solver iterations per density step (density instances iterate their
  /// multigrid solver several times per coupled step; SIMPIC runs
  /// pressure_steps_per_density_step steps with its own step weight).
  int iterations_per_density_step = 1;
};

struct CouplerSpec {
  std::string name;
  int instance_a = 0;  ///< indices into EngineCase::instances
  int instance_b = 0;
  coupler::InterfaceKind kind = coupler::InterfaceKind::kSlidingPlane;
  std::int64_t interface_cells = 0;
  /// Exchange every this many density steps.
  int exchange_every = 1;
  /// Tree-based donor search (the production coupler's optimisation [31]);
  /// false reproduces the HiPC'21 brute-force baseline.
  bool tree_search = true;
};

struct EngineCase {
  std::string name;
  std::vector<InstanceSpec> instances;
  std::vector<CouplerSpec> couplers;
  int pressure_steps_per_density_step = 2;
  /// STC steps represented by one coupled pressure step (SIMPIC step
  /// weight = stc.timesteps / this; see simpic::Instance).
  double coupled_pressure_steps_per_run = 2000.0;

  std::int64_t total_cells() const;
};

/// Fractions fixed by the paper (§II-A); the thermal value is our choice
/// for the casing extension (the casing touches the gas path over a thin
/// shell).
constexpr double kSlidingInterfaceFraction = 0.0042;
constexpr double kSteadyInterfaceFraction = 0.05;
constexpr double kThermalInterfaceFraction = 0.02;

/// The 1.25Bn-cell HPC-Combustor-HPT case of Fig 9. `optimized` selects
/// the Optimized-STC combustor proxy instead of Base-STC.
EngineCase hpc_combustor_hpt(bool optimized);

/// The 150M/28M small validation case of Fig 8.
EngineCase small_validation_case(bool optimized = false);

/// The multi-row compressor case of the HiPC'21 predecessor (rows 1-13 of
/// Fig 1, density solvers and sliding planes only) — used to compare the
/// tree-search coupler against the original brute-force one.
EngineCase compressor_case();

/// The §VI extension: hpc_combustor_hpt plus a thermal engine-casing
/// instance, coupled steadily to the combustor proxy and the first
/// turbine row (conjugate heat transfer is slow: exchanges every 50
/// density steps).
EngineCase hpc_combustor_hpt_with_casing(bool optimized,
                                         std::int64_t casing_cells =
                                             40'000'000);

}  // namespace cpx::workflow
