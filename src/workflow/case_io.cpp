#include "workflow/case_io.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <map>
#include <span>
#include <sstream>

#include "support/check.hpp"

namespace cpx::workflow {
namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream iss(line);
  std::string tok;
  while (iss >> tok) {
    if (tok[0] == '#') {
      break;
    }
    tokens.push_back(tok);
  }
  return tokens;
}

/// Splits "key=value" tokens into a map; plain tokens are rejected.
std::map<std::string, std::string> parse_kv(
    std::span<const std::string> tokens, int line_no) {
  std::map<std::string, std::string> kv;
  for (const std::string& tok : tokens) {
    const auto eq = tok.find('=');
    CPX_REQUIRE(eq != std::string::npos && eq > 0,
                "case file line " << line_no << ": expected key=value, got '"
                                  << tok << "'");
    kv[tok.substr(0, eq)] = tok.substr(eq + 1);
  }
  return kv;
}

std::int64_t to_int(const std::string& value, int line_no) {
  // Strict full-token parse. stoll() accepted any numeric prefix, so a
  // record truncated mid-field ("cells=24" cut from "cells=2400000") or a
  // malformed value ("2400x") silently parsed as a smaller case instead of
  // failing — from_chars must consume the whole token.
  std::int64_t out = 0;
  const char* begin = value.data();
  const char* end = begin + value.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  CPX_REQUIRE(ec == std::errc() && ptr == end && begin != end,
              "case file line " << line_no << ": expected an integer, got '"
                                << value << "'");
  return out;
}

simpic::StcConfig stc_by_name(const std::string& name, int line_no) {
  if (name == "base-28m") {
    return simpic::base_stc_28m();
  }
  if (name == "base-84m") {
    return simpic::base_stc_84m();
  }
  if (name == "base-380m") {
    return simpic::base_stc_380m();
  }
  if (name == "optimized") {
    return simpic::optimized_stc();
  }
  CPX_REQUIRE(false, "case file line "
                         << line_no << ": unknown stc '" << name
                         << "' (use base-28m|base-84m|base-380m|optimized)");
  return {};
}

}  // namespace

EngineCase load_engine_case(std::istream& in) {
  EngineCase ec;
  ec.name = "unnamed case";
  std::map<std::string, int> index_of;  // instance name -> index
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty()) {
      continue;
    }
    const std::string& directive = tokens[0];

    if (directive == "name") {
      CPX_REQUIRE(tokens.size() >= 2,
                  "case file line " << line_no << ": name needs a value");
      ec.name.clear();
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        ec.name += (i > 1 ? " " : "") + tokens[i];
      }
    } else if (directive == "pressure_steps_per_density_step") {
      CPX_REQUIRE(tokens.size() == 2,
                  "case file line " << line_no << ": expected one value");
      ec.pressure_steps_per_density_step =
          static_cast<int>(to_int(tokens[1], line_no));
    } else if (directive == "coupled_pressure_steps_per_run") {
      CPX_REQUIRE(tokens.size() == 2,
                  "case file line " << line_no << ": expected one value");
      ec.coupled_pressure_steps_per_run =
          static_cast<double>(to_int(tokens[1], line_no));
    } else if (directive == "instance") {
      CPX_REQUIRE(tokens.size() >= 3, "case file line "
                                          << line_no
                                          << ": instance <kind> <name> ...");
      const std::string& kind = tokens[1];
      InstanceSpec spec;
      spec.name = tokens[2];
      CPX_REQUIRE(index_of.count(spec.name) == 0,
                  "case file line " << line_no << ": duplicate instance '"
                                    << spec.name << "'");
      const auto kv =
          parse_kv(std::span(tokens).subspan(3), line_no);
      if (kind == "mgcfd" || kind == "thermal") {
        spec.kind = kind == "mgcfd" ? AppKind::kMgcfd : AppKind::kThermal;
        CPX_REQUIRE(kv.count("cells") == 1,
                    "case file line " << line_no << ": " << kind
                                      << " needs cells=<n>");
        spec.mesh_cells = to_int(kv.at("cells"), line_no);
        spec.iterations_per_density_step =
            kv.count("iters") != 0
                ? static_cast<int>(to_int(kv.at("iters"), line_no))
                : (kind == "mgcfd" ? 20 : 1);
      } else if (kind == "simpic") {
        spec.kind = AppKind::kSimpic;
        CPX_REQUIRE(kv.count("stc") == 1, "case file line "
                                              << line_no
                                              << ": simpic needs stc=<name>");
        spec.stc = stc_by_name(kv.at("stc"), line_no);
        spec.mesh_cells = spec.stc.proxy_mesh_cells;
        spec.iterations_per_density_step = 1;
      } else {
        CPX_REQUIRE(false, "case file line "
                               << line_no << ": unknown instance kind '"
                               << kind
                               << "' (mgcfd|simpic|thermal)");
      }
      index_of[spec.name] = static_cast<int>(ec.instances.size());
      ec.instances.push_back(std::move(spec));
    } else if (directive == "coupler") {
      CPX_REQUIRE(tokens.size() >= 4,
                  "case file line "
                      << line_no
                      << ": coupler <sliding|steady> <a> <b> ...");
      CouplerSpec cu;
      const std::string& kind = tokens[1];
      CPX_REQUIRE(kind == "sliding" || kind == "steady",
                  "case file line " << line_no << ": unknown coupler kind '"
                                    << kind << "'");
      cu.kind = kind == "sliding" ? coupler::InterfaceKind::kSlidingPlane
                                  : coupler::InterfaceKind::kSteadyState;
      for (int side = 0; side < 2; ++side) {
        const std::string& ref = tokens[static_cast<std::size_t>(2 + side)];
        CPX_REQUIRE(index_of.count(ref) == 1,
                    "case file line " << line_no << ": unknown instance '"
                                      << ref << "'");
        (side == 0 ? cu.instance_a : cu.instance_b) = index_of.at(ref);
      }
      const auto kv = parse_kv(std::span(tokens).subspan(4), line_no);
      cu.exchange_every =
          kv.count("every") != 0
              ? static_cast<int>(to_int(kv.at("every"), line_no))
              : (cu.kind == coupler::InterfaceKind::kSlidingPlane ? 1 : 20);
      if (kv.count("cells") != 0) {
        cu.interface_cells = to_int(kv.at("cells"), line_no);
      } else {
        const std::int64_t smaller = std::min(
            ec.instances[static_cast<std::size_t>(cu.instance_a)].mesh_cells,
            ec.instances[static_cast<std::size_t>(cu.instance_b)].mesh_cells);
        const double fraction =
            cu.kind == coupler::InterfaceKind::kSlidingPlane
                ? kSlidingInterfaceFraction
                : kSteadyInterfaceFraction;
        cu.interface_cells = std::max<std::int64_t>(
            1,
            static_cast<std::int64_t>(static_cast<double>(smaller) * fraction));
      }
      cu.name = "cu_" + tokens[2] + "_" + tokens[3];
      ec.couplers.push_back(std::move(cu));
    } else {
      CPX_REQUIRE(false, "case file line " << line_no
                                           << ": unknown directive '"
                                           << directive << "'");
    }
  }
  CPX_REQUIRE(!ec.instances.empty(), "case file: no instances defined");
  return ec;
}

EngineCase load_engine_case_file(const std::string& path) {
  std::ifstream in(path);
  CPX_REQUIRE(in.good(), "load_engine_case_file: cannot open " << path);
  return load_engine_case(in);
}

void save_engine_case(std::ostream& out, const EngineCase& ec) {
  out << "name " << ec.name << "\n"
      << "pressure_steps_per_density_step "
      << ec.pressure_steps_per_density_step << "\n"
      << "coupled_pressure_steps_per_run "
      << static_cast<long long>(ec.coupled_pressure_steps_per_run) << "\n\n";
  for (const InstanceSpec& spec : ec.instances) {
    switch (spec.kind) {
      case AppKind::kMgcfd:
        out << "instance mgcfd " << spec.name << " cells=" << spec.mesh_cells
            << " iters=" << spec.iterations_per_density_step << "\n";
        break;
      case AppKind::kThermal:
        out << "instance thermal " << spec.name
            << " cells=" << spec.mesh_cells
            << " iters=" << spec.iterations_per_density_step << "\n";
        break;
      case AppKind::kSimpic: {
        std::string stc;
        if (spec.stc.name == "Optimized-STC") {
          stc = "optimized";
        } else if (spec.stc.proxy_mesh_cells == 28'000'000) {
          stc = "base-28m";
        } else if (spec.stc.proxy_mesh_cells == 84'000'000) {
          stc = "base-84m";
        } else {
          stc = "base-380m";
        }
        out << "instance simpic " << spec.name << " stc=" << stc << "\n";
        break;
      }
    }
  }
  out << "\n";
  for (const CouplerSpec& cu : ec.couplers) {
    out << "coupler "
        << (cu.kind == coupler::InterfaceKind::kSlidingPlane ? "sliding"
                                                             : "steady")
        << " " << ec.instances[static_cast<std::size_t>(cu.instance_a)].name
        << " " << ec.instances[static_cast<std::size_t>(cu.instance_b)].name
        << " every=" << cu.exchange_every
        << " cells=" << cu.interface_cells << "\n";
  }
}

}  // namespace cpx::workflow
