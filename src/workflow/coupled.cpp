#include "workflow/coupled.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <numeric>
#include <string_view>

#include "mgcfd/instance.hpp"
#include "thermal/instance.hpp"
#include "simpic/instance.hpp"
#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"

namespace cpx::workflow {
namespace {

std::uint64_t fold_str(std::uint64_t h, std::string_view s) {
  for (const char c : s) {
    h = hash_mix(h, static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
  return hash_mix(h, s.size());
}

std::uint64_t fold_f64(std::uint64_t h, double v) {
  return hash_mix(h, std::bit_cast<std::uint64_t>(v));
}

}  // namespace

int RankAssignment::total() const {
  return std::accumulate(app_ranks.begin(), app_ranks.end(), 0) +
         std::accumulate(cu_ranks.begin(), cu_ranks.end(), 0);
}

CoupledSimulation::CoupledSimulation(const EngineCase& engine_case,
                                     const sim::MachineModel& machine,
                                     const RankAssignment& assignment)
    : case_(engine_case), machine_(machine), assignment_(assignment) {
  CPX_REQUIRE(assignment.app_ranks.size() == engine_case.instances.size(),
              "CoupledSimulation: app rank list size mismatch");
  CPX_REQUIRE(assignment.cu_ranks.size() == engine_case.couplers.size(),
              "CoupledSimulation: CU rank list size mismatch");

  cluster_ = std::make_unique<sim::Cluster>(machine, assignment.total());

  // Lay instances out in case order, coupler units after them.
  sim::Rank next = 0;
  for (std::size_t i = 0; i < case_.instances.size(); ++i) {
    const int p = assignment.app_ranks[i];
    CPX_REQUIRE(p >= 1, "CoupledSimulation: instance "
                            << case_.instances[i].name << " has no ranks");
    const sim::RankRange range{next, next + p};
    next += p;
    app_ranges_.push_back(range);
    apps_.push_back(make_app(case_.instances[i], range));
  }
  for (std::size_t i = 0; i < case_.couplers.size(); ++i) {
    const CouplerSpec& spec = case_.couplers[i];
    const int p = assignment.cu_ranks[i];
    CPX_REQUIRE(p >= 1, "CoupledSimulation: coupler " << spec.name
                                                      << " has no ranks");
    const sim::RankRange range{next, next + p};
    next += p;
    cu_ranges_.push_back(range);

    coupler::UnitConfig config;
    config.kind = spec.kind;
    config.interface_cells = spec.interface_cells;
    config.tree_search = spec.tree_search;
    cus_.push_back(std::make_unique<coupler::CouplerUnit>(
        spec.name, config, range,
        *apps_[static_cast<std::size_t>(spec.instance_a)],
        *apps_[static_cast<std::size_t>(spec.instance_b)]));
  }

  // Snapshot cadence from the environment (docs/checkpoint.md):
  // CPX_CKPT_EVERY=<n> writes CPX_CKPT_PATH (default "cpx.ckpt") every n
  // density steps. set_checkpoint_cadence() overrides programmatically.
  if (const char* every = std::getenv("CPX_CKPT_EVERY")) {
    const int n = std::atoi(every);
    if (n > 0) {
      const char* path = std::getenv("CPX_CKPT_PATH");
      set_checkpoint_cadence(n, path != nullptr ? path : "cpx.ckpt");
    }
  }
}

std::unique_ptr<sim::App> CoupledSimulation::make_app(
    const InstanceSpec& spec, sim::RankRange ranks) const {
  switch (spec.kind) {
    case AppKind::kMgcfd:
      return std::make_unique<mgcfd::Instance>(spec.name, spec.mesh_cells,
                                               ranks);
    case AppKind::kSimpic: {
      const double weight = static_cast<double>(spec.stc.timesteps) /
                            case_.coupled_pressure_steps_per_run;
      return std::make_unique<simpic::Instance>(
          spec.name, spec.stc, ranks, simpic::WorkModel{}, weight);
    }
    case AppKind::kThermal:
      return std::make_unique<thermal::Instance>(spec.name, spec.mesh_cells,
                                                 ranks);
  }
  CPX_CHECK_MSG(false, "make_app: unknown app kind");
}

void CoupledSimulation::set_overlap_enabled(bool enabled) {
  for (const std::unique_ptr<sim::App>& app : apps_) {
    app->set_overlap(enabled);
  }
  for (const std::unique_ptr<coupler::CouplerUnit>& cu : cus_) {
    cu->set_overlap(enabled);
  }
}

void CoupledSimulation::step_instance(int index) {
  const InstanceSpec& spec =
      case_.instances[static_cast<std::size_t>(index)];
  sim::App& app = *apps_[static_cast<std::size_t>(index)];
  if (spec.kind == AppKind::kSimpic) {
    for (int s = 0; s < case_.pressure_steps_per_density_step; ++s) {
      app.step(*cluster_);
    }
  } else {
    for (int it = 0; it < spec.iterations_per_density_step; ++it) {
      app.step(*cluster_);
    }
  }
}

void CoupledSimulation::run(int density_steps) {
  CPX_REQUIRE(density_steps >= 1, "run: bad step count");
  // The step counter advances per completed step (not in bulk at the end)
  // so a RankFailure thrown mid-schedule leaves it truthful and a cadence
  // snapshot taken mid-run records the right resume point.
  const int target = density_steps_run_ + density_steps;
  while (density_steps_run_ < target) {
    const int step_index = density_steps_run_;
    cluster_->begin_step(step_index);  // drives the fault-injection trigger
    // Density (and other non-pressure) instances advance first...
    {
      CPX_METRICS_SCOPE("workflow/density_phase");
      for (std::size_t i = 0; i < apps_.size(); ++i) {
        if (case_.instances[i].kind != AppKind::kSimpic) {
          step_instance(static_cast<int>(i));
        }
      }
    }
    // ...then the pressure proxy (two pressure steps per density step)...
    {
      CPX_METRICS_SCOPE("workflow/pressure_phase");
      for (std::size_t i = 0; i < apps_.size(); ++i) {
        if (case_.instances[i].kind == AppKind::kSimpic) {
          step_instance(static_cast<int>(i));
        }
      }
    }
    // ...then every coupler whose cadence fires this step.
    if (coupling_enabled_) {
      CPX_METRICS_SCOPE_COMM("workflow/exchange_phase");
      for (std::size_t i = 0; i < cus_.size(); ++i) {
        if (step_index % case_.couplers[i].exchange_every == 0) {
          cus_[i]->exchange(*cluster_);
          support::metrics::counter_add("workflow/exchanges", 1);
        }
      }
    }
    ++density_steps_run_;
    if (ckpt_every_ > 0 && density_steps_run_ % ckpt_every_ == 0) {
      checkpoint(ckpt_path_);
    }
  }
}

double CoupledSimulation::runtime() const { return cluster_->max_clock(); }

double CoupledSimulation::instance_runtime(int index) const {
  CPX_REQUIRE(index >= 0 &&
                  static_cast<std::size_t>(index) < app_ranges_.size(),
              "instance_runtime: bad index " << index);
  return cluster_->max_clock(app_ranges_[static_cast<std::size_t>(index)]);
}

std::size_t CoupledSimulation::instance_comm_bytes(int index) const {
  CPX_REQUIRE(index >= 0 &&
                  static_cast<std::size_t>(index) < app_ranges_.size(),
              "instance_comm_bytes: bad index " << index);
  return cluster_->comm_bytes(app_ranges_[static_cast<std::size_t>(index)]);
}

std::size_t CoupledSimulation::cu_comm_bytes(int index) const {
  CPX_REQUIRE(index >= 0 &&
                  static_cast<std::size_t>(index) < cu_ranges_.size(),
              "cu_comm_bytes: bad index " << index);
  return cluster_->comm_bytes(cu_ranges_[static_cast<std::size_t>(index)]);
}

double CoupledSimulation::standalone_runtime(int index,
                                             int density_steps) const {
  CPX_REQUIRE(index >= 0 &&
                  static_cast<std::size_t>(index) < case_.instances.size(),
              "standalone_runtime: bad index " << index);
  const InstanceSpec& spec =
      case_.instances[static_cast<std::size_t>(index)];
  const int p = assignment_.app_ranks[static_cast<std::size_t>(index)];
  sim::Cluster cluster(machine_, p);
  const auto app = make_app(spec, {0, p});
  const int steps_per_density =
      spec.kind == AppKind::kSimpic ? case_.pressure_steps_per_density_step
                                    : spec.iterations_per_density_step;
  for (int d = 0; d < density_steps; ++d) {
    for (int s = 0; s < steps_per_density; ++s) {
      app->step(cluster);
    }
  }
  return cluster.max_clock();
}

sim::App& CoupledSimulation::app(int index) {
  CPX_REQUIRE(index >= 0 && static_cast<std::size_t>(index) < apps_.size(),
              "app: bad index " << index);
  return *apps_[static_cast<std::size_t>(index)];
}

std::uint64_t CoupledSimulation::case_digest() const {
  std::uint64_t h = 0x6370'78636b7074ULL;
  h = fold_str(h, case_.name);
  h = hash_mix(h, case_.instances.size(), case_.couplers.size());
  for (const InstanceSpec& spec : case_.instances) {
    h = fold_str(h, spec.name);
    h = hash_mix(h, static_cast<std::uint64_t>(spec.kind),
                 static_cast<std::uint64_t>(spec.mesh_cells));
    h = hash_mix(h, static_cast<std::uint64_t>(
                        spec.iterations_per_density_step));
    h = fold_str(h, spec.stc.name);
    h = hash_mix(h, static_cast<std::uint64_t>(spec.stc.cells),
                 static_cast<std::uint64_t>(spec.stc.timesteps));
    h = fold_f64(h, spec.stc.particles_per_cell);
  }
  for (const CouplerSpec& spec : case_.couplers) {
    h = fold_str(h, spec.name);
    h = hash_mix(h, static_cast<std::uint64_t>(spec.instance_a),
                 static_cast<std::uint64_t>(spec.instance_b));
    h = hash_mix(h, static_cast<std::uint64_t>(spec.kind),
                 static_cast<std::uint64_t>(spec.interface_cells));
    h = hash_mix(h, static_cast<std::uint64_t>(spec.exchange_every),
                 spec.tree_search ? 1 : 0);
  }
  h = hash_mix(h,
               static_cast<std::uint64_t>(
                   case_.pressure_steps_per_density_step));
  h = fold_f64(h, case_.coupled_pressure_steps_per_run);
  for (const int p : assignment_.app_ranks) {
    h = hash_mix(h, static_cast<std::uint64_t>(p), 1);
  }
  for (const int p : assignment_.cu_ranks) {
    h = hash_mix(h, static_cast<std::uint64_t>(p), 2);
  }
  return h;
}

void CoupledSimulation::set_checkpoint_cadence(int every, std::string path) {
  CPX_REQUIRE(every >= 0, "set_checkpoint_cadence: bad cadence " << every);
  CPX_REQUIRE(every == 0 || !path.empty(),
              "set_checkpoint_cadence: empty path");
  ckpt_every_ = every;
  ckpt_path_ = std::move(path);
}

void CoupledSimulation::serialize(ckpt::Writer& w) const {
  w.begin_section("workflow/coupled");
  w.put_u64(case_digest());
  w.put_u32(static_cast<std::uint32_t>(density_steps_run_));
  w.put_u8(coupling_enabled_ ? 1 : 0);
  w.end_section();
  cluster_->serialize(w);
  for (const std::unique_ptr<coupler::CouplerUnit>& cu : cus_) {
    cu->serialize(w);
  }
  // Host metrics counters, so a resumed run's cumulative counters match an
  // uninterrupted one. Regions (wall-clock timings) are not carried over:
  // they measure the host, not the simulated state.
  w.begin_section("support/metrics");
  if (support::metrics::enabled()) {
    const support::metrics::Snapshot snap = support::metrics::snapshot();
    w.put_u32(static_cast<std::uint32_t>(snap.counters.size()));
    for (const support::metrics::CounterSnapshot& c : snap.counters) {
      w.put_str(c.name);
      w.put_i64(c.value);
    }
  } else {
    w.put_u32(0);
  }
  w.end_section();
}

void CoupledSimulation::restore(ckpt::Reader& r) {
  r.open_section("workflow/coupled");
  const std::uint64_t digest = r.get_u64();
  CPX_CHECK_MSG(digest == case_digest(),
                "CoupledSimulation::restore: snapshot was taken from a "
                "different case or rank assignment");
  density_steps_run_ = static_cast<int>(r.get_u32());
  coupling_enabled_ = r.get_u8() != 0;
  r.end_section();
  cluster_->restore(r);
  for (const std::unique_ptr<coupler::CouplerUnit>& cu : cus_) {
    cu->restore(r);
  }
  r.open_section("support/metrics");
  const std::uint32_t counters = r.get_u32();
  if (support::metrics::enabled()) {
    support::metrics::reset();
    for (std::uint32_t i = 0; i < counters; ++i) {
      const std::string name = r.get_str();
      support::metrics::counter_add(name, r.get_i64());
    }
  } else {
    for (std::uint32_t i = 0; i < counters; ++i) {
      (void)r.get_str();
      (void)r.get_i64();
    }
  }
  r.end_section();
}

std::span<const std::byte> CoupledSimulation::checkpoint_bytes() {
  writer_.begin();
  serialize(writer_);
  writer_.finish();
  return writer_.bytes();
}

void CoupledSimulation::checkpoint(const std::string& path) {
  checkpoint_bytes();
  writer_.write_file(path);
}

void CoupledSimulation::restore(std::span<const std::byte> bytes) {
  ckpt::Reader r(bytes);
  restore(r);
}

void CoupledSimulation::restore(const std::string& path) {
  std::vector<std::byte> bytes;
  ckpt::read_file(path, bytes);
  restore(std::span<const std::byte>(bytes));
}

}  // namespace cpx::workflow
