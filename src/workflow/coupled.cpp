#include "workflow/coupled.hpp"

#include <algorithm>
#include <numeric>

#include "mgcfd/instance.hpp"
#include "thermal/instance.hpp"
#include "simpic/instance.hpp"
#include "support/check.hpp"
#include "support/metrics.hpp"

namespace cpx::workflow {

int RankAssignment::total() const {
  return std::accumulate(app_ranks.begin(), app_ranks.end(), 0) +
         std::accumulate(cu_ranks.begin(), cu_ranks.end(), 0);
}

CoupledSimulation::CoupledSimulation(const EngineCase& engine_case,
                                     const sim::MachineModel& machine,
                                     const RankAssignment& assignment)
    : case_(engine_case), machine_(machine), assignment_(assignment) {
  CPX_REQUIRE(assignment.app_ranks.size() == engine_case.instances.size(),
              "CoupledSimulation: app rank list size mismatch");
  CPX_REQUIRE(assignment.cu_ranks.size() == engine_case.couplers.size(),
              "CoupledSimulation: CU rank list size mismatch");

  cluster_ = std::make_unique<sim::Cluster>(machine, assignment.total());

  // Lay instances out in case order, coupler units after them.
  sim::Rank next = 0;
  for (std::size_t i = 0; i < case_.instances.size(); ++i) {
    const int p = assignment.app_ranks[i];
    CPX_REQUIRE(p >= 1, "CoupledSimulation: instance "
                            << case_.instances[i].name << " has no ranks");
    const sim::RankRange range{next, next + p};
    next += p;
    app_ranges_.push_back(range);
    apps_.push_back(make_app(case_.instances[i], range));
  }
  for (std::size_t i = 0; i < case_.couplers.size(); ++i) {
    const CouplerSpec& spec = case_.couplers[i];
    const int p = assignment.cu_ranks[i];
    CPX_REQUIRE(p >= 1, "CoupledSimulation: coupler " << spec.name
                                                      << " has no ranks");
    const sim::RankRange range{next, next + p};
    next += p;
    cu_ranges_.push_back(range);

    coupler::UnitConfig config;
    config.kind = spec.kind;
    config.interface_cells = spec.interface_cells;
    config.tree_search = spec.tree_search;
    cus_.push_back(std::make_unique<coupler::CouplerUnit>(
        spec.name, config, range,
        *apps_[static_cast<std::size_t>(spec.instance_a)],
        *apps_[static_cast<std::size_t>(spec.instance_b)]));
  }
}

std::unique_ptr<sim::App> CoupledSimulation::make_app(
    const InstanceSpec& spec, sim::RankRange ranks) const {
  switch (spec.kind) {
    case AppKind::kMgcfd:
      return std::make_unique<mgcfd::Instance>(spec.name, spec.mesh_cells,
                                               ranks);
    case AppKind::kSimpic: {
      const double weight = static_cast<double>(spec.stc.timesteps) /
                            case_.coupled_pressure_steps_per_run;
      return std::make_unique<simpic::Instance>(
          spec.name, spec.stc, ranks, simpic::WorkModel{}, weight);
    }
    case AppKind::kThermal:
      return std::make_unique<thermal::Instance>(spec.name, spec.mesh_cells,
                                                 ranks);
  }
  CPX_CHECK_MSG(false, "make_app: unknown app kind");
}

void CoupledSimulation::set_overlap_enabled(bool enabled) {
  for (const std::unique_ptr<sim::App>& app : apps_) {
    app->set_overlap(enabled);
  }
  for (const std::unique_ptr<coupler::CouplerUnit>& cu : cus_) {
    cu->set_overlap(enabled);
  }
}

void CoupledSimulation::step_instance(int index) {
  const InstanceSpec& spec =
      case_.instances[static_cast<std::size_t>(index)];
  sim::App& app = *apps_[static_cast<std::size_t>(index)];
  if (spec.kind == AppKind::kSimpic) {
    for (int s = 0; s < case_.pressure_steps_per_density_step; ++s) {
      app.step(*cluster_);
    }
  } else {
    for (int it = 0; it < spec.iterations_per_density_step; ++it) {
      app.step(*cluster_);
    }
  }
}

void CoupledSimulation::run(int density_steps) {
  CPX_REQUIRE(density_steps >= 1, "run: bad step count");
  for (int d = 0; d < density_steps; ++d) {
    const int step_index = density_steps_run_ + d;
    // Density (and other non-pressure) instances advance first...
    {
      CPX_METRICS_SCOPE("workflow/density_phase");
      for (std::size_t i = 0; i < apps_.size(); ++i) {
        if (case_.instances[i].kind != AppKind::kSimpic) {
          step_instance(static_cast<int>(i));
        }
      }
    }
    // ...then the pressure proxy (two pressure steps per density step)...
    {
      CPX_METRICS_SCOPE("workflow/pressure_phase");
      for (std::size_t i = 0; i < apps_.size(); ++i) {
        if (case_.instances[i].kind == AppKind::kSimpic) {
          step_instance(static_cast<int>(i));
        }
      }
    }
    // ...then every coupler whose cadence fires this step.
    if (coupling_enabled_) {
      CPX_METRICS_SCOPE_COMM("workflow/exchange_phase");
      for (std::size_t i = 0; i < cus_.size(); ++i) {
        if (step_index % case_.couplers[i].exchange_every == 0) {
          cus_[i]->exchange(*cluster_);
          support::metrics::counter_add("workflow/exchanges", 1);
        }
      }
    }
  }
  density_steps_run_ += density_steps;
}

double CoupledSimulation::runtime() const { return cluster_->max_clock(); }

double CoupledSimulation::instance_runtime(int index) const {
  CPX_REQUIRE(index >= 0 &&
                  static_cast<std::size_t>(index) < app_ranges_.size(),
              "instance_runtime: bad index " << index);
  return cluster_->max_clock(app_ranges_[static_cast<std::size_t>(index)]);
}

std::size_t CoupledSimulation::instance_comm_bytes(int index) const {
  CPX_REQUIRE(index >= 0 &&
                  static_cast<std::size_t>(index) < app_ranges_.size(),
              "instance_comm_bytes: bad index " << index);
  return cluster_->comm_bytes(app_ranges_[static_cast<std::size_t>(index)]);
}

std::size_t CoupledSimulation::cu_comm_bytes(int index) const {
  CPX_REQUIRE(index >= 0 &&
                  static_cast<std::size_t>(index) < cu_ranges_.size(),
              "cu_comm_bytes: bad index " << index);
  return cluster_->comm_bytes(cu_ranges_[static_cast<std::size_t>(index)]);
}

double CoupledSimulation::standalone_runtime(int index,
                                             int density_steps) const {
  CPX_REQUIRE(index >= 0 &&
                  static_cast<std::size_t>(index) < case_.instances.size(),
              "standalone_runtime: bad index " << index);
  const InstanceSpec& spec =
      case_.instances[static_cast<std::size_t>(index)];
  const int p = assignment_.app_ranks[static_cast<std::size_t>(index)];
  sim::Cluster cluster(machine_, p);
  const auto app = make_app(spec, {0, p});
  const int steps_per_density =
      spec.kind == AppKind::kSimpic ? case_.pressure_steps_per_density_step
                                    : spec.iterations_per_density_step;
  for (int d = 0; d < density_steps; ++d) {
    for (int s = 0; s < steps_per_density; ++s) {
      app->step(cluster);
    }
  }
  return cluster.max_clock();
}

sim::App& CoupledSimulation::app(int index) {
  CPX_REQUIRE(index >= 0 && static_cast<std::size_t>(index) < apps_.size(),
              "app: bad index " << index);
  return *apps_[static_cast<std::size_t>(index)];
}

}  // namespace cpx::workflow
