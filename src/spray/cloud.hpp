#pragma once
// Lagrangian fuel-spray cloud and load-balancing strategies (§IV-A).
//
// The production pressure solver handles fuel droplets with spatial
// partitioning: each MPI rank owns the particles inside its mesh
// partition. Spray is injected at nozzles, so particles concentrate in a
// small region of the domain — the hot ranks own orders of magnitude more
// particles than the mean, and the spray phase becomes the worst-scaling
// component of the solver (Fig 5b: below 50% parallel efficiency at just
// 256 cores).
//
// This module implements the actual particle bookkeeping at test scale:
// injection with an exponential axial profile, advection, migration
// between partitions, and three redistribution strategies:
//   * kSpatial   — particles stay with their spatial partition (baseline),
//   * kBalanced  — particles shared evenly across ranks regardless of
//                  location (collective redistribution each step),
//   * kAsyncTask — dedicated spray ranks working from a queue (the
//                  asynchronous task-based approach of Thari et al. [24],
//                  adopted as the spray optimisation in §IV-C).

#include <cstdint>
#include <vector>

#include "support/aligned.hpp"
#include "support/rng.hpp"

namespace cpx::ckpt {
class Writer;
class Reader;
}  // namespace cpx::ckpt

namespace cpx::spray {

enum class Strategy { kSpatial, kBalanced, kAsyncTask };

struct CloudOptions {
  std::int64_t num_particles = 10'000;
  int num_ranks = 8;
  /// e-folding length of the injector density profile, as a fraction of
  /// the domain length (spray concentrates in ~this fraction).
  double injector_length = 0.08;
  /// Axial advection per step, as a fraction of the domain length.
  double drift_per_step = 0.005;
  /// Droplet evaporation probability per step (particles leave the system).
  double evaporation_rate = 0.002;
  std::uint64_t seed = 99;
};

/// Per-rank particle-count statistics.
struct LoadStats {
  std::int64_t total = 0;
  std::int64_t max_rank = 0;
  double mean = 0.0;
  /// max / mean — 1.0 is perfect balance.
  double imbalance = 0.0;
};

class Cloud {
 public:
  explicit Cloud(const CloudOptions& options);

  std::int64_t num_particles() const {
    return static_cast<std::int64_t>(x_.size());
  }
  const support::aligned_vector<double>& positions() const { return x_; }

  /// Rank owning axial position x under uniform spatial blocks.
  int rank_of(double x) const;

  /// Particles per rank under spatial ownership.
  std::vector<std::int64_t> spatial_counts() const;

  /// Particles per rank under the given strategy. kBalanced spreads the
  /// total evenly; kAsyncTask assigns work to `spray_ranks` dedicated
  /// workers (the remaining ranks run the flow solver concurrently).
  std::vector<std::int64_t> counts(Strategy strategy,
                                   int spray_ranks = 0) const;

  LoadStats load_stats(Strategy strategy, int spray_ranks = 0) const;

  /// One transport step: advect downstream, evaporate, re-inject to keep
  /// the population statistically steady.
  void step();

  /// Number of particles that changed spatial owner in the last step (the
  /// migration traffic of the spatial strategy).
  std::int64_t last_migrations() const { return last_migrations_; }

  /// The persisted RNG stream position (checkpointed; a resumed cloud
  /// continues the stream instead of replaying it).
  std::uint64_t rng_counter() const { return rng_.counter(); }

  /// Snapshot section "spray/cloud" (docs/checkpoint.md): particle
  /// positions, the counter-based RNG stream position, and the migration
  /// counter. Restore validates the section against this cloud's options
  /// and throws CheckError on mismatch or corruption.
  void serialize(ckpt::Writer& w) const;
  void restore(ckpt::Reader& r);

 private:
  void inject(std::int64_t count);

  CloudOptions options_;
  CounterRng rng_;
  support::aligned_vector<double> x_;  ///< axial positions in [0, 1)
  std::int64_t last_migrations_ = 0;
};

/// Analytic hot-rank particle fraction for an exponential injector profile
/// cut into `num_ranks` equal axial blocks: the share of all particles in
/// the hottest block. Drives the spray component of the pressure-solver
/// surrogate at scales where a real cloud cannot be instantiated.
double hot_block_fraction(double injector_length, int num_ranks);

}  // namespace cpx::spray
