#include "spray/cloud.hpp"

#include <algorithm>
#include <cmath>

#include "ckpt/snapshot.hpp"
#include "support/check.hpp"

namespace cpx::spray {

Cloud::Cloud(const CloudOptions& options)
    : options_(options), rng_(options.seed) {
  CPX_REQUIRE(options.num_particles >= 0, "Cloud: bad particle count");
  CPX_REQUIRE(options.num_ranks >= 1, "Cloud: bad rank count");
  CPX_REQUIRE(options.injector_length > 0.0 && options.injector_length <= 1.0,
              "Cloud: bad injector_length");
  x_.reserve(static_cast<std::size_t>(options.num_particles));
  inject(options.num_particles);
}

void Cloud::inject(std::int64_t count) {
  // Exponential axial profile truncated to [0, 1): inverse-CDF sampling.
  const double lambda = options_.injector_length;
  const double norm = 1.0 - std::exp(-1.0 / lambda);
  for (std::int64_t i = 0; i < count; ++i) {
    const double u = rng_.uniform();
    const double x = -lambda * std::log(1.0 - u * norm);
    x_.push_back(std::min(x, std::nextafter(1.0, 0.0)));
  }
}

int Cloud::rank_of(double x) const {
  const int r = static_cast<int>(x * options_.num_ranks);
  return std::clamp(r, 0, options_.num_ranks - 1);
}

std::vector<std::int64_t> Cloud::spatial_counts() const {
  std::vector<std::int64_t> counts(
      static_cast<std::size_t>(options_.num_ranks), 0);
  for (double x : x_) {
    ++counts[static_cast<std::size_t>(rank_of(x))];
  }
  return counts;
}

std::vector<std::int64_t> Cloud::counts(Strategy strategy,
                                        int spray_ranks) const {
  switch (strategy) {
    case Strategy::kSpatial:
      return spatial_counts();
    case Strategy::kBalanced: {
      const std::int64_t n = num_particles();
      const std::int64_t p = options_.num_ranks;
      std::vector<std::int64_t> counts(static_cast<std::size_t>(p), n / p);
      for (std::int64_t i = 0; i < n % p; ++i) {
        ++counts[static_cast<std::size_t>(i)];
      }
      return counts;
    }
    case Strategy::kAsyncTask: {
      CPX_REQUIRE(spray_ranks >= 1 && spray_ranks <= options_.num_ranks,
                  "counts: bad spray_ranks " << spray_ranks);
      // Dedicated spray workers pull from a shared queue: balanced across
      // the spray communicator, zero on the solver ranks.
      std::vector<std::int64_t> counts(
          static_cast<std::size_t>(options_.num_ranks), 0);
      const std::int64_t n = num_particles();
      for (int r = 0; r < spray_ranks; ++r) {
        counts[static_cast<std::size_t>(r)] =
            n / spray_ranks + (r < n % spray_ranks ? 1 : 0);
      }
      return counts;
    }
  }
  CPX_CHECK_MSG(false, "counts: unknown strategy");
}

LoadStats Cloud::load_stats(Strategy strategy, int spray_ranks) const {
  const auto counts = this->counts(strategy, spray_ranks);
  LoadStats s;
  for (std::int64_t c : counts) {
    s.total += c;
    s.max_rank = std::max(s.max_rank, c);
  }
  // For the async strategy the effective worker pool is spray_ranks.
  const int workers = strategy == Strategy::kAsyncTask
                          ? spray_ranks
                          : options_.num_ranks;
  s.mean = static_cast<double>(s.total) / workers;
  s.imbalance = s.mean > 0.0 ? static_cast<double>(s.max_rank) / s.mean : 1.0;
  return s;
}

void Cloud::step() {
  const auto old_counts = spatial_counts();
  std::size_t alive = 0;
  std::int64_t evaporated = 0;
  for (std::size_t i = 0; i < x_.size(); ++i) {
    if (rng_.uniform() < options_.evaporation_rate) {
      ++evaporated;
      continue;
    }
    double x = x_[i] + options_.drift_per_step * (0.5 + rng_.uniform());
    if (x >= 1.0) {
      ++evaporated;  // left the domain downstream
      continue;
    }
    x_[alive++] = x;
  }
  x_.resize(alive);
  inject(evaporated);  // steady injection replaces losses

  const auto new_counts = spatial_counts();
  last_migrations_ = 0;
  for (std::size_t r = 0; r < new_counts.size(); ++r) {
    last_migrations_ += std::abs(new_counts[r] - old_counts[r]);
  }
  last_migrations_ /= 2;
}

void Cloud::serialize(ckpt::Writer& w) const {
  w.begin_section("spray/cloud");
  w.put_u64(options_.seed);
  w.put_i64(options_.num_particles);
  w.put_i64(options_.num_ranks);
  w.put_u64(rng_.counter());
  w.put_i64(last_migrations_);
  w.put_f64_span(x_);
  w.end_section();
}

void Cloud::restore(ckpt::Reader& r) {
  r.open_section("spray/cloud");
  const std::uint64_t seed = r.get_u64();
  const std::int64_t num_particles = r.get_i64();
  const std::int64_t num_ranks = r.get_i64();
  CPX_CHECK_MSG(seed == options_.seed &&
                    num_particles == options_.num_particles &&
                    num_ranks == options_.num_ranks,
                "Cloud::restore: snapshot was taken with different options");
  rng_.restore_state(seed, r.get_u64());
  last_migrations_ = r.get_i64();
  r.get_f64_vec(x_);
  r.end_section();
}

double hot_block_fraction(double injector_length, int num_ranks) {
  CPX_REQUIRE(injector_length > 0.0 && injector_length <= 1.0,
              "hot_block_fraction: bad injector_length");
  CPX_REQUIRE(num_ranks >= 1, "hot_block_fraction: bad rank count");
  // Fraction of the truncated-exponential mass in the first of num_ranks
  // equal blocks.
  const double lambda = injector_length;
  const double norm = 1.0 - std::exp(-1.0 / lambda);
  const double block = 1.0 / static_cast<double>(num_ranks);
  return (1.0 - std::exp(-block / lambda)) / norm;
}

}  // namespace cpx::spray
