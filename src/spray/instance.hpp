#pragma once
// Standalone spray performance instance: the §IV-A load-balancing
// strategies as virtual-cluster workloads, so the strategies can be
// compared in *time* (not just particle counts) at production rank counts.
//
// Per step, by strategy:
//   kSpatial   — particle work on the hot ranks (injector imbalance from
//                the analytic hot-block model), neighbour migration
//                messages, and the per-step gather of spray source terms
//                that serialises on the hot rank;
//   kBalanced  — flat particle work, but an all-to-all redistribution
//                every step (the "collective operations which can
//                significantly degrade performance at high core counts");
//   kAsyncTask — a dedicated spray communicator (a fraction of the ranks)
//                working a balanced queue, one-sided hand-off to the
//                solver ranks; effectively the perfectly-scaling spray of
//                §IV-C.

#include <cstdint>
#include <string>

#include "comm/communicator.hpp"
#include "sim/app.hpp"
#include "spray/cloud.hpp"

namespace cpx::spray {

struct InstanceConfig {
  std::int64_t num_particles = 7'000'000;
  double injector_length = 0.08;
  Strategy strategy = Strategy::kSpatial;
  /// kAsyncTask: fraction of the ranks dedicated to spray work.
  double spray_rank_fraction = 0.25;
  double flops_per_particle = 80.0;
  double bytes_per_particle = 96.0;
  double migration_fraction = 0.02;  ///< of local particles, per step
  std::size_t bytes_per_migrated_particle = 6 * sizeof(double);
};

class Instance final : public sim::App {
 public:
  Instance(std::string name, const InstanceConfig& config,
           sim::RankRange ranks);

  const std::string& name() const override { return name_; }
  sim::RankRange ranks() const override { return ranks_; }
  void step(sim::Cluster& cluster) override;

  const InstanceConfig& config() const { return config_; }

  /// Traffic this instance posted to its world communicator (migration,
  /// hand-off, and collective bytes — docs/communication.md).
  const comm::CommStats& comm_stats() const { return world_.stats(); }
  /// kAsyncTask: the dedicated spray subgroup carved by split_fraction
  /// (null for the other strategies). Its size is the worker count.
  const comm::Communicator& spray_communicator() const { return spray_comm_; }

 private:
  std::string name_;
  InstanceConfig config_;
  sim::RankRange ranks_;
  comm::Communicator world_;
  comm::Communicator spray_comm_;  ///< kAsyncTask subgroup 0 of world_
  std::vector<sim::Message> message_scratch_;
};

}  // namespace cpx::spray
