#include "spray/instance.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace cpx::spray {

Instance::Instance(std::string name, const InstanceConfig& config,
                   sim::RankRange ranks)
    : name_(std::move(name)), config_(config), ranks_(ranks) {
  CPX_REQUIRE(ranks.size() >= 1, "Instance: empty rank range");
  CPX_REQUIRE(config.num_particles >= 1, "Instance: no particles");
  CPX_REQUIRE(config.spray_rank_fraction > 0.0 &&
                  config.spray_rank_fraction <= 1.0,
              "Instance: bad spray_rank_fraction");
}

void Instance::step(sim::Cluster& cluster) {
  const sim::RegionId region_push = cluster.region(name_ + "/push");
  const sim::RegionId region_comm = cluster.region(name_ + "/comm");
  const int p = ranks_.size();
  const double total = static_cast<double>(config_.num_particles);
  const double mean = total / p;

  switch (config_.strategy) {
    case Strategy::kSpatial: {
      // Hot ranks carry the injector share; everyone else a uniform tail.
      const double hot = std::max(
          hot_block_fraction(config_.injector_length, p), 1.0 / p);
      for (int l = 0; l < p; ++l) {
        const double particles = l == 0 ? hot * total : mean * 0.5;
        sim::Work w;
        w.flops = particles * config_.flops_per_particle;
        w.bytes = particles * config_.bytes_per_particle;
        cluster.compute(ranks_.begin + l, w, region_push);
      }
      // Neighbour migration + the source-term gather that serialises on
      // the hot rank (all ranks contribute to the injector region's gas
      // coupling terms).
      message_scratch_.clear();
      const auto mig_bytes = static_cast<std::size_t>(
          config_.migration_fraction * mean *
          static_cast<double>(config_.bytes_per_migrated_particle));
      for (int l = 0; l + 1 < p; ++l) {
        message_scratch_.push_back(
            {ranks_.begin + l, ranks_.begin + l + 1, mig_bytes});
        message_scratch_.push_back(
            {ranks_.begin + l + 1, ranks_.begin + l, mig_bytes});
      }
      cluster.exchange(message_scratch_, region_comm);
      cluster.gather(ranks_, ranks_.begin, 2 * sizeof(double) * 8,
                     region_comm);
      break;
    }
    case Strategy::kBalanced: {
      for (int l = 0; l < p; ++l) {
        sim::Work w;
        w.flops = mean * config_.flops_per_particle;
        w.bytes = mean * config_.bytes_per_particle;
        cluster.compute(ranks_.begin + l, w, region_push);
      }
      // Redistribution back to spatial owners every step: the particles a
      // rank holds are unrelated to its mesh partition, so the gas-field
      // data / updated particles cross in a personalised all-to-all.
      const auto pair_bytes = static_cast<std::size_t>(
          std::max(1.0, mean / p *
                            static_cast<double>(
                                config_.bytes_per_migrated_particle)));
      cluster.alltoall(ranks_, pair_bytes, region_comm);
      break;
    }
    case Strategy::kAsyncTask: {
      // Dedicated spray ranks drain a balanced queue; the solver ranks'
      // only involvement is the one-sided hand-off (tiny).
      const int workers = std::max(
          1, static_cast<int>(p * config_.spray_rank_fraction));
      const double per_worker = total / workers;
      for (int l = 0; l < workers; ++l) {
        sim::Work w;
        w.flops = per_worker * config_.flops_per_particle;
        w.bytes = per_worker * config_.bytes_per_particle;
        cluster.compute(ranks_.begin + l, w, region_push);
      }
      message_scratch_.clear();
      for (int l = 0; l < workers; ++l) {
        // One-sided exposure epoch with a solver-side partner.
        const sim::Rank partner =
            ranks_.begin + workers + (l % std::max(1, p - workers));
        if (partner < ranks_.end) {
          message_scratch_.push_back(
              {ranks_.begin + l, partner, 4 * sizeof(double)});
        }
      }
      if (!message_scratch_.empty()) {
        cluster.exchange(message_scratch_, region_comm);
      }
      break;
    }
  }
}

}  // namespace cpx::spray
