#include "spray/instance.hpp"

#include <algorithm>
#include <cmath>

#include "sim/comm_bridge.hpp"
#include "support/check.hpp"

namespace cpx::spray {

Instance::Instance(std::string name, const InstanceConfig& config,
                   sim::RankRange ranks)
    : name_(std::move(name)), config_(config), ranks_(ranks) {
  CPX_REQUIRE(ranks.size() >= 1, "Instance: empty rank range");
  CPX_REQUIRE(config.num_particles >= 1, "Instance: no particles");
  CPX_REQUIRE(config.spray_rank_fraction > 0.0 &&
                  config.spray_rank_fraction <= 1.0,
              "Instance: bad spray_rank_fraction");
  world_ = comm::Communicator::world(ranks.size(), name_ + "/world");
  if (config_.strategy == Strategy::kAsyncTask) {
    // Real subgroup carve-out: the leading fraction of ranks form the
    // dedicated spray communicator. split() asserts every rank lands in
    // exactly one subgroup.
    auto groups = world_.split_fraction(config_.spray_rank_fraction);
    spray_comm_ = groups.front();
  }
}

void Instance::step(sim::Cluster& cluster) {
  const sim::RegionId region_push = cluster.region(name_ + "/push");
  const sim::RegionId region_comm = cluster.region(name_ + "/comm");
  const int p = ranks_.size();
  const double total = static_cast<double>(config_.num_particles);
  const double mean = total / p;

  switch (config_.strategy) {
    case Strategy::kSpatial: {
      // Hot ranks carry the injector share; everyone else a uniform tail.
      const double hot = std::max(
          hot_block_fraction(config_.injector_length, p), 1.0 / p);
      for (int l = 0; l < p; ++l) {
        const double particles = l == 0 ? hot * total : mean * 0.5;
        sim::Work w;
        w.flops = particles * config_.flops_per_particle;
        w.bytes = particles * config_.bytes_per_particle;
        cluster.compute(ranks_.begin + l, w, region_push);
      }
      // Neighbour migration + the source-term gather that serialises on
      // the hot rank (all ranks contribute to the injector region's gas
      // coupling terms). The data plane is virtual: messages are posted
      // to the communicator (shared byte accounting) and the recorded
      // transfers charged to the cluster.
      const auto mig_bytes = static_cast<std::size_t>(
          config_.migration_fraction * mean *
          static_cast<double>(config_.bytes_per_migrated_particle));
      for (int l = 0; l + 1 < p; ++l) {
        world_.post(l, l + 1, mig_bytes);
        world_.post(l + 1, l, mig_bytes);
      }
      sim::flush_exchange(world_, cluster, region_comm, ranks_.begin,
                          message_scratch_);
      const std::size_t gather_bytes = 2 * sizeof(double) * 8;
      world_.post_collective(static_cast<std::size_t>(p - 1) * gather_bytes,
                             p - 1);
      cluster.gather(ranks_, ranks_.begin, gather_bytes, region_comm);
      break;
    }
    case Strategy::kBalanced: {
      for (int l = 0; l < p; ++l) {
        sim::Work w;
        w.flops = mean * config_.flops_per_particle;
        w.bytes = mean * config_.bytes_per_particle;
        cluster.compute(ranks_.begin + l, w, region_push);
      }
      // Redistribution back to spatial owners every step: the particles a
      // rank holds are unrelated to its mesh partition, so the gas-field
      // data / updated particles cross in a personalised all-to-all.
      const auto pair_bytes = static_cast<std::size_t>(
          std::max(1.0, mean / p *
                            static_cast<double>(
                                config_.bytes_per_migrated_particle)));
      world_.post_collective(
          static_cast<std::size_t>(p) * static_cast<std::size_t>(p - 1) *
              pair_bytes,
          static_cast<std::int64_t>(p) * (p - 1));
      cluster.alltoall(ranks_, pair_bytes, region_comm);
      break;
    }
    case Strategy::kAsyncTask: {
      // Dedicated spray ranks drain a balanced queue; the solver ranks'
      // only involvement is the one-sided hand-off (tiny). The worker set
      // is the split_fraction subgroup carved in the constructor.
      const int workers = spray_comm_.size();
      const double per_worker = total / workers;
      for (int l = 0; l < workers; ++l) {
        sim::Work w;
        w.flops = per_worker * config_.flops_per_particle;
        w.bytes = per_worker * config_.bytes_per_particle;
        cluster.compute(ranks_.begin + spray_comm_.global_rank(l), w,
                        region_push);
      }
      for (int l = 0; l < workers; ++l) {
        // One-sided exposure epoch with a solver-side partner (a rank of
        // the complementary subgroup); posted on the world communicator
        // since the hand-off crosses the split.
        const int partner = workers + (l % std::max(1, p - workers));
        if (partner < p) {
          world_.post(spray_comm_.global_rank(l), partner,
                      4 * sizeof(double));
        }
      }
      sim::flush_exchange(world_, cluster, region_comm, ranks_.begin,
                          message_scratch_);
      break;
    }
  }
}

}  // namespace cpx::spray
