#pragma once
// Registry of checkpointed classes (lint rule `ckpt`, docs/checkpoint.md).
//
// Every class that implements a `serialize(ckpt::Writer&)` /
// `restore(ckpt::Reader&)` pair must be listed here, and every listed
// class must still implement the pair — tools/lint_cpx.py cross-checks
// both directions, and additionally verifies that every data member of a
// registered class is mentioned in its serialize AND restore bodies (or
// carries a `// cpx-lint: allow(ckpt)` with a reason, for members that
// are deliberately rebuilt instead of saved: scratch buffers, cached
// plans, derived structure). Adding a field to a checkpointed class
// without threading it through the snapshot is exactly the hidden-state
// drift this PR's restart contract exists to catch.
//
// The names below are matched against `ClassName::serialize` definitions;
// keep one per line so the lint diff stays readable.

namespace cpx::ckpt {

inline constexpr const char* kCheckpointedClasses[] = {
    "sim::Cluster",
    "sim::Profile",
    "simpic::Pic",
    "simpic::DistributedPic",
    "spray::Cloud",
    "mgcfd::DistributedSolver",
    "amg::AmgHierarchy",
    "coupler::FieldCoupler",
    "coupler::CouplerUnit",
    "workflow::CoupledSimulation",
};

}  // namespace cpx::ckpt
