#include "ckpt/snapshot.hpp"

#include <array>
#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "support/check.hpp"

namespace cpx::ckpt {
namespace {

/// CRC-32 lookup table for the reflected IEEE polynomial 0xEDB88320,
/// generated once at static-init time.
struct Crc32Table {
  std::array<std::uint32_t, 256> entries{};
  Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

const Crc32Table& crc_table() {
  static const Crc32Table table;
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data) {
  const auto& table = crc_table().entries;
  std::uint32_t c = 0xFFFFFFFFU;
  for (const std::byte b : data) {
    c = table[(c ^ static_cast<std::uint32_t>(b)) & 0xFFU] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFU;
}

// --- Writer ---

void Writer::begin() {
  buf_.clear();  // keeps capacity: the warm path stages without allocating
  section_payload_begin_ = 0;
  section_len_offset_ = 0;
  section_count_ = 0;
  open_ = true;
  for (const char c : kMagic) {
    buf_.push_back(static_cast<std::byte>(c));
  }
  put_raw_u32_append(kFormatVersion);
  put_raw_u32_append(0);  // section count, patched by finish()
}

void Writer::put_raw_u32_append(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFFU));
  }
}

void Writer::raw_u32_at(std::size_t offset, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_[offset + static_cast<std::size_t>(i)] =
        static_cast<std::byte>((v >> (8 * i)) & 0xFFU);
  }
}

void Writer::begin_section(std::string_view name) {
  CPX_REQUIRE(open_ && section_payload_begin_ == 0,
              "Writer: begin_section outside begin()/finish() or with a "
              "section already open");
  put_raw_u32_append(static_cast<std::uint32_t>(name.size()));
  for (const char c : name) {
    buf_.push_back(static_cast<std::byte>(c));
  }
  // Payload length placeholder (u64), patched by end_section().
  section_len_offset_ = buf_.size();
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(std::byte{0});
  }
  section_payload_begin_ = buf_.size();
}

void Writer::end_section() {
  CPX_REQUIRE(section_payload_begin_ != 0,
              "Writer: end_section with no section open");
  const std::size_t len = buf_.size() - section_payload_begin_;
  for (int i = 0; i < 8; ++i) {
    buf_[section_len_offset_ + static_cast<std::size_t>(i)] =
        static_cast<std::byte>(
            (static_cast<std::uint64_t>(len) >> (8 * i)) & 0xFFU);
  }
  const std::uint32_t crc = crc32(
      std::span<const std::byte>(buf_).subspan(section_payload_begin_, len));
  put_raw_u32_append(crc);
  section_payload_begin_ = 0;
  ++section_count_;
}

void Writer::finish() {
  CPX_REQUIRE(open_ && section_payload_begin_ == 0,
              "Writer: finish with a section still open or no begin()");
  raw_u32_at(sizeof(kMagic) + 4, section_count_);
  open_ = false;
}

void Writer::put_u8(std::uint8_t v) {
  CPX_DCHECK(section_payload_begin_ != 0);
  buf_.push_back(static_cast<std::byte>(v));
}

void Writer::put_u32(std::uint32_t v) {
  CPX_DCHECK(section_payload_begin_ != 0);
  put_raw_u32_append(v);
}

void Writer::put_u64(std::uint64_t v) {
  CPX_DCHECK(section_payload_begin_ != 0);
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFFU));
  }
}

void Writer::put_i64(std::int64_t v) {
  put_u64(static_cast<std::uint64_t>(v));
}

void Writer::put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::put_str(std::string_view s) {
  put_u64(s.size());
  for (const char c : s) {
    buf_.push_back(static_cast<std::byte>(c));
  }
}

void Writer::put_f64_span(std::span<const double> v) {
  put_u64(v.size());
  for (const double x : v) {
    put_f64(x);
  }
}

void Writer::put_i64_span(std::span<const std::int64_t> v) {
  put_u64(v.size());
  for (const std::int64_t x : v) {
    put_i64(x);
  }
}

void Writer::put_u64_span(std::span<const std::uint64_t> v) {
  put_u64(v.size());
  for (const std::uint64_t x : v) {
    put_u64(x);
  }
}

void Writer::write_file(const std::string& path) const {
  CPX_REQUIRE(!open_, "Writer: write_file before finish()");
  const std::string stage = path + ".tmp";
  {
    std::ofstream out(stage, std::ios::binary | std::ios::trunc);
    CPX_REQUIRE(out.good(), "Writer: cannot open " << stage);
    out.write(reinterpret_cast<const char*>(buf_.data()),
              static_cast<std::streamsize>(buf_.size()));
    CPX_REQUIRE(out.good(), "Writer: short write to " << stage);
  }
  CPX_REQUIRE(std::rename(stage.c_str(), path.c_str()) == 0,
              "Writer: cannot rename " << stage << " to " << path);
}

// --- Reader ---

Reader::Reader(std::span<const std::byte> bytes) : bytes_(bytes) {
  CPX_REQUIRE(bytes.size() >= sizeof(kMagic) + 8,
              "ckpt: snapshot shorter than the header");
  CPX_REQUIRE(
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) == 0,
      "ckpt: bad magic — not a cpx-ckpt snapshot");
  std::size_t pos = sizeof(kMagic);
  const auto raw_u32 = [&](std::size_t at) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes_[at + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    return v;
  };
  const std::uint32_t version = raw_u32(pos);
  CPX_REQUIRE(version == kFormatVersion,
              "ckpt: snapshot version " << version << ", expected "
                                        << kFormatVersion);
  pos += 4;
  count_ = raw_u32(pos);
  pos += 4;

  sections_.reserve(count_);
  for (std::uint32_t s = 0; s < count_; ++s) {
    CPX_REQUIRE(pos + 4 <= bytes_.size(), "ckpt: truncated section header");
    const std::uint32_t name_len = raw_u32(pos);
    pos += 4;
    CPX_REQUIRE(pos + name_len + 8 <= bytes_.size(),
                "ckpt: truncated section name/length");
    Section sec;
    sec.name.assign(reinterpret_cast<const char*>(bytes_.data() + pos),
                    name_len);
    pos += name_len;
    std::uint64_t payload_len = 0;
    for (int i = 0; i < 8; ++i) {
      payload_len |=
          static_cast<std::uint64_t>(
              bytes_[pos + static_cast<std::size_t>(i)])
          << (8 * i);
    }
    pos += 8;
    CPX_REQUIRE(pos + payload_len + 4 <= bytes_.size(),
                "ckpt: section '" << sec.name << "' payload truncated");
    sec.payload_begin = pos;
    sec.payload_len = static_cast<std::size_t>(payload_len);
    pos += sec.payload_len;
    sec.crc = raw_u32(pos);
    pos += 4;
    sections_.push_back(std::move(sec));
  }
  CPX_REQUIRE(pos == bytes_.size(),
              "ckpt: " << bytes_.size() - pos
                       << " trailing bytes after the last section");
}

bool Reader::has_section(std::string_view name) const {
  for (const Section& s : sections_) {
    if (s.name == name) {
      return true;
    }
  }
  return false;
}

void Reader::open_section(std::string_view name) {
  CPX_REQUIRE(!section_open_,
              "Reader: open_section with a section already open");
  for (const Section& s : sections_) {
    if (s.name != name) {
      continue;
    }
    const std::uint32_t crc =
        crc32(bytes_.subspan(s.payload_begin, s.payload_len));
    CPX_REQUIRE(crc == s.crc, "ckpt: CRC mismatch in section '"
                                  << name << "' — snapshot is corrupted");
    cursor_ = s.payload_begin;
    section_end_ = s.payload_begin + s.payload_len;
    section_open_ = true;
    return;
  }
  CPX_REQUIRE(false, "ckpt: snapshot has no section '" << name << "'");
}

void Reader::end_section() {
  CPX_REQUIRE(section_open_, "Reader: end_section with no section open");
  CPX_REQUIRE(cursor_ == section_end_,
              "ckpt: " << section_end_ - cursor_
                       << " unread bytes at end of section");
  section_open_ = false;
}

void Reader::need(std::size_t n) const {
  CPX_REQUIRE(section_open_, "Reader: typed read outside a section");
  CPX_REQUIRE(cursor_ + n <= section_end_,
              "ckpt: short read — section ends " << section_end_ - cursor_
                                                 << " bytes early");
}

std::uint8_t Reader::get_u8() {
  need(1);
  return static_cast<std::uint8_t>(bytes_[cursor_++]);
}

std::uint32_t Reader::get_u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(bytes_[cursor_++]) << (8 * i);
  }
  return v;
}

std::uint64_t Reader::get_u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(bytes_[cursor_++]) << (8 * i);
  }
  return v;
}

std::int64_t Reader::get_i64() {
  return static_cast<std::int64_t>(get_u64());
}

double Reader::get_f64() { return std::bit_cast<double>(get_u64()); }

std::string Reader::get_str() {
  const std::uint64_t len = get_u64();
  need(static_cast<std::size_t>(len));
  std::string s(reinterpret_cast<const char*>(bytes_.data() + cursor_),
                static_cast<std::size_t>(len));
  cursor_ += static_cast<std::size_t>(len);
  return s;
}

void Reader::get_f64_span(std::span<double> out) {
  const std::uint64_t n = get_u64();
  CPX_REQUIRE(n == out.size(), "ckpt: vector length " << n << ", expected "
                                                      << out.size());
  for (double& x : out) {
    x = get_f64();
  }
}

void Reader::get_i64_span(std::span<std::int64_t> out) {
  const std::uint64_t n = get_u64();
  CPX_REQUIRE(n == out.size(), "ckpt: vector length " << n << ", expected "
                                                      << out.size());
  for (std::int64_t& x : out) {
    x = get_i64();
  }
}

void Reader::get_u64_span(std::span<std::uint64_t> out) {
  const std::uint64_t n = get_u64();
  CPX_REQUIRE(n == out.size(), "ckpt: vector length " << n << ", expected "
                                                      << out.size());
  for (std::uint64_t& x : out) {
    x = get_u64();
  }
}

void Reader::get_f64_vec(std::vector<double>& out) {
  const std::uint64_t n = get_u64();
  need(static_cast<std::size_t>(n) * 8);
  out.resize(static_cast<std::size_t>(n));
  for (double& x : out) {
    x = get_f64();
  }
}

void Reader::get_i64_vec(std::vector<std::int64_t>& out) {
  const std::uint64_t n = get_u64();
  need(static_cast<std::size_t>(n) * 8);
  out.resize(static_cast<std::size_t>(n));
  for (std::int64_t& x : out) {
    x = get_i64();
  }
}

void Reader::get_u64_vec(std::vector<std::uint64_t>& out) {
  const std::uint64_t n = get_u64();
  need(static_cast<std::size_t>(n) * 8);
  out.resize(static_cast<std::size_t>(n));
  for (std::uint64_t& x : out) {
    x = get_u64();
  }
}

void read_file(const std::string& path, std::vector<std::byte>& out) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  CPX_REQUIRE(in.good(), "ckpt: cannot open " << path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  out.resize(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(out.data()), size);
  CPX_REQUIRE(in.gcount() == size, "ckpt: short read from " << path);
}

}  // namespace cpx::ckpt
