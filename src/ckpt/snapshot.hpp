#pragma once
// Versioned binary snapshot I/O — the `cpx-ckpt-v1` format
// (docs/checkpoint.md).
//
// A snapshot is a header followed by named sections. Every multi-byte
// value is encoded explicitly little-endian, byte by byte, so the layout
// is independent of host endianness, of `CPX_THREADS`, and of how the
// state was produced — the foundation of the byte-identical restart
// contract. Each section carries a CRC32 over its payload; the Reader
// verifies it before handing out a single byte, so a flipped bit anywhere
// in a section is rejected with CheckError instead of silently restoring
// corrupt state.
//
// Layout:
//   magic   "CPXCKPT\0"           (8 bytes)
//   version u32                   (1)
//   count   u32                   (number of sections)
//   section*:
//     name_len u32, name bytes
//     payload_len u64, payload bytes
//     crc u32                     (CRC32 of the payload)
//
// The Writer owns a staging buffer that is reused across snapshots
// (clear() keeps capacity), so the checkpoint hot path performs zero heap
// allocations once warm — proven by tests/ckpt_test.cpp with the
// operator-new hook.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace cpx::ckpt {

inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr char kMagic[8] = {'C', 'P', 'X', 'C', 'K', 'P', 'T', '\0'};

/// CRC-32 (IEEE 802.3 polynomial, reflected) of a byte range.
std::uint32_t crc32(std::span<const std::byte> data);

/// Serialises state into the cpx-ckpt-v1 byte stream. Sections must be
/// opened and closed strictly in sequence:
///   w.begin(); w.begin_section("x"); ...typed writes...; w.end_section();
///   ...; w.finish();
class Writer {
 public:
  /// Starts a fresh snapshot, reusing the staging buffer.
  void begin();

  void begin_section(std::string_view name);
  void end_section();

  /// Patches the header section count; the buffer is complete after this.
  void finish();

  // --- Typed little-endian writes (only valid inside a section) ---
  void put_u8(std::uint8_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v);
  void put_f64(double v);  ///< IEEE-754 bits, little-endian
  void put_str(std::string_view s);
  void put_f64_span(std::span<const double> v);
  void put_i64_span(std::span<const std::int64_t> v);
  void put_u64_span(std::span<const std::uint64_t> v);

  /// The finished snapshot bytes (valid until the next begin()).
  std::span<const std::byte> bytes() const { return buf_; }

  /// Writes bytes() to `path` atomically (stage file + rename), so an
  /// interrupted write never clobbers the previous snapshot.
  void write_file(const std::string& path) const;

 private:
  void put_raw_u32_append(std::uint32_t v);
  void raw_u32_at(std::size_t offset, std::uint32_t v);

  std::vector<std::byte> buf_;
  std::size_t section_payload_begin_ = 0;  ///< 0 = no section open
  std::size_t section_len_offset_ = 0;
  std::uint32_t section_count_ = 0;
  bool open_ = false;
};

/// Parses and validates a cpx-ckpt-v1 byte stream. The constructor checks
/// magic and version (CheckError on mismatch); open_section() checks the
/// section's CRC32 before any read. Every typed read bounds-checks, so a
/// truncated payload throws instead of reading past the end or silently
/// yielding zeros.
class Reader {
 public:
  explicit Reader(std::span<const std::byte> bytes);

  std::uint32_t num_sections() const { return count_; }
  bool has_section(std::string_view name) const;

  /// Positions the cursor at the payload of `name` after verifying its
  /// CRC. Sections may be opened in any order.
  void open_section(std::string_view name);
  /// Asserts the open section was fully consumed (catches layout drift).
  void end_section();

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::int64_t get_i64();
  double get_f64();
  std::string get_str();
  void get_f64_span(std::span<double> out);
  void get_i64_span(std::span<std::int64_t> out);
  void get_u64_span(std::span<std::uint64_t> out);
  /// Reads a length-prefixed f64 vector (resizes `out`).
  void get_f64_vec(std::vector<double>& out);
  void get_i64_vec(std::vector<std::int64_t>& out);
  void get_u64_vec(std::vector<std::uint64_t>& out);
  /// Allocator-generic variant: the aligned SoA arrays
  /// (support/aligned.hpp) restore through the same length-prefixed
  /// layout, so checkpoints are byte-identical either way.
  template <typename Alloc>
  void get_f64_vec(std::vector<double, Alloc>& out) {
    const std::uint64_t n = get_u64();
    need(static_cast<std::size_t>(n) * 8);
    out.resize(static_cast<std::size_t>(n));
    for (double& x : out) {
      x = get_f64();
    }
  }

 private:
  struct Section {
    std::string name;
    std::size_t payload_begin = 0;
    std::size_t payload_len = 0;
    std::uint32_t crc = 0;
  };

  void need(std::size_t n) const;  ///< bounds check within the open section

  std::span<const std::byte> bytes_;
  std::uint32_t count_ = 0;
  std::vector<Section> sections_;
  std::size_t cursor_ = 0;
  std::size_t section_end_ = 0;
  bool section_open_ = false;
};

/// Reads a whole file into `out` (CheckError if unreadable). The returned
/// buffer backs a Reader.
void read_file(const std::string& path, std::vector<std::byte>& out);

}  // namespace cpx::ckpt
