#include "thermal/instance.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace cpx::thermal {

Instance::Instance(std::string name, std::int64_t mesh_cells,
                   sim::RankRange ranks, const WorkModel& work)
    : name_(std::move(name)),
      mesh_cells_(mesh_cells),
      ranks_(ranks),
      work_(work),
      stats_(mesh::PartitionStats::analytic(mesh_cells, ranks.size())) {
  CPX_REQUIRE(ranks.size() >= 1, "Instance: empty rank range");
  CPX_REQUIRE(mesh_cells >= ranks.size(), "Instance: fewer cells than ranks");
}

void Instance::step(sim::Cluster& cluster) {
  const sim::RegionId region_spmv = cluster.region(name_ + "/spmv");
  const sim::RegionId region_halo = cluster.region(name_ + "/halo");
  const sim::RegionId region_dot = cluster.region(name_ + "/dot");
  const sim::MachineModel& m = cluster.machine();
  const int p = ranks_.size();
  const double cells = stats_.owned_mean;
  const double iters = static_cast<double>(work_.cg_iterations);

  // Per-iteration compute, folded over the solve.
  for (int l = 0; l < p; ++l) {
    sim::Work w;
    w.flops = iters * cells * work_.flops_per_cell_per_iteration;
    w.bytes = iters * cells * work_.bytes_per_cell_per_iteration;
    w.launches = iters * 3.0;  // spmv + 2 axpy-class kernels
    cluster.compute(ranks_.begin + l, w, region_spmv);
  }

  // One fused halo message per neighbour carrying all iterations' bytes;
  // the extra rounds' latencies are charged alongside (as in mgcfd).
  if (p > 1) {
    message_scratch_.clear();
    const auto halo_bytes = static_cast<std::size_t>(
        stats_.halo_mean / std::max(stats_.neighbors_mean, 1.0) *
        static_cast<double>(work_.bytes_per_halo_cell) * iters);
    for (int l = 0; l < p; ++l) {
      // 1-D ring neighbours suffice for the casing shell (it is thin).
      if (l > 0) {
        message_scratch_.push_back(
            {ranks_.begin + l, ranks_.begin + l - 1, halo_bytes});
      }
      if (l + 1 < p) {
        message_scratch_.push_back(
            {ranks_.begin + l, ranks_.begin + l + 1, halo_bytes});
      }
    }
    cluster.exchange(message_scratch_, region_halo);
    const double per_round = m.lat_inter + 2.0 * m.msg_overhead;
    for (int l = 0; l < p; ++l) {
      cluster.comm_delay(ranks_.begin + l, (iters - 1.0) * per_round * 2.0,
                         region_halo);
    }
    // Two dot-product allreduces per CG iteration: the first two as real
    // synchronising collectives, the rest as their analytic cost.
    for (int it = 0; it < 2; ++it) {
      cluster.allreduce(ranks_, sizeof(double), region_dot);
    }
    const int nodes = cluster.node_of(ranks_.end - 1) -
                      cluster.node_of(ranks_.begin) + 1;
    const double reduce_cost =
        m.allreduce_time(p, nodes, sizeof(double)) * (2.0 * iters - 2.0);
    for (int l = 0; l < p; ++l) {
      cluster.comm_delay(ranks_.begin + l, reduce_cost, region_dot);
    }
  }
}

}  // namespace cpx::thermal
