#pragma once
// Thermal solver for engine-casing conjugate heat transfer — the §VI
// "work is ongoing to include FEM solvers for thermal coupling of the
// engine casing" extension, implemented here as a finite-volume heat-
// conduction solver on the unstructured mesh (two-point flux between cell
// centroids), advanced with implicit backward Euler and solved by the
// library's AMG-preconditioned conjugate gradient.
//
//   (V/dt) T^{n+1} + K T^{n+1} = (V/dt) T^n + q
//
// with K the conduction operator (k * area / centroid distance per face)
// and optional fixed-temperature (Dirichlet) cells for the casing's outer
// wall.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "amg/hierarchy.hpp"
#include "amg/pcg.hpp"
#include "mesh/mesh.hpp"
#include "sparse/csr.hpp"

namespace cpx::thermal {

struct ThermalOptions {
  double conductivity = 1.0;
  double dt = 0.1;
  double cg_tolerance = 1e-10;
  int cg_max_iterations = 500;
};

class ThermalSolver {
 public:
  ThermalSolver(const mesh::UnstructuredMesh& mesh,
                const ThermalOptions& options);

  std::int64_t num_cells() const {
    return static_cast<std::int64_t>(temperature_.size());
  }

  void set_uniform(double temperature);
  void set_cell(mesh::CellId cell, double temperature);
  /// Pins a cell to its current temperature (Dirichlet condition).
  void fix_cell(mesh::CellId cell);
  /// Volumetric heat source for a cell (energy per time).
  void set_source(mesh::CellId cell, double power);

  const std::vector<double>& temperature() const { return temperature_; }

  /// One implicit step; returns the CG iteration count.
  int step();
  int run(int steps);

  /// Total thermal energy sum(V_c * T_c).
  double total_energy() const;

  /// Steady-state solve (iterates steps until the temperature change per
  /// step drops below `tol`); returns steps taken (or max_steps + 1).
  int solve_steady(double tol, int max_steps);

 private:
  void build_system();

  ThermalOptions options_;
  std::vector<double> volumes_;
  std::vector<double> temperature_;
  std::vector<double> source_;
  std::vector<bool> fixed_;
  // Conduction operator K and the implicit system A = V/dt + K with
  // Dirichlet rows replaced by identity.
  sparse::CsrMatrix conduction_;
  sparse::CsrMatrix system_;
  std::unique_ptr<amg::AmgHierarchy> amg_;
  bool system_current_ = false;
  const mesh::UnstructuredMesh* mesh_;
  // Persistent solve state (rebuilt with the system): repeated step() calls
  // reuse the preconditioner, CG work vectors, and rhs buffer, so the
  // timestep loop allocates nothing in steady state.
  amg::Preconditioner precond_;
  amg::PcgWorkspace workspace_;
  std::vector<double> rhs_;
};

}  // namespace cpx::thermal
