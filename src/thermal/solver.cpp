#include "thermal/solver.hpp"

#include <algorithm>
#include <cmath>

#include "amg/pcg.hpp"
#include "support/check.hpp"

namespace cpx::thermal {

ThermalSolver::ThermalSolver(const mesh::UnstructuredMesh& mesh,
                             const ThermalOptions& options)
    : options_(options),
      volumes_(mesh.volumes()),
      temperature_(static_cast<std::size_t>(mesh.num_cells()), 0.0),
      source_(static_cast<std::size_t>(mesh.num_cells()), 0.0),
      fixed_(static_cast<std::size_t>(mesh.num_cells()), false),
      mesh_(&mesh) {
  CPX_REQUIRE(options.conductivity > 0.0 && options.dt > 0.0,
              "ThermalSolver: bad options");

  // Conduction operator: two-point flux k * A_f / |dc| per face.
  std::vector<sparse::Triplet> t;
  t.reserve(static_cast<std::size_t>(4 * mesh.num_edges()));
  for (const mesh::Edge& e : mesh.edges()) {
    const mesh::Vec3& pa = mesh.centroids()[static_cast<std::size_t>(e.a)];
    const mesh::Vec3& pb = mesh.centroids()[static_cast<std::size_t>(e.b)];
    const double dist = std::sqrt(
        (pa.x - pb.x) * (pa.x - pb.x) + (pa.y - pb.y) * (pa.y - pb.y) +
        (pa.z - pb.z) * (pa.z - pb.z));
    CPX_CHECK_MSG(dist > 0.0, "ThermalSolver: coincident centroids");
    const double k = options.conductivity * e.area / dist;
    t.push_back({e.a, e.a, k});
    t.push_back({e.b, e.b, k});
    t.push_back({e.a, e.b, -k});
    t.push_back({e.b, e.a, -k});
  }
  conduction_ =
      sparse::csr_from_triplets(mesh.num_cells(), mesh.num_cells(), t);
}

void ThermalSolver::build_system() {
  const std::int64_t n = conduction_.rows();
  std::vector<sparse::Triplet> t;
  t.reserve(static_cast<std::size_t>(conduction_.nnz() + n));
  for (std::int64_t r = 0; r < n; ++r) {
    if (fixed_[static_cast<std::size_t>(r)]) {
      t.push_back({r, r, 1.0});
      continue;
    }
    const auto cols = conduction_.row_cols(r);
    const auto vals = conduction_.row_values(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      // Drop couplings into fixed cells from the matrix; their (known)
      // contribution moves to the right-hand side in step().
      if (!fixed_[static_cast<std::size_t>(cols[i])]) {
        t.push_back({r, cols[i], vals[i]});
      }
    }
    t.push_back({r, r, volumes_[static_cast<std::size_t>(r)] / options_.dt});
  }
  system_ = sparse::csr_from_triplets(n, n, t);
  amg::AmgOptions amg_opts;
  amg_opts.coarse_size = 32;
  amg_ = std::make_unique<amg::AmgHierarchy>(system_, amg_opts);
  precond_ = amg::make_amg_preconditioner(*amg_);
  rhs_.assign(static_cast<std::size_t>(n), 0.0);
  system_current_ = true;
}

void ThermalSolver::set_uniform(double temperature) {
  std::fill(temperature_.begin(), temperature_.end(), temperature);
}

void ThermalSolver::set_cell(mesh::CellId cell, double temperature) {
  CPX_REQUIRE(cell >= 0 && cell < num_cells(), "set_cell: bad cell");
  temperature_[static_cast<std::size_t>(cell)] = temperature;
}

void ThermalSolver::fix_cell(mesh::CellId cell) {
  CPX_REQUIRE(cell >= 0 && cell < num_cells(), "fix_cell: bad cell");
  fixed_[static_cast<std::size_t>(cell)] = true;
  system_current_ = false;
}

void ThermalSolver::set_source(mesh::CellId cell, double power) {
  CPX_REQUIRE(cell >= 0 && cell < num_cells(), "set_source: bad cell");
  source_[static_cast<std::size_t>(cell)] = power;
}

int ThermalSolver::step() {
  if (!system_current_) {
    build_system();
  }
  const auto n = temperature_.size();
  for (std::size_t c = 0; c < n; ++c) {
    if (fixed_[c]) {
      rhs_[c] = temperature_[c];
      continue;
    }
    rhs_[c] = volumes_[c] / options_.dt * temperature_[c] + source_[c];
  }
  // Known (fixed) temperatures contribute through the dropped couplings.
  for (std::int64_t r = 0; r < conduction_.rows(); ++r) {
    if (fixed_[static_cast<std::size_t>(r)]) {
      continue;
    }
    const auto cols = conduction_.row_cols(r);
    const auto vals = conduction_.row_values(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      if (fixed_[static_cast<std::size_t>(cols[i])]) {
        rhs_[static_cast<std::size_t>(r)] -=
            vals[i] * temperature_[static_cast<std::size_t>(cols[i])];
      }
    }
  }
  const amg::PcgResult result =
      amg::pcg(system_, temperature_, rhs_, options_.cg_tolerance,
               options_.cg_max_iterations, precond_, workspace_);
  CPX_CHECK_MSG(result.converged, "ThermalSolver: CG did not converge ("
                                      << result.iterations << " iterations)");
  return result.iterations;
}

int ThermalSolver::run(int steps) {
  CPX_REQUIRE(steps >= 1, "run: bad step count");
  int iters = 0;
  for (int s = 0; s < steps; ++s) {
    iters = step();
  }
  return iters;
}

double ThermalSolver::total_energy() const {
  double e = 0.0;
  for (std::size_t c = 0; c < temperature_.size(); ++c) {
    e += volumes_[c] * temperature_[c];
  }
  return e;
}

int ThermalSolver::solve_steady(double tol, int max_steps) {
  CPX_REQUIRE(tol > 0.0 && max_steps >= 1, "solve_steady: bad inputs");
  for (int s = 1; s <= max_steps; ++s) {
    const std::vector<double> before = temperature_;
    step();
    double max_change = 0.0;
    for (std::size_t c = 0; c < before.size(); ++c) {
      max_change = std::max(max_change,
                            std::abs(temperature_[c] - before[c]));
    }
    if (max_change < tol) {
      return s;
    }
  }
  return max_steps + 1;
}

}  // namespace cpx::thermal
