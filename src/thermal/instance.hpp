#pragma once
// Thermal-casing performance instance: one implicit conduction solve per
// coupled step — CG iterations of SpMV compute plus halo exchange plus two
// dot-product allreduces each, the classic implicit-solver communication
// pattern. Scales like a lighter cousin of the pressure field: good
// until the per-iteration collectives and surface terms take over.

#include <cstdint>
#include <string>

#include "mesh/stats.hpp"
#include "sim/app.hpp"

namespace cpx::thermal {

struct WorkModel {
  double flops_per_cell_per_iteration = 60.0;  ///< SpMV + vector updates
  double bytes_per_cell_per_iteration = 120.0;
  int cg_iterations = 25;
  std::size_t bytes_per_halo_cell = sizeof(double);
};

class Instance final : public sim::App {
 public:
  Instance(std::string name, std::int64_t mesh_cells, sim::RankRange ranks,
           const WorkModel& work = {});

  const std::string& name() const override { return name_; }
  sim::RankRange ranks() const override { return ranks_; }
  void step(sim::Cluster& cluster) override;

  std::int64_t mesh_cells() const { return mesh_cells_; }

 private:
  std::string name_;
  std::int64_t mesh_cells_;
  sim::RankRange ranks_;
  WorkModel work_;
  mesh::PartitionStats stats_;
  std::vector<sim::Message> message_scratch_;
};

}  // namespace cpx::thermal
