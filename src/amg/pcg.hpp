#pragma once
// Preconditioned conjugate gradient — the outer solver the production
// pressure solver wraps around its AMG (Conjugate Gradient with Aggregate
// Algebraic Multigrid, §III of the paper).

#include <functional>
#include <span>

#include "sparse/csr.hpp"

namespace cpx::amg {

/// Applies a preconditioner: z = M^{-1} r.
using Preconditioner =
    std::function<void(std::span<double> z, std::span<const double> r)>;

struct PcgResult {
  int iterations = 0;
  double relative_residual = 0.0;
  bool converged = false;
};

/// Solves A x = b with (optionally preconditioned) CG. `x` holds the
/// initial guess on entry and the solution on exit. If `precond` is null,
/// unpreconditioned CG is used.
PcgResult pcg(const sparse::CsrMatrix& a, std::span<double> x,
              std::span<const double> b, double tol, int max_iterations,
              const Preconditioner& precond = nullptr);

/// Jacobi (diagonal) preconditioner for A.
Preconditioner make_jacobi_preconditioner(const sparse::CsrMatrix& a);

class AmgHierarchy;
/// One AMG cycle as a preconditioner (the hierarchy must outlive the
/// returned functor).
Preconditioner make_amg_preconditioner(AmgHierarchy& hierarchy);

}  // namespace cpx::amg
