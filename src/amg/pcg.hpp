#pragma once
// Preconditioned conjugate gradient — the outer solver the production
// pressure solver wraps around its AMG (Conjugate Gradient with Aggregate
// Algebraic Multigrid, §III of the paper).

#include <functional>
#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "support/aligned.hpp"

namespace cpx::amg {

/// Applies a preconditioner: z = M^{-1} r. Contract: pcg passes z already
/// zero-filled, so iterative preconditioners (an AMG cycle) can use it as
/// the initial guess directly — implementations must not rely on any other
/// incoming content, and need not clear it themselves.
using Preconditioner =
    std::function<void(std::span<double> z, std::span<const double> r)>;

struct PcgResult {
  int iterations = 0;
  double relative_residual = 0.0;
  bool converged = false;
};

/// Persistent CG work vectors. Pass the same workspace to repeated pcg
/// calls of the same size (a timestep loop) and the iteration allocates
/// nothing after the first call; resize() is a no-op when already sized.
/// 64-byte-aligned so the blas1 simd::pack loops start on cache lines.
struct PcgWorkspace {
  support::aligned_vector<double> r;
  support::aligned_vector<double> z;
  support::aligned_vector<double> p;
  support::aligned_vector<double> ap;
  support::aligned_vector<double> r_old;

  void resize(std::size_t n);
};

/// Solves A x = b with (optionally preconditioned) CG. `x` holds the
/// initial guess on entry and the solution on exit. If `precond` is null,
/// unpreconditioned CG is used. This overload allocates its work vectors
/// per call; solver loops should hold a PcgWorkspace and use the overload
/// below.
PcgResult pcg(const sparse::CsrMatrix& a, std::span<double> x,
              std::span<const double> b, double tol, int max_iterations,
              const Preconditioner& precond = nullptr);

/// As above, with caller-owned work vectors (allocation-free when the
/// workspace is already sized).
PcgResult pcg(const sparse::CsrMatrix& a, std::span<double> x,
              std::span<const double> b, double tol, int max_iterations,
              const Preconditioner& precond, PcgWorkspace& workspace);

/// Jacobi (diagonal) preconditioner for A.
Preconditioner make_jacobi_preconditioner(const sparse::CsrMatrix& a);

class AmgHierarchy;
/// One AMG cycle as a preconditioner (the hierarchy must outlive the
/// returned functor).
Preconditioner make_amg_preconditioner(AmgHierarchy& hierarchy);

}  // namespace cpx::amg
