#include "amg/hierarchy.hpp"

#include <algorithm>
#include <cmath>

#include "ckpt/snapshot.hpp"
#include "support/blas1.hpp"
#include "support/check.hpp"
#include "support/metrics.hpp"

namespace cpx::amg {
namespace {

/// In-place dense Cholesky of the row-major lower triangle held in f.
/// Returns false if a pivot is non-positive (matrix not numerically SPD
/// under the current shift).
bool cholesky_in_place(std::vector<double>& f, std::int64_t n) {
  for (std::int64_t k = 0; k < n; ++k) {
    double pivot = f[static_cast<std::size_t>(k * n + k)];
    for (std::int64_t j = 0; j < k; ++j) {
      pivot -= f[static_cast<std::size_t>(k * n + j)] *
               f[static_cast<std::size_t>(k * n + j)];
    }
    if (pivot <= 0.0) {
      return false;
    }
    const double lkk = std::sqrt(pivot);
    f[static_cast<std::size_t>(k * n + k)] = lkk;
    for (std::int64_t i = k + 1; i < n; ++i) {
      double v = f[static_cast<std::size_t>(i * n + k)];
      for (std::int64_t j = 0; j < k; ++j) {
        v -= f[static_cast<std::size_t>(i * n + j)] *
             f[static_cast<std::size_t>(k * n + j)];
      }
      f[static_cast<std::size_t>(i * n + k)] = v / lkk;
    }
  }
  return true;
}

void dense_cholesky_solve(const std::vector<double>& f, std::int64_t n,
                          std::span<double> x, std::span<const double> b,
                          std::span<double> y) {
  for (std::int64_t i = 0; i < n; ++i) {
    double v = b[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < i; ++j) {
      v -= f[static_cast<std::size_t>(i * n + j)] * y[static_cast<std::size_t>(j)];
    }
    y[static_cast<std::size_t>(i)] = v / f[static_cast<std::size_t>(i * n + i)];
  }
  for (std::int64_t ii = n; ii-- > 0;) {
    double v = y[static_cast<std::size_t>(ii)];
    for (std::int64_t j = ii + 1; j < n; ++j) {
      v -= f[static_cast<std::size_t>(j * n + ii)] *
           x[static_cast<std::size_t>(j)];
    }
    x[static_cast<std::size_t>(ii)] =
        v / f[static_cast<std::size_t>(ii * n + ii)];
  }
}

}  // namespace

void AmgHierarchy::factor_coarse() {
  // Dense staging + factor buffers persist across re-factorisations, so a
  // reset_values() pays no coarse-level allocations after the first build.
  const sparse::CsrMatrix& a = levels_.back().a;
  const std::int64_t n = a.rows();
  coarse_n_ = n;
  coarse_dense_.assign(static_cast<std::size_t>(n * n), 0.0);
  for (std::int64_t r = 0; r < n; ++r) {
    const auto cols = a.row_cols(r);
    const auto vals = a.row_values(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      coarse_dense_[static_cast<std::size_t>(r * n + cols[i])] = vals[i];
    }
  }
  double max_diag = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    max_diag = std::max(max_diag,
                        std::abs(coarse_dense_[static_cast<std::size_t>(i * n + i)]));
  }
  // Retry with a growing diagonal shift if the operator is numerically
  // semi-definite (e.g. a pinned-singular pressure Laplacian coarse grid).
  double shift = 0.0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    coarse_factor_.assign(coarse_dense_.begin(), coarse_dense_.end());
    if (shift != 0.0) {
      for (std::int64_t i = 0; i < n; ++i) {
        coarse_factor_[static_cast<std::size_t>(i * n + i)] += shift;
      }
    }
    if (cholesky_in_place(coarse_factor_, n)) {
      coarse_y_.assign(static_cast<std::size_t>(n), 0.0);
      return;
    }
    shift = shift == 0.0 ? 1e-12 * std::max(max_diag, 1.0) : shift * 100.0;
  }
  CPX_CHECK_MSG(false, "factor_coarse: coarse operator not SPD");
}

AmgHierarchy::AmgHierarchy(sparse::CsrMatrix a, const AmgOptions& options)
    : options_(options) {
  CPX_REQUIRE(a.rows() == a.cols(), "AmgHierarchy: matrix must be square");
  CPX_REQUIRE(options.max_levels >= 1, "AmgHierarchy: bad max_levels");
  CPX_METRICS_SCOPE("amg/setup");

  levels_.push_back({std::move(a), {}, {}});
  while (num_levels() < options_.max_levels &&
         levels_.back().a.rows() > options_.coarse_size) {
    const sparse::CsrMatrix& fine = levels_.back().a;
    const sparse::CsrMatrix strength =
        strength_graph(fine, options_.strength_theta);
    const Aggregation agg = aggregate_greedy(strength);
    if (agg.num_aggregates >= fine.rows()) {
      break;  // no coarsening progress (e.g. fully decoupled matrix)
    }

    // Interpolation, with the pieces reset_values() needs kept around:
    // the smoothing operator S, the tentative P, and the SpGEMM plans of
    // every product (structures adopted from the products computed here, so
    // capturing them costs no extra symbolic pass).
    Resetup rs;
    sparse::CsrMatrix p_tent = tentative_prolongator(agg, fine.rows());
    sparse::CsrMatrix p;
    if (options_.interp == InterpKind::kTentative) {
      p = std::move(p_tent);
      rs.p_frozen = true;  // tentative P is constant (all ones): no refresh
    } else {
      rs.s = smoothing_operator(fine, options_.interp_omega);
      if (options_.interp == InterpKind::kSmoothed) {
        p = sparse::spgemm_spa(rs.s, p_tent);
        rs.sp_plan = sparse::SpgemmPlan(rs.s, p_tent, p);
      } else {  // kExtended: two smoothing applications
        rs.p_mid = sparse::spgemm_spa(rs.s, p_tent);
        rs.sp_plan = sparse::SpgemmPlan(rs.s, p_tent, rs.p_mid);
        p = sparse::spgemm_spa(rs.s, rs.p_mid);
        rs.sp_plan2 = sparse::SpgemmPlan(rs.s, rs.p_mid, p);
      }
      rs.p_tent = std::move(p_tent);
    }
    if (options_.interp_truncation > 0.0) {
      // Truncated sparsity depends on P's values, so a numeric-only refresh
      // cannot reproduce it: freeze P/R and drop the smoothing state.
      p = truncate_prolongator(p, options_.interp_truncation);
      rs.p_frozen = true;
      rs.s = {};
      rs.p_tent = {};
      rs.p_mid = {};
      rs.sp_plan = {};
      rs.sp_plan2 = {};
    }

    sparse::CsrMatrix r = sparse::transpose(p);
    if (!rs.p_frozen) {
      rs.r_perm = sparse::transpose_permutation(p, r);
    }
    sparse::CsrMatrix ap = options_.spgemm == SpgemmKind::kSpa
                               ? sparse::spgemm_spa(fine, p)
                               : sparse::spgemm_twopass(fine, p);
    sparse::CsrMatrix coarse = options_.spgemm == SpgemmKind::kSpa
                                   ? sparse::spgemm_spa(r, ap)
                                   : sparse::spgemm_twopass(r, ap);
    rs.ap_plan = sparse::SpgemmPlan(fine, p, ap);
    rs.rap_plan = sparse::SpgemmPlan(r, ap, coarse);
    rs.ap = std::move(ap);
    levels_.back().p = std::move(p);
    levels_.back().r = std::move(r);
    resetup_.push_back(std::move(rs));
    levels_.push_back({std::move(coarse), {}, {}});
  }

  factor_coarse();

  scratch_.resize(levels_.size());
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const auto n = static_cast<std::size_t>(levels_[l].a.rows());
    scratch_[l].r.assign(n, 0.0);
    scratch_[l].tmp.assign(n, 0.0);
    if (l + 1 < levels_.size()) {
      const auto nc = static_cast<std::size_t>(levels_[l + 1].a.rows());
      scratch_[l].bc.assign(nc, 0.0);
      scratch_[l].xc.assign(nc, 0.0);
      if (options_.cycle != CycleKind::kV) {
        scratch_[l].kres.assign(nc, 0.0);
        scratch_[l].kz.assign(nc, 0.0);
        if (options_.cycle == CycleKind::kK) {
          scratch_[l].kp.assign(nc, 0.0);
          scratch_[l].kap.assign(nc, 0.0);
        }
      }
    }
  }

  if (check::deep()) {
    validate();
  }
}

void AmgHierarchy::validate() const {
  CPX_CHECK_MSG(!levels_.empty(), "hierarchy has no levels");
  CPX_CHECK_MSG(resetup_.size() == levels_.size() - 1,
                "resetup cache count " << resetup_.size()
                                       << " != transitions "
                                       << levels_.size() - 1);
  CPX_CHECK_MSG(scratch_.size() == levels_.size(),
                "scratch count != level count");
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const Level& lv = levels_[l];
    lv.a.validate();
    CPX_CHECK_MSG(lv.a.rows() == lv.a.cols(),
                  "level " << l << " operator not square");
    for (std::int64_t r = 0; r < lv.a.rows(); ++r) {
      CPX_CHECK_MSG(lv.a.at(r, r) > 0.0,
                    "level " << l << " diagonal not positive at row " << r
                             << " (operator not SPD)");
    }
    CPX_CHECK_MSG(
        scratch_[l].r.size() == static_cast<std::size_t>(lv.a.rows()) &&
            scratch_[l].tmp.size() == static_cast<std::size_t>(lv.a.rows()),
        "level " << l << " scratch not sized to the operator");

    if (l + 1 == levels_.size()) {
      break;  // coarsest level has no transfer operators
    }
    const sparse::CsrMatrix& coarse = levels_[l + 1].a;
    lv.p.validate();
    lv.r.validate();
    CPX_CHECK_MSG(lv.p.rows() == lv.a.rows() && lv.p.cols() == coarse.rows(),
                  "level " << l << " prolongator shape " << lv.p.rows() << "x"
                           << lv.p.cols() << " inconsistent with operators");
    CPX_CHECK_MSG(lv.r.rows() == lv.p.cols() && lv.r.cols() == lv.p.rows() &&
                      lv.r.nnz() == lv.p.nnz(),
                  "level " << l << " restriction is not a transpose of P");

    // Frozen-sparsity contract of reset_values(): the cached Galerkin
    // plans and product buffers must still describe exactly these
    // operators, otherwise a numeric-only refresh would scatter values
    // into the wrong structure.
    const Resetup& rs = resetup_[l];
    CPX_CHECK_MSG(rs.ap.rows() == lv.a.rows() &&
                      rs.ap.cols() == lv.p.cols() &&
                      rs.ap_plan.rows() == lv.a.rows() &&
                      rs.ap_plan.cols() == lv.p.cols() &&
                      rs.ap_plan.nnz() == rs.ap.nnz(),
                  "level " << l << " A*P plan out of sync with its product");
    CPX_CHECK_MSG(rs.rap_plan.rows() == lv.r.rows() &&
                      rs.rap_plan.cols() == lv.p.cols() &&
                      rs.rap_plan.nnz() == coarse.nnz(),
                  "level " << l
                           << " Galerkin plan out of sync with the coarse "
                              "operator");
    if (!rs.p_frozen) {
      CPX_CHECK_MSG(rs.r_perm.size() == static_cast<std::size_t>(lv.p.nnz()),
                    "level " << l << " transpose permutation size mismatch");
      CPX_CHECK_MSG(sparse::same_structure(rs.s, lv.a),
                    "level " << l
                             << " smoothing operator lost A's structure");
      CPX_CHECK_MSG(rs.p_tent.rows() == lv.a.rows(),
                    "level " << l << " tentative prolongator row mismatch");
    }
  }
  const sparse::CsrMatrix& coarsest = levels_.back().a;
  CPX_CHECK_MSG(coarse_n_ == coarsest.rows(),
                "coarse factor order " << coarse_n_ << " != coarsest rows "
                                       << coarsest.rows());
  CPX_CHECK_MSG(coarse_factor_.size() ==
                    static_cast<std::size_t>(coarse_n_ * coarse_n_),
                "coarse Cholesky factor not n*n");
}

void AmgHierarchy::reset_values(const sparse::CsrMatrix& a) {
  CPX_REQUIRE(sparse::same_structure(a, levels_.front().a),
              "reset_values: matrix structure differs from the setup matrix");
  CPX_METRICS_SCOPE("amg/resetup");
  support::metrics::counter_add("amg/resetup", 1);

  levels_.front().a.mutable_values() = a.values();
  for (std::size_t l = 0; l + 1 < levels_.size(); ++l) {
    Level& lv = levels_[l];
    Resetup& rs = resetup_[l];
    if (!rs.p_frozen) {
      smoothing_operator_values(lv.a, options_.interp_omega, rs.s);
      if (options_.interp == InterpKind::kSmoothed) {
        rs.sp_plan.numeric_into(rs.s, rs.p_tent, lv.p);
      } else {  // kExtended
        rs.sp_plan.numeric_into(rs.s, rs.p_tent, rs.p_mid);
        rs.sp_plan2.numeric_into(rs.s, rs.p_mid, lv.p);
      }
      sparse::transpose_numeric(lv.p, rs.r_perm, lv.r);
    }
    rs.ap_plan.numeric_into(lv.a, lv.p, rs.ap);
    rs.rap_plan.numeric_into(lv.r, rs.ap, levels_[l + 1].a);
  }
  factor_coarse();

  if (check::deep()) {
    validate();
  }
}

void AmgHierarchy::serialize(ckpt::Writer& w) const {
  const sparse::CsrMatrix& fine = levels_.front().a;
  w.begin_section("amg/hierarchy");
  w.put_u32(static_cast<std::uint32_t>(num_levels()));
  w.put_i64(fine.rows());
  w.put_i64(fine.nnz());
  w.put_f64_span(fine.values());
  w.end_section();
}

void AmgHierarchy::restore(ckpt::Reader& r) {
  r.open_section("amg/hierarchy");
  const auto levels = static_cast<int>(r.get_u32());
  const std::int64_t rows = r.get_i64();
  const std::int64_t nnz = r.get_i64();
  const sparse::CsrMatrix& fine = levels_.front().a;
  CPX_CHECK_MSG(levels == num_levels() && rows == fine.rows() &&
                    nnz == fine.nnz(),
                "AmgHierarchy::restore: snapshot was taken from a different "
                "hierarchy (" << levels << " levels, " << rows << "x" << nnz
                              << " fine operator)");
  support::aligned_vector<double> values;
  r.get_f64_vec(values);
  CPX_CHECK_MSG(static_cast<std::int64_t>(values.size()) == nnz,
                "AmgHierarchy::restore: fine values truncated");
  r.end_section();
  // Replay the numeric-only re-setup: coarse operators, transfer values,
  // and the coarse factor are deterministic functions of the fine values,
  // so this reproduces the checkpointed hierarchy bitwise.
  sparse::CsrMatrix a(fine.rows(), fine.cols(), fine.row_offsets(),
                      fine.col_indices(), std::move(values),
                      sparse::Trusted{});
  reset_values(a);
}

const Level& AmgHierarchy::level(int l) const {
  CPX_REQUIRE(l >= 0 && l < num_levels(), "AmgHierarchy: bad level " << l);
  return levels_[static_cast<std::size_t>(l)];
}

double AmgHierarchy::operator_complexity() const {
  double total = 0.0;
  for (const Level& l : levels_) {
    total += static_cast<double>(l.a.nnz());
  }
  return total / static_cast<double>(levels_.front().a.nnz());
}

void AmgHierarchy::coarse_solve(std::span<double> x,
                                std::span<const double> b) {
  dense_cholesky_solve(coarse_factor_, coarse_n_, x, b, coarse_y_);
}

void AmgHierarchy::cycle_at(int level, std::span<double> x,
                            std::span<const double> b) {
  if (level == num_levels() - 1) {
    coarse_solve(x, b);
    return;
  }
  Level& lv = levels_[static_cast<std::size_t>(level)];
  Scratch& sc = scratch_[static_cast<std::size_t>(level)];

  for (int s = 0; s < options_.pre_sweeps; ++s) {
    smooth(lv.a, x, b, options_.smoother, sc.tmp);
  }
  residual(lv.a, x, b, sc.r);
  sparse::spmv(lv.r, sc.r, sc.bc);
  std::fill(sc.xc.begin(), sc.xc.end(), 0.0);

  if (options_.cycle == CycleKind::kV || level + 1 == num_levels() - 1) {
    cycle_at(level + 1, sc.xc, sc.bc);
  } else if (options_.cycle == CycleKind::kW) {
    // W-cycle: recurse twice, re-forming the coarse residual in between.
    // The recursion at level+1 works out of scratch_[level+1], so this
    // level's coarse-sized buffers stay live across it.
    cycle_at(level + 1, sc.xc, sc.bc);
    const auto& ac = levels_[static_cast<std::size_t>(level) + 1].a;
    residual(ac, sc.xc, sc.bc, sc.kres);
    std::fill(sc.kz.begin(), sc.kz.end(), 0.0);
    cycle_at(level + 1, sc.kz, sc.kres);
    support::blas1::xpby(sc.kz, 1.0, sc.xc);  // xc += correction
  } else {
    // K-cycle: a few steps of preconditioned CG on the coarse problem with
    // the next level's cycle as the preconditioner (Krylov acceleration of
    // the MG cycle; better convergence, more coarse work and collectives).
    const auto& ac = levels_[static_cast<std::size_t>(level) + 1].a;
    auto& res = sc.kres;
    auto& z = sc.kz;
    auto& p = sc.kp;
    auto& ap = sc.kap;
    std::copy(sc.bc.begin(), sc.bc.end(), res.begin());  // residual of xc = 0
    std::fill(z.begin(), z.end(), 0.0);
    cycle_at(level + 1, z, res);
    std::copy(z.begin(), z.end(), p.begin());
    double rz = support::blas1::dot(res, z);
    for (int it = 0; it < options_.kcycle_steps && rz != 0.0; ++it) {
      sparse::spmv(ac, p, ap);
      const double pap = support::blas1::dot(p, ap);
      if (pap <= 0.0) {
        break;
      }
      const double alpha = rz / pap;
      support::blas1::axpy2(alpha, p, ap, sc.xc, res);
      if (it + 1 == options_.kcycle_steps) {
        break;
      }
      std::fill(z.begin(), z.end(), 0.0);
      cycle_at(level + 1, z, res);
      const double rz_new = support::blas1::dot(res, z);
      const double beta = rz_new / rz;
      rz = rz_new;
      support::blas1::xpby(z, beta, p);
    }
  }

  // x += P xc
  sparse::spmv(lv.p, sc.xc, sc.tmp);
  support::blas1::xpby(sc.tmp, 1.0, x);
  for (int s = 0; s < options_.post_sweeps; ++s) {
    smooth(lv.a, x, b, options_.smoother, sc.tmp);
  }
}

void AmgHierarchy::cycle(std::span<double> x, std::span<const double> b) {
  CPX_REQUIRE(x.size() == static_cast<std::size_t>(levels_.front().a.rows()),
              "cycle: x size mismatch");
  CPX_REQUIRE(b.size() == x.size(), "cycle: b size mismatch");
  CPX_METRICS_SCOPE("amg/cycle");
  cycle_at(0, x, b);
}

int AmgHierarchy::solve(std::span<double> x, std::span<const double> b,
                        double tol, int max_cycles) {
  const double bnorm2 = support::blas1::norm2_squared(b);
  if (bnorm2 == 0.0) {
    std::fill(x.begin(), x.end(), 0.0);
    return 0;
  }
  const double stop2 = tol * tol * bnorm2;
  for (int c = 1; c <= max_cycles; ++c) {
    cycle(x, b);
    support::metrics::counter_add("amg/solve_cycles", 1);
    // Fused residual + norm (one sweep) into the level-0 scratch, which is
    // idle between cycles.
    const double rnorm2 = sparse::spmv_residual_norm2(
        levels_.front().a, x, b, scratch_.front().r);
    if (rnorm2 <= stop2) {
      return c;
    }
  }
  return max_cycles + 1;
}

}  // namespace cpx::amg
