#include "amg/hierarchy.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"
#include "support/metrics.hpp"

namespace cpx::amg {
namespace {

/// Dense Cholesky factorisation (row-major, lower triangle). Adds a tiny
/// diagonal shift and retries if the matrix is numerically semi-definite.
std::vector<double> dense_cholesky(const sparse::CsrMatrix& a) {
  const std::int64_t n = a.rows();
  std::vector<double> m(static_cast<std::size_t>(n * n), 0.0);
  for (std::int64_t r = 0; r < n; ++r) {
    const auto cols = a.row_cols(r);
    const auto vals = a.row_values(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      m[static_cast<std::size_t>(r * n + cols[i])] = vals[i];
    }
  }
  double max_diag = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    max_diag = std::max(max_diag, std::abs(m[static_cast<std::size_t>(i * n + i)]));
  }
  double shift = 0.0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    std::vector<double> f = m;
    for (std::int64_t i = 0; i < n; ++i) {
      f[static_cast<std::size_t>(i * n + i)] += shift;
    }
    bool ok = true;
    for (std::int64_t k = 0; k < n && ok; ++k) {
      double pivot = f[static_cast<std::size_t>(k * n + k)];
      for (std::int64_t j = 0; j < k; ++j) {
        pivot -= f[static_cast<std::size_t>(k * n + j)] *
                 f[static_cast<std::size_t>(k * n + j)];
      }
      if (pivot <= 0.0) {
        ok = false;
        break;
      }
      const double lkk = std::sqrt(pivot);
      f[static_cast<std::size_t>(k * n + k)] = lkk;
      for (std::int64_t i = k + 1; i < n; ++i) {
        double v = f[static_cast<std::size_t>(i * n + k)];
        for (std::int64_t j = 0; j < k; ++j) {
          v -= f[static_cast<std::size_t>(i * n + j)] *
               f[static_cast<std::size_t>(k * n + j)];
        }
        f[static_cast<std::size_t>(i * n + k)] = v / lkk;
      }
    }
    if (ok) {
      return f;
    }
    shift = shift == 0.0 ? 1e-12 * std::max(max_diag, 1.0) : shift * 100.0;
  }
  CPX_CHECK_MSG(false, "dense_cholesky: coarse operator not SPD");
}

void dense_cholesky_solve(const std::vector<double>& f, std::int64_t n,
                          std::span<double> x, std::span<const double> b) {
  std::vector<double> y(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    double v = b[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < i; ++j) {
      v -= f[static_cast<std::size_t>(i * n + j)] * y[static_cast<std::size_t>(j)];
    }
    y[static_cast<std::size_t>(i)] = v / f[static_cast<std::size_t>(i * n + i)];
  }
  for (std::int64_t ii = n; ii-- > 0;) {
    double v = y[static_cast<std::size_t>(ii)];
    for (std::int64_t j = ii + 1; j < n; ++j) {
      v -= f[static_cast<std::size_t>(j * n + ii)] *
           x[static_cast<std::size_t>(j)];
    }
    x[static_cast<std::size_t>(ii)] =
        v / f[static_cast<std::size_t>(ii * n + ii)];
  }
}

double norm2(std::span<const double> v) {
  double s = 0.0;
  for (double x : v) {
    s += x * x;
  }
  return std::sqrt(s);
}

}  // namespace

AmgHierarchy::AmgHierarchy(sparse::CsrMatrix a, const AmgOptions& options)
    : options_(options) {
  CPX_REQUIRE(a.rows() == a.cols(), "AmgHierarchy: matrix must be square");
  CPX_REQUIRE(options.max_levels >= 1, "AmgHierarchy: bad max_levels");
  CPX_METRICS_SCOPE("amg/setup");

  levels_.push_back({std::move(a), {}, {}});
  while (num_levels() < options_.max_levels &&
         levels_.back().a.rows() > options_.coarse_size) {
    const sparse::CsrMatrix& fine = levels_.back().a;
    const sparse::CsrMatrix strength =
        strength_graph(fine, options_.strength_theta);
    const Aggregation agg = aggregate_greedy(strength);
    if (agg.num_aggregates >= fine.rows()) {
      break;  // no coarsening progress (e.g. fully decoupled matrix)
    }
    sparse::CsrMatrix p =
        build_interpolation(fine, agg, options_.interp, options_.interp_omega);
    if (options_.interp_truncation > 0.0) {
      p = truncate_prolongator(p, options_.interp_truncation);
    }
    sparse::CsrMatrix r = sparse::transpose(p);
    sparse::CsrMatrix coarse =
        options_.spgemm == SpgemmKind::kSpa
            ? sparse::spgemm_spa(r, sparse::spgemm_spa(fine, p))
            : sparse::spgemm_twopass(r, sparse::spgemm_twopass(fine, p));
    levels_.back().p = std::move(p);
    levels_.back().r = std::move(r);
    levels_.push_back({std::move(coarse), {}, {}});
  }

  coarse_n_ = levels_.back().a.rows();
  coarse_factor_ = dense_cholesky(levels_.back().a);

  scratch_.resize(levels_.size());
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const auto n = static_cast<std::size_t>(levels_[l].a.rows());
    scratch_[l].r.assign(n, 0.0);
    scratch_[l].tmp.assign(n, 0.0);
    if (l + 1 < levels_.size()) {
      const auto nc = static_cast<std::size_t>(levels_[l + 1].a.rows());
      scratch_[l].bc.assign(nc, 0.0);
      scratch_[l].xc.assign(nc, 0.0);
    }
  }
}

const Level& AmgHierarchy::level(int l) const {
  CPX_REQUIRE(l >= 0 && l < num_levels(), "AmgHierarchy: bad level " << l);
  return levels_[static_cast<std::size_t>(l)];
}

double AmgHierarchy::operator_complexity() const {
  double total = 0.0;
  for (const Level& l : levels_) {
    total += static_cast<double>(l.a.nnz());
  }
  return total / static_cast<double>(levels_.front().a.nnz());
}

void AmgHierarchy::coarse_solve(std::span<double> x,
                                std::span<const double> b) {
  dense_cholesky_solve(coarse_factor_, coarse_n_, x, b);
}

void AmgHierarchy::cycle_at(int level, std::span<double> x,
                            std::span<const double> b) {
  if (level == num_levels() - 1) {
    coarse_solve(x, b);
    return;
  }
  Level& lv = levels_[static_cast<std::size_t>(level)];
  Scratch& sc = scratch_[static_cast<std::size_t>(level)];

  for (int s = 0; s < options_.pre_sweeps; ++s) {
    smooth(lv.a, x, b, options_.smoother, sc.tmp);
  }
  residual(lv.a, x, b, sc.r);
  sparse::spmv(lv.r, sc.r, sc.bc);
  std::fill(sc.xc.begin(), sc.xc.end(), 0.0);

  if (options_.cycle == CycleKind::kV || level + 1 == num_levels() - 1) {
    cycle_at(level + 1, sc.xc, sc.bc);
  } else if (options_.cycle == CycleKind::kW) {
    // W-cycle: recurse twice, re-forming the coarse residual in between.
    cycle_at(level + 1, sc.xc, sc.bc);
    const auto& ac = levels_[static_cast<std::size_t>(level) + 1].a;
    const auto nc = static_cast<std::size_t>(ac.rows());
    std::vector<double> coarse_res(nc);
    residual(ac, sc.xc, sc.bc, coarse_res);
    std::vector<double> correction(nc, 0.0);
    cycle_at(level + 1, correction, coarse_res);
    for (std::size_t i = 0; i < nc; ++i) {
      sc.xc[i] += correction[i];
    }
  } else {
    // K-cycle: a few steps of preconditioned CG on the coarse problem with
    // the next level's cycle as the preconditioner (Krylov acceleration of
    // the MG cycle; better convergence, more coarse work and collectives).
    const auto& ac = levels_[static_cast<std::size_t>(level) + 1].a;
    const auto nc = static_cast<std::size_t>(ac.rows());
    std::vector<double> res(sc.bc);   // residual of xc = 0
    std::vector<double> z(nc, 0.0);
    std::vector<double> p(nc);
    std::vector<double> ap(nc);
    cycle_at(level + 1, z, res);
    p = z;
    double rz = 0.0;
    for (std::size_t i = 0; i < nc; ++i) {
      rz += res[i] * z[i];
    }
    for (int it = 0; it < options_.kcycle_steps && rz != 0.0; ++it) {
      sparse::spmv(ac, p, ap);
      double pap = 0.0;
      for (std::size_t i = 0; i < nc; ++i) {
        pap += p[i] * ap[i];
      }
      if (pap <= 0.0) {
        break;
      }
      const double alpha = rz / pap;
      for (std::size_t i = 0; i < nc; ++i) {
        sc.xc[i] += alpha * p[i];
        res[i] -= alpha * ap[i];
      }
      if (it + 1 == options_.kcycle_steps) {
        break;
      }
      std::fill(z.begin(), z.end(), 0.0);
      cycle_at(level + 1, z, res);
      double rz_new = 0.0;
      for (std::size_t i = 0; i < nc; ++i) {
        rz_new += res[i] * z[i];
      }
      const double beta = rz_new / rz;
      rz = rz_new;
      for (std::size_t i = 0; i < nc; ++i) {
        p[i] = z[i] + beta * p[i];
      }
    }
  }

  // x += P xc
  const auto n = static_cast<std::size_t>(lv.a.rows());
  sparse::spmv(lv.p, sc.xc, sc.tmp);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] += sc.tmp[i];
  }
  for (int s = 0; s < options_.post_sweeps; ++s) {
    smooth(lv.a, x, b, options_.smoother, sc.tmp);
  }
}

void AmgHierarchy::cycle(std::span<double> x, std::span<const double> b) {
  CPX_REQUIRE(x.size() == static_cast<std::size_t>(levels_.front().a.rows()),
              "cycle: x size mismatch");
  CPX_REQUIRE(b.size() == x.size(), "cycle: b size mismatch");
  CPX_METRICS_SCOPE("amg/cycle");
  cycle_at(0, x, b);
}

int AmgHierarchy::solve(std::span<double> x, std::span<const double> b,
                        double tol, int max_cycles) {
  const double bnorm = norm2(b);
  if (bnorm == 0.0) {
    std::fill(x.begin(), x.end(), 0.0);
    return 0;
  }
  std::vector<double> r(x.size());
  for (int c = 1; c <= max_cycles; ++c) {
    cycle(x, b);
    support::metrics::counter_add("amg/solve_cycles", 1);
    residual(levels_.front().a, x, b, r);
    if (norm2(r) / bnorm <= tol) {
      return c;
    }
  }
  return max_cycles + 1;
}

}  // namespace cpx::amg
