#pragma once
// Smoothers for the AMG hierarchy (paper §IV-B, "AMG setup" optimisations).
//
// The paper recommends Hybrid Gauss-Seidel — Gauss-Seidel within a task,
// Jacobi across tasks — as the smoother for large problems. We implement
// plain (weighted) Jacobi, lexicographic Gauss-Seidel, the hybrid variant
// (block-local GS with Jacobi coupling across hybrid_blocks blocks, each
// block executed as one task on the shared thread pool — hypre's hybrid
// smoother), and l1-Jacobi (unconditionally convergent for SPD matrices).
// The Jacobi variants and the hybrid blocks run on support::parallel_for;
// all smoothers are bitwise deterministic at any thread count
// (docs/parallelism.md).

#include <span>

#include "sparse/csr.hpp"

namespace cpx::amg {

enum class SmootherKind { kJacobi, kGaussSeidel, kHybridGs, kL1Jacobi };

struct SmootherOptions {
  SmootherKind kind = SmootherKind::kHybridGs;
  double jacobi_omega = 0.7;  ///< damping for (l1-)Jacobi
  int hybrid_blocks = 8;      ///< task count for Hybrid GS (one block = one task)
};

/// One in-place smoothing sweep on A x = b.
/// `scratch` must have size >= A.rows() (used by the Jacobi variants).
void smooth(const sparse::CsrMatrix& a, std::span<double> x,
            std::span<const double> b, const SmootherOptions& options,
            std::span<double> scratch);

/// Residual r = b - A x.
void residual(const sparse::CsrMatrix& a, std::span<const double> x,
              std::span<const double> b, std::span<double> r);

}  // namespace cpx::amg
