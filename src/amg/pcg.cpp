#include "amg/pcg.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "amg/hierarchy.hpp"
#include "support/blas1.hpp"
#include "support/check.hpp"
#include "support/metrics.hpp"

namespace cpx::amg {

void PcgWorkspace::resize(std::size_t n) {
  if (r.size() == n) {
    return;
  }
  // Workspace sizing is the one place the solve path may allocate: it runs
  // once per problem size and the early-return keeps repeat solves free
  // (tests/solver_alloc_test.cpp proves the steady state allocates nothing).
  r.assign(n, 0.0);      // cpx-lint: allow(alloc)
  z.assign(n, 0.0);      // cpx-lint: allow(alloc)
  p.assign(n, 0.0);      // cpx-lint: allow(alloc)
  ap.assign(n, 0.0);     // cpx-lint: allow(alloc)
  r_old.assign(n, 0.0);  // cpx-lint: allow(alloc)
}

PcgResult pcg(const sparse::CsrMatrix& a, std::span<double> x,
              std::span<const double> b, double tol, int max_iterations,
              const Preconditioner& precond) {
  PcgWorkspace workspace;
  return pcg(a, x, b, tol, max_iterations, precond, workspace);
}

PcgResult pcg(const sparse::CsrMatrix& a, std::span<double> x,
              std::span<const double> b, double tol, int max_iterations,
              const Preconditioner& precond, PcgWorkspace& workspace) {
  namespace blas1 = support::blas1;
  const auto n = static_cast<std::size_t>(a.rows());
  CPX_REQUIRE(x.size() == n && b.size() == n, "pcg: vector size mismatch");
  CPX_METRICS_SCOPE("amg/pcg");

  // Amortised: no-op after the first solve at this size.
  workspace.resize(n);  // cpx-lint: allow(alloc)
  auto& r = workspace.r;
  auto& z = workspace.z;
  auto& p = workspace.p;
  auto& ap = workspace.ap;
  auto& r_old = workspace.r_old;

  // Fused r = b − A·x and ‖r‖² in one sweep.
  double rnorm2 = sparse::spmv_residual_norm2(a, x, b, r);
  const double bnorm2 = blas1::norm2_squared(b);
  const double bnorm = std::sqrt(bnorm2);
  const double stop2 =
      tol * tol * (bnorm2 > 0.0 ? bnorm2 : 1.0);

  PcgResult result;
  if (rnorm2 <= stop2) {
    result.converged = true;
    result.relative_residual = bnorm > 0.0 ? std::sqrt(rnorm2) / bnorm : 0.0;
    return result;
  }

  if (precond) {
    std::fill(z.begin(), z.end(), 0.0);  // contract: precond gets zeroed z
    precond(z, r);
  } else {
    std::copy(r.begin(), r.end(), z.begin());
  }
  std::copy(z.begin(), z.end(), p.begin());
  double rz = blas1::dot(r, z);
  // Flexible CG: with a (possibly nonsymmetric or nonlinear) preconditioner
  // such as an AMG cycle with Gauss-Seidel smoothing, the Polak-Ribiere
  // beta  z_new^T (r_new - r_old) / z_old^T r_old  keeps CG convergent
  // where the Fletcher-Reeves form stalls. For an exact SPD preconditioner
  // the two coincide.

  for (int it = 1; it <= max_iterations; ++it) {
    sparse::spmv(a, p, ap);
    const double pap = blas1::dot(p, ap);
    CPX_CHECK_MSG(pap > 0.0, "pcg: matrix not SPD (p^T A p = " << pap << ")");
    const double alpha = rz / pap;
    std::copy(r.begin(), r.end(), r_old.begin());
    // Fused x += α·p, r −= α·ap, ‖r‖² — one pass over four vectors instead
    // of an update sweep plus a norm sweep.
    rnorm2 = blas1::axpy2_norm2(alpha, p, ap, x, r);
    result.iterations = it;
    support::metrics::counter_add("amg/pcg_iterations", 1);
    if (rnorm2 <= stop2) {
      result.converged = true;
      break;
    }
    double beta;
    if (precond) {
      std::fill(z.begin(), z.end(), 0.0);  // contract: precond gets zeroed z
      precond(z, r);
      beta = blas1::dot_diff(z, r, r_old) / rz;
      rz = blas1::dot(r, z);
    } else {
      std::copy(r.begin(), r.end(), z.begin());
      const double rz_new = rnorm2;  // z ≡ r, so r·z = ‖r‖², already computed
      beta = rz_new / rz;
      rz = rz_new;
    }
    if (!(beta > 0.0) || rz <= 0.0) {
      // Restart on loss of conjugacy (possible with flexible
      // preconditioning); steepest-descent step in the z direction.
      beta = 0.0;
      rz = blas1::dot(r, z);
      CPX_CHECK_MSG(rz > 0.0, "pcg: preconditioner not positive definite");
    }
    blas1::xpby(z, beta, p);  // p = z + β·p
  }
  result.relative_residual =
      bnorm > 0.0 ? std::sqrt(rnorm2) / bnorm : std::sqrt(rnorm2);
  return result;
}

Preconditioner make_jacobi_preconditioner(const sparse::CsrMatrix& a) {
  std::vector<double> inv_diag(static_cast<std::size_t>(a.rows()));
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    const double d = a.at(r, r);
    CPX_REQUIRE(d != 0.0, "jacobi preconditioner: zero diagonal at " << r);
    inv_diag[static_cast<std::size_t>(r)] = 1.0 / d;
  }
  return [inv_diag = std::move(inv_diag)](std::span<double> z,
                                          std::span<const double> r) {
    for (std::size_t i = 0; i < z.size(); ++i) {
      z[i] = inv_diag[i] * r[i];
    }
  };
}

Preconditioner make_amg_preconditioner(AmgHierarchy& hierarchy) {
  // pcg's contract zero-fills z before every application, so the cycle can
  // take it as the initial guess directly (no duplicate clearing pass).
  return [&hierarchy](std::span<double> z, std::span<const double> r) {
    hierarchy.cycle(z, r);
  };
}

}  // namespace cpx::amg
