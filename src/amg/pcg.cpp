#include "amg/pcg.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "amg/hierarchy.hpp"
#include "support/check.hpp"
#include "support/metrics.hpp"

namespace cpx::amg {
namespace {

double dot(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    s += a[i] * b[i];
  }
  return s;
}

}  // namespace

PcgResult pcg(const sparse::CsrMatrix& a, std::span<double> x,
              std::span<const double> b, double tol, int max_iterations,
              const Preconditioner& precond) {
  const auto n = static_cast<std::size_t>(a.rows());
  CPX_REQUIRE(x.size() == n && b.size() == n, "pcg: vector size mismatch");
  CPX_METRICS_SCOPE("amg/pcg");

  std::vector<double> r(n);
  std::vector<double> z(n);
  std::vector<double> p(n);
  std::vector<double> ap(n);

  sparse::spmv(a, x, r);
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = b[i] - r[i];
  }
  const double bnorm = std::sqrt(dot(b, b));
  const double stop = tol * (bnorm > 0.0 ? bnorm : 1.0);

  PcgResult result;
  double rnorm = std::sqrt(dot(r, r));
  if (rnorm <= stop) {
    result.converged = true;
    result.relative_residual = bnorm > 0.0 ? rnorm / bnorm : 0.0;
    return result;
  }

  if (precond) {
    precond(z, r);
  } else {
    std::copy(r.begin(), r.end(), z.begin());
  }
  p = z;
  double rz = dot(r, z);
  // Flexible CG: with a (possibly nonsymmetric or nonlinear) preconditioner
  // such as an AMG cycle with Gauss-Seidel smoothing, the Polak-Ribiere
  // beta  z_new^T (r_new - r_old) / z_old^T r_old  keeps CG convergent
  // where the Fletcher-Reeves form stalls. For an exact SPD preconditioner
  // the two coincide.
  std::vector<double> r_old(n);

  for (int it = 1; it <= max_iterations; ++it) {
    sparse::spmv(a, p, ap);
    const double pap = dot(p, ap);
    CPX_CHECK_MSG(pap > 0.0, "pcg: matrix not SPD (p^T A p = " << pap << ")");
    const double alpha = rz / pap;
    std::copy(r.begin(), r.end(), r_old.begin());
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    rnorm = std::sqrt(dot(r, r));
    result.iterations = it;
    support::metrics::counter_add("amg/pcg_iterations", 1);
    if (rnorm <= stop) {
      result.converged = true;
      break;
    }
    double beta;
    if (precond) {
      std::fill(z.begin(), z.end(), 0.0);
      precond(z, r);
      double zdr = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        zdr += z[i] * (r[i] - r_old[i]);
      }
      beta = zdr / rz;
      rz = dot(r, z);
    } else {
      std::copy(r.begin(), r.end(), z.begin());
      const double rz_new = dot(r, z);
      beta = rz_new / rz;
      rz = rz_new;
    }
    if (!(beta > 0.0) || rz <= 0.0) {
      // Restart on loss of conjugacy (possible with flexible
      // preconditioning); steepest-descent step in the z direction.
      beta = 0.0;
      rz = dot(r, z);
      CPX_CHECK_MSG(rz > 0.0, "pcg: preconditioner not positive definite");
    }
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = z[i] + beta * p[i];
    }
  }
  result.relative_residual = bnorm > 0.0 ? rnorm / bnorm : rnorm;
  return result;
}

Preconditioner make_jacobi_preconditioner(const sparse::CsrMatrix& a) {
  std::vector<double> inv_diag(static_cast<std::size_t>(a.rows()));
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    const double d = a.at(r, r);
    CPX_REQUIRE(d != 0.0, "jacobi preconditioner: zero diagonal at " << r);
    inv_diag[static_cast<std::size_t>(r)] = 1.0 / d;
  }
  return [inv_diag = std::move(inv_diag)](std::span<double> z,
                                          std::span<const double> r) {
    for (std::size_t i = 0; i < z.size(); ++i) {
      z[i] = inv_diag[i] * r[i];
    }
  };
}

Preconditioner make_amg_preconditioner(AmgHierarchy& hierarchy) {
  return [&hierarchy](std::span<double> z, std::span<const double> r) {
    std::fill(z.begin(), z.end(), 0.0);
    hierarchy.cycle(z, r);
  };
}

}  // namespace cpx::amg
