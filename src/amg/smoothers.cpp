#include "amg/smoothers.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/simd.hpp"

namespace cpx::amg {
namespace {

constexpr std::int64_t kSmootherGrain = 2048;  ///< rows per task

template <int W>
void jacobi_sweep(const sparse::CsrMatrix& a, std::span<double> x,
                  std::span<const double> b, double omega, bool l1,
                  std::span<double> scratch) {
  const std::int64_t n = a.rows();
  const std::int64_t* offsets = a.row_offsets().data();
  const std::int32_t* colidx = a.col_indices().data();
  const double* vals = a.values().data();
  const double* px = x.data();
  const double* pb = b.data();
  double* ps = scratch.data();
  // Row-parallel: every row reads the frozen x and writes scratch[r] only,
  // so the sweep is bitwise identical at any thread count. Short rows keep
  // the historical branchy loop (identical at every pack width because it
  // is scalar); long rows vectorize the row dot and the l1 |a_ij| sum with
  // the fixed-lane tree and recover the off-diagonal parts by subtracting
  // the diagonal term. The short/long branch depends on the row length
  // alone, never on the active width, so bits are width-invariant.
  support::parallel_for(0, n, kSmootherGrain, [&](std::int64_t r0,
                                                  std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const std::int64_t k0 = offsets[r];
      const std::int64_t k1 = offsets[r + 1];
      double diag = 0.0;
      double off_abs = 0.0;
      double sum = 0.0;
      if (k1 - k0 < support::simd::kReduceLanes) {
        for (std::int64_t k = k0; k < k1; ++k) {
          if (colidx[k] == r) {
            diag = vals[k];
          } else {
            sum += vals[k] * px[colidx[k]];
            off_abs += std::abs(vals[k]);
          }
        }
      } else {
        for (std::int64_t k = k0; k < k1; ++k) {
          if (colidx[k] == r) {
            diag = vals[k];
            break;
          }
        }
        const double rowdot = support::simd::tree_reduce<W>(
            k0, k1,
            [&](std::int64_t k) {
              return support::simd::pack<W>::load(vals + k) *
                     support::simd::pack<W>::gather(px, colidx + k);
            },
            [&](std::int64_t k) { return vals[k] * px[colidx[k]]; });
        sum = rowdot - diag * px[r];
        if (l1) {
          const double abs_all = support::simd::tree_reduce<W>(
              k0, k1,
              [&](std::int64_t k) {
                return support::simd::abs(
                    support::simd::pack<W>::load(vals + k));
              },
              [&](std::int64_t k) { return std::abs(vals[k]); });
          off_abs = abs_all - std::abs(diag);
        }
      }
      const double d = l1 ? diag + off_abs : diag;
      CPX_CHECK_MSG(d != 0.0, "jacobi: zero (l1-)diagonal at row " << r);
      const double x_new = (pb[r] - sum) / d;
      ps[r] = px[r] + omega * (x_new - px[r]);
    }
  });
  support::parallel_for(0, n, kSmootherGrain, [&](std::int64_t r0,
                                                  std::int64_t r1) {
    std::copy(scratch.begin() + r0, scratch.begin() + r1, x.begin() + r0);
  });
}

/// Gauss-Seidel restricted to rows [row_begin, row_end): uses updated x
/// inside the block. When the off-block coupling should be Jacobi-style,
/// callers pass a frozen copy of x in `x_old` for columns outside the block.
void gs_block(const sparse::CsrMatrix& a, std::span<double> x,
              std::span<const double> b, std::int64_t row_begin,
              std::int64_t row_end, std::span<const double> x_old) {
  for (std::int64_t r = row_begin; r < row_end; ++r) {
    const auto cols = a.row_cols(r);
    const auto vals = a.row_values(r);
    double diag = 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < cols.size(); ++i) {
      const std::int64_t c = cols[i];
      if (c == r) {
        diag = vals[i];
      } else if (x_old.empty() || (c >= row_begin && c < row_end)) {
        sum += vals[i] * x[static_cast<std::size_t>(c)];
      } else {
        sum += vals[i] * x_old[static_cast<std::size_t>(c)];
      }
    }
    CPX_CHECK_MSG(diag != 0.0, "gauss-seidel: zero diagonal at row " << r);
    x[static_cast<std::size_t>(r)] = (b[static_cast<std::size_t>(r)] - sum) / diag;
  }
}

}  // namespace

void smooth(const sparse::CsrMatrix& a, std::span<double> x,
            std::span<const double> b, const SmootherOptions& options,
            std::span<double> scratch) {
  const std::int64_t n = a.rows();
  CPX_REQUIRE(x.size() == static_cast<std::size_t>(n) &&
                  b.size() == static_cast<std::size_t>(n),
              "smooth: vector size mismatch");
  CPX_REQUIRE(scratch.size() >= static_cast<std::size_t>(n),
              "smooth: scratch too small");
  CPX_METRICS_SCOPE("amg/smooth");
  if (support::metrics::enabled()) {
    // Roofline accounting (docs/observability.md): one multiply-add per
    // nonzero plus the per-row relaxation update; streamed bytes cover
    // values + column indices + x gathers + b reads + scratch/x writes.
    support::metrics::counter_add("amg/smooth_flops", 2 * a.nnz() + 5 * n);
    support::metrics::counter_add(
        "amg/smooth_bytes",
        a.nnz() * static_cast<std::int64_t>(sizeof(double) +
                                            sizeof(std::int32_t) +
                                            sizeof(double)) +
            4 * n * static_cast<std::int64_t>(sizeof(double)));
  }
  switch (options.kind) {
    case SmootherKind::kJacobi:
      support::simd::dispatch([&](auto width) {
        jacobi_sweep<decltype(width)::value>(a, x, b, options.jacobi_omega,
                                             /*l1=*/false, scratch);
      });
      return;
    case SmootherKind::kL1Jacobi:
      support::simd::dispatch([&](auto width) {
        jacobi_sweep<decltype(width)::value>(a, x, b, options.jacobi_omega,
                                             /*l1=*/true, scratch);
      });
      return;
    case SmootherKind::kGaussSeidel:
      gs_block(a, x, b, 0, n, {});
      return;
    case SmootherKind::kHybridGs: {
      // Freeze x for the inter-block (Jacobi) coupling, then sweep each
      // block with GS. Blocks only read the frozen copy outside their own
      // row range, so they are independent: each block is one task on the
      // thread pool — "Gauss-Seidel within a task, Jacobi across tasks" —
      // and the result is bitwise identical at any thread count because
      // the block decomposition depends on hybrid_blocks alone.
      CPX_REQUIRE(options.hybrid_blocks >= 1, "smooth: bad hybrid_blocks");
      std::copy(x.begin(), x.begin() + n, scratch.begin());
      const std::span<const double> frozen(scratch.data(),
                                           static_cast<std::size_t>(n));
      const std::int64_t blocks =
          std::min<std::int64_t>(options.hybrid_blocks, std::max<std::int64_t>(n, 1));
      support::parallel_for(0, blocks, 1, [&](std::int64_t blk0,
                                              std::int64_t blk1) {
        for (std::int64_t blk = blk0; blk < blk1; ++blk) {
          const std::int64_t lo = n * blk / blocks;
          const std::int64_t hi = n * (blk + 1) / blocks;
          gs_block(a, x, b, lo, hi, frozen);
        }
      });
      return;
    }
  }
  CPX_CHECK_MSG(false, "smooth: unknown smoother kind");
}

void residual(const sparse::CsrMatrix& a, std::span<const double> x,
              std::span<const double> b, std::span<double> r) {
  CPX_REQUIRE(r.size() == static_cast<std::size_t>(a.rows()),
              "residual: size mismatch");
  sparse::spmv_residual(a, x, b, r);
}

}  // namespace cpx::amg
