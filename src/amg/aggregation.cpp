#include "amg/aggregation.hpp"

#include <cmath>
#include <vector>

#include "support/check.hpp"

namespace cpx::amg {

sparse::CsrMatrix strength_graph(const sparse::CsrMatrix& a, double theta) {
  CPX_REQUIRE(a.rows() == a.cols(), "strength_graph: matrix must be square");
  CPX_REQUIRE(theta >= 0.0 && theta < 1.0, "strength_graph: bad theta");
  const std::int64_t n = a.rows();
  std::vector<double> diag(static_cast<std::size_t>(n), 0.0);
  for (std::int64_t r = 0; r < n; ++r) {
    diag[static_cast<std::size_t>(r)] = std::abs(a.at(r, r));
  }
  std::vector<sparse::Triplet> kept;
  for (std::int64_t r = 0; r < n; ++r) {
    const auto cols = a.row_cols(r);
    const auto vals = a.row_values(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      const std::int64_t c = cols[i];
      if (c == r) {
        continue;
      }
      const double bound =
          theta * std::sqrt(diag[static_cast<std::size_t>(r)] *
                            diag[static_cast<std::size_t>(c)]);
      if (std::abs(vals[i]) >= bound) {
        kept.push_back({r, c, vals[i]});
      }
    }
  }
  return sparse::csr_from_triplets(n, n, kept);
}

Aggregation aggregate_greedy(const sparse::CsrMatrix& strength) {
  const std::int64_t n = strength.rows();
  Aggregation agg;
  agg.aggregate_of.assign(static_cast<std::size_t>(n), -1);

  // Pass 1: roots — a node all of whose strong neighbours are free seeds a
  // new aggregate containing itself and those neighbours.
  for (std::int64_t r = 0; r < n; ++r) {
    if (agg.aggregate_of[static_cast<std::size_t>(r)] >= 0) {
      continue;
    }
    bool all_free = true;
    for (std::int32_t c : strength.row_cols(r)) {
      if (agg.aggregate_of[static_cast<std::size_t>(c)] >= 0) {
        all_free = false;
        break;
      }
    }
    if (!all_free) {
      continue;
    }
    const auto id = static_cast<std::int32_t>(agg.num_aggregates++);
    agg.aggregate_of[static_cast<std::size_t>(r)] = id;
    for (std::int32_t c : strength.row_cols(r)) {
      agg.aggregate_of[static_cast<std::size_t>(c)] = id;
    }
  }
  // Pass 2: attach leftovers to a neighbouring aggregate, or make
  // singletons for isolated nodes.
  for (std::int64_t r = 0; r < n; ++r) {
    if (agg.aggregate_of[static_cast<std::size_t>(r)] >= 0) {
      continue;
    }
    std::int32_t target = -1;
    for (std::int32_t c : strength.row_cols(r)) {
      if (agg.aggregate_of[static_cast<std::size_t>(c)] >= 0) {
        target = agg.aggregate_of[static_cast<std::size_t>(c)];
        break;
      }
    }
    if (target < 0) {
      target = static_cast<std::int32_t>(agg.num_aggregates++);
    }
    agg.aggregate_of[static_cast<std::size_t>(r)] = target;
  }
  return agg;
}

sparse::CsrMatrix tentative_prolongator(const Aggregation& agg,
                                        std::int64_t fine_size) {
  CPX_REQUIRE(agg.aggregate_of.size() == static_cast<std::size_t>(fine_size),
              "tentative_prolongator: size mismatch");
  std::vector<sparse::Triplet> t;
  t.reserve(static_cast<std::size_t>(fine_size));
  for (std::int64_t i = 0; i < fine_size; ++i) {
    t.push_back({i, agg.aggregate_of[static_cast<std::size_t>(i)], 1.0});
  }
  return sparse::csr_from_triplets(fine_size, agg.num_aggregates, t);
}

sparse::CsrMatrix smoothing_operator(const sparse::CsrMatrix& a,
                                     double omega) {
  const std::int64_t n = a.rows();
  std::vector<sparse::Triplet> st;
  st.reserve(static_cast<std::size_t>(a.nnz()));
  for (std::int64_t r = 0; r < n; ++r) {
    const double d = a.at(r, r);
    CPX_CHECK_MSG(d != 0.0, "smoothing_operator: zero diagonal at " << r);
    const auto cols = a.row_cols(r);
    const auto vals = a.row_values(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      const double base = cols[i] == r ? 1.0 : 0.0;
      st.push_back({r, cols[i], base - omega * vals[i] / d});
    }
  }
  return sparse::csr_from_triplets(n, n, st);
}

void smoothing_operator_values(const sparse::CsrMatrix& a, double omega,
                               sparse::CsrMatrix& s) {
  CPX_REQUIRE(sparse::same_structure(a, s),
              "smoothing_operator_values: structure mismatch");
  const auto& offsets = a.row_offsets();
  const auto& cols = a.col_indices();
  const auto& av = a.values();
  auto& sv = s.mutable_values();
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    const double d = a.at(r, r);
    CPX_CHECK_MSG(d != 0.0,
                  "smoothing_operator_values: zero diagonal at " << r);
    for (std::int64_t k = offsets[static_cast<std::size_t>(r)];
         k < offsets[static_cast<std::size_t>(r) + 1]; ++k) {
      const auto ks = static_cast<std::size_t>(k);
      const double base = cols[ks] == static_cast<std::int32_t>(r) ? 1.0 : 0.0;
      sv[ks] = base - omega * av[ks] / d;
    }
  }
}

namespace {

/// One damped-Jacobi smoothing application: P <- (I - omega D^-1 A) P.
sparse::CsrMatrix smooth_prolongator(const sparse::CsrMatrix& a,
                                     const sparse::CsrMatrix& p,
                                     double omega) {
  const sparse::CsrMatrix s = smoothing_operator(a, omega);
  return sparse::spgemm_spa(s, p);
}

}  // namespace

sparse::CsrMatrix build_interpolation(const sparse::CsrMatrix& a,
                                      const Aggregation& agg,
                                      InterpKind kind, double omega) {
  sparse::CsrMatrix p = tentative_prolongator(agg, a.rows());
  switch (kind) {
    case InterpKind::kTentative:
      return p;
    case InterpKind::kSmoothed:
      return smooth_prolongator(a, p, omega);
    case InterpKind::kExtended: {
      // Two applications widen the stencil to neighbours' neighbours —
      // the distance-2 coverage of extended(+i) interpolation, at the cost
      // of a denser P (and a denser Galerkin product).
      p = smooth_prolongator(a, p, omega);
      return smooth_prolongator(a, p, omega);
    }
  }
  CPX_CHECK_MSG(false, "build_interpolation: unknown kind");
}

sparse::CsrMatrix truncate_prolongator(const sparse::CsrMatrix& p,
                                       double threshold) {
  CPX_REQUIRE(threshold >= 0.0 && threshold < 1.0,
              "truncate_prolongator: bad threshold");
  if (threshold == 0.0) {
    return p;
  }
  std::vector<sparse::Triplet> kept;
  kept.reserve(static_cast<std::size_t>(p.nnz()));
  for (std::int64_t r = 0; r < p.rows(); ++r) {
    const auto cols = p.row_cols(r);
    const auto vals = p.row_values(r);
    if (cols.empty()) {
      continue;
    }
    double max_abs = 0.0;
    double row_sum = 0.0;
    for (double v : vals) {
      max_abs = std::max(max_abs, std::abs(v));
      row_sum += v;
    }
    const double cut = threshold * max_abs;
    double kept_sum = 0.0;
    std::size_t first_kept = kept.size();
    for (std::size_t i = 0; i < cols.size(); ++i) {
      if (std::abs(vals[i]) >= cut) {
        kept.push_back({r, cols[i], vals[i]});
        kept_sum += vals[i];
      }
    }
    // Rescale survivors to preserve the row sum (so constants still
    // interpolate exactly); degenerate rows keep their largest entry.
    if (kept.size() == first_kept) {
      for (std::size_t i = 0; i < cols.size(); ++i) {
        if (std::abs(vals[i]) == max_abs) {
          kept.push_back({r, cols[i], row_sum});
          break;
        }
      }
    } else if (kept_sum != 0.0 && row_sum != 0.0) {
      const double scale = row_sum / kept_sum;
      for (std::size_t i = first_kept; i < kept.size(); ++i) {
        kept[i].value *= scale;
      }
    }
  }
  return sparse::csr_from_triplets(p.rows(), p.cols(), kept);
}

}  // namespace cpx::amg
