#pragma once
// AMG hierarchy setup and cycling (V-cycle and Krylov-accelerated K-cycle).
//
// Setup: strength graph -> greedy aggregation -> interpolation (tentative /
// smoothed / extended) -> Galerkin coarse operator R A P, repeated until
// the coarse problem is small enough for a direct dense Cholesky solve.
// The SpGEMM used in the Galerkin product is selectable (two-pass baseline
// vs SPA single-pass) so the §IV-B ablation can compare setup costs on
// identical hierarchies.

#include <cstdint>
#include <span>
#include <vector>

#include "amg/aggregation.hpp"
#include "amg/smoothers.hpp"
#include "sparse/csr.hpp"

namespace cpx::ckpt {
class Writer;
class Reader;
}  // namespace cpx::ckpt

namespace cpx::amg {

enum class CycleKind { kV, kW, kK };
enum class SpgemmKind { kTwoPass, kSpa };

struct AmgOptions {
  double strength_theta = 0.08;
  int max_levels = 10;
  std::int64_t coarse_size = 64;    ///< direct-solve threshold
  InterpKind interp = InterpKind::kSmoothed;
  double interp_omega = 0.66;
  /// Prolongator truncation threshold (0 = off); see truncate_prolongator.
  double interp_truncation = 0.0;
  SmootherOptions smoother;
  int pre_sweeps = 1;
  int post_sweeps = 1;
  CycleKind cycle = CycleKind::kV;  ///< kW visits each coarse level twice
  int kcycle_steps = 2;             ///< inner Krylov steps per level (K-cycle)
  SpgemmKind spgemm = SpgemmKind::kSpa;
};

/// One level of the hierarchy.
struct Level {
  sparse::CsrMatrix a;
  sparse::CsrMatrix p;  ///< interpolation to this level from the next-coarser
  sparse::CsrMatrix r;  ///< restriction (P^T)
};

class AmgHierarchy {
 public:
  /// Builds the hierarchy for SPD matrix `a`.
  AmgHierarchy(sparse::CsrMatrix a, const AmgOptions& options);

  int num_levels() const { return static_cast<int>(levels_.size()); }
  const Level& level(int l) const;
  const AmgOptions& options() const { return options_; }

  /// Total stored nonzeros across all level operators, relative to the fine
  /// matrix (grid complexity indicator).
  double operator_complexity() const;

  /// Numeric-only re-setup for a matrix with the SAME sparsity as the one
  /// the hierarchy was built from but (possibly) different values — the
  /// fixed-mesh case of the coupled workflow, where the pressure operator's
  /// coefficients change every step but its structure never does. Keeps the
  /// strength graph, aggregation, interpolation sparsity, Galerkin SpGEMM
  /// plans, and the coarse Cholesky layout; re-runs only the numeric
  /// passes (smoother values, plan numerics, transpose permutation scatter,
  /// in-place re-factorisation). With identical values the resulting
  /// hierarchy is bitwise identical to a fresh build; with perturbed values
  /// it reuses the original aggregation (standard practice — the aggregates
  /// depend on the strength pattern, which the fixed mesh preserves). When
  /// interp_truncation > 0 the truncated P/R sparsity is value-dependent,
  /// so P, R, and the smoother are kept frozen at their original values and
  /// only the Galerkin products and coarse factor are refreshed.
  void reset_values(const sparse::CsrMatrix& a);

  /// One multigrid cycle on A x = b (x is updated in place).
  void cycle(std::span<double> x, std::span<const double> b);

  /// Runs cycles until ||r||/||b|| <= tol or max_cycles; returns the number
  /// of cycles used (max_cycles + 1 if not converged).
  int solve(std::span<double> x, std::span<const double> b, double tol,
            int max_cycles);

  /// Deep invariant walk (tier 2, see support/check.hpp): per-level CSR
  /// structure, square operators with positive stored diagonals (an SPD
  /// necessary condition), transfer-operator shape chains P/R, the frozen
  /// sparsity the reset_values() fast path relies on (Galerkin plan shapes
  /// matching the cached products), and coarse factor / scratch sizing.
  /// Throws CheckError on violation. Runs automatically after setup and
  /// reset_values when check::deep() is on.
  void validate() const;

  /// Snapshot section "amg/hierarchy" (docs/checkpoint.md): the fine-level
  /// operator values only. The sparsity, aggregation, transfer operators,
  /// and coarse factor are deterministic functions of the fine matrix, so
  /// restore validates the stored shape against this hierarchy and replays
  /// the reset_values() numeric path — cheaper and smaller than persisting
  /// every level, and bitwise identical by the reset_values contract.
  void serialize(ckpt::Writer& w) const;
  void restore(ckpt::Reader& r);

 private:
  void cycle_at(int level, std::span<double> x, std::span<const double> b);
  void coarse_solve(std::span<double> x, std::span<const double> b);
  void factor_coarse();

  AmgOptions options_;  ///< construction config // cpx-lint: allow(ckpt)
  std::vector<Level> levels_;

  // Cached setup state for reset_values: everything needed to re-run the
  // numeric passes of the transition level -> level+1 without re-deriving
  // structure. One entry per transition (num_levels() - 1 of them).
  struct Resetup {
    sparse::CsrMatrix s;       ///< I − ωD⁻¹A (A's structure); smoothed/extended
    sparse::CsrMatrix p_tent;  ///< tentative prolongator
    sparse::CsrMatrix p_mid;   ///< S·P_tent intermediate (extended only)
    sparse::SpgemmPlan sp_plan;    ///< S × P_tent (→ p_mid for extended)
    sparse::SpgemmPlan sp_plan2;   ///< S × p_mid → P (extended only)
    std::vector<std::int64_t> r_perm;  ///< transpose permutation P → R
    sparse::CsrMatrix ap;          ///< A·P product buffer
    sparse::SpgemmPlan ap_plan;    ///< A × P → AP
    sparse::SpgemmPlan rap_plan;   ///< R × AP → coarse A
    bool p_frozen = false;  ///< truncation on: P/R/S values stay fixed
  };
  // Refreshed by the reset_values() replay on restore.
  std::vector<Resetup> resetup_;  // cpx-lint: allow(ckpt)

  // Dense Cholesky factor of the coarsest operator (row-major lower), plus
  // the dense staging/solve buffers kept across re-factorisations.
  std::vector<double> coarse_factor_;  // cpx-lint: allow(ckpt)
  std::vector<double> coarse_dense_;   // cpx-lint: allow(ckpt)
  std::vector<double> coarse_y_;       // cpx-lint: allow(ckpt)
  std::int64_t coarse_n_ = 0;          // cpx-lint: allow(ckpt)

  // Per-level scratch vectors (residual, correction, smoother scratch, and
  // the coarse-sized W-/K-cycle work vectors), sized once at setup so the
  // cycles allocate nothing in steady state. 64-byte-aligned for the SIMD
  // smoother/blas1 kernels they feed.
  struct Scratch {
    support::aligned_vector<double> r;
    support::aligned_vector<double> bc;
    support::aligned_vector<double> xc;
    support::aligned_vector<double> tmp;
    support::aligned_vector<double> kres;  ///< K-cycle / W-cycle residual
    support::aligned_vector<double> kz;    ///< K-cycle z / W-cycle correction
    support::aligned_vector<double> kp;
    support::aligned_vector<double> kap;
  };
  std::vector<Scratch> scratch_;  // cpx-lint: allow(ckpt)
};

}  // namespace cpx::amg
