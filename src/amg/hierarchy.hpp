#pragma once
// AMG hierarchy setup and cycling (V-cycle and Krylov-accelerated K-cycle).
//
// Setup: strength graph -> greedy aggregation -> interpolation (tentative /
// smoothed / extended) -> Galerkin coarse operator R A P, repeated until
// the coarse problem is small enough for a direct dense Cholesky solve.
// The SpGEMM used in the Galerkin product is selectable (two-pass baseline
// vs SPA single-pass) so the §IV-B ablation can compare setup costs on
// identical hierarchies.

#include <cstdint>
#include <span>
#include <vector>

#include "amg/aggregation.hpp"
#include "amg/smoothers.hpp"
#include "sparse/csr.hpp"

namespace cpx::amg {

enum class CycleKind { kV, kW, kK };
enum class SpgemmKind { kTwoPass, kSpa };

struct AmgOptions {
  double strength_theta = 0.08;
  int max_levels = 10;
  std::int64_t coarse_size = 64;    ///< direct-solve threshold
  InterpKind interp = InterpKind::kSmoothed;
  double interp_omega = 0.66;
  /// Prolongator truncation threshold (0 = off); see truncate_prolongator.
  double interp_truncation = 0.0;
  SmootherOptions smoother;
  int pre_sweeps = 1;
  int post_sweeps = 1;
  CycleKind cycle = CycleKind::kV;  ///< kW visits each coarse level twice
  int kcycle_steps = 2;             ///< inner Krylov steps per level (K-cycle)
  SpgemmKind spgemm = SpgemmKind::kSpa;
};

/// One level of the hierarchy.
struct Level {
  sparse::CsrMatrix a;
  sparse::CsrMatrix p;  ///< interpolation to this level from the next-coarser
  sparse::CsrMatrix r;  ///< restriction (P^T)
};

class AmgHierarchy {
 public:
  /// Builds the hierarchy for SPD matrix `a`.
  AmgHierarchy(sparse::CsrMatrix a, const AmgOptions& options);

  int num_levels() const { return static_cast<int>(levels_.size()); }
  const Level& level(int l) const;
  const AmgOptions& options() const { return options_; }

  /// Total stored nonzeros across all level operators, relative to the fine
  /// matrix (grid complexity indicator).
  double operator_complexity() const;

  /// One multigrid cycle on A x = b (x is updated in place).
  void cycle(std::span<double> x, std::span<const double> b);

  /// Runs cycles until ||r||/||b|| <= tol or max_cycles; returns the number
  /// of cycles used (max_cycles + 1 if not converged).
  int solve(std::span<double> x, std::span<const double> b, double tol,
            int max_cycles);

 private:
  void cycle_at(int level, std::span<double> x, std::span<const double> b);
  void coarse_solve(std::span<double> x, std::span<const double> b);

  AmgOptions options_;
  std::vector<Level> levels_;

  // Dense Cholesky factor of the coarsest operator (row-major lower).
  std::vector<double> coarse_factor_;
  std::int64_t coarse_n_ = 0;

  // Per-level scratch vectors (residual, correction, smoother scratch).
  struct Scratch {
    std::vector<double> r;
    std::vector<double> bc;
    std::vector<double> xc;
    std::vector<double> tmp;
  };
  std::vector<Scratch> scratch_;
};

}  // namespace cpx::amg
