#pragma once
// Aggregation-based coarsening and interpolation operators for AMG.
//
// The production pressure solver uses aggregate algebraic multigrid; we
// implement the standard pipeline: strength-of-connection filtering,
// greedy aggregation, a piecewise-constant tentative prolongator, and the
// smoothed / distance-2 ("extended", cf. extended+i in the paper) variants
// the optimisation study considers.

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"

namespace cpx::amg {

enum class InterpKind {
  kTentative,  ///< piecewise-constant aggregates
  kSmoothed,   ///< one damped-Jacobi smoothing of the tentative P
  kExtended    ///< two smoothing applications: distance-2 neighbours enter
};

/// Strength graph: keeps entry (i,j) iff |a_ij| >= theta*sqrt(|a_ii a_jj|).
/// The result has the same row structure as `a` restricted to strong
/// off-diagonal connections (diagonal excluded).
sparse::CsrMatrix strength_graph(const sparse::CsrMatrix& a, double theta);

/// Greedy aggregation over the strength graph. Every node ends up in
/// exactly one aggregate; returns the aggregate id per node and the count.
struct Aggregation {
  std::vector<std::int32_t> aggregate_of;
  std::int64_t num_aggregates = 0;
};
Aggregation aggregate_greedy(const sparse::CsrMatrix& strength);

/// Tentative prolongator: P(i, agg(i)) = 1.
sparse::CsrMatrix tentative_prolongator(const Aggregation& agg,
                                        std::int64_t fine_size);

/// The prolongator-smoothing operator S = I − ω D⁻¹ A. S has exactly A's
/// sparsity (A stores its full diagonal), which is what makes the
/// numeric-only refresh below possible.
sparse::CsrMatrix smoothing_operator(const sparse::CsrMatrix& a,
                                     double omega);

/// Numeric-only refresh of S for new A values over identical structure
/// (allocation-free; the AMG re-setup path).
void smoothing_operator_values(const sparse::CsrMatrix& a, double omega,
                               sparse::CsrMatrix& s);

/// Builds the interpolation operator of the requested kind from A and the
/// aggregation. omega is the Jacobi damping for the smoothed variants.
sparse::CsrMatrix build_interpolation(const sparse::CsrMatrix& a,
                                      const Aggregation& agg,
                                      InterpKind kind, double omega = 0.66);

/// Prolongator truncation (operator-complexity control): drops entries
/// with |v| < threshold * max|row| and rescales each row to preserve its
/// sum — standard practice to keep the denser (smoothed/extended)
/// interpolations from inflating the Galerkin products.
sparse::CsrMatrix truncate_prolongator(const sparse::CsrMatrix& p,
                                       double threshold);

}  // namespace cpx::amg
