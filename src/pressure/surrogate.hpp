#pragma once
// Pressure-solver surrogate: a component-structured workload model of the
// production pressure-based combustion CFD code (closed source), running
// on the virtual cluster.
//
// The paper characterises the production solver through its ARM MAP
// profile (Fig 5) and strong-scaling curves (Fig 4): at 2048 cores on the
// 28M-cell case, the pressure-field routines (CG + aggregate AMG) take 46%
// of runtime (25% compute / 21% MPI), the Lagrangian fuel spray is next
// with 96% of its time in communication, and the velocity/scalar/
// turbulence components scale well. We reproduce exactly that
// characterisation: each component has
//    T_comp(p) = compute_per_cell * cells / p            (parallel work)
//              + surface_coeff * (cells/p)^(2/3)          (halo traffic)
//              + floor_seconds                            (latency-bound
//                coarse-grid rounds / per-iteration collectives)
// and the spray component additionally models hot-rank imbalance (from
// spray::hot_block_fraction) and the collective redistribution cost that
// grows linearly with rank count. Constants are calibrated once against
// the Fig 5 anchors (see component_models() in surrogate.cpp) and never
// tuned per-experiment; scaling to other mesh sizes follows the physics
// (compute ~ cells, surface ~ (cells/p)^(2/3), spray ~ particles).
//
// The §IV optimisations enter as the paper prescribes: the optimised
// variant sets spray parallel efficiency to 100% (async task-based spray,
// Thari et al.) and applies a 5x speedup to the pressure field, with the
// latency floor additionally reduced (the AMG-setup/cycle optimisations
// specifically target the communication-bound coarse levels).

#include <cstdint>
#include <string>
#include <vector>

#include "sim/app.hpp"
#include "spray/cloud.hpp"

namespace cpx::pressure {

/// One profiled component of the solver.
struct ComponentModel {
  std::string name;
  double compute_per_cell = 0.0;  ///< virtual core-seconds per cell per step
  double surface_coeff = 0.0;     ///< seconds per (cells/rank)^(2/3)
  double floor_seconds = 0.0;     ///< per-rank latency-bound comm per step
};

/// The calibrated component table (momentum, scalars, turbulence,
/// pressure_field — spray is modelled separately).
const std::vector<ComponentModel>& component_models();

struct Config {
  std::int64_t mesh_cells = 28'000'000;
  double particles_per_cell = 0.25;  ///< 7M particles on the 28M case
  double injector_length = 0.08;     ///< spray hot-spot e-folding fraction

  /// §IV-A optimisation: async task-based spray — perfect particle
  /// balance, no collective redistribution.
  bool optimized_spray = false;
  /// §IV-B optimisation: speedup applied to the pressure-field component
  /// (1.0 = base; the paper extrapolates 5x).
  double pressure_field_speedup = 1.0;
  /// Extra reduction of the pressure-field latency floor under §IV-B (the
  /// AMG cycle/setup changes target exactly the coarse-level rounds).
  double pressure_floor_speedup = 1.0;

  /// Named presets for the paper's test cases.
  static Config base_28m();
  static Config base_84m();
  static Config base_380m();
  /// The optimised solver of §IV-C applied to `mesh_cells`.
  static Config optimized(std::int64_t mesh_cells);
};

/// Per-component time split of one step at a given rank count (used by the
/// Fig 5 benches and tests; all in virtual seconds, max over ranks).
struct ComponentTimes {
  std::string name;
  double compute = 0.0;
  double comm = 0.0;
  double total() const { return compute + comm; }
};

class Instance final : public sim::App {
 public:
  Instance(std::string name, const Config& config, sim::RankRange ranks);

  const std::string& name() const override { return name_; }
  sim::RankRange ranks() const override { return ranks_; }
  void step(sim::Cluster& cluster) override;

  const Config& config() const { return config_; }

  /// Analytic per-component times of one step at this instance's rank
  /// count (matches what step() charges to the cluster).
  std::vector<ComponentTimes> predict_components() const;

  double total_particles() const {
    return static_cast<double>(config_.mesh_cells) *
           config_.particles_per_cell;
  }

 private:
  struct ComponentSplit {
    double compute = 0.0;
    double surface = 0.0;
    double floor = 0.0;
  };
  ComponentSplit component_split(const ComponentModel& comp) const;
  ComponentTimes spray_times() const;

  std::string name_;
  Config config_;
  sim::RankRange ranks_;
};

}  // namespace cpx::pressure
