#include "pressure/projection.hpp"

#include <algorithm>
#include <cmath>

#include "amg/pcg.hpp"
#include "support/check.hpp"

namespace cpx::pressure {

ProjectionSolver::ProjectionSolver(const mesh::UnstructuredMesh& mesh,
                                   const ProjectionOptions& options)
    : options_(options),
      num_cells_(mesh.num_cells()),
      edges_(mesh.edges()),
      face_flux_(mesh.edges().size(), 0.0),
      pressure_(static_cast<std::size_t>(mesh.num_cells()), 0.0) {
  // Two-point face gradient weights and the resulting Laplacian. The
  // operator is singular on a closed domain (constant nullspace); pinning
  // cell 0 makes it SPD — the standard all-Neumann pressure trick.
  face_coeff_.reserve(edges_.size());
  std::vector<sparse::Triplet> t;
  t.reserve(4 * edges_.size() + 1);
  for (const mesh::Edge& e : edges_) {
    const mesh::Vec3& pa = mesh.centroids()[static_cast<std::size_t>(e.a)];
    const mesh::Vec3& pb = mesh.centroids()[static_cast<std::size_t>(e.b)];
    const double dist = std::sqrt(
        (pa.x - pb.x) * (pa.x - pb.x) + (pa.y - pb.y) * (pa.y - pb.y) +
        (pa.z - pb.z) * (pa.z - pb.z));
    CPX_CHECK_MSG(dist > 0.0, "ProjectionSolver: coincident centroids");
    const double w = e.area / dist;
    face_coeff_.push_back(w);
    if (e.a != 0) {
      t.push_back({e.a, e.a, w});
    }
    if (e.b != 0) {
      t.push_back({e.b, e.b, w});
    }
    if (e.a != 0 && e.b != 0) {
      t.push_back({e.a, e.b, -w});
      t.push_back({e.b, e.a, -w});
    }
  }
  t.push_back({0, 0, 1.0});  // pinned pressure reference
  laplacian_ = sparse::csr_from_triplets(num_cells_, num_cells_, t);
  amg::AmgOptions amg_opts;
  amg_opts.coarse_size = 32;
  amg_ = std::make_unique<amg::AmgHierarchy>(laplacian_, amg_opts);
  precond_ = amg::make_amg_preconditioner(*amg_);
  rhs_.assign(static_cast<std::size_t>(num_cells_), 0.0);
}

void ProjectionSolver::divergence_into(std::span<double> div) const {
  std::fill(div.begin(), div.end(), 0.0);
  for (std::size_t f = 0; f < edges_.size(); ++f) {
    const mesh::Edge& e = edges_[f];
    div[static_cast<std::size_t>(e.a)] += face_flux_[f];
    div[static_cast<std::size_t>(e.b)] -= face_flux_[f];
  }
}

std::vector<double> ProjectionSolver::divergence() const {
  std::vector<double> div(static_cast<std::size_t>(num_cells_), 0.0);
  divergence_into(div);
  return div;
}

double ProjectionSolver::max_divergence() const {
  const auto div = divergence();
  double mx = 0.0;
  for (double d : div) {
    mx = std::max(mx, std::abs(d));
  }
  return mx;
}

int ProjectionSolver::project() {
  // The assembled graph Laplacian is positive definite (it discretises
  // -div grad), so  L p = -div(u*); the pinned cell's equation is p_0 = 0.
  divergence_into(rhs_);
  for (double& v : rhs_) {
    v = -v;
  }
  rhs_[0] = 0.0;
  std::fill(pressure_.begin(), pressure_.end(), 0.0);
  const amg::PcgResult result =
      amg::pcg(laplacian_, pressure_, rhs_, options_.cg_tolerance,
               options_.cg_max_iterations, precond_, workspace_);
  CPX_CHECK_MSG(result.converged,
                "ProjectionSolver: pressure CG did not converge ("
                    << result.iterations << " iterations, residual "
                    << result.relative_residual << ")");
  // Correct the face fluxes: u <- u* - grad p (two-point gradient).
  for (std::size_t f = 0; f < edges_.size(); ++f) {
    const mesh::Edge& e = edges_[f];
    face_flux_[f] -= face_coeff_[f] *
                     (pressure_[static_cast<std::size_t>(e.b)] -
                      pressure_[static_cast<std::size_t>(e.a)]);
  }
  return result.iterations;
}

}  // namespace cpx::pressure
