#pragma once
// Functional pressure solve: a Chorin-style projection step on the
// unstructured mesh, with the pressure-Poisson equation solved by the
// library's AMG-preconditioned conjugate gradient — the same
// CG + aggregate-AMG structure as the production pressure solver the
// surrogate models (the paper: "the pressure field routines use a
// Conjugate Gradient solver with Aggregate Algebraic Multigrid").
//
// Given a tentative (non-solenoidal) face-based velocity field u*, one
// projection step solves
//     div(grad p) = div(u*)
// and corrects the face fluxes by -grad p, producing a discretely
// divergence-free field. This is the small-scale numerics counterpart of
// pressure::Instance, the way mgcfd::EulerSolver backs mgcfd::Instance.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "amg/hierarchy.hpp"
#include "amg/pcg.hpp"
#include "mesh/mesh.hpp"
#include "sparse/csr.hpp"

namespace cpx::pressure {

struct ProjectionOptions {
  double cg_tolerance = 1e-10;
  int cg_max_iterations = 500;
};

class ProjectionSolver {
 public:
  ProjectionSolver(const mesh::UnstructuredMesh& mesh,
                   const ProjectionOptions& options = {});

  std::int64_t num_cells() const { return num_cells_; }
  std::int64_t num_faces() const {
    return static_cast<std::int64_t>(face_flux_.size());
  }

  /// Face fluxes u*.A (signed along each edge's a->b orientation).
  std::vector<double>& face_flux() { return face_flux_; }
  const std::vector<double>& face_flux() const { return face_flux_; }

  /// Per-cell divergence of the current face fluxes.
  std::vector<double> divergence() const;
  /// Max |divergence| over cells.
  double max_divergence() const;

  /// One projection: solves the pressure Poisson equation and corrects the
  /// face fluxes. Returns the CG iteration count.
  int project();

  const std::vector<double>& pressure() const { return pressure_; }

 private:
  void divergence_into(std::span<double> div) const;

  ProjectionOptions options_;
  std::int64_t num_cells_;
  std::vector<mesh::Edge> edges_;
  std::vector<double> face_coeff_;  ///< A_f / |dc| per face (gradient weight)
  std::vector<double> face_flux_;
  std::vector<double> pressure_;
  sparse::CsrMatrix laplacian_;
  std::unique_ptr<amg::AmgHierarchy> amg_;
  // Persistent solve state: repeated project() calls in a timestep loop
  // reuse the preconditioner, the CG work vectors, and the rhs buffer, so
  // the steady-state solve path allocates nothing.
  amg::Preconditioner precond_;
  amg::PcgWorkspace workspace_;
  std::vector<double> rhs_;
};

}  // namespace cpx::pressure
