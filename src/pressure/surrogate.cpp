#include "pressure/surrogate.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace cpx::pressure {
namespace {

// Reference calibration mesh: the 28M-cell single-sector swirl case
// profiled in the paper at 2048 cores (Fig 5a anchors):
//   pressure_field 46% of runtime (25% compute / 21% MPI),
//   spray ~20% with 96% in communication,
//   momentum ~14%, scalars ~11%, turbulence ~8%, all scaling well,
// and per-component parallel efficiencies over 128 -> 2048 cores (Fig 5b).
constexpr double kRefCells = 28.0e6;

// Spray calibration (28M case, 7M droplets). The production spray is
// communication-bound almost everywhere (96% of its runtime in MPI at 2048
// cores, Fig 5a) because the injector hot-spot serialises the particle/
// field data exchange: its cost is nearly independent of rank count. A
// flat component is exactly "parallel efficiency 50% at 2x the cores"
// (Fig 5b: spray < 50% PE at 256 relative to 128).
//   particle compute, virtual core-seconds per step (parallel part)
constexpr double kSprayComputeCoreSeconds = 5.0;
//   serialised exchange floor (scales with particle count)
constexpr double kSprayCommFloor = 17.5;
//   mild growth from the redistribution collectives at very high p
constexpr double kSprayCommPerRank = 2.0e-4;
constexpr double kRefParticles = kRefCells * 0.25;

}  // namespace

const std::vector<ComponentModel>& component_models() {
  // compute_per_cell anchors the 2048-core fraction; surface_coeff and
  // floor_seconds split the communication so the Fig 5b per-component PE
  // curves come out (derivation in DESIGN.md §5 / EXPERIMENTS.md).
  static const std::vector<ComponentModel> kModels = {
      // name            compute/cell  surface      floor
      {"momentum",        8.2e-4,      7.0e-4,      1.0},
      {"scalars",         6.3e-4,      6.1e-4,      0.9},
      {"turbulence",      4.5e-4,      4.4e-4,      0.7},
      {"pressure_field",  1.71e-3,     3.6e-3,     16.9},
  };
  return kModels;
}

Config Config::base_28m() {
  Config c;
  c.mesh_cells = 28'000'000;
  c.particles_per_cell = 0.25;
  return c;
}

Config Config::base_84m() {
  Config c = base_28m();
  c.mesh_cells = 84'000'000;
  return c;
}

Config Config::base_380m() {
  Config c = base_28m();
  c.mesh_cells = 380'000'000;
  return c;
}

Config Config::optimized(std::int64_t mesh_cells) {
  Config c = base_28m();
  c.mesh_cells = mesh_cells;
  c.optimized_spray = true;
  c.pressure_field_speedup = 5.0;
  c.pressure_floor_speedup = 15.0;
  return c;
}

Instance::Instance(std::string name, const Config& config,
                   sim::RankRange ranks)
    : name_(std::move(name)), config_(config), ranks_(ranks) {
  CPX_REQUIRE(ranks.size() >= 1, "Instance: empty rank range");
  CPX_REQUIRE(config.mesh_cells >= ranks.size(),
              "Instance: fewer cells than ranks");
  CPX_REQUIRE(config.pressure_field_speedup >= 1.0 &&
                  config.pressure_floor_speedup >= 1.0,
              "Instance: speedups must be >= 1");
}

Instance::ComponentSplit Instance::component_split(
    const ComponentModel& comp) const {
  const double p = static_cast<double>(ranks_.size());
  const double cells = static_cast<double>(config_.mesh_cells);
  ComponentSplit split;
  split.compute = comp.compute_per_cell * cells / p;
  split.surface = comp.surface_coeff * std::pow(cells / p, 2.0 / 3.0);
  split.floor = comp.floor_seconds;
  if (comp.name == "pressure_field") {
    split.compute /= config_.pressure_field_speedup;
    split.surface /= config_.pressure_field_speedup;
    split.floor /=
        config_.pressure_field_speedup * config_.pressure_floor_speedup;
  }
  return split;
}

ComponentTimes Instance::spray_times() const {
  const double p = static_cast<double>(ranks_.size());
  const double scale = total_particles() / kRefParticles;
  const double work = kSprayComputeCoreSeconds * scale;

  ComponentTimes t;
  t.name = "spray";
  if (config_.optimized_spray) {
    // Async task-based spray: perfect balance, point-to-point queues only.
    // Thari et al. report essentially no scaling difference between the
    // optimised spray and the solver with spray removed.
    t.compute = work / p;
    t.comm = 0.0;
    return t;
  }
  // Spatial partitioning: the hottest rank carries the injector region,
  // and everyone waits on the serialised particle/field exchange.
  const double hot =
      spray::hot_block_fraction(config_.injector_length, ranks_.size());
  const double max_share = std::max(hot, 1.0 / p);
  t.compute = work * max_share;
  t.comm = (kSprayCommFloor + kSprayCommPerRank * p) * scale;
  return t;
}

std::vector<ComponentTimes> Instance::predict_components() const {
  std::vector<ComponentTimes> out;
  for (const ComponentModel& comp : component_models()) {
    const ComponentSplit s = component_split(comp);
    out.push_back({comp.name, s.compute, s.surface + s.floor});
  }
  out.push_back(spray_times());
  return out;
}

void Instance::step(sim::Cluster& cluster) {
  const sim::MachineModel& m = cluster.machine();
  for (const ComponentModel& comp : component_models()) {
    const sim::RegionId region = cluster.region(name_ + "/" + comp.name);
    const ComponentSplit s = component_split(comp);
    for (int l = 0; l < ranks_.size(); ++l) {
      // Compute expressed as flops so the roofline stays consistent.
      sim::Work w;
      w.flops = s.compute * m.flop_rate;
      cluster.compute(ranks_.begin + l, w, region);
      cluster.comm_delay(ranks_.begin + l, s.surface + s.floor, region);
    }
  }

  // Spray: the hot rank gets the injector load; everyone waits on the
  // serialised exchange.
  const sim::RegionId spray_region = cluster.region(name_ + "/spray");
  const ComponentTimes spray = spray_times();
  const double p = static_cast<double>(ranks_.size());
  const double work =
      kSprayComputeCoreSeconds * total_particles() / kRefParticles;
  for (int l = 0; l < ranks_.size(); ++l) {
    // Rank 0 of the instance holds the injector block in the base
    // strategy; under the optimised strategy the load is flat.
    const double compute_share =
        config_.optimized_spray ? work / p
                                : (l == 0 ? spray.compute : work / p);
    sim::Work w;
    w.flops = compute_share * m.flop_rate;
    cluster.compute(ranks_.begin + l, w, spray_region);
    if (spray.comm > 0.0) {
      cluster.comm_delay(ranks_.begin + l, spray.comm, spray_region);
    }
  }
  // The spray's collective and the pressure solve's residual reductions
  // synchronise the instance each step.
  cluster.allreduce(ranks_, 8 * sizeof(double),
                    cluster.region(name_ + "/reduce"));
}

}  // namespace cpx::pressure
