#pragma once
// Precomputed neighbour-exchange schedule for the comm layer
// (docs/communication.md).
//
// A halo exchange repeats the same data movement every step: the same
// neighbour pairs, the same element slots gathered on the sender, the
// same ghost slots filled on the receiver. An ExchangePlan captures that
// shape once — one Channel per directed neighbour pair with its pack and
// unpack index maps — and finalize() sizes persistent staging buffers, so
// execute() in the steady state performs no allocation: gather into the
// send staging area, isend/irecv through the communicator's buffer pool,
// scatter from the receive staging area.
//
// Channels execute in plan order, receives post in plan order, and the
// index maps are fixed at build time, so an exchange is bitwise
// deterministic at any CPX_THREADS. validate_plan() is the tier-2 deep
// checker (gate on check::deep()): rank endpoints in range, send/recv
// symmetry per channel, indices within the per-rank extents, and every
// receive slot targeted exactly once — the transport-level generalisation
// of the halo checks in mesh::validate_local_meshes.
//
// Split-phase variant (docs/communication.md, "Split-phase exchange"):
// begin() runs the gather/post half and returns with the exchange in
// flight; finish() waits and scatters. Between the two the caller may
// compute on any slot the plan does not fill (interior cells) — reading a
// ghost slot in the window is a data race in the MPI realisation this
// transport models, and tools/lint_cpx.py's `split-phase` rule flags it.
// isend copies the gathered payload immediately, so the caller may also
// overwrite *source* slots inside the window. execute() is exactly
// begin() + finish(); both paths are allocation-free once warm and
// bitwise identical at any CPX_THREADS. validate_split() audits the
// interior/boundary partition a call site overlaps with.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "comm/communicator.hpp"

namespace cpx::comm {

class ExchangePlan {
 public:
  /// One directed neighbour pair. `send_indices[i]` on the source rank
  /// feeds `recv_indices[i]` on the destination rank.
  struct Channel {
    Rank src = 0;
    Rank dst = 0;
    std::vector<std::int32_t> send_indices;
    std::vector<std::int32_t> recv_indices;
  };

  /// Appends a channel (plan order is execution order). Requires equal
  /// index-map lengths and non-negative indices; rejected after finalize.
  void add_channel(Rank src, Rank dst, std::vector<std::int32_t> send_indices,
                   std::vector<std::int32_t> recv_indices);

  /// Locks the plan for elements of `elem_bytes` bytes and sizes the
  /// persistent staging buffers.
  void finalize(std::size_t elem_bytes);

  bool finalized() const { return elem_bytes_ != 0; }
  std::size_t elem_bytes() const { return elem_bytes_; }
  std::span<const Channel> channels() const { return channels_; }

  /// Payload moved by one execute() call.
  std::size_t bytes_per_exchange() const;
  std::int64_t messages_per_exchange() const {
    return static_cast<std::int64_t>(channels_.size());
  }

  /// Maps a rank to the byte image of its element array
  /// (std::as_writable_bytes over the rank's storage).
  using RankDataFn = support::FunctionRef<std::span<std::byte>(Rank)>;

  /// Runs the exchange: per channel gather → isend, then all irecvs, one
  /// wait_all, then per channel scatter. Allocation-free once warm.
  void execute(Communicator& comm, RankDataFn rank_data, int tag = 0);

  // --- Split-phase API -------------------------------------------------
  /// Posts the exchange (gather + isend per channel, then all irecvs) and
  /// returns with it in flight. Throws CheckError if an exchange is
  /// already in flight on this plan. Source slots may be overwritten once
  /// begin() returns; slots the plan fills must not be read until
  /// finish().
  void begin(Communicator& comm, RankDataFn rank_data, int tag = 0);

  /// Completion poll. The in-process transport buffers sends eagerly, so a
  /// begun exchange is always complete — the call exists for API parity
  /// with MPI_Test-shaped code and throws CheckError when no exchange is
  /// in flight.
  bool test() const;

  /// Waits for the in-flight exchange and scatters into the receive
  /// slots. Throws CheckError without a matching begin().
  void finish(Communicator& comm, RankDataFn rank_data);

  bool in_flight() const { return in_flight_; }

 private:
  void post_phase(Communicator& comm, RankDataFn rank_data, int tag);
  void scatter_phase(RankDataFn rank_data);

  std::vector<Channel> channels_;
  std::size_t elem_bytes_ = 0;
  std::size_t max_channel_bytes_ = 0;
  bool in_flight_ = false;
  std::vector<std::byte> send_scratch_;                ///< reused per channel
  std::vector<std::vector<std::byte>> recv_buffers_;   ///< one per channel
};

/// Shape of the per-rank arrays a plan moves data between, for
/// validate_plan. Extents are element counts per rank.
struct PlanShape {
  std::span<const std::int64_t> src_extents;
  std::span<const std::int64_t> dst_extents;
  /// Optional (empty to skip): for each rank, the first element of the
  /// region that the plan must cover completely — every slot in
  /// [dst_required_begin[r], dst_extents[r]) receives exactly one value.
  /// This is the ghost-coverage requirement of a halo plan.
  std::span<const std::int64_t> dst_required_begin;
};

/// Tier-2 deep validator. Throws CheckError on: rank endpoints out of
/// range or self-loops, duplicate (src, dst) channels, send/recv index
/// maps of different lengths, indices outside the per-rank extents, a
/// receive slot targeted more than once, or (when dst_required_begin is
/// given) a required slot never targeted.
void validate_plan(const ExchangePlan& plan, const PlanShape& shape);

/// One destination rank's interior/boundary cell partition, audited by
/// validate_split against the plan that fills the rank's ghost slots.
/// Local indices [0, num_owned) are owned cells; indices >= num_owned are
/// ghost slots (the layout of mesh::LocalMesh and the halo plan).
struct RankSplit {
  Rank rank = 0;
  std::int64_t num_owned = 0;
  std::span<const std::int32_t> interior;  ///< owned cells, overlap-safe
  std::span<const std::int32_t> boundary;  ///< owned cells reading ghosts
  /// CSR stencil: cell i reads stencil_cells[stencil_offsets[i] ..
  /// stencil_offsets[i+1]) (local indices, ghosts included).
  std::span<const std::int32_t> stencil_offsets;  ///< num_owned + 1 entries
  std::span<const std::int32_t> stencil_cells;
};

/// Tier-2 deep validator of a split-phase call site (the synchronous-path
/// audit is validate_plan). Throws CheckError unless: every owned cell of
/// `split.rank` appears in exactly one of interior/boundary, no interior
/// cell's stencil touches a slot >= num_owned, and every ghost slot any
/// boundary cell reads is filled by one of the plan's channels into that
/// rank — i.e. computing interior cells inside the begin()/finish() window
/// and boundary cells after finish() is race-free and complete.
void validate_split(const ExchangePlan& plan, const RankSplit& split);

}  // namespace cpx::comm
