#include "comm/communicator.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "support/blas1.hpp"
#include "support/check.hpp"
#include "support/metrics.hpp"

namespace cpx::comm {

namespace metrics = support::metrics;

namespace {

/// Accumulates the wall time spent inside wait_all()/deliver() — matching,
/// copying, and hand-off — into the "comm/queue_wait_ns" counter. Costs a
/// relaxed load when the metrics layer is off.
class QueueWaitTimer {
 public:
  QueueWaitTimer() {
    if (metrics::enabled()) {
      active_ = true;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~QueueWaitTimer() {
    if (active_) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      metrics::counter_add(
          "comm/queue_wait_ns",
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count());
    }
  }
  QueueWaitTimer(const QueueWaitTimer&) = delete;
  QueueWaitTimer& operator=(const QueueWaitTimer&) = delete;

 private:
  bool active_ = false;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace

struct Communicator::State {
  std::string name;
  int size = 0;
  std::vector<Rank> global_ranks;  ///< local rank -> world rank

  struct Send {
    Rank src = 0;
    Rank dst = 0;
    int tag = 0;
    int buffer = -1;  ///< index into `buffers`
    std::size_t bytes = 0;
    bool matched = false;
  };
  struct Recv {
    Rank dst = 0;
    Rank src = 0;
    int tag = 0;
    std::byte* out = nullptr;
    std::size_t bytes = 0;
  };

  std::vector<Send> sends;
  std::vector<Recv> recvs;
  std::vector<std::vector<std::byte>> buffers;
  std::vector<int> free_buffers;
  std::vector<Transfer> transfers;
  std::vector<std::size_t> deliver_scratch;
  CommStats stats;

  int acquire_buffer(std::size_t bytes) {
    if (!free_buffers.empty()) {
      const int idx = free_buffers.back();
      free_buffers.pop_back();
      if (buffers[static_cast<std::size_t>(idx)].size() < bytes) {
        buffers[static_cast<std::size_t>(idx)].resize(bytes);
      }
      return idx;
    }
    buffers.emplace_back(bytes);
    return static_cast<int>(buffers.size()) - 1;
  }
  void release_buffer(int idx) { free_buffers.push_back(idx); }

  void check_rank(Rank r) const {
    CPX_CHECK_MSG(r >= 0 && r < size,
                  "comm rank " << r << " out of range [0, " << size << ")");
  }

  void count_message(std::size_t bytes) {
    ++stats.messages;
    stats.bytes += static_cast<std::int64_t>(bytes);
    metrics::counter_add("comm/messages", 1);
    metrics::counter_add("comm/bytes", static_cast<std::int64_t>(bytes));
  }

  void count_collective(std::int64_t messages, std::int64_t bytes) {
    stats.messages += messages;
    stats.bytes += bytes;
    metrics::counter_add("comm/messages", messages);
    metrics::counter_add("comm/bytes", bytes);
  }
};

Communicator::Communicator(std::shared_ptr<State> state)
    : state_(std::move(state)) {}

Communicator Communicator::world(int size, std::string name) {
  CPX_REQUIRE(size > 0, "comm world needs at least one rank, got " << size);
  auto state = std::make_shared<State>();
  state->name = std::move(name);
  state->size = size;
  state->global_ranks.resize(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    state->global_ranks[static_cast<std::size_t>(r)] = r;
  }
  return Communicator(std::move(state));
}

int Communicator::size() const {
  CPX_CHECK(state_ != nullptr);
  return state_->size;
}

const std::string& Communicator::name() const {
  CPX_CHECK(state_ != nullptr);
  return state_->name;
}

Rank Communicator::global_rank(Rank local) const {
  CPX_CHECK(state_ != nullptr);
  state_->check_rank(local);
  return state_->global_ranks[static_cast<std::size_t>(local)];
}

std::span<const Rank> Communicator::global_ranks() const {
  CPX_CHECK(state_ != nullptr);
  return state_->global_ranks;
}

std::vector<Communicator> Communicator::split(
    std::span<const int> colors) const {
  CPX_CHECK(state_ != nullptr);
  CPX_REQUIRE(colors.size() == static_cast<std::size_t>(state_->size),
              "split needs one color per rank: " << colors.size() << " vs "
                                                 << state_->size);
  for (std::size_t r = 0; r < colors.size(); ++r) {
    CPX_REQUIRE(colors[r] >= 0,
                "split color for rank " << r << " is negative");
  }

  std::vector<int> distinct(colors.begin(), colors.end());
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());

  std::vector<Communicator> groups;
  groups.reserve(distinct.size());
  std::vector<int> membership(colors.size(), 0);
  int covered = 0;
  for (const int color : distinct) {
    auto child = std::make_shared<State>();
    child->name = state_->name + "/" + std::to_string(color);
    for (std::size_t r = 0; r < colors.size(); ++r) {
      if (colors[r] == color) {
        child->global_ranks.push_back(
            state_->global_ranks[r]);
        ++membership[r];
        ++covered;
      }
    }
    child->size = static_cast<int>(child->global_ranks.size());
    groups.emplace_back(Communicator(std::move(child)));
  }

  // The split must partition the parent: every rank lands in exactly one
  // subgroup (the kAsyncTask coverage assertion).
  CPX_CHECK_MSG(covered == state_->size,
                "split covers " << covered << " of " << state_->size
                                << " ranks");
  for (std::size_t r = 0; r < membership.size(); ++r) {
    CPX_CHECK_MSG(membership[r] == 1, "rank " << r << " appears in "
                                              << membership[r]
                                              << " subgroups");
  }
  return groups;
}

std::vector<Communicator> Communicator::split_fraction(double fraction) const {
  CPX_CHECK(state_ != nullptr);
  CPX_REQUIRE(fraction > 0.0 && fraction <= 1.0,
              "rank fraction must be in (0, 1], got " << fraction);
  const int size = state_->size;
  const int workers = std::min(
      size, std::max(1, static_cast<int>(static_cast<double>(size) *
                                         fraction)));
  std::vector<int> colors(static_cast<std::size_t>(size), 1);
  for (int r = 0; r < workers; ++r) {
    colors[static_cast<std::size_t>(r)] = 0;
  }
  return split(colors);
}

void Communicator::isend(Rank src, Rank dst, int tag, const void* data,
                         std::size_t bytes) {
  CPX_CHECK(state_ != nullptr);
  State& s = *state_;
  s.check_rank(src);
  s.check_rank(dst);
  CPX_REQUIRE(src != dst, "isend to self (rank " << src << ")");
  const int buffer = s.acquire_buffer(bytes);
  if (bytes > 0) {
    std::memcpy(s.buffers[static_cast<std::size_t>(buffer)].data(), data,
                bytes);
  }
  s.sends.push_back({src, dst, tag, buffer, bytes, false});
}

void Communicator::irecv(Rank dst, Rank src, int tag, void* buffer,
                         std::size_t bytes) {
  CPX_CHECK(state_ != nullptr);
  State& s = *state_;
  s.check_rank(dst);
  s.check_rank(src);
  CPX_REQUIRE(src != dst, "irecv from self (rank " << dst << ")");
  s.recvs.push_back({dst, src, tag, static_cast<std::byte*>(buffer), bytes});
}

void Communicator::wait_all() {
  CPX_CHECK(state_ != nullptr);
  QueueWaitTimer timer;
  State& s = *state_;
  // Receives complete in posting order; each matches the earliest pending
  // send with the same (src, dst, tag) — FIFO per triple. Both orders are
  // fixed by program order, never by thread scheduling.
  for (const State::Recv& recv : s.recvs) {
    State::Send* match = nullptr;
    for (State::Send& send : s.sends) {
      if (!send.matched && send.src == recv.src && send.dst == recv.dst &&
          send.tag == recv.tag) {
        match = &send;
        break;
      }
    }
    CPX_CHECK_MSG(match != nullptr, "unmatched irecv on '"
                                        << s.name << "': src=" << recv.src
                                        << " dst=" << recv.dst
                                        << " tag=" << recv.tag);
    CPX_CHECK_MSG(match->bytes == recv.bytes,
                  "message size mismatch on '"
                      << s.name << "' (src=" << recv.src
                      << " dst=" << recv.dst << " tag=" << recv.tag
                      << "): sent " << match->bytes << " bytes, receiving "
                      << recv.bytes);
    if (recv.bytes > 0) {
      std::memcpy(recv.out,
                  s.buffers[static_cast<std::size_t>(match->buffer)].data(),
                  recv.bytes);
    }
    match->matched = true;
    s.release_buffer(match->buffer);
    s.transfers.push_back({recv.src, recv.dst, recv.bytes});
    s.count_message(recv.bytes);
  }
  for (const State::Send& send : s.sends) {
    CPX_CHECK_MSG(send.matched, "unmatched isend on '"
                                    << s.name << "': src=" << send.src
                                    << " dst=" << send.dst
                                    << " tag=" << send.tag);
  }
  s.sends.clear();
  s.recvs.clear();
}

void Communicator::deliver(Rank dst, int tag, DeliverFn sink) {
  CPX_CHECK(state_ != nullptr);
  QueueWaitTimer timer;
  State& s = *state_;
  s.check_rank(dst);
  // Sources ascending, FIFO per source: the stable sort keeps posting
  // order within a source, so delivery order is fixed by program order.
  s.deliver_scratch.clear();
  for (std::size_t i = 0; i < s.sends.size(); ++i) {
    const State::Send& send = s.sends[i];
    if (!send.matched && send.dst == dst && send.tag == tag) {
      s.deliver_scratch.push_back(i);
    }
  }
  std::stable_sort(s.deliver_scratch.begin(), s.deliver_scratch.end(),
                   [&s](std::size_t a, std::size_t b) {
                     return s.sends[a].src < s.sends[b].src;
                   });
  for (const std::size_t i : s.deliver_scratch) {
    State::Send& send = s.sends[i];
    sink(send.src,
         std::span<const std::byte>(
             s.buffers[static_cast<std::size_t>(send.buffer)].data(),
             send.bytes));
    send.matched = true;
    s.release_buffer(send.buffer);
    s.transfers.push_back({send.src, send.dst, send.bytes});
    s.count_message(send.bytes);
  }
  std::erase_if(s.sends,
                [](const State::Send& send) { return send.matched; });
}

double Communicator::allreduce_sum(std::span<const double> contributions) {
  CPX_CHECK(state_ != nullptr);
  CPX_REQUIRE(contributions.size() ==
                  static_cast<std::size_t>(state_->size),
              "allreduce needs one contribution per rank: "
                  << contributions.size() << " vs " << state_->size);
  state_->count_collective(
      state_->size,
      static_cast<std::int64_t>(sizeof(double)) * state_->size);
  return support::blas1::sum(contributions);
}

void Communicator::post(Rank src, Rank dst, std::size_t bytes) {
  CPX_CHECK(state_ != nullptr);
  State& s = *state_;
  s.check_rank(src);
  s.check_rank(dst);
  s.transfers.push_back({src, dst, bytes});
  s.count_message(bytes);
}

void Communicator::post_collective(std::size_t bytes,
                                   std::int64_t messages) {
  CPX_CHECK(state_ != nullptr);
  state_->count_collective(messages, static_cast<std::int64_t>(bytes));
}

std::span<const Transfer> Communicator::transfers() const {
  CPX_CHECK(state_ != nullptr);
  return state_->transfers;
}

void Communicator::clear_transfers() {
  CPX_CHECK(state_ != nullptr);
  state_->transfers.clear();
}

const CommStats& Communicator::stats() const {
  CPX_CHECK(state_ != nullptr);
  return state_->stats;
}

std::size_t Communicator::pool_size() const {
  CPX_CHECK(state_ != nullptr);
  return state_->buffers.size();
}

}  // namespace cpx::comm
