#pragma once
// MPI-shaped in-process message-passing substrate (docs/communication.md).
//
// Every distributed component in this repo — the MG-CFD halo exchange, the
// SIMPIC boundary merge / particle migration / pipelined Thomas solve, the
// spray load-balancing strategies, and the coupler-unit gather/scatter —
// used to move rank-to-rank bytes with its own ad-hoc buffer copies and
// its own byte bookkeeping. This layer is the single transport they all
// route through:
//
//  * Communicator — a rank group with its own message space. The world
//    communicator covers all ranks of a distributed run; split() carves
//    deterministic subgroups (the spray worker communicator, CU groups).
//  * isend/irecv/wait_all — nonblocking point-to-point with (src, dst,
//    tag) matching. Matching is FIFO per triple and delivery happens in
//    receive-posting order, so a fixed program order yields a fixed
//    delivery order at any CPX_THREADS. deliver() is the variable-size
//    variant (particle migration): pending sends to one rank are handed
//    to a sink in (source rank, posting) order.
//  * allreduce_sum — deterministic reduction over one contribution per
//    rank, combined through support::blas1::sum, i.e. the fixed-grain
//    chunk-order contract of docs/parallelism.md: bitwise identical at
//    any thread count.
//  * post()/post_collective() — accounting-only messages for the
//    performance-model sites (spray, coupler units) whose data plane is
//    virtual: no payload moves, but the bytes are counted identically to
//    real traffic and recorded for virtual-cluster charging.
//
// Byte accounting: every delivered or posted message increments the
// communicator's CommStats and, when the metrics layer is enabled, the
// global "comm/bytes" / "comm/messages" counters ("comm/queue_wait_ns"
// accumulates wall time spent matching and copying in wait_all/deliver).
// This replaces the per-subsystem counters (DistributedSolver::
// last_halo_bytes and friends) with one accounting path.
//
// Transfers delivered since the last clear are additionally recorded as
// (src, dst, bytes) records so a caller co-simulating on a sim::Cluster
// can charge the *real* message sizes to the virtual machine
// (sim/comm_bridge.hpp).
//
// Steady-state exchanges are allocation-free: send payloads go through a
// buffer pool and the pending-operation vectors keep their capacity, so
// once a communicator is warm no call allocates (tests/comm_test.cpp
// checks the pool stops growing).
//
// Not thread-safe: a communicator is driven by the single thread that
// executes the rank loop, exactly like the distributed solvers it serves.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "support/parallel.hpp"

namespace cpx::comm {

using Rank = int;

/// One delivered (or posted) message, in the communicator's global rank
/// space. Layout-compatible with sim::Message by design.
struct Transfer {
  Rank src = 0;
  Rank dst = 0;
  std::size_t bytes = 0;
};

/// Cumulative per-communicator traffic counters.
struct CommStats {
  std::int64_t messages = 0;
  std::int64_t bytes = 0;
};

class Communicator {
 public:
  /// Null handle; every operation except bool conversion requires a real
  /// communicator from world() or split().
  Communicator() = default;

  /// Root communicator of `size` ranks. `name` labels its stats.
  static Communicator world(int size, std::string name = "world");

  explicit operator bool() const { return state_ != nullptr; }
  int size() const;
  const std::string& name() const;

  /// Rank of local rank `local` in the world communicator this one was
  /// split from (identity for a world communicator).
  Rank global_rank(Rank local) const;
  std::span<const Rank> global_ranks() const;

  /// Deterministic split: one subgroup per distinct color, ordered by
  /// ascending color, members in ascending parent-rank order. Requires
  /// colors.size() == size() and every color >= 0; checks that the
  /// subgroups cover every rank exactly once.
  std::vector<Communicator> split(std::span<const int> colors) const;

  /// The split used by the spray kAsyncTask strategy: the leading
  /// max(1, floor(size * fraction)) ranks form subgroup 0 (the dedicated
  /// spray communicator), the rest subgroup 1 (the solver ranks; absent
  /// when fraction covers everything). Coverage is asserted by split().
  std::vector<Communicator> split_fraction(double fraction) const;

  // --- Nonblocking point-to-point -------------------------------------
  void isend(Rank src, Rank dst, int tag, const void* data,
             std::size_t bytes);
  void irecv(Rank dst, Rank src, int tag, void* buffer, std::size_t bytes);

  template <typename T>
  void isend_span(Rank src, Rank dst, int tag, std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    isend(src, dst, tag, values.data(), values.size_bytes());
  }
  template <typename T>
  void irecv_span(Rank dst, Rank src, int tag, std::span<T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    irecv(dst, src, tag, values.data(), values.size_bytes());
  }
  template <typename T>
  void isend_value(Rank src, Rank dst, int tag, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    isend(src, dst, tag, &value, sizeof(T));
  }
  template <typename T>
  void irecv_value(Rank dst, Rank src, int tag, T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    irecv(dst, src, tag, value, sizeof(T));
  }

  /// Matches every pending receive against the pending sends — FIFO per
  /// (src, dst, tag) — and copies payloads. Throws CheckError if any
  /// send or receive is left unmatched or a matched pair disagrees on
  /// size. Delivery (and transfer recording) happens in receive-posting
  /// order.
  void wait_all();

  /// Variable-size receive: hands every pending send addressed to `dst`
  /// with `tag` to `sink(src, payload)`, sources ascending and FIFO per
  /// source. Used where the receiver cannot know message sizes up front
  /// (particle migration).
  using DeliverFn =
      support::FunctionRef<void(Rank src, std::span<const std::byte>)>;
  void deliver(Rank dst, int tag, DeliverFn sink);

  // --- Deterministic collectives --------------------------------------
  /// Sum of one contribution per rank, combined with blas1::sum (fixed-
  /// grain chunk order — bitwise identical at any CPX_THREADS). Counted
  /// as size() messages of sizeof(double) bytes.
  double allreduce_sum(std::span<const double> contributions);

  // --- Accounting-only traffic (performance-model data planes) --------
  /// Records a message without moving payload.
  void post(Rank src, Rank dst, std::size_t bytes);
  /// Records collective traffic (total bytes over `messages` messages)
  /// without per-pair transfer records.
  void post_collective(std::size_t bytes, std::int64_t messages);

  // --- Accounting -----------------------------------------------------
  /// Transfers delivered by wait_all()/deliver()/post() since the last
  /// clear_transfers(), in delivery order, in this communicator's local
  /// rank space.
  std::span<const Transfer> transfers() const;
  void clear_transfers();

  const CommStats& stats() const;

  /// Number of pooled payload buffers (diagnostic: steady-state exchange
  /// must stop growing the pool — see tests/comm_test.cpp).
  std::size_t pool_size() const;

 private:
  struct State;
  explicit Communicator(std::shared_ptr<State> state);

  std::shared_ptr<State> state_;
};

}  // namespace cpx::comm
