#include "comm/exchange_plan.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "support/check.hpp"

namespace cpx::comm {

void ExchangePlan::add_channel(Rank src, Rank dst,
                               std::vector<std::int32_t> send_indices,
                               std::vector<std::int32_t> recv_indices) {
  CPX_REQUIRE(!finalized(), "add_channel after finalize");
  CPX_REQUIRE(src >= 0 && dst >= 0 && src != dst,
              "bad channel endpoints src=" << src << " dst=" << dst);
  CPX_REQUIRE(send_indices.size() == recv_indices.size(),
              "channel " << src << "->" << dst << " index maps disagree: "
                         << send_indices.size() << " sends vs "
                         << recv_indices.size() << " receive slots");
  for (const std::int32_t i : send_indices) {
    CPX_REQUIRE(i >= 0, "negative send index in channel " << src << "->"
                                                          << dst);
  }
  for (const std::int32_t i : recv_indices) {
    CPX_REQUIRE(i >= 0, "negative recv index in channel " << src << "->"
                                                          << dst);
  }
  channels_.push_back(
      {src, dst, std::move(send_indices), std::move(recv_indices)});
}

void ExchangePlan::finalize(std::size_t elem_bytes) {
  CPX_REQUIRE(!finalized(), "finalize called twice");
  CPX_REQUIRE(elem_bytes > 0, "element size must be positive");
  elem_bytes_ = elem_bytes;
  max_channel_bytes_ = 0;
  recv_buffers_.resize(channels_.size());
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    const std::size_t bytes = channels_[c].send_indices.size() * elem_bytes_;
    max_channel_bytes_ = std::max(max_channel_bytes_, bytes);
    recv_buffers_[c].resize(bytes);
  }
  send_scratch_.resize(max_channel_bytes_);
}

std::size_t ExchangePlan::bytes_per_exchange() const {
  std::size_t total = 0;
  for (const Channel& ch : channels_) {
    total += ch.send_indices.size() * elem_bytes_;
  }
  return total;
}

void ExchangePlan::post_phase(Communicator& comm, RankDataFn rank_data,
                              int tag) {
  // Gather and post each channel's payload. isend copies into the
  // communicator's pool immediately, so one scratch area serves every
  // channel.
  for (const Channel& ch : channels_) {
    const std::span<std::byte> src = rank_data(ch.src);
    std::byte* out = send_scratch_.data();
    for (const std::int32_t idx : ch.send_indices) {
      CPX_DCHECK(static_cast<std::size_t>(idx + 1) * elem_bytes_ <=
                 src.size());
      std::memcpy(out, src.data() + static_cast<std::size_t>(idx) *
                                        elem_bytes_,
                  elem_bytes_);
      out += elem_bytes_;
    }
    comm.isend(ch.src, ch.dst, tag, send_scratch_.data(),
               ch.send_indices.size() * elem_bytes_);
  }
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    const Channel& ch = channels_[c];
    comm.irecv(ch.dst, ch.src, tag, recv_buffers_[c].data(),
               recv_buffers_[c].size());
  }
}

void ExchangePlan::scatter_phase(RankDataFn rank_data) {
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    const Channel& ch = channels_[c];
    const std::span<std::byte> dst = rank_data(ch.dst);
    const std::byte* in = recv_buffers_[c].data();
    for (const std::int32_t idx : ch.recv_indices) {
      CPX_DCHECK(static_cast<std::size_t>(idx + 1) * elem_bytes_ <=
                 dst.size());
      std::memcpy(dst.data() + static_cast<std::size_t>(idx) * elem_bytes_,
                  in, elem_bytes_);
      in += elem_bytes_;
    }
  }
}

void ExchangePlan::execute(Communicator& comm, RankDataFn rank_data,
                           int tag) {
  CPX_CHECK(finalized());
  CPX_REQUIRE(!in_flight_, "execute while a split-phase exchange is in "
                           "flight; finish() it first");
  post_phase(comm, rank_data, tag);
  comm.wait_all();
  scatter_phase(rank_data);
}

void ExchangePlan::begin(Communicator& comm, RankDataFn rank_data, int tag) {
  CPX_CHECK(finalized());
  CPX_REQUIRE(!in_flight_,
              "begin while an exchange is already in flight on this plan");
  post_phase(comm, rank_data, tag);
  in_flight_ = true;
}

bool ExchangePlan::test() const {
  CPX_REQUIRE(in_flight_, "test without an exchange in flight");
  // The in-process transport buffers every isend eagerly, so the data of a
  // begun exchange is always deliverable; an MPI transport would poll its
  // requests here.
  return true;
}

void ExchangePlan::finish(Communicator& comm, RankDataFn rank_data) {
  CPX_REQUIRE(in_flight_, "finish without a matching begin");
  comm.wait_all();
  scatter_phase(rank_data);
  in_flight_ = false;
}

void validate_plan(const ExchangePlan& plan, const PlanShape& shape) {
  CPX_REQUIRE(shape.dst_required_begin.empty() ||
                  shape.dst_required_begin.size() ==
                      shape.dst_extents.size(),
              "dst_required_begin must be empty or one entry per rank");
  const auto num_src = static_cast<std::int64_t>(shape.src_extents.size());
  const auto num_dst = static_cast<std::int64_t>(shape.dst_extents.size());

  // recv_hits[r][slot]: how many channel entries target that slot.
  std::vector<std::vector<std::int32_t>> recv_hits(
      shape.dst_extents.size());
  for (std::size_t r = 0; r < shape.dst_extents.size(); ++r) {
    CPX_CHECK_MSG(shape.dst_extents[r] >= 0,
                  "negative extent for dst rank " << r);
    recv_hits[r].assign(static_cast<std::size_t>(shape.dst_extents[r]), 0);
  }

  std::vector<std::pair<Rank, Rank>> pairs;
  pairs.reserve(plan.channels().size());
  for (const ExchangePlan::Channel& ch : plan.channels()) {
    CPX_CHECK_MSG(ch.src >= 0 && ch.src < num_src,
                  "channel src rank " << ch.src << " out of range");
    CPX_CHECK_MSG(ch.dst >= 0 && ch.dst < num_dst,
                  "channel dst rank " << ch.dst << " out of range");
    CPX_CHECK_MSG(ch.src != ch.dst, "self-loop channel on rank " << ch.src);
    CPX_CHECK_MSG(ch.send_indices.size() == ch.recv_indices.size(),
                  "channel " << ch.src << "->" << ch.dst
                             << " send/recv asymmetry: "
                             << ch.send_indices.size() << " vs "
                             << ch.recv_indices.size());
    pairs.emplace_back(ch.src, ch.dst);
    const std::int64_t src_extent =
        shape.src_extents[static_cast<std::size_t>(ch.src)];
    for (const std::int32_t idx : ch.send_indices) {
      CPX_CHECK_MSG(idx >= 0 && idx < src_extent,
                    "send index " << idx << " outside rank " << ch.src
                                  << " extent " << src_extent);
    }
    auto& hits = recv_hits[static_cast<std::size_t>(ch.dst)];
    for (const std::int32_t idx : ch.recv_indices) {
      CPX_CHECK_MSG(idx >= 0 &&
                        static_cast<std::size_t>(idx) < hits.size(),
                    "recv index " << idx << " outside rank " << ch.dst
                                  << " extent " << hits.size());
      ++hits[static_cast<std::size_t>(idx)];
      CPX_CHECK_MSG(hits[static_cast<std::size_t>(idx)] == 1,
                    "recv slot " << idx << " on rank " << ch.dst
                                 << " targeted more than once");
    }
  }

  std::sort(pairs.begin(), pairs.end());
  CPX_CHECK_MSG(std::adjacent_find(pairs.begin(), pairs.end()) ==
                    pairs.end(),
                "duplicate (src, dst) channel in plan");

  for (std::size_t r = 0; r < shape.dst_required_begin.size(); ++r) {
    const std::int64_t begin = shape.dst_required_begin[r];
    CPX_CHECK_MSG(begin >= 0 && begin <= shape.dst_extents[r],
                  "required-coverage begin " << begin << " outside rank "
                                             << r << " extent");
    for (std::int64_t slot = begin; slot < shape.dst_extents[r]; ++slot) {
      CPX_CHECK_MSG(recv_hits[r][static_cast<std::size_t>(slot)] == 1,
                    "required slot " << slot << " on rank " << r
                                     << " covered "
                                     << recv_hits[r][static_cast<
                                            std::size_t>(slot)]
                                     << " times");
    }
  }
}

void validate_split(const ExchangePlan& plan, const RankSplit& split) {
  CPX_REQUIRE(split.num_owned >= 0, "validate_split: negative owned count");
  CPX_REQUIRE(split.stencil_offsets.size() ==
                  static_cast<std::size_t>(split.num_owned) + 1,
              "validate_split: stencil_offsets must have num_owned + 1 "
              "entries");

  // Every owned cell in exactly one of interior/boundary.
  std::vector<std::int8_t> where(static_cast<std::size_t>(split.num_owned),
                                 0);
  const auto mark = [&](std::span<const std::int32_t> cells,
                        std::int8_t tag, const char* set_name) {
    for (const std::int32_t c : cells) {
      CPX_CHECK_MSG(c >= 0 && c < split.num_owned,
                    set_name << " cell " << c << " outside owned range of "
                             << "rank " << split.rank);
      CPX_CHECK_MSG(where[static_cast<std::size_t>(c)] == 0,
                    "cell " << c << " on rank " << split.rank
                            << " listed in both interior and boundary "
                            << "(or twice)");
      where[static_cast<std::size_t>(c)] = tag;
    }
  };
  mark(split.interior, 1, "interior");
  mark(split.boundary, 2, "boundary");
  for (std::size_t c = 0; c < where.size(); ++c) {
    CPX_CHECK_MSG(where[c] != 0, "cell " << c << " on rank " << split.rank
                                         << " in neither interior nor "
                                         << "boundary set");
  }

  // Ghost slots the plan fills on this rank.
  std::vector<std::int8_t> filled;
  for (const ExchangePlan::Channel& ch : plan.channels()) {
    if (ch.dst != split.rank) {
      continue;
    }
    for (const std::int32_t slot : ch.recv_indices) {
      if (static_cast<std::size_t>(slot) >= filled.size()) {
        filled.resize(static_cast<std::size_t>(slot) + 1, 0);
      }
      filled[static_cast<std::size_t>(slot)] = 1;
    }
  }

  // Interior purity and boundary ghost coverage over the stencil.
  for (std::int64_t c = 0; c < split.num_owned; ++c) {
    const std::int32_t lo =
        split.stencil_offsets[static_cast<std::size_t>(c)];
    const std::int32_t hi =
        split.stencil_offsets[static_cast<std::size_t>(c) + 1];
    CPX_CHECK_MSG(lo >= 0 && hi >= lo &&
                      static_cast<std::size_t>(hi) <=
                          split.stencil_cells.size(),
                  "malformed stencil row for cell " << c << " on rank "
                                                    << split.rank);
    for (std::int32_t k = lo; k < hi; ++k) {
      const std::int32_t nbr =
          split.stencil_cells[static_cast<std::size_t>(k)];
      if (nbr < split.num_owned) {
        continue;
      }
      CPX_CHECK_MSG(where[static_cast<std::size_t>(c)] == 2,
                    "interior cell " << c << " on rank " << split.rank
                                     << " reads ghost slot " << nbr
                                     << " — unsafe inside a begin/finish "
                                     << "window");
      CPX_CHECK_MSG(static_cast<std::size_t>(nbr) < filled.size() &&
                        filled[static_cast<std::size_t>(nbr)] != 0,
                    "boundary cell " << c << " on rank " << split.rank
                                     << " reads ghost slot " << nbr
                                     << " that no plan channel fills");
    }
  }
}

}  // namespace cpx::comm
