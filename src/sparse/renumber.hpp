#pragma once
// Halo-column renumbering strategies (paper §IV-B, optimisation 4).
//
// In distributed AMG the rows of a matrix are spread across ranks in CSR
// format. After a halo exchange, a rank holds entries referring to global
// column ids it has not seen before and must renumber them into a compact
// local range. The paper contrasts:
//   * the baseline: sort the full id stream and binary-search each entry
//     ("efficient parallel reordering is difficult to achieve"), and
//   * the optimisation: build a hash map per task, merge the key sets with
//     a merge sort, then distribute the local ids back via reverse mapping.
// Both are implemented here; they must produce identical mappings, and the
// bench bench_amg_kernels compares their cost.

#include <cstdint>
#include <span>
#include <vector>

namespace cpx::sparse {

struct Renumbering {
  /// Distinct global ids in ascending order; local id = position.
  std::vector<std::int64_t> locals_to_global;
  /// The input stream rewritten to local ids.
  std::vector<std::int32_t> renumbered;
};

/// Baseline: copy + sort + unique + per-entry binary search.
Renumbering renumber_sort(std::span<const std::int64_t> global_ids);

/// Optimised: hash-map first-touch assignment over `num_chunks` simulated
/// tasks, merged key sets, reverse-mapped back (num_chunks = 1 degenerates
/// to a plain single hash map).
Renumbering renumber_hash_merge(std::span<const std::int64_t> global_ids,
                                int num_chunks = 4);

}  // namespace cpx::sparse
