#pragma once
// Canonical test matrices: 1-D/3-D finite-difference Poisson operators and
// a random SPD perturbation. Used by the AMG module's tests and the SpGEMM
// ablation benches without pulling in the mesh module.

#include <cstdint>

#include "sparse/csr.hpp"

namespace cpx::sparse {

/// Tridiagonal 1-D Poisson matrix (2 on the diagonal, -1 off).
CsrMatrix laplacian_1d(std::int64_t n);

/// 7-point 3-D Poisson matrix on an nx x ny x nz grid.
CsrMatrix laplacian_3d(int nx, int ny, int nz);

/// 5-point 2-D Poisson matrix on an nx x ny grid.
CsrMatrix laplacian_2d(int nx, int ny);

/// Random sparse matrix with ~nnz_per_row entries per row (deterministic
/// from seed); diagonally dominated so it is safely invertible.
CsrMatrix random_spd(std::int64_t n, int nnz_per_row, std::uint64_t seed);

}  // namespace cpx::sparse
