#pragma once
// Compressed-sparse-row matrices and the kernels the paper's §IV-B
// optimisation study targets: SpMV, SpGEMM (reference two-pass and
// optimised single-pass with a sparse accumulator), transpose, and the
// Galerkin triple product R*A*P used in AMG setup.

#include <cstdint>
#include <span>
#include <vector>

#include "support/aligned.hpp"

namespace cpx::sparse {

struct Triplet {
  std::int64_t row = 0;
  std::int64_t col = 0;
  double value = 0.0;
};

/// Tag for CSR storage produced by the library's own kernels (SpGEMM,
/// transpose, plan numeric passes): structure invariants hold by
/// construction, so the O(nnz) per-entry validation runs only when the
/// checking tier is at least check::Level::kDebug (the default in debug
/// builds; CPX_CHECK_LEVEL=debug opts a release build in). User-facing
/// constructors (csr_from_triplets, the untagged constructor) always
/// validate fully.
struct Trusted {};

class CsrMatrix {
 public:
  CsrMatrix() = default;
  // Values are stored 64-byte aligned (support/aligned.hpp) for the SIMD
  // SpMV kernels; the aligned_vector overloads move, the std::vector
  // overloads copy into aligned storage for callers that build values in
  // plain vectors.
  CsrMatrix(std::int64_t rows, std::int64_t cols,
            std::vector<std::int64_t> row_offsets,
            std::vector<std::int32_t> col_indices,
            support::aligned_vector<double> values);
  CsrMatrix(std::int64_t rows, std::int64_t cols,
            std::vector<std::int64_t> row_offsets,
            std::vector<std::int32_t> col_indices,
            support::aligned_vector<double> values, Trusted);
  CsrMatrix(std::int64_t rows, std::int64_t cols,
            std::vector<std::int64_t> row_offsets,
            std::vector<std::int32_t> col_indices,
            const std::vector<double>& values);
  CsrMatrix(std::int64_t rows, std::int64_t cols,
            std::vector<std::int64_t> row_offsets,
            std::vector<std::int32_t> col_indices,
            const std::vector<double>& values, Trusted);
  // Braced value lists would convert equally well to either vector type,
  // so give them an overload that wins outright.
  CsrMatrix(std::int64_t rows, std::int64_t cols,
            std::vector<std::int64_t> row_offsets,
            std::vector<std::int32_t> col_indices,
            std::initializer_list<double> values)
      : CsrMatrix(rows, cols, std::move(row_offsets),
                  std::move(col_indices),
                  support::aligned_vector<double>(values.begin(),
                                                  values.end())) {}
  CsrMatrix(std::int64_t rows, std::int64_t cols,
            std::vector<std::int64_t> row_offsets,
            std::vector<std::int32_t> col_indices,
            std::initializer_list<double> values, Trusted)
      : CsrMatrix(rows, cols, std::move(row_offsets),
                  std::move(col_indices),
                  support::aligned_vector<double>(values.begin(),
                                                  values.end()),
                  Trusted{}) {}

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t nnz() const {
    return static_cast<std::int64_t>(values_.size());
  }

  const std::vector<std::int64_t>& row_offsets() const { return row_offsets_; }
  const std::vector<std::int32_t>& col_indices() const { return col_indices_; }
  const support::aligned_vector<double>& values() const { return values_; }
  support::aligned_vector<double>& mutable_values() { return values_; }

  /// Row r as (cols, values) spans.
  std::span<const std::int32_t> row_cols(std::int64_t r) const;
  std::span<const double> row_values(std::int64_t r) const;

  /// Value at (r, c), 0 if not stored (binary search of the sorted row).
  double at(std::int64_t r, std::int64_t c) const;

  /// Checks offsets are monotone, columns in range and sorted per row.
  void validate() const;

  static CsrMatrix identity(std::int64_t n);

 private:
  /// O(rows) shape/offset checks only (the Trusted construction path).
  void validate_shape() const;

  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<std::int64_t> row_offsets_;
  std::vector<std::int32_t> col_indices_;
  support::aligned_vector<double> values_;
};

/// Builds a CSR matrix from (possibly unsorted, duplicate) triplets;
/// duplicates are summed, rows end up sorted by column.
CsrMatrix csr_from_triplets(std::int64_t rows, std::int64_t cols,
                            std::span<const Triplet> triplets);

/// y = A x.
void spmv(const CsrMatrix& a, std::span<const double> x,
          std::span<double> y);

/// y = A x + beta y.
void spmv_add(const CsrMatrix& a, std::span<const double> x,
              std::span<double> y, double beta);

/// Fused residual r = b − A·x in one sweep (vs spmv + subtract pass).
void spmv_residual(const CsrMatrix& a, std::span<const double> x,
                   std::span<const double> b, std::span<double> r);

/// Fused residual + reduction: computes r = b − A·x and returns ‖r‖² in
/// the same sweep — the residual-check kernel of the solve loops, one
/// read of A/x/b and one write of r instead of three vector passes. The
/// reduction uses the deterministic chunked combine of docs/parallelism.md.
double spmv_residual_norm2(const CsrMatrix& a, std::span<const double> x,
                           std::span<const double> b, std::span<double> r);

CsrMatrix transpose(const CsrMatrix& a);

/// True iff a and b have identical dimensions, row offsets, and column
/// indices (values may differ).
bool same_structure(const CsrMatrix& a, const CsrMatrix& b);

/// For fixed-structure transpose refreshes: perm[k] is the slot in
/// transpose(a) holding entry k of a, so a numeric-only transpose is
/// at.values[perm[k]] = a.values[k]. `at` must be transpose(a)'s structure.
std::vector<std::int64_t> transpose_permutation(const CsrMatrix& a,
                                                const CsrMatrix& at);

/// Numeric-only transpose over fixed structure using a permutation from
/// transpose_permutation. Allocation-free.
void transpose_numeric(const CsrMatrix& a,
                       std::span<const std::int64_t> perm, CsrMatrix& at);

/// Cached symbolic SpGEMM plan for products over fixed sparsity: holds the
/// output structure of A·B (offsets + columns) plus per-lane scatter
/// scratch, so repeated products where only values change pay the numeric
/// pass alone — the structure-reuse scheme the coupled workflow's
/// fixed-mesh pressure matrix enables (paper §IV-B task compaction, done
/// once instead of every step). Accumulation order per output entry
/// matches spgemm_spa/spgemm_twopass exactly, so numeric results are
/// bitwise identical to the from-scratch kernels at any thread count.
class SpgemmPlan {
 public:
  SpgemmPlan() = default;

  /// Symbolic pass over A·B (counts and records the output structure).
  SpgemmPlan(const CsrMatrix& a, const CsrMatrix& b);

  /// Adopts the structure of an already-computed product C = A·B (no
  /// symbolic pass — free when the first product was computed anyway).
  SpgemmPlan(const CsrMatrix& a, const CsrMatrix& b, const CsrMatrix& c);

  bool empty() const { return rows_ == 0 && cols_ == 0; }
  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t nnz() const {
    return row_offsets_.empty() ? 0 : row_offsets_.back();
  }
  /// Multiply-add count of one numeric pass (fixed by the structure).
  std::int64_t flops() const { return flops_; }

  /// Numeric pass into a freshly allocated matrix.
  CsrMatrix numeric(const CsrMatrix& a, const CsrMatrix& b) const;

  /// Numeric pass into an existing matrix with this plan's structure;
  /// allocation-free after the per-lane scratch warms up.
  void numeric_into(const CsrMatrix& a, const CsrMatrix& b,
                    CsrMatrix& c) const;

 private:
  void check_inputs(const CsrMatrix& a, const CsrMatrix& b) const;
  void fill_values(const CsrMatrix& a, const CsrMatrix& b,
                   const std::vector<std::int64_t>& offsets,
                   const std::vector<std::int32_t>& cols,
                   support::aligned_vector<double>& vals) const;

  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;      ///< output columns (= B cols)
  std::int64_t inner_ = 0;     ///< inner dimension (= A cols = B rows)
  std::int64_t flops_ = 0;
  std::vector<std::int64_t> row_offsets_;
  std::vector<std::int32_t> col_indices_;
  // Per-lane dense accumulators (one double per output column). The
  // numeric pass accumulates each row into the dense array with a single
  // indirection, then gathers/clears exactly the planned columns — no
  // marker branch, no sort, no compaction. A lane runs one chunk at a time
  // (support::parallel_chunks), so lane-indexed scratch needs no locking;
  // mutable because reusing it is an implementation detail of the const
  // numeric passes.
  mutable std::vector<support::aligned_vector<double>> lane_acc_;
};

/// Reference SpGEMM: symbolic pass sizes the output, numeric pass fills it
/// (the "input matrices read twice" baseline of §IV-B).
CsrMatrix spgemm_twopass(const CsrMatrix& a, const CsrMatrix& b);

/// Optimised SpGEMM: single pass with a dense sparse-accumulator (SPA)
/// giving O(1) access to any output element, rows built into per-row
/// scratch then compacted into contiguous storage (§IV-B optimisations 1-2).
CsrMatrix spgemm_spa(const CsrMatrix& a, const CsrMatrix& b);

/// Galerkin coarse operator R A P (computed as R*(A*P)).
CsrMatrix galerkin_product(const CsrMatrix& r, const CsrMatrix& a,
                           const CsrMatrix& p);

/// Frobenius-norm distance between two matrices (for equivalence tests).
double frobenius_distance(const CsrMatrix& a, const CsrMatrix& b);

}  // namespace cpx::sparse
