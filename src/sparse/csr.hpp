#pragma once
// Compressed-sparse-row matrices and the kernels the paper's §IV-B
// optimisation study targets: SpMV, SpGEMM (reference two-pass and
// optimised single-pass with a sparse accumulator), transpose, and the
// Galerkin triple product R*A*P used in AMG setup.

#include <cstdint>
#include <span>
#include <vector>

namespace cpx::sparse {

struct Triplet {
  std::int64_t row = 0;
  std::int64_t col = 0;
  double value = 0.0;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;
  CsrMatrix(std::int64_t rows, std::int64_t cols,
            std::vector<std::int64_t> row_offsets,
            std::vector<std::int32_t> col_indices,
            std::vector<double> values);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t nnz() const {
    return static_cast<std::int64_t>(values_.size());
  }

  const std::vector<std::int64_t>& row_offsets() const { return row_offsets_; }
  const std::vector<std::int32_t>& col_indices() const { return col_indices_; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }

  /// Row r as (cols, values) spans.
  std::span<const std::int32_t> row_cols(std::int64_t r) const;
  std::span<const double> row_values(std::int64_t r) const;

  /// Value at (r, c), 0 if not stored (binary search of the sorted row).
  double at(std::int64_t r, std::int64_t c) const;

  /// Checks offsets are monotone, columns in range and sorted per row.
  void validate() const;

  static CsrMatrix identity(std::int64_t n);

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<std::int64_t> row_offsets_;
  std::vector<std::int32_t> col_indices_;
  std::vector<double> values_;
};

/// Builds a CSR matrix from (possibly unsorted, duplicate) triplets;
/// duplicates are summed, rows end up sorted by column.
CsrMatrix csr_from_triplets(std::int64_t rows, std::int64_t cols,
                            std::span<const Triplet> triplets);

/// y = A x.
void spmv(const CsrMatrix& a, std::span<const double> x,
          std::span<double> y);

/// y = A x + beta y.
void spmv_add(const CsrMatrix& a, std::span<const double> x,
              std::span<double> y, double beta);

CsrMatrix transpose(const CsrMatrix& a);

/// Reference SpGEMM: symbolic pass sizes the output, numeric pass fills it
/// (the "input matrices read twice" baseline of §IV-B).
CsrMatrix spgemm_twopass(const CsrMatrix& a, const CsrMatrix& b);

/// Optimised SpGEMM: single pass with a dense sparse-accumulator (SPA)
/// giving O(1) access to any output element, rows built into per-row
/// scratch then compacted into contiguous storage (§IV-B optimisations 1-2).
CsrMatrix spgemm_spa(const CsrMatrix& a, const CsrMatrix& b);

/// Galerkin coarse operator R A P (computed as R*(A*P)).
CsrMatrix galerkin_product(const CsrMatrix& r, const CsrMatrix& a,
                           const CsrMatrix& p);

/// Frobenius-norm distance between two matrices (for equivalence tests).
double frobenius_distance(const CsrMatrix& a, const CsrMatrix& b);

}  // namespace cpx::sparse
