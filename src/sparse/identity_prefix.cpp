#include "sparse/identity_prefix.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace cpx::sparse {

IdentityPrefixMatrix::IdentityPrefixMatrix(std::int64_t identity_rows,
                                           std::int64_t cols, CsrMatrix rest)
    : identity_rows_(identity_rows), cols_(cols), rest_(std::move(rest)) {
  CPX_REQUIRE(identity_rows >= 0, "IdentityPrefixMatrix: negative prefix");
  CPX_REQUIRE(cols >= identity_rows,
              "IdentityPrefixMatrix: prefix wider than the matrix");
  CPX_REQUIRE(rest_.cols() == cols,
              "IdentityPrefixMatrix: rest column count mismatch");
}

IdentityPrefixMatrix IdentityPrefixMatrix::from_csr(const CsrMatrix& a) {
  std::int64_t prefix = 0;
  while (prefix < a.rows() && prefix < a.cols()) {
    const auto cols = a.row_cols(prefix);
    const auto vals = a.row_values(prefix);
    if (cols.size() == 1 && cols[0] == prefix && vals[0] == 1.0) {
      ++prefix;
    } else {
      break;
    }
  }
  // Slice the remaining rows into their own CSR.
  const auto& offsets = a.row_offsets();
  const auto base = offsets[static_cast<std::size_t>(prefix)];
  std::vector<std::int64_t> rest_offsets;
  rest_offsets.reserve(static_cast<std::size_t>(a.rows() - prefix) + 1);
  for (std::int64_t r = prefix; r <= a.rows(); ++r) {
    rest_offsets.push_back(offsets[static_cast<std::size_t>(r)] - base);
  }
  std::vector<std::int32_t> rest_cols(
      a.col_indices().begin() + base, a.col_indices().end());
  std::vector<double> rest_vals(a.values().begin() + base, a.values().end());
  return IdentityPrefixMatrix(
      prefix, a.cols(),
      CsrMatrix(a.rows() - prefix, a.cols(), std::move(rest_offsets),
                std::move(rest_cols), std::move(rest_vals)));
}

void IdentityPrefixMatrix::apply(std::span<const double> x,
                                 std::span<double> y) const {
  CPX_REQUIRE(x.size() == static_cast<std::size_t>(cols_),
              "apply: x size mismatch");
  CPX_REQUIRE(y.size() == static_cast<std::size_t>(rows()),
              "apply: y size mismatch");
  // Identity block: straight copy, no index loads.
  std::copy(x.begin(), x.begin() + identity_rows_, y.begin());
  spmv(rest_, x, y.subspan(static_cast<std::size_t>(identity_rows_)));
}

CsrMatrix IdentityPrefixMatrix::to_csr() const {
  std::vector<Triplet> t;
  t.reserve(static_cast<std::size_t>(identity_rows_ + rest_.nnz()));
  for (std::int64_t i = 0; i < identity_rows_; ++i) {
    t.push_back({i, i, 1.0});
  }
  for (std::int64_t r = 0; r < rest_.rows(); ++r) {
    const auto cols = rest_.row_cols(r);
    const auto vals = rest_.row_values(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      t.push_back({identity_rows_ + r, cols[k], vals[k]});
    }
  }
  return csr_from_triplets(rows(), cols_, t);
}

}  // namespace cpx::sparse
