#include "sparse/csr.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/simd.hpp"

namespace cpx::sparse {
namespace {

// Static-partition grains (docs/parallelism.md). Fixed constants so the
// chunk decomposition — and therefore every result — is independent of
// the thread count.
constexpr std::int64_t kRowGrain = 2048;     ///< SpMV-class row loops
constexpr std::int64_t kSpgemmGrain = 256;   ///< SpGEMM row passes

/// Width-invariant row dot product (docs/parallelism.md, determinism
/// tiers). Rows shorter than simd::kReduceLanes keep the plain serial
/// chain — bitwise identical to the historical kernel for common stencil
/// widths; longer rows use the fixed-lane tree, whose bits are identical
/// at every pack width. The branch depends on the row length alone,
/// never on the active width, so results are width-invariant either way.
template <int W>
double row_dot(const double* vals, const std::int32_t* cols, const double* x,
               std::int64_t k0, std::int64_t k1) {
  if (k1 - k0 < support::simd::kReduceLanes) {
    double sum = 0.0;
    for (std::int64_t k = k0; k < k1; ++k) {
      sum += vals[k] * x[cols[k]];
    }
    return sum;
  }
  return support::simd::tree_reduce<W>(
      k0, k1,
      [&](std::int64_t k) {
        return support::simd::pack<W>::load(vals + k) *
               support::simd::pack<W>::gather(x, cols + k);
      },
      [&](std::int64_t k) { return vals[k] * x[cols[k]]; });
}

}  // namespace

CsrMatrix::CsrMatrix(std::int64_t rows, std::int64_t cols,
                     std::vector<std::int64_t> row_offsets,
                     std::vector<std::int32_t> col_indices,
                     support::aligned_vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_offsets_(std::move(row_offsets)),
      col_indices_(std::move(col_indices)),
      values_(std::move(values)) {
  validate();
}

CsrMatrix::CsrMatrix(std::int64_t rows, std::int64_t cols,
                     std::vector<std::int64_t> row_offsets,
                     std::vector<std::int32_t> col_indices,
                     const std::vector<double>& values)
    : CsrMatrix(rows, cols, std::move(row_offsets), std::move(col_indices),
                support::aligned_vector<double>(values.begin(),
                                                values.end())) {}

CsrMatrix::CsrMatrix(std::int64_t rows, std::int64_t cols,
                     std::vector<std::int64_t> row_offsets,
                     std::vector<std::int32_t> col_indices,
                     support::aligned_vector<double> values, Trusted)
    : rows_(rows),
      cols_(cols),
      row_offsets_(std::move(row_offsets)),
      col_indices_(std::move(col_indices)),
      values_(std::move(values)) {
  // Internally-built structure: the O(nnz) per-entry sweep ran inside
  // solve loops on every intermediate SpGEMM product, so it is gated on
  // the checking tier here (on by default in debug builds, opt-in via
  // CPX_CHECK_LEVEL=debug in release); the O(rows) shape invariants stay
  // always-on.
  validate_shape();
  if (check::deep()) {
    validate();
  }
}

CsrMatrix::CsrMatrix(std::int64_t rows, std::int64_t cols,
                     std::vector<std::int64_t> row_offsets,
                     std::vector<std::int32_t> col_indices,
                     const std::vector<double>& values, Trusted)
    : CsrMatrix(rows, cols, std::move(row_offsets), std::move(col_indices),
                support::aligned_vector<double>(values.begin(), values.end()),
                Trusted{}) {}

std::span<const std::int32_t> CsrMatrix::row_cols(std::int64_t r) const {
  CPX_DCHECK(r >= 0 && r < rows_);
  const auto begin = static_cast<std::size_t>(
      row_offsets_[static_cast<std::size_t>(r)]);
  const auto end = static_cast<std::size_t>(
      row_offsets_[static_cast<std::size_t>(r) + 1]);
  return {col_indices_.data() + begin, end - begin};
}

std::span<const double> CsrMatrix::row_values(std::int64_t r) const {
  CPX_DCHECK(r >= 0 && r < rows_);
  const auto begin = static_cast<std::size_t>(
      row_offsets_[static_cast<std::size_t>(r)]);
  const auto end = static_cast<std::size_t>(
      row_offsets_[static_cast<std::size_t>(r) + 1]);
  return {values_.data() + begin, end - begin};
}

double CsrMatrix::at(std::int64_t r, std::int64_t c) const {
  const auto cols = row_cols(r);
  const auto vals = row_values(r);
  const auto it = std::lower_bound(cols.begin(), cols.end(),
                                   static_cast<std::int32_t>(c));
  if (it != cols.end() && *it == static_cast<std::int32_t>(c)) {
    return vals[static_cast<std::size_t>(it - cols.begin())];
  }
  return 0.0;
}

void CsrMatrix::validate_shape() const {
  CPX_CHECK_MSG(rows_ >= 0 && cols_ >= 0, "negative dimensions");
  CPX_CHECK_MSG(row_offsets_.size() == static_cast<std::size_t>(rows_) + 1,
                "row_offsets size " << row_offsets_.size() << " != rows+1");
  CPX_CHECK_MSG(row_offsets_.front() == 0, "row_offsets must start at 0");
  CPX_CHECK_MSG(
      row_offsets_.back() == static_cast<std::int64_t>(values_.size()),
      "row_offsets end != nnz");
  CPX_CHECK_MSG(col_indices_.size() == values_.size(),
                "col/value size mismatch");
  for (std::int64_t r = 0; r < rows_; ++r) {
    CPX_CHECK_MSG(row_offsets_[static_cast<std::size_t>(r)] <=
                      row_offsets_[static_cast<std::size_t>(r) + 1],
                  "non-monotone row_offsets at row " << r);
  }
}

void CsrMatrix::validate() const {
  validate_shape();
  for (std::int64_t r = 0; r < rows_; ++r) {
    const auto cols = row_cols(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      CPX_CHECK_MSG(cols[i] >= 0 && cols[i] < cols_,
                    "column out of range at row " << r);
      if (i > 0) {
        CPX_CHECK_MSG(cols[i - 1] < cols[i],
                      "columns not strictly sorted at row " << r);
      }
    }
  }
}

CsrMatrix CsrMatrix::identity(std::int64_t n) {
  std::vector<std::int64_t> offsets(static_cast<std::size_t>(n) + 1);
  std::vector<std::int32_t> cols(static_cast<std::size_t>(n));
  support::aligned_vector<double> vals(static_cast<std::size_t>(n), 1.0);
  for (std::int64_t i = 0; i <= n; ++i) {
    offsets[static_cast<std::size_t>(i)] = i;
  }
  for (std::int64_t i = 0; i < n; ++i) {
    cols[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(i);
  }
  return CsrMatrix(n, n, std::move(offsets), std::move(cols),
                   std::move(vals), Trusted{});
}

CsrMatrix csr_from_triplets(std::int64_t rows, std::int64_t cols,
                            std::span<const Triplet> triplets) {
  std::vector<Triplet> sorted(triplets.begin(), triplets.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  std::vector<std::int64_t> offsets(static_cast<std::size_t>(rows) + 1, 0);
  std::vector<std::int32_t> out_cols;
  support::aligned_vector<double> out_vals;
  out_cols.reserve(sorted.size());
  out_vals.reserve(sorted.size());
  for (std::size_t i = 0; i < sorted.size();) {
    const Triplet& t = sorted[i];
    CPX_REQUIRE(t.row >= 0 && t.row < rows && t.col >= 0 && t.col < cols,
                "csr_from_triplets: entry (" << t.row << "," << t.col
                                             << ") out of range");
    double sum = 0.0;
    std::size_t j = i;
    while (j < sorted.size() && sorted[j].row == t.row &&
           sorted[j].col == t.col) {
      sum += sorted[j].value;
      ++j;
    }
    out_cols.push_back(static_cast<std::int32_t>(t.col));
    out_vals.push_back(sum);
    ++offsets[static_cast<std::size_t>(t.row) + 1];
    i = j;
  }
  for (std::size_t r = 1; r <= static_cast<std::size_t>(rows); ++r) {
    offsets[r] += offsets[r - 1];
  }
  return CsrMatrix(rows, cols, std::move(offsets), std::move(out_cols),
                   std::move(out_vals));
}

void spmv(const CsrMatrix& a, std::span<const double> x,
          std::span<double> y) {
  CPX_REQUIRE(x.size() == static_cast<std::size_t>(a.cols()),
              "spmv: x size mismatch");
  CPX_REQUIRE(y.size() == static_cast<std::size_t>(a.rows()),
              "spmv: y size mismatch");
  CPX_METRICS_SCOPE("sparse/spmv");
  if (support::metrics::enabled()) {
    support::metrics::counter_add("sparse/spmv_nnz", a.nnz());
    support::metrics::counter_add("sparse/spmv_flops", 2 * a.nnz());
    // Streaming estimate: values + column indices + x gathers + y stores.
    support::metrics::counter_add(
        "sparse/spmv_bytes",
        a.nnz() * static_cast<std::int64_t>(sizeof(double) +
                                            sizeof(std::int32_t) +
                                            sizeof(double)) +
            a.rows() * static_cast<std::int64_t>(sizeof(double)));
  }
  const std::int64_t* offsets = a.row_offsets().data();
  const std::int32_t* cols = a.col_indices().data();
  const double* vals = a.values().data();
  const double* px = x.data();
  double* py = y.data();
  support::simd::dispatch([&](auto width) {
    constexpr int W = decltype(width)::value;
    support::parallel_for(
        0, a.rows(), kRowGrain, [&](std::int64_t r0, std::int64_t r1) {
          for (std::int64_t r = r0; r < r1; ++r) {
            py[r] = row_dot<W>(vals, cols, px, offsets[r], offsets[r + 1]);
          }
        });
  });
}

void spmv_add(const CsrMatrix& a, std::span<const double> x,
              std::span<double> y, double beta) {
  CPX_REQUIRE(x.size() == static_cast<std::size_t>(a.cols()),
              "spmv_add: x size mismatch");
  CPX_REQUIRE(y.size() == static_cast<std::size_t>(a.rows()),
              "spmv_add: y size mismatch");
  CPX_METRICS_SCOPE("sparse/spmv");
  if (support::metrics::enabled()) {
    support::metrics::counter_add("sparse/spmv_nnz", a.nnz());
    support::metrics::counter_add("sparse/spmv_flops",
                                  2 * a.nnz() + 2 * a.rows());
  }
  const std::int64_t* offsets = a.row_offsets().data();
  const std::int32_t* cols = a.col_indices().data();
  const double* vals = a.values().data();
  const double* px = x.data();
  double* py = y.data();
  support::simd::dispatch([&](auto width) {
    constexpr int W = decltype(width)::value;
    support::parallel_for(
        0, a.rows(), kRowGrain, [&](std::int64_t r0, std::int64_t r1) {
          for (std::int64_t r = r0; r < r1; ++r) {
            const double sum =
                row_dot<W>(vals, cols, px, offsets[r], offsets[r + 1]);
            py[r] = sum + beta * py[r];
          }
        });
  });
}

void spmv_residual(const CsrMatrix& a, std::span<const double> x,
                   std::span<const double> b, std::span<double> r) {
  CPX_REQUIRE(x.size() == static_cast<std::size_t>(a.cols()),
              "spmv_residual: x size mismatch");
  CPX_REQUIRE(b.size() == static_cast<std::size_t>(a.rows()) &&
                  r.size() == b.size(),
              "spmv_residual: b/r size mismatch");
  CPX_METRICS_SCOPE("sparse/spmv");
  if (support::metrics::enabled()) {
    support::metrics::counter_add("sparse/spmv_nnz", a.nnz());
    support::metrics::counter_add("sparse/spmv_flops",
                                  2 * a.nnz() + a.rows());
  }
  const std::int64_t* offsets = a.row_offsets().data();
  const std::int32_t* cols = a.col_indices().data();
  const double* vals = a.values().data();
  const double* px = x.data();
  const double* pb = b.data();
  double* pr = r.data();
  support::simd::dispatch([&](auto width) {
    constexpr int W = decltype(width)::value;
    support::parallel_for(
        0, a.rows(), kRowGrain, [&](std::int64_t r0, std::int64_t r1) {
          for (std::int64_t row = r0; row < r1; ++row) {
            const double sum =
                row_dot<W>(vals, cols, px, offsets[row], offsets[row + 1]);
            pr[row] = pb[row] - sum;
          }
        });
  });
}

double spmv_residual_norm2(const CsrMatrix& a, std::span<const double> x,
                           std::span<const double> b, std::span<double> r) {
  CPX_REQUIRE(x.size() == static_cast<std::size_t>(a.cols()),
              "spmv_residual_norm2: x size mismatch");
  CPX_REQUIRE(b.size() == static_cast<std::size_t>(a.rows()) &&
                  r.size() == b.size(),
              "spmv_residual_norm2: b/r size mismatch");
  CPX_METRICS_SCOPE("sparse/spmv");
  if (support::metrics::enabled()) {
    support::metrics::counter_add("sparse/spmv_nnz", a.nnz());
    support::metrics::counter_add("sparse/spmv_flops",
                                  2 * a.nnz() + 3 * a.rows());
  }
  const std::int64_t* offsets = a.row_offsets().data();
  const std::int32_t* cols = a.col_indices().data();
  const double* vals = a.values().data();
  const double* px = x.data();
  const double* pb = b.data();
  double* pr = r.data();
  // Fusing the norm into the SpMV sweep is the point of this kernel, so it
  // cannot route through blas1. Row sums vectorize via row_dot; the
  // cross-row res*res accumulation stays a serial scalar chain inside the
  // chunk — width-invariant by construction, and thread-invariant because
  // the kRowGrain decomposition is fixed.
  return support::simd::dispatch([&](auto width) {
    constexpr int W = decltype(width)::value;
    return support::parallel_reduce(  // cpx-lint: allow(reduce)
        0, a.rows(), kRowGrain, 0.0, [&](std::int64_t r0, std::int64_t r1) {
          double partial = 0.0;
          for (std::int64_t row = r0; row < r1; ++row) {
            const double sum =
                row_dot<W>(vals, cols, px, offsets[row], offsets[row + 1]);
            const double res = pb[row] - sum;
            pr[row] = res;
            partial += res * res;
          }
          return partial;
        });
  });
}

namespace {

/// Serial transpose core (also the small-matrix path of the parallel one).
CsrMatrix transpose_serial(const CsrMatrix& a) {
  std::vector<std::int64_t> offsets(static_cast<std::size_t>(a.cols()) + 1,
                                    0);
  for (std::int32_t c : a.col_indices()) {
    ++offsets[static_cast<std::size_t>(c) + 1];
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    offsets[i] += offsets[i - 1];
  }
  std::vector<std::int32_t> cols(a.values().size());
  support::aligned_vector<double> vals(a.values().size());
  std::vector<std::int64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    const auto rc = a.row_cols(r);
    const auto rv = a.row_values(r);
    for (std::size_t i = 0; i < rc.size(); ++i) {
      const auto slot = static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(rc[i])]++);
      cols[slot] = static_cast<std::int32_t>(r);
      vals[slot] = rv[i];
    }
  }
  return CsrMatrix(a.cols(), a.rows(), std::move(offsets), std::move(cols),
                   std::move(vals), Trusted{});
}

}  // namespace

CsrMatrix transpose(const CsrMatrix& a) {
  CPX_METRICS_SCOPE("sparse/transpose");
  if (support::metrics::enabled()) {
    support::metrics::counter_add("sparse/transpose_nnz", a.nnz());
  }
  // Two-phase chunked transpose: per-chunk column histograms, a serial
  // chunk-order prefix giving each chunk its starting cursor per column,
  // then a parallel scatter. Entries within an output row keep ascending
  // source-row order (each chunk covers a contiguous row range and chunks
  // are prefixed in order), so the result is byte-identical to the serial
  // scan — transpose has no floating-point accumulation, which is why the
  // chunk count may depend on the thread count without breaking the
  // determinism contract. The histogram memory is nchunks*cols, so the
  // chunk count is capped independently of the row grain.
  const std::int64_t rows = a.rows();
  const std::int64_t cols_n = a.cols();
  const std::int64_t max_chunks =
      std::min<std::int64_t>(4 * support::max_threads(), 64);
  const std::int64_t grain =
      std::max<std::int64_t>(kRowGrain, (rows + max_chunks - 1) / max_chunks);
  const std::int64_t nchunks = support::num_chunks(0, rows, grain);
  if (nchunks <= 1 || cols_n == 0) {
    return transpose_serial(a);
  }

  std::vector<std::int64_t> counts(
      static_cast<std::size_t>(nchunks * cols_n), 0);
  support::parallel_chunks(0, rows, grain, [&](std::int64_t chunk,
                                               std::int64_t r0,
                                               std::int64_t r1, int) {
    std::int64_t* count = counts.data() + chunk * cols_n;
    for (std::int64_t r = r0; r < r1; ++r) {
      for (std::int32_t c : a.row_cols(r)) {
        ++count[c];
      }
    }
  });

  // Column offsets plus per-chunk starting cursors, both from one serial
  // chunk-order scan of the histograms.
  std::vector<std::int64_t> offsets(static_cast<std::size_t>(cols_n) + 1, 0);
  for (std::int64_t c = 0; c < cols_n; ++c) {
    std::int64_t total = 0;
    for (std::int64_t chunk = 0; chunk < nchunks; ++chunk) {
      const std::int64_t n = counts[static_cast<std::size_t>(
          chunk * cols_n + c)];
      counts[static_cast<std::size_t>(chunk * cols_n + c)] = total;
      total += n;
    }
    offsets[static_cast<std::size_t>(c) + 1] = total;
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    offsets[i] += offsets[i - 1];
  }

  std::vector<std::int32_t> out_cols(a.values().size());
  support::aligned_vector<double> out_vals(a.values().size());
  support::parallel_chunks(0, rows, grain, [&](std::int64_t chunk,
                                               std::int64_t r0,
                                               std::int64_t r1, int) {
    std::int64_t* cursor = counts.data() + chunk * cols_n;
    for (std::int64_t r = r0; r < r1; ++r) {
      const auto rc = a.row_cols(r);
      const auto rv = a.row_values(r);
      for (std::size_t i = 0; i < rc.size(); ++i) {
        const auto c = static_cast<std::size_t>(rc[i]);
        const auto slot = static_cast<std::size_t>(
            offsets[c] + cursor[c]++);
        out_cols[slot] = static_cast<std::int32_t>(r);
        out_vals[slot] = rv[i];
      }
    }
  });
  return CsrMatrix(a.cols(), a.rows(), std::move(offsets),
                   std::move(out_cols), std::move(out_vals), Trusted{});
}

bool same_structure(const CsrMatrix& a, const CsrMatrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         a.row_offsets() == b.row_offsets() &&
         a.col_indices() == b.col_indices();
}

std::vector<std::int64_t> transpose_permutation(const CsrMatrix& a,
                                                const CsrMatrix& at) {
  CPX_REQUIRE(at.rows() == a.cols() && at.cols() == a.rows() &&
                  at.nnz() == a.nnz(),
              "transpose_permutation: shape mismatch");
  std::vector<std::int64_t> cursor(at.row_offsets().begin(),
                                   at.row_offsets().end() - 1);
  std::vector<std::int64_t> perm(static_cast<std::size_t>(a.nnz()));
  std::int64_t k = 0;
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    for (std::int32_t c : a.row_cols(r)) {
      perm[static_cast<std::size_t>(k++)] =
          cursor[static_cast<std::size_t>(c)]++;
    }
  }
  return perm;
}

void transpose_numeric(const CsrMatrix& a,
                       std::span<const std::int64_t> perm, CsrMatrix& at) {
  CPX_REQUIRE(perm.size() == static_cast<std::size_t>(a.nnz()) &&
                  at.nnz() == a.nnz(),
              "transpose_numeric: size mismatch");
  const auto& src = a.values();
  auto& dst = at.mutable_values();
  support::parallel_for(0, a.nnz(), kRowGrain, [&](std::int64_t k0,
                                                   std::int64_t k1) {
    for (std::int64_t k = k0; k < k1; ++k) {
      dst[static_cast<std::size_t>(perm[static_cast<std::size_t>(k)])] =
          src[static_cast<std::size_t>(k)];
    }
  });
}

namespace {

/// Multiply-add count of A·B: Σ over entries (r,k) of A of nnz(B row k).
/// O(nnz(A)); used for the sparse/spgemm_flops counter.
std::int64_t spgemm_flop_count(const CsrMatrix& a, const CsrMatrix& b) {
  const auto& boff = b.row_offsets();
  std::int64_t flops = 0;
  for (std::int32_t ak : a.col_indices()) {
    flops += boff[static_cast<std::size_t>(ak) + 1] -
             boff[static_cast<std::size_t>(ak)];
  }
  return flops;
}

}  // namespace

CsrMatrix spgemm_twopass(const CsrMatrix& a, const CsrMatrix& b) {
  CPX_REQUIRE(a.cols() == b.rows(), "spgemm: inner dimension mismatch");
  CPX_METRICS_SCOPE("sparse/spgemm_twopass");
  if (support::metrics::enabled()) {
    support::metrics::counter_add("sparse/spgemm_flops",
                                  spgemm_flop_count(a, b));
  }
  const std::int64_t m = a.rows();
  const std::int64_t n = b.cols();

  // Per-lane marker/position scratch: a lane runs one chunk at a time, and
  // marker entries store the (globally unique) row id, so reuse across rows
  // and chunks is safe without resets.
  const auto lanes = static_cast<std::size_t>(support::max_threads());

  // Symbolic pass: count distinct columns per output row using a marker
  // array (reads both inputs once, discards the structure). Row-parallel.
  std::vector<std::int64_t> offsets(static_cast<std::size_t>(m) + 1, 0);
  std::vector<std::vector<std::int64_t>> markers(lanes);
  support::parallel_chunks(0, m, kSpgemmGrain, [&](std::int64_t,
                                                   std::int64_t r0,
                                                   std::int64_t r1,
                                                   int lane) {
    auto& marker = markers[static_cast<std::size_t>(lane)];
    if (marker.empty()) {
      marker.assign(static_cast<std::size_t>(n), -1);
    }
    for (std::int64_t r = r0; r < r1; ++r) {
      std::int64_t count = 0;
      for (std::int32_t ak : a.row_cols(r)) {
        for (std::int32_t bk : b.row_cols(ak)) {
          if (marker[static_cast<std::size_t>(bk)] != r) {
            marker[static_cast<std::size_t>(bk)] = r;
            ++count;
          }
        }
      }
      offsets[static_cast<std::size_t>(r) + 1] = count;
    }
  });
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    offsets[i] += offsets[i - 1];
  }

  // Numeric pass: re-read both inputs, accumulate values. Each row fills
  // its own pre-sized output slice, so rows are independent and the values
  // are bitwise identical at any thread count.
  const auto nnz = static_cast<std::size_t>(offsets.back());
  std::vector<std::int32_t> cols(nnz);
  support::aligned_vector<double> vals(nnz);
  for (auto& marker : markers) {
    std::fill(marker.begin(), marker.end(), -1);
  }
  std::vector<std::vector<std::int64_t>> positions(lanes);
  support::parallel_chunks(0, m, kSpgemmGrain, [&](std::int64_t,
                                                   std::int64_t r0,
                                                   std::int64_t r1,
                                                   int lane) {
    auto& marker = markers[static_cast<std::size_t>(lane)];
    auto& position = positions[static_cast<std::size_t>(lane)];
    if (marker.empty()) {
      marker.assign(static_cast<std::size_t>(n), -1);
    }
    if (position.empty()) {
      position.assign(static_cast<std::size_t>(n), 0);
    }
    for (std::int64_t r = r0; r < r1; ++r) {
      const auto row_begin = offsets[static_cast<std::size_t>(r)];
      std::int64_t cursor = row_begin;
      const auto ac = a.row_cols(r);
      const auto av = a.row_values(r);
      for (std::size_t i = 0; i < ac.size(); ++i) {
        const std::int32_t ak = ac[i];
        const double aval = av[i];
        const auto bc = b.row_cols(ak);
        const auto bv = b.row_values(ak);
        for (std::size_t j = 0; j < bc.size(); ++j) {
          const std::int32_t c = bc[j];
          if (marker[static_cast<std::size_t>(c)] != r) {
            marker[static_cast<std::size_t>(c)] = r;
            position[static_cast<std::size_t>(c)] = cursor;
            cols[static_cast<std::size_t>(cursor)] = c;
            vals[static_cast<std::size_t>(cursor)] = aval * bv[j];
            ++cursor;
          } else {
            vals[static_cast<std::size_t>(
                position[static_cast<std::size_t>(c)])] += aval * bv[j];
          }
        }
      }
      // Sort the row's columns (values follow).
      const auto row_end = cursor;
      std::vector<std::pair<std::int32_t, double>> row;
      row.reserve(static_cast<std::size_t>(row_end - row_begin));
      for (std::int64_t k = row_begin; k < row_end; ++k) {
        row.emplace_back(cols[static_cast<std::size_t>(k)],
                         vals[static_cast<std::size_t>(k)]);
      }
      std::sort(row.begin(), row.end());
      for (std::int64_t k = row_begin; k < row_end; ++k) {
        cols[static_cast<std::size_t>(k)] =
            row[static_cast<std::size_t>(k - row_begin)].first;
        vals[static_cast<std::size_t>(k)] =
            row[static_cast<std::size_t>(k - row_begin)].second;
      }
    }
  });
  return CsrMatrix(m, n, std::move(offsets), std::move(cols),
                   std::move(vals), Trusted{});
}

CsrMatrix spgemm_spa(const CsrMatrix& a, const CsrMatrix& b) {
  CPX_REQUIRE(a.cols() == b.rows(), "spgemm: inner dimension mismatch");
  CPX_METRICS_SCOPE("sparse/spgemm_spa");
  if (support::metrics::enabled()) {
    support::metrics::counter_add("sparse/spgemm_flops",
                                  spgemm_flop_count(a, b));
  }
  const std::int64_t m = a.rows();
  const std::int64_t n = b.cols();

  // Single pass: dense sparse accumulator gives O(1) scatter into the
  // current output row. Each chunk of rows builds into its own growable
  // arrays which are compacted into contiguous storage afterwards — the
  // paper's "large chunk of memory per task, compacted at the end" scheme.
  // The chunk decomposition is thread-count independent and chunks are
  // concatenated in order, so the result is identical to the serial pass.
  const auto lanes = static_cast<std::size_t>(support::max_threads());
  struct LaneScratch {
    std::vector<double> spa;
    std::vector<std::int64_t> marker;
    std::vector<std::int32_t> row_cols;
  };
  std::vector<LaneScratch> scratch(lanes);
  struct ChunkOut {
    std::vector<std::int32_t> cols;
    std::vector<double> vals;
  };
  const std::int64_t nchunks = support::num_chunks(0, m, kSpgemmGrain);
  std::vector<ChunkOut> outs(static_cast<std::size_t>(nchunks));

  std::vector<std::int64_t> offsets(static_cast<std::size_t>(m) + 1, 0);
  support::parallel_chunks(0, m, kSpgemmGrain, [&](std::int64_t chunk,
                                                   std::int64_t r0,
                                                   std::int64_t r1,
                                                   int lane) {
    LaneScratch& s = scratch[static_cast<std::size_t>(lane)];
    if (s.spa.empty() && n > 0) {
      s.spa.assign(static_cast<std::size_t>(n), 0.0);
      s.marker.assign(static_cast<std::size_t>(n), -1);
    }
    ChunkOut& out = outs[static_cast<std::size_t>(chunk)];
    for (std::int64_t r = r0; r < r1; ++r) {
      s.row_cols.clear();
      const auto ac = a.row_cols(r);
      const auto av = a.row_values(r);
      for (std::size_t i = 0; i < ac.size(); ++i) {
        const std::int32_t ak = ac[i];
        const double aval = av[i];
        const auto bc = b.row_cols(ak);
        const auto bv = b.row_values(ak);
        for (std::size_t j = 0; j < bc.size(); ++j) {
          const std::int32_t c = bc[j];
          if (s.marker[static_cast<std::size_t>(c)] != r) {
            s.marker[static_cast<std::size_t>(c)] = r;
            s.spa[static_cast<std::size_t>(c)] = aval * bv[j];
            s.row_cols.push_back(c);
          } else {
            s.spa[static_cast<std::size_t>(c)] += aval * bv[j];
          }
        }
      }
      std::sort(s.row_cols.begin(), s.row_cols.end());
      for (std::int32_t c : s.row_cols) {
        out.cols.push_back(c);
        out.vals.push_back(s.spa[static_cast<std::size_t>(c)]);
      }
      offsets[static_cast<std::size_t>(r) + 1] =
          static_cast<std::int64_t>(s.row_cols.size());
    }
  });

  for (std::size_t i = 1; i < offsets.size(); ++i) {
    offsets[i] += offsets[i - 1];
  }
  std::vector<std::int32_t> cols;
  support::aligned_vector<double> vals;
  cols.reserve(static_cast<std::size_t>(offsets.back()));
  vals.reserve(static_cast<std::size_t>(offsets.back()));
  for (const ChunkOut& out : outs) {  // compaction, in chunk order
    cols.insert(cols.end(), out.cols.begin(), out.cols.end());
    vals.insert(vals.end(), out.vals.begin(), out.vals.end());
  }
  return CsrMatrix(m, n, std::move(offsets), std::move(cols),
                   std::move(vals), Trusted{});
}

CsrMatrix galerkin_product(const CsrMatrix& r, const CsrMatrix& a,
                           const CsrMatrix& p) {
  const CsrMatrix ap = spgemm_spa(a, p);
  return spgemm_spa(r, ap);
}

SpgemmPlan::SpgemmPlan(const CsrMatrix& a, const CsrMatrix& b) {
  CPX_REQUIRE(a.cols() == b.rows(),
              "SpgemmPlan: inner dimension mismatch");
  CPX_METRICS_SCOPE("sparse/spgemm_symbolic");
  rows_ = a.rows();
  cols_ = b.cols();
  inner_ = a.cols();
  flops_ = spgemm_flop_count(a, b);

  // Symbolic pass: the twopass marker scheme, but recording the sorted
  // column structure instead of discarding it. Chunk outputs are compacted
  // in chunk order, so the structure is thread-count independent.
  const std::int64_t m = rows_;
  const std::int64_t n = cols_;
  const auto lanes = static_cast<std::size_t>(support::max_threads());
  struct LaneScratch {
    std::vector<std::int64_t> marker;
    std::vector<std::int32_t> row_cols;
  };
  std::vector<LaneScratch> scratch(lanes);
  const std::int64_t nchunks = support::num_chunks(0, m, kSpgemmGrain);
  std::vector<std::vector<std::int32_t>> outs(
      static_cast<std::size_t>(nchunks));

  row_offsets_.assign(static_cast<std::size_t>(m) + 1, 0);
  support::parallel_chunks(0, m, kSpgemmGrain, [&](std::int64_t chunk,
                                                   std::int64_t r0,
                                                   std::int64_t r1,
                                                   int lane) {
    LaneScratch& s = scratch[static_cast<std::size_t>(lane)];
    if (s.marker.empty() && n > 0) {
      s.marker.assign(static_cast<std::size_t>(n), -1);
    }
    auto& out = outs[static_cast<std::size_t>(chunk)];
    for (std::int64_t r = r0; r < r1; ++r) {
      s.row_cols.clear();
      for (std::int32_t ak : a.row_cols(r)) {
        for (std::int32_t bk : b.row_cols(ak)) {
          if (s.marker[static_cast<std::size_t>(bk)] != r) {
            s.marker[static_cast<std::size_t>(bk)] = r;
            s.row_cols.push_back(bk);
          }
        }
      }
      std::sort(s.row_cols.begin(), s.row_cols.end());
      out.insert(out.end(), s.row_cols.begin(), s.row_cols.end());
      row_offsets_[static_cast<std::size_t>(r) + 1] =
          static_cast<std::int64_t>(s.row_cols.size());
    }
  });
  for (std::size_t i = 1; i < row_offsets_.size(); ++i) {
    row_offsets_[i] += row_offsets_[i - 1];
  }
  col_indices_.reserve(static_cast<std::size_t>(row_offsets_.back()));
  for (const auto& out : outs) {
    col_indices_.insert(col_indices_.end(), out.begin(), out.end());
  }
}

SpgemmPlan::SpgemmPlan(const CsrMatrix& a, const CsrMatrix& b,
                       const CsrMatrix& c)
    : rows_(a.rows()),
      cols_(b.cols()),
      inner_(a.cols()),
      flops_(spgemm_flop_count(a, b)),
      row_offsets_(c.row_offsets()),
      col_indices_(c.col_indices()) {
  CPX_REQUIRE(a.cols() == b.rows(),
              "SpgemmPlan: inner dimension mismatch");
  CPX_REQUIRE(c.rows() == a.rows() && c.cols() == b.cols(),
              "SpgemmPlan: product shape mismatch");
}

void SpgemmPlan::check_inputs(const CsrMatrix& a, const CsrMatrix& b) const {
  CPX_REQUIRE(!empty(), "SpgemmPlan: numeric pass on an empty plan");
  CPX_REQUIRE(a.rows() == rows_ && a.cols() == inner_ &&
                  b.rows() == inner_ && b.cols() == cols_,
              "SpgemmPlan: input shapes do not match the planned product");
}

void SpgemmPlan::fill_values(const CsrMatrix& a, const CsrMatrix& b,
                             const std::vector<std::int64_t>& offsets,
                             const std::vector<std::int32_t>& cols,
                             support::aligned_vector<double>& vals) const {
  CPX_METRICS_SCOPE("sparse/spgemm_numeric");
  if (support::metrics::enabled()) {
    support::metrics::counter_add("sparse/spgemm_flops", flops_);
  }
  // Sizing the outer per-lane vector happens serially, before the parallel
  // region, so concurrent chunks only ever touch their own lane's slot.
  const auto lanes = static_cast<std::size_t>(support::max_threads());
  if (lane_acc_.size() < lanes) {
    lane_acc_.resize(lanes);
  }
  support::parallel_chunks(0, rows_, kSpgemmGrain, [&](std::int64_t,
                                                       std::int64_t r0,
                                                       std::int64_t r1,
                                                       int lane) {
    auto& acc = lane_acc_[static_cast<std::size_t>(lane)];
    if (acc.empty() && cols_ > 0) {
      acc.assign(static_cast<std::size_t>(cols_), 0.0);
    }
    for (std::int64_t r = r0; r < r1; ++r) {
      // Accumulate the row into the dense array (per output entry in A-row
      // order — the accumulation order of spgemm_spa/spgemm_twopass, so
      // values match the from-scratch kernels), then gather the planned
      // columns into the output slice and clear exactly what was touched
      // (the plan's columns are precisely the union of the B-row supports).
      const auto ac = a.row_cols(r);
      const auto av = a.row_values(r);
      for (std::size_t i = 0; i < ac.size(); ++i) {
        const double aval = av[i];
        const auto bc = b.row_cols(ac[i]);
        const auto bv = b.row_values(ac[i]);
        for (std::size_t j = 0; j < bc.size(); ++j) {
          acc[static_cast<std::size_t>(bc[j])] += aval * bv[j];
        }
      }
      const auto lo = static_cast<std::size_t>(
          offsets[static_cast<std::size_t>(r)]);
      const auto hi = static_cast<std::size_t>(
          offsets[static_cast<std::size_t>(r) + 1]);
      for (std::size_t k = lo; k < hi; ++k) {
        const auto c = static_cast<std::size_t>(cols[k]);
        vals[k] = acc[c];
        acc[c] = 0.0;
      }
    }
  });
}

CsrMatrix SpgemmPlan::numeric(const CsrMatrix& a, const CsrMatrix& b) const {
  check_inputs(a, b);
  std::vector<std::int64_t> offsets = row_offsets_;
  std::vector<std::int32_t> cols = col_indices_;
  support::aligned_vector<double> vals(col_indices_.size());
  fill_values(a, b, row_offsets_, col_indices_, vals);
  return CsrMatrix(rows_, cols_, std::move(offsets), std::move(cols),
                   std::move(vals), Trusted{});
}

void SpgemmPlan::numeric_into(const CsrMatrix& a, const CsrMatrix& b,
                              CsrMatrix& c) const {
  check_inputs(a, b);
  CPX_REQUIRE(c.rows() == rows_ && c.cols() == cols_ && c.nnz() == nnz(),
              "SpgemmPlan::numeric_into: output structure mismatch");
  fill_values(a, b, row_offsets_, col_indices_, c.mutable_values());
}

double frobenius_distance(const CsrMatrix& a, const CsrMatrix& b) {
  CPX_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
              "frobenius_distance: shape mismatch");
  double sum = 0.0;
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    const auto ac = a.row_cols(r);
    const auto av = a.row_values(r);
    const auto bc = b.row_cols(r);
    const auto bv = b.row_values(r);
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < ac.size() || j < bc.size()) {
      if (j >= bc.size() || (i < ac.size() && ac[i] < bc[j])) {
        sum += av[i] * av[i];
        ++i;
      } else if (i >= ac.size() || bc[j] < ac[i]) {
        sum += bv[j] * bv[j];
        ++j;
      } else {
        const double d = av[i] - bv[j];
        sum += d * d;
        ++i;
        ++j;
      }
    }
  }
  return std::sqrt(sum);
}

}  // namespace cpx::sparse
