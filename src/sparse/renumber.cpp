#include "sparse/renumber.hpp"

#include <algorithm>
#include <unordered_map>

#include "support/check.hpp"

namespace cpx::sparse {

Renumbering renumber_sort(std::span<const std::int64_t> global_ids) {
  Renumbering out;
  out.locals_to_global.assign(global_ids.begin(), global_ids.end());
  std::sort(out.locals_to_global.begin(), out.locals_to_global.end());
  out.locals_to_global.erase(
      std::unique(out.locals_to_global.begin(), out.locals_to_global.end()),
      out.locals_to_global.end());
  out.renumbered.reserve(global_ids.size());
  for (std::int64_t g : global_ids) {
    const auto it = std::lower_bound(out.locals_to_global.begin(),
                                     out.locals_to_global.end(), g);
    out.renumbered.push_back(static_cast<std::int32_t>(
        it - out.locals_to_global.begin()));
  }
  return out;
}

Renumbering renumber_hash_merge(std::span<const std::int64_t> global_ids,
                                int num_chunks) {
  CPX_REQUIRE(num_chunks >= 1, "renumber_hash_merge: bad chunk count");
  const std::size_t n = global_ids.size();
  const std::size_t chunk =
      (n + static_cast<std::size_t>(num_chunks) - 1) /
      static_cast<std::size_t>(num_chunks);

  // Phase 1: each "task" hashes the ids of its chunk (first-touch).
  std::vector<std::vector<std::int64_t>> keys(
      static_cast<std::size_t>(num_chunks));
  for (int c = 0; c < num_chunks; ++c) {
    const std::size_t begin = static_cast<std::size_t>(c) * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    std::unordered_map<std::int64_t, std::int32_t> map;
    map.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      map.emplace(global_ids[i], 0);
    }
    auto& k = keys[static_cast<std::size_t>(c)];
    k.reserve(map.size());
    // Hash order leaks into k only until the sort below restores a single
    // deterministic order, so the unordered walk is sound here.
    for (const auto& [g, unused] : map) {  // cpx-lint: allow(deterministic-kernels)
      k.push_back(g);
    }
    std::sort(k.begin(), k.end());
  }

  // Phase 2: pairwise merge of the sorted key sets (the "parallel merge
  // sort into a global array").
  while (keys.size() > 1) {
    std::vector<std::vector<std::int64_t>> merged;
    merged.reserve((keys.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < keys.size(); i += 2) {
      std::vector<std::int64_t> m;
      m.reserve(keys[i].size() + keys[i + 1].size());
      std::merge(keys[i].begin(), keys[i].end(), keys[i + 1].begin(),
                 keys[i + 1].end(), std::back_inserter(m));
      m.erase(std::unique(m.begin(), m.end()), m.end());
      merged.push_back(std::move(m));
    }
    if (keys.size() % 2 == 1) {
      merged.push_back(std::move(keys.back()));
    }
    keys = std::move(merged);
  }

  Renumbering out;
  out.locals_to_global = keys.empty() ? std::vector<std::int64_t>{}
                                      : std::move(keys.front());

  // Phase 3: reverse mapping distributed back — one global hash map giving
  // O(1) per-entry translation.
  std::unordered_map<std::int64_t, std::int32_t> reverse;
  reverse.reserve(out.locals_to_global.size());
  for (std::size_t i = 0; i < out.locals_to_global.size(); ++i) {
    reverse.emplace(out.locals_to_global[i], static_cast<std::int32_t>(i));
  }
  out.renumbered.reserve(n);
  for (std::int64_t g : global_ids) {
    out.renumbered.push_back(reverse.at(g));
  }
  return out;
}

}  // namespace cpx::sparse
