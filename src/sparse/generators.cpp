#include "sparse/generators.hpp"

#include <vector>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace cpx::sparse {

CsrMatrix laplacian_1d(std::int64_t n) {
  CPX_REQUIRE(n >= 1, "laplacian_1d: bad size");
  std::vector<Triplet> t;
  t.reserve(static_cast<std::size_t>(3 * n));
  for (std::int64_t i = 0; i < n; ++i) {
    t.push_back({i, i, 2.0});
    if (i > 0) {
      t.push_back({i, i - 1, -1.0});
    }
    if (i + 1 < n) {
      t.push_back({i, i + 1, -1.0});
    }
  }
  return csr_from_triplets(n, n, t);
}

CsrMatrix laplacian_2d(int nx, int ny) {
  CPX_REQUIRE(nx >= 1 && ny >= 1, "laplacian_2d: bad dims");
  const std::int64_t n = static_cast<std::int64_t>(nx) * ny;
  std::vector<Triplet> t;
  t.reserve(static_cast<std::size_t>(5 * n));
  const auto id = [&](int i, int j) {
    return static_cast<std::int64_t>(j) * nx + i;
  };
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const std::int64_t c = id(i, j);
      t.push_back({c, c, 4.0});
      if (i > 0) {
        t.push_back({c, id(i - 1, j), -1.0});
      }
      if (i + 1 < nx) {
        t.push_back({c, id(i + 1, j), -1.0});
      }
      if (j > 0) {
        t.push_back({c, id(i, j - 1), -1.0});
      }
      if (j + 1 < ny) {
        t.push_back({c, id(i, j + 1), -1.0});
      }
    }
  }
  return csr_from_triplets(n, n, t);
}

CsrMatrix laplacian_3d(int nx, int ny, int nz) {
  CPX_REQUIRE(nx >= 1 && ny >= 1 && nz >= 1, "laplacian_3d: bad dims");
  const std::int64_t n = static_cast<std::int64_t>(nx) * ny * nz;
  std::vector<Triplet> t;
  t.reserve(static_cast<std::size_t>(7 * n));
  const auto id = [&](int i, int j, int k) {
    return (static_cast<std::int64_t>(k) * ny + j) * nx + i;
  };
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        const std::int64_t c = id(i, j, k);
        t.push_back({c, c, 6.0});
        if (i > 0) {
          t.push_back({c, id(i - 1, j, k), -1.0});
        }
        if (i + 1 < nx) {
          t.push_back({c, id(i + 1, j, k), -1.0});
        }
        if (j > 0) {
          t.push_back({c, id(i, j - 1, k), -1.0});
        }
        if (j + 1 < ny) {
          t.push_back({c, id(i, j + 1, k), -1.0});
        }
        if (k > 0) {
          t.push_back({c, id(i, j, k - 1), -1.0});
        }
        if (k + 1 < nz) {
          t.push_back({c, id(i, j, k + 1), -1.0});
        }
      }
    }
  }
  return csr_from_triplets(n, n, t);
}

CsrMatrix random_spd(std::int64_t n, int nnz_per_row, std::uint64_t seed) {
  CPX_REQUIRE(n >= 1 && nnz_per_row >= 1, "random_spd: bad inputs");
  Rng rng(seed);
  std::vector<Triplet> t;
  t.reserve(static_cast<std::size_t>(n) *
            static_cast<std::size_t>(2 * nnz_per_row + 1));
  // Off-diagonal magnitudes per row, accumulated across mirrored entries so
  // the diagonal strictly dominates every row (not just the generating one).
  std::vector<double> row_abs(static_cast<std::size_t>(n), 0.0);
  for (std::int64_t i = 0; i < n; ++i) {
    for (int k = 0; k < nnz_per_row; ++k) {
      const auto j = static_cast<std::int64_t>(
          rng.uniform_index(static_cast<std::uint64_t>(n)));
      if (j == i) {
        continue;
      }
      const double v = -rng.uniform(0.1, 1.0);
      t.push_back({i, j, v});
      t.push_back({j, i, v});
      row_abs[static_cast<std::size_t>(i)] += std::abs(v);
      row_abs[static_cast<std::size_t>(j)] += std::abs(v);
    }
  }
  for (std::int64_t i = 0; i < n; ++i) {
    t.push_back({i, i, row_abs[static_cast<std::size_t>(i)] + 1.0});
  }
  return csr_from_triplets(n, n, t);
}

}  // namespace cpx::sparse
