#pragma once
// Identity-prefix matrix: the §IV-B interpolation/restriction optimisation.
//
// "During interpolation and restriction, which uses SpMV, values at the
//  same points are mapped directly to the mesh above or below. As a
//  result, the matrix can be rearranged such that the first rows are an
//  identity matrix, which reduces computation and saves memory bandwidth."
//
// For node-nested hierarchies the first `identity_rows` rows of P are unit
// rows e_i: applying them is a memcpy instead of a sparse dot product, and
// neither their column indices nor values need to be stored.

#include <cstdint>
#include <span>

#include "sparse/csr.hpp"

namespace cpx::sparse {

class IdentityPrefixMatrix {
 public:
  /// Wraps `rest` as the trailing rows under an `identity_rows`-row unit
  /// prefix: the represented operator is
  ///     [ I 0 ; rest ]  with overall shape (identity_rows + rest.rows())
  ///                     x cols, cols >= identity_rows.
  IdentityPrefixMatrix(std::int64_t identity_rows, std::int64_t cols,
                       CsrMatrix rest);

  /// Detects the longest unit-row prefix of `a` (row i == e_i) and splits
  /// it off; the remainder stays in CSR form.
  static IdentityPrefixMatrix from_csr(const CsrMatrix& a);

  std::int64_t rows() const { return identity_rows_ + rest_.rows(); }
  std::int64_t cols() const { return cols_; }
  std::int64_t identity_rows() const { return identity_rows_; }

  /// Stored nonzeros (the savings vs a full CSR: identity_rows entries of
  /// index + value storage disappear).
  std::int64_t stored_nnz() const { return rest_.nnz(); }

  /// y = A x, with the identity prefix applied as a copy.
  void apply(std::span<const double> x, std::span<double> y) const;

  /// Expands back to a plain CSR (for equivalence testing).
  CsrMatrix to_csr() const;

 private:
  std::int64_t identity_rows_;
  std::int64_t cols_;
  CsrMatrix rest_;
};

}  // namespace cpx::sparse
