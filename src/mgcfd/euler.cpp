#include "mgcfd/euler.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace cpx::mgcfd {

double pressure(const State& u) {
  const double rho = u[0];
  const double ke =
      0.5 * (u[1] * u[1] + u[2] * u[2] + u[3] * u[3]) / rho;
  return (kGamma - 1.0) * (u[4] - ke);
}

double sound_speed(const State& u) {
  const double p = pressure(u);
  CPX_DCHECK(u[0] > 0.0);
  return std::sqrt(kGamma * std::max(p, 1e-300) / u[0]);
}

State freestream(double mach, double rho, double p,
                 const mesh::Vec3& direction) {
  const double norm = std::sqrt(direction.x * direction.x +
                                direction.y * direction.y +
                                direction.z * direction.z);
  CPX_REQUIRE(norm > 0.0, "freestream: zero direction");
  const double a = std::sqrt(kGamma * p / rho);
  const double speed = mach * a;
  const mesh::Vec3 v{speed * direction.x / norm, speed * direction.y / norm,
                     speed * direction.z / norm};
  State u;
  u[0] = rho;
  u[1] = rho * v.x;
  u[2] = rho * v.y;
  u[3] = rho * v.z;
  u[4] = p / (kGamma - 1.0) +
         0.5 * rho * (v.x * v.x + v.y * v.y + v.z * v.z);
  return u;
}

namespace {

/// Physical Euler flux of state u projected on unit normal n.
State euler_flux(const State& u, const mesh::Vec3& n) {
  const double rho = u[0];
  const double vx = u[1] / rho;
  const double vy = u[2] / rho;
  const double vz = u[3] / rho;
  const double p = pressure(u);
  const double vn = vx * n.x + vy * n.y + vz * n.z;
  State f;
  f[0] = rho * vn;
  f[1] = u[1] * vn + p * n.x;
  f[2] = u[2] * vn + p * n.y;
  f[3] = u[3] * vn + p * n.z;
  f[4] = (u[4] + p) * vn;
  return f;
}

double normal_speed(const State& u, const mesh::Vec3& n) {
  const double rho = u[0];
  const double vn =
      (u[1] * n.x + u[2] * n.y + u[3] * n.z) / rho;
  return std::abs(vn) + sound_speed(u);
}

}  // namespace

EulerSolver::EulerSolver(const mesh::UnstructuredMesh& mesh,
                         const EulerOptions& options)
    : options_(options) {
  CPX_REQUIRE(options.mg_levels >= 1, "EulerSolver: bad mg_levels");
  CPX_REQUIRE(options.cfl > 0.0, "EulerSolver: bad CFL");
  mesh::Hierarchy h = mesh::build_hierarchy(mesh, options.mg_levels);
  meshes_ = std::move(h.meshes);
  coarse_of_ = std::move(h.coarse_of);
  states_.resize(meshes_.size());
  restricted_.resize(meshes_.size());
  residuals_.resize(meshes_.size());
  for (std::size_t l = 0; l < meshes_.size(); ++l) {
    const auto n = static_cast<std::size_t>(meshes_[l].num_cells());
    states_[l].assign(n, State{1.0, 0.0, 0.0, 0.0, 2.5});
    restricted_[l].assign(n, State{});
    residuals_[l].assign(n, State{});
  }
  build_closures();
}

void EulerSolver::build_closures() {
  closures_.resize(meshes_.size());
  for (std::size_t l = 0; l < meshes_.size(); ++l) {
    const mesh::UnstructuredMesh& m = meshes_[l];
    closures_[l].assign(static_cast<std::size_t>(m.num_cells()),
                        mesh::Vec3{0.0, 0.0, 0.0});
    for (const mesh::Edge& e : m.edges()) {
      auto& ca = closures_[l][static_cast<std::size_t>(e.a)];
      auto& cb = closures_[l][static_cast<std::size_t>(e.b)];
      ca.x += e.area * e.normal.x;
      ca.y += e.area * e.normal.y;
      ca.z += e.area * e.normal.z;
      cb.x -= e.area * e.normal.x;
      cb.y -= e.area * e.normal.y;
      cb.z -= e.area * e.normal.z;
    }
  }
}

void EulerSolver::set_uniform(const State& u) {
  for (auto& s : states_.front()) {
    s = u;
  }
}

void EulerSolver::compute_residual(int level,
                                   std::vector<State>& residual) const {
  const mesh::UnstructuredMesh& m = meshes_[static_cast<std::size_t>(level)];
  const auto& u = states_[static_cast<std::size_t>(level)];
  residual.assign(static_cast<std::size_t>(m.num_cells()), State{});
  for (const mesh::Edge& e : m.edges()) {
    const State& ua = u[static_cast<std::size_t>(e.a)];
    const State& ub = u[static_cast<std::size_t>(e.b)];
    const State fa = euler_flux(ua, e.normal);
    const State fb = euler_flux(ub, e.normal);
    const double smax =
        std::max(normal_speed(ua, e.normal), normal_speed(ub, e.normal));
    for (int k = 0; k < 5; ++k) {
      const double f = 0.5 * (fa[k] + fb[k]) -
                       0.5 * options_.dissipation * smax * (ub[k] - ua[k]);
      const double contrib = e.area * f;
      residual[static_cast<std::size_t>(e.a)][k] -= contrib;
      residual[static_cast<std::size_t>(e.b)][k] += contrib;
    }
  }
  // Transmissive boundary flux through each cell's closure face (zero for
  // interior cells): euler_flux is linear in its (unnormalised) normal, so
  // this cancels the open-boundary imbalance exactly for uniform flow.
  const auto& closure = closures_[static_cast<std::size_t>(level)];
  for (std::int64_t c = 0; c < m.num_cells(); ++c) {
    const mesh::Vec3& d = closure[static_cast<std::size_t>(c)];
    if (d.x == 0.0 && d.y == 0.0 && d.z == 0.0) {
      continue;
    }
    // Outward boundary area vector is -d; by linearity of the flux,
    // -F(u, -d) = +F(u, d).
    const State f = euler_flux(u[static_cast<std::size_t>(c)], d);
    for (int k = 0; k < 5; ++k) {
      residual[static_cast<std::size_t>(c)][k] += f[k];
    }
  }
}

std::vector<double> EulerSolver::compute_time_steps(int level) const {
  const mesh::UnstructuredMesh& m = meshes_[static_cast<std::size_t>(level)];
  const auto& u = states_[static_cast<std::size_t>(level)];
  std::vector<double> dts(static_cast<std::size_t>(m.num_cells()));
  // Local time step: dt = CFL * V / (sum of |lambda| A over faces) —
  // approximated with the cell's fastest wave and total face area (mean
  // face area from volume^(2/3)).
  for (std::int64_t c = 0; c < m.num_cells(); ++c) {
    const State& uc = u[static_cast<std::size_t>(c)];
    const double wave = normal_speed(uc, {1.0, 0.0, 0.0});
    const double vol = m.volumes()[static_cast<std::size_t>(c)];
    const double face_area =
        std::max(static_cast<double>(m.degree(c)), 1.0) *
        std::pow(vol, 2.0 / 3.0);
    dts[static_cast<std::size_t>(c)] =
        options_.cfl * vol / std::max(wave * face_area, 1e-12);
  }
  if (!options_.local_time_stepping) {
    const double dt_global = *std::min_element(dts.begin(), dts.end());
    std::fill(dts.begin(), dts.end(), dt_global);
  }
  return dts;
}

void EulerSolver::clamp_positivity(State& u) const {
  u[0] = std::max(u[0], 1e-10);
  const double ke =
      0.5 * (u[1] * u[1] + u[2] * u[2] + u[3] * u[3]) / u[0];
  u[4] = std::max(u[4], ke + 1e-10);
}

double EulerSolver::euler_stage(int level, const std::vector<double>& dts) {
  const mesh::UnstructuredMesh& m = meshes_[static_cast<std::size_t>(level)];
  auto& u = states_[static_cast<std::size_t>(level)];
  auto& res = residuals_[static_cast<std::size_t>(level)];
  compute_residual(level, res);
  double norm = 0.0;
  for (std::int64_t c = 0; c < m.num_cells(); ++c) {
    const double dt = dts[static_cast<std::size_t>(c)];
    const double vol = m.volumes()[static_cast<std::size_t>(c)];
    for (int k = 0; k < 5; ++k) {
      const double r = res[static_cast<std::size_t>(c)][k];
      norm += r * r;
      u[static_cast<std::size_t>(c)][k] += dt * r / vol;
    }
    clamp_positivity(u[static_cast<std::size_t>(c)]);
  }
  return std::sqrt(norm);
}

double EulerSolver::smooth_level(int level) {
  const std::vector<double> dts = compute_time_steps(level);
  auto& u = states_[static_cast<std::size_t>(level)];

  if (options_.integration == TimeIntegration::kForwardEuler) {
    return euler_stage(level, dts);
  }

  // SSP-RK3 (Shu-Osher): u1 = u + dt L; u2 = 3/4 u + 1/4 (u1 + dt L);
  // u^{n+1} = 1/3 u + 2/3 (u2 + dt L). Frozen per-cell dt across stages.
  const std::vector<State> u0 = u;
  const double norm = euler_stage(level, dts);  // -> u1
  euler_stage(level, dts);                      // -> u1 + dt L(u1)
  for (std::size_t c = 0; c < u.size(); ++c) {
    for (int k = 0; k < 5; ++k) {
      u[c][k] = 0.75 * u0[c][k] + 0.25 * u[c][k];
    }
    clamp_positivity(u[c]);
  }
  euler_stage(level, dts);                      // -> u2 + dt L(u2)
  for (std::size_t c = 0; c < u.size(); ++c) {
    for (int k = 0; k < 5; ++k) {
      u[c][k] = u0[c][k] / 3.0 + 2.0 / 3.0 * u[c][k];
    }
    clamp_positivity(u[c]);
  }
  return norm;
}

void EulerSolver::restrict_to(int coarse_level) {
  const int fine = coarse_level - 1;
  const auto& map = coarse_of_[static_cast<std::size_t>(fine)];
  const auto& fine_mesh = meshes_[static_cast<std::size_t>(fine)];
  const auto& fu = states_[static_cast<std::size_t>(fine)];
  auto& cu = states_[static_cast<std::size_t>(coarse_level)];
  const auto& cvol = meshes_[static_cast<std::size_t>(coarse_level)].volumes();
  std::fill(cu.begin(), cu.end(), State{});
  for (std::int64_t c = 0; c < fine_mesh.num_cells(); ++c) {
    const auto agg = static_cast<std::size_t>(map[static_cast<std::size_t>(c)]);
    const double v = fine_mesh.volumes()[static_cast<std::size_t>(c)];
    for (int k = 0; k < 5; ++k) {
      cu[agg][k] += v * fu[static_cast<std::size_t>(c)][k];
    }
  }
  for (std::size_t a = 0; a < cu.size(); ++a) {
    for (int k = 0; k < 5; ++k) {
      cu[a][k] /= cvol[a];
    }
  }
  restricted_[static_cast<std::size_t>(coarse_level)] = cu;
}

void EulerSolver::prolong_correction(int coarse_level) {
  const int fine = coarse_level - 1;
  const auto& map = coarse_of_[static_cast<std::size_t>(fine)];
  const auto& cu = states_[static_cast<std::size_t>(coarse_level)];
  const auto& cu0 = restricted_[static_cast<std::size_t>(coarse_level)];
  auto& fu = states_[static_cast<std::size_t>(fine)];
  for (std::size_t c = 0; c < fu.size(); ++c) {
    const auto agg = static_cast<std::size_t>(map[c]);
    for (int k = 0; k < 5; ++k) {
      fu[c][k] += cu[agg][k] - cu0[agg][k];
    }
    // Same positivity guard as smoothing.
    fu[c][0] = std::max(fu[c][0], 1e-10);
    const double ke =
        0.5 * (fu[c][1] * fu[c][1] + fu[c][2] * fu[c][2] +
               fu[c][3] * fu[c][3]) /
        fu[c][0];
    fu[c][4] = std::max(fu[c][4], ke + 1e-10);
  }
}

double EulerSolver::vcycle() {
  double entry_norm = 0.0;
  for (int l = 0; l < num_levels(); ++l) {
    for (int s = 0; s < options_.smooth_steps; ++s) {
      const double norm = smooth_level(l);
      if (l == 0 && s == 0) {
        entry_norm = norm;
      }
    }
    if (l + 1 < num_levels()) {
      restrict_to(l + 1);
    }
  }
  for (int l = num_levels() - 1; l > 0; --l) {
    prolong_correction(l);
    for (int s = 0; s < options_.smooth_steps; ++s) {
      smooth_level(l - 1);
    }
  }
  return entry_norm;
}

double EulerSolver::run(int steps) {
  CPX_REQUIRE(steps >= 1, "run: bad step count");
  double norm = 0.0;
  for (int s = 0; s < steps; ++s) {
    norm = num_levels() > 1 ? vcycle() : smooth_level(0);
  }
  return norm;
}

double EulerSolver::total_mass() const {
  const auto& m = meshes_.front();
  const auto& u = states_.front();
  double mass = 0.0;
  for (std::int64_t c = 0; c < m.num_cells(); ++c) {
    mass += u[static_cast<std::size_t>(c)][0] *
            m.volumes()[static_cast<std::size_t>(c)];
  }
  return mass;
}

}  // namespace cpx::mgcfd
