#pragma once
// MG-CFD numerics: an edge-based finite-volume Euler solver over an
// unstructured mesh with geometric-multigrid acceleration — the mini-app
// proxy for the production density solver (compressor/turbine rows).
//
// Like the published MG-CFD mini-app, the solver sweeps edges accumulating
// numerical fluxes (here a Rusanov / local Lax-Friedrichs flux, which is
// robust and preserves free-stream exactly), applies explicit local-time-
// step updates, and cycles a hierarchy of agglomerated coarse meshes to
// damp long-wavelength error. The kernels are real: tests verify
// free-stream preservation, positivity, conservation, and residual decay.

#include <array>
#include <cstdint>
#include <vector>

#include "mesh/coarsen.hpp"
#include "mesh/mesh.hpp"

namespace cpx::mgcfd {

/// Conserved variables per cell: density, momentum (3), total energy.
using State = std::array<double, 5>;

constexpr double kGamma = 1.4;

/// Primitive helpers.
double pressure(const State& u);
double sound_speed(const State& u);

/// Free-stream state from Mach number, direction and static conditions.
State freestream(double mach, double rho = 1.0, double p = 1.0,
                 const mesh::Vec3& direction = {1.0, 0.0, 0.0});

enum class TimeIntegration {
  kForwardEuler,  ///< one residual evaluation per step (MG-CFD's scheme)
  kSsprk3         ///< 3-stage strong-stability-preserving Runge-Kutta
};

struct EulerOptions {
  double cfl = 0.8;
  TimeIntegration integration = TimeIntegration::kForwardEuler;
  int mg_levels = 4;          ///< multigrid depth (1 = single grid)
  int smooth_steps = 2;       ///< explicit steps per level per cycle
  double dissipation = 1.0;   ///< scales the Rusanov upwinding term
  /// Local (per-cell) time stepping converges steady states faster but is
  /// not conservative in time; disable for transient/conservation studies.
  bool local_time_stepping = true;
};

/// Single-domain (sequential) MG-CFD solver. The distributed performance
/// behaviour is modelled separately by mgcfd::Instance; this class provides
/// the actual numerics at test/example scale.
class EulerSolver {
 public:
  EulerSolver(const mesh::UnstructuredMesh& mesh, const EulerOptions& options);

  std::int64_t num_cells() const {
    return meshes_.front().num_cells();
  }
  int num_levels() const { return static_cast<int>(meshes_.size()); }

  /// Sets every cell of the fine level to `u`.
  void set_uniform(const State& u);
  const std::vector<State>& solution() const { return states_.front(); }
  std::vector<State>& mutable_solution() { return states_.front(); }

  /// One explicit smoothing step on the given level (forward Euler or
  /// SSP-RK3 per options); returns the L2 norm of the flux residual at the
  /// start of the step.
  double smooth_level(int level);

  /// One multigrid V-cycle (smooth, restrict, recurse, prolong correction,
  /// smooth). Returns the fine-level residual norm at entry.
  double vcycle();

  /// `steps` cycles (or plain steps when mg_levels == 1); returns the
  /// final fine-level residual norm.
  double run(int steps);

  /// Total mass (density * volume summed) on the fine level — conserved on
  /// interior-only meshes.
  double total_mass() const;

  /// Flux residual R(U) on a level, as used by smooth_level.
  void compute_residual(int level, std::vector<State>& residual) const;

 private:
  /// Per-cell time steps for one step on `level` (from the current state).
  std::vector<double> compute_time_steps(int level) const;
  /// u += dt * R(u) / V on `level`; returns the residual L2 norm.
  double euler_stage(int level, const std::vector<double>& dts);
  void clamp_positivity(State& u) const;

  void restrict_to(int coarse_level);
  void prolong_correction(int coarse_level);
  void build_closures();

  EulerOptions options_;
  std::vector<mesh::UnstructuredMesh> meshes_;
  std::vector<std::vector<mesh::CellId>> coarse_of_;
  std::vector<std::vector<State>> states_;
  std::vector<std::vector<State>> restricted_;  ///< pre-recursion snapshot
  std::vector<std::vector<State>> residuals_;   ///< scratch per level
  /// Per-level, per-cell geometric closure deficit: the outward area
  /// vector a *boundary* face would need for the cell's faces to sum to
  /// zero. Cells on the domain boundary get a transmissive boundary flux
  /// through it (interior cells have a zero deficit), which makes uniform
  /// flow an exact fixed point on open meshes.
  std::vector<std::vector<mesh::Vec3>> closures_;
};

}  // namespace cpx::mgcfd
