#include "mgcfd/instance.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace cpx::mgcfd {
namespace {

/// Near-cubic 3-D factorisation of p (px >= py >= pz, px*py*pz == p).
std::array<int, 3> grid_dims(int p) {
  std::array<int, 3> best = {p, 1, 1};
  double best_score = 1e300;
  for (int pz = 1; pz * pz * pz <= p; ++pz) {
    if (p % pz != 0) {
      continue;
    }
    const int rest = p / pz;
    for (int py = pz; py * py <= rest; ++py) {
      if (rest % py != 0) {
        continue;
      }
      const int px = rest / py;
      // Prefer the most cubic shape (smallest max/min ratio).
      const double score = static_cast<double>(px) / pz;
      if (score < best_score) {
        best_score = score;
        best = {px, py, pz};
      }
    }
  }
  return best;
}

}  // namespace

Instance::Instance(std::string name, std::int64_t global_cells,
                   sim::RankRange ranks, const WorkModel& work)
    : name_(std::move(name)),
      ranks_(ranks),
      global_cells_(global_cells),
      work_(work) {
  CPX_REQUIRE(ranks.size() >= 1, "Instance: empty rank range");
  CPX_REQUIRE(global_cells >= ranks.size(),
              "Instance: fewer cells than ranks");
  build_analytic(global_cells);
}

Instance::Instance(std::string name, const mesh::UnstructuredMesh& mesh,
                   const mesh::Partitioning& partitioning,
                   sim::RankRange ranks, const WorkModel& work)
    : name_(std::move(name)),
      ranks_(ranks),
      global_cells_(mesh.num_cells()),
      work_(work) {
  CPX_REQUIRE(partitioning.num_parts == ranks.size(),
              "Instance: partitioning has " << partitioning.num_parts
                                            << " parts but rank range has "
                                            << ranks.size());
  const auto locals = mesh::extract_local_meshes(mesh, partitioning);
  loads_.resize(static_cast<std::size_t>(ranks.size()));
  for (const mesh::LocalMesh& lm : locals) {
    RankLoad& load = loads_[static_cast<std::size_t>(lm.part)];
    load.owned = lm.num_owned();
    for (const auto& send : lm.sends) {
      load.neighbors.push_back(ranks_.begin + send.neighbor);
      load.halo_cells.push_back(static_cast<std::int64_t>(send.cells.size()));
    }
  }
}

void Instance::build_analytic(std::int64_t global_cells) {
  const int p = ranks_.size();
  const mesh::PartitionStats stats =
      mesh::PartitionStats::analytic(global_cells, p);
  const auto dims = grid_dims(p);
  const int px = dims[0];
  const int py = dims[1];
  const int pz = dims[2];

  loads_.resize(static_cast<std::size_t>(p));
  for (int l = 0; l < p; ++l) {
    RankLoad& load = loads_[static_cast<std::size_t>(l)];
    // Deterministic +-3% load jitter around the mean (production
    // partitioners are imbalanced at about this level).
    const double jitter =
        0.03 * (2.0 * (static_cast<double>(hash_mix(17, static_cast<std::uint64_t>(l)) >> 11) *
                       0x1.0p-53) -
                1.0);
    load.owned = static_cast<std::int64_t>(stats.owned_mean * (1.0 + jitter));
    load.owned = std::max<std::int64_t>(load.owned, 1);

    const int iz = l / (px * py);
    const int iy = (l / px) % py;
    const int ix = l % px;
    const auto add_neighbor = [&](int jx, int jy, int jz) {
      if (jx < 0 || jx >= px || jy < 0 || jy >= py || jz < 0 || jz >= pz) {
        return;
      }
      load.neighbors.push_back(ranks_.begin + (jz * py + jy) * px + jx);
    };
    add_neighbor(ix - 1, iy, iz);
    add_neighbor(ix + 1, iy, iz);
    add_neighbor(ix, iy - 1, iz);
    add_neighbor(ix, iy + 1, iz);
    add_neighbor(ix, iy, iz - 1);
    add_neighbor(ix, iy, iz + 1);
    // Spread the analytic mean halo over the mean neighbour count: every
    // face of every rank carries the same per-face halo.
    const std::int64_t per_face = static_cast<std::int64_t>(
        stats.halo_mean / std::max(stats.neighbors_mean, 1.0));
    for (std::size_t k = 0; k < load.neighbors.size(); ++k) {
      load.halo_cells.push_back(std::max<std::int64_t>(per_face, 1));
    }
  }
}

void Instance::ensure_regions(sim::Cluster& cluster) {
  region_flux_ = cluster.region(name_ + "/flux");
  region_halo_ = cluster.region(name_ + "/halo");
  region_mg_ = cluster.region(name_ + "/mg_coarse");
  region_reduce_ = cluster.region(name_ + "/reduce");
}

double Instance::mean_owned() const {
  double sum = 0.0;
  for (const RankLoad& l : loads_) {
    sum += static_cast<double>(l.owned);
  }
  return sum / static_cast<double>(loads_.size());
}

void Instance::step(sim::Cluster& cluster) {
  ensure_regions(cluster);
  const sim::MachineModel& m = cluster.machine();

  // Level visit multiplier of one V-cycle: every level is visited twice
  // (down and up) except the coarsest; smooth_steps sweeps per visit.
  double level_work = 0.0;
  double ratio_l = 1.0;
  for (int l = 0; l < work_.mg_levels; ++l) {
    const double visits = (l == work_.mg_levels - 1) ? 1.0 : 2.0;
    level_work += visits * ratio_l;
    ratio_l *= work_.level_cell_ratio;
  }
  const double sweeps_per_cycle =
      static_cast<double>(work_.smooth_steps) * level_work;

  // Per-rank sweep work of the whole V-cycle.
  const auto sweep_work = [&](const RankLoad& load) {
    const double cells = static_cast<double>(load.owned);
    const double edges = cells * work_.edges_per_cell;
    sim::Work w;
    w.flops = sweeps_per_cycle *
              (edges * work_.flops_per_edge + cells * work_.flops_per_cell);
    w.bytes = sweeps_per_cycle *
              (edges * work_.bytes_per_edge + cells * work_.bytes_per_cell);
    w.launches = sweeps_per_cycle * 2.0;  // flux kernel + update kernel
    return w;
  };

  // --- Finest-level halo round: one message round carrying the bytes of
  // all fine-level sweeps; the extra rounds' latencies are charged below.
  const int fine_rounds = 2 * work_.smooth_steps;
  message_scratch_.clear();
  for (int l = 0; l < ranks_.size(); ++l) {
    const RankLoad& load = loads_[static_cast<std::size_t>(l)];
    for (std::size_t k = 0; k < load.neighbors.size(); ++k) {
      const std::size_t bytes =
          static_cast<std::size_t>(load.halo_cells[k]) *
          work_.bytes_per_halo_cell * static_cast<std::size_t>(fine_rounds);
      message_scratch_.push_back(
          {ranks_.begin + l, load.neighbors[k], bytes});
    }
  }

  if (overlap_) {
    // Split-phase schedule: the halo payload (previous step's boundary
    // state) is ready when the step starts, so the round is posted first;
    // each rank's interior share of the sweeps runs inside the window and
    // the boundary share after the data lands.
    const int pending = cluster.exchange_begin(message_scratch_,
                                               region_halo_);
    for (int l = 0; l < ranks_.size(); ++l) {
      const RankLoad& load = loads_[static_cast<std::size_t>(l)];
      std::int64_t halo_total = 0;
      for (const std::int64_t h : load.halo_cells) {
        halo_total += h;
      }
      const double boundary_frac = std::min(
          1.0, static_cast<double>(halo_total) /
                   static_cast<double>(std::max<std::int64_t>(load.owned, 1)));
      sim::Work w = sweep_work(load);
      w.flops *= 1.0 - boundary_frac;
      w.bytes *= 1.0 - boundary_frac;
      cluster.compute(ranks_.begin + l, w, region_flux_);
    }
    cluster.exchange_finish(pending);
    for (int l = 0; l < ranks_.size(); ++l) {
      const RankLoad& load = loads_[static_cast<std::size_t>(l)];
      std::int64_t halo_total = 0;
      for (const std::int64_t h : load.halo_cells) {
        halo_total += h;
      }
      const double boundary_frac = std::min(
          1.0, static_cast<double>(halo_total) /
                   static_cast<double>(std::max<std::int64_t>(load.owned, 1)));
      sim::Work w = sweep_work(load);
      w.flops *= boundary_frac;
      w.bytes *= boundary_frac;
      w.launches = 0.0;  // same kernels, already counted in the window
      cluster.compute(ranks_.begin + l, w, region_flux_);
    }
  } else {
    // --- Compute: flux + update kernels across all level visits ---
    for (int l = 0; l < ranks_.size(); ++l) {
      cluster.compute(ranks_.begin + l,
                      sweep_work(loads_[static_cast<std::size_t>(l)]),
                      region_flux_);
    }
    cluster.exchange(message_scratch_, region_halo_);
  }

  // --- Latency of the remaining fine rounds and the coarse-level rounds.
  // Coarse halos shrink with cells^(2/3) and are latency-dominated.
  const double per_round = m.lat_inter + 2.0 * m.msg_overhead;
  const int coarse_rounds =
      2 * work_.smooth_steps * std::max(work_.mg_levels - 1, 0);
  for (int l = 0; l < ranks_.size(); ++l) {
    const auto n_nbrs = static_cast<double>(
        std::max<std::size_t>(loads_[static_cast<std::size_t>(l)].neighbors.size(), 1));
    // Each extra round exchanges with every neighbour.
    const double delay =
        (fine_rounds - 1 + coarse_rounds) * per_round * n_nbrs;
    cluster.comm_delay(ranks_.begin + l, delay, region_mg_);
  }

  // --- Residual allreduce closing the timestep ---
  cluster.allreduce(ranks_, 5 * sizeof(double), region_reduce_);
}

}  // namespace cpx::mgcfd
