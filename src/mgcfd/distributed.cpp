#include "mgcfd/distributed.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "ckpt/snapshot.hpp"
#include "sim/comm_bridge.hpp"
#include "support/check.hpp"

namespace cpx::mgcfd {
namespace {

State rusanov_flux(const State& ua, const State& ub, const mesh::Vec3& n,
                   double dissipation) {
  // Same numerics as EulerSolver::compute_residual (euler.cpp); kept in
  // lock-step so the distributed and sequential solvers agree exactly.
  const auto phys = [](const State& u, const mesh::Vec3& nn) {
    const double rho = u[0];
    const double vn = (u[1] * nn.x + u[2] * nn.y + u[3] * nn.z) / rho;
    const double p = pressure(u);
    State f;
    f[0] = rho * vn;
    f[1] = u[1] * vn + p * nn.x;
    f[2] = u[2] * vn + p * nn.y;
    f[3] = u[3] * vn + p * nn.z;
    f[4] = (u[4] + p) * vn;
    return f;
  };
  const auto speed = [](const State& u, const mesh::Vec3& nn) {
    const double vn = (u[1] * nn.x + u[2] * nn.y + u[3] * nn.z) / u[0];
    return std::abs(vn) + sound_speed(u);
  };
  const State fa = phys(ua, n);
  const State fb = phys(ub, n);
  const double smax = std::max(speed(ua, n), speed(ub, n));
  State f;
  for (int k = 0; k < 5; ++k) {
    f[k] = 0.5 * (fa[k] + fb[k]) - 0.5 * dissipation * smax * (ub[k] - ua[k]);
  }
  return f;
}

State physical_flux(const State& u, const mesh::Vec3& n) {
  const double rho = u[0];
  const double vn = (u[1] * n.x + u[2] * n.y + u[3] * n.z) / rho;
  const double p = pressure(u);
  State f;
  f[0] = rho * vn;
  f[1] = u[1] * vn + p * n.x;
  f[2] = u[2] * vn + p * n.y;
  f[3] = u[3] * vn + p * n.z;
  f[4] = (u[4] + p) * vn;
  return f;
}

}  // namespace

DistributedSolver::DistributedSolver(const mesh::UnstructuredMesh& mesh,
                                     int parts, const EulerOptions& options)
    : options_(options), global_cells_(mesh.num_cells()) {
  CPX_REQUIRE(parts >= 1, "DistributedSolver: bad part count");
  options_.mg_levels = 1;  // multigrid is not distributed (see header)

  const mesh::Partitioning partitioning = mesh::partition_rcb(mesh, parts);
  part_of_ = partitioning.part_of;
  auto locals = mesh::extract_local_meshes(mesh, partitioning);

  // The halo schedule comes straight from the mesh send lists; one plan
  // serves every step, so steady-state exchange is allocation-free.
  comm_ = comm::Communicator::world(parts, "mgcfd");
  halo_plan_ = mesh::build_halo_plan(locals);
  halo_plan_.finalize(sizeof(State));
  norm_partials_.assign(static_cast<std::size_t>(parts), 0.0);

  local_of_.assign(static_cast<std::size_t>(global_cells_), -1);
  parts_.reserve(locals.size());
  for (mesh::LocalMesh& lm : locals) {
    PartState ps;
    const auto owned = static_cast<std::size_t>(lm.num_owned());
    const auto total = owned + static_cast<std::size_t>(lm.num_ghosts());
    for (std::size_t i = 0; i < owned; ++i) {
      local_of_[static_cast<std::size_t>(lm.owned[i])] =
          static_cast<std::int32_t>(i);
    }
    ps.u.assign(total, State{1.0, 0.0, 0.0, 0.0, 2.5});
    ps.residual.assign(owned, State{});
    // Geometric closure of each owned cell from its incident edges (every
    // global edge touching an owned cell appears in the local edge list).
    ps.closure.assign(owned, mesh::Vec3{0.0, 0.0, 0.0});
    for (const auto& e : lm.edges) {
      if (e.a < lm.num_owned()) {
        auto& c = ps.closure[static_cast<std::size_t>(e.a)];
        c.x += e.area * e.normal.x;
        c.y += e.area * e.normal.y;
        c.z += e.area * e.normal.z;
      }
      if (e.b < lm.num_owned()) {
        auto& c = ps.closure[static_cast<std::size_t>(e.b)];
        c.x -= e.area * e.normal.x;
        c.y -= e.area * e.normal.y;
        c.z -= e.area * e.normal.z;
      }
    }
    // Degrees (incident local edges per owned cell — equals the global
    // degree, since every incident global edge is present locally).
    ps.degrees.assign(owned, 0.0);
    for (const auto& e : lm.edges) {
      if (e.a < lm.num_owned()) {
        ps.degrees[static_cast<std::size_t>(e.a)] += 1.0;
      }
      if (e.b < lm.num_owned()) {
        ps.degrees[static_cast<std::size_t>(e.b)] += 1.0;
      }
    }
    ps.volumes.reserve(owned);
    for (mesh::CellId c : lm.owned) {
      ps.volumes.push_back(mesh.volumes()[static_cast<std::size_t>(c)]);
    }

    // Incident-edge CSR: rows are owned cells, entries ascend in edge
    // index, so gathering a cell's residual accumulates its edge
    // contributions in exactly the order the edge-centric scatter loop
    // used to — the gather form is bitwise-neutral.
    ps.edge_offsets.assign(owned + 1, 0);
    for (const auto& e : lm.edges) {
      if (e.a < lm.num_owned()) {
        ++ps.edge_offsets[static_cast<std::size_t>(e.a) + 1];
      }
      if (e.b < lm.num_owned()) {
        ++ps.edge_offsets[static_cast<std::size_t>(e.b) + 1];
      }
    }
    for (std::size_t i = 1; i < ps.edge_offsets.size(); ++i) {
      ps.edge_offsets[i] += ps.edge_offsets[i - 1];
    }
    const auto num_incident =
        static_cast<std::size_t>(ps.edge_offsets.back());
    ps.edge_ids.resize(num_incident);
    ps.edge_side.resize(num_incident);
    std::vector<std::int32_t> cursor(ps.edge_offsets.begin(),
                                     ps.edge_offsets.end() - 1);
    for (std::size_t idx = 0; idx < lm.edges.size(); ++idx) {
      const auto& e = lm.edges[idx];
      if (e.a < lm.num_owned()) {
        auto& at = cursor[static_cast<std::size_t>(e.a)];
        ps.edge_ids[static_cast<std::size_t>(at)] =
            static_cast<std::int32_t>(idx);
        ps.edge_side[static_cast<std::size_t>(at)] = 0;
        ++at;
      }
      if (e.b < lm.num_owned()) {
        auto& at = cursor[static_cast<std::size_t>(e.b)];
        ps.edge_ids[static_cast<std::size_t>(at)] =
            static_cast<std::int32_t>(idx);
        ps.edge_side[static_cast<std::size_t>(at)] = 1;
        ++at;
      }
    }

    ps.split = mesh::split_interior_boundary(lm);
    for (const std::int32_t c : ps.split.interior) {
      ps.interior_incidence +=
          ps.edge_offsets[static_cast<std::size_t>(c) + 1] -
          ps.edge_offsets[static_cast<std::size_t>(c)];
    }
    for (const std::int32_t c : ps.split.boundary) {
      ps.boundary_incidence +=
          ps.edge_offsets[static_cast<std::size_t>(c) + 1] -
          ps.edge_offsets[static_cast<std::size_t>(c)];
    }

    ps.local = std::move(lm);
    parts_.push_back(std::move(ps));
  }

  // Static message list of one halo round (src, dst, channel payload) for
  // Cluster::exchange_begin in overlapped steps.
  halo_messages_.reserve(halo_plan_.channels().size());
  for (const comm::ExchangePlan::Channel& ch : halo_plan_.channels()) {
    halo_messages_.push_back(
        {ch.src, ch.dst, ch.send_indices.size() * sizeof(State)});
  }

  if (check::deep()) {
    // Tier-2 audit of the overlap partition: interior rows never reach a
    // ghost slot, and every ghost slot a boundary row reads is filled by
    // a plan channel. The cell-neighbour stencil shares the CSR offsets.
    std::vector<std::int32_t> stencil_cells;
    for (const PartState& ps : parts_) {
      stencil_cells.clear();
      stencil_cells.reserve(ps.edge_ids.size());
      for (std::size_t k = 0; k < ps.edge_ids.size(); ++k) {
        const auto& e =
            ps.local.edges[static_cast<std::size_t>(ps.edge_ids[k])];
        stencil_cells.push_back(ps.edge_side[k] == 0 ? e.b : e.a);
      }
      comm::validate_split(
          halo_plan_,
          {ps.local.part, ps.local.num_owned(), ps.split.interior,
           ps.split.boundary, ps.edge_offsets, stencil_cells});
    }
  }
}

void DistributedSolver::set_uniform(const State& u) {
  for (PartState& ps : parts_) {
    std::fill(ps.u.begin(), ps.u.end(), u);
  }
}

void DistributedSolver::set_cell(mesh::CellId cell, const State& u) {
  CPX_REQUIRE(cell >= 0 && cell < global_cells_, "set_cell: bad cell");
  const int part = part_of_[static_cast<std::size_t>(cell)];
  parts_[static_cast<std::size_t>(part)]
      .u[static_cast<std::size_t>(local_of_[static_cast<std::size_t>(cell)])] =
      u;
  // Ghost copies become current at the next exchange.
}

void DistributedSolver::attach_cluster(sim::Cluster* cluster) {
  cluster_ = cluster;
  if (cluster_ != nullptr) {
    CPX_REQUIRE(cluster_->num_ranks() >= num_parts(),
                "attach_cluster: cluster too small");
    region_flux_ = cluster_->region("dist_mgcfd/flux");
    region_halo_ = cluster_->region("dist_mgcfd/halo");
    region_reduce_ = cluster_->region("dist_mgcfd/reduce");
  }
}

void DistributedSolver::exchange_halos() {
  // One plan execution per step: pack each send list, move the bytes
  // through the communicator, scatter into the neighbours' ghost slots.
  halo_plan_.execute(comm_, [this](comm::Rank r) {
    return std::as_writable_bytes(
        std::span<State>(parts_[static_cast<std::size_t>(r)].u));
  });
  if (cluster_ != nullptr) {
    // Charge the co-simulated cluster with the transfers that actually
    // moved — same message list the hand-rolled exchange used to build.
    sim::flush_exchange(comm_, *cluster_, region_halo_, 0, message_scratch_);
  } else {
    comm_.clear_transfers();
  }
}

void DistributedSolver::compute_residuals(
    PartState& ps, std::span<const std::int32_t> cells) const {
  // Gather form of the flux loop: each cell accumulates its incident
  // edges' contributions in ascending edge order — the order the
  // edge-centric scatter delivered them — so any grouping of cells
  // (interior-first, boundary-later) leaves the residuals bitwise
  // unchanged. Cut-edge fluxes are recomputed on both owning cells;
  // rusanov_flux is a pure function of its operands, so both sides see
  // the identical value.
  for (const std::int32_t c : cells) {
    State& r = ps.residual[static_cast<std::size_t>(c)];
    const std::int32_t lo = ps.edge_offsets[static_cast<std::size_t>(c)];
    const std::int32_t hi =
        ps.edge_offsets[static_cast<std::size_t>(c) + 1];
    for (std::int32_t k = lo; k < hi; ++k) {
      const auto& e =
          ps.local.edges[static_cast<std::size_t>(
              ps.edge_ids[static_cast<std::size_t>(k)])];
      const State f = rusanov_flux(ps.u[static_cast<std::size_t>(e.a)],
                                   ps.u[static_cast<std::size_t>(e.b)],
                                   e.normal, options_.dissipation);
      if (ps.edge_side[static_cast<std::size_t>(k)] == 0) {
        for (int j = 0; j < 5; ++j) {
          r[j] -= e.area * f[j];
        }
      } else {
        for (int j = 0; j < 5; ++j) {
          r[j] += e.area * f[j];
        }
      }
    }
  }
}

double DistributedSolver::finalize_part(PartState& ps) {
  const auto owned = static_cast<std::size_t>(ps.local.num_owned());
  // Boundary closure (transmissive), identical to the sequential solver.
  for (std::size_t c = 0; c < owned; ++c) {
    const mesh::Vec3& d = ps.closure[c];
    if (d.x == 0.0 && d.y == 0.0 && d.z == 0.0) {
      continue;
    }
    const State f = physical_flux(ps.u[c], d);
    for (int k = 0; k < 5; ++k) {
      ps.residual[c][k] += f[k];
    }
  }
  // Local-time-step update with positivity guard.
  double part_norm_sq = 0.0;
  for (std::size_t c = 0; c < owned; ++c) {
    State& uc = ps.u[c];
    const double vol = ps.volumes[c];
    const double wave = std::abs(uc[1] / uc[0]) + sound_speed(uc);
    const double face_area =
        std::max(ps.degrees[c], 1.0) * std::pow(vol, 2.0 / 3.0);
    const double dt =
        options_.cfl * vol / std::max(wave * face_area, 1e-12);
    for (int k = 0; k < 5; ++k) {
      part_norm_sq += ps.residual[c][k] * ps.residual[c][k];
      uc[k] += dt * ps.residual[c][k] / vol;
    }
    uc[0] = std::max(uc[0], 1e-10);
    const double ke =
        0.5 * (uc[1] * uc[1] + uc[2] * uc[2] + uc[3] * uc[3]) / uc[0];
    uc[4] = std::max(uc[4], ke + 1e-10);
  }
  return part_norm_sq;
}

double DistributedSolver::compute_and_update() {
  for (PartState& ps : parts_) {
    std::fill(ps.residual.begin(), ps.residual.end(), State{});
    compute_residuals(ps, ps.split.interior);
    compute_residuals(ps, ps.split.boundary);
    norm_partials_[static_cast<std::size_t>(ps.local.part)] =
        finalize_part(ps);
    if (cluster_ != nullptr) {
      const auto owned = static_cast<double>(ps.local.num_owned());
      sim::Work w;
      w.flops =
          static_cast<double>(ps.local.edges.size()) * 120.0 + owned * 60.0;
      w.bytes =
          static_cast<double>(ps.local.edges.size()) * 160.0 + owned * 100.0;
      cluster_->compute(ps.local.part, w, region_flux_);
    }
  }
  // Deterministic allreduce of the per-rank partials (what an MPI run
  // computes: each rank reduces its owned cells, ranks combine in order).
  const double norm_sq = comm_.allreduce_sum(norm_partials_);
  if (cluster_ != nullptr && num_parts() > 1) {
    cluster_->allreduce({0, num_parts()}, sizeof(double), region_reduce_);
  }
  return std::sqrt(norm_sq);
}

double DistributedSolver::step_overlapped() {
  // Same data movement and numerics as the synchronous step — the halo
  // payload is gathered from the identical pre-step states and interior
  // cells never read a slot the plan fills — only phased so interior flux
  // work sits inside the exchange window.
  const auto rank_data = [this](comm::Rank r) {
    return std::as_writable_bytes(
        std::span<State>(parts_[static_cast<std::size_t>(r)].u));
  };
  halo_plan_.begin(comm_, rank_data);
  int pending = -1;
  // The simulated-time window opens and closes under the same
  // `cluster_ != nullptr` guard; the branches are correlated, which the
  // path merge in cpxcheck's split-phase rule cannot see.
  // cpx-lint: allow(split-phase)
  if (cluster_ != nullptr) {
    pending = cluster_->exchange_begin(halo_messages_, region_halo_);
  }

  for (PartState& ps : parts_) {
    std::fill(ps.residual.begin(), ps.residual.end(), State{});
    compute_residuals(ps, ps.split.interior);
    if (cluster_ != nullptr) {
      const double total_incid = static_cast<double>(
          ps.interior_incidence + ps.boundary_incidence);
      const double frac =
          total_incid > 0.0
              ? static_cast<double>(ps.interior_incidence) / total_incid
              : 0.0;
      sim::Work w;
      w.flops = static_cast<double>(ps.local.edges.size()) * 120.0 * frac;
      w.bytes = static_cast<double>(ps.local.edges.size()) * 160.0 * frac;
      cluster_->compute(ps.local.part, w, region_flux_);
    }
  }

  halo_plan_.finish(comm_, rank_data);
  comm_.clear_transfers();  // charged via exchange_begin, not the bridge
  if (cluster_ != nullptr) {
    cluster_->exchange_finish(pending);
  }

  for (PartState& ps : parts_) {
    compute_residuals(ps, ps.split.boundary);
    norm_partials_[static_cast<std::size_t>(ps.local.part)] =
        finalize_part(ps);
    if (cluster_ != nullptr) {
      const auto owned = static_cast<double>(ps.local.num_owned());
      const double total_incid = static_cast<double>(
          ps.interior_incidence + ps.boundary_incidence);
      const double frac =
          total_incid > 0.0
              ? static_cast<double>(ps.boundary_incidence) / total_incid
              : 1.0;
      // Complements the interior charge: overlapped and synchronous steps
      // account the same total compute, placed differently.
      sim::Work w;
      w.flops = static_cast<double>(ps.local.edges.size()) * 120.0 * frac +
                owned * 60.0;
      w.bytes = static_cast<double>(ps.local.edges.size()) * 160.0 * frac +
                owned * 100.0;
      w.launches = 0.0;  // the step's launch is charged with the interior
      cluster_->compute(ps.local.part, w, region_flux_);
    }
  }

  const double norm_sq = comm_.allreduce_sum(norm_partials_);
  if (cluster_ != nullptr && num_parts() > 1) {
    cluster_->allreduce({0, num_parts()}, sizeof(double), region_reduce_);
  }
  return std::sqrt(norm_sq);
}

double DistributedSolver::step() {
  if (overlap_) {
    return step_overlapped();
  }
  exchange_halos();
  return compute_and_update();
}

double DistributedSolver::run(int steps) {
  CPX_REQUIRE(steps >= 1, "run: bad step count");
  double norm = 0.0;
  for (int s = 0; s < steps; ++s) {
    norm = step();
  }
  return norm;
}

std::vector<State> DistributedSolver::gather_solution() const {
  std::vector<State> out(static_cast<std::size_t>(global_cells_));
  for (const PartState& ps : parts_) {
    for (std::size_t i = 0; i < ps.local.owned.size(); ++i) {
      out[static_cast<std::size_t>(ps.local.owned[i])] = ps.u[i];
    }
  }
  return out;
}

void DistributedSolver::serialize(ckpt::Writer& w) const {
  w.begin_section("mgcfd/distributed");
  w.put_i64(global_cells_);
  w.put_u32(static_cast<std::uint32_t>(num_parts()));
  w.put_u8(overlap_ ? 1 : 0);
  for (const PartState& ps : parts_) {
    // Owned + ghost states, flattened: 5 doubles per cell slot. The ghost
    // tail is included so a restored solver can step without a priming
    // halo exchange, matching the in-memory state exactly.
    w.put_u64(static_cast<std::uint64_t>(ps.u.size()));
    for (const State& u : ps.u) {
      for (const double c : u) {
        w.put_f64(c);
      }
    }
  }
  w.end_section();
}

void DistributedSolver::restore(ckpt::Reader& r) {
  r.open_section("mgcfd/distributed");
  const std::int64_t cells = r.get_i64();
  const auto parts = static_cast<int>(r.get_u32());
  CPX_CHECK_MSG(cells == global_cells_ && parts == num_parts(),
                "DistributedSolver::restore: snapshot was taken with a "
                "different decomposition ("
                    << cells << " cells / " << parts << " parts, expected "
                    << global_cells_ << " / " << num_parts() << ")");
  overlap_ = r.get_u8() != 0;
  for (PartState& ps : parts_) {
    const std::uint64_t slots = r.get_u64();
    CPX_CHECK_MSG(slots == ps.u.size(),
                  "DistributedSolver::restore: part state has "
                      << slots << " cell slots, expected " << ps.u.size());
    for (State& u : ps.u) {
      for (double& c : u) {
        c = r.get_f64();
      }
    }
  }
  r.end_section();
}

}  // namespace cpx::mgcfd
