#include "mgcfd/distributed.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "sim/comm_bridge.hpp"
#include "support/check.hpp"

namespace cpx::mgcfd {
namespace {

State rusanov_flux(const State& ua, const State& ub, const mesh::Vec3& n,
                   double dissipation) {
  // Same numerics as EulerSolver::compute_residual (euler.cpp); kept in
  // lock-step so the distributed and sequential solvers agree exactly.
  const auto phys = [](const State& u, const mesh::Vec3& nn) {
    const double rho = u[0];
    const double vn = (u[1] * nn.x + u[2] * nn.y + u[3] * nn.z) / rho;
    const double p = pressure(u);
    State f;
    f[0] = rho * vn;
    f[1] = u[1] * vn + p * nn.x;
    f[2] = u[2] * vn + p * nn.y;
    f[3] = u[3] * vn + p * nn.z;
    f[4] = (u[4] + p) * vn;
    return f;
  };
  const auto speed = [](const State& u, const mesh::Vec3& nn) {
    const double vn = (u[1] * nn.x + u[2] * nn.y + u[3] * nn.z) / u[0];
    return std::abs(vn) + sound_speed(u);
  };
  const State fa = phys(ua, n);
  const State fb = phys(ub, n);
  const double smax = std::max(speed(ua, n), speed(ub, n));
  State f;
  for (int k = 0; k < 5; ++k) {
    f[k] = 0.5 * (fa[k] + fb[k]) - 0.5 * dissipation * smax * (ub[k] - ua[k]);
  }
  return f;
}

State physical_flux(const State& u, const mesh::Vec3& n) {
  const double rho = u[0];
  const double vn = (u[1] * n.x + u[2] * n.y + u[3] * n.z) / rho;
  const double p = pressure(u);
  State f;
  f[0] = rho * vn;
  f[1] = u[1] * vn + p * n.x;
  f[2] = u[2] * vn + p * n.y;
  f[3] = u[3] * vn + p * n.z;
  f[4] = (u[4] + p) * vn;
  return f;
}

}  // namespace

DistributedSolver::DistributedSolver(const mesh::UnstructuredMesh& mesh,
                                     int parts, const EulerOptions& options)
    : options_(options), global_cells_(mesh.num_cells()) {
  CPX_REQUIRE(parts >= 1, "DistributedSolver: bad part count");
  options_.mg_levels = 1;  // multigrid is not distributed (see header)

  const mesh::Partitioning partitioning = mesh::partition_rcb(mesh, parts);
  part_of_ = partitioning.part_of;
  auto locals = mesh::extract_local_meshes(mesh, partitioning);

  // The halo schedule comes straight from the mesh send lists; one plan
  // serves every step, so steady-state exchange is allocation-free.
  comm_ = comm::Communicator::world(parts, "mgcfd");
  halo_plan_ = mesh::build_halo_plan(locals);
  halo_plan_.finalize(sizeof(State));
  norm_partials_.assign(static_cast<std::size_t>(parts), 0.0);

  local_of_.assign(static_cast<std::size_t>(global_cells_), -1);
  parts_.reserve(locals.size());
  for (mesh::LocalMesh& lm : locals) {
    PartState ps;
    const auto owned = static_cast<std::size_t>(lm.num_owned());
    const auto total = owned + static_cast<std::size_t>(lm.num_ghosts());
    for (std::size_t i = 0; i < owned; ++i) {
      local_of_[static_cast<std::size_t>(lm.owned[i])] =
          static_cast<std::int32_t>(i);
    }
    ps.u.assign(total, State{1.0, 0.0, 0.0, 0.0, 2.5});
    ps.residual.assign(owned, State{});
    // Geometric closure of each owned cell from its incident edges (every
    // global edge touching an owned cell appears in the local edge list).
    ps.closure.assign(owned, mesh::Vec3{0.0, 0.0, 0.0});
    for (const auto& e : lm.edges) {
      if (e.a < lm.num_owned()) {
        auto& c = ps.closure[static_cast<std::size_t>(e.a)];
        c.x += e.area * e.normal.x;
        c.y += e.area * e.normal.y;
        c.z += e.area * e.normal.z;
      }
      if (e.b < lm.num_owned()) {
        auto& c = ps.closure[static_cast<std::size_t>(e.b)];
        c.x -= e.area * e.normal.x;
        c.y -= e.area * e.normal.y;
        c.z -= e.area * e.normal.z;
      }
    }
    // Degrees (incident local edges per owned cell — equals the global
    // degree, since every incident global edge is present locally).
    ps.degrees.assign(owned, 0.0);
    for (const auto& e : lm.edges) {
      if (e.a < lm.num_owned()) {
        ps.degrees[static_cast<std::size_t>(e.a)] += 1.0;
      }
      if (e.b < lm.num_owned()) {
        ps.degrees[static_cast<std::size_t>(e.b)] += 1.0;
      }
    }
    ps.volumes.reserve(owned);
    for (mesh::CellId c : lm.owned) {
      ps.volumes.push_back(mesh.volumes()[static_cast<std::size_t>(c)]);
    }
    ps.local = std::move(lm);
    parts_.push_back(std::move(ps));
  }
}

void DistributedSolver::set_uniform(const State& u) {
  for (PartState& ps : parts_) {
    std::fill(ps.u.begin(), ps.u.end(), u);
  }
}

void DistributedSolver::set_cell(mesh::CellId cell, const State& u) {
  CPX_REQUIRE(cell >= 0 && cell < global_cells_, "set_cell: bad cell");
  const int part = part_of_[static_cast<std::size_t>(cell)];
  parts_[static_cast<std::size_t>(part)]
      .u[static_cast<std::size_t>(local_of_[static_cast<std::size_t>(cell)])] =
      u;
  // Ghost copies become current at the next exchange.
}

void DistributedSolver::attach_cluster(sim::Cluster* cluster) {
  cluster_ = cluster;
  if (cluster_ != nullptr) {
    CPX_REQUIRE(cluster_->num_ranks() >= num_parts(),
                "attach_cluster: cluster too small");
    region_flux_ = cluster_->region("dist_mgcfd/flux");
    region_halo_ = cluster_->region("dist_mgcfd/halo");
    region_reduce_ = cluster_->region("dist_mgcfd/reduce");
  }
}

void DistributedSolver::exchange_halos() {
  // One plan execution per step: pack each send list, move the bytes
  // through the communicator, scatter into the neighbours' ghost slots.
  halo_plan_.execute(comm_, [this](comm::Rank r) {
    return std::as_writable_bytes(
        std::span<State>(parts_[static_cast<std::size_t>(r)].u));
  });
  if (cluster_ != nullptr) {
    // Charge the co-simulated cluster with the transfers that actually
    // moved — same message list the hand-rolled exchange used to build.
    sim::flush_exchange(comm_, *cluster_, region_halo_, 0, message_scratch_);
  } else {
    comm_.clear_transfers();
  }
}

double DistributedSolver::compute_and_update() {
  for (PartState& ps : parts_) {
    const auto owned = static_cast<std::size_t>(ps.local.num_owned());
    double part_norm_sq = 0.0;
    std::fill(ps.residual.begin(), ps.residual.end(), State{});
    for (const auto& e : ps.local.edges) {
      const State f = rusanov_flux(ps.u[static_cast<std::size_t>(e.a)],
                                   ps.u[static_cast<std::size_t>(e.b)],
                                   e.normal, options_.dissipation);
      for (int k = 0; k < 5; ++k) {
        const double contrib = e.area * f[k];
        if (e.a < ps.local.num_owned()) {
          ps.residual[static_cast<std::size_t>(e.a)][k] -= contrib;
        }
        if (e.b < ps.local.num_owned()) {
          ps.residual[static_cast<std::size_t>(e.b)][k] += contrib;
        }
      }
    }
    // Boundary closure (transmissive), identical to the sequential solver.
    for (std::size_t c = 0; c < owned; ++c) {
      const mesh::Vec3& d = ps.closure[c];
      if (d.x == 0.0 && d.y == 0.0 && d.z == 0.0) {
        continue;
      }
      const State f = physical_flux(ps.u[c], d);
      for (int k = 0; k < 5; ++k) {
        ps.residual[c][k] += f[k];
      }
    }
    // Local-time-step update with positivity guard.
    for (std::size_t c = 0; c < owned; ++c) {
      State& uc = ps.u[c];
      const double vol = ps.volumes[c];
      const double wave = std::abs(uc[1] / uc[0]) + sound_speed(uc);
      const double face_area =
          std::max(ps.degrees[c], 1.0) * std::pow(vol, 2.0 / 3.0);
      const double dt =
          options_.cfl * vol / std::max(wave * face_area, 1e-12);
      for (int k = 0; k < 5; ++k) {
        part_norm_sq += ps.residual[c][k] * ps.residual[c][k];
        uc[k] += dt * ps.residual[c][k] / vol;
      }
      uc[0] = std::max(uc[0], 1e-10);
      const double ke =
          0.5 * (uc[1] * uc[1] + uc[2] * uc[2] + uc[3] * uc[3]) / uc[0];
      uc[4] = std::max(uc[4], ke + 1e-10);
    }
    if (cluster_ != nullptr) {
      sim::Work w;
      w.flops = static_cast<double>(ps.local.edges.size()) * 120.0 +
                static_cast<double>(owned) * 60.0;
      w.bytes = static_cast<double>(ps.local.edges.size()) * 160.0 +
                static_cast<double>(owned) * 100.0;
      cluster_->compute(ps.local.part, w, region_flux_);
    }
    norm_partials_[static_cast<std::size_t>(ps.local.part)] = part_norm_sq;
  }
  // Deterministic allreduce of the per-rank partials (what an MPI run
  // computes: each rank reduces its owned cells, ranks combine in order).
  const double norm_sq = comm_.allreduce_sum(norm_partials_);
  if (cluster_ != nullptr && num_parts() > 1) {
    cluster_->allreduce({0, num_parts()}, sizeof(double), region_reduce_);
  }
  return std::sqrt(norm_sq);
}

double DistributedSolver::step() {
  exchange_halos();
  return compute_and_update();
}

double DistributedSolver::run(int steps) {
  CPX_REQUIRE(steps >= 1, "run: bad step count");
  double norm = 0.0;
  for (int s = 0; s < steps; ++s) {
    norm = step();
  }
  return norm;
}

std::vector<State> DistributedSolver::gather_solution() const {
  std::vector<State> out(static_cast<std::size_t>(global_cells_));
  for (const PartState& ps : parts_) {
    for (std::size_t i = 0; i < ps.local.owned.size(); ++i) {
      out[static_cast<std::size_t>(ps.local.owned[i])] = ps.u[i];
    }
  }
  return out;
}

}  // namespace cpx::mgcfd
