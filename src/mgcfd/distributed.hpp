#pragma once
// Distributed-memory MG-CFD: the Euler solver actually partitioned over
// ranks with real halo exchange, executed rank-by-rank in process. The
// data plane is the comm layer (src/comm/, docs/communication.md): a
// world communicator over the parts and a precomputed ExchangePlan built
// from the mesh send lists move the halo bytes exactly as an MPI
// implementation would.
//
// This closes the loop between the performance instance (instance.hpp,
// which only *accounts* for communication) and the numerics (euler.hpp,
// which is sequential): the distributed solver produces the same solution
// as the sequential solver on the same mesh (tests verify this), while its
// communication structure — per-neighbour pack/send/unpack plus a residual
// allreduce — is precisely what the performance instance charges to the
// virtual cluster. Passing a Cluster lets one run co-simulate: real
// physics and virtual timing from the same execution, charged with the
// real message sizes recorded by the communicator.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/exchange_plan.hpp"
#include "mesh/partition.hpp"
#include "mgcfd/euler.hpp"
#include "sim/cluster.hpp"

namespace cpx::ckpt {
class Writer;
class Reader;
}  // namespace cpx::ckpt

namespace cpx::mgcfd {

class DistributedSolver {
 public:
  /// Partitions `mesh` into `parts` ranks with RCB. Multigrid is not
  /// distributed (mg_levels is forced to 1); the paper's density-solver
  /// instances are modelled at the timestep level anyway.
  DistributedSolver(const mesh::UnstructuredMesh& mesh, int parts,
                    const EulerOptions& options);

  int num_parts() const { return static_cast<int>(parts_.size()); }
  std::int64_t num_cells() const { return global_cells_; }

  void set_uniform(const State& u);
  /// Sets the state of one global cell (routed to its owner).
  void set_cell(mesh::CellId cell, const State& u);

  /// One explicit timestep across all ranks: halo exchange, per-rank flux
  /// residual and update, residual allreduce. Returns the global residual
  /// norm (as the allreduce would deliver it: deterministic rank-order
  /// combine of per-rank partial sums).
  double step();

  /// Runs `steps` timesteps; returns the last residual norm.
  double run(int steps);

  /// Solution gathered back to global cell order.
  std::vector<State> gather_solution() const;

  /// Cumulative traffic counters of the solver's communicator (halo
  /// payloads + residual allreduce contributions). Shared accounting with
  /// every other subsystem — see docs/communication.md.
  const comm::CommStats& comm_stats() const { return comm_.stats(); }
  const comm::Communicator& communicator() const { return comm_; }

  /// Halo payload bytes moved by one exchange (fixed by the partitioning).
  std::size_t halo_bytes_per_exchange() const {
    return halo_plan_.bytes_per_exchange();
  }

  /// Attaches a virtual cluster for performance co-simulation: subsequent
  /// steps charge compute (from real kernel work counts) and communication
  /// (from the communicator's recorded transfers) to `cluster` on ranks
  /// [0, num_parts). Pass nullptr to detach.
  void attach_cluster(sim::Cluster* cluster);

  /// Split-phase halo overlap (docs/communication.md): step() begins the
  /// halo exchange, computes interior-cell residuals inside the window,
  /// finishes, then computes boundary-cell residuals. Residuals are
  /// gathered per cell in ascending incident-edge order in both modes, so
  /// the overlapped and synchronous solutions are bitwise identical; only
  /// the co-simulated timing differs (Cluster::comm_hidden_seconds).
  void set_overlap(bool on) { overlap_ = on; }
  bool overlap() const { return overlap_; }

  /// Snapshot section "mgcfd/distributed" (docs/checkpoint.md): per-part
  /// solution states including the halo ghost slots, so a restored solver
  /// can step without a priming exchange. Partitioning, exchange plan, and
  /// kernel scratch are rebuilt by the constructor; restore validates the
  /// decomposition shape and throws CheckError on mismatch or corruption.
  void serialize(ckpt::Writer& w) const;
  void restore(ckpt::Reader& r);

 private:
  struct PartState {
    mesh::LocalMesh local;
    std::vector<State> u;         ///< owned + ghost states
    std::vector<State> residual;  ///< owned only
    std::vector<mesh::Vec3> closure;  ///< owned only
    std::vector<double> volumes;      ///< owned only
    std::vector<double> degrees;      ///< owned only (incident edge count)

    /// Per-cell incident-edge CSR (ascending edge index within each row):
    /// the gather form of the residual loop, shared by both step modes.
    std::vector<std::int32_t> edge_offsets;  ///< num_owned + 1
    std::vector<std::int32_t> edge_ids;
    std::vector<std::int8_t> edge_side;  ///< 0: cell is edge.a, 1: edge.b
    mesh::CellSplit split;
    std::int64_t interior_incidence = 0;  ///< CSR entries in interior rows
    std::int64_t boundary_incidence = 0;
  };

  void exchange_halos();
  double compute_and_update();
  double step_overlapped();
  void compute_residuals(PartState& ps,
                         std::span<const std::int32_t> cells) const;
  double finalize_part(PartState& ps);

  // Everything below except parts_[].u and overlap_ is rebuilt by the
  // constructor from (mesh, parts, options); the snapshot stores only the
  // states plus enough shape to validate the decomposition matches.
  EulerOptions options_;     // validated on restore // cpx-lint: allow(ckpt)
  std::int64_t global_cells_ = 0;
  std::vector<int> part_of_;            // cpx-lint: allow(ckpt)
  std::vector<std::int32_t> local_of_;  // cpx-lint: allow(ckpt)
  std::vector<PartState> parts_;
  comm::Communicator comm_;             // cpx-lint: allow(ckpt)
  comm::ExchangePlan halo_plan_;        // cpx-lint: allow(ckpt)
  std::vector<double> norm_partials_;   // cpx-lint: allow(ckpt)
  std::vector<sim::Message> message_scratch_;  // cpx-lint: allow(ckpt)
  std::vector<sim::Message> halo_messages_;    // cpx-lint: allow(ckpt)
  sim::Cluster* cluster_ = nullptr;     // cpx-lint: allow(ckpt)
  bool overlap_ = false;
  sim::RegionId region_flux_ = -1;      // cpx-lint: allow(ckpt)
  sim::RegionId region_halo_ = -1;      // cpx-lint: allow(ckpt)
  sim::RegionId region_reduce_ = -1;    // cpx-lint: allow(ckpt)
};

}  // namespace cpx::mgcfd
