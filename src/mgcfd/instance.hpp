#pragma once
// MG-CFD performance instance: replays the mini-app's per-timestep compute
// and communication structure on the virtual cluster.
//
// One solver timestep is one multigrid V-cycle: on each level, smoothing
// sweeps (edge-flux + cell-update kernels) interleaved with halo exchange,
// then a residual allreduce. The finest level dominates both flops and
// halo bytes; coarse-level exchanges are latency-bound rounds.
//
// Two construction modes:
//  * measured — from a real mesh + RCB partitioning (small scale; per-rank
//    owned/halo/neighbour data taken from the actual partition), and
//  * analytic — from mesh::PartitionStats (paper-scale instances: 8M-380M
//    cells on hundreds to thousands of ranks), with ranks arranged in a 3-D
//    grid so neighbour messages have realistic node locality.
// Tests verify the two modes agree at small scale.

#include <cstdint>
#include <string>
#include <vector>

#include "mesh/partition.hpp"
#include "mesh/stats.hpp"
#include "sim/app.hpp"

namespace cpx::mgcfd {

/// Work-model coefficients for the MG-CFD kernels (per fine-level entity).
struct WorkModel {
  double flops_per_edge = 40.0;
  double bytes_per_edge = 42.0;    ///< indirect reads/writes of 2x5 vars
  double flops_per_cell = 20.0;
  double bytes_per_cell = 25.0;
  double edges_per_cell = 3.0;     ///< structured-like unstructured mesh
  std::size_t bytes_per_halo_cell = 5 * sizeof(double);
  int mg_levels = 4;
  double level_cell_ratio = 0.5;   ///< cells(l+1)/cells(l) from agglomeration
  int smooth_steps = 1;
};

class Instance final : public sim::App {
 public:
  /// Analytic mode: per-rank statistics from the analytic partition model.
  Instance(std::string name, std::int64_t global_cells, sim::RankRange ranks,
           const WorkModel& work = {});

  /// Measured mode: per-rank statistics from an actual partitioning of a
  /// real mesh (partitioning.num_parts must equal ranks.size()).
  Instance(std::string name, const mesh::UnstructuredMesh& mesh,
           const mesh::Partitioning& partitioning, sim::RankRange ranks,
           const WorkModel& work = {});

  const std::string& name() const override { return name_; }
  sim::RankRange ranks() const override { return ranks_; }
  void step(sim::Cluster& cluster) override;

  std::int64_t global_cells() const { return global_cells_; }
  const WorkModel& work_model() const { return work_; }

  /// Mean owned cells per rank (for reporting).
  double mean_owned() const;

  /// Split-phase halo overlap (docs/communication.md): step() posts the
  /// finest-level halo round first, charges each rank's interior-cell
  /// share of the sweep compute inside the window, then finishes the
  /// exchange and charges the boundary share. Totals match the
  /// synchronous schedule; only placement differs.
  void set_overlap(bool on) override { overlap_ = on; }

 private:
  struct RankLoad {
    std::int64_t owned = 0;
    /// Neighbour ranks (cluster-global ids) and halo cells sent to each.
    std::vector<sim::Rank> neighbors;
    std::vector<std::int64_t> halo_cells;
  };

  void build_analytic(std::int64_t global_cells);
  void ensure_regions(sim::Cluster& cluster);

  std::string name_;
  sim::RankRange ranks_;
  std::int64_t global_cells_ = 0;
  WorkModel work_;
  bool overlap_ = false;
  std::vector<RankLoad> loads_;  ///< indexed by rank - ranks_.begin

  sim::RegionId region_flux_ = -1;
  sim::RegionId region_halo_ = -1;
  sim::RegionId region_mg_ = -1;
  sim::RegionId region_reduce_ = -1;
  std::vector<sim::Message> message_scratch_;
};

}  // namespace cpx::mgcfd
