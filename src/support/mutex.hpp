#pragma once
// Annotated mutex and lock wrappers (docs/static_analysis.md).
//
// libstdc++'s std::mutex and std::lock_guard carry no thread-safety
// attributes, so clang's capability analysis cannot see them acquire or
// release anything: a CPX_GUARDED_BY member locked through a bare
// std::lock_guard would warn on every access. These wrappers are the
// repo's lockable vocabulary instead — zero-cost shims over std::mutex /
// std::unique_lock that carry the capability attributes, plus a native()
// escape for std::condition_variable (which requires a real
// std::unique_lock<std::mutex>).
//
// Condition-variable predicates should be written as explicit
//     while (!ready_locked_state) cv.wait(lock.native());
// loops rather than the wait(lock, pred) overload: the predicate lambda
// is analysed as a separate function that holds nothing, while the loop
// body sits in the enclosing scope where the capability is held.

#include <mutex>

#include "support/thread_annotations.hpp"

namespace cpx::support {

/// std::mutex with the capability attribute. Same size, same cost.
class CPX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CPX_ACQUIRE() { m_.lock(); }
  void unlock() CPX_RELEASE() { m_.unlock(); }
  bool try_lock() CPX_TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// The wrapped mutex, for std:: APIs that need the real type. Locking
  /// through it bypasses the analysis; only MutexLock should call this.
  std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

/// Scoped lock over Mutex (std::unique_lock underneath, so it supports
/// early release and condition-variable waits).
class CPX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) CPX_ACQUIRE(mutex)
      : lock_(mutex.native()) {}
  ~MutexLock() CPX_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Early release (the analysis tracks that the capability is gone; the
  /// destructor then releases nothing).
  void unlock() CPX_RELEASE() { lock_.unlock(); }

  /// The underlying std::unique_lock, for std::condition_variable::wait.
  /// wait() releases and reacquires the mutex internally, which the
  /// analysis cannot see — sound here because it is restored before
  /// control returns to annotated code.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace cpx::support
