#pragma once
// Small statistics helpers shared by the performance model, the benchmark
// harness and the experiment reports.

#include <cstddef>
#include <span>
#include <vector>

namespace cpx {

/// Summary statistics over a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

Summary summarize(std::span<const double> values);

/// Relative error |measured - reference| / |reference|, as a fraction.
double relative_error(double measured, double reference);

/// Percentage error, 100 * relative_error.
double percent_error(double measured, double reference);

/// Parallel efficiency of a strong-scaling point: PE(p) = T(p0)*p0 / (T(p)*p).
double parallel_efficiency(double t_base, double cores_base, double t_p,
                           double cores_p);

/// Speedup relative to the base point: S(p) = T(p0) / T(p).
double speedup(double t_base, double t_p);

/// Coefficient of determination (R^2) of predictions vs observations.
double r_squared(std::span<const double> observed,
                 std::span<const double> predicted);

/// Linear interpolation of y(x) on a sorted x grid; clamps outside range.
double interp1(std::span<const double> xs, std::span<const double> ys,
               double x);

/// Geometric mean (all values must be positive).
double geometric_mean(std::span<const double> values);

}  // namespace cpx
