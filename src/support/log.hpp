#pragma once
// Leveled logging to stderr. Default level is Warn so test and bench output
// stays clean; examples raise it to Info.

#include <sstream>
#include <string>

namespace cpx {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

}  // namespace cpx

#define CPX_LOG(level, msg)                                    \
  do {                                                         \
    if (static_cast<int>(level) >=                             \
        static_cast<int>(::cpx::log_level())) {                \
      std::ostringstream cpx_log_oss_;                         \
      cpx_log_oss_ << msg;                                     \
      ::cpx::detail::log_emit(level, cpx_log_oss_.str());      \
    }                                                          \
  } while (false)

#define CPX_LOG_DEBUG(msg) CPX_LOG(::cpx::LogLevel::kDebug, msg)
#define CPX_LOG_INFO(msg) CPX_LOG(::cpx::LogLevel::kInfo, msg)
#define CPX_LOG_WARN(msg) CPX_LOG(::cpx::LogLevel::kWarn, msg)
#define CPX_LOG_ERROR(msg) CPX_LOG(::cpx::LogLevel::kError, msg)
