#pragma once
// Minimal command-line option parsing shared by the examples and the bench
// binaries. Supports --key=value and boolean --flag forms.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cpx {

class Options {
 public:
  Options() = default;

  /// Parses argv; unknown positional arguments are kept in positionals().
  /// Throws CheckError on malformed input (e.g. "--" followed by nothing).
  static Options parse(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  long long get_int(const std::string& key, long long fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::vector<std::string>& positionals() const { return positionals_; }

  /// Registers documentation for --help output.
  void describe(const std::string& key, const std::string& help);
  std::string help_text(const std::string& program) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
  std::vector<std::pair<std::string, std::string>> docs_;
};

}  // namespace cpx
