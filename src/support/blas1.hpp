#pragma once
// Deterministic parallel BLAS-1 kernels for the solve path (PCG, the AMG
// cycles, and the smoothers). Reductions use the fixed-grain chunked
// partial sums of docs/parallelism.md: the chunk decomposition depends
// only on (size, grain) and partials combine in chunk order on the calling
// thread, so every result is bitwise identical at any CPX_THREADS. The
// fused variants exist to halve memory traffic in the CG iteration: one
// sweep updates two vectors (axpy2) or updates and reduces (axpy2_norm2)
// instead of separate passes. All entry points are allocation-free.

#include <span>

namespace cpx::support::blas1 {

/// Σ a_i — the deterministic sum (chunk-order combine). Also the combine
/// rule behind comm::Communicator::allreduce_sum.
double sum(std::span<const double> a);

/// Σ a_i·b_i (sizes must match).
double dot(std::span<const double> a, std::span<const double> b);

/// Σ a_i² — the squared 2-norm.
double norm2_squared(std::span<const double> a);

/// ‖a‖₂.
double norm2(std::span<const double> a);

/// Fused CG update: x += alpha·p and r -= alpha·ap in one pass.
void axpy2(double alpha, std::span<const double> p,
           std::span<const double> ap, std::span<double> x,
           std::span<double> r);

/// axpy2 that additionally returns ‖r‖² of the updated r in the same
/// sweep (saves the separate residual-norm pass of the CG iteration).
double axpy2_norm2(double alpha, std::span<const double> p,
                   std::span<const double> ap, std::span<double> x,
                   std::span<double> r);

/// Σ z_i·(a_i − b_i) — the Polak-Ribière numerator z·(r − r_old), fused.
double dot_diff(std::span<const double> z, std::span<const double> a,
                std::span<const double> b);

/// y = x + beta·y in place (the CG direction update).
void xpby(std::span<const double> x, double beta, std::span<double> y);

}  // namespace cpx::support::blas1
