#include "support/metrics.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <map>
#include <ostream>
#include <tuple>
#include <utility>

#include "support/check.hpp"
#include "support/mutex.hpp"
#include "support/options.hpp"
#include "support/thread_annotations.hpp"
#include "support/table.hpp"

namespace cpx::support::metrics {
namespace detail {

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_trace{false};

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kMaxEventsPerThread = 1 << 16;

std::int64_t ns_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count();
}

struct RegionStat {
  RegionKind kind = RegionKind::kCompute;
  std::int64_t calls = 0;
  std::int64_t ns = 0;
};

struct EventRec {
  std::string path;
  RegionKind kind = RegionKind::kCompute;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  int tid = 0;
};

}  // namespace

/// One accumulator per thread that ever touched the metrics layer. The
/// path/stack members are touched only by the owning thread; the maps and
/// event buffer are guarded by `mutex` so snapshot()/reset() can read them
/// while the thread is alive.
struct ThreadState {
  Mutex mutex;
  std::map<std::string, RegionStat, std::less<>> regions
      CPX_GUARDED_BY(mutex);
  std::map<std::string, std::int64_t, std::less<>> counters
      CPX_GUARDED_BY(mutex);
  std::vector<EventRec> events CPX_GUARDED_BY(mutex);
  std::int64_t events_dropped CPX_GUARDED_BY(mutex) = 0;
  int tid = 0;  ///< write-once at registration, read-only afterwards

  // Owning-thread-only nesting state.
  std::string path;
  struct Frame {
    std::size_t prev_len;
    RegionKind kind;
  };
  std::vector<Frame> stack;
};

namespace {

/// Global registry: live thread states plus the merged accumulators of
/// threads that have exited (pool workers die on every resize; their
/// samples must survive them).
struct Registry {
  /// Acquired before any ThreadState::mutex (snapshot/reset/thread-exit
  /// all lock registry -> state; region_exit takes only the state lock).
  Mutex mutex;
  std::vector<ThreadState*> live CPX_GUARDED_BY(mutex);
  std::map<std::string, RegionStat> retired_regions CPX_GUARDED_BY(mutex);
  std::map<std::string, std::int64_t> retired_counters
      CPX_GUARDED_BY(mutex);
  std::vector<EventRec> retired_events CPX_GUARDED_BY(mutex);
  std::int64_t retired_dropped CPX_GUARDED_BY(mutex) = 0;
  int next_tid CPX_GUARDED_BY(mutex) = 0;
  const Clock::time_point epoch = Clock::now();  ///< immutable after init

  static Registry& instance() {
    static Registry registry;
    return registry;
  }
};

void merge_state_locked(Registry& reg, ThreadState& ts)
    CPX_REQUIRES(reg.mutex, ts.mutex) {
  for (const auto& [path, stat] : ts.regions) {
    RegionStat& dst = reg.retired_regions[path];
    dst.kind = stat.kind;
    dst.calls += stat.calls;
    dst.ns += stat.ns;
  }
  for (const auto& [name, value] : ts.counters) {
    reg.retired_counters[name] += value;
  }
  reg.retired_events.insert(reg.retired_events.end(),
                            std::make_move_iterator(ts.events.begin()),
                            std::make_move_iterator(ts.events.end()));
  reg.retired_dropped += ts.events_dropped;
}

/// Registers on construction, folds the thread's samples into the retired
/// store on thread exit.
struct ThreadStateOwner {
  ThreadState state;

  ThreadStateOwner() {
    Registry& reg = Registry::instance();
    MutexLock lock(reg.mutex);
    state.tid = reg.next_tid++;
    reg.live.push_back(&state);
  }

  ~ThreadStateOwner() {
    Registry& reg = Registry::instance();
    MutexLock reg_lock(reg.mutex);
    MutexLock state_lock(state.mutex);
    merge_state_locked(reg, state);
    reg.live.erase(std::find(reg.live.begin(), reg.live.end(), &state));
  }
};

std::string& output_path_storage() {
  static std::string path;
  return path;
}

/// CPX_METRICS=<path> enables the layer at startup; the literal values
/// "1"/"true"/"on" enable without a report file. CPX_METRICS_TRACE=1 also
/// turns on event recording.
[[maybe_unused]] const bool g_env_initialized = [] {
  if (const char* env = std::getenv("CPX_METRICS");
      env != nullptr && *env != '\0') {
    g_enabled.store(true, std::memory_order_relaxed);
    if (std::strcmp(env, "1") != 0 && std::strcmp(env, "true") != 0 &&
        std::strcmp(env, "on") != 0) {
      output_path_storage() = env;
    }
  }
  if (const char* env = std::getenv("CPX_METRICS_TRACE");
      env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0) {
    g_trace.store(true, std::memory_order_relaxed);
  }
  return true;
}();

}  // namespace

ThreadState& thread_state() {
  thread_local ThreadStateOwner owner;
  return owner.state;
}

Clock::time_point region_enter(ThreadState& ts, std::string_view name,
                               RegionKind kind) {
  ts.stack.push_back({ts.path.size(), kind});
  if (!ts.path.empty()) {
    ts.path += ';';
  }
  ts.path += name;
  return Clock::now();
}

void region_exit(ThreadState& ts, Clock::time_point start) {
  const Clock::time_point end = Clock::now();
  CPX_DCHECK(!ts.stack.empty());
  const ThreadState::Frame frame = ts.stack.back();
  {
    MutexLock lock(ts.mutex);
    auto it = ts.regions.find(ts.path);
    if (it == ts.regions.end()) {
      it = ts.regions.emplace(ts.path, RegionStat{frame.kind, 0, 0}).first;
    }
    ++it->second.calls;
    it->second.ns += ns_between(start, end);
    if (g_trace.load(std::memory_order_relaxed)) {
      if (ts.events.size() < kMaxEventsPerThread) {
        const Clock::time_point epoch = Registry::instance().epoch;
        ts.events.push_back({ts.path, frame.kind, ns_between(epoch, start),
                             ns_between(epoch, end), ts.tid});
      } else {
        ++ts.events_dropped;
      }
    }
  }
  ts.path.resize(frame.prev_len);
  ts.stack.pop_back();
}

void counter_add_slow(std::string_view name, std::int64_t delta) {
  ThreadState& ts = thread_state();
  MutexLock lock(ts.mutex);
  const auto it = ts.counters.find(name);
  if (it == ts.counters.end()) {
    ts.counters.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

}  // namespace detail

namespace {

using detail::Registry;

const char* kind_name(RegionKind kind) {
  return kind == RegionKind::kComm ? "comm" : "compute";
}

/// Collects retired + live accumulators under the registry lock.
struct MergedState {
  std::map<std::string, detail::RegionStat> regions;
  std::map<std::string, std::int64_t> counters;
  std::vector<detail::EventRec> events;
  std::int64_t dropped = 0;
};

MergedState merge_all() {
  Registry& reg = Registry::instance();
  MutexLock reg_lock(reg.mutex);
  MergedState merged;
  merged.regions = reg.retired_regions;
  merged.counters = reg.retired_counters;
  merged.events = reg.retired_events;
  merged.dropped = reg.retired_dropped;
  for (detail::ThreadState* ts : reg.live) {
    MutexLock state_lock(ts->mutex);
    for (const auto& [path, stat] : ts->regions) {
      detail::RegionStat& dst = merged.regions[path];
      dst.kind = stat.kind;
      dst.calls += stat.calls;
      dst.ns += stat.ns;
    }
    for (const auto& [name, value] : ts->counters) {
      merged.counters[name] += value;
    }
    merged.events.insert(merged.events.end(), ts->events.begin(),
                         ts->events.end());
    merged.dropped += ts->events_dropped;
  }
  // Events from different threads interleave nondeterministically; sort by
  // (start, tid, path) so exports are stable for a given set of samples.
  std::sort(merged.events.begin(), merged.events.end(),
            [](const detail::EventRec& a, const detail::EventRec& b) {
              return std::tie(a.start_ns, a.tid, a.path) <
                     std::tie(b.start_ns, b.tid, b.path);
            });
  return merged;
}

}  // namespace

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void set_trace_events(bool on) {
  detail::g_trace.store(on, std::memory_order_relaxed);
}

double Snapshot::seconds_matching(std::string_view needle) const {
  double total = 0.0;
  for (const RegionSnapshot& r : regions) {
    if (r.path.find(needle) != std::string::npos) {
      total += r.seconds;
    }
  }
  return total;
}

const RegionSnapshot* Snapshot::find(std::string_view path) const {
  for (const RegionSnapshot& r : regions) {
    if (r.path == path) {
      return &r;
    }
  }
  return nullptr;
}

std::int64_t Snapshot::counter(std::string_view name) const {
  for (const CounterSnapshot& c : counters) {
    if (c.name == name) {
      return c.value;
    }
  }
  return 0;
}

Snapshot snapshot() {
  const MergedState merged = merge_all();
  Snapshot snap;
  snap.regions.reserve(merged.regions.size());
  for (const auto& [path, stat] : merged.regions) {
    snap.regions.push_back(
        {path, stat.kind, stat.calls, static_cast<double>(stat.ns) * 1e-9});
  }
  snap.counters.reserve(merged.counters.size());
  for (const auto& [name, value] : merged.counters) {
    snap.counters.push_back({name, value});
  }
  snap.trace_events = static_cast<std::int64_t>(merged.events.size());
  snap.trace_dropped = merged.dropped;
  return snap;
}

void reset() {
  Registry& reg = Registry::instance();
  MutexLock reg_lock(reg.mutex);
  reg.retired_regions.clear();
  reg.retired_counters.clear();
  reg.retired_events.clear();
  reg.retired_dropped = 0;
  for (detail::ThreadState* ts : reg.live) {
    MutexLock state_lock(ts->mutex);
    ts->regions.clear();
    ts->counters.clear();
    ts->events.clear();
    ts->events_dropped = 0;
  }
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(ch) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(ch) & 0xF];
        } else {
          out += ch;
        }
        break;
    }
  }
  return out;
}

void write_json(std::ostream& os, const Snapshot& snap) {
  os << std::setprecision(17);
  os << "{\n  \"schema\": \"cpx-metrics-v1\",\n  \"regions\": [";
  for (std::size_t i = 0; i < snap.regions.size(); ++i) {
    const RegionSnapshot& r = snap.regions[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"path\": \""
       << json_escape(r.path) << "\", \"kind\": \"" << kind_name(r.kind)
       << "\", \"calls\": " << r.calls << ", \"seconds\": " << r.seconds
       << "}";
  }
  os << "\n  ],\n  \"counters\": [";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    const CounterSnapshot& c = snap.counters[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"name\": \""
       << json_escape(c.name) << "\", \"value\": " << c.value << "}";
  }
  os << "\n  ],\n  \"trace\": {\"events\": " << snap.trace_events
     << ", \"dropped\": " << snap.trace_dropped << "}\n}\n";
}

void write_json(std::ostream& os) { write_json(os, snapshot()); }

void write_text(std::ostream& os) {
  const Snapshot snap = snapshot();
  print_banner(os, "host metrics — regions");
  Table regions({"region", "kind", "calls", "seconds"});
  regions.set_precision(6);
  for (const RegionSnapshot& r : snap.regions) {
    regions.add_row({r.path, std::string(kind_name(r.kind)), r.calls,
                     r.seconds});
  }
  regions.print(os);
  if (!snap.counters.empty()) {
    print_banner(os, "host metrics — counters");
    Table counters({"counter", "value"});
    for (const CounterSnapshot& c : snap.counters) {
      counters.add_row({c.name, c.value});
    }
    counters.print(os);
  }
}

void write_chrome_trace(std::ostream& os) {
  const MergedState merged = merge_all();
  os << "[\n";
  // Metadata first: name the host "process" and carry the dropped count so
  // truncated timelines are detectable downstream.
  os << R"({"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"cpx host"}})"
     << ",\n"
     << R"({"name":"cpx_metrics_dropped","ph":"M","pid":0,"tid":0,"args":{"dropped":)"
     << merged.dropped << "}}";
  for (const detail::EventRec& e : merged.events) {
    os << ",\n"
       << R"({"name":")" << json_escape(e.path) << R"(","cat":")"
       << kind_name(e.kind) << R"(","ph":"X","ts":)"
       << static_cast<double>(e.start_ns) * 1e-3 << R"(,"dur":)"
       << static_cast<double>(e.end_ns - e.start_ns) * 1e-3
       << R"(,"pid":0,"tid":)" << e.tid << "}";
  }
  os << "\n]\n";
}

bool configure(const Options& options) {
  if (options.has("metrics")) {
    const std::string path = options.get_string("metrics", "");
    CPX_REQUIRE(!path.empty(), "--metrics expects a file path");
    set_enabled(true);
    detail::output_path_storage() = path;
  }
  return enabled();
}

const std::string& output_path() { return detail::output_path_storage(); }

bool write_report() {
  const std::string& path = output_path();
  if (path.empty()) {
    return false;
  }
  std::ofstream out(path);
  CPX_REQUIRE(out.good(), "metrics::write_report: cannot open " << path);
  write_json(out);
  return true;
}

}  // namespace cpx::support::metrics
