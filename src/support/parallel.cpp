#include "support/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/mutex.hpp"
#include "support/options.hpp"
#include "support/thread_annotations.hpp"

namespace cpx::support {
namespace {

// Lane of the thread currently executing pool work (0 = the calling
// thread), and whether it is inside a parallel region. Nested parallel
// calls run inline on the caller's lane so per-lane scratch stays valid.
thread_local int tl_lane = 0;
thread_local bool tl_in_region = false;

/// Per-lane execution-time counter name, built once per thread: the lane a
/// worker serves never changes, and per-lane totals are what make pool
/// imbalance visible in the merged metrics (docs/observability.md).
const std::string& lane_exec_counter_name(int lane) {
  thread_local std::string name;
  if (name.empty()) {
    name = "pool/exec_ns/lane" + std::to_string(lane);
  }
  return name;
}

class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int width() const { return width_.load(std::memory_order_relaxed); }

  void resize(int n) {
    CPX_REQUIRE(n >= 1, "set_max_threads: need >= 1 thread, got " << n);
    CPX_REQUIRE(!tl_in_region,
                "set_max_threads: cannot resize inside a parallel region");
    MutexLock lock(config_mutex_);
    if (n == width_.load(std::memory_order_relaxed)) {
      return;
    }
    stop_workers();
    width_.store(n, std::memory_order_relaxed);
    start_workers();
  }

  using JobFn = FunctionRef<void(std::int64_t, int)>;

  /// Runs fn(chunk, lane) for every chunk in [0, nchunks). The calling
  /// thread participates as lane 0; chunks are claimed dynamically but the
  /// chunk set itself is fixed by the caller, so results that depend only
  /// on the chunk decomposition are thread-count independent. Dispatch is
  /// allocation-free when metrics are off: the job slot holds a non-owning
  /// FunctionRef, valid because run() blocks until every chunk completes.
  void run(std::int64_t nchunks, JobFn fn) {
    if (nchunks <= 0) {
      return;
    }
    if (tl_in_region) {  // nested: inline on the current lane
      for (std::int64_t c = 0; c < nchunks; ++c) {
        fn(c, tl_lane);
      }
      return;
    }
    MutexLock config(config_mutex_);
    if (workers_.empty() || nchunks == 1) {
      config.unlock();
      tl_in_region = true;
      struct Reset {
        ~Reset() { tl_in_region = false; }
      } reset;
      tl_lane = 0;
      for (std::int64_t c = 0; c < nchunks; ++c) {
        fn(c, 0);
      }
      return;
    }
    // Per-task queue wait (submit -> claim) and per-lane execution time.
    // Wrapped only when metrics are on: the wrapper costs two clock reads
    // per chunk. The serial/inline paths above stay unwrapped — there is
    // no queue and the caller's own region timer already covers them. The
    // wrapper lambda lives on this frame, which outlives the job.
    const bool timed_run = metrics::enabled();
    const auto submit = timed_run ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{};
    auto timed = [&fn, submit](std::int64_t chunk, int lane) {
      const auto claim = std::chrono::steady_clock::now();
      fn(chunk, lane);
      const auto done = std::chrono::steady_clock::now();
      const auto ns = [](auto a, auto b) {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a)
            .count();
      };
      metrics::counter_add("pool/tasks", 1);
      metrics::counter_add("pool/queue_wait_ns", ns(submit, claim));
      metrics::counter_add(lane_exec_counter_name(lane), ns(claim, done));
    };
    const JobFn run_fn = timed_run ? JobFn(timed) : fn;
    {
      MutexLock lock(job_mutex_);
      job_fn_ = run_fn;
      job_chunks_ = nchunks;
      job_pending_.store(nchunks, std::memory_order_relaxed);
      job_error_ = nullptr;
      // Release: workers claiming chunks via job_next_ see the fields above.
      job_next_.store(0, std::memory_order_release);
      ++generation_;
    }
    job_cv_.notify_all();
    tl_in_region = true;
    tl_lane = 0;
    work();
    tl_in_region = false;
    std::exception_ptr error;
    {
      MutexLock lock(job_mutex_);
      while (job_pending_.load(std::memory_order_acquire) != 0) {
        done_cv_.wait(lock.native());
      }
      error = job_error_;
      job_error_ = nullptr;
    }
    if (error) {
      std::rethrow_exception(error);
    }
  }

 private:
  ThreadPool() {
    int n = parse_thread_count(std::getenv("CPX_THREADS"));
    if (n <= 0) {
      n = static_cast<int>(std::thread::hardware_concurrency());
    }
    width_.store(std::max(n, 1), std::memory_order_relaxed);
    MutexLock lock(config_mutex_);
    start_workers();
  }

  ~ThreadPool() {
    MutexLock lock(config_mutex_);
    stop_workers();
  }

  void start_workers() CPX_REQUIRES(config_mutex_) {
    const int n = width_.load(std::memory_order_relaxed);
    workers_.reserve(static_cast<std::size_t>(n > 1 ? n - 1 : 0));
    for (int lane = 1; lane < n; ++lane) {
      workers_.emplace_back([this, lane] { worker_main(lane); });
    }
  }

  void stop_workers() CPX_REQUIRES(config_mutex_) {
    {
      MutexLock lock(job_mutex_);
      stop_ = true;
      ++generation_;
    }
    job_cv_.notify_all();
    for (std::thread& t : workers_) {
      t.join();
    }
    workers_.clear();
    MutexLock lock(job_mutex_);
    stop_ = false;
  }

  void worker_main(int lane) {
    tl_lane = lane;
    tl_in_region = true;  // parallel calls from inside a chunk run inline
    std::uint64_t seen = 0;
    while (true) {
      {
        MutexLock lock(job_mutex_);
        while (!stop_ && generation_ == seen) {
          job_cv_.wait(lock.native());
        }
        if (stop_) {
          return;
        }
        seen = generation_;
      }
      work();
    }
  }

  // The chunk loop reads job_fn_/job_chunks_ without job_mutex_: run()
  // publishes them with job_next_.store(release) and every claim is a
  // fetch_add(acquire) on job_next_, so the fields are visible before any
  // chunk executes — a release/acquire handoff the capability analysis
  // cannot express (TSan-validated instead; docs/parallelism.md).
  void work() CPX_NO_THREAD_SAFETY_ANALYSIS {
    while (true) {
      const std::int64_t c = job_next_.fetch_add(1, std::memory_order_acq_rel);
      if (c >= job_chunks_) {
        return;
      }
      try {
        job_fn_(c, tl_lane);
      } catch (...) {
        MutexLock lock(job_mutex_);
        if (!job_error_) {
          job_error_ = std::current_exception();
        }
      }
      if (job_pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        MutexLock lock(job_mutex_);
        done_cv_.notify_all();
      }
    }
  }

  Mutex config_mutex_;  ///< serialises resize against regions
  std::atomic<int> width_{1};
  std::vector<std::thread> workers_ CPX_GUARDED_BY(config_mutex_);

  /// Job handoff lock. run() holds config_mutex_ for the whole region, so
  /// the order is always config -> job; declaring it makes a reversed
  /// acquisition a -Wthread-safety build failure.
  Mutex job_mutex_ CPX_ACQUIRED_AFTER(config_mutex_);
  std::condition_variable job_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ CPX_GUARDED_BY(job_mutex_) = 0;
  bool stop_ CPX_GUARDED_BY(job_mutex_) = false;
  // job_fn_/job_chunks_ are written under job_mutex_ but read lock-free in
  // work() under the job_next_ release/acquire protocol documented there.
  JobFn job_fn_ CPX_GUARDED_BY(job_mutex_);
  std::int64_t job_chunks_ CPX_GUARDED_BY(job_mutex_) = 0;
  std::atomic<std::int64_t> job_next_{0};
  std::atomic<std::int64_t> job_pending_{0};
  std::exception_ptr job_error_ CPX_GUARDED_BY(job_mutex_);
};

}  // namespace

int max_threads() { return ThreadPool::instance().width(); }

void set_max_threads(int n) { ThreadPool::instance().resize(n); }

int parse_thread_count(const char* text) {
  if (text == nullptr || *text == '\0') {
    return 0;
  }
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == nullptr || *end != '\0' || v < 1 || v > 65536) {
    return 0;
  }
  return static_cast<int>(v);
}

int configure_threads(const Options& options) {
  const long long requested = options.get_int("threads", 0);
  if (requested >= 1) {
    set_max_threads(static_cast<int>(requested));
  }
  return max_threads();
}

std::int64_t num_chunks(std::int64_t begin, std::int64_t end,
                        std::int64_t grain) {
  if (end <= begin) {
    return 0;
  }
  const std::int64_t g = std::max<std::int64_t>(grain, 1);
  return (end - begin + g - 1) / g;
}

std::pair<std::int64_t, std::int64_t> chunk_bounds(std::int64_t begin,
                                                   std::int64_t end,
                                                   std::int64_t grain,
                                                   std::int64_t chunk) {
  const std::int64_t g = std::max<std::int64_t>(grain, 1);
  const std::int64_t lo = begin + chunk * g;
  return {lo, std::min(end, lo + g)};
}

void parallel_chunks(std::int64_t begin, std::int64_t end, std::int64_t grain,
                     ChunkFn fn) {
  const std::int64_t n = num_chunks(begin, end, grain);
  if (n == 0) {
    return;
  }
  ThreadPool::instance().run(n, [&](std::int64_t chunk, int lane) {
    const auto [lo, hi] = chunk_bounds(begin, end, grain, chunk);
    fn(chunk, lo, hi, lane);
  });
}

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  RangeFn fn) {
  parallel_chunks(begin, end, grain,
                  [&](std::int64_t, std::int64_t lo, std::int64_t hi, int) {
                    fn(lo, hi);
                  });
}

double parallel_reduce(std::int64_t begin, std::int64_t end,
                       std::int64_t grain, double init, ReduceFn fn) {
  const std::int64_t n = num_chunks(begin, end, grain);
  // Partials stay on this frame for the common case so steady-state
  // reductions (the BLAS-1 layer) allocate nothing. Chunks write disjoint
  // slots and the pool joins before the combine, so this is race-free.
  //
  // Ranges wider than kStackChunks used to heap-allocate a fresh partial
  // vector on EVERY call — an allocation on the solve path for any vector
  // longer than 512 * grain, hidden from the old per-file lint because it
  // lived here and not in a listed solve-path kernel (cpxcheck rule
  // `solve-alloc` walks the call graph instead and flagged it). The
  // buffer is now a persistent per-thread scratch: it grows to the
  // largest chunk count seen, then every later call is allocation-free.
  // A same-thread re-entrant reduce (an inner reduce issued from inside
  // an outer chunk body) would alias the scratch, so that rare cold path
  // falls back to a local heap buffer.
  constexpr std::int64_t kStackChunks = 512;
  double stack_partial[kStackChunks];
  std::vector<double> local_partial;
  double* partial = stack_partial;
  thread_local std::vector<double> tl_partial;
  thread_local bool tl_partial_busy = false;
  struct ScratchGuard {
    bool owned = false;
    ~ScratchGuard() {
      if (owned) {
        tl_partial_busy = false;
      }
    }
  } guard;
  if (n > kStackChunks) {
    if (!tl_partial_busy) {
      tl_partial_busy = true;
      guard.owned = true;
      if (tl_partial.size() < static_cast<std::size_t>(n)) {
        // Amortised growth; steady-state calls never reach here.
        tl_partial.resize(static_cast<std::size_t>(n));  // cpx-lint: allow(alloc)
      }
      partial = tl_partial.data();
    } else {
      // cpx-lint: allow(alloc) — re-entrant cold path, see above.
      local_partial.assign(static_cast<std::size_t>(n), 0.0);
      partial = local_partial.data();
    }
  }
  parallel_chunks(begin, end, grain,
                  [&](std::int64_t chunk, std::int64_t lo, std::int64_t hi,
                      int) { partial[chunk] = fn(lo, hi); });
  double acc = init;
  for (std::int64_t i = 0; i < n; ++i) {  // fixed chunk order: deterministic
    acc += partial[i];
  }
  return acc;
}

}  // namespace cpx::support
