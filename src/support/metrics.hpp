#pragma once
// Host-side observability layer (docs/observability.md): wall-clock region
// timers, monotonic counters, and exporters for the *real* execution of
// the threaded kernels — the host complement of the virtual-cluster
// sim::Profile / sim::Trace. Where the simulator accounts virtual seconds
// per rank, this module accounts steady_clock seconds per thread, so the
// Fig-5-style compute/comm breakdowns and the BENCH_*.json trajectories
// can be produced mechanically from real runs.
//
// Design:
//  * Disabled by default. When disabled, every entry point is a single
//    relaxed atomic load — cheap enough to leave CPX_METRICS_SCOPE in
//    SpMV-class kernels permanently (<2% on the threads_scaling sweep).
//  * Regions are hierarchical: nested ScopedTimers build a path of region
//    names joined with ';' ("workflow/exchange;coupler/search"). Region
//    names themselves use 'module/name' ('/' never nests; only ';' does).
//  * Accumulation is per-thread (one uncontended mutex per thread state);
//    snapshot() merges all threads into one map sorted by path, so the
//    merged result is deterministic regardless of thread count or
//    interleaving. Timings naturally vary run to run; the region/counter
//    *set* and counter values do not.
//  * Enable with CPX_METRICS=<path> (or =1 for no file) in the
//    environment, --metrics=<path> on any bench that calls configure(),
//    or set_enabled(true) programmatically. CPX_METRICS_TRACE=1
//    additionally records a bounded per-thread event timeline exportable
//    as Chrome trace-event JSON alongside the virtual-cluster trace.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace cpx {
class Options;
}  // namespace cpx

namespace cpx::support::metrics {

/// Host analogue of the simulator's compute/communication split: tag
/// data-movement-dominated regions (coupler exchanges, halo packing) as
/// kComm so breakdowns can separate them from arithmetic.
enum class RegionKind { kCompute, kComm };

struct RegionSnapshot {
  std::string path;  ///< nested region names joined with ';'
  RegionKind kind = RegionKind::kCompute;
  std::int64_t calls = 0;
  double seconds = 0.0;
};

struct CounterSnapshot {
  std::string name;
  std::int64_t value = 0;
};

/// A deterministic merged view of all thread-local accumulators.
struct Snapshot {
  std::vector<RegionSnapshot> regions;    ///< sorted by path
  std::vector<CounterSnapshot> counters;  ///< sorted by name
  std::int64_t trace_events = 0;
  std::int64_t trace_dropped = 0;

  /// Sum of seconds over regions whose path contains `needle` (substring
  /// match on the full nested path), optionally restricted to one kind.
  double seconds_matching(std::string_view needle) const;
  const RegionSnapshot* find(std::string_view path) const;
  std::int64_t counter(std::string_view name) const;
};

namespace detail {

extern std::atomic<bool> g_enabled;
extern std::atomic<bool> g_trace;

struct ThreadState;
ThreadState& thread_state();
std::chrono::steady_clock::time_point region_enter(ThreadState& ts,
                                                   std::string_view name,
                                                   RegionKind kind);
void region_exit(ThreadState& ts,
                 std::chrono::steady_clock::time_point start);
void counter_add_slow(std::string_view name, std::int64_t delta);

}  // namespace detail

/// True when the layer is recording. A relaxed load: the only cost paid
/// by instrumented kernels when observability is off.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on);

/// Per-event timeline recording (bounded per thread; drops are counted).
/// Implies nothing about enabled(): events record only when both are on.
void set_trace_events(bool on);
inline bool trace_events_enabled() {
  return detail::g_trace.load(std::memory_order_relaxed);
}

/// Adds to a named monotonic counter (bytes moved, nnz processed, solver
/// iterations, ...). No-op when disabled.
inline void counter_add(std::string_view name, std::int64_t delta) {
  if (enabled()) {
    detail::counter_add_slow(name, delta);
  }
}

/// RAII region timer. Nestable; per-thread; safe inside pool tasks.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view name,
                       RegionKind kind = RegionKind::kCompute) {
    if (enabled()) {
      state_ = &detail::thread_state();
      start_ = detail::region_enter(*state_, name, kind);
    }
  }
  ~ScopedTimer() {
    if (state_ != nullptr) {
      detail::region_exit(*state_, start_);
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  detail::ThreadState* state_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
};

/// Merges every thread's accumulators (live and exited) deterministically.
Snapshot snapshot();

/// Clears all accumulated regions, counters, and trace events. Call only
/// outside parallel regions with no ScopedTimer alive.
void reset();

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters). Shared with sim::write_chrome_trace.
std::string json_escape(std::string_view text);

/// JSON report (schema "cpx-metrics-v1", docs/observability.md).
void write_json(std::ostream& os);
void write_json(std::ostream& os, const Snapshot& snap);

/// Aligned text tables (support/table) for human consumption.
void write_text(std::ostream& os);

/// Recorded host events as Chrome trace-event JSON (pid 0 = host process,
/// tid = thread index, ts/dur in wall-clock microseconds since the first
/// metrics activity). Includes a metadata event with the dropped count.
void write_chrome_trace(std::ostream& os);

/// Applies --metrics=<path> from parsed CLI options (in addition to the
/// CPX_METRICS environment default). Returns true if metrics are enabled.
bool configure(const Options& options);

/// The report path from --metrics / CPX_METRICS; empty when none was set.
const std::string& output_path();

/// Writes the JSON report to output_path(). Returns false (and writes
/// nothing) when no path is configured.
bool write_report();

}  // namespace cpx::support::metrics

#define CPX_METRICS_CONCAT_IMPL(a, b) a##b
#define CPX_METRICS_CONCAT(a, b) CPX_METRICS_CONCAT_IMPL(a, b)

/// Times the enclosing scope as a compute region. Near-free when disabled.
#define CPX_METRICS_SCOPE(name)                        \
  ::cpx::support::metrics::ScopedTimer CPX_METRICS_CONCAT( \
      cpx_metrics_scope_, __LINE__)(name)

/// Times the enclosing scope as a communication/data-movement region.
#define CPX_METRICS_SCOPE_COMM(name)                   \
  ::cpx::support::metrics::ScopedTimer CPX_METRICS_CONCAT( \
      cpx_metrics_scope_, __LINE__)(                   \
      name, ::cpx::support::metrics::RegionKind::kComm)
