#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace cpx {

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) {
    return s;
  }
  s.min = values.front();
  s.max = values.front();
  for (double v : values) {
    s.sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = s.sum / static_cast<double>(s.count);
  if (s.count > 1) {
    double ss = 0.0;
    for (double v : values) {
      const double d = v - s.mean;
      ss += d * d;
    }
    s.stddev = std::sqrt(ss / static_cast<double>(s.count - 1));
  }
  return s;
}

double relative_error(double measured, double reference) {
  CPX_REQUIRE(reference != 0.0, "relative_error: reference must be non-zero");
  return std::abs(measured - reference) / std::abs(reference);
}

double percent_error(double measured, double reference) {
  return 100.0 * relative_error(measured, reference);
}

double parallel_efficiency(double t_base, double cores_base, double t_p,
                           double cores_p) {
  CPX_REQUIRE(t_p > 0.0 && cores_p > 0.0 && t_base > 0.0 && cores_base > 0.0,
              "parallel_efficiency: all inputs must be positive");
  return (t_base * cores_base) / (t_p * cores_p);
}

double speedup(double t_base, double t_p) {
  CPX_REQUIRE(t_p > 0.0, "speedup: t_p must be positive");
  return t_base / t_p;
}

double r_squared(std::span<const double> observed,
                 std::span<const double> predicted) {
  CPX_REQUIRE(observed.size() == predicted.size() && !observed.empty(),
              "r_squared: size mismatch or empty input");
  const Summary obs = summarize(observed);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double r = observed[i] - predicted[i];
    const double d = observed[i] - obs.mean;
    ss_res += r * r;
    ss_tot += d * d;
  }
  if (ss_tot == 0.0) {
    return ss_res == 0.0 ? 1.0 : 0.0;
  }
  return 1.0 - ss_res / ss_tot;
}

double interp1(std::span<const double> xs, std::span<const double> ys,
               double x) {
  CPX_REQUIRE(xs.size() == ys.size() && !xs.empty(),
              "interp1: size mismatch or empty input");
  if (x <= xs.front()) {
    return ys.front();
  }
  if (x >= xs.back()) {
    return ys.back();
  }
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - xs.begin());
  const std::size_t lo = hi - 1;
  const double t = (x - xs[lo]) / (xs[hi] - xs[lo]);
  return ys[lo] + t * (ys[hi] - ys[lo]);
}

double geometric_mean(std::span<const double> values) {
  CPX_REQUIRE(!values.empty(), "geometric_mean: empty input");
  double log_sum = 0.0;
  for (double v : values) {
    CPX_REQUIRE(v > 0.0, "geometric_mean: values must be positive");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace cpx
